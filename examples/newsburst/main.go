// News burst: a breaking-news cell. Most of the time the downlink idles;
// then a story breaks and heavy self-similar photo/video traffic slams the
// shared downlink for minutes at a time. This is the workload the
// traffic-aware interval adaptation was designed around: a fixed report
// period is either wastefully chatty during the lulls or painfully slow
// during the bursts — adapting the period to measured load gets both right,
// and piggybacked digests keep clients validating *through* the burst using
// the very traffic that congests the cell.
//
// The example pins the background model to Pareto ON/OFF at increasing
// loads and compares fixed-interval TS against the adaptive schemes — the
// in-miniature version of F4/F5.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/traffic"
)

func config(load float64) core.Config {
	cfg := core.DefaultConfig()
	cfg.NumClients = 100
	cfg.Workload.QueryRate = 0.1
	cfg.Traffic.Model = traffic.ParetoOnOff
	cfg.Traffic.OnMeanSec = 20  // bursts run for tens of seconds
	cfg.Traffic.OffMeanSec = 60 // long lulls in between
	cfg.Traffic.Shape = 1.4     // heavy tail: some bursts run very long
	cfg.TrafficLoad = load
	cfg.Horizon = 40 * des.Minute
	cfg.Warmup = 8 * des.Minute
	return cfg
}

func main() {
	algos := []string{"ts", "uir", "tair", "hybrid"}
	loads := []float64{0.1, 0.4, 0.7}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "load\talgorithm\tdelay(s)\tp95(s)\toverhead(b/s)\tutil\tstale")
	for _, load := range loads {
		for _, algo := range algos {
			cfg := config(load)
			cfg.Algorithm = algo
			r, err := core.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "newsburst:", err)
				os.Exit(1)
			}
			fmt.Fprintf(w, "%g\t%s\t%.2f\t%.2f\t%.0f\t%.3f\t%d\n",
				load, algo, r.MeanDelay, r.P95Delay,
				r.OverheadBitsPerSec(), r.DownlinkUtil, r.StaleViolations)
		}
		fmt.Fprintln(w, "\t\t\t\t\t\t")
	}
	w.Flush()

	fmt.Println("Reading the table: at light load the adaptive schemes buy latency with")
	fmt.Println("cheap airtime (short intervals, eager digests). As bursts saturate the")
	fmt.Println("downlink, their standalone-report overhead falls — the interval")
	fmt.Println("stretches — while piggybacked digests ride the news traffic itself,")
	fmt.Println("so validation latency degrades far more gracefully than fixed TS.")
}
