// Road traffic information: vehicles caching segment-condition records from
// a roadside base station. Two things distinguish this deployment from the
// brokerage cell in examples/stockticker:
//
//   - Vehicles disconnect constantly (tunnels, parking garages, coverage
//     holes): the sleep ratio is high and the awake periods are short. This
//     is the regime that separates the schemes' coverage-window designs —
//     amnesic reports collapse, timestamps survive short outages, and
//     signatures survive anything.
//   - The channel is genuinely geometric: cars are spread over the cell, so
//     link adaptation sees a wide SNR spread, and vehicular speeds mean a
//     fast-fading (high Doppler) channel.
//
// The example sweeps the disconnection ratio and reports delay, hit ratio,
// and forced cache flushes per scheme — the in-miniature version of F8.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/mobility"
)

func config(sleepRatio float64) core.Config {
	cfg := core.DefaultConfig()
	cfg.DB.NumItems = 600   // road segments
	cfg.DB.ItemBits = 2048  // compact condition record
	cfg.DB.UpdateRate = 0.5 // incidents and clearances
	cfg.DB.HotItems = 60    // the congested arterials
	cfg.NumClients = 120
	cfg.CacheCapacity = 120
	cfg.Workload.QueryRate = 0.08
	cfg.Workload.SleepRatio = sleepRatio
	cfg.Workload.AwakeMeanSec = 60 // short coverage windows between outages

	cfg.Channel.UseGeometry = true           // real cell geometry, wide SNR spread
	cfg.Channel.DopplerHz = 60               // vehicular fading speeds
	cfg.Channel.Mobility = &mobility.Config{ // and vehicular movement
		CellRadiusM:  cfg.Channel.CellRadiusM,
		MinDistanceM: cfg.Channel.MinDistanceM,
		SpeedMinMps:  8,
		SpeedMaxMps:  25,
		PauseMeanSec: 20, // traffic lights
	}
	cfg.TrafficLoad = 0.25
	cfg.Horizon = 30 * des.Minute
	cfg.Warmup = 6 * des.Minute
	return cfg
}

func main() {
	algos := []string{"ts", "at", "sig", "hybrid"}
	sleeps := []float64{0, 0.3, 0.6}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "sleep\talgorithm\tdelay(s)\thit\tflushes/client/h\tstale")
	for _, sleep := range sleeps {
		for _, algo := range algos {
			cfg := config(sleep)
			cfg.Algorithm = algo
			r, err := core.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "roadtraffic:", err)
				os.Exit(1)
			}
			flushRate := float64(r.CacheDrops) / float64(cfg.NumClients) / (r.MeasuredSec / 3600)
			fmt.Fprintf(w, "%g\t%s\t%.2f\t%.3f\t%.1f\t%d\n",
				sleep, algo, r.MeanDelay, r.HitRatio, flushRate, r.StaleViolations)
		}
		fmt.Fprintln(w, "\t\t\t\t\t")
	}
	w.Flush()

	fmt.Println("Reading the table: the amnesic scheme (at) flushes caches wholesale as")
	fmt.Println("soon as vehicles start disconnecting — one missed report costs the")
	fmt.Println("whole cache. Timestamps (ts) tolerate outages up to their window.")
	fmt.Println("Signatures (sig) never flush on a window, no matter how long the")
	fmt.Println("tunnel. The hybrid scheme keeps latency low while matching ts-class")
	fmt.Println("robustness through its wide-window anchor stream.")
}
