// Stock ticker: the motivating workload of the invalidation-report
// literature. A brokerage cell serves quote pages to handheld terminals:
// a small database with a furiously updated hot set (the actively traded
// symbols), impatient clients with strong locality, and a downlink that
// also carries news photos and order confirmations (bursty background
// traffic).
//
// The example sweeps the quote update rate and prints, for each scheme, how
// query latency and cache effectiveness hold up as the market gets busier —
// the in-miniature version of experiments F1/F2.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/traffic"
)

func config(updatesPerSec float64) core.Config {
	cfg := core.DefaultConfig()
	cfg.DB.NumItems = 400    // quote pages
	cfg.DB.ItemBits = 4096   // 512-byte quote page
	cfg.DB.HotItems = 40     // actively traded symbols
	cfg.DB.HotFraction = 0.9 // almost all updates hit the hot board
	cfg.DB.UpdateRate = updatesPerSec
	cfg.CacheCapacity = 80
	cfg.NumClients = 150
	cfg.Workload.QueryRate = 0.2            // traders poll every ~5 s
	cfg.Workload.Zipf = 1.0                 // strong locality on the same hot symbols
	cfg.Traffic.Model = traffic.ParetoOnOff // bursty news/photo traffic
	cfg.TrafficLoad = 0.35
	cfg.Horizon = 30 * des.Minute
	cfg.Warmup = 6 * des.Minute
	return cfg
}

func main() {
	algos := []string{"ts", "uir", "tair", "hybrid"}
	rates := []float64{0.1, 1, 5}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "updates/s\talgorithm\tdelay(s)\tp95(s)\thit\tuplink/ans\tstale")
	for _, rate := range rates {
		for _, algo := range algos {
			cfg := config(rate)
			cfg.Algorithm = algo
			r, err := core.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "stockticker:", err)
				os.Exit(1)
			}
			fmt.Fprintf(w, "%g\t%s\t%.2f\t%.2f\t%.3f\t%.2f\t%d\n",
				rate, algo, r.MeanDelay, r.P95Delay, r.HitRatio,
				r.UplinkPerAnswer(), r.StaleViolations)
		}
		fmt.Fprintln(w, "\t\t\t\t\t\t")
	}
	w.Flush()

	fmt.Println("Reading the table: as the market speeds up, hit ratios collapse for")
	fmt.Println("every scheme (the data is simply changing too fast to cache), but the")
	fmt.Println("traffic-aware schemes keep the *latency* of finding that out low —")
	fmt.Println("the terminal learns its quote is stale from the next data frame on")
	fmt.Println("the air instead of waiting out the report interval.")
}
