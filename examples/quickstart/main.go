// Quickstart: run two invalidation schemes on the default configuration and
// compare them. This is the smallest useful program against the library's
// public API: build a Config, call Run, read RunStats.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/des"
)

func main() {
	fmt.Println("wireless data caching, 100 clients, 1000 items, 15 simulated minutes")
	fmt.Println()

	for _, algo := range []string{"ts", "hybrid"} {
		cfg := core.DefaultConfig()
		cfg.Algorithm = algo
		cfg.Horizon = 15 * des.Minute
		cfg.Warmup = 3 * des.Minute
		cfg.TrafficLoad = 0.3

		stats, err := core.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quickstart:", err)
			os.Exit(1)
		}

		fmt.Printf("%-7s mean delay %6.2f s   p95 %6.2f s   hit ratio %.3f   energy %.2f J/query\n",
			algo, stats.MeanDelay, stats.P95Delay, stats.HitRatio, stats.EnergyPerQuery)
		if stats.StaleViolations != 0 {
			fmt.Fprintf(os.Stderr, "consistency violated: %d stale answers\n", stats.StaleViolations)
			os.Exit(1)
		}
	}

	fmt.Println()
	fmt.Println("The hybrid scheme answers queries an order of magnitude faster by")
	fmt.Println("piggybacking invalidation digests on downlink traffic and spending")
	fmt.Println("link-adaptation headroom on extra report cadence.")
}
