GO ?= go

.PHONY: help build test vet race smoke-multicell smoke-parallel smoke-served load-smoke check sweep bench bench-smoke bench-json bench-city bench-load soak fuzz-smoke soak-served soak-load

# help lists the public targets. check is the pre-commit gate; soak is the
# nightly chaos run and is deliberately NOT part of check.
help:
	@echo "build           compile everything"
	@echo "test            run the unit suite"
	@echo "vet             go vet"
	@echo "race            race-detector pass over the concurrent packages"
	@echo "smoke-multicell multi-cell topology smoke under -race"
	@echo "smoke-parallel  epoch-parallel engine smoke under -race: chaos at P=1 vs P=NumCPU"
	@echo "smoke-served    wdcserved conformance under -race: DES model as lock-step oracle"
	@echo "load-smoke      wall-clock load harness smoke under -race: small fleets, all algorithms"
	@echo "check           pre-commit gate: build + vet + race + smoke-multicell + smoke-parallel + smoke-served + load-smoke"
	@echo "sweep           regenerate the full evaluation into results/"
	@echo "bench           full benchmark archive run"
	@echo "bench-smoke     CI-sized benchmark subset"
	@echo "bench-json      refresh BENCH_1.json and enforce the 15% perf ratchet"
	@echo "bench-city      refresh BENCH_2.json: clients x cells scaling curve with RSS gate"
	@echo "bench-load      refresh BENCH_3.json: wall-clock fleet latency sweep with p99 ratchet"
	@echo "fuzz-smoke      30s native-fuzz pass over each wire-decoder target"
	@echo "soak            long randomized chaos/fault run under -race (nightly job)"
	@echo "soak-served     nightly served-mode chaos leg: conformance with report loss and query timeouts"
	@echo "soak-load       nightly load leg: larger fleets against a spawned binary, p99 ratchet armed"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sweep scheduler is the only concurrent code in the repository; race
# runs its packages (and the core pool they drive) under the race detector.
race:
	$(GO) test -race ./internal/core ./internal/experiment

# smoke-multicell exercises the sharded multi-cell topology (handoffs, the
# single-cell equivalence goldens, worker-count invariance) under the race
# detector.
smoke-multicell:
	$(GO) test -race -run 'MultiCell|Handoff|SingleCellMatchesLegacy' ./internal/core ./internal/topology

# smoke-parallel exercises the epoch-synchronized parallel engine under the
# race detector: multi-cell chaos runs whose fingerprints must be
# byte-identical at every lane worker count (P=1 through P=NumCPU via
# ParallelWorkers=0), plus pulse accounting and fail-fast cancellation.
smoke-parallel:
	$(GO) test -race -run 'Parallel|CellWorkers' -count=1 ./internal/core ./internal/experiment

# smoke-served runs the served-mode conformance oracle under the race
# detector: a loopback wdcserved (in-process server plus a spawned binary)
# driven in virtual-time lock-step against the DES-style model, asserting
# byte-identical report streams and zero stale answers for all eight
# algorithms, plus the graceful-shutdown and wire-framing adversarial tests.
smoke-served:
	$(GO) build -o /tmp/wdcserved ./cmd/wdcserved
	WDCSERVED_BIN=/tmp/wdcserved $(GO) test -race -short -count=1 ./internal/serve/...

# load-smoke runs the wall-clock load harness at test scale under the race
# detector: an in-process wdcserved per algorithm, a small client fleet over
# real UDP and TCP sockets, zero stale answers asserted online, and the
# same-seed determinism contract (two runs, identical action-stream counts).
load-smoke:
	$(GO) test -race -count=1 ./internal/loadgen

# check is the pre-commit gate.
check: build vet race smoke-multicell smoke-parallel smoke-served load-smoke

# sweep regenerates the full evaluation into results/ (resumable).
sweep: build
	$(GO) run ./cmd/wdcsweep -exp all -out results -resume

# bench runs every benchmark once per cell and archives the raw test2json
# stream as BENCH_<date>.json for cross-commit comparison. Expect minutes:
# it regenerates every figure at benchmark scale.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -json ./... | tee BENCH_$$(date +%F).json

# bench-smoke is the CI-sized subset: engine throughput plus the
# disabled-tracer overhead guard.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Engine|TracerOverhead' -benchtime 1x .
	$(GO) test -run '^$$' -bench . ./internal/obs

# bench-json refreshes the committed perf record BENCH_1.json: it runs the
# engine throughput, tracer-overhead, quantile-sketch, and wire-report decode
# benchmarks, preserves the pinned pre-overhaul `baseline` block, rewrites
# `current`, and fails when events/s drops (or a sketch/decode cost climbs)
# more than 15% against the committed current — the perf ratchet CI enforces.
# Decode allocations gate strictly: the UnmarshalInto reuse contract pins the
# steady state at zero. See EXPERIMENTS.md for the BENCH_<n>.json convention.
bench-json:
	$(GO) test -run '^$$' -bench 'Engine$$|TracerOverhead|SketchObserve$$|SketchMerge$$|ReportDecode$$' -benchtime 5x -benchmem . \
		| $(GO) run ./cmd/wdcbench -baseline BENCH_1.json -out BENCH_1.json -max-regress-pct 15

# bench-city refreshes the committed capacity record BENCH_2.json: a
# clients×cells scaling curve (1k→100k clients, 1→64 cells) where each point
# runs one replication in its own subprocess so peak RSS is measured per
# configuration, plus the parallel scaling curve (the 100k×16 point at lane
# worker counts 1, 2, 4, NumCPU). Gates: events/s may not drop, nor peak RSS
# rise, more than 8% against the committed record; no point may exceed 1 GiB
# resident; and on ≥4-core machines the 100k×16 point must reach 2.5x its
# P=1 throughput at P=NumCPU.
bench-city:
	$(GO) run ./cmd/wdcbench -city -baseline BENCH_2.json -out BENCH_2.json -max-regress-pct 8 -max-rss-mib 1024

# bench-load refreshes the committed load record BENCH_3.json: the wall-clock
# harness sweeps client fleets (100 and 1000 clients, all eight algorithms)
# against a spawned wdcserved binary over real sockets, records answer-latency
# quantiles, throughput, drops and retries per point, and fails when any
# point's p99 regresses more than 15% (plus a 2 ms noise floor — sub-ms
# quantiles are scheduler noise) against the committed record or any
# stale answer surfaces. The record is written before the gate decides, so a
# failing run leaves its numbers behind. Wall-clock latency is machine-
# relative (see the record's note); the stale-answer gate is absolute.
bench-load:
	$(GO) build -o /tmp/wdcserved ./cmd/wdcserved
	$(GO) run ./cmd/wdcload -bin /tmp/wdcserved -algos all -fleets 100,1000 -out BENCH_3.json -gate-pct 15

# fuzz-smoke runs each wire-decoder fuzz target for 30s from its committed
# seed corpus (internal/ir/testdata/fuzz and internal/serve/testdata/fuzz).
# Short enough to gate a PR; the open-ended exploration is nightly.
fuzz-smoke:
	$(GO) test -run '^FuzzUnmarshal$$' -fuzz '^FuzzUnmarshal$$' -fuzztime 30s ./internal/ir
	$(GO) test -run '^FuzzReportDecode$$' -fuzz '^FuzzReportDecode$$' -fuzztime 30s ./internal/ir
	$(GO) test -run '^FuzzFrameRead$$' -fuzz '^FuzzFrameRead$$' -fuzztime 30s ./internal/serve
	$(GO) test -run '^FuzzDecodeDatagram$$' -fuzz '^FuzzDecodeDatagram$$' -fuzztime 30s ./internal/serve

# soak is the nightly chaos harness: many randomized fault schedules (outages,
# report loss, disconnections with every recovery policy) across all eight
# algorithms under the race detector, asserting zero stale reads, no stuck
# clients and a drained event queue. SOAK=<n> scales the seed count (default
# 3x the PR-gating run). Expect tens of minutes; not part of `make check`.
soak:
	SOAK=$${SOAK:-3} $(GO) test -race -run 'Chaos|HandoffDisconnect' -timeout 45m -count=1 -v ./internal/core

# soak-served is the nightly served-mode chaos leg: the full-length (not
# -short) conformance oracle against a spawned wdcserved binary over real
# sockets, including the chaos schedule — lost and truncated broadcast
# datagrams, stalled query frames cut by the server's IO deadline and retried
# with bounded backoff — still asserting byte-identical streams and zero
# stale answers. Not part of `make check`.
soak-served:
	$(GO) build -o /tmp/wdcserved ./cmd/wdcserved
	WDCSERVED_BIN=/tmp/wdcserved $(GO) test -race -run 'Conformance' -timeout 20m -count=1 -v ./internal/serve/conformance

# soak-load is the nightly load leg: larger fleets (1000 and 2000 clients,
# all eight algorithms, a longer step schedule) against a spawned wdcserved
# binary, with the p99 ratchet armed against the committed BENCH_3.json.
# Race coverage of the fleet machinery lives in load-smoke; this leg runs
# unsanitized so the latency numbers stay comparable to the record. Not part
# of `make check`.
soak-load:
	$(GO) build -o /tmp/wdcserved ./cmd/wdcserved
	$(GO) run ./cmd/wdcload -bin /tmp/wdcserved -algos all -fleets 1000,2000 -steps 40 -out BENCH_3.json -gate-pct 15
