GO ?= go

.PHONY: build test vet race check sweep

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sweep scheduler is the only concurrent code in the repository; race
# runs its packages (and the core pool they drive) under the race detector.
race:
	$(GO) test -race ./internal/core ./internal/experiment

# check is the pre-commit gate.
check: build vet race

# sweep regenerates the full evaluation into results/ (resumable).
sweep: build
	$(GO) run ./cmd/wdcsweep -exp all -out results -resume
