GO ?= go

.PHONY: build test vet race smoke-multicell check sweep bench bench-smoke bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sweep scheduler is the only concurrent code in the repository; race
# runs its packages (and the core pool they drive) under the race detector.
race:
	$(GO) test -race ./internal/core ./internal/experiment

# smoke-multicell exercises the sharded multi-cell topology (handoffs, the
# single-cell equivalence goldens, worker-count invariance) under the race
# detector.
smoke-multicell:
	$(GO) test -race -run 'MultiCell|Handoff|SingleCellMatchesLegacy' ./internal/core ./internal/topology

# check is the pre-commit gate.
check: build vet race smoke-multicell

# sweep regenerates the full evaluation into results/ (resumable).
sweep: build
	$(GO) run ./cmd/wdcsweep -exp all -out results -resume

# bench runs every benchmark once per cell and archives the raw test2json
# stream as BENCH_<date>.json for cross-commit comparison. Expect minutes:
# it regenerates every figure at benchmark scale.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -json ./... | tee BENCH_$$(date +%F).json

# bench-smoke is the CI-sized subset: engine throughput plus the
# disabled-tracer overhead guard.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Engine|TracerOverhead' -benchtime 1x .
	$(GO) test -run '^$$' -bench . ./internal/obs

# bench-json refreshes the committed perf record BENCH_1.json: it runs the
# engine throughput and tracer-overhead benchmarks, preserves the pinned
# pre-overhaul `baseline` block, rewrites `current`, and fails when events/s
# drops more than 15% below the committed current — the perf ratchet CI
# enforces. See EXPERIMENTS.md for the BENCH_<n>.json convention.
bench-json:
	$(GO) test -run '^$$' -bench 'Engine$$|TracerOverhead' -benchtime 5x -benchmem . \
		| $(GO) run ./cmd/wdcbench -baseline BENCH_1.json -out BENCH_1.json -max-regress-pct 15
