// Package repro is a from-scratch reproduction of "New Invalidation
// Algorithms for Wireless Data Caching with Downlink Traffic and Link
// Adaptation" (Yeung & Kwok, IPDPS/IPPS 2004) — see DESIGN.md for the
// important caveat that the paper's body text was unavailable and the
// contribution is reconstructed from its title and the canonical
// literature.
//
// The library lives under internal/: core (public simulation API), ir (the
// invalidation algorithms), and one package per substrate (des, rng, radio,
// mac, db, cache, traffic, workload, energy, metrics, experiment). The
// executables are cmd/wdcsim (single run), cmd/wdcsweep (regenerate every
// figure and table), and cmd/wdctrace (report timeline). Runnable scenario
// walkthroughs live in examples/.
//
// The root package itself carries only this documentation and the benchmark
// harness (bench_test.go), which regenerates each figure/table as a testing
// benchmark.
package repro
