// Package loadgen is the wall-clock load harness: a fleet of simulated cache
// clients — the same harness.Client protocol endpoints the conformance oracle
// drives in virtual time — running against a real wdcserved process over its
// actual UDP broadcast and TCP query planes, with real sleeps standing in for
// think time and doze. It measures what the virtual-clock tiers cannot:
// answer latency under socket concurrency, the actor mailbox backing up, and
// the invalidation contract holding while reports race queries in real time.
//
// The determinism contract is deliberately partial. Each client owns two RNG
// streams: the action stream decides what the client does (think times, item
// picks, query-vs-doze), the proto stream absorbs every draw whose count
// depends on wall timing (signature checks per delivered report, retry
// jitter). Counts derived from action streams alone — queries, scheduled
// catch-ups, injected updates, signal pushes, traffic frames, the queried
// item checksum — are identical across same-seed runs; latencies, retries,
// drops and recovery catch-ups are not, and Result keeps the two classes
// apart.
package loadgen

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/serve/capabilities"
	"repro/internal/traffic"
)

// Config parameterizes one load run against one algorithm.
type Config struct {
	Algo    string // scheme under load (ir.Names)
	Seed    uint64 // drives every stream: per-client, injector, signals
	Clients int    // fleet size
	Steps   int    // actions per client (queries + scheduled catch-ups)

	// Rate is each client's mean action rate in actions per wall second;
	// think times between actions are exponential with this rate.
	Rate float64

	// DozeMeanSec is the mean doze (radio-off) length in wall seconds. Keep
	// it past the server's report window so waking clients exercise the
	// coverage-window rule, not just the happy path.
	DozeMeanSec float64

	Injects int // database updates injected over the run
	Signals int // environment-signal pushes over the run

	// Bin, when non-empty, spawns that wdcserved binary as the target; empty
	// runs an in-process serve.Server behind the same sockets.
	Bin string

	IOTimeout time.Duration // per-exchange socket deadline
	RetryBase time.Duration // bounded-exponential retry backoff base
	RetryMax  int           // retries per exchange before the client gives up
	QueueCap  int           // per-client broadcast buffer (datagrams)

	NumItems int     // database size
	Zipf     float64 // fleet access skew

	// Monitor, when non-nil, receives live counters for a /debug/load
	// endpoint. Nil runs unmonitored.
	Monitor *obs.LoadMonitor
}

// DefaultConfig sizes a run that finishes in a few wall seconds at any fleet
// size the box can hold: 20 actions per client at 20/s mean, with updates and
// signals paced to span the run.
func DefaultConfig(algo string, clients int) Config {
	return Config{
		Algo:        algo,
		Seed:        1,
		Clients:     clients,
		Steps:       20,
		Rate:        20,
		DozeMeanSec: 0.4,
		Injects:     50,
		Signals:     10,
		IOTimeout:   10 * time.Second,
		RetryBase:   50 * time.Millisecond,
		RetryMax:    4,
		QueueCap:    64,
		NumItems:    128,
		Zipf:        0.8,
	}
}

// Validate reports the first configuration problem.
func (c *Config) Validate() error {
	switch {
	case c.Clients <= 0:
		return fmt.Errorf("loadgen: Clients %d", c.Clients)
	case c.Steps <= 0:
		return fmt.Errorf("loadgen: Steps %d", c.Steps)
	case c.Rate <= 0:
		return fmt.Errorf("loadgen: Rate %v", c.Rate)
	case c.DozeMeanSec <= 0:
		return fmt.Errorf("loadgen: DozeMeanSec %v", c.DozeMeanSec)
	case c.Injects < 0:
		return fmt.Errorf("loadgen: Injects %d", c.Injects)
	case c.Signals < 0:
		return fmt.Errorf("loadgen: Signals %d", c.Signals)
	case c.IOTimeout <= 0:
		return fmt.Errorf("loadgen: IOTimeout %v", c.IOTimeout)
	case c.RetryBase <= 0:
		return fmt.Errorf("loadgen: RetryBase %v", c.RetryBase)
	case c.RetryMax < 0:
		return fmt.Errorf("loadgen: RetryMax %d", c.RetryMax)
	case c.QueueCap <= 0:
		return fmt.Errorf("loadgen: QueueCap %d", c.QueueCap)
	case c.NumItems <= 0:
		return fmt.Errorf("loadgen: NumItems %d", c.NumItems)
	case c.Zipf < 0:
		return fmt.Errorf("loadgen: Zipf %v", c.Zipf)
	}
	return nil
}

// runtimeConfig derives the server configuration: the database changes only
// through the injector (UpdateRate 0), so the harness's truth store can track
// every version, and report intervals are tight enough that a few wall
// seconds exercise the broadcast plane.
func (c *Config) runtimeConfig() serve.RuntimeConfig {
	rc := serve.DefaultRuntimeConfig()
	rc.Algo = c.Algo
	rc.Seed = c.Seed
	rc.DB.NumItems = c.NumItems
	rc.DB.ItemBits = 4096
	rc.DB.UpdateRate = 0
	rc.IR.NumItems = c.NumItems
	rc.IR.Interval = 200 * des.Millisecond
	rc.IR.IntervalMin = 100 * des.Millisecond
	rc.IR.IntervalMax = 2 * des.Second
	rc.IR.PiggyMinGap = 20 * des.Millisecond
	return rc
}

// Counts is the deterministic subset of a Result: identical across same-seed
// runs regardless of wall timing, scheduling, or socket behaviour.
type Counts struct {
	Queries       int64  `json:"queries"`
	Catchups      int64  `json:"catchups"` // scheduled (doze-driven) only
	Injects       int64  `json:"injects"`
	Signals       int64  `json:"signals"`
	TrafficFrames uint64 `json:"traffic_frames"`
	ItemSum       uint64 `json:"item_sum"` // checksum over queried item ids
}

// Result summarizes one load run.
type Result struct {
	Algo    string
	Clients int
	Counts  Counts

	// Timing-dependent observables, exempt from the determinism contract.
	RecoveryCatchups int64 // catch-ups triggered by dropped datagrams
	Retries          int64
	Drops            int64 // datagrams a full per-client buffer discarded
	Stale            int64 // must be zero: the paper's correctness invariant
	Elapsed          time.Duration
	Latency          *metrics.Sketch // answer latency, seconds
	QueueMax         int             // server actor mailbox high-water mark
}

// QPS is the fleet's achieved answer rate.
func (r *Result) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Counts.Queries) / r.Elapsed.Seconds()
}

// truthStore is the harness's ground truth: per-item version and update time,
// learned from injection answers. While an injection is in flight — pending
// incremented before the POST, settled from the answer after — reads answer
// des.Never, which conservatively invalidates on the signature path and
// suppresses the staleness sweep until the truth settles; combined with the
// sweep's one-sided version rule this keeps a truth store that momentarily
// lags the wire from ever reporting a false violation.
type truthStore struct {
	mu      sync.Mutex
	ver     []uint64
	at      []des.Time
	pending []int
}

func newTruthStore(n int) *truthStore {
	return &truthStore{ver: make([]uint64, n), at: make([]des.Time, n), pending: make([]int, n)}
}

// UpdatedAt implements ir.Oracle.
func (t *truthStore) UpdatedAt(id int) des.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pending[id] > 0 {
		return des.Never
	}
	return t.at[id]
}

// VersionedAt implements harness.Truth.
func (t *truthStore) VersionedAt(id int) (uint64, des.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pending[id] > 0 {
		return t.ver[id], des.Never
	}
	return t.ver[id], t.at[id]
}

func (t *truthStore) beginInject(id int) {
	t.mu.Lock()
	t.pending[id]++
	t.mu.Unlock()
}

func (t *truthStore) settle(id int, ver uint64, at des.Time) {
	t.mu.Lock()
	if ver > t.ver[id] {
		t.ver[id] = ver
	}
	if at > t.at[id] {
		t.at[id] = at
	}
	t.pending[id]--
	t.mu.Unlock()
}

// observeAnswer folds a query answer into the truth: a version the store has
// not seen yet proves an update happened no later than the answer's AsOf.
// AsOf overestimates the true update time, which errs conservative on every
// consumer (sweep suppressed, signature path invalidates).
func (t *truthStore) observeAnswer(ans capabilities.Answer) {
	t.mu.Lock()
	if ans.Version > t.ver[ans.Item] {
		t.ver[ans.Item] = ans.Version
		if ans.AsOf > t.at[ans.Item] {
			t.at[ans.Item] = ans.AsOf
		}
	}
	t.mu.Unlock()
}

// Run executes one load run: bring up the target, dial the fleet, race
// clients against the injector and the signal pusher, merge per-client
// results in client order. A non-zero stale count is returned as an error —
// the harness's online assertion of the paper's invariant.
func Run(cfg Config) (Result, error) {
	var res Result
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	mon := cfg.Monitor
	if mon == nil {
		mon = &obs.LoadMonitor{}
	}

	udp, err := dialUDP()
	if err != nil {
		return res, err
	}
	defer udp.Close()
	tgt, err := startTarget(&cfg, cfg.runtimeConfig(), udp.LocalAddr().String())
	if err != nil {
		return res, err
	}
	defer tgt.close()

	truth := newTruthStore(cfg.NumItems)
	zipf := rng.NewZipf(cfg.NumItems, cfg.Zipf)
	clients := make([]*simClient, cfg.Clients)
	chans := make([]chan []byte, cfg.Clients)
	drops := make([]atomic.Int64, cfg.Clients)
	for i := range clients {
		chans[i] = make(chan []byte, cfg.QueueCap)
		sc, err := newSimClient(i, &cfg, zipf, chans[i], &drops[i])
		if err != nil {
			return res, err
		}
		clients[i] = sc
	}
	for _, sc := range clients {
		wc, err := dialWire(tgt.tcpAddr, cfg.IOTimeout)
		if err != nil {
			return res, fmt.Errorf("loadgen: dial client %d: %w", sc.id, err)
		}
		sc.wc = wc
		defer wc.Close()
	}

	mon.Begin(cfg.Clients)
	var distDone sync.WaitGroup
	distDone.Add(1)
	go func() {
		defer distDone.Done()
		distribute(udp, chans, drops, mon)
	}()

	start := time.Now()
	stats := make([]clientStats, cfg.Clients)
	var fleet sync.WaitGroup
	for i, sc := range clients {
		fleet.Add(1)
		go func(i int, sc *simClient) {
			defer fleet.Done()
			stats[i] = sc.run(&cfg, truth, mon)
		}(i, sc)
	}

	injErr := make(chan error, 1)
	var injects int64
	go func() {
		n, err := runInjector(&cfg, tgt.ctl, truth, mon)
		injects = n
		injErr <- err
	}()
	sigErr := make(chan error, 1)
	var signals int64
	var frames uint64
	go func() {
		n, f, err := runSignals(&cfg, tgt.ctl, mon)
		signals, frames = n, f
		sigErr <- err
	}()

	fleet.Wait()
	if err := <-injErr; err != nil {
		return res, err
	}
	if err := <-sigErr; err != nil {
		return res, err
	}
	elapsed := time.Since(start)

	st, err := tgt.ctl.status()
	if err != nil {
		return res, err
	}

	// Stop the broadcast plane so the distributor exits before we read the
	// drop counters.
	udp.Close()
	distDone.Wait()

	res = Result{
		Algo:    cfg.Algo,
		Clients: cfg.Clients,
		Counts: Counts{
			Injects:       injects,
			Signals:       signals,
			TrafficFrames: frames,
		},
		Elapsed:  elapsed,
		Latency:  metrics.NewDelaySketch(),
		QueueMax: st.QueueMax,
	}
	var firstErr error
	for i := range stats {
		s := &stats[i]
		res.Counts.Queries += s.queries
		res.Counts.Catchups += s.catchups
		res.Counts.ItemSum += s.itemSum
		res.RecoveryCatchups += s.recoveries
		res.Retries += s.retries
		res.Stale += s.stale
		res.Latency.Merge(s.sketch)
		if s.err != nil && firstErr == nil {
			firstErr = s.err
		}
	}
	for i := range drops {
		res.Drops += drops[i].Load()
	}
	if firstErr != nil {
		return res, firstErr
	}
	if res.Stale > 0 {
		return res, fmt.Errorf("loadgen: %d stale answers [%s, %d clients] — invalidation contract violated",
			res.Stale, cfg.Algo, cfg.Clients)
	}
	return res, nil
}

// distribute fans every broadcast datagram out to the fleet: one read, one
// copy, shared read-only by every client's buffered channel. A full buffer
// drops the datagram for that client only — exactly a lossy downlink — and
// the drop counter tells the client to run a recovery catch-up.
func distribute(udp *net.UDPConn, chans []chan []byte, drops []atomic.Int64, mon *obs.LoadMonitor) {
	buf := make([]byte, 1<<16)
	for {
		n, _, err := udp.ReadFromUDP(buf)
		if err != nil {
			return // listener closed: run over
		}
		dg := append([]byte(nil), buf[:n]...)
		for i := range chans {
			select {
			case chans[i] <- dg:
				mon.AddReport()
			default:
				drops[i].Add(1)
				mon.AddDrop()
			}
		}
	}
}

// runInjector drives the database: cfg.Injects updates, exponentially spaced
// to span the fleet's expected run, items and gaps drawn from the dedicated
// injector stream so the count and item sequence are deterministic.
func runInjector(cfg *Config, ctl *control, truth *truthStore, mon *obs.LoadMonitor) (int64, error) {
	if cfg.Injects == 0 {
		return 0, nil
	}
	src := rng.Stream(cfg.Seed, "load-inject")
	expectedSec := float64(cfg.Steps) / cfg.Rate
	rate := float64(cfg.Injects) / expectedSec
	var done int64
	for k := 0; k < cfg.Injects; k++ {
		time.Sleep(des.FromSeconds(src.Exp(rate)).Std())
		item := src.Intn(cfg.NumItems)
		truth.beginInject(item)
		ans, err := ctl.inject(item)
		if err != nil {
			truth.settle(item, 0, 0)
			return done, err
		}
		truth.settle(item, ans.Version, ans.AsOf)
		done++
		mon.AddInject()
	}
	return done, nil
}

// runSignals pushes the adaptive schemes' environment: SNRs drawn from the
// signals stream and a downlink-load estimate derived from a traffic
// generator pumped over a private virtual clock, one window per push. The
// push count, SNR values and frame count are deterministic; only the wall
// instants the pushes land at vary.
func runSignals(cfg *Config, ctl *control, mon *obs.LoadMonitor) (int64, uint64, error) {
	if cfg.Signals == 0 {
		return 0, 0, nil
	}
	src := rng.Stream(cfg.Seed, "load-signals")
	tc := traffic.DefaultConfig(cfg.Clients)
	tc.RateBps = 2e6
	sch := des.NewScheduler()
	gen, err := traffic.New(sch, tc, rng.Stream(cfg.Seed, "load-traffic"), func(int, int) {})
	if err != nil {
		return 0, 0, err
	}
	gen.Start()

	const linkBps = 10e6
	windowSec := float64(cfg.Steps) / cfg.Rate / float64(cfg.Signals)
	vnow := des.Time(0)
	var done int64
	for k := 0; k < cfg.Signals; k++ {
		time.Sleep(des.FromSeconds(windowSec).Std())
		before := gen.GeneratedBits()
		vnow = vnow.Add(des.FromSeconds(windowSec))
		sch.Run(vnow)
		load := float64(gen.GeneratedBits()-before) / (windowSec * linkBps)
		if load > 1 {
			load = 1
		}
		snrs := make([]float64, 2+src.Intn(6))
		for i := range snrs {
			snrs[i] = src.Uniform(5, 30)
		}
		if err := ctl.setSignals(snrs, load); err != nil {
			return done, gen.GeneratedFrames(), err
		}
		done++
		mon.AddSignals()
	}
	return done, gen.GeneratedFrames(), nil
}
