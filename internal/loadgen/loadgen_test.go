package loadgen

import (
	"testing"
	"time"

	"repro/internal/ir"
	"repro/internal/obs"
)

// smokeConfig sizes a run small enough that all eight algorithms fit in test
// time on one core, while still exercising every plane: queries, doze
// catch-ups, injections, signals, broadcasts.
func smokeConfig(algo string, clients int) Config {
	cfg := DefaultConfig(algo, clients)
	cfg.Steps = 6
	cfg.Rate = 100
	cfg.DozeMeanSec = 0.15
	cfg.Injects = 20
	cfg.Signals = 4
	cfg.NumItems = 64
	return cfg
}

func TestLoadSmokeAllAlgos(t *testing.T) {
	for _, algo := range ir.Names {
		t.Run(algo, func(t *testing.T) {
			var mon obs.LoadMonitor
			cfg := smokeConfig(algo, 8)
			cfg.Monitor = &mon
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Stale != 0 {
				t.Fatalf("stale answers: %d", res.Stale)
			}
			if res.Counts.Queries == 0 {
				t.Fatal("no queries issued")
			}
			if got := res.Latency.Count(); got != uint64(res.Counts.Queries) {
				t.Fatalf("latency sketch holds %d observations, want %d", got, res.Counts.Queries)
			}
			if res.Counts.Injects != int64(cfg.Injects) {
				t.Fatalf("injects %d, want %d", res.Counts.Injects, cfg.Injects)
			}
			if res.Counts.Signals != int64(cfg.Signals) {
				t.Fatalf("signals %d, want %d", res.Counts.Signals, cfg.Signals)
			}
			snap := mon.Snapshot(time.Now())
			if snap.Queries != res.Counts.Queries {
				t.Fatalf("monitor saw %d queries, result has %d", snap.Queries, res.Counts.Queries)
			}
			if snap.ActiveClients != 0 {
				t.Fatalf("%d clients still marked active", snap.ActiveClients)
			}
		})
	}
}

// TestSameSeedCountsIdentical pins the determinism contract: the action-
// stream-derived counts of two same-seed runs match exactly, even though
// latencies, retries and drops are free to differ.
func TestSameSeedCountsIdentical(t *testing.T) {
	cfg := smokeConfig("hybrid", 6)
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Counts != b.Counts {
		t.Fatalf("same-seed counts differ:\n  first  %+v\n  second %+v", a.Counts, b.Counts)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig("ts", 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"clients": func(c *Config) { c.Clients = 0 },
		"steps":   func(c *Config) { c.Steps = 0 },
		"rate":    func(c *Config) { c.Rate = 0 },
		"queue":   func(c *Config) { c.QueueCap = 0 },
		"items":   func(c *Config) { c.NumItems = 0 },
	} {
		cfg := DefaultConfig("ts", 4)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: bad config validated", name)
		}
	}
}
