package loadgen

import (
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/serve/capabilities"
	"repro/internal/serve/harness"
	"repro/internal/workload"
)

// wireClient is one client's TCP connection to the query plane. The framing
// mirrors the conformance target's, minus the lock-step machinery: queries
// and catch-ups, with OpError turned into a Go error.
type wireClient struct {
	addr    string
	timeout time.Duration
	conn    net.Conn
	fr      *serve.FrameReader
}

func dialWire(addr string, timeout time.Duration) (*wireClient, error) {
	w := &wireClient{addr: addr, timeout: timeout}
	if err := w.Reconnect(); err != nil {
		return nil, err
	}
	return w, nil
}

// Reconnect (re)dials the query plane, abandoning any previous connection.
func (w *wireClient) Reconnect() error {
	if w.conn != nil {
		_ = w.conn.Close()
	}
	conn, err := net.Dial("tcp", w.addr)
	if err != nil {
		return err
	}
	w.conn = conn
	w.fr = serve.NewFrameReader(conn)
	return nil
}

func (w *wireClient) Close() {
	if w.conn != nil {
		_ = w.conn.Close()
	}
}

// readFrame reads one response frame, turning OpError into a Go error. The
// payload aliases the reader's buffer: valid until the next read.
func (w *wireClient) readFrame() (byte, []byte, error) {
	_ = w.conn.SetReadDeadline(time.Now().Add(w.timeout))
	op, payload, err := w.fr.Read()
	if err != nil {
		return 0, nil, err
	}
	if op == serve.OpError {
		return 0, nil, fmt.Errorf("loadgen: server error: %s", payload)
	}
	return op, payload, nil
}

// Query runs one item query. The digest, when non-nil, aliases the frame
// buffer and must be consumed before the next exchange on this client.
func (w *wireClient) Query(item int) (capabilities.Answer, []byte, error) {
	var ans capabilities.Answer
	_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	if err := serve.WriteFrame(w.conn, serve.OpQuery, serve.EncodeQuery(item)); err != nil {
		return ans, nil, err
	}
	op, payload, err := w.readFrame()
	if err != nil {
		return ans, nil, err
	}
	if op != serve.OpAnswer {
		return ans, nil, fmt.Errorf("loadgen: query answered with op 0x%02x", op)
	}
	ans, digestFollows, err := serve.DecodeAnswerFrame(payload)
	if err != nil || !digestFollows {
		return ans, nil, err
	}
	op, payload, err = w.readFrame()
	if err != nil {
		return ans, nil, err
	}
	if op != serve.OpReport {
		return ans, nil, fmt.Errorf("loadgen: digest flag set but op 0x%02x followed", op)
	}
	return ans, payload, nil
}

// Catchup requests the update history since the given consistency point. The
// report aliases the frame buffer: consume before the next exchange.
func (w *wireClient) Catchup(since des.Time) ([]byte, error) {
	_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	if err := serve.WriteFrame(w.conn, serve.OpCatchup, serve.EncodeCatchup(since)); err != nil {
		return nil, err
	}
	op, payload, err := w.readFrame()
	if err != nil {
		return nil, err
	}
	if op != serve.OpReport {
		return nil, fmt.Errorf("loadgen: catchup answered with op 0x%02x", op)
	}
	return payload, nil
}

// clientStats is one client's contribution to the run result. The
// deterministic subset (queries, catchups, itemSum) is a function of the
// action stream alone; retries, recoveries, drops and latencies depend on
// wall timing and are explicitly exempt from the determinism contract.
type clientStats struct {
	queries    int64
	catchups   int64
	recoveries int64
	retries    int64
	stale      int64
	itemSum    uint64
	sketch     *metrics.Sketch
	err        error
}

// simClient is one simulated cache client: the protocol endpoint, its socket,
// its two RNG streams, and its slice of the broadcast fan-out.
type simClient struct {
	id      int
	hc      *harness.Client
	wc      *wireClient
	sampler *workload.Sampler
	action  *rng.Source   // think times, item picks, action choice
	proto   *rng.Source   // sig draws (via hc.Src) and retry jitter
	reports <-chan []byte // broadcast datagrams from the distributor
	dropped *atomic.Int64 // datagrams the distributor could not deliver
}

// newSimClient wires one client. Two streams per client keep the
// deterministic counts honest: every draw that decides WHAT the client does
// comes from the action stream, every draw whose count depends on wall timing
// (signature checks per received report, retry jitter) comes from the proto
// stream, so a dropped datagram or a retry can never shift the action
// sequence.
func newSimClient(id int, cfg *Config, zipf *rng.Zipf, reports <-chan []byte, dropped *atomic.Int64) (*simClient, error) {
	action := rng.Stream(cfg.Seed, fmt.Sprintf("load-client-%d", id))
	proto := rng.Stream(cfg.Seed, fmt.Sprintf("load-client-%d-proto", id))
	wcfg := workload.Config{
		QueryRate:    cfg.Rate,
		Zipf:         cfg.Zipf,
		NumItems:     cfg.NumItems,
		AwakeMeanSec: 100,
	}
	sampler, err := workload.NewSampler(wcfg, zipf, action)
	if err != nil {
		return nil, err
	}
	return &simClient{
		id:      id,
		hc:      harness.New(cacheCapacity, cfg.NumItems, proto),
		sampler: sampler,
		action:  action,
		proto:   proto,
		reports: reports,
		dropped: dropped,
	}, nil
}

// cacheCapacity is each client's cache size; small relative to the item
// universe so the Zipf tail keeps churning entries.
const cacheCapacity = 16

// run executes the client's step schedule: think, act (query or doze+catch-
// up), drain the broadcast plane, sweep for stale entries. It returns when
// the schedule is exhausted or the wire fails beyond the retry budget.
func (sc *simClient) run(cfg *Config, truth *truthStore, mon *obs.LoadMonitor) clientStats {
	st := clientStats{sketch: metrics.NewDelaySketch()}
	defer mon.ClientDone()
	var dropsSeen int64
	for step := 0; step < cfg.Steps; step++ {
		if !sc.drain(truth, &st) {
			return st
		}
		// A dropped datagram means this client missed a report the rest of
		// the fleet saw; recover by catching up from the last consistent
		// point, the same move a reconnecting client makes.
		if d := sc.dropped.Load(); d > dropsSeen {
			dropsSeen = d
			if !sc.catchup(cfg, truth, mon, &st, true) {
				return st
			}
		}
		time.Sleep(sc.sampler.NextQueryGap().Std())
		if sc.action.Float64() < queryFraction {
			if !sc.query(cfg, truth, mon, &st) {
				return st
			}
		} else {
			// Doze: radio off long enough to outlive report windows, then
			// the catch-up exchange a waking client runs.
			time.Sleep(des.FromSeconds(sc.action.Exp(1 / cfg.DozeMeanSec)).Std())
			if !sc.drain(truth, &st) {
				return st
			}
			if !sc.catchup(cfg, truth, mon, &st, false) {
				return st
			}
		}
		// The online sweep: assert the invariant now, not just at the end.
		if n := sc.hc.StaleEntries(truth); n > 0 {
			sc.debugStale(truth)
			st.stale += int64(n)
			mon.AddStale(n)
		}
	}
	if !sc.drain(truth, &st) {
		return st
	}
	if n := sc.hc.StaleEntries(truth); n > 0 {
		st.stale += int64(n)
		mon.AddStale(n)
	}
	return st
}

// queryFraction is the action split: query vs doze+catch-up.
const queryFraction = 0.75

// drain processes every queued broadcast datagram.
func (sc *simClient) drain(truth *truthStore, st *clientStats) bool {
	for {
		select {
		case dg := <-sc.reports:
			if len(dg) < 1 {
				st.err = fmt.Errorf("loadgen: client %d: empty datagram", sc.id)
				return false
			}
			if _, err := sc.hc.ProcessWire(dg[1:], truth); err != nil {
				st.err = fmt.Errorf("loadgen: client %d: undecodable datagram: %w", sc.id, err)
				return false
			}
		default:
			return true
		}
	}
}

// query runs one query exchange with bounded-backoff retries, records answer
// latency, processes any piggybacked digest, and caches through the put
// guard.
func (sc *simClient) query(cfg *Config, truth *truthStore, mon *obs.LoadMonitor, st *clientStats) bool {
	item := sc.sampler.NextItem()
	st.itemSum += uint64(item)
	t0 := time.Now()
	ans, digest, err := sc.wc.Query(item)
	for tries := 0; err != nil && tries < cfg.RetryMax; tries++ {
		st.retries++
		mon.AddRetries(1)
		time.Sleep(fault.Backoff(des.Duration(cfg.RetryBase/time.Microsecond), tries, sc.proto.Float64()).Std())
		if rerr := sc.wc.Reconnect(); rerr != nil {
			err = rerr
			continue
		}
		ans, digest, err = sc.wc.Query(item)
	}
	if err != nil {
		st.err = fmt.Errorf("loadgen: client %d: query item %d: %w", sc.id, item, err)
		return false
	}
	st.sketch.Observe(time.Since(t0).Seconds())
	if digest != nil {
		if _, err := sc.hc.ProcessWire(digest, truth); err != nil {
			st.err = fmt.Errorf("loadgen: client %d: bad digest: %w", sc.id, err)
			return false
		}
	}
	sc.hc.CacheAnswer(ans, truth)
	truth.observeAnswer(ans)
	st.queries++
	mon.AddQuery()
	return true
}

// catchup runs one catch-up exchange from the client's consistency point.
// recovery marks drop-triggered catch-ups, which are counted apart from the
// scheduled ones because their count is timing-dependent.
func (sc *simClient) catchup(cfg *Config, truth *truthStore, mon *obs.LoadMonitor, st *clientStats, recovery bool) bool {
	raw, err := sc.wc.Catchup(sc.hc.State.LastConsistent)
	for tries := 0; err != nil && tries < cfg.RetryMax; tries++ {
		st.retries++
		mon.AddRetries(1)
		time.Sleep(fault.Backoff(des.Duration(cfg.RetryBase/time.Microsecond), tries, sc.proto.Float64()).Std())
		if rerr := sc.wc.Reconnect(); rerr != nil {
			err = rerr
			continue
		}
		raw, err = sc.wc.Catchup(sc.hc.State.LastConsistent)
	}
	if err != nil {
		st.err = fmt.Errorf("loadgen: client %d: catchup: %w", sc.id, err)
		return false
	}
	if _, err := sc.hc.ProcessWire(raw, truth); err != nil {
		st.err = fmt.Errorf("loadgen: client %d: bad catchup report: %w", sc.id, err)
		return false
	}
	if recovery {
		st.recoveries++
	} else {
		st.catchups++
	}
	mon.AddCatchup()
	return true
}

// debugStale dumps the offending entries when LOADGEN_DEBUG is set.
func (sc *simClient) debugStale(truth *truthStore) {
	if os.Getenv("LOADGEN_DEBUG") == "" {
		return
	}
	lc := sc.hc.State.LastConsistent
	sc.hc.Cache.Range(func(e cache.Entry) bool {
		ver, at := truth.VersionedAt(e.ID)
		if at <= lc && e.Version < ver {
			fmt.Fprintf(os.Stderr, "STALE client=%d item=%d cached(ver=%d at=%v) truth(ver=%d at=%v) LC=%v\n",
				sc.id, e.ID, e.Version, e.CachedAt, ver, at, lc)
		}
		return true
	})
}
