package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/capabilities"
	"repro/internal/serve/rest"
)

// target is the server under load: its TCP query-plane address, a control-
// plane client, and a teardown hook. Both modes — in-process serve.Server and
// spawned wdcserved binary — run in wall-clock mode behind the same sockets,
// so a load number means the same thing for either.
type target struct {
	tcpAddr string
	ctl     *control
	close   func()
}

// spawnTimeout bounds how long a spawned binary gets to print its address
// line, and how long graceful shutdown may take before SIGKILL.
const spawnTimeout = 15 * time.Second

// startTarget brings up the server under load in wall-clock mode, broadcast
// plane aimed at udpTarget.
func startTarget(cfg *Config, rc serve.RuntimeConfig, udpTarget string) (*target, error) {
	if cfg.Bin != "" {
		return startSubprocess(cfg, rc, udpTarget)
	}
	srv, err := serve.NewServer(serve.Options{
		Runtime:   rc,
		WallClock: true,
		UDPTarget: udpTarget,
		TCPAddr:   "127.0.0.1:0",
		IOTimeout: cfg.IOTimeout,
	})
	if err != nil {
		return nil, err
	}
	hs := httptest.NewServer(rest.Handler(srv))
	return &target{
		tcpAddr: srv.TCPAddr().String(),
		ctl:     &control{base: hs.URL, hc: hs.Client()},
		close: func() {
			hs.Close()
			srv.Shutdown()
		},
	}, nil
}

// startSubprocess spawns the wdcserved binary on ephemeral ports and parses
// the JSON address line it prints, mirroring the conformance target's spawn
// protocol with the clock set to wall.
func startSubprocess(cfg *Config, rc serve.RuntimeConfig, udpTarget string) (*target, error) {
	conf, err := json.Marshal(rc)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(cfg.Bin,
		"-clock", "wall",
		"-udp-target", udpTarget,
		"-tcp", "127.0.0.1:0",
		"-http", "127.0.0.1:0",
		"-io-timeout", cfg.IOTimeout.String(),
		"-conf-json", string(conf),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("loadgen: start %s: %w", cfg.Bin, err)
	}

	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	var line string
	select {
	case l, ok := <-lineCh:
		if !ok {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return nil, fmt.Errorf("loadgen: %s exited before printing its address line", cfg.Bin)
		}
		line = l
	case <-time.After(spawnTimeout):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("loadgen: %s did not print its address line", cfg.Bin)
	}
	var addrs struct {
		TCP  string `json:"tcp"`
		HTTP string `json:"http"`
	}
	if err := json.Unmarshal([]byte(line), &addrs); err != nil || addrs.TCP == "" || addrs.HTTP == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("loadgen: bad address line %q: %v", line, err)
	}
	return &target{
		tcpAddr: addrs.TCP,
		ctl:     &control{base: "http://" + addrs.HTTP, hc: &http.Client{Timeout: spawnTimeout}},
		close: func() {
			_ = cmd.Process.Signal(syscall.SIGTERM)
			done := make(chan struct{})
			go func() { _ = cmd.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(spawnTimeout):
				_ = cmd.Process.Kill()
				<-done
			}
		},
	}, nil
}

// control is the harness's HTTP control-plane client, shared by the update
// injector, the signal pusher and the final status read.
type control struct {
	base string
	hc   *http.Client
}

// post sends one control-plane request and decodes the JSON reply into out.
func (c *control) post(path string, body, out any) error {
	js, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(js))
	if err != nil {
		return fmt.Errorf("loadgen: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: POST %s: %s: %s", path, resp.Status, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// inject applies one database update through the control plane; the answer
// carries the item's post-update version and true update time, which the
// truth store settles on.
func (c *control) inject(item int) (capabilities.Answer, error) {
	var ans capabilities.Answer
	err := c.post("/v1/update", struct {
		Item int `json:"item"`
	}{item}, &ans)
	return ans, err
}

// setSignals pushes the adaptive schemes' environment signals.
func (c *control) setSignals(snrs []float64, load float64) error {
	return c.post("/v1/signals", struct {
		SNRs []float64 `json:"snrs"`
		Load float64   `json:"load"`
	}{snrs, load}, nil)
}

// status snapshots the server, including the actor-queue gauges.
func (c *control) status() (serve.Status, error) {
	var st serve.Status
	resp, err := c.hc.Get(c.base + "/v1/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("loadgen: GET /v1/status: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// dialUDP binds the harness's broadcast listener.
func dialUDP() (*net.UDPConn, error) {
	return net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
}
