package core

import (
	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/topology"
)

// startHandoff begins the periodic mobility check that re-associates clients
// with their nearest cell. Handoffs fire only from this ticker — never from
// inside a delivery fan-out — so a frame in flight always delivers under the
// cell membership it was addressed with.
func (s *Simulation) startHandoff() {
	des.NewTicker(s.sch, s.cfg.Topology.CheckPeriod, "topology.handoff",
		s.checkHandoffs).Start()
}

// checkHandoffs re-associates every client whose nearest base station changed
// since the last check. Clients are visited in ascending id order, keeping
// multi-cell runs deterministic.
func (s *Simulation) checkHandoffs(now des.Time) {
	for i := 0; i < s.ct.n; i++ {
		var to *Cell
		if s.par {
			// Parallel mode: this tick is the only place positions advance.
			// Refresh the frozen snapshot the lanes' path-loss reads use, so
			// every SNR draw between two ticks sees one coherent position.
			x, y := s.topo.Position(i, now)
			s.posX[i], s.posY[i] = x, y
			to = s.cells[s.topo.Nearest(x, y)]
		} else {
			to = s.cells[s.topo.NearestCell(i, now)]
		}
		if to.id != int(s.ct.cell[i]) {
			s.handoff(s.client(i), to, now)
		}
	}
}

// handoff moves one client from its current cell to another. The old cell
// keeps any frames already queued for the client; they deliver as wasted
// airtime (deliver drops departed destinations), which is what a real
// handoff without context transfer costs. In-flight requests are reset so
// the next validating report in the new cell re-issues them there.
func (s *Simulation) handoff(c client, to *Cell, now des.Time) {
	t := &s.ct
	from := c.cell()
	post := now >= s.warmupAt
	if post {
		s.handoffs++
	}
	if c.online() {
		from.roster.remove(c.id)
	} else if !t.awake(c.id) && post {
		s.handoffsAsleep++
	}
	mid := false
	for i := range t.pending[c.id] {
		if t.pending[c.id][i].requested {
			t.pending[c.id][i].requested = false
			mid = true
		}
	}
	if mid && post {
		s.handoffsMidQuery++
	}
	t.outstanding[c.id] = t.outstanding[c.id][:0]
	c.clearAllRetries()
	// A catch-up exchange addressed to the old cell will never answer. Cancel
	// it while the client still resolves to the old cell — the timer lives on
	// that lane — and restart it against the new serving cell after the move.
	restartCatchup := false
	if c.flag(cfCatchupOut) || c.catchupEv() != nil {
		c.cancelCatchup()
		restartCatchup = c.flag(cfRecovering) && c.online()
	}
	t.cell[c.id] = int32(to.id)
	s.migrateClientEvents(c, from, to)
	if c.online() {
		to.roster.add(c.id)
	}
	if restartCatchup {
		c.sendCatchup()
	}
	flushed := false
	if s.cfg.Topology.Policy == topology.Drop {
		// Drop policy: cached entries do not survive re-association. An
		// empty cache is trivially consistent as of now, so the consistency
		// window restarts here instead of forcing a coverage-loss flush on
		// the new cell's first report. Not counted as a protocol drop in
		// istate.Stats — the invalidation scheme didn't cause it.
		c.cache().InvalidateAll()
		c.istate().LastConsistent = now
		flushed = true
		if post {
			s.handoffFlushes++
		}
	}
	// Revalidate policy: keep the cache and let the new cell's next report
	// decide via the coverage-window rule (LastConsistent >= WindowStart).
	// Every cell reports the same shared database timeline, so a report from
	// the new cell validates exactly what one from the old cell would have;
	// if the client's window lapsed, the standard full-report drop path
	// re-synchronizes it.
	if s.tr != nil {
		s.tr.Handoff(obs.HandoffEvent{
			At: now, Client: c.id, From: from.id, To: to.id, Flushed: flushed,
		})
	}
}

// migrateClientEvents moves the client's pending timers from the old serving
// cell's scheduler to the new one. Serial mode shares one scheduler, so there
// is nothing to move. MoveTo preserves each timer's deadline; the re-sequence
// happens at a handoff barrier with every lane frozen, so it is identical for
// every worker count.
func (s *Simulation) migrateClientEvents(c client, from, to *Cell) {
	if from.sch == to.sch {
		return
	}
	t := &s.ct
	if ev := t.queryEv[c.id]; ev != nil {
		t.queryEv[c.id] = from.sch.MoveTo(ev, to.sch)
	}
	if ev := t.sleepEv[c.id]; ev != nil {
		t.sleepEv[c.id] = from.sch.MoveTo(ev, to.sch)
	}
	if len(t.cold) > 0 {
		cd := &t.cold[c.id]
		if cd.connEv != nil {
			cd.connEv = from.sch.MoveTo(cd.connEv, to.sch)
		}
		if cd.catchupEv != nil {
			cd.catchupEv = from.sch.MoveTo(cd.catchupEv, to.sch)
		}
		for k := range cd.retries {
			if ev := cd.retries[k].ev; ev != nil {
				cd.retries[k].ev = from.sch.MoveTo(ev, to.sch)
			}
		}
	}
}
