package core

import (
	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/topology"
)

// startHandoff begins the periodic mobility check that re-associates clients
// with their nearest cell. Handoffs fire only from this ticker — never from
// inside a delivery fan-out — so a frame in flight always delivers under the
// cell membership it was addressed with.
func (s *Simulation) startHandoff() {
	des.NewTicker(s.sch, s.cfg.Topology.CheckPeriod, "topology.handoff",
		s.checkHandoffs).Start()
}

// checkHandoffs re-associates every client whose nearest base station changed
// since the last check. Clients are visited in ascending id order, keeping
// multi-cell runs deterministic.
func (s *Simulation) checkHandoffs(now des.Time) {
	for i := 0; i < s.ct.n; i++ {
		to := s.cells[s.topo.NearestCell(i, now)]
		if to.id != int(s.ct.cell[i]) {
			s.handoff(s.client(i), to, now)
		}
	}
}

// handoff moves one client from its current cell to another. The old cell
// keeps any frames already queued for the client; they deliver as wasted
// airtime (deliver drops departed destinations), which is what a real
// handoff without context transfer costs. In-flight requests are reset so
// the next validating report in the new cell re-issues them there.
func (s *Simulation) handoff(c client, to *Cell, now des.Time) {
	t := &s.ct
	from := c.cell()
	post := now >= s.warmupAt
	if post {
		s.handoffs++
	}
	if c.online() {
		from.roster.remove(c.id)
	} else if !t.awake(c.id) && post {
		s.handoffsAsleep++
	}
	mid := false
	for i := range t.pending[c.id] {
		if t.pending[c.id][i].requested {
			t.pending[c.id][i].requested = false
			mid = true
		}
	}
	if mid && post {
		s.handoffsMidQuery++
	}
	t.outstanding[c.id] = t.outstanding[c.id][:0]
	c.clearAllRetries()
	t.cell[c.id] = int32(to.id)
	if c.online() {
		to.roster.add(c.id)
	}
	// A catch-up exchange addressed to the old cell will never answer;
	// restart it against the new serving cell.
	if c.flag(cfCatchupOut) || c.catchupEv() != nil {
		c.cancelCatchup()
		if c.flag(cfRecovering) && c.online() {
			c.sendCatchup()
		}
	}
	flushed := false
	if s.cfg.Topology.Policy == topology.Drop {
		// Drop policy: cached entries do not survive re-association. An
		// empty cache is trivially consistent as of now, so the consistency
		// window restarts here instead of forcing a coverage-loss flush on
		// the new cell's first report. Not counted as a protocol drop in
		// istate.Stats — the invalidation scheme didn't cause it.
		c.cache().InvalidateAll()
		c.istate().LastConsistent = now
		flushed = true
		if post {
			s.handoffFlushes++
		}
	}
	// Revalidate policy: keep the cache and let the new cell's next report
	// decide via the coverage-window rule (LastConsistent >= WindowStart).
	// Every cell reports the same shared database timeline, so a report from
	// the new cell validates exactly what one from the old cell would have;
	// if the client's window lapsed, the standard full-report drop path
	// re-synchronizes it.
	if s.tr != nil {
		s.tr.Handoff(obs.HandoffEvent{
			At: now, Client: c.id, From: from.id, To: to.id, Flushed: flushed,
		})
	}
}
