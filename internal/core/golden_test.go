package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/des"
)

// goldenConfig is a small but fully featured run: sleeping clients (so the
// awake roster is exercised through doze/wake churn), response snooping and
// coalescing (the O(awake) fan-out paths), and enough horizon for report
// cycles, ARQ and cache pressure to all occur.
func goldenConfig(algo string, seed uint64) Config {
	cfg := DefaultConfig()
	cfg.NumClients = 30
	cfg.Horizon = 600 * des.Second
	cfg.Warmup = 120 * des.Second
	cfg.Seed = seed
	cfg.Algorithm = algo
	cfg.Workload.SleepRatio = 0.4
	cfg.Workload.AwakeMeanSec = 60
	cfg.SnoopResponses = true
	cfg.CoalesceResponses = true
	return cfg
}

// goldenRuns pins the full statistics of six runs, captured before the
// hot-path overhaul (awake roster, frame/report free lists, decode
// memoization, replication arena). Those optimizations must not change what
// the simulator computes — only how fast — so every run must keep
// reproducing these fingerprints byte for byte. If an intentional semantic
// change lands, recapture with fingerprintStats and update.
var goldenRuns = []struct {
	algo string
	seed uint64
	want string
}{
	{"ts", 7, "q=896 ans=848 hit=174 miss=674 d=11.910735323113197 ci=0.8065478171020236 p95=21.948758049625926 max=82.531607 stale=0 drops=60 sig=0 fi=0 rd=568 rl=32 via=[455 0 0] up=744 att=2809 col=613 airIR=0.14745599999999992 airR=28.165216999999977 airBG=212.72822499999967 util=0.5021685374999992 ir=15792 pig=0 rtry=1557 drop=208 e=8065.627700580002 upd=99 pend=48"},
	{"ts", 42, "q=796 ans=762 hit=176 miss=586 d=12.296422325459314 ci=1.8769440077107302 p95=21.948758049625926 max=121.237983 stale=0 drops=54 sig=0 fi=0 rd=540 rl=25 via=[435 0 0] up=612 att=2179 col=487 airIR=0.13363199999999995 airR=16.74618899999991 airBG=202.63910499999974 util=0.4573310958333326 ir=14064 pig=0 rtry=1097 drop=51 e=7884.734674182221 upd=93 pend=34"},
	{"hybrid", 7, "q=880 ans=862 hit=162 miss=700 d=3.0228586496519707 ci=1.2094086578639813 p95=14.431664699351312 max=105.092052 stale=0 drops=81 sig=0 fi=0 rd=20443 rl=1260 via=[443 792 11093] up=727 att=988 col=102 airIR=0.25561699999999987 airR=29.53333500000099 airBG=213.87324699999886 util=0.5076295812499997 ir=31072 pig=148576 rtry=1531 drop=197 e=7771.5060948288865 upd=99 pend=18"},
	{"hybrid", 42, "q=830 ans=830 hit=187 miss=643 d=2.1945949855421665 ci=0.6557152577455312 p95=14.431664699351312 max=38.568873 stale=0 drops=70 sig=0 fi=0 rd=20847 rl=720 via=[477 992 11628] up=646 att=765 col=48 airIR=0.26206000000000035 airR=20.636548999999913 airBG=198.7636189999997 util=0.4576296416666658 ir=30336 pig=134432 rtry=1099 drop=63 e=7905.610882206665 upd=93 pend=0"},
	{"sig", 7, "q=880 ans=843 hit=212 miss=631 d=14.416646867141173 ci=2.3186857333676634 p95=38.388515008533545 max=198.862318 stale=0 drops=0 sig=0 fi=883 rd=557 rl=46 via=[449 0 0] up=703 att=2552 col=547 airIR=1.6435200000000012 airR=29.11103600000025 airBG=214.96568099999948 util=0.5119171604166661 ir=210800 pig=0 rtry=1630 drop=223 e=8270.115960068888 upd=99 pend=37"},
	{"sig", 42, "q=775 ans=743 hit=212 miss=531 d=12.143507130551825 ci=1.1514135646194605 p95=29.027232520630285 max=65.781272 stale=0 drops=0 sig=1 fi=840 rd=523 rl=39 via=[421 0 0] up=564 att=1974 col=461 airIR=1.6435200000000012 airR=16.199176999999914 airBG=201.22826399999968 util=0.45639783541666584 ir=210800 pig=0 rtry=1135 drop=54 e=7514.426488926665 upd=93 pend=32"},
}

// fingerprintStats formats every deterministic RunStats field (perf telemetry
// excluded) so any behavioural divergence shows up byte-for-byte.
func fingerprintStats(r *RunStats) string {
	return fmt.Sprintf("q=%d ans=%d hit=%d miss=%d d=%v ci=%v p95=%v max=%v stale=%d drops=%d sig=%d fi=%d rd=%d rl=%d via=%v up=%d att=%d col=%d airIR=%v airR=%v airBG=%v util=%v ir=%d pig=%d rtry=%d drop=%d e=%v upd=%d pend=%d",
		r.Queries, r.Answered, r.CacheHits, r.MissAnswers,
		r.MeanDelay, r.DelayCI95, r.P95Delay, r.MaxDelay,
		r.StaleViolations, r.CacheDrops, r.SigDrops, r.FalseInval,
		r.ReportsDecoded, r.ReportsLost, r.AnsweredVia,
		r.UplinkSent, r.UplinkAttempts, r.UplinkCollisions,
		r.AirtimeIR, r.AirtimeResponse, r.AirtimeBackground, r.DownlinkUtil,
		r.IRBits, r.PiggyBits, r.ResponseRetries, r.ResponseDrops,
		r.EnergyJoules, r.Updates, r.PendingAtEnd)
}

// TestGoldenDeterminism replays the pinned runs cold and compares every
// statistic byte for byte.
func TestGoldenDeterminism(t *testing.T) {
	for _, g := range goldenRuns {
		t.Run(fmt.Sprintf("%s-%d", g.algo, g.seed), func(t *testing.T) {
			r, err := Run(goldenConfig(g.algo, g.seed))
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprintStats(r); got != g.want {
				t.Errorf("fingerprint diverged\n got: %s\nwant: %s", got, g.want)
			}
		})
	}
}

// TestArenaRecycledRunMatchesCold proves that a simulation built from
// recycled component state — caches, database and channel reclaimed from
// earlier runs with different algorithms and seeds — is bit-identical to a
// cold one: the arena changes where memory comes from, never what runs.
func TestArenaRecycledRunMatchesCold(t *testing.T) {
	ctx := context.Background()
	arena := NewArena()
	// Dirty the arena with runs whose caches, update histories and fading
	// trajectories all differ from the run under test.
	for _, warmup := range []Config{goldenConfig("hybrid", 3), goldenConfig("sig", 11)} {
		warmup.Horizon = 200 * des.Second
		warmup.Warmup = 50 * des.Second
		if _, err := RunRepArena(ctx, warmup, 0, arena); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range goldenRuns[:2] { // both ts seeds: cheap and roster-heavy
		warm, err := RunRepArena(ctx, goldenConfig(g.algo, g.seed), 0, arena)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprintStats(warm); got != g.want {
			t.Errorf("%s-%d: recycled run diverged from cold\n got: %s\nwant: %s",
				g.algo, g.seed, got, g.want)
		}
	}
}
