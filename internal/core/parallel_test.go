package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/topology"
)

// parallelChaosConfig is a multi-cell vehicular run with the whole fault
// layer armed — outages, report destruction, retry pressure, disconnections
// with catch-up recovery — the hardest determinism target for the epoch
// runner: every cross-cell mechanism fires, and every kind of client timer
// exists to be migrated at handoff.
func parallelChaosConfig(seed uint64) Config {
	cfg := multiCellConfig("hybrid", seed)
	cfg.Topology.Policy = topology.Revalidate
	cfg.Fault.QueryTimeout = des.FromSeconds(2)
	cfg.Fault.RetryMax = 4
	cfg.Fault.OutageStart = 20 * des.Second
	cfg.Fault.OutageLen = 10 * des.Second
	cfg.Fault.OutagePeriod = 60 * des.Second
	cfg.Fault.ReportLossProb = 0.15
	cfg.Fault.ReportTruncProb = 0.1
	cfg.Fault.DisconnectRate = 1.0 / 60
	cfg.Fault.DisconnectMeanSec = 25
	cfg.Fault.Recovery = fault.RecoverCatchup
	cfg.Parallel = true
	return cfg
}

// fingerprintParallel covers everything the other fingerprints cover: the
// core statistics, the topology counters, and the fault counters.
func fingerprintParallel(s *Simulation, r *RunStats) string {
	return fingerprintMulti(s, r) + " " + fingerprintFault(r)
}

// TestParallelWorkerInvariance is the tentpole's headline property: a
// parallel run's results are byte-identical for every worker count (including
// the GOMAXPROCS default), rerun-identical, and honor every fault-layer
// invariant.
func TestParallelWorkerInvariance(t *testing.T) {
	for seed := uint64(11); seed < 13; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			var want string
			var wantEpochs uint64
			for _, w := range []int{1, 2, 4, 0} {
				cfg := parallelChaosConfig(seed)
				cfg.ParallelWorkers = w
				sim, r := runMulti(t, cfg)
				if !sim.par {
					t.Fatal("parallel mode did not engage on a multi-cell run")
				}
				if r.Epochs == 0 {
					t.Fatal("no synchronization epochs counted")
				}
				if r.ParallelWorkers < 1 {
					t.Fatalf("ParallelWorkers = %d not recorded", r.ParallelWorkers)
				}
				checkFaultInvariants(t, sim, r)
				if t.Failed() {
					t.Fatalf("invariants violated at workers=%d", w)
				}
				fp := fingerprintParallel(sim, r)
				if want == "" {
					want, wantEpochs = fp, r.Epochs
					continue
				}
				if fp != want {
					t.Fatalf("workers=%d changed results\nwant %s\ngot  %s", w, want, fp)
				}
				if r.Epochs != wantEpochs {
					t.Fatalf("workers=%d ran %d epochs, want %d", w, r.Epochs, wantEpochs)
				}
			}
		})
	}
}

// TestParallelHandoffActivity asserts the invariance test above actually
// exercised the cross-lane machinery: handoffs moved timers between lanes,
// disconnections and recoveries ran, and responses outlived memberships.
func TestParallelHandoffActivity(t *testing.T) {
	cfg := parallelChaosConfig(11)
	cfg.ParallelWorkers = 2
	sim, r := runMulti(t, cfg)
	if r.Handoffs == 0 {
		t.Error("no handoffs in a vehicular parallel run")
	}
	if r.Disconnects == 0 || r.Recoveries == 0 {
		t.Errorf("fault layer idle: %d disconnects, %d recoveries", r.Disconnects, r.Recoveries)
	}
	if sim.mergedLanes().respDeparted == 0 {
		t.Error("no response outlived its destination's cell membership")
	}
	if r.StaleViolations != 0 {
		t.Fatalf("%d stale answers", r.StaleViolations)
	}
}

// TestParallelSingleCellFallsBackToSerial: the parallel gate must ignore the
// flag for single-cell runs, reproducing the pinned serial goldens exactly.
func TestParallelSingleCellFallsBackToSerial(t *testing.T) {
	g := goldenRuns[0]
	cfg := goldenConfig(g.algo, g.seed)
	cfg.Parallel = true
	cfg.ParallelWorkers = 4
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ParallelWorkers != 1 || r.Epochs != 0 {
		t.Fatalf("single-cell run engaged parallel mode: workers=%d epochs=%d",
			r.ParallelWorkers, r.Epochs)
	}
	if got := fingerprintStats(r); got != g.want {
		t.Errorf("single-cell run with Parallel set diverged from golden\n got: %s\nwant: %s", got, g.want)
	}
}

// TestParallelPulseAccounting mirrors the serial OnEventPulse contract for
// the epoch runner: the deltas handed to the pulse callback sum to exactly
// the run's global executed-event count, aggregated across every lane.
func TestParallelPulseAccounting(t *testing.T) {
	cfg := parallelChaosConfig(7)
	cfg.ParallelWorkers = 2
	var total uint64
	var calls int
	cfg.OnEventPulse = func(d uint64) {
		if d == 0 {
			t.Error("empty pulse delta")
		}
		total += d
		calls++
	}
	_, r := runMulti(t, cfg)
	if total != r.Events {
		t.Fatalf("pulse deltas sum to %d, run executed %d events", total, r.Events)
	}
	if calls < 2 {
		t.Fatalf("only %d pulses for a %d-event run", calls, r.Events)
	}
}

// TestParallelCancelInterrupts: fail-fast cancellation must reach every lane
// — the context poll runs on each lane's own executed-event cadence, and the
// barrier loop checks errors after every phase — so a cancel mid-run aborts
// promptly with the context's error instead of partial statistics.
func TestParallelCancelInterrupts(t *testing.T) {
	cfg := parallelChaosConfig(9)
	cfg.ParallelWorkers = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := false
	cfg.OnEventPulse = func(uint64) {
		if !fired {
			fired = true
			cancel()
		}
	}
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.ExecuteCtx(ctx)
	if !fired {
		t.Fatal("run finished before the first pulse; cannot exercise cancellation")
	}
	if r != nil || err == nil {
		t.Fatal("cancelled run returned statistics")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelTracerForcesSerial: attaching a Tracer assumes the serial
// observation order, so the gate must silently fall back.
func TestParallelTracerForcesSerial(t *testing.T) {
	cfg := parallelChaosConfig(5)
	rec := &faultTraceRecorder{}
	cfg.Tracer = rec
	sim, r := runMulti(t, cfg)
	if sim.par || r.Epochs != 0 {
		t.Fatal("tracer-attached run engaged parallel mode")
	}
	if len(rec.handoffs) == 0 {
		t.Error("tracer saw no handoffs")
	}
}
