package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/topology"
)

// TestSingleCellMatchesLegacyGolden proves the componentized core is a pure
// refactor for single-cell runs: both an explicit NumCells=1 topology and the
// zero-value Topology reproduce every pinned pre-refactor fingerprint
// byte for byte.
func TestSingleCellMatchesLegacyGolden(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero-topology", func(c *Config) { c.Topology = topology.Config{} }},
		{"explicit-one-cell", func(c *Config) {
			c.Topology = topology.DefaultConfig()
			c.Topology.NumCells = 1
		}},
	}
	for _, v := range variants {
		for _, g := range goldenRuns {
			t.Run(fmt.Sprintf("%s/%s-%d", v.name, g.algo, g.seed), func(t *testing.T) {
				cfg := goldenConfig(g.algo, g.seed)
				v.mutate(&cfg)
				r, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if r.NumCells != 1 {
					t.Fatalf("NumCells = %d, want 1", r.NumCells)
				}
				if got := fingerprintStats(r); got != g.want {
					t.Errorf("single-cell fingerprint diverged from legacy golden\n got: %s\nwant: %s",
						got, g.want)
				}
			})
		}
	}
}

// multiCellConfig is a 4-cell grid with vehicular speeds: enough motion for
// frequent handoff, enough load that responses sit in downlink queues long
// enough to outlive their destination's cell membership.
func multiCellConfig(algo string, seed uint64) Config {
	cfg := DefaultConfig()
	cfg.NumClients = 24
	cfg.Horizon = 400 * des.Second
	cfg.Warmup = 100 * des.Second
	cfg.Seed = seed
	cfg.Algorithm = algo
	cfg.Workload.SleepRatio = 0.3
	cfg.Workload.AwakeMeanSec = 60
	cfg.SnoopResponses = true
	cfg.CoalesceResponses = true
	cfg.TrafficLoad = 0.5
	cfg.Topology = topology.Config{
		NumCells:     4,
		CellRadiusM:  250,
		MinDistanceM: 20,
		SpeedMinMps:  10,
		SpeedMaxMps:  20,
		PauseMeanSec: 2,
		CheckPeriod:  des.Second,
		Policy:       topology.Drop,
	}
	return cfg
}

// fingerprintMulti extends the golden fingerprint with the topology counters
// so multi-cell determinism checks also cover handoff behaviour.
func fingerprintMulti(s *Simulation, r *RunStats) string {
	return fmt.Sprintf("%s cells=%d hoff=%d flush=%d asleep=%d midq=%d depart=%d",
		fingerprintStats(r), r.NumCells, r.Handoffs, r.HandoffFlushes,
		s.handoffsAsleep, s.handoffsMidQuery, s.mergedLanes().respDeparted)
}

func runMulti(t *testing.T, cfg Config) (*Simulation, *RunStats) {
	t.Helper()
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.ExecuteCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sim, r
}

// TestMultiCellHandoffRun drives a 4-cell mobility run under both handoff
// policies and asserts the edge cases all occur without a single consistency
// violation: handoffs while dozing, handoffs with a request in flight
// (mid-query), and responses delivered after their client departed. The
// revalidate policy additionally exercises handoff mid-IR-window — the kept
// cache must survive or be flushed solely by the coverage-window rule.
func TestMultiCellHandoffRun(t *testing.T) {
	for _, policy := range []topology.HandoffPolicy{topology.Drop, topology.Revalidate} {
		for _, algo := range []string{"ts", "hybrid"} {
			t.Run(fmt.Sprintf("%s-%s", algo, policy), func(t *testing.T) {
				cfg := multiCellConfig(algo, 7)
				cfg.Topology.Policy = policy
				sim, r := runMulti(t, cfg)
				if r.NumCells != 4 {
					t.Fatalf("NumCells = %d, want 4", r.NumCells)
				}
				if r.Handoffs == 0 {
					t.Fatal("no handoffs in a vehicular-mobility run")
				}
				if policy == topology.Drop && r.HandoffFlushes == 0 {
					t.Fatal("drop policy flushed nothing")
				}
				if policy == topology.Revalidate && r.HandoffFlushes != 0 {
					t.Fatalf("revalidate policy flushed %d caches", r.HandoffFlushes)
				}
				if r.StaleViolations != 0 {
					t.Fatalf("handoff broke consistency: %d stale answers", r.StaleViolations)
				}
				if sim.handoffsAsleep == 0 {
					t.Error("no handoff happened while a client dozed")
				}
				if sim.handoffsMidQuery == 0 {
					t.Error("no handoff happened with a request in flight")
				}
				if sim.mergedLanes().respDeparted == 0 {
					t.Error("no response outlived its destination's cell membership")
				}
				if r.Answered == 0 {
					t.Fatal("nothing answered")
				}

				// Identical configuration, identical run: multi-cell execution
				// must stay fully deterministic, handoff counters included.
				sim2, r2 := runMulti(t, cfg)
				if a, b := fingerprintMulti(sim, r), fingerprintMulti(sim2, r2); a != b {
					t.Fatalf("multi-cell run not deterministic\nfirst:  %s\nsecond: %s", a, b)
				}
			})
		}
	}
}

// TestMultiCellWorkerCountInvariance runs the same multi-cell replication set
// on one worker and on four: per-run statistics must be byte-identical, the
// same guarantee the flattened sweep scheduler relies on.
func TestMultiCellWorkerCountInvariance(t *testing.T) {
	cfg := multiCellConfig("ts", 11)
	cfg.Horizon = 200 * des.Second
	cfg.Warmup = 50 * des.Second
	const reps = 4
	seq, err := RunReplications(cfg, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunReplications(cfg, reps, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Runs {
		a, b := fingerprintStats(seq.Runs[i]), fingerprintStats(par.Runs[i])
		if a != b {
			t.Errorf("rep %d diverged across worker counts\n1 worker:  %s\n4 workers: %s", i, a, b)
		}
	}
	if seq.HandoffRate.Mean() != par.HandoffRate.Mean() {
		t.Errorf("handoff rate diverged: %v vs %v", seq.HandoffRate.Mean(), par.HandoffRate.Mean())
	}
	if seq.HandoffRate.Mean() <= 0 {
		t.Errorf("handoff rate %v, want > 0", seq.HandoffRate.Mean())
	}
}

// TestMultiCellArenaRecycled proves arena recycling stays transparent when a
// run needs several channels: a simulation built from reclaimed multi-cell
// state matches a cold one byte for byte, even after the arena was dirtied by
// runs of a different cell count.
func TestMultiCellArenaRecycled(t *testing.T) {
	ctx := context.Background()
	cfg := multiCellConfig("hybrid", 5)
	cfg.Horizon = 200 * des.Second
	cfg.Warmup = 50 * des.Second

	cold, err := RunRep(ctx, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}

	arena := NewArena()
	dirty := goldenConfig("ts", 3) // single-cell: one channel, different shape
	dirty.Horizon = 150 * des.Second
	dirty.Warmup = 30 * des.Second
	if _, err := RunRepArena(ctx, dirty, 0, arena); err != nil {
		t.Fatal(err)
	}
	warm1, err := RunRepArena(ctx, cfg, 0, arena) // one pooled channel, three fresh
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := RunRepArena(ctx, cfg, 0, arena) // all four channels pooled
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintStats(cold)
	for i, r := range []*RunStats{warm1, warm2} {
		if got := fingerprintStats(r); got != want {
			t.Errorf("recycled multi-cell run %d diverged from cold\n got: %s\nwant: %s", i+1, got, want)
		}
	}
}

// handoffRecorder counts handoff trace events.
type handoffRecorder struct {
	obs.Base
	events []obs.HandoffEvent
}

func (h *handoffRecorder) Handoff(e obs.HandoffEvent) { h.events = append(h.events, e) }

// TestHandoffTraceEvents checks the observability contract: every handoff
// emits one event with distinct cells, and the Flushed flag mirrors the
// policy.
func TestHandoffTraceEvents(t *testing.T) {
	cfg := multiCellConfig("ts", 9)
	cfg.Horizon = 200 * des.Second
	cfg.Warmup = 50 * des.Second
	rec := &handoffRecorder{}
	cfg.Tracer = rec
	sim, r := runMulti(t, cfg)
	if len(rec.events) == 0 {
		t.Fatal("no handoff events traced")
	}
	// The trace covers the whole run; RunStats only post-warmup.
	if uint64(len(rec.events)) < r.Handoffs {
		t.Fatalf("traced %d handoffs, stats say %d post-warmup", len(rec.events), r.Handoffs)
	}
	for _, e := range rec.events {
		if e.From == e.To {
			t.Fatalf("handoff to same cell: %+v", e)
		}
		if e.From < 0 || e.From >= len(sim.cells) || e.To < 0 || e.To >= len(sim.cells) {
			t.Fatalf("handoff cell out of range: %+v", e)
		}
		if !e.Flushed {
			t.Fatalf("drop-policy handoff not flushed: %+v", e)
		}
	}
}

// TestTopologyMobilityExclusive checks the config guard: the legacy
// single-cell mobility channel and the multi-cell topology cannot be combined.
func TestTopologyMobilityExclusive(t *testing.T) {
	cfg := multiCellConfig("ts", 1)
	cfg.Channel.UseGeometry = true
	cfg.Channel.Mobility = &mobility.Config{
		CellRadiusM: 500, MinDistanceM: 20,
		SpeedMinMps: 1, SpeedMaxMps: 2, PauseMeanSec: 10,
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted Channel.Mobility together with multi-cell Topology")
	}
}
