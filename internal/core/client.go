package core

import (
	"repro/internal/cache"
	"repro/internal/des"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/workload"
)

// pendingQuery is a query waiting either for the next validating report or
// for requested data.
type pendingQuery struct {
	item      int
	issued    des.Time
	requested bool // an uplink request for this item is outstanding
}

// client is a 16-byte handle to one mobile terminal's row in the simulation's
// clientTable: cache + invalidation state + query and sleep processes +
// energy meter, all stored as columns (see table.go). Methods keep the same
// shape they had when client was a heap struct; field reads became column
// reads.
type client struct {
	sim *Simulation
	id  int
}

// client returns the handle for client id.
func (s *Simulation) client(id int) client { return client{sim: s, id: id} }

func (c client) flag(bit uint8) bool { return c.sim.ct.flags[c.id]&bit != 0 }
func (c client) setFlag(bit uint8)   { c.sim.ct.flags[c.id] |= bit }
func (c client) clrFlag(bit uint8)   { c.sim.ct.flags[c.id] &^= bit }

// online reports whether the client participates in the protocol at all.
func (c client) online() bool { return c.sim.ct.online(c.id) }

func (c client) cell() *Cell { return c.sim.cells[c.sim.ct.cell[c.id]] }

// sch returns the scheduler the client's events run on: its serving cell's
// lane. In serial runs every lane aliases the simulation's scheduler, so
// this is the historical scheduler access spelled through the cell. Handoff
// migrates the client's pending events when its lane changes.
func (c client) sch() *des.Scheduler { return c.sim.cells[c.sim.ct.cell[c.id]].sch }

// ls returns the lane statistics the client's events write to.
func (c client) ls() *laneStats             { return c.sim.cells[c.sim.ct.cell[c.id]].ls }
func (c client) cache() *cache.Cache        { return &c.sim.ct.caches[c.id] }
func (c client) istate() *ir.ClientState    { return &c.sim.ct.istate[c.id] }
func (c client) sampler() *workload.Sampler { return &c.sim.ct.samplers[c.id] }
func (c client) meter() *energy.Meter       { return &c.sim.ct.meters[c.id] }
func (c client) src() *rng.Source           { return &c.sim.ct.csrcs[c.id] }
func (c client) stats() *clientStats        { return &c.sim.ct.stats[c.id] }

// cold returns the client's fault-layer row; only valid once ensureCold ran.
func (c client) cold() *clientCold { return &c.sim.ct.cold[c.id] }

// initClient fills client id's row. The construction draws exactly mirror the
// former per-struct constructor: SubStream derivations read generator state
// without consuming draws, so a pooled table and a fresh one are seeded alike.
func (s *Simulation) initClient(id int, wsrc, csrc *rng.Source, zipf *rng.Zipf, fresh bool) error {
	t := &s.ct
	t.wsrcs[id] = wsrc.SubStreamValue(uint64(id))
	sp, err := workload.NewSampler(s.cfg.Workload, zipf, &t.wsrcs[id])
	if err != nil {
		return err
	}
	t.samplers[id] = *sp
	t.csrcs[id] = csrc.SubStreamValue(uint64(id))
	seed := t.csrcs[id].SubStream(1 << 40)
	if fresh {
		t.caches[id].Init(s.cfg.CacheCapacity, s.cfg.DB.NumItems, s.cfg.CachePolicy, seed)
	} else {
		t.caches[id].Reset(seed)
	}
	t.meters[id] = *energy.NewMeter(s.cfg.Energy)
	t.flags[id] = cfAwake | cfConnected
	c := s.client(id)
	t.queryFn[id] = c.issueQuery
	t.dozeFn[id] = c.tryDoze
	t.wakeFn[id] = c.wake
	return nil
}

// start arms the query and sleep processes.
func (c client) start() {
	c.scheduleQuery()
	if c.sampler().Sleeps() {
		c.sim.ct.sleepEv[c.id] = c.sch().After(c.sampler().NextAwake(), "client.doze", c.sim.ct.dozeFn[c.id])
	}
}

func (c client) scheduleQuery() {
	gap := c.sampler().NextQueryGap()
	if des.Time(0).Add(gap) >= des.Never {
		return // zero query rate
	}
	c.sim.ct.queryEv[c.id] = c.sch().After(gap, "client.query", c.sim.ct.queryFn[c.id])
}

func (c client) issueQuery() {
	t := &c.sim.ct
	t.queryEv[c.id] = nil
	if !c.online() {
		return // cancelled race; doze and disconnect cancel the timer anyway
	}
	now := c.sch().Now()
	item := c.sampler().NextItem()
	t.pending[c.id] = append(t.pending[c.id], pendingQuery{item: item, issued: now})
	c.sim.rollupQuery(now, t.cell[c.id])
	if now >= c.sim.warmupAt {
		t.stats[c.id].queries++
	}
	c.scheduleQuery()
}

// tryDoze begins a doze period, deferring it while queries are in flight so
// a client never abandons an outstanding query mid-protocol.
func (c client) tryDoze() {
	c.sim.ct.sleepEv[c.id] = nil // the doze timer just fired
	if len(c.sim.ct.pending[c.id]) > 0 {
		c.setFlag(cfSleepPending)
		return
	}
	c.doze()
}

func (c client) doze() {
	t := &c.sim.ct
	c.clrFlag(cfSleepPending)
	c.clrFlag(cfAwake)
	if c.flag(cfConnected) {
		c.cell().roster.remove(c.id)
	}
	t.sleptAt[c.id] = c.sch().Now()
	if tr := c.sim.tr; tr != nil {
		tr.SleepWake(obs.SleepWakeEvent{At: t.sleptAt[c.id], Client: c.id, Awake: false})
	}
	if ev := t.queryEv[c.id]; ev != nil {
		c.sch().Cancel(ev)
		t.queryEv[c.id] = nil
	}
	t.sleepEv[c.id] = c.sch().After(c.sampler().NextSleep(), "client.wake", t.wakeFn[c.id])
}

func (c client) wake() {
	t := &c.sim.ct
	t.sleepEv[c.id] = nil // the wake timer just fired
	now := c.sch().Now()
	from := t.sleptAt[c.id]
	if from < c.sim.warmupAt {
		from = c.sim.warmupAt
	}
	if now > from {
		c.meter().AddDoze(now.Sub(from).Seconds())
	}
	c.setFlag(cfAwake)
	if c.flag(cfConnected) {
		c.cell().roster.add(c.id)
	}
	if tr := c.sim.tr; tr != nil {
		tr.SleepWake(obs.SleepWakeEvent{At: now, Client: c.id, Awake: true})
	}
	if c.flag(cfConnected) {
		c.scheduleQuery()
		// A catch-up recovery deferred by sleep starts now the radio is on.
		if c.flag(cfRecovering) && !c.flag(cfCatchupOut) && c.cold().catchupEv == nil &&
			c.sim.cfg.Fault.Recovery == fault.RecoverCatchup {
			c.sendCatchup()
		}
	}
	t.sleepEv[c.id] = c.sch().After(c.sampler().NextAwake(), "client.doze", t.dozeFn[c.id])
}

// onReport handles a decoded invalidation report (standalone or piggyback).
func (c client) onReport(r *ir.Report) {
	c.stats().reportsDecoded++
	c.sim.rollupReport(c.sim.ct.cell[c.id])
	validated := c.istate().Process(r, c.cache(), c.sim.oracle, c.src())
	if validated {
		if c.flag(cfRecovering) {
			// The report's window covered the disconnection gap (or forced
			// the safe full drop): the cache is provably consistent again.
			c.completeRecovery(obs.RecoveryViaReport)
		}
		c.drainPending(r)
	}
}

// onReportLost notes a report this client detected but could not decode.
func (c client) onReportLost() { c.stats().reportsLost++ }

// drainPending resolves queries now that the cache is consistent as of
// r.At: cache hits answer immediately; misses issue uplink requests.
func (c client) drainPending(r *ir.Report) {
	t := &c.sim.ct
	now := c.sch().Now()
	kept := t.pending[c.id][:0]
	for _, q := range t.pending[c.id] {
		if q.requested {
			kept = append(kept, q)
			continue
		}
		if e, ok := c.cache().Get(q.item); ok {
			c.answer(q, now, true)
			if c.sim.cfg.CheckConsistency {
				c.checkConsistency(e, r.At)
			}
			continue
		}
		q.requested = true
		if !t.outstandingHas(c.id, q.item) {
			t.outstandingAdd(c.id, q.item)
			c.sendRequest(q.item)
		}
		kept = append(kept, q)
	}
	t.pending[c.id] = kept
	if now >= c.sim.warmupAt {
		t.stats[c.id].drainedVia[r.Kind]++
	}
	c.maybeDozeAfterDrain()
}

// onResponse handles a downlink data frame addressed to this client.
func (c client) onResponse(m *respMeta, ok bool) {
	t := &c.sim.ct
	if !ok {
		// ARQ exhausted; if we still want the item, ask again.
		for i := range t.pending[c.id] {
			if t.pending[c.id][i].item == m.item && t.pending[c.id][i].requested {
				c.sendRequest(m.item)
				return
			}
		}
		t.outstandingRemove(c.id, m.item)
		c.clearRetry(m.item)
		return
	}
	t.outstandingRemove(c.id, m.item)
	c.clearRetry(m.item)
	// Cache the value unless it is already outdated relative to a report we
	// processed while the response sat in the downlink queue: an update in
	// (genAt, LastConsistent] was listed by a report that could not
	// invalidate the not-yet-resident entry, and no future report is
	// guaranteed to re-list it. (The oracle read stands in for the client
	// remembering the update times it saw in reports — information it had
	// on the air but that we do not retain per item.)
	u := c.sim.oracle.UpdatedAt(m.item)
	if !(u > m.genAt && u <= c.istate().LastConsistent) {
		c.cache().Put(m.item, m.version, m.genAt)
	}
	now := c.sch().Now()
	kept := t.pending[c.id][:0]
	for _, q := range t.pending[c.id] {
		if q.item == m.item && q.requested {
			c.answer(q, now, false)
			continue
		}
		kept = append(kept, q)
	}
	t.pending[c.id] = kept
	c.maybeDozeAfterDrain()
}

// onSnoop handles a response frame overheard on its way to another client:
// the value may populate the cache (same staleness guard as onResponse),
// and it may answer a pending query for the item — but only a query issued
// no later than the value's generation time, otherwise an update between
// generation and issue could be silently skipped.
func (c client) onSnoop(m *respMeta) {
	t := &c.sim.ct
	u := c.sim.oracle.UpdatedAt(m.item)
	if !(u > m.genAt && u <= c.istate().LastConsistent) {
		c.cache().Put(m.item, m.version, m.genAt)
	}
	now := c.sch().Now()
	kept := t.pending[c.id][:0]
	for _, q := range t.pending[c.id] {
		if q.item == m.item && q.issued <= m.genAt {
			c.answer(q, now, false)
			continue
		}
		kept = append(kept, q)
	}
	t.pending[c.id] = kept
	c.maybeDozeAfterDrain()
}

func (c client) maybeDozeAfterDrain() {
	if c.flag(cfSleepPending) && len(c.sim.ct.pending[c.id]) == 0 {
		c.doze()
	}
}

func (c client) answer(q pendingQuery, now des.Time, fromCache bool) {
	if tr := c.sim.tr; tr != nil {
		// Traces cover the whole run, including the warmup transient the
		// statistics below exclude.
		tr.Query(obs.QueryEvent{At: now, Client: c.id, Cell: int(c.sim.ct.cell[c.id]),
			Item: q.item, Hit: fromCache, DelaySec: now.Sub(q.issued).Seconds()})
	}
	// Rollups, like traces, cover the whole run including warmup.
	c.sim.rollupAnswer(now, c.sim.ct.cell[c.id], fromCache, now.Sub(q.issued).Seconds())
	if q.issued < c.sim.warmupAt {
		return // warmup transient: not measured
	}
	c.ls().delay.Observe(now.Sub(q.issued).Seconds())
	if fromCache {
		c.stats().hits++
	} else {
		c.stats().missAnswers++
	}
}

// checkConsistency compares a cache-served value against ground truth as of
// the validating report's generation time. If the item has not been updated
// since that time, the cached version must match the database exactly.
func (c client) checkConsistency(e cache.Entry, asOf des.Time) {
	it := c.sim.db.Item(e.ID)
	stale := it.UpdatedAt <= asOf && e.Version != it.Version
	if stale {
		c.stats().stale++
	}
	c.sim.rollupStaleCheck(c.sim.ct.cell[c.id], stale)
}
