package core

import (
	"repro/internal/cache"
	"repro/internal/des"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/workload"
)

// pendingQuery is a query waiting either for the next validating report or
// for requested data.
type pendingQuery struct {
	item      int
	issued    des.Time
	requested bool // an uplink request for this item is outstanding
}

// client is one mobile terminal: cache + invalidation state + query and
// sleep processes + energy meter.
type client struct {
	id      int
	sim     *Simulation
	cell    *Cell // serving cell; reassigned by handoff in multi-cell runs
	cache   *cache.Cache
	istate  ir.ClientState
	sampler *workload.Sampler
	meter   *energy.Meter
	src     *rng.Source // for signature false-positive draws

	awake        bool
	sleepPending bool
	sleptAt      des.Time
	queryEv      *des.Event
	pending      []pendingQuery
	outstanding  map[int]bool // items with an uplink request in flight

	// Fault-layer state (see core/fault.go). connected is orthogonal to
	// awake: a disconnected client's radio is fully dark, beyond doze, and
	// roster membership maintains awake && connected. fsrc is the client's
	// private fault-draw stream; retries is non-nil only when the retry
	// layer is enabled.
	connected     bool
	fsrc          *rng.Source
	retries       map[int]*retryState
	recovering    bool // reconnected but cache consistency not yet re-proven
	reconnectedAt des.Time
	catchupOut    bool // a catch-up request is in flight
	catchupTries  int
	catchupEv     *des.Event

	// Method-value callbacks bound once at construction: scheduling a
	// query/doze/wake event then costs no closure allocation.
	queryFn   func()
	dozeFn    func()
	wakeFn    func()
	discFn    func()
	reconnFn  func()
	catchupFn func()

	// per-client measurements
	queries        uint64 // issued post-warmup
	hits           uint64
	missAnswers    uint64
	stale          uint64
	reportsDecoded uint64
	reportsLost    uint64
	drainedVia     [3]uint64 // answers enabled by full/mini/piggyback reports
}

func newClient(id int, sim *Simulation, sampler *workload.Sampler, src *rng.Source, arena *Arena) *client {
	// SubStream only reads generator state, so both branches leave src's draw
	// sequence untouched — a pooled cache and a fresh one are seeded alike.
	var cc *cache.Cache
	if arena != nil {
		cc = arena.takeCache(sim.cfg.CacheCapacity, sim.cfg.DB.NumItems, sim.cfg.CachePolicy)
	}
	if cc != nil {
		cc.Reset(src.SubStream(1 << 40))
	} else {
		cc = cache.NewWithPolicy(sim.cfg.CacheCapacity, sim.cfg.DB.NumItems,
			sim.cfg.CachePolicy, src.SubStream(1<<40))
	}
	c := &client{
		id:          id,
		sim:         sim,
		cache:       cc,
		sampler:     sampler,
		meter:       energy.NewMeter(sim.cfg.Energy),
		src:         src,
		awake:       true,
		connected:   true,
		outstanding: make(map[int]bool),
	}
	c.queryFn = c.issueQuery
	c.dozeFn = c.tryDoze
	c.wakeFn = c.wake
	return c
}

// start arms the query and sleep processes.
func (c *client) start() {
	c.scheduleQuery()
	if c.sampler.Sleeps() {
		c.sim.sch.After(c.sampler.NextAwake(), "client.doze", c.dozeFn)
	}
}

func (c *client) scheduleQuery() {
	gap := c.sampler.NextQueryGap()
	if des.Time(0).Add(gap) >= des.Never {
		return // zero query rate
	}
	c.queryEv = c.sim.sch.After(gap, "client.query", c.queryFn)
}

func (c *client) issueQuery() {
	c.queryEv = nil
	if !c.awake || !c.connected {
		return // cancelled race; doze and disconnect cancel the timer anyway
	}
	now := c.sim.sch.Now()
	item := c.sampler.NextItem()
	c.pending = append(c.pending, pendingQuery{item: item, issued: now})
	if now >= c.sim.warmupAt {
		c.queries++
	}
	c.scheduleQuery()
}

// tryDoze begins a doze period, deferring it while queries are in flight so
// a client never abandons an outstanding query mid-protocol.
func (c *client) tryDoze() {
	if len(c.pending) > 0 {
		c.sleepPending = true
		return
	}
	c.doze()
}

func (c *client) doze() {
	c.sleepPending = false
	c.awake = false
	if c.connected {
		c.cell.rosterRemove(c.id)
	}
	c.sleptAt = c.sim.sch.Now()
	if tr := c.sim.tr; tr != nil {
		tr.SleepWake(obs.SleepWakeEvent{At: c.sleptAt, Client: c.id, Awake: false})
	}
	if c.queryEv != nil {
		c.sim.sch.Cancel(c.queryEv)
		c.queryEv = nil
	}
	c.sim.sch.After(c.sampler.NextSleep(), "client.wake", c.wakeFn)
}

func (c *client) wake() {
	now := c.sim.sch.Now()
	from := c.sleptAt
	if from < c.sim.warmupAt {
		from = c.sim.warmupAt
	}
	if now > from {
		c.meter.AddDoze(now.Sub(from).Seconds())
	}
	c.awake = true
	if c.connected {
		c.cell.rosterAdd(c.id)
	}
	if tr := c.sim.tr; tr != nil {
		tr.SleepWake(obs.SleepWakeEvent{At: now, Client: c.id, Awake: true})
	}
	if c.connected {
		c.scheduleQuery()
		// A catch-up recovery deferred by sleep starts now the radio is on.
		if c.recovering && !c.catchupOut && c.catchupEv == nil &&
			c.sim.cfg.Fault.Recovery == fault.RecoverCatchup {
			c.sendCatchup()
		}
	}
	c.sim.sch.After(c.sampler.NextAwake(), "client.doze", c.dozeFn)
}

// onReport handles a decoded invalidation report (standalone or piggyback).
func (c *client) onReport(r *ir.Report) {
	c.reportsDecoded++
	validated := c.istate.Process(r, c.cache, c.sim.oracle, c.src)
	if validated {
		if c.recovering {
			// The report's window covered the disconnection gap (or forced
			// the safe full drop): the cache is provably consistent again.
			c.completeRecovery(obs.RecoveryViaReport)
		}
		c.drainPending(r)
	}
}

// onReportLost notes a report this client detected but could not decode.
func (c *client) onReportLost() { c.reportsLost++ }

// drainPending resolves queries now that the cache is consistent as of
// r.At: cache hits answer immediately; misses issue uplink requests.
func (c *client) drainPending(r *ir.Report) {
	now := c.sim.sch.Now()
	kept := c.pending[:0]
	for _, q := range c.pending {
		if q.requested {
			kept = append(kept, q)
			continue
		}
		if e, ok := c.cache.Get(q.item); ok {
			c.answer(q, now, true)
			if c.sim.cfg.CheckConsistency {
				c.checkConsistency(e, r.At)
			}
			continue
		}
		q.requested = true
		if !c.outstanding[q.item] {
			c.outstanding[q.item] = true
			c.sendRequest(q.item)
		}
		kept = append(kept, q)
	}
	c.pending = kept
	if now >= c.sim.warmupAt {
		c.drainedVia[r.Kind]++
	}
	c.maybeDozeAfterDrain()
}

// onResponse handles a downlink data frame addressed to this client.
func (c *client) onResponse(m *respMeta, ok bool) {
	if !ok {
		// ARQ exhausted; if we still want the item, ask again.
		for i := range c.pending {
			if c.pending[i].item == m.item && c.pending[i].requested {
				c.sendRequest(m.item)
				return
			}
		}
		delete(c.outstanding, m.item)
		c.clearRetry(m.item)
		return
	}
	delete(c.outstanding, m.item)
	c.clearRetry(m.item)
	// Cache the value unless it is already outdated relative to a report we
	// processed while the response sat in the downlink queue: an update in
	// (genAt, LastConsistent] was listed by a report that could not
	// invalidate the not-yet-resident entry, and no future report is
	// guaranteed to re-list it. (The oracle read stands in for the client
	// remembering the update times it saw in reports — information it had
	// on the air but that we do not retain per item.)
	u := c.sim.oracle.UpdatedAt(m.item)
	if !(u > m.genAt && u <= c.istate.LastConsistent) {
		c.cache.Put(m.item, m.version, m.genAt)
	}
	now := c.sim.sch.Now()
	kept := c.pending[:0]
	for _, q := range c.pending {
		if q.item == m.item && q.requested {
			c.answer(q, now, false)
			continue
		}
		kept = append(kept, q)
	}
	c.pending = kept
	c.maybeDozeAfterDrain()
}

// onSnoop handles a response frame overheard on its way to another client:
// the value may populate the cache (same staleness guard as onResponse),
// and it may answer a pending query for the item — but only a query issued
// no later than the value's generation time, otherwise an update between
// generation and issue could be silently skipped.
func (c *client) onSnoop(m *respMeta) {
	u := c.sim.oracle.UpdatedAt(m.item)
	if !(u > m.genAt && u <= c.istate.LastConsistent) {
		c.cache.Put(m.item, m.version, m.genAt)
	}
	now := c.sim.sch.Now()
	kept := c.pending[:0]
	for _, q := range c.pending {
		if q.item == m.item && q.issued <= m.genAt {
			c.answer(q, now, false)
			continue
		}
		kept = append(kept, q)
	}
	c.pending = kept
	c.maybeDozeAfterDrain()
}

func (c *client) maybeDozeAfterDrain() {
	if c.sleepPending && len(c.pending) == 0 {
		c.doze()
	}
}

func (c *client) answer(q pendingQuery, now des.Time, fromCache bool) {
	if tr := c.sim.tr; tr != nil {
		// Traces cover the whole run, including the warmup transient the
		// statistics below exclude.
		tr.Query(obs.QueryEvent{At: now, Client: c.id, Cell: c.cell.id,
			Item: q.item, Hit: fromCache, DelaySec: now.Sub(q.issued).Seconds()})
	}
	if q.issued < c.sim.warmupAt {
		return // warmup transient: not measured
	}
	c.sim.delay.Observe(now.Sub(q.issued).Seconds())
	if fromCache {
		c.hits++
	} else {
		c.missAnswers++
	}
}

// checkConsistency compares a cache-served value against ground truth as of
// the validating report's generation time. If the item has not been updated
// since that time, the cached version must match the database exactly.
func (c *client) checkConsistency(e cache.Entry, asOf des.Time) {
	it := c.sim.db.Item(e.ID)
	if it.UpdatedAt <= asOf && e.Version != it.Version {
		c.stale++
	}
}
