package core

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/des"
	"repro/internal/mac"
	"repro/internal/metrics"
)

// RunStats are the post-warmup measurements of one replication. All rates
// are per measured second; all delays in seconds.
type RunStats struct {
	Seed        uint64
	Algorithm   string
	MeasuredSec float64

	// Query path.
	Queries     uint64
	Answered    uint64
	CacheHits   uint64
	MissAnswers uint64
	MeanDelay   float64
	DelayCI95   float64 // single-run batch-means half-width on MeanDelay
	P95Delay    float64
	MaxDelay    float64
	HitRatio    float64

	// Tail quantiles from the mergeable delay sketch. P95Delay above stays
	// the exact histogram estimate for continuity; these four come from the
	// sketch so they compose across replications by sketch merge.
	P50Delay  float64
	P90Delay  float64
	P99Delay  float64
	P999Delay float64

	// Consistency.
	StaleViolations uint64
	CacheDrops      uint64 // full-cache flushes forced by coverage loss
	SigDrops        uint64
	FalseInval      uint64

	// Reports as seen by clients.
	ReportsDecoded uint64
	ReportsLost    uint64
	AnsweredVia    [3]uint64 // indexed by ir.Kind of the enabling report

	// Uplink.
	UplinkSent       uint64
	UplinkAttempts   uint64
	UplinkCollisions uint64

	// Downlink airtime split (seconds) and invalidation overhead.
	AirtimeIR         float64
	AirtimeResponse   float64
	AirtimeBackground float64
	DownlinkUtil      float64
	IRBits            uint64
	PiggyBits         uint64
	ResponseRetries   uint64
	ResponseDrops     uint64

	// Energy.
	EnergyJoules   float64 // summed over clients
	EnergyPerQuery float64

	// Workload realized.
	Updates uint64

	// Topology. NumCells is 1 for classic single-cell runs; Handoffs and
	// HandoffFlushes count post-warmup re-associations and the cache flushes
	// the drop policy charged for them.
	NumCells       int
	Handoffs       uint64
	HandoffFlushes uint64

	// Fault injection (all zero when the fault layer is disabled). Counts are
	// post-warmup; RecoveryMeanSec is NaN when no recovery completed in the
	// measured window.
	Outages             uint64
	ReportsSuppressed   uint64
	ReportsFaultLost    uint64
	ReportsFaultTrunc   uint64
	QueriesLostToOutage uint64
	QueryRetries        uint64
	QueryGiveups        uint64
	Disconnects         uint64
	Recoveries          uint64
	RecoveryMeanSec     float64

	// PendingAtEnd counts queries still unanswered at the horizon (they are
	// excluded from delay statistics; a large value flags saturation).
	PendingAtEnd int

	// Execution performance — wall-clock telemetry about the run itself,
	// not simulation output. Never folded into aggregates or checkpointed
	// cell results, which must stay machine- and load-independent.
	// HeapAllocBytes is the process heap at collection time; concurrent
	// replications share one heap, so treat it as an upper-bound indicator,
	// not a per-replication measurement.
	WallSec        float64
	Events         uint64
	EventsPerSec   float64
	HeapAllocBytes uint64

	// Parallel-execution telemetry. ParallelWorkers is 1 for serial runs;
	// Epochs counts synchronization barriers (zero when serial). Like the
	// block above, never folded into aggregates.
	ParallelWorkers int
	Epochs          uint64

	DelaySeries metrics.Series
	DelayHist   *metrics.Histogram

	// Mergeable quantile sketches over the measured window: every post-warmup
	// query delay (seconds) and each client's total energy (joules). Unlike
	// DelaySeries/DelayHist these survive aggregation — merging the sketches
	// of all replications, in any order, yields byte-identical population
	// digests (see metrics.Sketch).
	DelaySketch  *metrics.Sketch
	EnergySketch *metrics.Sketch
}

// collect builds RunStats from the simulation's post-warmup deltas. The
// delay recorder and the lane counters are merged across lanes in ascending
// cell-id order (a serial run has exactly one lane, shared by every cell).
func (s *Simulation) collect(end des.Time) *RunStats {
	measured := end.Sub(s.warmupAt).Seconds()
	delay := s.mergedDelay()
	lane := s.mergedLanes()
	r := &RunStats{
		Seed:           s.cfg.Seed,
		Algorithm:      s.cfg.Algorithm,
		MeasuredSec:    measured,
		DelaySeries:    delay.Series(),
		DelayHist:      delay.Histogram(),
		DelaySketch:    delay.Sketch(),
		EnergySketch:   metrics.NewEnergySketch(),
		MeanDelay:      delay.Mean(),
		DelayCI95:      delay.CI95(),
		P95Delay:       delay.Quantile(0.95),
		MaxDelay:       delay.Max(),
		P50Delay:       delay.Sketch().Quantile(0.50),
		P90Delay:       delay.Sketch().Quantile(0.90),
		P99Delay:       delay.Sketch().Quantile(0.99),
		P999Delay:      delay.Sketch().Quantile(0.999),
		Updates:        s.db.Updates() - s.snapUpd,
		NumCells:       len(s.cells),
		Handoffs:       s.handoffs,
		HandoffFlushes: s.handoffFlushes,

		Outages:             s.outages,
		ReportsSuppressed:   lane.reportsSuppressed,
		ReportsFaultLost:    lane.reportsFaultLost,
		ReportsFaultTrunc:   lane.reportsFaultTrunc,
		QueriesLostToOutage: lane.queriesLostToOutage,
		QueryRetries:        lane.queryRetries,
		QueryGiveups:        lane.queryGiveups,
		Disconnects:         lane.disconnects,
		Recoveries:          lane.recoveries,
		RecoveryMeanSec:     lane.recoveryDelay.Mean(),

		ParallelWorkers: s.parWorkers,
		Epochs:          s.epochs,
	}
	for i := 0; i < s.ct.n; i++ {
		st := &s.ct.stats[i]
		r.Queries += st.queries
		r.CacheHits += st.hits
		r.MissAnswers += st.missAnswers
		r.StaleViolations += st.stale
		r.ReportsDecoded += st.reportsDecoded
		r.ReportsLost += st.reportsLost
		r.CacheDrops += s.ct.istate[i].Stats.Drops.Value()
		r.SigDrops += s.ct.istate[i].Stats.SigDrops.Value()
		r.FalseInval += s.ct.istate[i].Stats.FalseInval.Value()
		for k, v := range st.drainedVia {
			r.AnsweredVia[k] += v
		}
		e := s.ct.meters[i].Energy(measured)
		r.EnergyJoules += e
		r.EnergySketch.Observe(e) // ascending client id: deterministic order
		r.PendingAtEnd += len(s.ct.pending[i])
	}
	r.Answered = r.CacheHits + r.MissAnswers
	if r.Answered > 0 {
		r.HitRatio = float64(r.CacheHits) / float64(r.Answered)
	} else {
		r.HitRatio = math.NaN()
	}
	if r.Queries > 0 {
		r.EnergyPerQuery = r.EnergyJoules / float64(r.Queries)
	} else {
		r.EnergyPerQuery = math.NaN()
	}

	for _, cell := range s.cells {
		up := cell.uplink.Stats()
		r.UplinkSent += up.Sent.Value() - cell.snapUp.sent
		r.UplinkAttempts += up.Attempts.Value() - cell.snapUp.attempts
		r.UplinkCollisions += up.Collisions.Value() - cell.snapUp.collisions

		down := cell.downlink.Stats()
		r.AirtimeIR += down.Busy[mac.KindIR] - cell.snapDown.Busy[mac.KindIR]
		r.AirtimeResponse += down.Busy[mac.KindResponse] - cell.snapDown.Busy[mac.KindResponse]
		r.AirtimeBackground += down.Busy[mac.KindBackground] - cell.snapDown.Busy[mac.KindBackground]
		r.IRBits += cell.server.irBitsSent - cell.snapIR
		r.PiggyBits += cell.server.piggyBitsSent - cell.snapPig
		r.ResponseRetries += down.Retries.Value() - cell.snapDown.Retries.Value()
		r.ResponseDrops += down.Drops.Value() - cell.snapDown.Drops.Value()
	}
	if measured > 0 {
		// Cells are independent media, so utilization is the mean busy
		// fraction across them.
		r.DownlinkUtil = (r.AirtimeIR + r.AirtimeResponse + r.AirtimeBackground) /
			(measured * float64(len(s.cells)))
		// A frame straddling the warmup boundary credits its whole airtime
		// to the measured window; at saturation that can push the ratio a
		// fraction of a percent over 1. Clamp: utilization is a fraction.
		if r.DownlinkUtil > 1 {
			r.DownlinkUtil = 1
		}
	}
	return r
}

// OverheadBitsPerSec reports the invalidation overhead rate on the air
// (standalone reports plus piggybacked digests).
func (r *RunStats) OverheadBitsPerSec() float64 {
	if r.MeasuredSec <= 0 {
		return math.NaN()
	}
	return float64(r.IRBits+r.PiggyBits) / r.MeasuredSec
}

// UplinkPerAnswer reports the average uplink requests spent per answered
// query.
func (r *RunStats) UplinkPerAnswer() float64 {
	if r.Answered == 0 {
		return math.NaN()
	}
	return float64(r.UplinkSent) / float64(r.Answered)
}

// RetriesPerQuery reports the average number of uplink timeout re-sends per
// issued query. Zero when the retry layer never fired; NaN with no queries.
func (r *RunStats) RetriesPerQuery() float64 {
	if r.Queries == 0 {
		return math.NaN()
	}
	return float64(r.QueryRetries) / float64(r.Queries)
}

// ReportLossRate reports the fraction of report receptions that failed to
// decode.
func (r *RunStats) ReportLossRate() float64 {
	total := r.ReportsDecoded + r.ReportsLost
	if total == 0 {
		return math.NaN()
	}
	return float64(r.ReportsLost) / float64(total)
}

// String renders a one-run summary.
func (r *RunStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s seed=%d %.0fs: queries=%d answered=%d hit=%.3f delay=%.3fs p95=%.3fs\n",
		r.Algorithm, r.Seed, r.MeasuredSec, r.Queries, r.Answered, r.HitRatio, r.MeanDelay, r.P95Delay)
	fmt.Fprintf(&b, "        uplink=%d (%.2f/ans) overhead=%.0fb/s util=%.3f energy/q=%.2fJ stale=%d drops=%d",
		r.UplinkSent, r.UplinkPerAnswer(), r.OverheadBitsPerSec(), r.DownlinkUtil,
		r.EnergyPerQuery, r.StaleViolations, r.CacheDrops)
	return b.String()
}

// PerfString renders the execution-performance telemetry as one line.
func (r *RunStats) PerfString() string {
	return fmt.Sprintf("perf: wall=%.2fs events=%d (%.0f ev/s) heap=%.1fMB",
		r.WallSec, r.Events, r.EventsPerSec, float64(r.HeapAllocBytes)/(1<<20))
}

// MarshalJSON renders the scalar statistics for scripting (series and
// histogram internals are process-local and omitted; derived rates are
// included; NaN — not representable in JSON — becomes -1).
func (r *RunStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]any{
		"Seed":                 r.Seed,
		"Algorithm":            r.Algorithm,
		"MeasuredSec":          r.MeasuredSec,
		"Queries":              r.Queries,
		"Answered":             r.Answered,
		"CacheHits":            r.CacheHits,
		"MissAnswers":          r.MissAnswers,
		"MeanDelay":            jsonSafe(r.MeanDelay),
		"DelayCI95":            jsonSafe(r.DelayCI95),
		"P95Delay":             jsonSafe(r.P95Delay),
		"MaxDelay":             jsonSafe(r.MaxDelay),
		"P50Delay":             jsonSafe(r.P50Delay),
		"P90Delay":             jsonSafe(r.P90Delay),
		"P99Delay":             jsonSafe(r.P99Delay),
		"P999Delay":            jsonSafe(r.P999Delay),
		"HitRatio":             jsonSafe(r.HitRatio),
		"StaleViolations":      r.StaleViolations,
		"CacheDrops":           r.CacheDrops,
		"SigDrops":             r.SigDrops,
		"FalseInval":           r.FalseInval,
		"ReportsDecoded":       r.ReportsDecoded,
		"ReportsLost":          r.ReportsLost,
		"AnsweredViaFull":      r.AnsweredVia[0],
		"AnsweredViaMini":      r.AnsweredVia[1],
		"AnsweredViaPiggyback": r.AnsweredVia[2],
		"UplinkSent":           r.UplinkSent,
		"UplinkAttempts":       r.UplinkAttempts,
		"UplinkCollisions":     r.UplinkCollisions,
		"AirtimeIR":            r.AirtimeIR,
		"AirtimeResponse":      r.AirtimeResponse,
		"AirtimeBackground":    r.AirtimeBackground,
		"DownlinkUtil":         r.DownlinkUtil,
		"IRBits":               r.IRBits,
		"PiggyBits":            r.PiggyBits,
		"ResponseRetries":      r.ResponseRetries,
		"ResponseDrops":        r.ResponseDrops,
		"EnergyJoules":         r.EnergyJoules,
		"EnergyPerQuery":       jsonSafe(r.EnergyPerQuery),
		"Updates":              r.Updates,
		"NumCells":             r.NumCells,
		"Handoffs":             r.Handoffs,
		"HandoffFlushes":       r.HandoffFlushes,
		"Outages":              r.Outages,
		"ReportsSuppressed":    r.ReportsSuppressed,
		"ReportsFaultLost":     r.ReportsFaultLost,
		"ReportsFaultTrunc":    r.ReportsFaultTrunc,
		"QueriesLostToOutage":  r.QueriesLostToOutage,
		"QueryRetries":         r.QueryRetries,
		"QueryGiveups":         r.QueryGiveups,
		"Disconnects":          r.Disconnects,
		"Recoveries":           r.Recoveries,
		"RecoveryMeanSec":      jsonSafe(r.RecoveryMeanSec),
		"RetriesPerQuery":      jsonSafe(r.RetriesPerQuery()),
		"PendingAtEnd":         r.PendingAtEnd,
		"OverheadBps":          jsonSafe(r.OverheadBitsPerSec()),
		"UplinkPerAns":         jsonSafe(r.UplinkPerAnswer()),
		"ReportLossRate":       jsonSafe(r.ReportLossRate()),
		"WallSec":              r.WallSec,
		"Events":               r.Events,
		"EventsPerSec":         r.EventsPerSec,
		"HeapAllocBytes":       r.HeapAllocBytes,
		"ParallelWorkers":      r.ParallelWorkers,
		"Epochs":               r.Epochs,
	})
}

// jsonSafe maps NaN (not representable in JSON) to -1.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) {
		return -1
	}
	return v
}

// Run builds and executes one replication.
func Run(cfg Config) (*RunStats, error) {
	sim, err := NewSimulation(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Execute(), nil
}
