package core

import (
	"math"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// defaultRollupWindowSec is the tumbling-window width when Config.Rollup is
// set but RollupWindowSec is not.
const defaultRollupWindowSec = 60

// rollupState accumulates per-cell query-path activity over tumbling windows
// of simulated time and emits each closed window to the configured sink.
//
// Collection is strictly lazy: windows close at the first observation past
// the boundary (or at end of run), never via scheduled events. That is the
// whole trick that keeps rollups free under the determinism contract — no
// new DES events means no new same-timestamp tie-breaking, no extra RNG
// draws, and byte-identical results with the sink attached or not (pinned
// by TestRollupsDoNotPerturb).
type rollupState struct {
	sink       obs.RollupSink
	win        float64 // window width, simulated seconds
	start      float64 // current window start, an aligned multiple of win
	lastEvents uint64  // scheduler Executed() at the previous flush
	dirty      bool    // any activity recorded since the previous flush
	cells      []rollupCellAcc
	out        []obs.RollupCell // reused flush buffer
}

type rollupCellAcc struct {
	queries         uint64
	answers         uint64
	hits            uint64
	staleChecks     uint64
	staleViolations uint64
	reports         uint64
	delay           *metrics.Sketch // lazily allocated on the first answer
}

func (a *rollupCellAcc) active() bool {
	return a.queries|a.answers|a.hits|a.staleChecks|a.staleViolations|a.reports != 0
}

func (a *rollupCellAcc) reset() {
	*a = rollupCellAcc{delay: a.delay}
	if a.delay != nil {
		a.delay.Reset()
	}
}

// initRollup arms rollup collection when the config carries a sink.
func (s *Simulation) initRollup() {
	if s.cfg.Rollup == nil {
		return
	}
	win := s.cfg.RollupWindowSec
	if win <= 0 {
		win = defaultRollupWindowSec
	}
	s.rollup = &rollupState{
		sink:  s.cfg.Rollup,
		win:   win,
		cells: make([]rollupCellAcc, len(s.cells)),
	}
}

// rollupNote advances the window clock to now, flushing the open window if
// now crossed its boundary, and returns the state (nil when disabled). Every
// recording helper calls it first, so a window closes at the first
// observation beyond its end.
func (s *Simulation) rollupNote(now des.Time) *rollupState {
	r := s.rollup
	if r == nil {
		return nil
	}
	if t := now.Seconds(); t >= r.start+r.win {
		s.rollupEmit(r.start + r.win)
		// Jump to the aligned window containing now; the skipped windows
		// saw no observations and are not emitted.
		r.start = math.Floor(t/r.win) * r.win
	}
	return r
}

// rollupEmit flushes the open window with the given end time and resets the
// accumulators. Windows with no activity are skipped (their event delta
// rides along with the next flush).
func (s *Simulation) rollupEmit(end float64) {
	r := s.rollup
	if !r.dirty {
		return
	}
	r.out = r.out[:0]
	for i := range r.cells {
		a := &r.cells[i]
		if !a.active() {
			continue
		}
		r.out = append(r.out, obs.RollupCell{
			Cell:            i,
			Queries:         a.queries,
			Answers:         a.answers,
			Hits:            a.hits,
			StaleChecks:     a.staleChecks,
			StaleViolations: a.staleViolations,
			Reports:         a.reports,
			Delay:           a.delay,
		})
	}
	ev := s.sch.Executed()
	r.sink(obs.RollupFlush{
		Algo:   s.cfg.Algorithm,
		Start:  r.start,
		End:    end,
		Events: ev - r.lastEvents,
		Cells:  r.out,
	})
	r.lastEvents = ev
	r.dirty = false
	for i := range r.cells {
		r.cells[i].reset()
	}
}

// rollupFinal flushes the partial window still open at the horizon.
func (s *Simulation) rollupFinal(end des.Time) {
	r := s.rollup
	if r == nil || !r.dirty {
		return
	}
	e := end.Seconds()
	if full := r.start + r.win; e > full {
		e = full
	}
	s.rollupEmit(e)
}

// cellAcc maps a client's cell id to its accumulator, nil when the id is out
// of the table (defensive: rollups must never panic a run).
func (r *rollupState) cellAcc(cell int32) *rollupCellAcc {
	if int(cell) >= len(r.cells) || cell < 0 {
		return nil
	}
	return &r.cells[cell]
}

func (s *Simulation) rollupQuery(now des.Time, cell int32) {
	if r := s.rollupNote(now); r != nil {
		if a := r.cellAcc(cell); a != nil {
			a.queries++
			r.dirty = true
		}
	}
}

func (s *Simulation) rollupAnswer(now des.Time, cell int32, hit bool, delaySec float64) {
	if r := s.rollupNote(now); r != nil {
		if a := r.cellAcc(cell); a != nil {
			a.answers++
			if hit {
				a.hits++
			}
			if a.delay == nil {
				a.delay = metrics.NewDelaySketch()
			}
			a.delay.Observe(delaySec)
			r.dirty = true
		}
	}
}

func (s *Simulation) rollupStaleCheck(cell int32, violation bool) {
	if r := s.rollupNote(s.sch.Now()); r != nil {
		if a := r.cellAcc(cell); a != nil {
			a.staleChecks++
			if violation {
				a.staleViolations++
			}
			r.dirty = true
		}
	}
}

func (s *Simulation) rollupReport(cell int32) {
	if r := s.rollupNote(s.sch.Now()); r != nil {
		if a := r.cellAcc(cell); a != nil {
			a.reports++
			r.dirty = true
		}
	}
}
