package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/ir"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// dbOracle adapts the database to the signature scheme's comparison oracle.
type dbOracle struct{ db *db.DB }

// UpdatedAt implements ir.Oracle.
func (o dbOracle) UpdatedAt(id int) des.Time { return o.db.Item(id).UpdatedAt }

// Simulation is one fully wired run. Build with NewSimulation, execute with
// Execute (or use the Run convenience wrapper).
type Simulation struct {
	cfg      Config
	sch      *des.Scheduler
	db       *db.DB
	channel  *radio.Channel
	downlink *mac.Downlink
	uplink   *mac.Uplink
	bg       *traffic.Generator
	server   *server
	clients  []*client
	oracle   ir.Oracle
	tr       obs.Tracer // nil = tracing disabled

	// roster holds the ids of awake clients in ascending order, maintained
	// by doze/wake, so broadcast fan-out costs O(awake) instead of O(N).
	// rosterScratch is the reusable snapshot buffer fan-out loops iterate:
	// a visited client may doze itself mid-loop (mutating roster), so loops
	// walk a snapshot and re-check awake per visit, exactly reproducing the
	// historical full-scan semantics.
	roster        []int
	rosterScratch []int

	warmupAt des.Time
	refRate  float64 // reference downlink bit rate for load calibration

	// post-warmup accumulators
	delay *metrics.DelayRecorder

	// warmup snapshots
	snapDown mac.DownlinkStats
	snapUp   snapshotUplink
	snapIR   uint64
	snapPig  uint64
	snapUpd  uint64
}

type snapshotUplink struct {
	sent, attempts, collisions, losses, delivered uint64
}

// NewSimulation validates cfg and wires every component.
func NewSimulation(cfg Config) (*Simulation, error) {
	return NewSimulationArena(cfg, nil)
}

// NewSimulationArena is NewSimulation drawing the allocation-heavy component
// state (cache tables, database tables, channel buffers) from arena when one
// is supplied. A nil arena — or an arena holding nothing of the right shape —
// allocates fresh, so the wiring and the resulting run are identical either
// way.
func NewSimulationArena(cfg Config, arena *Arena) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim := &Simulation{
		cfg:      cfg,
		sch:      des.NewScheduler(),
		warmupAt: des.Time(0).Add(cfg.Warmup),
		delay:    metrics.NewDelayRecorder(64),
	}

	var err error
	if arena != nil {
		if d := arena.takeDB(); d != nil {
			if err := d.Reset(sim.sch, cfg.DB, rng.Stream(cfg.Seed, "db")); err != nil {
				return nil, err
			}
			sim.db = d
		}
		if ch := arena.takeChannel(); ch != nil {
			if err := ch.Reset(cfg.Channel, radio.DefaultAMC(), cfg.NumClients,
				rng.Stream(cfg.Seed, "channel")); err != nil {
				return nil, err
			}
			sim.channel = ch
		}
	}
	if sim.db == nil {
		sim.db, err = db.New(sim.sch, cfg.DB, rng.Stream(cfg.Seed, "db"))
		if err != nil {
			return nil, err
		}
	}
	sim.oracle = dbOracle{sim.db}

	if sim.channel == nil {
		sim.channel, err = radio.New(cfg.Channel, radio.DefaultAMC(), cfg.NumClients,
			rng.Stream(cfg.Seed, "channel"))
		if err != nil {
			return nil, err
		}
	}

	sim.downlink = mac.NewDownlink(sim.sch, sim.channel, cfg.Downlink, sim.deliver)
	sim.uplink = mac.NewUplink(sim.sch, cfg.Uplink, rng.Stream(cfg.Seed, "uplink"),
		func(src int, meta any, now des.Time) { sim.server.onRequest(src, meta, now) })
	sim.uplink.SetAttemptHook(sim.onUplinkAttempt)

	algo, err := ir.New(cfg.Algorithm, cfg.IR)
	if err != nil {
		return nil, err
	}
	sim.server = newServer(sim, algo)

	// Background load calibration: offered rate is TrafficLoad × the rate
	// link adaptation would pick at the population's average mean SNR.
	sim.refRate = sim.referenceRate()
	tcfg := cfg.Traffic
	tcfg.RateBps = cfg.TrafficLoad * sim.refRate
	sim.bg, err = traffic.New(sim.sch, tcfg, rng.Stream(cfg.Seed, "traffic"),
		sim.server.onBackground)
	if err != nil {
		return nil, err
	}

	zipf := rng.NewZipf(cfg.DB.NumItems, cfg.Workload.Zipf)
	wsrc := rng.Stream(cfg.Seed, "workload")
	csrc := rng.Stream(cfg.Seed, "client")
	sim.clients = make([]*client, cfg.NumClients)
	for i := range sim.clients {
		sampler, err := workload.NewSampler(cfg.Workload, zipf, wsrc.SubStream(uint64(i)))
		if err != nil {
			return nil, err
		}
		sim.clients[i] = newClient(i, sim, sampler, csrc.SubStream(uint64(i)), arena)
	}

	sim.roster = make([]int, cfg.NumClients) // everyone starts awake
	for i := range sim.roster {
		sim.roster[i] = i
	}

	// Attach tracing last, once every component exists. All emission sites
	// are nil-guarded, so this block is the only tracing cost of an
	// untraced run.
	if tr := cfg.Tracer; tr != nil {
		sim.tr = tr
		sim.db.SetTracer(tr)
		sim.downlink.SetTracer(tr)
		for _, c := range sim.clients {
			c.cache.SetTracer(tr, c.id, sim.sch.Now)
			c.istate.Tracer = tr
			c.istate.Owner = c.id
			c.istate.Clock = sim.sch.Now
		}
	}
	return sim, nil
}

// referenceRate reports the effective downlink rate for unicast traffic to
// a uniformly random client: the harmonic mean of the per-client rates link
// adaptation picks at each client's mean SNR. The harmonic mean is the right
// aggregate because airtime per bit, not bits per second, is what adds up
// across frames — so TrafficLoad ≈ the utilization the background traffic
// actually contributes.
func (s *Simulation) referenceRate() float64 {
	amc := s.channel.AMC()
	invSum := 0.0
	for i := 0; i < s.channel.N(); i++ {
		idx, _ := amc.Select(s.channel.MeanSNRdB(i))
		invSum += 1 / amc.Table[idx].BitRate(amc.SymbolRate)
	}
	return float64(s.channel.N()) / invSum
}

// Executed reports how many discrete events have run so far.
func (s *Simulation) Executed() uint64 { return s.sch.Executed() }

// cancelCheckEvents is how many DES events run between context polls in
// ExecuteCtx: coarse enough to cost nothing, fine enough that a cancelled
// run stops within milliseconds of wall-clock time.
const cancelCheckEvents = 4096

// Execute runs the simulation to its horizon and returns the statistics.
func (s *Simulation) Execute() *RunStats {
	r, _ := s.ExecuteCtx(context.Background())
	return r
}

// ExecuteCtx runs the simulation to its horizon, polling ctx every few
// thousand events; a cancelled context aborts the run mid-flight and
// returns the context's error instead of partial statistics.
func (s *Simulation) ExecuteCtx(ctx context.Context) (*RunStats, error) {
	wallStart := time.Now()
	if ctx.Done() != nil { // Background and friends can never cancel
		s.sch.SetInterrupt(cancelCheckEvents, func() error { return ctx.Err() })
	}
	var pulsed uint64
	if fn := s.cfg.OnEventPulse; fn != nil {
		s.sch.SetPulse(cancelCheckEvents, func(executed uint64) {
			fn(executed - pulsed)
			pulsed = executed
		})
	}
	s.db.Start()
	s.bg.Start()
	s.server.start()
	for _, c := range s.clients {
		c.start()
	}
	s.sch.At(s.warmupAt, "sim.warmup", s.resetAtWarmup)
	end := s.sch.Run(des.Time(0).Add(s.cfg.Horizon))
	if fn := s.cfg.OnEventPulse; fn != nil && s.sch.Executed() > pulsed {
		fn(s.sch.Executed() - pulsed) // residual below the pulse granularity
	}
	if err := s.sch.Err(); err != nil {
		return nil, err
	}
	r := s.collect(end)
	r.WallSec = time.Since(wallStart).Seconds()
	r.Events = s.sch.Executed()
	if r.WallSec > 0 {
		r.EventsPerSec = float64(r.Events) / r.WallSec
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.HeapAllocBytes = ms.HeapAlloc
	return r, nil
}

// resetAtWarmup snapshots cumulative counters so collect can report
// post-warmup deltas, and resets the per-client energy meters.
func (s *Simulation) resetAtWarmup() {
	s.snapDown = *s.downlink.Stats()
	up := s.uplink.Stats()
	s.snapUp = snapshotUplink{
		sent:       up.Sent.Value(),
		attempts:   up.Attempts.Value(),
		collisions: up.Collisions.Value(),
		losses:     up.Losses.Value(),
		delivered:  up.Delivered.Value(),
	}
	s.snapIR = s.server.irBitsSent
	s.snapPig = s.server.piggyBitsSent
	s.snapUpd = s.db.Updates()
	for _, c := range s.clients {
		c.meter.Reset()
	}
}

// rosterAdd inserts a freshly woken client into the sorted awake roster.
// Doze/wake transitions are orders of magnitude rarer than fan-outs, so the
// O(awake) insertion is cheap where an O(N) scan per broadcast is not.
func (s *Simulation) rosterAdd(id int) {
	i := sortSearchInt(s.roster, id)
	s.roster = append(s.roster, 0)
	copy(s.roster[i+1:], s.roster[i:])
	s.roster[i] = id
}

// rosterRemove drops a dozing client from the awake roster.
func (s *Simulation) rosterRemove(id int) {
	i := sortSearchInt(s.roster, id)
	s.roster = append(s.roster[:i], s.roster[i+1:]...)
}

// sortSearchInt is sort.SearchInts without the interface indirection.
func sortSearchInt(a []int, x int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// awakeSnapshot copies the roster into the reusable scratch buffer so a
// fan-out loop survives visited clients dozing themselves mid-iteration.
func (s *Simulation) awakeSnapshot() []int {
	s.rosterScratch = append(s.rosterScratch[:0], s.roster...)
	return s.rosterScratch
}

// onUplinkAttempt charges transmit energy for one contention slot.
func (s *Simulation) onUplinkAttempt(src int) {
	if s.sch.Now() < s.warmupAt {
		return
	}
	s.clients[src].meter.AddTx(s.cfg.Uplink.SlotDur.Seconds())
}

// deliver is the downlink completion fanout: reports go to every awake
// client (individual decode), responses to their destination, piggybacked
// digests to every awake overhearer.
func (s *Simulation) deliver(f *mac.Frame, ok bool, mcs int, now des.Time) {
	amc := s.channel.AMC()
	airtime := amc.Airtime(0, s.cfg.Downlink.HeaderBits+f.RobustBits) +
		amc.Airtime(mcs, f.Bits)
	switch m := f.Meta.(type) {
	case *ir.Report:
		for _, id := range s.awakeSnapshot() {
			c := s.clients[id]
			if !c.awake {
				continue
			}
			s.chargeRx(c, airtime)
			if s.channel.Decode(c.id, now, mcs, f.Bits) {
				c.onReport(m)
			} else {
				c.onReportLost()
			}
		}
		s.server.algo.Recycle(m)
	case *respMeta:
		s.server.onResponseDelivered(m)
		dest := s.clients[f.Dest]
		if dest.awake {
			s.chargeRx(dest, airtime)
		}
		dest.onResponse(m, ok)
		for _, w := range m.waiters {
			c := s.clients[w]
			if c.awake {
				s.chargeRx(c, airtime)
			}
			// Waiters decode independently of the addressed destination;
			// a failed decode falls back to their own re-request timer via
			// onResponse's !ok path.
			c.onResponse(m, s.channel.Decode(w, now, mcs, f.Bits))
		}
		if s.cfg.SnoopResponses {
			for _, id := range s.awakeSnapshot() {
				c := s.clients[id]
				if !c.awake || c.id == f.Dest {
					continue
				}
				s.chargeRx(c, airtime)
				if s.channel.Decode(c.id, now, mcs, f.Bits) {
					c.onSnoop(m)
				}
			}
		}
		s.fanPiggy(m.piggy, f.RobustBits, now)
		s.server.releaseResp(m)
	case *bgMeta:
		dest := s.clients[f.Dest]
		if dest.awake {
			s.chargeRx(dest, airtime)
		}
		s.fanPiggy(m.piggy, f.RobustBits, now)
		s.server.releaseBg(m)
	default:
		panic(fmt.Sprintf("core: unknown frame meta %T", f.Meta))
	}
}

// fanPiggy lets every awake client receive a piggybacked digest. The digest
// travels in the frame's robust control portion (base-rate MCS), so even
// clients that could not decode the data payload usually get it; they pay
// receive energy only for that portion and power down for the data body.
func (s *Simulation) fanPiggy(pg *ir.Report, robustBits int, now des.Time) {
	if pg == nil {
		return
	}
	headBits := s.cfg.Downlink.HeaderBits + robustBits
	headAir := s.channel.AMC().Airtime(0, headBits)
	for _, id := range s.awakeSnapshot() {
		c := s.clients[id]
		if !c.awake {
			continue
		}
		s.chargeRx(c, headAir)
		if s.channel.Decode(c.id, now, 0, headBits) {
			c.onReport(pg)
		} else {
			c.onReportLost()
		}
	}
	s.server.algo.Recycle(pg)
}

func (s *Simulation) chargeRx(c *client, airtimeSec float64) {
	if s.sch.Now() < s.warmupAt {
		return
	}
	c.meter.AddRx(airtimeSec)
}

// traceReport emits a ReportBroadcastEvent for a report leaving the server,
// whether standalone (carrier "ir") or piggybacked on a data frame. mcs is
// the scheme the report's bits travel at: the explicit broadcast MCS for
// standalone reports, the robust base scheme (0) for piggybacked digests.
func (s *Simulation) traceReport(r *ir.Report, carrier string, mcs int) {
	tr := s.tr
	if tr == nil {
		return
	}
	var items []int
	if len(r.Items) > 0 {
		items = make([]int, len(r.Items))
		for i, u := range r.Items {
			items[i] = u.ID
		}
	}
	tr.ReportBroadcast(obs.ReportBroadcastEvent{
		At:          s.sch.Now(),
		Seq:         r.Seq,
		Kind:        r.Kind.String(),
		Carrier:     carrier,
		MCS:         mcs,
		SizeBits:    r.SizeBits(),
		WindowStart: r.WindowStart,
		Sig:         r.Sig != nil,
		Items:       items,
	})
}
