package core

import (
	"context"
	"runtime"
	"time"

	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/topology"
)

// dbOracle adapts the database to the signature scheme's comparison oracle.
type dbOracle struct{ db *db.DB }

// UpdatedAt implements ir.Oracle.
func (o dbOracle) UpdatedAt(id int) des.Time { return o.db.Item(id).UpdatedAt }

// laneStats are the accumulators written from inside one execution lane (a
// cell's event stream): the delay recorder and the client-path fault
// counters. In a serial run every cell shares a single instance, so the
// observation order — and therefore every statistic — matches the historical
// single-scheduler run exactly. In a parallel run each cell owns one, and
// collect merges them in ascending cell-id order, which is what makes the
// results independent of the worker count.
type laneStats struct {
	delay *metrics.DelayRecorder

	// Internal whole-run telemetry (edge-case tests assert on these).
	respDeparted     uint64 // responses delivered after their client left the cell
	respDisconnected uint64 // responses delivered to a disconnected client

	// Post-warmup fault counters.
	queriesLostToOutage uint64
	queryRetries        uint64
	queryGiveups        uint64
	disconnects         uint64
	recoveries          uint64
	recoveryDelay       metrics.Summary

	reportsSuppressed uint64 // broadcasts swallowed at a dark base station
	reportsFaultLost  uint64 // standalone reports destroyed in transit
	reportsFaultTrunc uint64 // standalone reports corrupted in transit
}

func newLaneStats() *laneStats {
	return &laneStats{delay: metrics.NewDelayRecorder(64)}
}

// Simulation is one fully wired run: the composition root owning the shared
// scheduler, database, client population and one Cell per base station. Build
// with NewSimulation, execute with Execute (or use the Run convenience
// wrapper). A single-cell configuration (Topology.NumCells ≤ 1) wires exactly
// one Cell with the historical stream names and reproduces pre-topology runs
// bit-for-bit. The client population lives in ct, a struct-of-arrays table
// indexed by client id (see table.go).
type Simulation struct {
	cfg    Config
	sch    *des.Scheduler
	db     *db.DB
	cells  []*Cell
	topo   *topology.Model // nil when the run is single-cell
	ct     clientTable
	oracle ir.Oracle
	tr     obs.Tracer // nil = tracing disabled

	warmupAt des.Time

	// retryOn mirrors cfg.Fault.RetryEnabled() once startFaults armed the
	// layer: the per-request hot path tests one bool instead of re-deriving
	// the config predicate.
	retryOn bool

	// Parallel (epoch-synchronized per-cell) execution. par is the resolved
	// mode: requested by cfg.Parallel and compatible with the wiring (more
	// than one cell, no tracer, no rollups). lanes holds the distinct
	// laneStats instances in cell-id order — exactly one, shared by every
	// cell, in serial mode. posX/posY are the barrier-refreshed position
	// snapshot parallel lanes read in place of the lazily-advancing mobility
	// walkers (see snapLocator). epochs counts completed barriers.
	par        bool
	parWorkers int
	lanes      []*laneStats
	posX, posY []float64
	epochs     uint64

	// rollup is the tumbling-window telemetry accumulator, nil when
	// cfg.Rollup is unset (the hot-path helpers then return immediately).
	rollup *rollupState

	// handoff accounting. handoffs and handoffFlushes are post-warmup and
	// reported in RunStats; the remaining counters are whole-run internal
	// telemetry the edge-case tests assert on. All are written only from
	// the handoff ticker (a barrier event), so they stay on the Simulation.
	handoffs         uint64
	handoffFlushes   uint64
	handoffsAsleep   uint64 // client was dozing when it crossed cells
	handoffsMidQuery uint64 // client had an in-flight request at handoff

	// fault injection. injector is nil when cfg.Fault is fully disabled —
	// the layer then schedules no events and draws from no streams. The
	// client-path counters live in laneStats; outages stays here because
	// outage edges are global (barrier) events.
	injector *fault.Injector
	outages  uint64

	// warmup snapshot (per-cell snapshots live on each Cell)
	snapUpd uint64
}

type snapshotUplink struct {
	sent, attempts, collisions, losses, delivered uint64
}

// NewSimulation validates cfg and wires every component.
func NewSimulation(cfg Config) (*Simulation, error) {
	return NewSimulationArena(cfg, nil)
}

// NewSimulationArena is NewSimulation drawing the allocation-heavy component
// state (the client table, database tables, channel buffers) from arena when
// one is supplied. A nil arena — or an arena holding nothing of the right
// shape — allocates fresh, so the wiring and the resulting run are identical
// either way.
func NewSimulationArena(cfg Config, arena *Arena) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim := &Simulation{
		cfg:      cfg,
		sch:      des.NewScheduler(),
		warmupAt: des.Time(0).Add(cfg.Warmup),
	}

	numCells := cfg.Topology.Cells()
	if cfg.Topology.Enabled() {
		topo, err := topology.NewModel(cfg.Topology, cfg.NumClients,
			rng.Stream(cfg.Seed, "topology"))
		if err != nil {
			return nil, err
		}
		sim.topo = topo
	}

	// Resolve the execution mode. Parallel lanes require more than one cell
	// and are incompatible with the process-local observers, which assume a
	// single serial event stream; such runs fall back to serial execution.
	sim.par = cfg.Parallel && numCells > 1 && cfg.Tracer == nil && cfg.Rollup == nil
	if sim.par {
		w := cfg.ParallelWorkers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > numCells {
			w = numCells
		}
		sim.parWorkers = w
		sim.lanes = make([]*laneStats, numCells)
		for k := range sim.lanes {
			sim.lanes[k] = newLaneStats()
		}
		// Position snapshot: lanes read client positions frozen at the last
		// barrier instead of advancing the shared mobility walkers. Filled
		// at t=0 here (cells read it during construction through their
		// locators) and refreshed by every handoff check.
		sim.posX = make([]float64, cfg.NumClients)
		sim.posY = make([]float64, cfg.NumClients)
		for i := 0; i < cfg.NumClients; i++ {
			sim.posX[i], sim.posY[i] = sim.topo.Position(i, 0)
		}
	} else {
		sim.parWorkers = 1
		sim.lanes = []*laneStats{newLaneStats()}
	}

	var err error
	if arena != nil {
		if d := arena.takeDB(); d != nil {
			if err := d.Reset(sim.sch, cfg.DB, rng.Stream(cfg.Seed, "db")); err != nil {
				return nil, err
			}
			sim.db = d
		}
	}
	if sim.db == nil {
		sim.db, err = db.New(sim.sch, cfg.DB, rng.Stream(cfg.Seed, "db"))
		if err != nil {
			return nil, err
		}
	}
	sim.oracle = dbOracle{sim.db}

	sim.cells = make([]*Cell, numCells)
	for k := range sim.cells {
		sim.cells[k], err = newCell(sim, k, numCells, arena)
		if err != nil {
			return nil, err
		}
	}

	zipf := rng.NewZipf(cfg.DB.NumItems, cfg.Workload.Zipf)
	wsrc := rng.Stream(cfg.Seed, "workload")
	csrc := rng.Stream(cfg.Seed, "client")
	if arena != nil {
		sim.ct = arena.takeTable()
	}
	fresh := sim.ct.init(cfg.NumClients, cfg.CacheCapacity, cfg.DB.NumItems, cfg.CachePolicy)
	for i := 0; i < sim.ct.n; i++ {
		if err := sim.initClient(i, wsrc, csrc, zipf, fresh); err != nil {
			return nil, err
		}
	}

	// Fault layer: build the injector and hand every client its private
	// draw stream. All streams are dedicated to the fault layer, so a
	// disabled layer (nil injector) changes no draw sequence anywhere.
	if cfg.Fault.Enabled() {
		var reportStreams []*rng.Source
		if cfg.Fault.ReportFaultsEnabled() {
			reportStreams = make([]*rng.Source, numCells)
			for k := range reportStreams {
				reportStreams[k] = rng.Stream(cfg.Seed, cellStream("fault.report", k, numCells))
			}
		}
		sim.injector = fault.NewInjector(cfg.Fault, reportStreams)
		if cfg.Fault.RetryEnabled() || cfg.Fault.DisconnectsEnabled() {
			fsrc := rng.Stream(cfg.Seed, "fault.client")
			sim.ct.ensureCold()
			for i := range sim.ct.cold {
				sim.ct.cold[i].fsrc = fsrc.SubStreamValue(uint64(i))
			}
		}
	}

	// Associate each client with its nearest cell at t=0 and build the
	// per-cell awake rosters (everyone starts awake). Ascending id order
	// keeps roster iteration order identical to the historical sorted lists.
	for i := 0; i < sim.ct.n; i++ {
		k := 0
		if sim.topo != nil {
			k = sim.topo.NearestCell(i, 0)
		}
		sim.ct.cell[i] = int32(k)
		sim.cells[k].roster.add(i)
	}

	// Attach tracing last, once every component exists. All emission sites
	// are nil-guarded, so this block is the only tracing cost of an
	// untraced run.
	if tr := cfg.Tracer; tr != nil {
		sim.tr = tr
		sim.db.SetTracer(tr)
		for _, cell := range sim.cells {
			cell.downlink.SetTracer(tr)
		}
		for i := 0; i < sim.ct.n; i++ {
			sim.ct.caches[i].SetTracer(tr, i, sim.sch.Now)
			st := &sim.ct.istate[i]
			st.Tracer = tr
			st.Owner = i
			st.Clock = sim.sch.Now
		}
	}
	sim.initRollup()
	return sim, nil
}

// Executed reports how many discrete events have run so far, summed over the
// barrier scheduler and every lane.
func (s *Simulation) Executed() uint64 {
	n := s.sch.Executed()
	if s.par {
		for _, cell := range s.cells {
			n += cell.sch.Executed()
		}
	}
	return n
}

// Epochs reports how many synchronization epochs a parallel run has
// completed (zero for serial runs).
func (s *Simulation) Epochs() uint64 { return s.epochs }

// cancelCheckEvents is how many DES events run between context polls in
// ExecuteCtx: coarse enough to cost nothing, fine enough that a cancelled
// run stops within milliseconds of wall-clock time.
const cancelCheckEvents = 4096

// Execute runs the simulation to its horizon and returns the statistics.
func (s *Simulation) Execute() *RunStats {
	r, _ := s.ExecuteCtx(context.Background())
	return r
}

// ExecuteCtx runs the simulation to its horizon, polling ctx every few
// thousand events; a cancelled context aborts the run mid-flight and
// returns the context's error instead of partial statistics.
func (s *Simulation) ExecuteCtx(ctx context.Context) (*RunStats, error) {
	wallStart := time.Now()
	if ctx.Done() != nil { // Background and friends can never cancel
		intr := func() error { return ctx.Err() }
		s.sch.SetInterrupt(cancelCheckEvents, intr)
		if s.par {
			// Fail-fast reaches every lane within one epoch: each lane polls
			// the context on its own executed-event cadence, and the barrier
			// loop checks lane errors after every parallel phase.
			for _, cell := range s.cells {
				cell.sch.SetInterrupt(cancelCheckEvents, intr)
			}
		}
	}
	var pulsed uint64
	if fn := s.cfg.OnEventPulse; fn != nil && !s.par {
		s.sch.SetPulse(cancelCheckEvents, func(executed uint64) {
			fn(executed - pulsed)
			pulsed = executed
		})
	}
	s.db.Start()
	for _, cell := range s.cells {
		cell.bg.Start()
		cell.server.start()
	}
	for i := 0; i < s.ct.n; i++ {
		s.client(i).start()
	}
	if s.topo != nil {
		s.startHandoff()
	}
	s.startFaults()
	s.sch.At(s.warmupAt, "sim.warmup", s.resetAtWarmup)
	var end des.Time
	if s.par {
		// The epoch runner issues pulses itself (a barrier-side aggregate
		// over all schedulers) and leaves the residual to the shared path
		// below via pulsed.
		var err error
		end, err = s.runEpochs(ctx, des.Time(0).Add(s.cfg.Horizon), &pulsed)
		if err != nil {
			return nil, err
		}
	} else {
		end = s.sch.Run(des.Time(0).Add(s.cfg.Horizon))
		if err := s.sch.Err(); err != nil {
			return nil, err
		}
	}
	if fn := s.cfg.OnEventPulse; fn != nil && s.Executed() > pulsed {
		fn(s.Executed() - pulsed) // residual below the pulse granularity
	}
	s.rollupFinal(end)
	r := s.collect(end)
	r.WallSec = time.Since(wallStart).Seconds()
	r.Events = s.Executed()
	if r.WallSec > 0 {
		r.EventsPerSec = float64(r.Events) / r.WallSec
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.HeapAllocBytes = ms.HeapAlloc
	return r, nil
}

// resetAtWarmup snapshots cumulative counters so collect can report
// post-warmup deltas, and resets the per-client energy meters.
func (s *Simulation) resetAtWarmup() {
	for _, cell := range s.cells {
		cell.snapDown = *cell.downlink.Stats()
		up := cell.uplink.Stats()
		cell.snapUp = snapshotUplink{
			sent:       up.Sent.Value(),
			attempts:   up.Attempts.Value(),
			collisions: up.Collisions.Value(),
			losses:     up.Losses.Value(),
			delivered:  up.Delivered.Value(),
		}
		cell.snapIR = cell.server.irBitsSent
		cell.snapPig = cell.server.piggyBitsSent
	}
	s.snapUpd = s.db.Updates()
	for i := range s.ct.meters {
		s.ct.meters[i].Reset()
	}
}

// onUplinkAttempt charges transmit energy for one contention slot. It is a
// Cell method so the warmup gate reads the lane clock, and so a parallel run
// can skip the meter write when the client was handed to another cell with
// the attempt still queued — its meter belongs to the other lane. (Serial
// runs keep charging departed clients, matching the historical accounting.)
func (cell *Cell) onUplinkAttempt(src int) {
	s := cell.sim
	if cell.sch.Now() < s.warmupAt {
		return
	}
	if s.par && int(s.ct.cell[src]) != cell.id {
		return
	}
	s.ct.meters[src].AddTx(s.cfg.Uplink.SlotDur.Seconds())
}

func (s *Simulation) chargeRx(id int, airtimeSec float64, now des.Time) {
	if now < s.warmupAt {
		return
	}
	s.ct.meters[id].AddRx(airtimeSec)
}
