package core

import (
	"math/bits"

	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/ir"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/serve"
	"repro/internal/serve/capabilities"
)

// reqMeta travels up the uplink: a cache-miss request.
type reqMeta struct {
	item int
}

// respMeta rides a downlink response frame.
type respMeta struct {
	item    int
	version uint64
	genAt   des.Time // server read time: the value's consistency timestamp
	piggy   *ir.Report

	// waiters are additional clients whose requests for the same item were
	// coalesced onto this frame (response coalescing enabled only). The
	// frame's Dest is the first requester; waiters decode opportunistically
	// like snoopers and re-request on failure.
	waiters []int
}

// bgMeta rides a background frame.
type bgMeta struct {
	piggy *ir.Report
}

// server is one cell's base-station logic: it composes the capability
// backend (internal/serve) for the cell's invalidation algorithm over the
// shared database, serves uplink requests through its facets, and implements
// ir.ServerEnv for it. The same backend type powers wdcserved, so the
// simulation exercises exactly the engine the network server ships.
type server struct {
	cell *Cell
	sim  *Simulation
	dbv  *db.View // lane-private read view of the shared database

	// Capability facets of the composed backend. reports, answers and
	// catchup are universal; piggy is nil unless the algorithm attaches
	// digests to data frames (tair, hybrid).
	reports capabilities.ReportSource
	piggy   capabilities.PiggybackSource
	answers capabilities.QueryAnswerer
	catchup capabilities.CatchupProvider

	// downlink load EWMA for the traffic-aware schemes.
	loadEWMA   float64
	busyPrev   float64
	snrScratch []float64

	irBitsSent     uint64
	piggyBitsSent  uint64
	responsesSent  uint64
	requestsServed uint64
	coalesced      uint64

	// inFlightResp tracks queued/in-flight responses by item so later
	// requests for the same item can join them (coalescing).
	inFlightResp map[int]*respMeta

	// Free lists for the per-frame metadata. A respMeta is recycled after
	// its delivery fan-out, by which point onResponseDelivered has retired
	// (or a newer response replaced) its coalescing slot, so nothing still
	// references it; waiters backing arrays are kept across reuses.
	respFree []*respMeta
	bgFree   []*bgMeta
}

const loadSampleEvery = des.Second

func newServer(cell *Cell, algo ir.ServerAlgo) *server {
	s := &server{cell: cell, sim: cell.sim,
		dbv:          cell.sim.db.NewView(cell.sch.Now),
		inFlightResp: make(map[int]*respMeta)}
	backend := serve.NewBackend(algo, cellStore{s})
	s.reports = backend
	s.answers = backend.(capabilities.QueryAnswerer)
	s.catchup = backend.(capabilities.CatchupProvider)
	s.piggy, _ = backend.(capabilities.PiggybackSource)
	return s
}

// cellStore adapts the cell's lane-private database view to serve.Store. It
// is read-only on purpose: the update process owns the shared database, so
// the cell's backend must not present the ingest capability.
type cellStore struct{ s *server }

func (cs cellStore) NumItems() int       { return cs.s.sim.db.NumItems() }
func (cs cellStore) Item(id int) db.Item { return cs.s.sim.db.Item(id) }
func (cs cellStore) UpdatedSince(since des.Time, buf []db.Update) []db.Update {
	return cs.s.dbv.UpdatedSince(since, buf)
}
func (cs cellStore) Retention() des.Duration { return cs.s.sim.cfg.DB.Retention }

// start arms the algorithm and the load sampler.
func (s *server) start() {
	des.NewTicker(s.cell.sch, loadSampleEvery, "server.load", s.sampleLoad).Start()
	s.reports.StartReports(s)
}

// sampleLoad maintains an exponentially weighted estimate of downlink busy
// fraction, the signal the traffic-aware interval adaptation consumes.
//
// Only background traffic counts. Query responses are the protocol's own
// elastic load: every report releases a synchronized burst of cache-miss
// responses, so counting them would make the interval adaptation chase its
// own tail — a long interval produces a bigger burst, the burst reads as
// high load, high load stretches the interval further, and the scheme locks
// itself at IntervalMax even on an otherwise idle downlink.
func (s *server) sampleLoad(des.Time) {
	st := s.cell.downlink.Stats()
	busy := st.Busy[mac.KindBackground]
	sample := (busy - s.busyPrev) / loadSampleEvery.Seconds()
	s.busyPrev = busy
	if sample > 1 {
		sample = 1
	}
	const alpha = 0.3
	s.loadEWMA = alpha*sample + (1-alpha)*s.loadEWMA
}

// acquireResp returns a cleared respMeta, reusing its waiters capacity.
func (s *server) acquireResp() *respMeta {
	if n := len(s.respFree); n > 0 {
		m := s.respFree[n-1]
		s.respFree = s.respFree[:n-1]
		*m = respMeta{waiters: m.waiters[:0]}
		return m
	}
	return &respMeta{}
}

// releaseResp recycles a fully fanned-out respMeta.
func (s *server) releaseResp(m *respMeta) {
	m.piggy = nil // the report was recycled separately; drop the reference
	s.respFree = append(s.respFree, m)
}

// acquireBg returns a cleared bgMeta.
func (s *server) acquireBg() *bgMeta {
	if n := len(s.bgFree); n > 0 {
		m := s.bgFree[n-1]
		s.bgFree = s.bgFree[:n-1]
		m.piggy = nil
		return m
	}
	return &bgMeta{}
}

// releaseBg recycles a fully fanned-out bgMeta.
func (s *server) releaseBg(m *bgMeta) {
	m.piggy = nil
	s.bgFree = append(s.bgFree, m)
}

// onRequest handles a delivered uplink request.
func (s *server) onRequest(src int, meta any, now des.Time) {
	if in := s.sim.injector; in != nil && in.InOutage(s.cell.id, now) {
		// A dark base station answers nothing; the client's timeout layer
		// re-asks once the outage ends.
		if _, isQuery := meta.(reqMeta); isQuery && now >= s.sim.warmupAt {
			s.cell.ls.queriesLostToOutage++
		}
		return
	}
	if cu, ok := meta.(catchupReq); ok {
		s.onCatchupRequest(src, cu.since, now)
		return
	}
	req := meta.(reqMeta)
	ans, err := s.answers.AnswerQuery(req.item, now)
	if err != nil {
		panic(err) // the client population only queries ids the config declared
	}
	s.requestsServed++
	if s.sim.cfg.CoalesceResponses {
		// Join only if the queued value is still current: a joiner validated
		// after an update must not be served the pre-update value.
		if pending, ok := s.inFlightResp[req.item]; ok && pending.version == ans.Version {
			pending.waiters = append(pending.waiters, src)
			s.coalesced++
			return
		}
	}
	resp := s.acquireResp()
	resp.item, resp.version, resp.genAt = ans.Item, ans.Version, ans.AsOf
	robust := 0
	if s.piggy != nil {
		if pg := s.piggy.PiggybackDigest(now); pg != nil {
			resp.piggy = pg
			robust = pg.SizeBits()
			s.piggyBitsSent += uint64(robust)
			s.cell.traceReport(pg, obs.CarrierResponse, 0)
		}
	}
	s.responsesSent++
	if s.sim.cfg.CoalesceResponses {
		s.inFlightResp[req.item] = resp
	}
	f := s.cell.downlink.AcquireFrame()
	f.Kind = mac.KindResponse
	f.Dest = src
	f.Bits = ans.Bits + s.sim.cfg.ResponseOverheadBits
	f.RobustBits = robust
	f.MCS = mac.AutoMCS
	f.Meta = resp
	s.cell.downlink.Enqueue(f)
}

// onResponseDelivered retires the coalescing slot for a departed response.
func (s *server) onResponseDelivered(m *respMeta) {
	if s.sim.cfg.CoalesceResponses && s.inFlightResp[m.item] == m {
		delete(s.inFlightResp, m.item)
	}
}

// onBackground handles a background-traffic arrival.
func (s *server) onBackground(dest int, bits int) {
	if in := s.sim.injector; in != nil && in.InOutage(s.cell.id, s.cell.sch.Now()) {
		return // a dark base station transmits nothing
	}
	meta := s.acquireBg()
	robust := 0
	if s.piggy != nil {
		if pg := s.piggy.PiggybackDigest(s.cell.sch.Now()); pg != nil {
			meta.piggy = pg
			robust = pg.SizeBits()
		}
	}
	f := s.cell.downlink.AcquireFrame()
	f.Kind = mac.KindBackground
	f.Dest = dest
	f.Bits = bits
	f.RobustBits = robust
	f.MCS = mac.AutoMCS
	f.Meta = meta
	accepted := s.cell.downlink.Enqueue(f)
	if !accepted {
		// Admission control refused the frame: its digest never hits the
		// air, so both metadata objects go straight back to their pools.
		s.reports.RecycleReport(meta.piggy)
		s.releaseBg(meta)
		return
	}
	if robust > 0 {
		s.piggyBitsSent += uint64(robust)
		s.cell.traceReport(meta.piggy, obs.CarrierBackground, 0)
	}
}

// --- ir.ServerEnv ---

// Now implements ir.ServerEnv.
func (s *server) Now() des.Time { return s.cell.sch.Now() }

// UpdatedSince implements ir.ServerEnv.
func (s *server) UpdatedSince(since des.Time, buf []db.Update) []db.Update {
	return s.dbv.UpdatedSince(since, buf)
}

// Broadcast implements ir.ServerEnv.
func (s *server) Broadcast(r *ir.Report, mcs int) {
	if in := s.sim.injector; in != nil && in.InOutage(s.cell.id, s.cell.sch.Now()) {
		// Outage: the report never reaches the air. The algorithm's own
		// schedule state (Seq, PrevAt) advances as generated — exactly the
		// gap the clients' coverage-window rule must survive.
		s.cell.noteReportFault(r.Seq, obs.ReportFaultSuppressed)
		s.reports.RecycleReport(r)
		return
	}
	s.irBitsSent += uint64(r.SizeBits())
	s.cell.traceReport(r, obs.CarrierIR, mcs)
	f := s.cell.downlink.AcquireFrame()
	f.Kind = mac.KindIR
	f.Dest = mac.Broadcast
	f.Bits = r.SizeBits()
	f.MCS = mcs
	f.Meta = r
	s.cell.downlink.Enqueue(f)
}

// NewTicker implements ir.ServerEnv.
func (s *server) NewTicker(period des.Duration, name string, fn func(des.Time)) *des.Ticker {
	return des.NewTicker(s.cell.sch, period, name, fn)
}

// AwakeSNRs implements ir.ServerEnv. In a real system the base station
// estimates these from CQI feedback; here it reads the channel directly.
// Only clients the cell currently serves are visible to its algorithm.
// The roster bitset's words are walked directly — ascending ids, awake only —
// without materializing a snapshot (nothing here mutates the roster).
func (s *server) AwakeSNRs() []float64 {
	s.snrScratch = s.snrScratch[:0]
	now := s.cell.sch.Now()
	for w, word := range s.cell.roster.words {
		base := w << 6
		for word != 0 {
			id := base | bits.TrailingZeros64(word)
			word &= word - 1
			s.snrScratch = append(s.snrScratch, s.cell.channel.SNRdB(id, now))
		}
	}
	return s.snrScratch
}

// AMC implements ir.ServerEnv.
func (s *server) AMC() *radio.AMC { return s.cell.channel.AMC() }

// DownlinkLoad implements ir.ServerEnv.
func (s *server) DownlinkLoad() float64 { return s.loadEWMA }
