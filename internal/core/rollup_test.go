package core

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/obs"
)

// TestRollupsDoNotPerturb extends the telemetry contract to rollup
// collection: attaching a rollup sink must leave every measured output
// byte-identical — pinned both against a plain run (full RunStats
// comparison) and against the golden fingerprints, which predate rollups
// entirely.
func TestRollupsDoNotPerturb(t *testing.T) {
	for _, g := range goldenRuns {
		t.Run(fmt.Sprintf("%s-%d", g.algo, g.seed), func(t *testing.T) {
			plain, err := Run(goldenConfig(g.algo, g.seed))
			if err != nil {
				t.Fatal(err)
			}

			cfg := goldenConfig(g.algo, g.seed)
			var flushes, windowed int
			cfg.RollupWindowSec = 30
			cfg.Rollup = func(f obs.RollupFlush) {
				flushes++
				for _, c := range f.Cells {
					windowed += int(c.Queries)
				}
			}
			rolled, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if flushes == 0 || windowed == 0 {
				t.Fatalf("rollup sink saw nothing (flushes=%d queries=%d)", flushes, windowed)
			}

			if got := fingerprintStats(rolled); got != g.want {
				t.Errorf("rollups perturbed the golden fingerprint\n got: %s\nwant: %s", got, g.want)
			}
			scrub := func(r *RunStats) RunStats {
				c := *r
				c.WallSec, c.Events, c.EventsPerSec, c.HeapAllocBytes = 0, 0, 0, 0
				if math.IsNaN(c.RecoveryMeanSec) {
					c.RecoveryMeanSec = 0
				}
				return c
			}
			a, b := scrub(plain), scrub(rolled)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("rollups perturbed the run:\nplain:  %+v\nrolled: %+v", a, b)
			}
		})
	}
}

// TestRollupWindowing checks the tumbling-window semantics: windows are
// aligned to multiples of the width, never overlap, cover the whole span of
// activity, and the per-window counters sum to the whole-run totals.
func TestRollupWindowing(t *testing.T) {
	cfg := goldenConfig("ts", 7)
	const win = 60.0
	cfg.RollupWindowSec = win
	var flushes []obs.RollupFlush
	cfg.Rollup = func(f obs.RollupFlush) {
		// Deep-copy: the flush value is only valid during the call.
		cp := f
		cp.Cells = append([]obs.RollupCell(nil), f.Cells...)
		for i := range cp.Cells {
			if cp.Cells[i].Delay != nil {
				cp.Cells[i].Delay = cp.Cells[i].Delay.Clone()
			}
		}
		flushes = append(flushes, cp)
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flushes) < 2 {
		t.Fatalf("expected several windows over a 600 s run, got %d", len(flushes))
	}
	var answers, events uint64
	prevEnd := -1.0
	for _, f := range flushes {
		if rem := math.Mod(f.Start, win); rem != 0 {
			t.Errorf("window start %g not aligned to %g s", f.Start, win)
		}
		if f.End <= f.Start || f.End > f.Start+win {
			t.Errorf("window [%g, %g) exceeds the %g s width", f.Start, f.End, win)
		}
		if f.Start < prevEnd {
			t.Errorf("window [%g, %g) overlaps the previous end %g", f.Start, f.End, prevEnd)
		}
		prevEnd = f.End
		events += f.Events
		for _, c := range f.Cells {
			answers += c.Answers
			if c.Delay != nil && c.Delay.Count() != c.Answers {
				t.Errorf("window [%g, %g) cell %d: sketch count %d != answers %d",
					f.Start, f.End, c.Cell, c.Delay.Count(), c.Answers)
			}
		}
	}
	// Rollups cover warmup too, so windowed answers can only exceed the
	// post-warmup count; they must at least reach it.
	if answers < r.Answered {
		t.Errorf("windowed answers %d < post-warmup answered %d", answers, r.Answered)
	}
	if events > r.Events {
		t.Errorf("windowed events %d exceed executed total %d", events, r.Events)
	}
}

// TestAggregateSketchInvariance is the replication-order half of the sketch
// determinism contract: the aggregate's population sketch must serialize to
// the same bytes for any worker count, and match a hand-merge of the
// per-replication sketches in any order.
func TestAggregateSketchInvariance(t *testing.T) {
	cfg := goldenConfig("hybrid", 7)
	const reps = 4
	var want []byte
	for _, workers := range []int{1, 2, 4} {
		agg, err := RunReplications(cfg, reps, workers)
		if err != nil {
			t.Fatal(err)
		}
		if agg.DelaySketch == nil || agg.DelaySketch.Count() == 0 {
			t.Fatal("aggregate carries no population sketch")
		}
		got := agg.DelaySketch.AppendBinary(nil)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: aggregate sketch not byte-identical", workers)
		}
		// Reverse-order hand-merge of the per-run sketches.
		manual := agg.Runs[reps-1].DelaySketch.Clone()
		for i := reps - 2; i >= 0; i-- {
			manual.Merge(agg.Runs[i].DelaySketch)
		}
		if !bytes.Equal(manual.AppendBinary(nil), want) {
			t.Fatalf("workers=%d: reverse hand-merge diverged from aggregate", workers)
		}
		// The aggregate quantile helper reads the same digest.
		if p99 := agg.SketchQuantile(0.99); p99 != agg.DelaySketch.Quantile(0.99) {
			t.Fatalf("SketchQuantile(0.99)=%g != direct %g", p99, agg.DelaySketch.Quantile(0.99))
		}
	}
}

// TestAggregateValuesRebuildsSketch proves a checkpoint round-trip loses
// nothing: replaying the serialized RepValues rebuilds an aggregate whose
// population sketch and quantile summaries are bit-identical to the live
// ones.
func TestAggregateValuesRebuildsSketch(t *testing.T) {
	cfg := goldenConfig("ts", 42)
	cfg.Horizon = 300 * des.Second
	live, err := RunReplicationsCtx(context.Background(), cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]RepValues, len(live.Runs))
	for i, r := range live.Runs {
		vals[i] = r.Values(cfg.NumClients)
	}
	restored := AggregateValues(cfg.Algorithm, vals)
	if restored.DelaySketch == nil {
		t.Fatal("restored aggregate lost the sketch")
	}
	if !bytes.Equal(restored.DelaySketch.AppendBinary(nil), live.DelaySketch.AppendBinary(nil)) {
		t.Fatal("restored population sketch differs from live")
	}
	for _, q := range []struct {
		name       string
		live, rest float64
	}{
		{"p50", live.P50Delay.Mean(), restored.P50Delay.Mean()},
		{"p99", live.P99Delay.Mean(), restored.P99Delay.Mean()},
		{"p999", live.P999Delay.Mean(), restored.P999Delay.Mean()},
	} {
		if q.live != q.rest {
			t.Errorf("%s summary diverged: live %v restored %v", q.name, q.live, q.rest)
		}
	}
	// Pre-sketch checkpoints (no sketch bytes) must restore without one.
	for i := range vals {
		vals[i].Sketch = nil
	}
	if old := AggregateValues(cfg.Algorithm, vals); old.DelaySketch != nil {
		t.Fatal("sketch materialized from sketchless checkpoint values")
	} else if !math.IsNaN(old.SketchQuantile(0.99)) {
		t.Fatal("SketchQuantile on a sketchless aggregate must be NaN")
	}
}

// TestSketchTracksHistogramQuantiles bounds the sketch's tail estimates
// against the exact histogram on a realistic F1-style run: both views see
// the same stream, so their quantiles may differ only by their combined
// bucket resolutions (5% sketch, 15% histogram growth).
func TestSketchTracksHistogramQuantiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = "hybrid"
	cfg.NumClients = 40
	cfg.Horizon = 900 * des.Second
	cfg.Warmup = 120 * des.Second
	cfg.DB.UpdateRate = 0.5 // an F1 sweep point
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DelaySketch.Count() < 500 {
		t.Fatalf("too few delays (%d) for a quantile comparison", r.DelaySketch.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		hist := r.DelayHist.Quantile(q)
		sk := r.DelaySketch.Quantile(q)
		if hist <= 0 {
			continue
		}
		// The histogram reports a bucket upper edge, the sketch a centroid:
		// the sketch can sit up to one histogram bucket (×1.15) below and
		// one sketch bucket (×1.05) above.
		if ratio := sk / hist; ratio < 1/(1.15*1.05) || ratio > 1.05*1.15 {
			t.Errorf("q=%g: sketch %g vs histogram %g (ratio %.3f beyond combined resolution)",
				q, sk, hist, ratio)
		}
	}
	// The headline tail columns come straight from the sketch.
	if r.P99Delay != r.DelaySketch.Quantile(0.99) {
		t.Errorf("P99Delay %g != sketch p99 %g", r.P99Delay, r.DelaySketch.Quantile(0.99))
	}
}
