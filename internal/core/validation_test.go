package core

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/des"
)

// This file cross-checks the simulator against the closed-form results in
// internal/analytic. Each test configures the simulation into a regime
// where an idealized model applies and asserts convergence. These are the
// reproduction's ground anchors: if the simulator cannot recover known
// limits, its numbers in novel regimes mean nothing.

// quietConfig is a lightly loaded configuration where queueing and loss are
// negligible, so wait-time formulas dominate the delay.
func quietConfig(algo string) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = algo
	cfg.NumClients = 40
	cfg.TrafficLoad = 0.02
	cfg.DB.UpdateRate = 0.05
	cfg.Channel.MeanSNRdB = 30 // strong links: decode failures negligible
	cfg.Channel.ShadowSigmaDB = 2
	cfg.Horizon = 2400 * des.Second
	cfg.Warmup = 600 * des.Second
	return cfg
}

func TestValidationTSWait(t *testing.T) {
	cfg := quietConfig("ts")
	cfg.IR.Interval = 24 * des.Second
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// delay = wait-for-report (L/2) + miss-path cost. The miss path at this
	// load is sub-second, so the mean must land on L/2 within ~15%.
	want := analytic.TSWait(24)
	if math.Abs(r.MeanDelay-want)/want > 0.15 {
		t.Fatalf("TS delay %.2fs, analytic wait %.2fs", r.MeanDelay, want)
	}
}

func TestValidationUIRWait(t *testing.T) {
	cfg := quietConfig("uir")
	cfg.IR.Interval = 24 * des.Second
	cfg.IR.MiniPerInterval = 4
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := analytic.UIRWait(24, 4) // 3 s
	// Allow the miss-path cost on top: the mean must sit in [want, want+2].
	if r.MeanDelay < want*0.8 || r.MeanDelay > want+2 {
		t.Fatalf("UIR delay %.2fs, analytic wait %.2fs", r.MeanDelay, want)
	}
	// And the UIR/TS ratio must track 1/m.
	cfgTS := quietConfig("ts")
	cfgTS.IR.Interval = 24 * des.Second
	rTS, err := Run(cfgTS)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.MeanDelay / rTS.MeanDelay
	if ratio < 0.15 || ratio > 0.45 {
		t.Fatalf("UIR/TS ratio %.2f, want ≈ 1/m = 0.25", ratio)
	}
}

func TestValidationHitRatioBoundedByChe(t *testing.T) {
	// With updates nearly frozen, the hit ratio approaches the Che LRU
	// bound from below (invalidations and cold-start keep it under).
	cfg := quietConfig("ts")
	cfg.DB.UpdateRate = 0.001
	cfg.Workload.QueryRate = 0.3 // warm the caches quickly
	cfg.Horizon = 3600 * des.Second
	cfg.Warmup = 1800 * des.Second
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bound := analytic.CheLRUHitRatio(cfg.DB.NumItems, cfg.CacheCapacity, cfg.Workload.Zipf)
	if r.HitRatio > bound+0.02 {
		t.Fatalf("hit %.3f exceeds Che bound %.3f", r.HitRatio, bound)
	}
	if r.HitRatio < bound*0.7 {
		t.Fatalf("hit %.3f far below Che bound %.3f — caches not converging", r.HitRatio, bound)
	}
}

func TestValidationReportSize(t *testing.T) {
	// The measured report overhead rate must match the expected distinct
	// item count per window times the per-item wire cost.
	cfg := quietConfig("ts")
	cfg.DB.UpdateRate = 2
	cfg.IR.Interval = 20 * des.Second
	cfg.IR.WindowReports = 2
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dbc := cfg.DB
	items := analytic.ExpectedReportItems(dbc.UpdateRate, 40, dbc.HotFraction,
		dbc.HotItems, dbc.NumItems-dbc.HotItems)
	wantBps := (items*64 + 112) / 20 // PerItemBits=64, HeaderBits=112, per L
	got := r.OverheadBitsPerSec()
	if math.Abs(got-wantBps)/wantBps > 0.15 {
		t.Fatalf("overhead %.0f b/s, analytic %.0f b/s", got, wantBps)
	}
}

func TestValidationRayleighReportLoss(t *testing.T) {
	// Broadcast reports at the robust MCS are lost roughly when the
	// instantaneous SNR is under the scheme's working threshold. The
	// simulated loss rate must track the Rayleigh outage probability within
	// a factor accounting for FSMC quantization and frame-length effects.
	cfg := quietConfig("ts")
	cfg.Channel.MeanSNRdB = 10
	cfg.Channel.ShadowSigmaDB = 0 // isolate fading
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Working threshold of BPSK-1/2 for ~100-byte reports is ≈ 2 dB.
	outage := analytic.RayleighOutage(radioFromDB(2), radioFromDB(10))
	got := r.ReportLossRate()
	if got < outage/3 || got > outage*3 {
		t.Fatalf("report loss %.4f vs Rayleigh outage %.4f", got, outage)
	}
}

func radioFromDB(db float64) float64 { return math.Pow(10, db/10) }

func TestValidationEnergyFloor(t *testing.T) {
	// Idle listening dominates energy; no scheme may report less than the
	// radio-state floor, and a lean scheme should sit within 20% of it.
	cfg := quietConfig("ts")
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	floor := analytic.DozeEnergyFloor(cfg.Energy.IdleW, cfg.Energy.DozeW,
		cfg.Workload.QueryRate, 0)
	if r.EnergyPerQuery < floor*0.99 {
		t.Fatalf("energy %.2f below physical floor %.2f", r.EnergyPerQuery, floor)
	}
	if r.EnergyPerQuery > floor*1.2 {
		t.Fatalf("energy %.2f far above floor %.2f at idle load", r.EnergyPerQuery, floor)
	}
}

func TestValidationUplinkContention(t *testing.T) {
	// The uplink's attempts-per-delivery must stay near 1 at trivial load
	// and grow under synchronized request bursts. Note that invalidation
	// reports synchronize the miss requests of all clients, so "trivial"
	// means well under one pending query per report interval.
	light := quietConfig("ts")
	light.NumClients = 5
	light.Workload.QueryRate = 0.005
	rl, err := Run(light)
	if err != nil {
		t.Fatal(err)
	}
	if rl.UplinkSent > 0 {
		ratio := float64(rl.UplinkAttempts) / float64(rl.UplinkSent)
		if ratio > 1.3 {
			t.Fatalf("light-load attempts/sent %.2f, want ≈ 1", ratio)
		}
	}
	heavy := quietConfig("ts")
	heavy.NumClients = 150
	heavy.Workload.QueryRate = 0.3
	heavy.DB.UpdateRate = 2 // low hit ratio → many requests per report
	rh, err := Run(heavy)
	if err != nil {
		t.Fatal(err)
	}
	ratioH := float64(rh.UplinkAttempts) / float64(rh.UplinkSent)
	ratioL := float64(rl.UplinkAttempts) / float64(rl.UplinkSent)
	if !(ratioH > ratioL) {
		t.Fatalf("contention did not grow with load: %.2f vs %.2f", ratioH, ratioL)
	}
}
