package core

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/mobility"
)

// fastConfig returns a small configuration that runs in tens of
// milliseconds, for integration tests.
func fastConfig(algo string) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = algo
	cfg.NumClients = 25
	cfg.DB.NumItems = 300
	cfg.CacheCapacity = 60
	cfg.Horizon = 900 * des.Second
	cfg.Warmup = 200 * des.Second
	return cfg
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*Config){
		func(c *Config) { c.NumClients = 0 },
		func(c *Config) { c.CacheCapacity = 0 },
		func(c *Config) { c.CacheCapacity = c.DB.NumItems + 1 },
		func(c *Config) { c.Algorithm = "bogus" },
		func(c *Config) { c.IR.Interval = 0 },
		func(c *Config) { c.TrafficLoad = -1 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Warmup = c.Horizon },
		func(c *Config) { c.ResponseOverheadBits = -1 },
		func(c *Config) { c.Energy.TxW = -1 },
		func(c *Config) { c.Workload.QueryRate = -1 },
		func(c *Config) { c.DB.ItemBits = 0 },
	}
	for i, f := range mut {
		c := DefaultConfig()
		f(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestValidateCouplesSubConfigs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DB.NumItems = 500
	cfg.Workload.NumItems = 1 // stale value: Validate must recouple
	cfg.Traffic.NumClients = 1
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Workload.NumItems != 500 || cfg.Traffic.NumClients != cfg.NumClients {
		t.Fatal("sub-configs not coupled")
	}
	if cfg.DB.Retention < 2*cfg.IR.IntervalMax {
		t.Fatalf("retention %v too small", cfg.DB.Retention)
	}
}

// TestAllAlgorithmsEndToEnd is the headline integration test: every scheme
// runs a full simulation, answers nearly all queries, and never serves a
// stale value.
func TestAllAlgorithmsEndToEnd(t *testing.T) {
	for _, algo := range []string{"ts", "at", "sig", "bs", "uir", "tair", "lair", "hybrid"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			r, err := Run(fastConfig(algo))
			if err != nil {
				t.Fatal(err)
			}
			if r.Queries == 0 {
				t.Fatal("no queries issued")
			}
			if frac := float64(r.Answered) / float64(r.Queries); frac < 0.9 {
				t.Fatalf("only %.2f of queries answered", frac)
			}
			if r.StaleViolations != 0 {
				t.Fatalf("STRONG CONSISTENCY VIOLATED: %d stale answers", r.StaleViolations)
			}
			if math.IsNaN(r.MeanDelay) || r.MeanDelay <= 0 {
				t.Fatalf("mean delay %v", r.MeanDelay)
			}
			if r.HitRatio < 0 || r.HitRatio > 1 {
				t.Fatalf("hit ratio %v", r.HitRatio)
			}
			if r.ReportsDecoded == 0 {
				t.Fatal("no reports decoded")
			}
			if r.EnergyPerQuery <= 0 {
				t.Fatalf("energy per query %v", r.EnergyPerQuery)
			}
			if r.DownlinkUtil <= 0 || r.DownlinkUtil > 1.000001 {
				t.Fatalf("utilization %v", r.DownlinkUtil)
			}
		})
	}
}

func TestDeterministicReplication(t *testing.T) {
	run := func() *RunStats {
		r, err := Run(fastConfig("hybrid"))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Queries != b.Queries || a.CacheHits != b.CacheHits ||
		a.MeanDelay != b.MeanDelay || a.EnergyJoules != b.EnergyJoules ||
		a.UplinkAttempts != b.UplinkAttempts || a.IRBits != b.IRBits {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	// Different seed must actually change the run.
	cfg := fastConfig("hybrid")
	cfg.Seed = 999
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.MeanDelay == a.MeanDelay && c.CacheHits == a.CacheHits {
		t.Fatal("different seeds produced identical results")
	}
}

func TestCanonicalOrderings(t *testing.T) {
	// The three robust results of the literature, at a single seed:
	// 1. UIR cuts TS's wait latency by roughly the mini factor.
	// 2. AT flushes caches far more often than TS under lossy reception.
	// 3. The traffic-aware scheme beats both at light load.
	results := map[string]*RunStats{}
	for _, algo := range []string{"ts", "at", "uir", "tair"} {
		cfg := fastConfig(algo)
		cfg.TrafficLoad = 0.1
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[algo] = r
	}
	if !(results["uir"].MeanDelay < 0.6*results["ts"].MeanDelay) {
		t.Errorf("UIR %.2fs not well below TS %.2fs",
			results["uir"].MeanDelay, results["ts"].MeanDelay)
	}
	if !(results["at"].CacheDrops > 2*results["ts"].CacheDrops) {
		t.Errorf("AT drops %d not well above TS drops %d",
			results["at"].CacheDrops, results["ts"].CacheDrops)
	}
	if !(results["tair"].MeanDelay < results["uir"].MeanDelay) {
		t.Errorf("TAIR %.2fs not below UIR %.2fs",
			results["tair"].MeanDelay, results["uir"].MeanDelay)
	}
}

func TestSleepingClientsStillConsistent(t *testing.T) {
	for _, algo := range []string{"ts", "at", "sig", "uir", "hybrid"} {
		cfg := fastConfig(algo)
		cfg.Workload.SleepRatio = 0.5
		cfg.Workload.AwakeMeanSec = 60
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.StaleViolations != 0 {
			t.Fatalf("%s: %d stale answers under disconnection", algo, r.StaleViolations)
		}
		if r.Answered == 0 {
			t.Fatalf("%s: nothing answered under disconnection", algo)
		}
		// Energy must attribute doze time.
		if r.EnergyPerQuery <= 0 {
			t.Fatalf("%s: energy %v", algo, r.EnergyPerQuery)
		}
	}
}

func TestSleepHurtsATMostAndSIGLeast(t *testing.T) {
	drops := map[string]uint64{}
	hits := map[string]float64{}
	for _, algo := range []string{"ts", "at", "sig"} {
		cfg := fastConfig(algo)
		cfg.Workload.SleepRatio = 0.4
		cfg.Workload.AwakeMeanSec = 80
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		drops[algo] = r.CacheDrops
		hits[algo] = r.HitRatio
	}
	if !(drops["at"] > drops["ts"]) {
		t.Errorf("AT drops %d not above TS %d under sleep", drops["at"], drops["ts"])
	}
	if drops["sig"] != 0 {
		t.Errorf("SIG forced %d window drops; signatures have no window", drops["sig"])
	}
	if !(hits["sig"] > hits["at"]) {
		t.Errorf("SIG hit %.3f not above AT %.3f under sleep", hits["sig"], hits["at"])
	}
}

func TestZeroBackgroundLoad(t *testing.T) {
	cfg := fastConfig("ts")
	cfg.TrafficLoad = 0
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.AirtimeBackground != 0 {
		t.Fatalf("background airtime %v with zero load", r.AirtimeBackground)
	}
	if r.Answered == 0 || r.StaleViolations != 0 {
		t.Fatal("basic operation broken at zero load")
	}
}

func TestTSDelayMatchesTheory(t *testing.T) {
	// At light load, TS wait latency is uniform over the interval: the mean
	// query delay must sit near L/2 plus a small miss-path cost.
	cfg := fastConfig("ts")
	cfg.TrafficLoad = 0.05
	cfg.IR.Interval = 16 * des.Second
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanDelay < 7 || r.MeanDelay > 13 {
		t.Fatalf("TS mean delay %.2fs, want ≈ L/2 = 8s (+miss cost)", r.MeanDelay)
	}
}

func TestRunStatsDerivedMetrics(t *testing.T) {
	r, err := Run(fastConfig("tair"))
	if err != nil {
		t.Fatal(err)
	}
	if v := r.OverheadBitsPerSec(); math.IsNaN(v) || v <= 0 {
		t.Fatalf("overhead %v", v)
	}
	if v := r.UplinkPerAnswer(); math.IsNaN(v) || v <= 0 {
		t.Fatalf("uplink per answer %v", v)
	}
	if v := r.ReportLossRate(); math.IsNaN(v) || v < 0 || v >= 1 {
		t.Fatalf("report loss %v", v)
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
	empty := &RunStats{}
	if !math.IsNaN(empty.OverheadBitsPerSec()) || !math.IsNaN(empty.UplinkPerAnswer()) ||
		!math.IsNaN(empty.ReportLossRate()) {
		t.Fatal("empty stats must be NaN")
	}
}

// repJSON renders an aggregate's per-replication values as JSON lines, a
// convenient deep-equality fingerprint (NaN encodes as null).
func repJSON(t *testing.T, a *Aggregate, numClients int) string {
	t.Helper()
	var b strings.Builder
	for _, r := range a.Runs {
		data, err := json.Marshal(r.Values(numClients))
		if err != nil {
			t.Fatal(err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestRunReplicationsParallelDeterminism(t *testing.T) {
	cfg := fastConfig("ts")
	cfg.Horizon = 400 * des.Second
	cfg.Warmup = 100 * des.Second
	seq, err := RunReplications(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunReplications(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Reps != 4 || par.Reps != 4 {
		t.Fatalf("reps %d/%d", seq.Reps, par.Reps)
	}
	if seq.MeanDelay.Mean() != par.MeanDelay.Mean() ||
		seq.HitRatio.Mean() != par.HitRatio.Mean() {
		t.Fatal("parallel and sequential replications disagree")
	}
	// Every per-replication scalar must match, for any worker count.
	want := repJSON(t, seq, cfg.NumClients)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		agg, err := RunReplications(cfg, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := repJSON(t, agg, cfg.NumClients); got != want {
			t.Fatalf("workers=%d changed replication values:\n%s\nvs\n%s", workers, got, want)
		}
		if agg.String() != seq.String() {
			t.Fatalf("workers=%d changed aggregate: %s vs %s", workers, agg, seq)
		}
	}
	if seq.MeanDelay.CI95() <= 0 {
		t.Fatalf("CI %v", seq.MeanDelay.CI95())
	}
	if len(seq.Runs) != 4 {
		t.Fatalf("runs kept %d", len(seq.Runs))
	}
	// Seeds must differ across replications.
	if seq.Runs[0].Seed == seq.Runs[1].Seed {
		t.Fatal("replications share a seed")
	}
	if seq.String() == "" {
		t.Fatal("aggregate String empty")
	}
}

func TestRunReplicationsErrors(t *testing.T) {
	if _, err := RunReplications(DefaultConfig(), 0, 1); err == nil {
		t.Error("zero reps accepted")
	}
	bad := DefaultConfig()
	bad.Algorithm = "nope"
	if _, err := RunReplications(bad, 2, 2); err == nil {
		t.Error("invalid config accepted")
	}
	// A bad config must surface its own error, not cancellation fallout
	// from the fail-fast pool.
	if _, err := RunReplicationsCtx(context.Background(), bad, 4, 4); err == nil ||
		errors.Is(err, context.Canceled) {
		t.Errorf("fail-fast hid the real error: %v", err)
	}
}

func TestExecuteCtxCancellation(t *testing.T) {
	cfg := fastConfig("ts")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunRep(ctx, cfg, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunRep under cancelled ctx: %v", err)
	}
	if _, err := RunReplicationsCtx(ctx, cfg, 3, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunReplicationsCtx under cancelled ctx: %v", err)
	}
	// A live context leaves the run untouched.
	if _, err := RunRep(context.Background(), cfg, 0); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateValuesRoundTrip(t *testing.T) {
	cfg := fastConfig("uir")
	cfg.Horizon = 400 * des.Second
	cfg.Warmup = 100 * des.Second
	agg, err := RunReplications(cfg, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var vals []RepValues
	for _, r := range agg.Runs {
		data, err := json.Marshal(r.Values(cfg.NumClients))
		if err != nil {
			t.Fatal(err)
		}
		var v RepValues
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	back := AggregateValues(cfg.Algorithm, vals)
	if back.String() != agg.String() {
		t.Fatalf("round trip changed aggregate:\n%s\n%s", back, agg)
	}
	if back.Reps != agg.Reps ||
		back.MeanDelay.Mean() != agg.MeanDelay.Mean() ||
		back.MeanDelay.CI95() != agg.MeanDelay.CI95() ||
		back.CacheDropsRate.Mean() != agg.CacheDropsRate.Mean() ||
		back.Queries != agg.Queries {
		t.Fatal("round trip changed summary values")
	}
}

func TestStrictPriorityAblation(t *testing.T) {
	// Under heavy background load, strict priority shields responses from
	// background queueing; the shared data plane does not. The delay gap is
	// the whole reason the traffic-aware schemes exist.
	shared := fastConfig("ts")
	shared.TrafficLoad = 0.7
	rShared, err := Run(shared)
	if err != nil {
		t.Fatal(err)
	}
	strict := fastConfig("ts")
	strict.TrafficLoad = 0.7
	strict.Downlink.StrictPriority = true
	rStrict, err := Run(strict)
	if err != nil {
		t.Fatal(err)
	}
	if !(rStrict.MeanDelay < rShared.MeanDelay) {
		t.Errorf("strict priority %.2fs not below shared %.2fs",
			rStrict.MeanDelay, rShared.MeanDelay)
	}
}

func TestLoadDegradesDelay(t *testing.T) {
	light := fastConfig("ts")
	light.TrafficLoad = 0.05
	rLight, err := Run(light)
	if err != nil {
		t.Fatal(err)
	}
	heavy := fastConfig("ts")
	heavy.TrafficLoad = 0.7
	rHeavy, err := Run(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if !(rHeavy.MeanDelay > rLight.MeanDelay) {
		t.Errorf("load did not hurt delay: %.2fs vs %.2fs",
			rHeavy.MeanDelay, rLight.MeanDelay)
	}
	if !(rHeavy.DownlinkUtil > rLight.DownlinkUtil) {
		t.Error("load did not raise utilization")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	// Same horizon, different warmup: the longer-warmup run must count
	// fewer queries but similar rates.
	a := fastConfig("ts")
	a.Warmup = 100 * des.Second
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	b := fastConfig("ts")
	b.Warmup = 500 * des.Second
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if !(rb.Queries < ra.Queries) {
		t.Fatal("longer warmup did not reduce counted queries")
	}
	rateA := float64(ra.Queries) / ra.MeasuredSec
	rateB := float64(rb.Queries) / rb.MeasuredSec
	if math.Abs(rateA-rateB)/rateA > 0.1 {
		t.Fatalf("query rates differ: %v vs %v", rateA, rateB)
	}
}

func TestGeometryChannelMode(t *testing.T) {
	cfg := fastConfig("ts")
	cfg.Channel.UseGeometry = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Answered == 0 || r.StaleViolations != 0 {
		t.Fatal("geometry mode broken")
	}
}

func TestSnoopExtension(t *testing.T) {
	base := fastConfig("ts")
	base.SnoopResponses = false
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	on := fastConfig("ts")
	on.SnoopResponses = true
	rOn, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if rOn.StaleViolations != 0 {
		t.Fatalf("snooping broke consistency: %d stale answers", rOn.StaleViolations)
	}
	if !(rOn.HitRatio > off.HitRatio) {
		t.Errorf("snooping did not raise hit ratio: %.3f vs %.3f", rOn.HitRatio, off.HitRatio)
	}
	if !(rOn.EnergyPerQuery > off.EnergyPerQuery) {
		t.Errorf("snooping energy cost missing: %.2f vs %.2f", rOn.EnergyPerQuery, off.EnergyPerQuery)
	}
	if !(rOn.UplinkSent < off.UplinkSent) {
		t.Errorf("snooping did not reduce uplink requests: %d vs %d", rOn.UplinkSent, off.UplinkSent)
	}
}

func TestMobilityEndToEnd(t *testing.T) {
	cfg := fastConfig("hybrid")
	cfg.Channel.UseGeometry = true
	cfg.Channel.Mobility = &mobility.Config{
		CellRadiusM:  cfg.Channel.CellRadiusM,
		MinDistanceM: cfg.Channel.MinDistanceM,
		SpeedMinMps:  5,
		SpeedMaxMps:  15,
		PauseMeanSec: 10,
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.StaleViolations != 0 {
		t.Fatalf("mobility broke consistency: %d stale answers", r.StaleViolations)
	}
	if r.Answered == 0 || r.ReportsDecoded == 0 {
		t.Fatal("mobility run produced nothing")
	}
	// Determinism holds under mobility too.
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanDelay != r2.MeanDelay || r.CacheHits != r2.CacheHits {
		t.Fatal("mobility run not deterministic")
	}
}

func TestTairNoSelfLockAtZeroLoad(t *testing.T) {
	// Regression: the interval adaptation must not count the scheme's own
	// miss-response bursts as downlink load, or it locks itself at
	// IntervalMax on an idle downlink and loses to plain TS.
	tair := fastConfig("tair")
	tair.TrafficLoad = 0
	rTair, err := Run(tair)
	if err != nil {
		t.Fatal(err)
	}
	ts := fastConfig("ts")
	ts.TrafficLoad = 0
	rTS, err := Run(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !(rTair.MeanDelay < rTS.MeanDelay/2) {
		t.Fatalf("tair %.2fs not well below ts %.2fs at zero load",
			rTair.MeanDelay, rTS.MeanDelay)
	}
}

func TestResponseCoalescing(t *testing.T) {
	// A hot tiny database makes simultaneous same-item requests common
	// after each report; coalescing must cut response transmissions without
	// losing answers or consistency.
	mk := func(coalesce bool) (*Simulation, *RunStats) {
		cfg := fastConfig("ts")
		cfg.DB.NumItems = 40
		cfg.DB.HotItems = 10
		cfg.CacheCapacity = 10
		cfg.DB.UpdateRate = 2 // hot items invalidated constantly
		cfg.Workload.QueryRate = 0.3
		cfg.Workload.Zipf = 1.2
		cfg.CoalesceResponses = coalesce
		sim, err := NewSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim, sim.Execute()
	}
	simOff, off := mk(false)
	simOn, on := mk(true)
	if simOn.cells[0].server.coalesced == 0 {
		t.Fatal("nothing coalesced in a hot-item workload")
	}
	if on.StaleViolations != 0 {
		t.Fatalf("coalescing broke consistency: %d", on.StaleViolations)
	}
	if !(simOn.cells[0].server.responsesSent < simOff.cells[0].server.responsesSent) {
		t.Fatalf("coalescing did not reduce responses: %d vs %d",
			simOn.cells[0].server.responsesSent, simOff.cells[0].server.responsesSent)
	}
	if float64(on.Answered) < 0.9*float64(off.Answered) {
		t.Fatalf("coalescing lost answers: %d vs %d", on.Answered, off.Answered)
	}
	if !(on.AirtimeResponse < off.AirtimeResponse) {
		t.Fatalf("coalescing did not save airtime: %.1f vs %.1f",
			on.AirtimeResponse, off.AirtimeResponse)
	}
}

func TestSingleRunDelayCI(t *testing.T) {
	r, err := Run(fastConfig("ts"))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.DelayCI95) || r.DelayCI95 <= 0 {
		t.Fatalf("batch-means CI %v", r.DelayCI95)
	}
	// The CI must be meaningfully smaller than the mean it qualifies.
	if r.DelayCI95 > r.MeanDelay {
		t.Fatalf("CI %v wider than mean %v", r.DelayCI95, r.MeanDelay)
	}
}

func TestRunStatsJSON(t *testing.T) {
	r, err := Run(fastConfig("hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"Algorithm", "MeanDelay", "HitRatio", "OverheadBps", "StaleViolations"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON missing %q", key)
		}
	}
	// NaN-able fields must marshal even in a degenerate run.
	empty := &RunStats{}
	if _, err := json.Marshal(empty); err != nil {
		t.Fatalf("empty stats failed to marshal: %v", err)
	}
}
