package core

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Cell is one base station's worth of wiring: radio channel, downlink and
// uplink MAC, background traffic source, invalidation server and algorithm
// state, and the awake roster of the clients it currently serves. The
// Simulation is the composition root: it owns the shared scheduler, database
// and client population and composes one Cell per base station (one in the
// classic single-cell configuration).
type Cell struct {
	id  int
	sim *Simulation

	// sch is the cell's execution lane. In serial runs it aliases the
	// simulation's scheduler, so every component wired to it behaves exactly
	// as before lanes existed; in parallel runs it is a private scheduler
	// advancing in lockstep epochs with its peers (see parallel.go).
	sch *des.Scheduler

	// ls receives the lane-side statistics. Serial runs share one instance
	// across all cells; parallel runs give each cell its own (see laneStats).
	ls *laneStats

	channel  *radio.Channel
	downlink *mac.Downlink
	uplink   *mac.Uplink
	bg       *traffic.Generator
	server   *server
	refRate  float64 // reference downlink bit rate for load calibration

	// roster holds the set of awake clients served by this cell as a
	// fixed-universe bitset, maintained by doze/wake (and handoff): membership
	// flips are O(1) and fan-out materialization walks words, so neither ever
	// scans the population. rosterScratch is the reusable snapshot buffer
	// fan-out loops iterate: a visited client may doze itself mid-loop
	// (mutating roster), so loops walk a snapshot and re-check membership per
	// visit, exactly reproducing the historical full-scan semantics.
	roster        idSet
	rosterScratch []int

	// warmup snapshots
	snapDown mac.DownlinkStats
	snapUp   snapshotUplink
	snapIR   uint64
	snapPig  uint64
}

// cellStream names a per-cell RNG stream. Single-cell simulations keep the
// historical unsuffixed names so every pre-topology run replays bit-for-bit.
func cellStream(base string, k, numCells int) string {
	if numCells <= 1 {
		return base
	}
	return fmt.Sprintf("%s.c%d", base, k)
}

// cellLocator routes one cell's link distances through the topology model.
type cellLocator struct {
	topo *topology.Model
	cell int
}

// DistanceM implements radio.Locator.
func (l cellLocator) DistanceM(i int, t des.Time) float64 {
	return l.topo.DistanceToCellM(i, l.cell, t)
}

// snapLocator serves link distances from the simulation's barrier-refreshed
// position snapshot instead of the mobility walkers. Parallel lanes must use
// it: the walkers advance lazily on query, so a lane asking for a foreign
// client's position (a background frame to a client of another cell) would
// mutate state owned by that client's lane. The snapshot is written only at
// barriers, making reads race-free; positions are at most one handoff-check
// period stale, the same granularity at which cell association itself is
// decided. The distance math mirrors Model.DistanceToCellM exactly.
type snapLocator struct {
	sim    *Simulation
	cx, cy float64
	minD   float64
}

// DistanceM implements radio.Locator.
func (l snapLocator) DistanceM(i int, _ des.Time) float64 {
	d := math.Hypot(l.sim.posX[i]-l.cx, l.sim.posY[i]-l.cy)
	if d < l.minD {
		d = l.minD
	}
	return d
}

// newCell wires one cell. The construction order (channel → downlink →
// uplink → algorithm → server → reference rate → traffic) mirrors the
// historical single-cell wiring exactly, so a one-cell simulation makes the
// same draws from the same streams as before the componentization.
func newCell(sim *Simulation, k, numCells int, arena *Arena) (*Cell, error) {
	cfg := &sim.cfg
	cell := &Cell{id: k, sim: sim, sch: sim.sch, ls: sim.lanes[0]}
	if sim.par {
		if arena != nil {
			cell.sch = arena.takeSched()
		}
		if cell.sch == sim.sch || cell.sch == nil {
			cell.sch = des.NewScheduler()
		}
		cell.ls = sim.lanes[k]
	}

	ccfg := cfg.Channel
	var loc radio.Locator
	if sim.topo != nil {
		// The topology owns placement and motion: every link's distance
		// routes through the grid, superseding the single-cell placement
		// knobs (annulus drop, Params.Mobility).
		ccfg.UseGeometry = true
		ccfg.Mobility = nil
		if sim.par {
			cx, cy := sim.topo.Center(k)
			loc = snapLocator{sim: sim, cx: cx, cy: cy, minD: cfg.Topology.MinDistanceM}
		} else {
			loc = cellLocator{topo: sim.topo, cell: k}
		}
	}
	cell.roster = newIDSet(cfg.NumClients)
	chSrc := rng.Stream(cfg.Seed, cellStream("channel", k, numCells))
	if arena != nil {
		if ch := arena.takeChannel(); ch != nil {
			if err := ch.ResetWithLocator(ccfg, radio.DefaultAMC(), cfg.NumClients, chSrc, loc); err != nil {
				return nil, err
			}
			cell.channel = ch
		}
	}
	if cell.channel == nil {
		ch, err := radio.NewWithLocator(ccfg, radio.DefaultAMC(), cfg.NumClients, chSrc, loc)
		if err != nil {
			return nil, err
		}
		cell.channel = ch
	}

	cell.downlink = mac.NewDownlink(cell.sch, cell.channel, cfg.Downlink, cell.deliver)
	cell.downlink.SetCell(k)
	cell.uplink = mac.NewUplink(cell.sch, cfg.Uplink, rng.Stream(cfg.Seed, cellStream("uplink", k, numCells)),
		func(src int, meta any, now des.Time) { cell.server.onRequest(src, meta, now) })
	cell.uplink.SetAttemptHook(cell.onUplinkAttempt)

	algo, err := ir.New(cfg.Algorithm, cfg.IR)
	if err != nil {
		return nil, err
	}
	cell.server = newServer(cell, algo)

	// Background load calibration: offered rate is TrafficLoad × the rate
	// link adaptation would pick at the population's average mean SNR, as
	// seen from this cell's base station.
	cell.refRate = cell.referenceRate()
	tcfg := cfg.Traffic
	tcfg.RateBps = cfg.TrafficLoad * cell.refRate
	cell.bg, err = traffic.New(cell.sch, tcfg, rng.Stream(cfg.Seed, cellStream("traffic", k, numCells)),
		cell.server.onBackground)
	if err != nil {
		return nil, err
	}
	return cell, nil
}

// referenceRate reports the effective downlink rate for unicast traffic to
// a uniformly random client: the harmonic mean of the per-client rates link
// adaptation picks at each client's mean SNR. The harmonic mean is the right
// aggregate because airtime per bit, not bits per second, is what adds up
// across frames — so TrafficLoad ≈ the utilization the background traffic
// actually contributes.
func (cell *Cell) referenceRate() float64 {
	amc := cell.channel.AMC()
	invSum := 0.0
	for i := 0; i < cell.channel.N(); i++ {
		idx, _ := amc.Select(cell.channel.MeanSNRdB(i))
		invSum += 1 / amc.Table[idx].BitRate(amc.SymbolRate)
	}
	return float64(cell.channel.N()) / invSum
}

// awakeSnapshot materializes the roster bitset into the reusable scratch
// buffer, ascending, so a fan-out loop survives visited clients dozing
// themselves mid-iteration.
func (cell *Cell) awakeSnapshot() []int {
	cell.rosterScratch = cell.roster.appendIDs(cell.rosterScratch[:0])
	return cell.rosterScratch
}

// deliver is the downlink completion fanout: reports go to every awake
// client the cell serves (individual decode), responses to their
// destination, piggybacked digests to every awake overhearer. In a
// multi-cell run a unicast frame may complete after its destination was
// handed to another cell; such frames are wasted airtime and are dropped at
// delivery (the handoff already rescheduled the query), and every roster
// visit re-checks membership alongside wakefulness.
func (cell *Cell) deliver(f *mac.Frame, ok bool, mcs int, now des.Time) {
	s := cell.sim
	amc := cell.channel.AMC()
	airtime := amc.Airtime(0, s.cfg.Downlink.HeaderBits+f.RobustBits) +
		amc.Airtime(mcs, f.Bits)
	switch m := f.Meta.(type) {
	case *ir.Report:
		if in := s.injector; in != nil {
			if fate := in.ReportFate(cell.id); fate != fault.Deliver {
				cell.deliverFaultedReport(m, fate, airtime, now)
				return
			}
		}
		for _, id := range cell.awakeSnapshot() {
			if !s.ct.online(id) || int(s.ct.cell[id]) != cell.id {
				continue
			}
			s.chargeRx(id, airtime, now)
			if cell.channel.Decode(id, now, mcs, f.Bits) {
				s.client(id).onReport(m)
			} else {
				s.client(id).onReportLost()
			}
		}
		cell.server.reports.RecycleReport(m)
	case *respMeta:
		cell.server.onResponseDelivered(m)
		switch dest := f.Dest; {
		case int(s.ct.cell[dest]) != cell.id:
			cell.ls.respDeparted++
		case !s.ct.connected(dest):
			cell.ls.respDisconnected++
		default:
			if s.ct.awake(dest) {
				s.chargeRx(dest, airtime, now)
			}
			s.client(dest).onResponse(m, ok)
		}
		for _, w := range m.waiters {
			if int(s.ct.cell[w]) != cell.id {
				cell.ls.respDeparted++
				continue
			}
			if !s.ct.connected(w) {
				cell.ls.respDisconnected++
				continue
			}
			if s.ct.awake(w) {
				s.chargeRx(w, airtime, now)
			}
			// Waiters decode independently of the addressed destination;
			// a failed decode falls back to their own re-request timer via
			// onResponse's !ok path.
			s.client(w).onResponse(m, cell.channel.Decode(w, now, mcs, f.Bits))
		}
		if s.cfg.SnoopResponses {
			for _, id := range cell.awakeSnapshot() {
				if !s.ct.online(id) || int(s.ct.cell[id]) != cell.id || id == f.Dest {
					continue
				}
				s.chargeRx(id, airtime, now)
				if cell.channel.Decode(id, now, mcs, f.Bits) {
					s.client(id).onSnoop(m)
				}
			}
		}
		cell.fanPiggy(m.piggy, f.RobustBits, now)
		cell.server.releaseResp(m)
	case *bgMeta:
		if int(s.ct.cell[f.Dest]) == cell.id && s.ct.online(f.Dest) {
			s.chargeRx(f.Dest, airtime, now)
		}
		cell.fanPiggy(m.piggy, f.RobustBits, now)
		cell.server.releaseBg(m)
	case *catchupMeta:
		switch dest := f.Dest; {
		case int(s.ct.cell[dest]) != cell.id:
			cell.ls.respDeparted++
		case !s.ct.connected(dest):
			cell.ls.respDisconnected++
		default:
			if s.ct.awake(dest) {
				s.chargeRx(dest, airtime, now)
			}
			s.client(dest).onCatchup(m.report, ok)
		}
	default:
		panic(fmt.Sprintf("core: unknown frame meta %T", f.Meta))
	}
}

// fanPiggy lets every awake client of the cell receive a piggybacked digest.
// The digest travels in the frame's robust control portion (base-rate MCS),
// so even clients that could not decode the data payload usually get it;
// they pay receive energy only for that portion and power down for the data
// body.
func (cell *Cell) fanPiggy(pg *ir.Report, robustBits int, now des.Time) {
	if pg == nil {
		return
	}
	s := cell.sim
	headBits := s.cfg.Downlink.HeaderBits + robustBits
	headAir := cell.channel.AMC().Airtime(0, headBits)
	for _, id := range cell.awakeSnapshot() {
		if !s.ct.online(id) || int(s.ct.cell[id]) != cell.id {
			continue
		}
		s.chargeRx(id, headAir, now)
		if cell.channel.Decode(id, now, 0, headBits) {
			s.client(id).onReport(pg)
		} else {
			s.client(id).onReportLost()
		}
	}
	cell.server.reports.RecycleReport(pg)
}

// deliverFaultedReport applies an injected fate to a standalone report that
// reached the air. Lost: the frame vanishes in transit — nobody hears it and
// nobody pays receive energy. Truncated: every awake receiver pays the full
// airtime but the CRC fails, so each counts the report as lost; that is the
// channel-loss path the coverage-window rule already survives, forced
// deterministically instead of by SNR.
func (cell *Cell) deliverFaultedReport(r *ir.Report, fate fault.Fate, airtime float64, now des.Time) {
	s := cell.sim
	mode := obs.ReportFaultLost
	if fate == fault.Truncated {
		mode = obs.ReportFaultTruncated
		for _, id := range cell.awakeSnapshot() {
			if !s.ct.online(id) || int(s.ct.cell[id]) != cell.id {
				continue
			}
			s.chargeRx(id, airtime, now)
			s.client(id).onReportLost()
		}
	}
	cell.noteReportFault(r.Seq, mode)
	cell.server.reports.RecycleReport(r)
}

// traceReport emits a ReportBroadcastEvent for a report leaving this cell's
// server, whether standalone (carrier "ir") or piggybacked on a data frame.
// mcs is the scheme the report's bits travel at: the explicit broadcast MCS
// for standalone reports, the robust base scheme (0) for piggybacked digests.
func (cell *Cell) traceReport(r *ir.Report, carrier string, mcs int) {
	s := cell.sim
	tr := s.tr
	if tr == nil {
		return
	}
	var items []int
	if len(r.Items) > 0 {
		items = make([]int, len(r.Items))
		for i, u := range r.Items {
			items[i] = u.ID
		}
	}
	tr.ReportBroadcast(obs.ReportBroadcastEvent{
		At:          cell.sch.Now(),
		Cell:        cell.id,
		Seq:         r.Seq,
		Kind:        r.Kind.String(),
		Carrier:     carrier,
		MCS:         mcs,
		SizeBits:    r.SizeBits(),
		WindowStart: r.WindowStart,
		Sig:         r.Sig != nil,
		Items:       items,
	})
}
