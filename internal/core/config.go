// Package core wires the substrates into the full simulation and exposes
// the library's public API: Config, Run, RunReplications.
//
// One Run is a single-threaded discrete-event simulation of a base station
// (database + invalidation-report server + shared downlink + contention
// uplink) and a population of caching clients over fading channels.
// RunReplications runs independent seeds across a worker pool and
// aggregates; the Ctx variants (RunReplicationsCtx, RunRep,
// Simulation.ExecuteCtx) add fail-fast cancellation, and RunRep is the
// per-replication unit an external scheduler can distribute itself.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// Config fully determines one simulation run (together with the Seed).
type Config struct {
	Seed uint64

	NumClients    int
	CacheCapacity int          // entries per client cache
	CachePolicy   cache.Policy // replacement discipline (default LRU)

	// Algorithm is the invalidation scheme: one of ir.Names.
	Algorithm string
	IR        ir.Params

	DB       db.Config
	Channel  radio.Params
	Downlink mac.DownlinkConfig
	Uplink   mac.UplinkConfig
	Workload workload.Config
	Energy   energy.Model

	// Topology shards the simulation into a grid of cells with mobility-driven
	// handoff. The zero value (and any NumCells ≤ 1) is the classic single-cell
	// simulation, bit-identical to pre-topology runs.
	Topology topology.Config

	// Fault is the deterministic fault-injection schedule: base-station
	// outages, report loss/truncation, query timeouts with retry, and
	// extended client disconnections. Fully disabled by default; a disabled
	// schedule is bit-identical to runs without the layer.
	Fault fault.Config

	// Background downlink traffic. TrafficLoad is the offered load as a
	// fraction of the reference downlink rate (the rate link adaptation
	// picks at the population mean SNR); Traffic.RateBps is derived from it
	// at setup time.
	Traffic     traffic.Config
	TrafficLoad float64

	// Horizon is the simulated span; statistics cover (Warmup, Horizon].
	Horizon des.Duration
	Warmup  des.Duration

	// ResponseOverheadBits is added to each item payload on the downlink
	// (request id, timestamps).
	ResponseOverheadBits int

	// CoalesceResponses lets later requests for an item join an already
	// queued response frame instead of generating another transmission —
	// the server-side dual of snooping. Waiters decode the shared frame
	// individually and re-request on failure.
	CoalesceResponses bool

	// SnoopResponses lets awake clients overhear query responses addressed
	// to other clients and insert the items into their own caches (the
	// classic broadcast-dissemination extension). It trades receive energy
	// — snoopers listen to whole data frames — for hit ratio.
	SnoopResponses bool

	// CheckConsistency compares every cache-served answer against server
	// ground truth; violations are counted in RunStats.StaleViolations.
	// It costs little and is on by default.
	CheckConsistency bool

	// Tracer, when non-nil, observes every typed simulation event (report
	// broadcasts, query resolutions, cache mutations, frame transmissions,
	// sleep/wake transitions, database updates; see internal/obs). Tracing
	// observes and never perturbs: results are byte-identical with or
	// without it. Process-local; excluded from JSON round-trips.
	Tracer obs.Tracer

	// OnEventPulse, when non-nil, is called from inside the event loop
	// every few thousand executed events with the number executed since the
	// previous call, so a live monitor can track events/sec. It must be
	// cheap and must not touch simulation state. Process-local; excluded
	// from JSON round-trips.
	OnEventPulse func(delta uint64)

	// Rollup, when non-nil, receives per-cell tumbling-window rollups of
	// simulated time (query/answer/stale-check/report counters plus a delay
	// sketch per window; see obs.RollupFlush). Windows close lazily at the
	// first observation past the boundary — never via scheduled events — so
	// enabling rollups cannot perturb results. Process-local; excluded from
	// JSON round-trips.
	Rollup obs.RollupSink

	// RollupWindowSec is the rollup window width in simulated seconds; ≤ 0
	// means 60. Meaningless without Rollup, and process-local like it.
	RollupWindowSec float64

	// Parallel enables epoch-synchronized per-cell event execution within one
	// replication: each cell runs its own scheduler lane, synchronized at
	// every cross-cell event (handoff ticks, database updates, outage edges).
	// Parallel results are deterministic — byte-identical across reruns and
	// for every worker count — but differ from serial results, because client
	// positions are sampled at handoff ticks instead of lazily per frame.
	// Ignored for single-cell runs and when a Tracer or Rollup is attached
	// (both assume the serial observation order).
	Parallel bool

	// ParallelWorkers caps the lane worker pool; ≤ 0 means GOMAXPROCS. The
	// count never affects results, only wall-clock speed.
	ParallelWorkers int
}

// DefaultConfig returns the evaluation defaults: 100 clients, 100-entry
// caches, TS at the canonical 20 s interval, one-hour runs with five minutes
// of warmup.
func DefaultConfig() Config {
	dbCfg := db.DefaultConfig()
	return Config{
		Seed:                 1,
		NumClients:           100,
		CacheCapacity:        100,
		Algorithm:            "ts",
		IR:                   ir.DefaultParams(),
		DB:                   dbCfg,
		Channel:              radio.DefaultParams(),
		Downlink:             mac.DefaultDownlinkConfig(),
		Uplink:               mac.DefaultUplinkConfig(),
		Workload:             workload.DefaultConfig(dbCfg.NumItems),
		Energy:               energy.DefaultModel(),
		Traffic:              traffic.DefaultConfig(100),
		Topology:             topology.DefaultConfig(),
		Fault:                fault.DefaultConfig(),
		TrafficLoad:          0.2,
		Horizon:              des.Hour,
		Warmup:               5 * des.Minute,
		ResponseOverheadBits: 96,
		CheckConsistency:     true,
	}
}

// Validate reports the first configuration problem. It also normalizes the
// cross-field couplings (traffic client count, workload item count, db
// retention) — call it before Run; Run calls it anyway.
func (c *Config) Validate() error {
	if c.NumClients <= 0 {
		return fmt.Errorf("core: NumClients %d", c.NumClients)
	}
	if c.CacheCapacity <= 0 || c.CacheCapacity > c.DB.NumItems {
		return fmt.Errorf("core: CacheCapacity %d of %d items", c.CacheCapacity, c.DB.NumItems)
	}
	known := false
	for _, n := range ir.Names {
		if n == c.Algorithm {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("core: unknown algorithm %q (have %v)", c.Algorithm, ir.Names)
	}
	if err := c.IR.Validate(); err != nil {
		return err
	}
	if c.TrafficLoad < 0 || c.TrafficLoad > 2 {
		return fmt.Errorf("core: TrafficLoad %v", c.TrafficLoad)
	}
	if c.Horizon <= 0 || c.Warmup < 0 || c.Warmup >= c.Horizon {
		return fmt.Errorf("core: horizon/warmup %v/%v", c.Horizon, c.Warmup)
	}
	if c.ResponseOverheadBits < 0 {
		return fmt.Errorf("core: ResponseOverheadBits %d", c.ResponseOverheadBits)
	}
	if c.ParallelWorkers < 0 {
		return fmt.Errorf("core: ParallelWorkers %d", c.ParallelWorkers)
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	if c.Topology.Enabled() {
		if c.Channel.Mobility != nil {
			return fmt.Errorf("core: Channel.Mobility and multi-cell Topology are mutually exclusive")
		}
		// Fill topology geometry/motion fields left zero (a JSON config that
		// sets only NumCells) from the single-cell channel defaults.
		if c.Topology.CellRadiusM <= 0 {
			c.Topology.CellRadiusM = c.Channel.CellRadiusM
		}
		if c.Topology.MinDistanceM <= 0 {
			c.Topology.MinDistanceM = c.Channel.MinDistanceM
		}
		if c.Topology.SpeedMinMps <= 0 {
			c.Topology.SpeedMinMps = 0.5
		}
		if c.Topology.SpeedMaxMps <= 0 {
			c.Topology.SpeedMaxMps = 2.0
		}
		if c.Topology.CheckPeriod <= 0 {
			c.Topology.CheckPeriod = des.Second
		}
	}
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if c.Fault.OutageCell >= c.Topology.Cells() {
		return fmt.Errorf("core: Fault.OutageCell %d of %d cells",
			c.Fault.OutageCell, c.Topology.Cells())
	}

	// Couple the sub-configs.
	c.IR.NumItems = c.DB.NumItems
	c.Workload.NumItems = c.DB.NumItems
	c.Traffic.NumClients = c.NumClients
	c.DB.Retention = c.maxLookback()
	if err := c.DB.Validate(); err != nil {
		return err
	}
	return c.Workload.Validate()
}

// maxLookback bounds how far back any report's coverage window can reach,
// which sizes the database's update-history retention.
func (c *Config) maxLookback() des.Duration {
	interval := c.IR.Interval
	if c.IR.IntervalMax > interval {
		interval = c.IR.IntervalMax
	}
	look := des.Duration(int64(interval) * int64(c.IR.WindowReports))
	// Double for schedule jitter and add a fixed floor.
	look = 2*look + des.Minute
	// UIR-style catch-up asks for the history since the client's last
	// consistent point, which can predate a long disconnection; keep enough
	// history for the bulk of the disconnection-length distribution. (A
	// request beyond retention still degrades safely to a forced flush.)
	if c.Fault.DisconnectsEnabled() && c.Fault.Recovery == fault.RecoverCatchup {
		look += des.FromSeconds(8 * c.Fault.DisconnectMeanSec)
	}
	return look
}
