package core

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"testing"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/topology"
)

// chaosConfig builds one randomized fault scenario: a single-cell run with
// some mix of scheduled outages, report loss/truncation, query-retry pressure
// and extended disconnections, all drawn from the test's own seed. Every
// configuration it returns passes Validate, so a failure is always a
// simulator bug, never a bad config.
func chaosConfig(seed uint64, algo string) Config {
	r := rng.New(seed)
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Algorithm = algo
	cfg.NumClients = 12 + r.Intn(7)
	cfg.Horizon = 360 * des.Second
	cfg.Warmup = 60 * des.Second
	cfg.Workload.QueryRate = r.Uniform(0.03, 0.15)
	cfg.Workload.SleepRatio = r.Uniform(0, 0.5)
	cfg.Workload.AwakeMeanSec = r.Uniform(30, 120)
	cfg.TrafficLoad = r.Uniform(0, 0.5)
	cfg.SnoopResponses = r.Bool(0.5)
	cfg.CoalesceResponses = r.Bool(0.5)

	// The retry layer is always armed: outages require it (Validate enforces
	// that), and it is the layer under the heaviest timing pressure.
	cfg.Fault.QueryTimeout = des.FromSeconds(r.Uniform(1, 4))
	cfg.Fault.RetryMax = 3 + r.Intn(5)
	if r.Bool(0.5) {
		outageLen := r.Uniform(5, 25)
		cfg.Fault.OutageStart = des.FromSeconds(r.Uniform(10, 40))
		cfg.Fault.OutageLen = des.FromSeconds(outageLen)
		cfg.Fault.OutagePeriod = des.FromSeconds(outageLen + r.Uniform(30, 90))
	}
	cfg.Fault.ReportLossProb = r.Uniform(0, 0.3)
	cfg.Fault.ReportTruncProb = r.Uniform(0, 0.15)
	if r.Bool(0.7) {
		cfg.Fault.DisconnectRate = 1 / r.Uniform(40, 120)
		cfg.Fault.DisconnectMeanSec = r.Uniform(10, 50)
		cfg.Fault.Recovery = fault.RecoveryPolicy(r.Intn(3))
	}
	return cfg
}

// fingerprintFault formats every fault counter so worker-count comparisons
// cover the fault layer, not just the protocol statistics.
func fingerprintFault(r *RunStats) string {
	return fmt.Sprintf("out=%d sup=%d flost=%d ftrunc=%d qlost=%d rtry=%d give=%d disc=%d rec=%d recmean=%v",
		r.Outages, r.ReportsSuppressed, r.ReportsFaultLost, r.ReportsFaultTrunc,
		r.QueriesLostToOutage, r.QueryRetries, r.QueryGiveups,
		r.Disconnects, r.Recoveries, r.RecoveryMeanSec)
}

// checkFaultInvariants asserts, on a finished simulation, everything the
// fault layer promises regardless of the fault schedule:
//
//   - zero stale answers — consistency survives every failure mode;
//   - query accounting holds — no query vanishes, answered or pending;
//   - roster integrity — every cell's roster is exactly its online clients,
//     sorted and duplicate-free, after arbitrary doze/disconnect/handoff churn;
//   - no stuck clients — a requested pending query has its request tracked,
//     and every outstanding request of an online client has a live retry
//     timer (nothing waits on a response that can never come);
//   - no event-queue leak — the scheduler holds a bounded number of pending
//     events at the horizon, not one per lost request.
func checkFaultInvariants(t *testing.T, sim *Simulation, r *RunStats) {
	t.Helper()
	if r.StaleViolations != 0 {
		t.Errorf("%d stale answers under fault injection", r.StaleViolations)
	}
	if r.Answered+uint64(r.PendingAtEnd) < r.Queries {
		t.Errorf("query accounting leak: answered %d + pending %d < queries %d",
			r.Answered, r.PendingAtEnd, r.Queries)
	}
	for _, cell := range sim.cells {
		roster := cell.roster.appendIDs(nil)
		for i := 1; i < len(roster); i++ {
			if roster[i-1] >= roster[i] {
				t.Fatalf("cell %d roster not sorted/unique: %v", cell.id, roster)
			}
		}
		if cell.roster.count != len(roster) {
			t.Errorf("cell %d roster count %d != %d materialized members",
				cell.id, cell.roster.count, len(roster))
		}
		var online []int
		for id := 0; id < sim.ct.n; id++ {
			if int(sim.ct.cell[id]) == cell.id && sim.ct.online(id) {
				online = append(online, id)
			}
		}
		sort.Ints(online)
		if fmt.Sprint(online) != fmt.Sprint(roster) {
			t.Errorf("cell %d roster %v != online clients %v", cell.id, roster, online)
		}
	}
	for id := 0; id < sim.ct.n; id++ {
		for _, q := range sim.ct.pending[id] {
			if q.requested && !sim.ct.outstandingHas(id, q.item) {
				t.Errorf("client %d: query for item %d marked requested but not outstanding",
					id, q.item)
			}
		}
		if sim.retryOn && sim.ct.online(id) {
			c := sim.client(id)
			for _, it := range sim.ct.outstanding[id] {
				k := c.retryIdx(int(it))
				if k < 0 || sim.ct.cold[id].retries[k].ev == nil {
					t.Errorf("client %d: outstanding request for item %d has no live retry timer",
						id, it)
				}
			}
		}
	}
	// Each outstanding request may legitimately hold one retry timer, so the
	// leak bound scales with the live backlog; everything else at the horizon
	// (tickers, sleep/query timers, MAC events, fault chains) is O(clients).
	outstanding := 0
	for id := 0; id < sim.ct.n; id++ {
		outstanding += len(sim.ct.outstanding[id])
	}
	if limit := 200 + 20*sim.ct.n + outstanding; sim.sch.Pending() > limit {
		t.Errorf("event-queue leak: %d events pending at horizon (limit %d, outstanding %d)",
			sim.sch.Pending(), limit, outstanding)
	}
}

// chaosSeeds reports how many random fault schedules each algorithm faces:
// a handful in the normal suite, more under -short's inverse (the soak job
// sets SOAK to crank it up).
func chaosSeeds() int {
	if s := os.Getenv("SOAK"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 1 {
			return 8 * n
		}
		return 24
	}
	if testing.Short() {
		return 2
	}
	return 4
}

// TestChaosStaleFreedom is the fault layer's headline property test: for
// every invalidation algorithm, across randomized fault schedules mixing
// outages, report destruction, retry pressure and extended disconnections
// under all three recovery policies, the protocol invariants hold — above
// all, zero stale answers.
func TestChaosStaleFreedom(t *testing.T) {
	seeds := chaosSeeds()
	for _, algo := range ir.Names {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			for s := 0; s < seeds; s++ {
				seed := uint64(1000*s) + 17
				cfg := chaosConfig(seed, algo)
				sim, err := NewSimulation(cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				r := sim.Execute()
				checkFaultInvariants(t, sim, r)
				if t.Failed() {
					t.Fatalf("invariants violated at seed %d: %+v faults: %s",
						seed, cfg.Fault, fingerprintFault(r))
				}
			}
		})
	}
}

// TestChaosDeterminism re-runs one fully loaded fault scenario and compares
// every statistic and fault counter byte for byte: the fault layer's RNG
// streams and event names must make failure schedules exactly reproducible.
func TestChaosDeterminism(t *testing.T) {
	for _, algo := range []string{"ts", "uir", "hybrid"} {
		cfg := chaosConfig(99, algo)
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fa := fingerprintStats(a) + " " + fingerprintFault(a)
		fb := fingerprintStats(b) + " " + fingerprintFault(b)
		if fa != fb {
			t.Errorf("%s: chaos run not deterministic\nfirst:  %s\nsecond: %s", algo, fa, fb)
		}
		if a.Disconnects == 0 && a.Outages == 0 {
			t.Errorf("%s: chaos scenario injected nothing", algo)
		}
	}
}

// TestChaosWorkerCountInvariance runs the same faulted replication set on one
// worker and on GOMAXPROCS: per-run statistics and fault counters must be
// byte-identical, extending the scheduler's determinism guarantee to the
// fault layer.
func TestChaosWorkerCountInvariance(t *testing.T) {
	for _, algo := range []string{"ts", "hybrid"} {
		cfg := chaosConfig(7, algo)
		const reps = 3
		seq, err := RunReplications(cfg, reps, 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunReplications(cfg, reps, 0) // 0 = GOMAXPROCS
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq.Runs {
			a := fingerprintStats(seq.Runs[i]) + " " + fingerprintFault(seq.Runs[i])
			b := fingerprintStats(par.Runs[i]) + " " + fingerprintFault(par.Runs[i])
			if a != b {
				t.Errorf("%s rep %d diverged across worker counts\n1 worker: %s\nparallel: %s",
					algo, i, a, b)
			}
		}
	}
}

// faultTraceRecorder captures disconnection and handoff events so the
// composition test can correlate them.
type faultTraceRecorder struct {
	obs.Base
	disconnects []obs.DisconnectEvent
	handoffs    []obs.HandoffEvent
	recoveries  []obs.RecoveryEvent
}

func (f *faultTraceRecorder) Disconnect(e obs.DisconnectEvent) {
	f.disconnects = append(f.disconnects, e)
}
func (f *faultTraceRecorder) Handoff(e obs.HandoffEvent) { f.handoffs = append(f.handoffs, e) }
func (f *faultTraceRecorder) Recovery(e obs.RecoveryEvent) {
	f.recoveries = append(f.recoveries, e)
}

// TestHandoffDisconnectCompose proves the two membership mechanisms — cell
// handoff and extended disconnection — compose under every (handoff policy,
// recovery policy) pair: clients that cross cell boundaries while their radio
// is dark re-join the grid in their new serving cell with rosters intact,
// recover, and never serve a stale answer. The trace correlation asserts the
// interesting interleaving actually occurred (handoffs mid-disconnection).
func TestHandoffDisconnectCompose(t *testing.T) {
	for _, hp := range []topology.HandoffPolicy{topology.Drop, topology.Revalidate} {
		for _, rp := range []fault.RecoveryPolicy{fault.RecoverWindow, fault.RecoverFlush, fault.RecoverCatchup} {
			hp, rp := hp, rp
			t.Run(fmt.Sprintf("%s-%s", hp, rp), func(t *testing.T) {
				t.Parallel()
				downHandoffs := 0
				for seed := uint64(5); seed < 8; seed++ {
					cfg := multiCellConfig("hybrid", seed)
					cfg.Topology.Policy = hp
					cfg.Fault.QueryTimeout = des.FromSeconds(2)
					cfg.Fault.DisconnectRate = 1.0 / 60
					cfg.Fault.DisconnectMeanSec = 25
					cfg.Fault.Recovery = rp
					rec := &faultTraceRecorder{}
					cfg.Tracer = rec
					sim, err := NewSimulation(cfg)
					if err != nil {
						t.Fatal(err)
					}
					r := sim.Execute()
					checkFaultInvariants(t, sim, r)
					if t.Failed() {
						t.Fatalf("invariants violated at seed %d", seed)
					}
					if r.Handoffs == 0 {
						t.Fatalf("seed %d: no handoffs in a vehicular run", seed)
					}
					if r.Disconnects == 0 {
						t.Fatalf("seed %d: no disconnections injected", seed)
					}
					if r.Recoveries == 0 {
						t.Fatalf("seed %d: nothing recovered", seed)
					}
					// Replay the trace: count handoffs that happened while the
					// client's radio was dark.
					down := map[int]bool{}
					di := 0
					for _, h := range rec.handoffs {
						for di < len(rec.disconnects) && rec.disconnects[di].At <= h.At {
							down[rec.disconnects[di].Client] = rec.disconnects[di].Down
							di++
						}
						if down[h.Client] {
							downHandoffs++
						}
					}
					// Every recovery must belong to the configured policy.
					for _, rv := range rec.recoveries {
						if rv.Policy != rp.String() {
							t.Fatalf("recovery under policy %q, configured %q", rv.Policy, rp)
						}
					}
				}
				if downHandoffs == 0 {
					t.Error("no handoff ever happened mid-disconnection; scenario too tame")
				}
			})
		}
	}
}

// TestChaosGiveupRedrive pins the retry layer's fallback path: under an
// outage schedule dark enough to exhaust retry budgets, queries that gave up
// must still resolve (or stay accountably pending) — never vanish — and the
// giveup counter must actually fire.
func TestChaosGiveupRedrive(t *testing.T) {
	// The full default population: enough downlink load that responses sit in
	// queues past the retry timeout, keeping re-sent requests continuously in
	// flight — so plenty of them land inside the dark half of each cycle.
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.Algorithm = "ts"
	cfg.Horizon = 600 * des.Second
	cfg.Warmup = 120 * des.Second
	cfg.Fault.OutageStart = des.FromSeconds(30)
	cfg.Fault.OutageLen = des.FromSeconds(60)
	cfg.Fault.OutagePeriod = des.FromSeconds(120)
	cfg.Fault.QueryTimeout = des.FromSeconds(3)
	cfg.Fault.RetryMax = 2
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.Execute()
	checkFaultInvariants(t, sim, r)
	if r.QueryGiveups == 0 {
		t.Error("no query gave up under a 50% outage duty cycle with RetryMax=2")
	}
	if r.QueriesLostToOutage == 0 {
		t.Error("no query was lost to an outage")
	}
	if r.Answered == 0 {
		t.Error("nothing answered despite outage-free half-cycles")
	}
}
