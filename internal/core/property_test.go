package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/des"
	"repro/internal/rng"
)

// TestRandomConfigInvariants fuzzes the whole simulator: random (but valid)
// configurations must always uphold the protocol invariants — zero stale
// answers, query accounting identities, bounded utilization — regardless of
// where in the parameter space they land.
func TestRandomConfigInvariants(t *testing.T) {
	algos := []string{"ts", "at", "sig", "bs", "uir", "tair", "lair", "hybrid"}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Algorithm = algos[r.Intn(len(algos))]
		cfg.NumClients = 5 + r.Intn(25)
		cfg.DB.NumItems = 100 + r.Intn(300)
		cfg.DB.HotItems = 10 + r.Intn(40)
		cfg.DB.UpdateRate = r.Uniform(0, 3)
		cfg.DB.HotFraction = r.Uniform(0.1, 0.95)
		cfg.CacheCapacity = 10 + r.Intn(cfg.DB.NumItems/2)
		cfg.CachePolicy = cache.Policy(r.Intn(3))
		cfg.Workload.QueryRate = r.Uniform(0.01, 0.25)
		cfg.Workload.Zipf = r.Uniform(0, 1.3)
		cfg.Workload.SleepRatio = r.Uniform(0, 0.7)
		cfg.Workload.AwakeMeanSec = r.Uniform(20, 200)
		cfg.TrafficLoad = r.Uniform(0, 0.7)
		cfg.Channel.MeanSNRdB = r.Uniform(8, 30)
		cfg.Channel.DopplerHz = r.Uniform(1, 60)
		cfg.IR.Interval = des.FromSeconds(r.Uniform(5, 40))
		cfg.IR.Coverage = r.Uniform(0.4, 0.99)
		cfg.SnoopResponses = r.Bool(0.3)
		cfg.CoalesceResponses = r.Bool(0.3)
		cfg.Downlink.StrictPriority = r.Bool(0.3)
		cfg.Horizon = 400 * des.Second
		cfg.Warmup = 80 * des.Second

		stats, err := Run(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if stats.StaleViolations != 0 {
			t.Logf("seed %d (%s): %d stale answers", seed, cfg.Algorithm, stats.StaleViolations)
			return false
		}
		if stats.Answered+uint64(stats.PendingAtEnd) < stats.Queries {
			t.Logf("seed %d: accounting leak", seed)
			return false
		}
		if stats.DownlinkUtil < 0 || stats.DownlinkUtil > 1.000001 {
			t.Logf("seed %d: util %v", seed, stats.DownlinkUtil)
			return false
		}
		if stats.HitRatio < 0 || stats.HitRatio > 1 {
			t.Logf("seed %d: hit %v", seed, stats.HitRatio)
			return false
		}
		if stats.EnergyJoules < 0 {
			t.Logf("seed %d: energy %v", seed, stats.EnergyJoules)
			return false
		}
		return true
	}
	n := 30
	if testing.Short() {
		n = 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}
