package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/des"
)

// TestDozingClientsHearNothing verifies that a client population asleep
// essentially all the time receives (and pays rx energy for) almost no
// reports.
func TestDozingClientsHearNothing(t *testing.T) {
	cfg := fastConfig("ts")
	cfg.Workload.QueryRate = 0 // no queries: sleep is never deferred
	cfg.Workload.SleepRatio = 0.96
	cfg.Workload.AwakeMeanSec = 5
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reports broadcast every 20 s over ~700 s measured to 25 clients; an
	// always-awake population would log ~875 receptions. At 96% doze the
	// count must collapse proportionally.
	total := r.ReportsDecoded + r.ReportsLost
	if total > 150 {
		t.Fatalf("dozing population received %d reports", total)
	}
}

// TestAnsweredViaBreakdown checks the per-kind answer attribution: UIR
// answers mostly at minis, TS only at full reports, TAIR mostly via
// piggybacks at moderate load.
func TestAnsweredViaBreakdown(t *testing.T) {
	run := func(algo string) *RunStats {
		cfg := fastConfig(algo)
		cfg.TrafficLoad = 0.3
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ts := run("ts")
	if ts.AnsweredVia[1] != 0 || ts.AnsweredVia[2] != 0 {
		t.Fatalf("ts answered via mini/piggy: %v", ts.AnsweredVia)
	}
	if ts.AnsweredVia[0] == 0 {
		t.Fatal("ts answered nothing via full reports")
	}
	uir := run("uir")
	if !(uir.AnsweredVia[1] > uir.AnsweredVia[0]) {
		t.Fatalf("uir should answer mostly at minis: %v", uir.AnsweredVia)
	}
	tair := run("tair")
	if !(tair.AnsweredVia[2] > tair.AnsweredVia[0]) {
		t.Fatalf("tair should answer mostly at piggybacks under load: %v", tair.AnsweredVia)
	}
}

// TestWeakClientRetries forces a population with terrible links and checks
// the ARQ/re-request machinery engages without losing queries forever.
func TestWeakClientRetries(t *testing.T) {
	cfg := fastConfig("ts")
	cfg.Channel.MeanSNRdB = 8
	cfg.Channel.ShadowSigmaDB = 0
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ResponseRetries == 0 {
		t.Fatal("no ARQ retries at 8 dB mean SNR")
	}
	if frac := float64(r.Answered) / float64(r.Queries); frac < 0.7 {
		t.Fatalf("only %.2f answered despite retries", frac)
	}
	if r.StaleViolations != 0 {
		t.Fatal("weak links broke consistency")
	}
}

// TestCachePolicyOrderingEndToEnd: LRU must beat Random on hit ratio in the
// full simulation too, not just in the cache microbenchmark.
func TestCachePolicyOrderingEndToEnd(t *testing.T) {
	hit := func(p cache.Policy) float64 {
		cfg := fastConfig("uir")
		cfg.CachePolicy = p
		cfg.Workload.QueryRate = 0.3
		cfg.Workload.Zipf = 0.9
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.StaleViolations != 0 {
			t.Fatalf("policy %d broke consistency", p)
		}
		return r.HitRatio
	}
	lru, random := hit(cache.LRU), hit(cache.Random)
	if !(lru > random) {
		t.Fatalf("LRU %.3f not above Random %.3f", lru, random)
	}
}

// TestEnergyAttribution sanity-checks that rx-heavy schemes cost more
// receive energy: SIG's 1 KB report per interval outweighs AT's slim
// reports.
func TestEnergyAttribution(t *testing.T) {
	run := func(algo string) *RunStats {
		cfg := fastConfig(algo)
		cfg.Workload.QueryRate = 0 // isolate report listening
		cfg.NumClients = 10
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	sig := run("sig")
	at := run("at")
	if !(sig.EnergyJoules > at.EnergyJoules) {
		t.Fatalf("sig energy %.1f not above at %.1f", sig.EnergyJoules, at.EnergyJoules)
	}
}

// TestPendingAtHorizonAccounted verifies unanswered queries at the end are
// reported, not silently dropped from the statistics.
func TestPendingAtHorizonAccounted(t *testing.T) {
	cfg := fastConfig("ts")
	cfg.IR.Interval = 300 * des.Second // reports rarer than the tail of the run
	cfg.IR.IntervalMin = 100 * des.Second
	cfg.IR.IntervalMax = 400 * des.Second
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.PendingAtEnd == 0 {
		t.Fatal("expected unanswered queries with a 300s report interval")
	}
	if r.Answered+uint64(r.PendingAtEnd) < r.Queries {
		t.Fatalf("query accounting leak: %d answered + %d pending < %d issued",
			r.Answered, r.PendingAtEnd, r.Queries)
	}
}
