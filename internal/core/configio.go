package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/des"
)

// MarshalJSON-friendly persistence for Config: hooks are process-local and
// excluded; everything else round-trips, so an experiment's exact
// configuration can be archived next to its results.

// SaveJSON writes the config as indented JSON.
func (c *Config) SaveJSON(path string) error {
	data, err := c.ToJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ToJSON renders the config as indented JSON.
func (c *Config) ToJSON() ([]byte, error) {
	shadow := *c
	shadow.Tracer = nil
	shadow.OnEventPulse = nil
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(configJSON(shadow)); err != nil {
		return nil, fmt.Errorf("core: encoding config: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadJSON reads a config written by SaveJSON. Fields absent from the file
// keep their values from the receiver, so callers typically start from
// DefaultConfig and overlay a file.
func (c *Config) LoadJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return c.FromJSON(data)
}

// FromJSON overlays JSON onto the receiver.
func (c *Config) FromJSON(data []byte) error {
	shadow := configJSON(*c)
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&shadow); err != nil {
		return fmt.Errorf("core: decoding config: %w", err)
	}
	tracer, pulse := c.Tracer, c.OnEventPulse
	*c = Config(shadow)
	c.Tracer = tracer
	c.OnEventPulse = pulse
	return nil
}

// configJSON exists so the exported process-local fields (Tracer,
// OnEventPulse, Rollup, RollupWindowSec) can be skipped without tagging the
// public struct: it shadows Config and the alias below names only the
// serializable fields.
type configJSON Config

// MarshalJSON implements json.Marshaler, excluding the hook.
func (c configJSON) MarshalJSON() ([]byte, error) {
	type alias struct {
		Seed                 uint64
		NumClients           int
		CacheCapacity        int
		CachePolicy          int
		Algorithm            string
		IR                   any
		DB                   any
		Channel              any
		Downlink             any
		Uplink               any
		Workload             any
		Energy               any
		Traffic              any
		Topology             any
		Fault                any
		TrafficLoad          float64
		Horizon              int64
		Warmup               int64
		ResponseOverheadBits int
		CoalesceResponses    bool
		SnoopResponses       bool
		CheckConsistency     bool
	}
	return json.Marshal(alias{
		Seed: c.Seed, NumClients: c.NumClients, CacheCapacity: c.CacheCapacity,
		CachePolicy: int(c.CachePolicy), Algorithm: c.Algorithm, IR: c.IR, DB: c.DB, Channel: c.Channel,
		Downlink: c.Downlink, Uplink: c.Uplink, Workload: c.Workload,
		Energy: c.Energy, Traffic: c.Traffic, Topology: c.Topology,
		Fault:       c.Fault,
		TrafficLoad: c.TrafficLoad,
		Horizon:     int64(c.Horizon), Warmup: int64(c.Warmup),
		ResponseOverheadBits: c.ResponseOverheadBits,
		CoalesceResponses:    c.CoalesceResponses,
		SnoopResponses:       c.SnoopResponses,
		CheckConsistency:     c.CheckConsistency,
	})
}

// UnmarshalJSON implements json.Unmarshaler, overlaying present fields.
func (c *configJSON) UnmarshalJSON(data []byte) error {
	cfg := (*Config)(c)
	type alias struct {
		Seed                 *uint64
		NumClients           *int
		CacheCapacity        *int
		CachePolicy          *int
		Algorithm            *string
		IR                   *json.RawMessage
		DB                   *json.RawMessage
		Channel              *json.RawMessage
		Downlink             *json.RawMessage
		Uplink               *json.RawMessage
		Workload             *json.RawMessage
		Energy               *json.RawMessage
		Traffic              *json.RawMessage
		Topology             *json.RawMessage
		Fault                *json.RawMessage
		TrafficLoad          *float64
		Horizon              *int64
		Warmup               *int64
		ResponseOverheadBits *int
		CoalesceResponses    *bool
		SnoopResponses       *bool
		CheckConsistency     *bool
	}
	// Reject unknown top-level keys: a typoed field silently keeping its
	// default would corrupt an experiment.
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(data, &keys); err != nil {
		return err
	}
	known := map[string]bool{
		"Seed": true, "NumClients": true, "CacheCapacity": true, "CachePolicy": true,
		"Algorithm": true, "IR": true, "DB": true, "Channel": true,
		"Downlink": true, "Uplink": true, "Workload": true, "Energy": true,
		"Traffic": true, "Topology": true, "Fault": true, "TrafficLoad": true,
		"Horizon": true, "Warmup": true,
		"ResponseOverheadBits": true, "CoalesceResponses": true,
		"SnoopResponses": true, "CheckConsistency": true,
	}
	for k := range keys {
		if !known[k] {
			return fmt.Errorf("core: unknown config field %q", k)
		}
	}
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	setU64 := func(dst *uint64, src *uint64) {
		if src != nil {
			*dst = *src
		}
	}
	setU64(&cfg.Seed, a.Seed)
	if a.NumClients != nil {
		cfg.NumClients = *a.NumClients
	}
	if a.CacheCapacity != nil {
		cfg.CacheCapacity = *a.CacheCapacity
	}
	if a.CachePolicy != nil {
		cfg.CachePolicy = cache.Policy(*a.CachePolicy)
	}
	if a.Algorithm != nil {
		cfg.Algorithm = *a.Algorithm
	}
	// Sub-configs get the same strictness as the top level: a typoed field
	// inside e.g. "Topology" must not silently keep its default.
	sub := func(raw *json.RawMessage, dst any) error {
		if raw == nil {
			return nil
		}
		dec := json.NewDecoder(bytes.NewReader(*raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(dst); err != nil {
			return fmt.Errorf("core: decoding config sub-object: %w", err)
		}
		return nil
	}
	if err := sub(a.IR, &cfg.IR); err != nil {
		return err
	}
	if err := sub(a.DB, &cfg.DB); err != nil {
		return err
	}
	if err := sub(a.Channel, &cfg.Channel); err != nil {
		return err
	}
	if err := sub(a.Downlink, &cfg.Downlink); err != nil {
		return err
	}
	if err := sub(a.Uplink, &cfg.Uplink); err != nil {
		return err
	}
	if err := sub(a.Workload, &cfg.Workload); err != nil {
		return err
	}
	if err := sub(a.Energy, &cfg.Energy); err != nil {
		return err
	}
	if err := sub(a.Traffic, &cfg.Traffic); err != nil {
		return err
	}
	if err := sub(a.Topology, &cfg.Topology); err != nil {
		return err
	}
	if err := sub(a.Fault, &cfg.Fault); err != nil {
		return err
	}
	if a.TrafficLoad != nil {
		cfg.TrafficLoad = *a.TrafficLoad
	}
	if a.Horizon != nil {
		cfg.Horizon = des.Duration(*a.Horizon)
	}
	if a.Warmup != nil {
		cfg.Warmup = des.Duration(*a.Warmup)
	}
	if a.ResponseOverheadBits != nil {
		cfg.ResponseOverheadBits = *a.ResponseOverheadBits
	}
	if a.CoalesceResponses != nil {
		cfg.CoalesceResponses = *a.CoalesceResponses
	}
	if a.SnoopResponses != nil {
		cfg.SnoopResponses = *a.SnoopResponses
	}
	if a.CheckConsistency != nil {
		cfg.CheckConsistency = *a.CheckConsistency
	}
	return nil
}
