package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/obs"
)

func traceTestConfig(algo string) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = algo
	cfg.NumClients = 20
	cfg.Horizon = 300 * des.Second
	cfg.Warmup = 60 * des.Second
	cfg.DB.UpdateRate = 0.5
	cfg.TrafficLoad = 0.3
	return cfg
}

// TestTracingDoesNotPerturb is the telemetry contract: every measured output
// of a run must be identical whether or not a tracer and an event pulse are
// attached. Only the wall-clock perf fields may differ.
func TestTracingDoesNotPerturb(t *testing.T) {
	for _, algo := range []string{"ts", "sig", "hybrid"} {
		t.Run(algo, func(t *testing.T) {
			plain, err := Run(traceTestConfig(algo))
			if err != nil {
				t.Fatal(err)
			}

			cfg := traceTestConfig(algo)
			ring := obs.NewRing(1024)
			cfg.Tracer = ring
			var pulsed uint64
			cfg.OnEventPulse = func(delta uint64) { pulsed += delta }
			traced, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			if ring.Total() == 0 {
				t.Fatal("tracer saw no events")
			}
			if pulsed != traced.Events {
				t.Fatalf("pulse total %d != executed events %d", pulsed, traced.Events)
			}

			// Blank the wall-clock perf fields, then everything must match —
			// including the full delay series and histogram.
			scrub := func(r *RunStats) RunStats {
				c := *r
				c.WallSec, c.Events, c.EventsPerSec, c.HeapAllocBytes = 0, 0, 0, 0
				// RecoveryMeanSec is NaN when no recovery completed, and
				// NaN never DeepEquals itself; canonicalize. A real
				// divergence still trips the Recoveries counter.
				if math.IsNaN(c.RecoveryMeanSec) {
					c.RecoveryMeanSec = 0
				}
				return c
			}
			a, b := scrub(plain), scrub(traced)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("tracing perturbed the run:\nplain:  %+v\ntraced: %+v", a, b)
			}
		})
	}
}

// TestTracedEventsArriveEverywhere checks that each emission site actually
// fires under a normal run: all event families should appear.
func TestTracedEventsArriveEverywhere(t *testing.T) {
	cfg := traceTestConfig("hybrid")
	ring := obs.NewRing(1 << 16)
	cfg.Tracer = ring
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	counts := ring.Counts()
	for _, ev := range []string{obs.EvReportBroadcast, obs.EvQuery, obs.EvCache,
		obs.EvFrameTx, obs.EvDBUpdate, obs.EvReportProcess} {
		if counts[ev] == 0 {
			t.Errorf("no %s events traced (counts %v)", ev, counts)
		}
	}
	// Sleep/wake needs a sleeping workload; the default may keep clients
	// awake, so exercise it explicitly.
	cfg = traceTestConfig("ts")
	cfg.Workload.SleepRatio = 0.5
	ring2 := obs.NewRing(1 << 10)
	cfg.Tracer = ring2
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if ring2.Counts()[obs.EvSleepWake] == 0 {
		t.Error("no sleep_wake events traced under a sleeping workload")
	}
}
