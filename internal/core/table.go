package core

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/des"
	"repro/internal/energy"
	"repro/internal/ir"
	"repro/internal/rng"
	"repro/internal/workload"
)

// This file holds the struct-of-arrays storage for the client population.
// Instead of one heap-allocated struct per client wired into a pointer graph,
// every piece of per-client state lives in a column of the clientTable,
// indexed by the client's id. A replication's whole steady-state client
// footprint is then a handful of flat slices that the Arena recycles whole
// between replications, and the hot fan-out loops touch densely packed
// columns instead of chasing 10⁵ scattered structs.

// Per-client boolean state packed into one flags byte.
const (
	cfAwake        uint8 = 1 << iota // not dozing
	cfSleepPending                   // doze deferred while queries are in flight
	cfConnected                      // not in an extended disconnection
	cfRecovering                     // reconnected, consistency not yet re-proven
	cfCatchupOut                     // a catch-up request is in flight
)

// clientStats is one client's measurement row (post-warmup counts).
type clientStats struct {
	queries        uint64
	hits           uint64
	missAnswers    uint64
	stale          uint64
	reportsDecoded uint64
	reportsLost    uint64
	drainedVia     [3]uint64 // answers enabled by full/mini/piggyback reports
}

// retryEntry is the retransmission timer for one outstanding request.
type retryEntry struct {
	item  int
	tries int // consecutive timeouts so far
	ev    *des.Event
}

// clientCold is the rarely-touched fault-layer row, split out of the hot
// columns so fault-free runs pay nothing for it. The cold table is sized only
// when the retry or disconnection layer is enabled (see ensureCold); all code
// paths that reach it are gated on those layers being armed.
type clientCold struct {
	fsrc          rng.Source // private fault-draw stream
	reconnectedAt des.Time
	catchupTries  int
	catchupEv     *des.Event
	connEv        *des.Event // pending disconnect or reconnect timer
	retries       []retryEntry

	// Method-value callbacks bound once at construction.
	discFn    func()
	reconnFn  func()
	catchupFn func()
}

// clientTable is the client population as parallel columns.
type clientTable struct {
	n int

	// Hot scalar columns.
	flags   []uint8
	cell    []int32 // serving cell id; reassigned by handoff
	sleptAt []des.Time
	queryEv []*des.Event
	sleepEv []*des.Event // pending doze or wake timer (handoff migrates it)

	// Per-client growable state.
	pending     [][]pendingQuery
	outstanding [][]int32 // items with an uplink request in flight (unordered set)

	// Component columns, stored by value so one table owns the whole footprint.
	caches   []cache.Cache
	istate   []ir.ClientState
	csrcs    []rng.Source // signature false-positive draws
	wsrcs    []rng.Source // workload sampler streams (samplers point into this)
	samplers []workload.Sampler
	meters   []energy.Meter
	stats    []clientStats

	// Method-value callbacks bound once at construction: scheduling a
	// query/doze/wake event then costs no closure allocation.
	queryFn []func()
	dozeFn  []func()
	wakeFn  []func()

	// Cold side table; empty unless the fault layer needs per-client state.
	cold []clientCold
}

// init shapes the table for n clients with the given cache geometry. When the
// table (typically arena-recycled) already has exactly this shape, the columns
// are cleared in place and reused; the caller must then Reset each cache
// rather than Init it. Reports whether the caches are fresh (need Init).
func (t *clientTable) init(n, cacheCap, universe int, policy cache.Policy) bool {
	reuse := t.n == n && len(t.caches) == n && n > 0 &&
		t.caches[0].Capacity() == cacheCap &&
		t.caches[0].Universe() == universe &&
		t.caches[0].Policy() == policy
	if !reuse {
		*t = clientTable{
			n:           n,
			flags:       make([]uint8, n),
			cell:        make([]int32, n),
			sleptAt:     make([]des.Time, n),
			queryEv:     make([]*des.Event, n),
			sleepEv:     make([]*des.Event, n),
			pending:     make([][]pendingQuery, n),
			outstanding: make([][]int32, n),
			caches:      make([]cache.Cache, n),
			istate:      make([]ir.ClientState, n),
			csrcs:       make([]rng.Source, n),
			wsrcs:       make([]rng.Source, n),
			samplers:    make([]workload.Sampler, n),
			meters:      make([]energy.Meter, n),
			stats:       make([]clientStats, n),
			queryFn:     make([]func(), n),
			dozeFn:      make([]func(), n),
			wakeFn:      make([]func(), n),
		}
		return true
	}
	clear(t.flags)
	clear(t.cell)
	clear(t.sleptAt)
	clear(t.queryEv)
	clear(t.sleepEv)
	for i := range t.pending {
		t.pending[i] = t.pending[i][:0]
	}
	for i := range t.outstanding {
		t.outstanding[i] = t.outstanding[i][:0]
	}
	clear(t.istate)
	clear(t.stats)
	t.cold = t.cold[:0]
	return false
}

// ensureCold sizes the cold side table for the fault layer.
func (t *clientTable) ensureCold() {
	if cap(t.cold) >= t.n {
		t.cold = t.cold[:t.n]
		clear(t.cold)
		return
	}
	t.cold = make([]clientCold, t.n)
}

// online reports whether client i participates in the protocol at all: awake
// (not dozing) and connected (not in an extended disconnection). Roster
// membership maintains exactly this predicate.
func (t *clientTable) online(i int) bool {
	return t.flags[i]&(cfAwake|cfConnected) == cfAwake|cfConnected
}

// awake reports whether client i is not dozing.
func (t *clientTable) awake(i int) bool { return t.flags[i]&cfAwake != 0 }

// connected reports whether client i is not disconnected.
func (t *clientTable) connected(i int) bool { return t.flags[i]&cfConnected != 0 }

// outstandingHas reports whether client i has an uplink request in flight for
// item. The set is small (bounded by distinct pending items), so a linear
// scan beats any hash.
func (t *clientTable) outstandingHas(i, item int) bool {
	for _, it := range t.outstanding[i] {
		if int(it) == item {
			return true
		}
	}
	return false
}

// outstandingAdd records an in-flight request. The caller checks membership.
func (t *clientTable) outstandingAdd(i, item int) {
	t.outstanding[i] = append(t.outstanding[i], int32(item))
}

// outstandingRemove retires an in-flight request (order-free swap-remove).
func (t *clientTable) outstandingRemove(i, item int) {
	set := t.outstanding[i]
	for k, it := range set {
		if int(it) == item {
			set[k] = set[len(set)-1]
			t.outstanding[i] = set[:len(set)-1]
			return
		}
	}
}

// idSet is a fixed-universe bitset used for the per-cell awake rosters:
// membership flips are O(1) regardless of population, where the former
// sorted-id roster paid an O(awake) memmove per doze/wake/handoff. Ascending
// iteration (the order every fan-out loop and the golden fingerprints depend
// on) falls out of walking the words low to high.
type idSet struct {
	words []uint64
	count int
}

// newIDSet returns an empty set over a universe of n ids.
func newIDSet(n int) idSet { return idSet{words: make([]uint64, (n+63)/64)} }

// add inserts id (no-op when present).
func (s *idSet) add(id int) {
	w, b := id>>6, uint64(1)<<(id&63)
	if s.words[w]&b == 0 {
		s.words[w] |= b
		s.count++
	}
}

// remove deletes id (no-op when absent).
func (s *idSet) remove(id int) {
	w, b := id>>6, uint64(1)<<(id&63)
	if s.words[w]&b != 0 {
		s.words[w] &^= b
		s.count--
	}
}

// appendIDs appends the members in ascending order and returns the slice.
func (s *idSet) appendIDs(dst []int) []int {
	for w, word := range s.words {
		base := w << 6
		for word != 0 {
			dst = append(dst, base|bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return dst
}
