package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/topology"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	orig := DefaultConfig()
	orig.Algorithm = "hybrid"
	orig.Seed = 42
	orig.TrafficLoad = 0.55
	orig.SnoopResponses = true
	orig.IR.Coverage = 0.6
	orig.DB.UpdateRate = 1.5
	orig.Horizon = 1234 * des.Second

	data, err := orig.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	got := DefaultConfig()
	if err := got.FromJSON(data); err != nil {
		t.Fatal(err)
	}
	// The hooks are process-local and excluded from comparison.
	orig.Tracer, orig.OnEventPulse = nil, nil
	got.Tracer, got.OnEventPulse = nil, nil
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", orig, got)
	}
}

func TestConfigJSONOverlayPartial(t *testing.T) {
	base := DefaultConfig()
	if err := base.FromJSON([]byte(`{"Algorithm":"uir","TrafficLoad":0.7}`)); err != nil {
		t.Fatal(err)
	}
	if base.Algorithm != "uir" || base.TrafficLoad != 0.7 {
		t.Fatal("overlay fields not applied")
	}
	// Untouched fields retain their defaults.
	if base.NumClients != DefaultConfig().NumClients {
		t.Fatal("overlay clobbered untouched field")
	}
	// Nested partial overlay.
	if err := base.FromJSON([]byte(`{"DB":{"UpdateRate":3}}`)); err != nil {
		t.Fatal(err)
	}
	if base.DB.UpdateRate != 3 || base.DB.NumItems != DefaultConfig().DB.NumItems {
		t.Fatalf("nested overlay wrong: %+v", base.DB)
	}
}

func TestConfigJSONRejectsUnknownFields(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.FromJSON([]byte(`{"Algoritm":"ts"}`)); err == nil {
		t.Fatal("typo field accepted")
	}
	if err := cfg.FromJSON([]byte(`{bad json`)); err == nil {
		t.Fatal("malformed json accepted")
	}
}

func TestConfigJSONTopologyRoundTrip(t *testing.T) {
	orig := DefaultConfig()
	orig.Topology = topology.Config{
		NumCells:     9,
		CellRadiusM:  300,
		MinDistanceM: 15,
		SpeedMinMps:  3,
		SpeedMaxMps:  12,
		PauseMeanSec: 7,
		CheckPeriod:  2 * des.Second,
		Policy:       topology.Revalidate,
	}
	data, err := orig.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	got := DefaultConfig()
	if err := got.FromJSON(data); err != nil {
		t.Fatal(err)
	}
	if got.Topology != orig.Topology {
		t.Fatalf("topology round trip mismatch:\n%+v\n%+v", orig.Topology, got.Topology)
	}
	// Partial nested overlay keeps the untouched topology fields.
	if err := got.FromJSON([]byte(`{"Topology":{"NumCells":4}}`)); err != nil {
		t.Fatal(err)
	}
	if got.Topology.NumCells != 4 || got.Topology.CellRadiusM != 300 {
		t.Fatalf("nested topology overlay wrong: %+v", got.Topology)
	}
}

func TestConfigJSONRejectsUnknownNestedFields(t *testing.T) {
	// Strictness must reach inside sub-objects: a typo in a nested config
	// silently keeping its default would corrupt an experiment.
	cfg := DefaultConfig()
	for _, bad := range []string{
		`{"Topology":{"NumCels":4}}`,
		`{"DB":{"UpdateRte":3}}`,
		`{"Channel":{"UseGeometri":true}}`,
		`{"Workload":{"SleepRatioo":0.5}}`,
	} {
		if err := cfg.FromJSON([]byte(bad)); err == nil {
			t.Errorf("nested typo accepted: %s", bad)
		}
	}
}

func TestConfigJSONFaultRoundTrip(t *testing.T) {
	orig := DefaultConfig()
	orig.Fault = fault.Config{
		OutageStart:       30 * des.Second,
		OutagePeriod:      180 * des.Second,
		OutageLen:         20 * des.Second,
		OutageCell:        2,
		ReportLossProb:    0.1,
		ReportTruncProb:   0.05,
		QueryTimeout:      3 * des.Second,
		RetryBackoff:      des.Second,
		RetryMax:          4,
		DisconnectRate:    1.0 / 90,
		DisconnectMeanSec: 45,
		Recovery:          fault.RecoverCatchup,
	}
	data, err := orig.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	got := DefaultConfig()
	if err := got.FromJSON(data); err != nil {
		t.Fatal(err)
	}
	if got.Fault != orig.Fault {
		t.Fatalf("fault round trip mismatch:\n%+v\n%+v", orig.Fault, got.Fault)
	}
	// Partial nested overlay keeps the untouched fault fields — including the
	// non-zero defaults (OutageCell -1, RetryMax 6) a full re-decode would
	// otherwise clobber.
	got = DefaultConfig()
	if err := got.FromJSON([]byte(`{"Fault":{"ReportLossProb":0.25}}`)); err != nil {
		t.Fatal(err)
	}
	if got.Fault.ReportLossProb != 0.25 {
		t.Fatalf("fault overlay not applied: %+v", got.Fault)
	}
	if got.Fault.OutageCell != -1 || got.Fault.RetryMax != fault.DefaultConfig().RetryMax {
		t.Fatalf("fault overlay clobbered defaults: %+v", got.Fault)
	}
}

func TestConfigJSONRejectsUnknownFaultFields(t *testing.T) {
	// The fault schedule feeds resilience experiments: a typoed knob silently
	// keeping its default (i.e. the fault staying off) would make a chaos run
	// report a fault-free fingerprint and nobody would notice.
	cfg := DefaultConfig()
	for _, bad := range []string{
		`{"Fault":{"OutageLenn":5}}`,
		`{"Fault":{"ReportLosProb":0.1}}`,
		`{"Fault":{"Recoverry":1}}`,
	} {
		if err := cfg.FromJSON([]byte(bad)); err == nil {
			t.Errorf("nested fault typo accepted: %s", bad)
		}
	}
	// A structurally valid overlay must still pass through Config.Validate
	// downstream — spot-check that the decoded schedule is the raw value, not
	// a sanitized one (validation is Run's job, not the decoder's).
	if err := cfg.FromJSON([]byte(`{"Fault":{"OutageLen":-5}}`)); err != nil {
		t.Fatal(err)
	}
	if cfg.Fault.OutageLen != -5 {
		t.Fatalf("decoder rewrote fault value: %v", cfg.Fault.OutageLen)
	}
}

func TestConfigJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	orig := DefaultConfig()
	orig.Algorithm = "sig"
	if err := orig.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	got := DefaultConfig()
	if err := got.LoadJSON(path); err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != "sig" {
		t.Fatal("file round trip lost field")
	}
	if err := got.LoadJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	// A loaded config must still validate and run.
	got.Horizon = 120 * des.Second
	got.Warmup = 30 * des.Second
	got.NumClients = 5
	if _, err := Run(got); err != nil {
		t.Fatal(err)
	}
}
