package core

import (
	"context"
	"sync"

	"repro/internal/des"
	"repro/internal/metrics"
)

// This file implements the parallel in-replication execution mode:
// conservative, epoch-synchronized per-cell event execution. Each Cell owns a
// des.Scheduler (its "lane") carrying every event whose effects stay inside
// the cell — client timers, MAC slots and frames, traffic arrivals, server
// tickers. The Simulation's scheduler carries only the events with cross-cell
// effects: database updates, the handoff ticker, outage edges, and the warmup
// reset. The run advances in epochs bounded by the next barrier event's time:
// lanes execute concurrently up to (but excluding) that time, park at a
// barrier, and the barrier events then run serially with every lane frozen —
// so cross-cell state (the client table's cell column, the update history,
// the position snapshot) is only ever written while nothing else runs, and
// only ever read by lanes between writes. Determinism follows: lanes share no
// mutable state during the parallel phase, so the worker count changes only
// which OS thread executes a lane, never what the lane computes; barrier
// processing walks cells and clients in ascending id order. Events timed
// exactly at a barrier run in the epoch after it — a fixed rule, applied
// identically for every worker count.
//
// laneJob is one epoch's work order for one lane.
type laneJob struct {
	cell  *Cell
	until des.Time
}

// runEpochs drives a parallel run to the horizon. pulsed carries the
// OnEventPulse bookkeeping shared with ExecuteCtx (which emits the final
// residual); pulses fire at barriers with the executed-event total summed
// across every scheduler, preserving the serial contract that deltas sum to
// the run's global event count.
func (s *Simulation) runEpochs(ctx context.Context, horizon des.Time, pulsed *uint64) (des.Time, error) {
	jobs := make(chan laneJob, len(s.cells))
	var phase sync.WaitGroup   // parallel-phase barrier, counted per epoch
	var workers sync.WaitGroup // pool lifetime
	for w := 0; w < s.parWorkers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for j := range jobs {
				// A lane already at or past the target (an empty epoch at
				// the same barrier time) has nothing to run; Run would
				// panic on a backwards horizon.
				if j.until >= j.cell.sch.Now() {
					j.cell.sch.Run(j.until)
				}
				phase.Done()
			}
		}()
	}
	defer func() {
		close(jobs)
		workers.Wait()
	}()

	// runLanes executes every lane concurrently up to until, waits for all of
	// them, and reports the first lane error in ascending cell-id order (the
	// deterministic choice when several lanes were interrupted at once).
	runLanes := func(until des.Time) error {
		phase.Add(len(s.cells))
		for _, cell := range s.cells {
			jobs <- laneJob{cell: cell, until: until}
		}
		phase.Wait()
		for _, cell := range s.cells {
			if err := cell.sch.Err(); err != nil {
				return err
			}
		}
		return nil
	}

	fn := s.cfg.OnEventPulse
	for {
		// The next barrier: the earliest pending cross-cell event, clamped
		// to the horizon.
		bt, ok := s.sch.NextAt()
		if !ok || bt > horizon {
			bt = horizon
		}
		// Parallel phase: lanes run everything strictly before the barrier.
		if bt > 0 {
			if err := runLanes(bt - 1); err != nil {
				return 0, err
			}
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		// Barrier phase: advance every lane clock to the barrier time, then
		// run the barrier events serially. Barrier handlers may schedule onto
		// lanes (handoff migration, catch-up restarts) — the lanes are
		// already at bt, so those events land in the next epoch.
		for _, cell := range s.cells {
			cell.sch.AdvanceTo(bt)
		}
		s.sch.Run(bt)
		if err := s.sch.Err(); err != nil {
			return 0, err
		}
		s.epochs++
		if fn != nil {
			if total := s.Executed(); total-*pulsed >= cancelCheckEvents {
				fn(total - *pulsed)
				*pulsed = total
			}
		}
		if bt >= horizon {
			break
		}
	}
	// Final parallel phase: events timed exactly at the horizon (the loop
	// above ran lanes only to horizon-1).
	if err := runLanes(horizon); err != nil {
		return 0, err
	}
	s.epochs++
	return horizon, nil
}

// mergedDelay returns the run's delay recorder: the single shared instance in
// serial mode, or the per-cell recorders merged in ascending cell-id order.
func (s *Simulation) mergedDelay() *metrics.DelayRecorder {
	if len(s.lanes) == 1 {
		return s.lanes[0].delay
	}
	m := metrics.NewDelayRecorder(64)
	for _, ls := range s.lanes {
		m.Merge(ls.delay)
	}
	return m
}

// mergedLanes folds the per-lane counters into one laneStats, in ascending
// cell-id order (the identity fold for a serial run's single shared lane).
func (s *Simulation) mergedLanes() laneStats {
	var m laneStats
	for _, ls := range s.lanes {
		m.respDeparted += ls.respDeparted
		m.respDisconnected += ls.respDisconnected
		m.queriesLostToOutage += ls.queriesLostToOutage
		m.queryRetries += ls.queryRetries
		m.queryGiveups += ls.queryGiveups
		m.disconnects += ls.disconnects
		m.recoveries += ls.recoveries
		m.recoveryDelay.Merge(&ls.recoveryDelay)
		m.reportsSuppressed += ls.reportsSuppressed
		m.reportsFaultLost += ls.reportsFaultLost
		m.reportsFaultTrunc += ls.reportsFaultTrunc
	}
	return m
}
