package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// Aggregate summarizes several independent replications of one
// configuration. Each metric carries an across-replication mean and 95%
// confidence half-width.
type Aggregate struct {
	Algorithm string
	Reps      int

	MeanDelay      metrics.Summary
	P95Delay       metrics.Summary
	HitRatio       metrics.Summary
	UplinkPerAns   metrics.Summary
	OverheadBps    metrics.Summary
	DownlinkUtil   metrics.Summary
	EnergyPerQuery metrics.Summary
	ReportLoss     metrics.Summary
	CacheDropsRate metrics.Summary // flushes per client per hour

	StaleViolations uint64
	Queries         uint64
	Answered        uint64
	PendingAtEnd    int

	Runs []*RunStats
}

// add folds one replication into the aggregate.
func (a *Aggregate) add(r *RunStats, numClients int) {
	a.Reps++
	a.MeanDelay.Add(r.MeanDelay)
	a.P95Delay.Add(r.P95Delay)
	a.HitRatio.Add(r.HitRatio)
	a.UplinkPerAns.Add(r.UplinkPerAnswer())
	a.OverheadBps.Add(r.OverheadBitsPerSec())
	a.DownlinkUtil.Add(r.DownlinkUtil)
	a.EnergyPerQuery.Add(r.EnergyPerQuery)
	a.ReportLoss.Add(r.ReportLossRate())
	if r.MeasuredSec > 0 {
		a.CacheDropsRate.Add(float64(r.CacheDrops) / float64(numClients) / (r.MeasuredSec / 3600))
	}
	a.StaleViolations += r.StaleViolations
	a.Queries += r.Queries
	a.Answered += r.Answered
	a.PendingAtEnd += r.PendingAtEnd
	a.Runs = append(a.Runs, r)
}

// String renders the aggregate as one line.
func (a *Aggregate) String() string {
	return fmt.Sprintf(
		"%-7s reps=%d delay=%.3f±%.3fs p95=%.3fs hit=%.3f±%.3f uplink/ans=%.2f overhead=%.0fb/s energy/q=%.2fJ stale=%d",
		a.Algorithm, a.Reps,
		a.MeanDelay.Mean(), a.MeanDelay.CI95(), a.P95Delay.Mean(),
		a.HitRatio.Mean(), a.HitRatio.CI95(),
		a.UplinkPerAns.Mean(), a.OverheadBps.Mean(), a.EnergyPerQuery.Mean(),
		a.StaleViolations)
}

// RunReplications executes reps independent replications of cfg (seeds
// cfg.Seed, cfg.Seed+1, …) across a bounded worker pool and aggregates. A
// workers value ≤ 0 uses GOMAXPROCS. The simulation itself is sequential;
// all parallelism is across replications, each with fully independent state
// and RNG streams, so results are deterministic regardless of worker count.
func RunReplications(cfg Config, reps, workers int) (*Aggregate, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("core: reps %d", reps)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}

	results := make([]*RunStats, reps)
	errs := make([]error, reps)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				c := cfg
				c.Seed = cfg.Seed + uint64(i)
				results[i], errs[i] = Run(c)
			}
		}()
	}
	for i := 0; i < reps; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	agg := &Aggregate{Algorithm: cfg.Algorithm}
	for i := 0; i < reps; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: replication %d: %w", i, errs[i])
		}
		agg.add(results[i], cfg.NumClients)
	}
	return agg, nil
}
