package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// Aggregate summarizes several independent replications of one
// configuration. Each metric carries an across-replication mean and 95%
// confidence half-width.
type Aggregate struct {
	Algorithm string
	Reps      int

	MeanDelay      metrics.Summary
	P95Delay       metrics.Summary
	P50Delay       metrics.Summary
	P90Delay       metrics.Summary
	P99Delay       metrics.Summary
	P999Delay      metrics.Summary
	HitRatio       metrics.Summary
	UplinkPerAns   metrics.Summary
	OverheadBps    metrics.Summary
	DownlinkUtil   metrics.Summary
	EnergyPerQuery metrics.Summary
	ReportLoss     metrics.Summary
	CacheDropsRate metrics.Summary // flushes per client per hour
	HandoffRate    metrics.Summary // handoffs per client per hour

	// Fault-layer summaries. Empty (zero Reps folded) when the fault layer is
	// disabled: every contribution is then NaN or zero-rate on a zero count.
	RecoveryDelay   metrics.Summary // seconds from reconnect to proven-consistent
	RetriesPerQuery metrics.Summary // uplink timeout re-sends per issued query
	OutageLossRate  metrics.Summary // queries lost at dark base stations per client per hour

	StaleViolations uint64
	Queries         uint64
	Answered        uint64
	PendingAtEnd    int

	// DelaySketch is the population digest: every replication's delay sketch
	// merged in replication order. Because sketch merge is exactly
	// commutative/associative, the result is byte-identical however the
	// replications were scheduled or whether they were restored from a
	// checkpoint. Nil when no replication carried a sketch (pre-sketch
	// checkpoints).
	DelaySketch *metrics.Sketch

	Runs []*RunStats
}

// SketchQuantile reports the q-quantile of the merged population delay
// sketch, or NaN when no sketch was folded.
func (a *Aggregate) SketchQuantile(q float64) float64 {
	if a.DelaySketch == nil {
		return math.NaN()
	}
	return a.DelaySketch.Quantile(q)
}

// JSONFloat is a float64 whose JSON encoding represents NaN as null, so
// per-replication values (where NaN means "nothing measured") survive a
// checkpoint round-trip; Go's encoder rejects NaN outright. Finite values
// round-trip exactly (shortest-representation encoding).
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(f))
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = JSONFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// RepValues are one replication's scalar contributions to an Aggregate —
// exactly what the cross-replication summaries fold in, and nothing
// process-local. Checkpointing these and replaying them through
// AggregateValues rebuilds a bit-identical Aggregate without rerunning
// the simulation.
type RepValues struct {
	Seed            uint64    `json:"seed"`
	MeanDelay       JSONFloat `json:"delay"`
	P95Delay        JSONFloat `json:"p95"`
	P50Delay        JSONFloat `json:"p50"`  // absent in pre-sketch checkpoints → 0
	P90Delay        JSONFloat `json:"p90"`  // absent in pre-sketch checkpoints → 0
	P99Delay        JSONFloat `json:"p99"`  // absent in pre-sketch checkpoints → 0
	P999Delay       JSONFloat `json:"p999"` // absent in pre-sketch checkpoints → 0
	HitRatio        JSONFloat `json:"hit"`
	UplinkPerAns    JSONFloat `json:"uplink"`
	OverheadBps     JSONFloat `json:"overhead"`
	DownlinkUtil    JSONFloat `json:"util"`
	EnergyPerQuery  JSONFloat `json:"energy"`
	ReportLoss      JSONFloat `json:"rptloss"`
	CacheDropsRate  JSONFloat `json:"dropsrate"` // NaN when nothing was measured
	HandoffRate     JSONFloat `json:"hoffrate"`  // absent in pre-topology checkpoints → 0
	RecoveryDelay   JSONFloat `json:"recov"`     // absent in pre-fault checkpoints → 0
	RetriesPerQuery JSONFloat `json:"retries"`   // absent in pre-fault checkpoints → 0
	OutageLossRate  JSONFloat `json:"outlost"`   // absent in pre-fault checkpoints → 0
	StaleViolations uint64    `json:"stale"`
	Queries         uint64    `json:"queries"`
	Answered        uint64    `json:"answered"`
	PendingAtEnd    int       `json:"pending"`

	// Sketch is the replication's serialized delay sketch (metrics.Sketch
	// binary format, base64 in JSON). Empty in pre-sketch checkpoints; the
	// aggregate then simply has no population digest for that replication.
	Sketch []byte `json:"sketch,omitempty"`
}

// Values extracts the aggregable scalars of one replication. numClients
// normalizes the cache-drop rate and must match the config that ran.
func (r *RunStats) Values(numClients int) RepValues {
	drops := math.NaN()
	hoffs := math.NaN()
	outlost := math.NaN()
	if r.MeasuredSec > 0 {
		drops = float64(r.CacheDrops) / float64(numClients) / (r.MeasuredSec / 3600)
		hoffs = float64(r.Handoffs) / float64(numClients) / (r.MeasuredSec / 3600)
		outlost = float64(r.QueriesLostToOutage) / float64(numClients) / (r.MeasuredSec / 3600)
	}
	var sketch []byte
	if r.DelaySketch != nil {
		sketch = r.DelaySketch.AppendBinary(nil)
	}
	return RepValues{
		Seed:            r.Seed,
		MeanDelay:       JSONFloat(r.MeanDelay),
		P95Delay:        JSONFloat(r.P95Delay),
		P50Delay:        JSONFloat(r.P50Delay),
		P90Delay:        JSONFloat(r.P90Delay),
		P99Delay:        JSONFloat(r.P99Delay),
		P999Delay:       JSONFloat(r.P999Delay),
		Sketch:          sketch,
		HitRatio:        JSONFloat(r.HitRatio),
		UplinkPerAns:    JSONFloat(r.UplinkPerAnswer()),
		OverheadBps:     JSONFloat(r.OverheadBitsPerSec()),
		DownlinkUtil:    JSONFloat(r.DownlinkUtil),
		EnergyPerQuery:  JSONFloat(r.EnergyPerQuery),
		ReportLoss:      JSONFloat(r.ReportLossRate()),
		CacheDropsRate:  JSONFloat(drops),
		HandoffRate:     JSONFloat(hoffs),
		RecoveryDelay:   JSONFloat(r.RecoveryMeanSec),
		RetriesPerQuery: JSONFloat(r.RetriesPerQuery()),
		OutageLossRate:  JSONFloat(outlost),
		StaleViolations: r.StaleViolations,
		Queries:         r.Queries,
		Answered:        r.Answered,
		PendingAtEnd:    r.PendingAtEnd,
	}
}

// addValues folds one replication's scalars into the aggregate. Summary
// drops NaN contributions, so a NaN field adds nothing — the same rule
// the live path applies.
func (a *Aggregate) addValues(v RepValues) {
	a.Reps++
	a.MeanDelay.Add(float64(v.MeanDelay))
	a.P95Delay.Add(float64(v.P95Delay))
	a.P50Delay.Add(float64(v.P50Delay))
	a.P90Delay.Add(float64(v.P90Delay))
	a.P99Delay.Add(float64(v.P99Delay))
	a.P999Delay.Add(float64(v.P999Delay))
	// Fold the serialized sketch through the same decode path the checkpoint
	// restore uses, so live and restored aggregates are bit-identical.
	if s, err := metrics.DecodeSketch(v.Sketch); err == nil && s != nil {
		if a.DelaySketch == nil {
			a.DelaySketch = metrics.NewDelaySketch()
		}
		a.DelaySketch.Merge(s)
	}
	a.HitRatio.Add(float64(v.HitRatio))
	a.UplinkPerAns.Add(float64(v.UplinkPerAns))
	a.OverheadBps.Add(float64(v.OverheadBps))
	a.DownlinkUtil.Add(float64(v.DownlinkUtil))
	a.EnergyPerQuery.Add(float64(v.EnergyPerQuery))
	a.ReportLoss.Add(float64(v.ReportLoss))
	a.CacheDropsRate.Add(float64(v.CacheDropsRate))
	a.HandoffRate.Add(float64(v.HandoffRate))
	a.RecoveryDelay.Add(float64(v.RecoveryDelay))
	a.RetriesPerQuery.Add(float64(v.RetriesPerQuery))
	a.OutageLossRate.Add(float64(v.OutageLossRate))
	a.StaleViolations += v.StaleViolations
	a.Queries += v.Queries
	a.Answered += v.Answered
	a.PendingAtEnd += v.PendingAtEnd
}

// add folds one replication into the aggregate.
func (a *Aggregate) add(r *RunStats, numClients int) {
	a.addValues(r.Values(numClients))
	a.Runs = append(a.Runs, r)
}

// AggregateRuns folds completed replications, in replication (seed) order,
// into an Aggregate. It is the deterministic reduce step of the flattened
// sweep scheduler: however the runs were scheduled, folding them in index
// order yields identical summaries for every worker count.
func AggregateRuns(cfg Config, runs []*RunStats) *Aggregate {
	agg := &Aggregate{Algorithm: cfg.Algorithm}
	for _, r := range runs {
		agg.add(r, cfg.NumClients)
	}
	return agg
}

// AggregateValues rebuilds an Aggregate from checkpointed per-replication
// values, in the order they were recorded. Runs stays nil: raw per-run
// series and histograms are process-local and never checkpointed.
func AggregateValues(algorithm string, vals []RepValues) *Aggregate {
	agg := &Aggregate{Algorithm: algorithm}
	for _, v := range vals {
		agg.addValues(v)
	}
	return agg
}

// String renders the aggregate as one line.
func (a *Aggregate) String() string {
	return fmt.Sprintf(
		"%-7s reps=%d delay=%.3f±%.3fs p95=%.3fs hit=%.3f±%.3f uplink/ans=%.2f overhead=%.0fb/s energy/q=%.2fJ stale=%d",
		a.Algorithm, a.Reps,
		a.MeanDelay.Mean(), a.MeanDelay.CI95(), a.P95Delay.Mean(),
		a.HitRatio.Mean(), a.HitRatio.CI95(),
		a.UplinkPerAns.Mean(), a.OverheadBps.Mean(), a.EnergyPerQuery.Mean(),
		a.StaleViolations)
}

// RunRep builds and executes replication i of cfg (seed cfg.Seed+i) under
// ctx. Each replication has fully independent state and RNG streams, so it
// is the unit of work a scheduler can distribute in any order.
func RunRep(ctx context.Context, cfg Config, i int) (*RunStats, error) {
	return RunRepArena(ctx, cfg, i, nil)
}

// RunRepArena is RunRep drawing component state from — and, after a
// successful run, reclaiming it into — the given arena, so a worker running
// replications back to back reuses the O(universe) tables instead of
// reallocating them each time. A nil arena runs cold.
func RunRepArena(ctx context.Context, cfg Config, i int, arena *Arena) (*RunStats, error) {
	c := cfg
	c.Seed = cfg.Seed + uint64(i)
	sim, err := NewSimulationArena(c, arena)
	if err != nil {
		return nil, err
	}
	r, err := sim.ExecuteCtx(ctx)
	if err != nil {
		return nil, err
	}
	if arena != nil {
		arena.Reclaim(sim)
	}
	return r, nil
}

// RunReplications executes reps independent replications of cfg (seeds
// cfg.Seed, cfg.Seed+1, …) across a bounded worker pool and aggregates. A
// workers value ≤ 0 uses GOMAXPROCS. The simulation itself is sequential;
// all parallelism is across replications, each with fully independent state
// and RNG streams, so results are deterministic regardless of worker count.
func RunReplications(cfg Config, reps, workers int) (*Aggregate, error) {
	return RunReplicationsCtx(context.Background(), cfg, reps, workers)
}

// RunReplicationsCtx is RunReplications with fail-fast cancellation: the
// first failing replication cancels its siblings, and a cancelled ctx
// stops the pool and returns the context's error.
func RunReplicationsCtx(ctx context.Context, cfg Config, reps, workers int) (*Aggregate, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("core: reps %d", reps)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*RunStats, reps)
	errs := make([]error, reps)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := NewArena() // per-worker: replications on one worker recycle state
			for i := range work {
				if errs[i] = rctx.Err(); errs[i] != nil {
					continue // fail-fast: a sibling already failed
				}
				results[i], errs[i] = RunRepArena(rctx, cfg, i, arena)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	for i := 0; i < reps; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	// Report the first real failure in replication order; cancellation
	// fallout only surfaces when nothing better explains the stop.
	for pass := 0; pass < 2; pass++ {
		for i, err := range errs {
			if err == nil || (pass == 0 && isCancellation(err)) {
				continue
			}
			return nil, fmt.Errorf("core: replication %d: %w", i, err)
		}
	}
	return AggregateRuns(cfg, results), nil
}

// isCancellation reports whether err is context-cancellation fallout
// rather than a failure in its own right.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
