package core

import (
	"os"
	"testing"

	"repro/internal/des"
)

// TestCityProfilePoint mirrors cmd/wdcbench's 100k-client 16-cell city point
// so the capacity workload can be profiled with -cpuprofile. Opt-in via
// WDC_CITY_PROFILE=1: the point takes ~15s, too slow for the default suite.
func TestCityProfilePoint(t *testing.T) {
	if os.Getenv("WDC_CITY_PROFILE") == "" {
		t.Skip("set WDC_CITY_PROFILE=1 to run the 100k-client profile point")
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.NumClients = 100_000
	cfg.Workload.SleepRatio = 0.5
	cfg.Horizon = 2 * des.Minute
	cfg.Warmup = cfg.Horizon / 4
	cfg.Topology.NumCells = 16
	cfg.Topology.CheckPeriod = 5 * des.Second
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("events=%d events/s=%.0f", stats.Events, stats.EventsPerSec)
}
