package core

import (
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/mac"
	"repro/internal/obs"
)

// This file wires the fault-injection layer (internal/fault) into the
// simulation: base-station outage scheduling, client-side request retry
// timers, extended disconnections with recovery, and UIR-style catch-up.
// Everything here is inert when cfg.Fault is disabled — no events scheduled,
// no RNG draws, no behaviour deltas — which is what keeps fault-free runs
// byte-identical to the pinned golden fingerprints.

// catchupReq travels up the uplink: a reconnected client asking for the
// update history since its last consistent point (UIR-style recovery).
type catchupReq struct {
	since des.Time
}

// catchupMeta rides the downlink response frame carrying a catch-up report.
// The report is freshly allocated — never from the report arena — because
// its lifetime ends at one client, not at a broadcast fan-out, so it must
// not be recycled through the algorithm's pool.
type catchupMeta struct {
	report *ir.Report
}

// retryState is the retransmission timer for one outstanding request.
type retryState struct {
	ev    *des.Event
	tries int // consecutive timeouts so far
}

// startFaults arms the fault layer: the outage schedule per affected cell,
// the per-client retry maps, and the first disconnection of every client.
// Called from ExecuteCtx after all components started; a nil injector means
// the layer is fully disabled.
func (s *Simulation) startFaults() {
	in := s.injector
	if in == nil {
		return
	}
	fc := in.Config()
	if fc.OutagesEnabled() {
		horizon := des.Time(0).Add(s.cfg.Horizon)
		for _, cell := range s.cells {
			if fc.CellAffected(cell.id) {
				s.scheduleOutageCycle(cell.id, des.Time(0).Add(fc.OutageStart), horizon)
			}
		}
	}
	if fc.RetryEnabled() {
		for _, c := range s.clients {
			c.retries = make(map[int]*retryState)
		}
	}
	if fc.DisconnectsEnabled() {
		for _, c := range s.clients {
			c.discFn = c.disconnect
			c.reconnFn = c.reconnect
			c.catchupFn = c.onCatchupTimeout
			s.sch.After(in.DisconnectGap(c.fsrc), "fault.disconnect", c.discFn)
		}
	}
}

// scheduleOutageCycle arms one outage's down edge and chains the next cycle.
// The edges only count and trace: whether the base station is dark at any
// instant is decided by the pure schedule arithmetic (fault.Config.InOutage),
// so event tie-break order can never disagree with the gating.
func (s *Simulation) scheduleOutageCycle(cellID int, start, horizon des.Time) {
	if start > horizon {
		return
	}
	fc := s.injector.Config()
	s.sch.At(start, "fault.outage", func() {
		now := s.sch.Now()
		if now >= s.warmupAt {
			s.outages++
		}
		if tr := s.tr; tr != nil {
			tr.Outage(obs.OutageEvent{At: now, Cell: cellID, Down: true})
		}
		if up := now.Add(fc.OutageLen); up <= horizon {
			s.sch.At(up, "fault.outage", func() {
				if tr := s.tr; tr != nil {
					tr.Outage(obs.OutageEvent{At: s.sch.Now(), Cell: cellID, Down: false})
				}
			})
		}
		if fc.OutagePeriod > 0 {
			s.scheduleOutageCycle(cellID, start.Add(fc.OutagePeriod), horizon)
		}
	})
}

// noteReportFault accounts and traces one injected report fault.
func (s *Simulation) noteReportFault(cellID int, seq uint64, mode string) {
	now := s.sch.Now()
	if now >= s.warmupAt {
		switch mode {
		case obs.ReportFaultSuppressed:
			s.reportsSuppressed++
		case obs.ReportFaultLost:
			s.reportsFaultLost++
		case obs.ReportFaultTruncated:
			s.reportsFaultTrunc++
		}
	}
	if tr := s.tr; tr != nil {
		tr.ReportFault(obs.ReportFaultEvent{At: now, Cell: cellID, Seq: seq, Mode: mode})
	}
}

// --- client: connectivity ---

// online reports whether the client participates in the protocol at all:
// awake (not dozing) and connected (not in an extended disconnection). Roster
// membership maintains exactly this predicate.
func (c *client) online() bool { return c.awake && c.connected }

// disconnect begins an extended disconnection: the radio goes fully dark,
// beyond doze. All in-flight client state is abandoned — retry timers, the
// outstanding-request set, any catch-up exchange — but pending queries
// survive: they are answered after recovery, so their delay statistics carry
// the cost of the disconnection.
func (c *client) disconnect() {
	now := c.sim.sch.Now()
	if c.online() {
		c.cell.rosterRemove(c.id)
	}
	c.connected = false
	c.recovering = false // a disconnect during recovery restarts it
	if c.queryEv != nil {
		c.sim.sch.Cancel(c.queryEv)
		c.queryEv = nil
	}
	c.clearAllRetries()
	c.cancelCatchup()
	clear(c.outstanding)
	for i := range c.pending {
		c.pending[i].requested = false
	}
	if now >= c.sim.warmupAt {
		c.sim.disconnects++
	}
	if tr := c.sim.tr; tr != nil {
		tr.Disconnect(obs.DisconnectEvent{At: now, Client: c.id, Down: true})
	}
	c.sim.sch.After(c.sim.injector.DisconnectLen(c.fsrc), "fault.reconnect", c.reconnFn)
}

// reconnect ends a disconnection and starts recovery under the configured
// policy. The client counts as "recovering" until its cache is provably
// consistent again: immediately for flush, at the next validating report for
// the window policy, or when the catch-up exchange completes.
func (c *client) reconnect() {
	now := c.sim.sch.Now()
	in := c.sim.injector
	c.connected = true
	c.recovering = true
	c.reconnectedAt = now
	if tr := c.sim.tr; tr != nil {
		tr.Disconnect(obs.DisconnectEvent{At: now, Client: c.id, Down: false})
	}
	if c.awake {
		c.cell.rosterAdd(c.id)
		c.scheduleQuery()
	}
	switch in.Config().Recovery {
	case fault.RecoverFlush:
		c.cache.InvalidateAll()
		c.istate.LastConsistent = now
		c.completeRecovery(obs.RecoveryViaFlush)
		if c.awake {
			c.redrivePending()
		}
	case fault.RecoverCatchup:
		if c.awake {
			c.sendCatchup()
		}
		// Asleep: wake() starts the catch-up once the radio is back on.
	}
	// RecoverWindow: passive — the next validating report completes recovery
	// via the coverage-window rule (or forces the safe full-report drop).
	c.sim.sch.After(in.DisconnectGap(c.fsrc), "fault.disconnect", c.discFn)
}

// completeRecovery marks the client consistent again after a disconnection.
func (c *client) completeRecovery(via string) {
	if !c.recovering {
		return
	}
	c.recovering = false
	c.cancelCatchup()
	now := c.sim.sch.Now()
	delay := now.Sub(c.reconnectedAt).Seconds()
	if c.reconnectedAt >= c.sim.warmupAt {
		c.sim.recoveries++
		c.sim.recoveryDelay.Add(delay)
	}
	if tr := c.sim.tr; tr != nil {
		tr.Recovery(obs.RecoveryEvent{At: now, Client: c.id,
			Policy: c.sim.cfg.Fault.Recovery.String(), Via: via, DelaySec: delay})
	}
}

// redrivePending is drainPending without a report: after a flush recovery the
// (empty) cache is consistent as of LastConsistent, so misses can refetch
// immediately instead of waiting for the next report.
func (c *client) redrivePending() {
	now := c.sim.sch.Now()
	kept := c.pending[:0]
	for _, q := range c.pending {
		if e, ok := c.cache.Get(q.item); ok {
			c.answer(q, now, true)
			if c.sim.cfg.CheckConsistency {
				c.checkConsistency(e, c.istate.LastConsistent)
			}
			continue
		}
		q.requested = true
		if !c.outstanding[q.item] {
			c.outstanding[q.item] = true
			c.sendRequest(q.item)
		}
		kept = append(kept, q)
	}
	c.pending = kept
	c.maybeDozeAfterDrain()
}

// --- client: request retry layer ---

// sendRequest puts one uplink request on the air and, when the retry layer
// is enabled, arms (or re-arms) its retransmission timer.
func (c *client) sendRequest(item int) {
	c.cell.uplink.Send(c.id, reqMeta{item: item})
	if c.retries != nil {
		c.armRetry(item)
	}
}

func (c *client) armRetry(item int) {
	st := c.retries[item]
	if st == nil {
		st = &retryState{}
		c.retries[item] = st
	}
	if st.ev != nil {
		c.sim.sch.Cancel(st.ev)
	}
	st.ev = c.sim.sch.After(c.sim.injector.RetryDelay(st.tries, c.fsrc), "fault.retry",
		func() { c.onRetryTimeout(item) })
}

// onRetryTimeout fires when a request went unanswered for the backoff
// window: re-ask, or give up past the retry budget and fall back to waiting
// for the next validating report to re-drive the query.
func (c *client) onRetryTimeout(item int) {
	st := c.retries[item]
	if st == nil {
		return
	}
	st.ev = nil
	if !c.outstanding[item] {
		delete(c.retries, item) // stale timer: the request was already resolved
		return
	}
	if !c.online() {
		// The radio went dark (doze) with the request still unanswered, so
		// nothing will re-arm this timer. Abandon the request outright —
		// leaving it in outstanding would block every future query for the
		// item from re-asking. The next validating report re-drives it.
		delete(c.retries, item)
		delete(c.outstanding, item)
		for i := range c.pending {
			if c.pending[i].item == item {
				c.pending[i].requested = false
			}
		}
		return
	}
	now := c.sim.sch.Now()
	st.tries++
	gaveUp := st.tries > c.sim.cfg.Fault.RetryMax
	if now >= c.sim.warmupAt {
		if gaveUp {
			c.sim.queryGiveups++
		} else {
			c.sim.queryRetries++
		}
	}
	if tr := c.sim.tr; tr != nil {
		tr.QueryRetry(obs.QueryRetryEvent{At: now, Client: c.id, Item: item,
			Attempt: st.tries, GaveUp: gaveUp})
	}
	if gaveUp {
		delete(c.retries, item)
		delete(c.outstanding, item)
		for i := range c.pending {
			if c.pending[i].item == item {
				c.pending[i].requested = false
			}
		}
		return
	}
	c.cell.uplink.Send(c.id, reqMeta{item: item})
	c.armRetry(item)
}

// clearRetry retires the timer for one answered (or abandoned) request.
// Safe on a nil retries map.
func (c *client) clearRetry(item int) {
	if st := c.retries[item]; st != nil {
		if st.ev != nil {
			c.sim.sch.Cancel(st.ev)
		}
		delete(c.retries, item)
	}
}

// clearAllRetries cancels every retransmission timer (disconnect, handoff).
func (c *client) clearAllRetries() {
	for item, st := range c.retries {
		if st.ev != nil {
			c.sim.sch.Cancel(st.ev)
			st.ev = nil
		}
		delete(c.retries, item)
	}
}

// --- client: UIR-style catch-up ---

// sendCatchup asks the serving cell for the update history since the
// client's last consistent point. The exchange is guarded by the same retry
// timer machinery as data requests when the timeout layer is enabled.
func (c *client) sendCatchup() {
	c.catchupOut = true
	c.cell.uplink.Send(c.id, catchupReq{since: c.istate.LastConsistent})
	if in := c.sim.injector; in.Config().RetryEnabled() {
		c.catchupEv = c.sim.sch.After(in.RetryDelay(c.catchupTries, c.fsrc),
			"fault.catchup", c.catchupFn)
	}
}

// onCatchupTimeout fires when a catch-up request went unanswered.
func (c *client) onCatchupTimeout() {
	c.catchupEv = nil
	if !c.recovering || !c.catchupOut {
		return
	}
	c.catchupOut = false
	c.retryCatchup()
}

// retryCatchup re-sends a failed catch-up exchange, bounded by the retry
// budget; past it the client stays in the window-policy fallback (the next
// validating report still completes recovery safely).
func (c *client) retryCatchup() {
	c.catchupTries++
	if c.catchupTries > c.sim.cfg.Fault.RetryMax || !c.online() {
		return
	}
	c.sendCatchup()
}

// onCatchup handles the unicast catch-up report.
func (c *client) onCatchup(r *ir.Report, ok bool) {
	if c.catchupEv != nil {
		c.sim.sch.Cancel(c.catchupEv)
		c.catchupEv = nil
	}
	c.catchupOut = false
	if !c.recovering {
		return // a report already recovered us while the catch-up was in flight
	}
	if !ok {
		c.retryCatchup()
		return
	}
	c.reportsDecoded++
	if c.istate.Process(r, c.cache, c.sim.oracle, c.src) {
		c.completeRecovery(obs.RecoveryViaCatchup)
		c.drainPending(r)
	} else {
		c.retryCatchup()
	}
}

// cancelCatchup abandons any catch-up exchange in flight.
func (c *client) cancelCatchup() {
	if c.catchupEv != nil {
		c.sim.sch.Cancel(c.catchupEv)
		c.catchupEv = nil
	}
	c.catchupOut = false
	c.catchupTries = 0
}

// --- server: catch-up ---

// onCatchupRequest serves a reconnected client the update history since its
// last consistent point, as a unicast full report on a response-class frame.
func (s *server) onCatchupRequest(src int, since des.Time, now des.Time) {
	r := &ir.Report{Kind: ir.KindFull, At: now, PrevAt: now, WindowStart: now}
	if now.Sub(since) <= s.sim.cfg.DB.Retention {
		r.WindowStart = since
		r.Items = s.sim.db.UpdatedSince(since, nil)
	}
	// else: the gap outlived the database's update history; the empty
	// now-anchored full report forces the client's safe drop-everything path.
	s.irBitsSent += uint64(r.SizeBits())
	s.cell.traceReport(r, obs.CarrierCatchup, 0)
	f := s.cell.downlink.AcquireFrame()
	f.Kind = mac.KindResponse
	f.Dest = src
	f.Bits = r.SizeBits() + s.sim.cfg.ResponseOverheadBits
	f.MCS = mac.AutoMCS
	f.Meta = &catchupMeta{report: r}
	s.cell.downlink.Enqueue(f)
}
