package core

import (
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/mac"
	"repro/internal/obs"
)

// This file wires the fault-injection layer (internal/fault) into the
// simulation: base-station outage scheduling, client-side request retry
// timers, extended disconnections with recovery, and UIR-style catch-up.
// Everything here is inert when cfg.Fault is disabled — no events scheduled,
// no RNG draws, no behaviour deltas — which is what keeps fault-free runs
// byte-identical to the pinned golden fingerprints. Per-client fault state
// lives in the clientTable's cold side table (see table.go), sized only when
// the retry or disconnection layer is armed.

// catchupReq travels up the uplink: a reconnected client asking for the
// update history since its last consistent point (UIR-style recovery).
type catchupReq struct {
	since des.Time
}

// catchupMeta rides the downlink response frame carrying a catch-up report.
// The report is freshly allocated — never from the report arena — because
// its lifetime ends at one client, not at a broadcast fan-out, so it must
// not be recycled through the algorithm's pool.
type catchupMeta struct {
	report *ir.Report
}

// startFaults arms the fault layer: the outage schedule per affected cell,
// the retry layer, and the first disconnection of every client. Called from
// ExecuteCtx after all components started; a nil injector means the layer is
// fully disabled.
func (s *Simulation) startFaults() {
	in := s.injector
	if in == nil {
		return
	}
	fc := in.Config()
	if fc.OutagesEnabled() {
		horizon := des.Time(0).Add(s.cfg.Horizon)
		for _, cell := range s.cells {
			if fc.CellAffected(cell.id) {
				s.scheduleOutageCycle(cell.id, des.Time(0).Add(fc.OutageStart), horizon)
			}
		}
	}
	if fc.RetryEnabled() {
		s.retryOn = true
	}
	if fc.DisconnectsEnabled() {
		for i := 0; i < s.ct.n; i++ {
			c := s.client(i)
			cd := &s.ct.cold[i]
			cd.discFn = c.disconnect
			cd.reconnFn = c.reconnect
			cd.catchupFn = c.onCatchupTimeout
			cd.connEv = c.sch().After(in.DisconnectGap(&cd.fsrc), "fault.disconnect", cd.discFn)
		}
	}
}

// scheduleOutageCycle arms one outage's down edge and chains the next cycle.
// The edges only count and trace: whether the base station is dark at any
// instant is decided by the pure schedule arithmetic (fault.Config.InOutage),
// so event tie-break order can never disagree with the gating.
func (s *Simulation) scheduleOutageCycle(cellID int, start, horizon des.Time) {
	if start > horizon {
		return
	}
	fc := s.injector.Config()
	s.sch.At(start, "fault.outage", func() {
		now := s.sch.Now()
		if now >= s.warmupAt {
			s.outages++
		}
		if tr := s.tr; tr != nil {
			tr.Outage(obs.OutageEvent{At: now, Cell: cellID, Down: true})
		}
		if up := now.Add(fc.OutageLen); up <= horizon {
			s.sch.At(up, "fault.outage", func() {
				if tr := s.tr; tr != nil {
					tr.Outage(obs.OutageEvent{At: s.sch.Now(), Cell: cellID, Down: false})
				}
			})
		}
		if fc.OutagePeriod > 0 {
			s.scheduleOutageCycle(cellID, start.Add(fc.OutagePeriod), horizon)
		}
	})
}

// noteReportFault accounts and traces one injected report fault on the cell's
// own lane (clock and counters both lane-local).
func (cell *Cell) noteReportFault(seq uint64, mode string) {
	s := cell.sim
	now := cell.sch.Now()
	if now >= s.warmupAt {
		switch mode {
		case obs.ReportFaultSuppressed:
			cell.ls.reportsSuppressed++
		case obs.ReportFaultLost:
			cell.ls.reportsFaultLost++
		case obs.ReportFaultTruncated:
			cell.ls.reportsFaultTrunc++
		}
	}
	if tr := s.tr; tr != nil {
		tr.ReportFault(obs.ReportFaultEvent{At: now, Cell: cell.id, Seq: seq, Mode: mode})
	}
}

// --- client: connectivity ---

// disconnect begins an extended disconnection: the radio goes fully dark,
// beyond doze. All in-flight client state is abandoned — retry timers, the
// outstanding-request set, any catch-up exchange — but pending queries
// survive: they are answered after recovery, so their delay statistics carry
// the cost of the disconnection.
func (c client) disconnect() {
	t := &c.sim.ct
	now := c.sch().Now()
	c.cold().connEv = nil // this timer just fired
	if c.online() {
		c.cell().roster.remove(c.id)
	}
	c.clrFlag(cfConnected)
	c.clrFlag(cfRecovering) // a disconnect during recovery restarts it
	if ev := t.queryEv[c.id]; ev != nil {
		c.sch().Cancel(ev)
		t.queryEv[c.id] = nil
	}
	c.clearAllRetries()
	c.cancelCatchup()
	t.outstanding[c.id] = t.outstanding[c.id][:0]
	for i := range t.pending[c.id] {
		t.pending[c.id][i].requested = false
	}
	if now >= c.sim.warmupAt {
		c.ls().disconnects++
	}
	if tr := c.sim.tr; tr != nil {
		tr.Disconnect(obs.DisconnectEvent{At: now, Client: c.id, Down: true})
	}
	cd := c.cold()
	cd.connEv = c.sch().After(c.sim.injector.DisconnectLen(&cd.fsrc), "fault.reconnect", cd.reconnFn)
}

// reconnect ends a disconnection and starts recovery under the configured
// policy. The client counts as "recovering" until its cache is provably
// consistent again: immediately for flush, at the next validating report for
// the window policy, or when the catch-up exchange completes.
func (c client) reconnect() {
	now := c.sch().Now()
	in := c.sim.injector
	c.cold().connEv = nil // this timer just fired
	c.setFlag(cfConnected)
	c.setFlag(cfRecovering)
	c.cold().reconnectedAt = now
	if tr := c.sim.tr; tr != nil {
		tr.Disconnect(obs.DisconnectEvent{At: now, Client: c.id, Down: false})
	}
	if c.flag(cfAwake) {
		c.cell().roster.add(c.id)
		c.scheduleQuery()
	}
	switch in.Config().Recovery {
	case fault.RecoverFlush:
		c.cache().InvalidateAll()
		c.istate().LastConsistent = now
		c.completeRecovery(obs.RecoveryViaFlush)
		if c.flag(cfAwake) {
			c.redrivePending()
		}
	case fault.RecoverCatchup:
		if c.flag(cfAwake) {
			c.sendCatchup()
		}
		// Asleep: wake() starts the catch-up once the radio is back on.
	}
	// RecoverWindow: passive — the next validating report completes recovery
	// via the coverage-window rule (or forces the safe full-report drop).
	c.cold().connEv = c.sch().After(in.DisconnectGap(&c.cold().fsrc), "fault.disconnect", c.cold().discFn)
}

// completeRecovery marks the client consistent again after a disconnection.
func (c client) completeRecovery(via string) {
	if !c.flag(cfRecovering) {
		return
	}
	c.clrFlag(cfRecovering)
	c.cancelCatchup()
	now := c.sch().Now()
	reconnectedAt := c.cold().reconnectedAt
	delay := now.Sub(reconnectedAt).Seconds()
	if reconnectedAt >= c.sim.warmupAt {
		ls := c.ls()
		ls.recoveries++
		ls.recoveryDelay.Add(delay)
	}
	if tr := c.sim.tr; tr != nil {
		tr.Recovery(obs.RecoveryEvent{At: now, Client: c.id,
			Policy: c.sim.cfg.Fault.Recovery.String(), Via: via, DelaySec: delay})
	}
}

// redrivePending is drainPending without a report: after a flush recovery the
// (empty) cache is consistent as of LastConsistent, so misses can refetch
// immediately instead of waiting for the next report.
func (c client) redrivePending() {
	t := &c.sim.ct
	now := c.sch().Now()
	kept := t.pending[c.id][:0]
	for _, q := range t.pending[c.id] {
		if e, ok := c.cache().Get(q.item); ok {
			c.answer(q, now, true)
			if c.sim.cfg.CheckConsistency {
				c.checkConsistency(e, c.istate().LastConsistent)
			}
			continue
		}
		q.requested = true
		if !t.outstandingHas(c.id, q.item) {
			t.outstandingAdd(c.id, q.item)
			c.sendRequest(q.item)
		}
		kept = append(kept, q)
	}
	t.pending[c.id] = kept
	c.maybeDozeAfterDrain()
}

// --- client: request retry layer ---

// sendRequest puts one uplink request on the air and, when the retry layer
// is enabled, arms (or re-arms) its retransmission timer.
func (c client) sendRequest(item int) {
	c.cell().uplink.Send(c.id, reqMeta{item: item})
	if c.sim.retryOn {
		c.armRetry(item)
	}
}

// retryIdx finds item's slot in the client's retry list, or -1.
func (c client) retryIdx(item int) int {
	rs := c.cold().retries
	for k := range rs {
		if rs[k].item == item {
			return k
		}
	}
	return -1
}

// dropRetry removes slot k from the retry list (order-free swap-remove).
func (c client) dropRetry(k int) {
	cd := c.cold()
	last := len(cd.retries) - 1
	cd.retries[k] = cd.retries[last]
	cd.retries[last] = retryEntry{}
	cd.retries = cd.retries[:last]
}

func (c client) armRetry(item int) {
	cd := c.cold()
	k := c.retryIdx(item)
	if k < 0 {
		cd.retries = append(cd.retries, retryEntry{item: item})
		k = len(cd.retries) - 1
	}
	if ev := cd.retries[k].ev; ev != nil {
		c.sch().Cancel(ev)
	}
	cd.retries[k].ev = c.sch().After(c.sim.injector.RetryDelay(cd.retries[k].tries, &cd.fsrc),
		"fault.retry", func() { c.onRetryTimeout(item) })
}

// onRetryTimeout fires when a request went unanswered for the backoff
// window: re-ask, or give up past the retry budget and fall back to waiting
// for the next validating report to re-drive the query.
func (c client) onRetryTimeout(item int) {
	t := &c.sim.ct
	cd := c.cold()
	k := c.retryIdx(item)
	if k < 0 {
		return
	}
	cd.retries[k].ev = nil
	if !t.outstandingHas(c.id, item) {
		c.dropRetry(k) // stale timer: the request was already resolved
		return
	}
	if !c.online() {
		// The radio went dark (doze) with the request still unanswered, so
		// nothing will re-arm this timer. Abandon the request outright —
		// leaving it in outstanding would block every future query for the
		// item from re-asking. The next validating report re-drives it.
		c.dropRetry(k)
		t.outstandingRemove(c.id, item)
		for i := range t.pending[c.id] {
			if t.pending[c.id][i].item == item {
				t.pending[c.id][i].requested = false
			}
		}
		return
	}
	now := c.sch().Now()
	cd.retries[k].tries++
	gaveUp := cd.retries[k].tries > c.sim.cfg.Fault.RetryMax
	if now >= c.sim.warmupAt {
		if gaveUp {
			c.ls().queryGiveups++
		} else {
			c.ls().queryRetries++
		}
	}
	if tr := c.sim.tr; tr != nil {
		tr.QueryRetry(obs.QueryRetryEvent{At: now, Client: c.id, Item: item,
			Attempt: cd.retries[k].tries, GaveUp: gaveUp})
	}
	if gaveUp {
		c.dropRetry(k)
		t.outstandingRemove(c.id, item)
		for i := range t.pending[c.id] {
			if t.pending[c.id][i].item == item {
				t.pending[c.id][i].requested = false
			}
		}
		return
	}
	c.cell().uplink.Send(c.id, reqMeta{item: item})
	c.armRetry(item)
}

// clearRetry retires the timer for one answered (or abandoned) request.
// Safe when the retry layer is disabled.
func (c client) clearRetry(item int) {
	if !c.sim.retryOn {
		return
	}
	if k := c.retryIdx(item); k >= 0 {
		if ev := c.cold().retries[k].ev; ev != nil {
			c.sch().Cancel(ev)
		}
		c.dropRetry(k)
	}
}

// clearAllRetries cancels every retransmission timer (disconnect, handoff).
func (c client) clearAllRetries() {
	if !c.sim.retryOn {
		return
	}
	cd := c.cold()
	for k := range cd.retries {
		if ev := cd.retries[k].ev; ev != nil {
			c.sch().Cancel(ev)
		}
		cd.retries[k] = retryEntry{}
	}
	cd.retries = cd.retries[:0]
}

// --- client: UIR-style catch-up ---

// catchupEv reports the in-flight catch-up timer, nil when the fault layer
// holds no per-client state at all.
func (c client) catchupEv() *des.Event {
	if len(c.sim.ct.cold) == 0 {
		return nil
	}
	return c.cold().catchupEv
}

// sendCatchup asks the serving cell for the update history since the
// client's last consistent point. The exchange is guarded by the same retry
// timer machinery as data requests when the timeout layer is enabled.
func (c client) sendCatchup() {
	cd := c.cold()
	c.setFlag(cfCatchupOut)
	c.cell().uplink.Send(c.id, catchupReq{since: c.istate().LastConsistent})
	if in := c.sim.injector; in.Config().RetryEnabled() {
		cd.catchupEv = c.sch().After(in.RetryDelay(cd.catchupTries, &cd.fsrc),
			"fault.catchup", cd.catchupFn)
	}
}

// onCatchupTimeout fires when a catch-up request went unanswered.
func (c client) onCatchupTimeout() {
	c.cold().catchupEv = nil
	if !c.flag(cfRecovering) || !c.flag(cfCatchupOut) {
		return
	}
	c.clrFlag(cfCatchupOut)
	c.retryCatchup()
}

// retryCatchup re-sends a failed catch-up exchange, bounded by the retry
// budget; past it the client stays in the window-policy fallback (the next
// validating report still completes recovery safely).
func (c client) retryCatchup() {
	cd := c.cold()
	cd.catchupTries++
	if cd.catchupTries > c.sim.cfg.Fault.RetryMax || !c.online() {
		return
	}
	c.sendCatchup()
}

// onCatchup handles the unicast catch-up report.
func (c client) onCatchup(r *ir.Report, ok bool) {
	cd := c.cold()
	if cd.catchupEv != nil {
		c.sch().Cancel(cd.catchupEv)
		cd.catchupEv = nil
	}
	c.clrFlag(cfCatchupOut)
	if !c.flag(cfRecovering) {
		return // a report already recovered us while the catch-up was in flight
	}
	if !ok {
		c.retryCatchup()
		return
	}
	c.stats().reportsDecoded++
	c.sim.rollupReport(c.sim.ct.cell[c.id])
	if c.istate().Process(r, c.cache(), c.sim.oracle, c.src()) {
		c.completeRecovery(obs.RecoveryViaCatchup)
		c.drainPending(r)
	} else {
		c.retryCatchup()
	}
}

// cancelCatchup abandons any catch-up exchange in flight. Safe when the
// fault layer holds no per-client state (nothing to cancel).
func (c client) cancelCatchup() {
	if len(c.sim.ct.cold) == 0 {
		return
	}
	cd := c.cold()
	if cd.catchupEv != nil {
		c.sch().Cancel(cd.catchupEv)
		cd.catchupEv = nil
	}
	c.clrFlag(cfCatchupOut)
	cd.catchupTries = 0
}

// --- server: catch-up ---

// onCatchupRequest serves a reconnected client the update history since its
// last consistent point, as a unicast full report on a response-class frame.
// The report construction (retention clamp, drop-everything fallback) lives
// in the backend's CatchupProvider facet, shared with wdcserved.
func (s *server) onCatchupRequest(src int, since des.Time, now des.Time) {
	r := s.catchup.CatchupSince(since, now)
	s.irBitsSent += uint64(r.SizeBits())
	s.cell.traceReport(r, obs.CarrierCatchup, 0)
	f := s.cell.downlink.AcquireFrame()
	f.Kind = mac.KindResponse
	f.Dest = src
	f.Bits = r.SizeBits() + s.sim.cfg.ResponseOverheadBits
	f.MCS = mac.AutoMCS
	f.Meta = &catchupMeta{report: r}
	s.cell.downlink.Enqueue(f)
}
