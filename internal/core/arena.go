package core

import (
	"repro/internal/cache"
	"repro/internal/db"
	"repro/internal/radio"
)

// Arena recycles the allocation-heavy components of a Simulation across the
// replications a worker runs sequentially: the O(universe) cache tables of
// every client, the database's item and dedup tables, and the channel's
// per-link buffers. Each component is handed back through an explicit Reset
// that restores the freshly-constructed state, so a recycled simulation is
// bit-identical to a cold one — the arena changes where the memory comes
// from, never what runs.
//
// An Arena is not safe for concurrent use: worker pools create one per
// worker goroutine.
type Arena struct {
	caches   []*cache.Cache
	db       *db.DB
	channels []*radio.Channel
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// takeCache pops a pooled cache of exactly this shape, or returns nil when
// none is available. The caller must Reset the cache before use.
func (a *Arena) takeCache(capacity, universe int, policy cache.Policy) *cache.Cache {
	for i, c := range a.caches {
		if c.Capacity() == capacity && c.Universe() == universe && c.Policy() == policy {
			last := len(a.caches) - 1
			a.caches[i] = a.caches[last]
			a.caches[last] = nil
			a.caches = a.caches[:last]
			return c
		}
	}
	return nil
}

// takeDB pops the pooled database, or nil. The caller must Reset it.
func (a *Arena) takeDB() *db.DB {
	d := a.db
	a.db = nil
	return d
}

// takeChannel pops one pooled channel, or nil. The caller must Reset it.
func (a *Arena) takeChannel() *radio.Channel {
	n := len(a.channels)
	if n == 0 {
		return nil
	}
	c := a.channels[n-1]
	a.channels[n-1] = nil
	a.channels = a.channels[:n-1]
	return c
}

// Reclaim stores sim's recyclable components for the worker's next
// replication. Call it only after the run's statistics have been collected;
// the simulation must not be executed or inspected afterwards. Components
// left over from a previous shape (a cell with a different client count or
// cache size) are dropped so the pool never grows past one simulation's
// worth of state.
func (a *Arena) Reclaim(sim *Simulation) {
	a.caches = a.caches[:0]
	for _, c := range sim.clients {
		a.caches = append(a.caches, c.cache)
	}
	a.db = sim.db
	a.channels = a.channels[:0]
	for _, cell := range sim.cells {
		a.channels = append(a.channels, cell.channel)
	}
}
