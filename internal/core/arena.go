package core

import (
	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/radio"
)

// Arena recycles the allocation-heavy components of a Simulation across the
// replications a worker runs sequentially: the whole struct-of-arrays client
// table (caches, samplers, meters, invalidation state — every column), the
// database's item and dedup tables, and the channels' per-link buffers. Each
// component is handed back through an explicit reset that restores the
// freshly-constructed state, so a recycled simulation is bit-identical to a
// cold one — the arena changes where the memory comes from, never what runs.
//
// An Arena is not safe for concurrent use: worker pools create one per
// worker goroutine.
type Arena struct {
	table    clientTable
	db       *db.DB
	channels []*radio.Channel
	scheds   []*des.Scheduler // reset lane schedulers for parallel runs
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// takeTable moves the pooled client table out of the arena (possibly the
// empty zero table). clientTable.init decides shape fit and resets columns.
func (a *Arena) takeTable() clientTable {
	t := a.table
	a.table = clientTable{}
	return t
}

// takeDB pops the pooled database, or nil. The caller must Reset it.
func (a *Arena) takeDB() *db.DB {
	d := a.db
	a.db = nil
	return d
}

// takeChannel pops one pooled channel, or nil. The caller must Reset it.
func (a *Arena) takeChannel() *radio.Channel {
	n := len(a.channels)
	if n == 0 {
		return nil
	}
	c := a.channels[n-1]
	a.channels[n-1] = nil
	a.channels = a.channels[:n-1]
	return c
}

// takeSched pops one pooled (already reset) lane scheduler, or nil.
func (a *Arena) takeSched() *des.Scheduler {
	n := len(a.scheds)
	if n == 0 {
		return nil
	}
	s := a.scheds[n-1]
	a.scheds[n-1] = nil
	a.scheds = a.scheds[:n-1]
	return s
}

// Reclaim stores sim's recyclable components for the worker's next
// replication. Call it only after the run's statistics have been collected;
// the simulation must not be executed or inspected afterwards. Components
// left over from a previous shape (a different client count or cache size)
// are dropped at the next construction so the pool never grows past one
// simulation's worth of state.
func (a *Arena) Reclaim(sim *Simulation) {
	a.table = sim.ct
	sim.ct = clientTable{}
	a.db = sim.db
	a.channels = a.channels[:0]
	a.scheds = a.scheds[:0]
	for _, cell := range sim.cells {
		a.channels = append(a.channels, cell.channel)
		if cell.sch != sim.sch {
			cell.sch.Reset()
			a.scheds = append(a.scheds, cell.sch)
		}
	}
}
