package ir

import (
	"testing"

	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/radio"
)

// fakeEnv is a scripted ServerEnv for unit-testing the algorithms without
// the full simulator.
type fakeEnv struct {
	sch     *des.Scheduler
	history []db.Update
	sent    []sentReport
	snrs    []float64
	load    float64
	amc     *radio.AMC
}

type sentReport struct {
	r   *Report
	mcs int
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		sch:  des.NewScheduler(),
		amc:  radio.DefaultAMC(),
		snrs: []float64{30, 30, 30},
	}
}

func (e *fakeEnv) Now() des.Time { return e.sch.Now() }

func (e *fakeEnv) update(id int, at des.Duration) {
	e.history = append(e.history, db.Update{ID: id, At: des.Time(0).Add(at)})
}

func (e *fakeEnv) UpdatedSince(since des.Time, buf []db.Update) []db.Update {
	seen := map[int]bool{}
	now := e.sch.Now()
	for i := len(e.history) - 1; i >= 0; i-- {
		u := e.history[i]
		if u.At <= since || u.At > now || seen[u.ID] {
			continue
		}
		seen[u.ID] = true
		buf = append(buf, u)
	}
	return buf
}

func (e *fakeEnv) Broadcast(r *Report, mcs int) {
	if err := r.Validate(); err != nil {
		panic("fakeEnv: invalid report broadcast: " + err.Error())
	}
	e.sent = append(e.sent, sentReport{r, mcs})
}

func (e *fakeEnv) NewTicker(period des.Duration, name string, fn func(des.Time)) *des.Ticker {
	return des.NewTicker(e.sch, period, name, fn)
}

func (e *fakeEnv) AwakeSNRs() []float64 { return e.snrs }
func (e *fakeEnv) AMC() *radio.AMC      { return e.amc }
func (e *fakeEnv) DownlinkLoad() float64 {
	return e.load
}

func (e *fakeEnv) run(d des.Duration) { e.sch.Run(des.Time(0).Add(d)) }

func mustNew(t *testing.T, name string, p Params) ServerAlgo {
	t.Helper()
	a, err := New(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRejects(t *testing.T) {
	if _, err := New("bogus", DefaultParams()); err == nil {
		t.Error("unknown name accepted")
	}
	p := DefaultParams()
	p.Interval = 0
	if _, err := New("ts", p); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*Params){
		func(p *Params) { p.Interval = 0 },
		func(p *Params) { p.WindowReports = 0 },
		func(p *Params) { p.MiniPerInterval = 0 },
		func(p *Params) { p.SigBits = 0 },
		func(p *Params) { p.SigFalsePositive = 1 },
		func(p *Params) { p.Coverage = 0 },
		func(p *Params) { p.Coverage = 1.5 },
		func(p *Params) { p.IntervalMax = p.IntervalMin - 1 },
		func(p *Params) { p.LoadHigh = p.LoadLow },
		func(p *Params) { p.PiggyMaxItems = 0 },
		func(p *Params) { p.PiggyMinGap = -1 },
	}
	for i, f := range mut {
		p := DefaultParams()
		f(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAllNamesConstruct(t *testing.T) {
	for _, name := range Names {
		a := mustNew(t, name, DefaultParams())
		if a.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
	}
}

func TestTSReports(t *testing.T) {
	env := newFakeEnv()
	p := DefaultParams()
	p.Interval = 10 * des.Second
	p.WindowReports = 2
	a := mustNew(t, "ts", p)
	a.Start(env)
	env.update(5, 3*des.Second)
	env.update(6, 12*des.Second)
	env.update(5, 14*des.Second)
	env.run(35 * des.Second) // reports at 10, 20, 30

	if len(env.sent) != 3 {
		t.Fatalf("sent %d reports", len(env.sent))
	}
	for _, s := range env.sent {
		if s.mcs != robustMCS {
			t.Fatal("classic scheme must broadcast robust")
		}
		if s.r.Kind != KindFull {
			t.Fatal("TS sends only full reports")
		}
	}
	// Report 1 (t=10): fewer than K reports so far → window from 0.
	r1 := env.sent[0].r
	if r1.WindowStart != 0 || len(r1.Items) != 1 || r1.Items[0].ID != 5 {
		t.Fatalf("r1 %+v", r1)
	}
	// Report 2 (t=20): still covers from 0 (only 1 prior report).
	r2 := env.sent[1].r
	if r2.WindowStart != 0 {
		t.Fatalf("r2 window %v", r2.WindowStart)
	}
	// Items deduped to latest: 5@14, 6@12, sorted by id.
	if len(r2.Items) != 2 || r2.Items[0].ID != 5 ||
		r2.Items[0].At != des.Time(0).Add(14*des.Second) || r2.Items[1].ID != 6 {
		t.Fatalf("r2 items %+v", r2.Items)
	}
	// Report 3 (t=30): window = 2 reports back = t=10.
	r3 := env.sent[2].r
	if r3.WindowStart != des.Time(0).Add(10*des.Second) {
		t.Fatalf("r3 window %v", r3.WindowStart)
	}
	if r3.PrevAt != des.Time(0).Add(20*des.Second) {
		t.Fatalf("r3 prev %v", r3.PrevAt)
	}
	if len(r3.Items) != 2 {
		t.Fatalf("r3 items %+v", r3.Items)
	}
	if AsPiggybacker(a) != nil {
		t.Fatal("TS must not present the piggyback capability")
	}
}

func TestATReportsCoverOneInterval(t *testing.T) {
	env := newFakeEnv()
	p := DefaultParams()
	p.Interval = 10 * des.Second
	a := mustNew(t, "at", p)
	a.Start(env)
	env.update(1, 5*des.Second)
	env.update(2, 15*des.Second)
	env.run(25 * des.Second)

	if len(env.sent) != 2 {
		t.Fatalf("sent %d", len(env.sent))
	}
	r2 := env.sent[1].r
	if r2.WindowStart != des.Time(0).Add(10*des.Second) || r2.WindowStart != r2.PrevAt {
		t.Fatalf("amnesic window %+v", r2)
	}
	if len(r2.Items) != 1 || r2.Items[0].ID != 2 {
		t.Fatalf("r2 items %+v", r2.Items)
	}
}

func TestSIGReports(t *testing.T) {
	env := newFakeEnv()
	p := DefaultParams()
	p.Interval = 10 * des.Second
	a := mustNew(t, "sig", p)
	a.Start(env)
	env.run(25 * des.Second)
	if len(env.sent) != 2 {
		t.Fatalf("sent %d", len(env.sent))
	}
	r := env.sent[0].r
	if r.Sig == nil || r.Sig.Bits != p.SigBits || r.Sig.Capacity != p.SigCapacity {
		t.Fatalf("sig block %+v", r.Sig)
	}
	if r.Sig.AsOf != r.At || len(r.Items) != 0 {
		t.Fatalf("sig report %+v", r)
	}
}

func TestUIRPattern(t *testing.T) {
	env := newFakeEnv()
	p := DefaultParams()
	p.Interval = 20 * des.Second
	p.MiniPerInterval = 4 // sub-reports every 5 s; every 4th is full
	a := mustNew(t, "uir", p)
	a.Start(env)
	env.update(1, 7*des.Second)
	env.run(41 * des.Second) // ticks at 5,10,15,20,25,30,35,40

	if len(env.sent) != 8 {
		t.Fatalf("sent %d", len(env.sent))
	}
	for i, s := range env.sent {
		wantFull := (i+1)%4 == 0 // ticks 20 and 40
		if (s.r.Kind == KindFull) != wantFull {
			t.Fatalf("tick %d kind %v", i, s.r.Kind)
		}
	}
	// Mini at t=25 covers since last full (t=20) → item 1@7s excluded.
	m := env.sent[4].r
	if m.WindowStart != des.Time(0).Add(20*des.Second) || len(m.Items) != 0 {
		t.Fatalf("mini after full %+v", m)
	}
	// Mini at t=10 covers since last full; before any full, that is 0.
	m0 := env.sent[1].r
	if m0.WindowStart != 0 || len(m0.Items) != 1 {
		t.Fatalf("early mini %+v", m0)
	}
}

func TestLAIRTwoStreams(t *testing.T) {
	env := newFakeEnv()
	env.snrs = []float64{30, 30, 30, 30} // strong population: 9x efficiency
	p := DefaultParams()
	p.Interval = 10 * des.Second
	p.WindowReports = 2
	a := mustNew(t, "lair", p).(*Adaptive)
	a.Start(env)
	env.run(25 * des.Second)

	var anchors, fasts []sentReport
	for _, s := range env.sent {
		if s.r.Kind == KindFull {
			anchors = append(anchors, s)
		} else {
			fasts = append(fasts, s)
		}
	}
	// Anchor stream is exactly the classic cadence at the robust rate.
	if len(anchors) != 2 {
		t.Fatalf("anchors %d, want 2 (t=10, t=20)", len(anchors))
	}
	for _, s := range anchors {
		if s.mcs != robustMCS {
			t.Fatalf("anchor at mcs %d", s.mcs)
		}
	}
	if anchors[0].r.At != des.Time(0).Add(10*des.Second) ||
		anchors[1].r.At != des.Time(0).Add(20*des.Second) {
		t.Fatalf("anchor times %v %v", anchors[0].r.At, anchors[1].r.At)
	}
	// Fast stream: first fast tick at t=10 (same budget period), then the
	// 9x rate shrinks the gap to 10/9 s.
	if len(fasts) < 10 {
		t.Fatalf("fast reports %d, expected dense stream", len(fasts))
	}
	for _, s := range fasts {
		if s.mcs == robustMCS {
			t.Fatal("fast report at robust mcs")
		}
		if s.r.Kind != KindMini {
			t.Fatal("fast reports must be minis (no drop-all for stragglers)")
		}
	}
	gap := fasts[2].r.At.Sub(fasts[1].r.At)
	interval := 10 * des.Second
	want := des.Duration(float64(interval) / 9)
	if d := gap - want; d < -des.Millisecond || d > des.Millisecond {
		t.Fatalf("fast gap %v, want ~%v", gap, want)
	}
	if a.Anchors() != 2 || a.FastReports() != uint64(len(fasts)) {
		t.Fatalf("counters %d/%d", a.Anchors(), a.FastReports())
	}
	if a.Piggyback(env.Now()) != nil {
		t.Fatal("lair must not piggyback")
	}
}

func TestLAIRWeakPopulationDegeneratesToClassic(t *testing.T) {
	env := newFakeEnv()
	env.snrs = []float64{1, 1, 1} // nobody decodes anything fast
	p := DefaultParams()
	p.Interval = 10 * des.Second
	a := mustNew(t, "lair", p).(*Adaptive)
	a.Start(env)
	env.run(45 * des.Second)
	// Fast stream silent; only robust anchors, like TS.
	for _, s := range env.sent {
		if s.mcs != robustMCS || s.r.Kind != KindFull {
			t.Fatalf("weak population got %v at mcs %d", s.r.Kind, s.mcs)
		}
	}
	if len(env.sent) != 4 {
		t.Fatalf("sent %d, want 4 classic reports", len(env.sent))
	}
	if a.FastSkipped() == 0 {
		t.Fatal("fast stream never evaluated")
	}
}

func TestTAIRPeriodAdapts(t *testing.T) {
	env := newFakeEnv()
	p := DefaultParams()
	p.IntervalMin = 5 * des.Second
	p.IntervalMax = 40 * des.Second
	p.LoadLow = 0.2
	p.LoadHigh = 0.8
	a := mustNew(t, "tair", p).(*Adaptive)
	a.Start(env)

	env.load = 0 // idle → fast cadence
	env.run(21 * des.Second)
	idleCount := len(env.sent)
	if idleCount != 4 { // ticks at 5,10,15,20
		t.Fatalf("idle reports %d", idleCount)
	}

	env.load = 1 // saturated → period stretches to max
	env.run(200 * des.Second)
	// From ~t=25 (first post-load tick) the period becomes 40 s.
	busyCount := len(env.sent) - idleCount
	if busyCount > 7 {
		t.Fatalf("busy reports %d, period did not stretch", busyCount)
	}
	if a.anchorTick.Period() != p.IntervalMax {
		t.Fatalf("period %v", a.anchorTick.Period())
	}

	env.load = 0.5 // mid band → linear interpolation
	env.run(300 * des.Second)
	want := p.IntervalMin + des.Duration(0.5*float64(p.IntervalMax-p.IntervalMin))
	if d := a.anchorTick.Period() - want; d < -des.Microsecond || d > des.Microsecond {
		t.Fatalf("mid-load period %v, want %v", a.anchorTick.Period(), want)
	}
}

func TestTAIRPiggyback(t *testing.T) {
	env := newFakeEnv()
	p := DefaultParams()
	p.IntervalMin = 10 * des.Second
	p.PiggyMinGap = des.Second
	p.PiggyMaxItems = 2
	a := mustNew(t, "tair", p).(*Adaptive)
	a.Start(env)
	env.update(1, 11*des.Second) // after the t=10 full report
	env.run(12 * des.Second)

	pg := a.Piggyback(env.Now())
	if pg == nil {
		t.Fatal("no piggyback")
	}
	if pg.Kind != KindPiggyback || len(pg.Items) != 1 || pg.Items[0].ID != 1 {
		t.Fatalf("piggyback %+v", pg)
	}
	// Digest covers exactly since the last full report.
	if pg.WindowStart != des.Time(0).Add(10*des.Second) {
		t.Fatalf("piggyback window %v", pg.WindowStart)
	}
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rate limit: immediate second attempt yields nil.
	if a.Piggyback(env.Now()) != nil {
		t.Fatal("piggyback rate limit broken")
	}
	// After the gap, works again; an empty digest is still emitted because
	// it lets a waiting client validate immediately.
	env.run(14 * des.Second)
	pg2 := a.Piggyback(env.Now())
	if pg2 == nil {
		t.Fatal("piggyback after gap failed")
	}
	if a.Piggybacks() != 2 {
		t.Fatalf("piggyback count %d", a.Piggybacks())
	}
}

func TestTAIRPiggybackSkipsWhenTooLarge(t *testing.T) {
	env := newFakeEnv()
	p := DefaultParams()
	p.IntervalMin = 10 * des.Second
	p.PiggyMaxItems = 2
	a := mustNew(t, "tair", p).(*Adaptive)
	a.Start(env)
	for i := 0; i < 5; i++ {
		// All after the t=10 full report: too many to piggyback.
		env.update(i, 11*des.Second+des.Duration(i)*des.Second)
	}
	env.run(16 * des.Second)
	if pg := a.Piggyback(env.Now()); pg != nil {
		t.Fatalf("oversized piggyback emitted: %+v", pg)
	}
}

func TestHybridCombinesBoth(t *testing.T) {
	env := newFakeEnv()
	env.snrs = []float64{30, 30, 30}
	p := DefaultParams()
	a := mustNew(t, "hybrid", p).(*Adaptive)
	a.Start(env)
	env.load = 0
	env.run(40 * des.Second)
	// Link-aware: both robust anchors and fast minis present.
	sawFast, sawAnchor := false, false
	for _, s := range env.sent {
		if s.mcs != robustMCS {
			sawFast = true
		} else if s.r.Kind == KindFull {
			sawAnchor = true
		}
	}
	if !sawFast || !sawAnchor {
		t.Fatalf("hybrid streams missing: fast=%v anchor=%v", sawFast, sawAnchor)
	}
	// Traffic-aware: at zero load the anchor cadence pins to IntervalMin.
	if got := a.anchorTick.Period(); got != p.IntervalMin {
		t.Fatalf("anchor period %v, want %v", got, p.IntervalMin)
	}
	// Traffic-aware: piggybacks available.
	if a.Piggyback(env.Now()) == nil {
		t.Fatal("hybrid did not piggyback")
	}
}

func TestAllReportsValidateAgainstSchema(t *testing.T) {
	// Run every algorithm for a while over a busy update stream and check
	// every emitted report passes Validate (the fakeEnv panics otherwise).
	for _, name := range Names {
		env := newFakeEnv()
		for i := 0; i < 200; i++ {
			env.update(i%37, des.Duration(i)*500*des.Millisecond)
		}
		p := DefaultParams()
		p.Interval = 7 * des.Second
		a := mustNew(t, name, p)
		a.Start(env)
		env.run(2 * des.Minute)
		if len(env.sent) == 0 {
			t.Errorf("%s sent nothing", name)
		}
		if pb := AsPiggybacker(a); pb != nil {
			for range env.sent {
				pb.Piggyback(env.Now()) // also exercised under load
			}
		}
	}
}

func TestBSReports(t *testing.T) {
	env := newFakeEnv()
	p := DefaultParams()
	p.Interval = 10 * des.Second
	p.NumItems = 512
	a := mustNew(t, "bs", p)
	a.Start(env)
	env.run(25 * des.Second)
	if len(env.sent) != 2 {
		t.Fatalf("sent %d", len(env.sent))
	}
	r := env.sent[0].r
	if r.Sig == nil {
		t.Fatal("bs must carry a comparison block")
	}
	// 2 bits per item + 32-bit timestamps per hierarchy level (log2 512 = 9).
	if r.Sig.Bits != 2*512+32*9 {
		t.Fatalf("bs size %d bits", r.Sig.Bits)
	}
	if r.Sig.Capacity != 256 {
		t.Fatalf("bs capacity %d, want half the database", r.Sig.Capacity)
	}
	if r.Sig.FalsePositive != 0 {
		t.Fatal("bit sequences are exact: no false positives")
	}
	if AsPiggybacker(a) != nil {
		t.Fatal("bs must not present the piggyback capability")
	}
}

func TestBSDefaultsNumItems(t *testing.T) {
	p := DefaultParams()
	p.NumItems = 0 // standalone use without the core coupling
	a := mustNew(t, "bs", p).(*BS)
	if a.numItems != 1000 {
		t.Fatalf("default items %d", a.numItems)
	}
}
