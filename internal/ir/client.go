package ir

import (
	"repro/internal/cache"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Oracle gives the client-side signature comparison access to the server
// item state the signatures encode. It stands in for bit-level signature
// hashing; see the SigBlock doc comment.
type Oracle interface {
	// UpdatedAt reports the latest update time of an item.
	UpdatedAt(id int) des.Time
}

// ClientStats counts report-processing outcomes.
type ClientStats struct {
	Received   metrics.Counter // reports decoded
	Applied    metrics.Counter // reports that validated the cache
	Unusable   metrics.Counter // mini/piggyback outside the coverage window
	Drops      metrics.Counter // full reports that forced a cache flush
	SigDrops   metrics.Counter // signature capacity exceeded
	FalseInval metrics.Counter // signature false-positive invalidations
}

// ClientState is the per-client invalidation protocol state. One generic
// rule covers every scheme: a report whose coverage window reaches back to
// the client's last consistent point advances that point; a full report
// that does not still re-synchronizes by dropping the cache.
type ClientState struct {
	// LastConsistent is the server time as of which the cache contents are
	// known to reflect all updates. Zero initially: an empty cache is
	// trivially consistent as of the epoch.
	LastConsistent des.Time

	Stats ClientStats

	// Tracing (nil Tracer = disabled). The owner (core's client) sets all
	// three; Owner is the client id stamped on events, Clock the simulation
	// time source.
	Tracer obs.Tracer
	Owner  int
	Clock  func() des.Time

	scratch []int // reused id buffer for signature processing
}

// Process applies a decoded report. It returns true when the cache is now
// consistent as of r.At, meaning pending queries may be served; false when
// the report was unusable (coverage chain broken on a non-full report).
// oracle and src are needed only for signature reports and may be nil
// otherwise.
func (s *ClientState) Process(r *Report, c *cache.Cache, oracle Oracle, src *rng.Source) bool {
	s.Stats.Received.Inc()
	if r.At < s.LastConsistent {
		// Stale or reordered report: nothing it could teach us.
		s.Stats.Unusable.Inc()
		s.trace(r, obs.ReportUnusable)
		return false
	}
	if r.Sig != nil {
		s.processSig(r, c, oracle, src)
		s.LastConsistent = r.At
		s.Stats.Applied.Inc()
		s.trace(r, obs.ReportApplied)
		return true
	}
	if s.LastConsistent >= r.WindowStart {
		for _, u := range r.Items {
			if e, ok := c.Peek(u.ID); ok && u.At > e.CachedAt {
				c.Invalidate(u.ID)
			}
		}
		s.LastConsistent = r.At
		s.Stats.Applied.Inc()
		s.trace(r, obs.ReportApplied)
		return true
	}
	if r.Kind == KindFull {
		// Coverage window exceeded (slept or faded too long): the only safe
		// move is to drop everything, which is itself a consistent state.
		c.InvalidateAll()
		s.LastConsistent = r.At
		s.Stats.Applied.Inc()
		s.Stats.Drops.Inc()
		s.trace(r, obs.ReportDropAll)
		return true
	}
	s.Stats.Unusable.Inc()
	s.trace(r, obs.ReportUnusable)
	return false
}

// trace emits the processing outcome when a tracer is attached.
func (s *ClientState) trace(r *Report, outcome string) {
	if s.Tracer == nil {
		return
	}
	s.Tracer.ReportProcess(obs.ReportProcessEvent{
		At:      s.Clock(),
		Client:  s.Owner,
		Seq:     r.Seq,
		Kind:    r.Kind.String(),
		Outcome: outcome,
	})
}

// processSig performs the behavioural signature comparison: entries whose
// item truly changed since they were cached are always detected; unchanged
// entries are invalidated with the scheme's false-positive probability; if
// more entries differ than the signature capacity can localize, everything
// is dropped.
func (s *ClientState) processSig(r *Report, c *cache.Cache, oracle Oracle, src *rng.Source) {
	changed := s.scratch[:0]
	clean := make([]int, 0, c.Len())
	c.Range(func(e cache.Entry) bool {
		if oracle.UpdatedAt(e.ID) > e.CachedAt {
			changed = append(changed, e.ID)
		} else {
			clean = append(clean, e.ID)
		}
		return true
	})
	s.scratch = changed[:0]
	if len(changed) > r.Sig.Capacity {
		c.InvalidateAll()
		s.Stats.SigDrops.Inc()
		return
	}
	for _, id := range changed {
		c.Invalidate(id)
	}
	for _, id := range clean {
		if src.Bool(r.Sig.FalsePositive) {
			c.Invalidate(id)
			s.Stats.FalseInval.Inc()
		}
	}
}
