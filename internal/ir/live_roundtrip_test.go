package ir

import (
	"reflect"
	"testing"

	"repro/internal/des"
)

// TestLiveReportCodecRoundTrip runs every algorithm over a busy update
// stream and round-trips each report it actually broadcasts through the
// wire codec. This is the live end-to-end check the wdctrace tool used to
// perform inline; as a table-driven test it covers all algorithms on every
// run instead of whichever one the tool was pointed at.
func TestLiveReportCodecRoundTrip(t *testing.T) {
	for _, name := range Names {
		t.Run(name, func(t *testing.T) {
			env := newFakeEnv()
			for i := 0; i < 300; i++ {
				env.update(i%53, des.Duration(i)*300*des.Millisecond)
			}
			p := DefaultParams()
			p.Interval = 5 * des.Second
			a := mustNew(t, name, p)
			a.Start(env)
			env.run(90 * des.Second)
			if len(env.sent) == 0 {
				t.Fatalf("%s broadcast nothing", name)
			}
			roundTrip := func(r *Report) {
				t.Helper()
				decoded, err := Unmarshal(r.Marshal())
				if err != nil {
					t.Fatalf("unmarshal: %v (report %+v)", err, r)
				}
				if !reflect.DeepEqual(decoded, r) {
					t.Fatalf("codec round trip lossy:\nsent:    %+v\ndecoded: %+v", r, decoded)
				}
			}
			for _, s := range env.sent {
				roundTrip(s.r)
			}
			// Piggyback digests cross the same wire; include one when the
			// algorithm produces them.
			if pb := AsPiggybacker(a); pb != nil {
				if pg := pb.Piggyback(env.Now()); pg != nil {
					roundTrip(pg)
				}
			}
		})
	}
}
