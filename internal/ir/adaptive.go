package ir

import (
	"repro/internal/des"
)

// Adaptive implements the reconstructed contributions. Two orthogonal
// mechanisms, each switchable:
//
// Traffic awareness (TAIR):
//
//   - The report interval tracks downlink load: when the downlink is idle,
//     reports come fast (latency is cheap to buy); when it is busy, the
//     interval stretches toward IntervalMax so invalidation overhead yields
//     airtime to data.
//   - Small invalidation digests piggyback on departing unicast data
//     frames (in the robust control portion, so any client can decode
//     them), so under load — exactly when the interval is long — clients
//     overhearing the busy downlink keep validating continuously.
//
// Link awareness (LAIR):
//
//   - Two interleaved report streams. The anchor stream is exactly the
//     classic robust-rate scheme: full reports every interval whose windows
//     span WindowReports anchor intervals — no client ever does worse than
//     the TS baseline.
//   - The fast stream spends one extra report-airtime budget per interval
//     at the fastest MCS that reaches a target fraction of the awake
//     population: its period shrinks by the MCS efficiency ratio, so
//     clients with decent links validate several times per anchor interval.
//     Fast reports are minis — a client outside their window simply ignores
//     them instead of flushing its cache — and when the population cannot
//     sustain more than the robust rate the fast stream goes silent,
//     degenerating to the classic scheme exactly.
//
// HYBRID enables both: traffic awareness sets the interval budget that both
// streams spend, link awareness splits it across the two rates, and digests
// piggyback on data traffic.
type Adaptive struct {
	reportArena
	p            Params
	trafficAware bool
	linkAware    bool

	env        ServerEnv
	anchorTick *des.Ticker
	fastTick   *des.Ticker
	seq        uint64
	winAll     *windowTracker // recent reports of any kind
	winAnchor  *windowTracker // anchor-stream reports only
	lastPiggy  des.Time
	started    bool

	// stats exposed for experiments
	piggybacks  uint64
	anchorsSent uint64
	fastSent    uint64
	fastSkipped uint64
}

func newAdaptive(p Params, trafficAware, linkAware bool) *Adaptive {
	return &Adaptive{p: p, trafficAware: trafficAware, linkAware: linkAware}
}

// Name implements ServerAlgo.
func (a *Adaptive) Name() string {
	switch {
	case a.trafficAware && a.linkAware:
		return "hybrid"
	case a.trafficAware:
		return "tair"
	default:
		return "lair"
	}
}

// PiggybackEnabled reports whether the piggyback mechanism is armed; only
// the traffic-aware variants (tair, hybrid) attach digests to data frames.
// AsPiggybacker consults it so lair presents no piggyback capability.
func (a *Adaptive) PiggybackEnabled() bool { return a.trafficAware }

// Piggybacks reports how many digests were attached to data frames.
func (a *Adaptive) Piggybacks() uint64 { return a.piggybacks }

// Anchors reports how many robust anchor reports were sent.
func (a *Adaptive) Anchors() uint64 { return a.anchorsSent }

// FastReports reports how many rate-adapted fast reports were sent.
func (a *Adaptive) FastReports() uint64 { return a.fastSent }

// FastSkipped reports fast-stream ticks where the population could not
// sustain better than the robust rate, so nothing extra was sent.
func (a *Adaptive) FastSkipped() uint64 { return a.fastSkipped }

// Start implements ServerAlgo.
func (a *Adaptive) Start(env ServerEnv) {
	a.env = env
	a.winAll = newWindowTracker(a.p.WindowReports)
	a.winAnchor = newWindowTracker(a.p.WindowReports)
	a.anchorTick = env.NewTicker(a.baseInterval(), "ir."+a.Name()+".anchor", a.anchor)
	a.anchorTick.Start()
	if a.linkAware {
		a.fastTick = env.NewTicker(a.baseInterval(), "ir."+a.Name()+".fast", a.fast)
		a.fastTick.Start()
	}
	a.started = true
}

// baseInterval is the per-stream airtime budget period: the configured
// interval, stretched or shrunk by downlink load when traffic-aware.
func (a *Adaptive) baseInterval() des.Duration {
	if !a.trafficAware {
		return a.p.Interval
	}
	if a.env == nil {
		return a.p.IntervalMin
	}
	load := a.env.DownlinkLoad()
	frac := (load - a.p.LoadLow) / (a.p.LoadHigh - a.p.LoadLow)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return a.p.IntervalMin + des.Duration(frac*float64(a.p.IntervalMax-a.p.IntervalMin))
}

// anchor emits one robust full report, the classic stream.
func (a *Adaptive) anchor(now des.Time) {
	winStart := a.winAnchor.startK(a.p.WindowReports)
	prev := a.winAll.last()
	items := a.env.UpdatedSince(winStart, a.takeItems())
	sortUpdates(items)
	a.seq++
	a.anchorsSent++
	a.winAnchor.record(now)
	a.winAll.record(now)
	r := a.getReport()
	r.Kind = KindFull
	r.Seq = a.seq
	r.At = now
	r.PrevAt = prev
	r.WindowStart = winStart
	r.Items = a.sealItems(items)
	a.env.Broadcast(r, robustMCS)
	a.anchorTick.SetPeriod(a.baseInterval())
}

// fast emits one rate-adapted mini when the population supports a rate
// above robust, then re-arms at the budget-neutral period.
func (a *Adaptive) fast(now des.Time) {
	base := a.baseInterval()
	mcs := a.env.AMC().BroadcastSelect(a.env.AwakeSNRs(), a.p.Coverage)
	if mcs == robustMCS {
		// Nothing to gain this round; check again after a full budget gap.
		a.fastSkipped++
		a.fastTick.SetPeriod(base)
		return
	}
	winStart := a.winAll.startK(a.p.WindowReports)
	prev := a.winAll.last()
	items := a.env.UpdatedSince(winStart, a.takeItems())
	sortUpdates(items)
	a.seq++
	a.fastSent++
	a.winAll.record(now)
	r := a.getReport()
	r.Kind = KindMini
	r.Seq = a.seq
	r.At = now
	r.PrevAt = prev
	r.WindowStart = winStart
	r.Items = a.sealItems(items)
	a.env.Broadcast(r, mcs)

	table := a.env.AMC().Table
	ratio := table[robustMCS].Efficiency() / table[mcs].Efficiency()
	period := des.Duration(float64(base) * ratio)
	if min := des.Second; period < min {
		period = min
	}
	a.fastTick.SetPeriod(period)
}

// Piggyback implements Piggybacker. The digest lists every update since the
// last report, so any client consistent as of that report (or any later
// digest) can use it — the same recovery rule as a UIR mini. If the update
// rate makes the digest exceed PiggyMaxItems it is skipped: piggybacking
// only pays when invalidation information is compact relative to the data
// frame carrying it.
func (a *Adaptive) Piggyback(now des.Time) *Report {
	if !a.trafficAware || !a.started {
		return nil
	}
	if a.lastPiggy != 0 && now.Sub(a.lastPiggy) < a.p.PiggyMinGap {
		return nil
	}
	a.lastPiggy = now // rate-limit even unsuccessful attempts
	winStart := a.winAll.last()
	items := a.env.UpdatedSince(winStart, a.takeItems())
	if len(items) > a.p.PiggyMaxItems {
		a.saveItems(items)
		return nil
	}
	sortUpdates(items)
	a.seq++
	a.piggybacks++
	r := a.getReport()
	r.Kind = KindPiggyback
	r.Seq = a.seq
	r.At = now
	r.PrevAt = a.winAll.last()
	r.WindowStart = winStart
	r.Items = a.sealItems(items)
	return r
}
