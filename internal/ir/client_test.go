package ir

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/rng"
)

// mapOracle backs signature tests with a fixed update-time table.
type mapOracle map[int]des.Time

func (o mapOracle) UpdatedAt(id int) des.Time { return o[id] }

func fill(c *cache.Cache, ids []int, cachedAt des.Time) {
	for _, id := range ids {
		c.Put(id, 1, cachedAt)
	}
}

func TestProcessInsideWindowInvalidatesSelectively(t *testing.T) {
	c := cache.New(10, 100)
	fill(c, []int{1, 2, 3}, des.Time(100))
	var s ClientState
	s.LastConsistent = des.Time(100)
	r := &Report{
		Kind: KindFull, At: des.Time(200), WindowStart: des.Time(50),
		Items: []db.Update{
			{ID: 2, At: des.Time(150)}, // newer than cached → invalidate
			{ID: 3, At: des.Time(90)},  // older than cached value → keep
			{ID: 7, At: des.Time(160)}, // not cached → no-op
		},
	}
	if !s.Process(r, c, nil, nil) {
		t.Fatal("report inside window must validate")
	}
	if c.Contains(2) {
		t.Fatal("updated item survived")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("unaffected items dropped")
	}
	if s.LastConsistent != des.Time(200) {
		t.Fatalf("LastConsistent %v", s.LastConsistent)
	}
	if s.Stats.Applied.Value() != 1 || s.Stats.Drops.Value() != 0 {
		t.Fatalf("stats %+v", s.Stats)
	}
}

func TestProcessWindowExceededDropsOnFull(t *testing.T) {
	c := cache.New(10, 100)
	fill(c, []int{1, 2}, des.Time(10))
	var s ClientState
	s.LastConsistent = des.Time(10)
	r := &Report{Kind: KindFull, At: des.Time(500), WindowStart: des.Time(400)}
	if !s.Process(r, c, nil, nil) {
		t.Fatal("full report must always validate")
	}
	if c.Len() != 0 {
		t.Fatal("cache not dropped outside window")
	}
	if s.Stats.Drops.Value() != 1 {
		t.Fatal("drop not counted")
	}
	if s.LastConsistent != des.Time(500) {
		t.Fatalf("LastConsistent %v", s.LastConsistent)
	}
}

func TestProcessWindowExceededMiniUnusable(t *testing.T) {
	c := cache.New(10, 100)
	fill(c, []int{1}, des.Time(10))
	var s ClientState
	s.LastConsistent = des.Time(10)
	for _, kind := range []Kind{KindMini, KindPiggyback} {
		r := &Report{Kind: kind, At: des.Time(500), WindowStart: des.Time(400)}
		if s.Process(r, c, nil, nil) {
			t.Fatalf("%v outside window must be unusable", kind)
		}
	}
	if c.Len() != 1 {
		t.Fatal("unusable report mutated the cache")
	}
	if s.LastConsistent != des.Time(10) {
		t.Fatal("unusable report advanced consistency")
	}
	if s.Stats.Unusable.Value() != 2 {
		t.Fatalf("stats %+v", s.Stats)
	}
}

func TestProcessBoundaryEquality(t *testing.T) {
	// lastConsistent exactly equal to WindowStart is sufficient: the report
	// lists updates in (WindowStart, At].
	var s ClientState
	s.LastConsistent = des.Time(100)
	c := cache.New(4, 10)
	r := &Report{Kind: KindMini, At: des.Time(200), WindowStart: des.Time(100)}
	if !s.Process(r, c, nil, nil) {
		t.Fatal("boundary equality must validate")
	}
}

func TestProcessStaleReportIgnored(t *testing.T) {
	var s ClientState
	s.LastConsistent = des.Time(300)
	c := cache.New(4, 10)
	c.Put(1, 1, des.Time(250))
	r := &Report{Kind: KindFull, At: des.Time(200), WindowStart: des.Time(0),
		Items: []db.Update{{ID: 1, At: des.Time(100)}}}
	if s.Process(r, c, nil, nil) {
		t.Fatal("report older than consistency point must be ignored")
	}
	if !c.Contains(1) || s.LastConsistent != des.Time(300) {
		t.Fatal("stale report mutated state")
	}
}

func TestProcessChainAcrossReports(t *testing.T) {
	// A client receiving an unbroken chain of minis stays consistent without
	// ever seeing a full report after the first.
	var s ClientState
	c := cache.New(10, 100)
	full := &Report{Kind: KindFull, At: des.Time(100), WindowStart: des.Time(50)}
	if !s.Process(full, c, nil, nil) {
		t.Fatal("initial full failed")
	}
	for i := 1; i <= 5; i++ {
		at := des.Time(100 + i*10)
		mini := &Report{Kind: KindMini, At: at, WindowStart: at - 10}
		if !s.Process(mini, c, nil, nil) {
			t.Fatalf("mini %d broke the chain", i)
		}
	}
	// Skipping one mini breaks the chain until the next full.
	gap := &Report{Kind: KindMini, At: des.Time(180), WindowStart: des.Time(170)}
	if s.Process(gap, c, nil, nil) {
		t.Fatal("broken chain accepted")
	}
}

func TestProcessSigDetectsChanges(t *testing.T) {
	c := cache.New(10, 100)
	c.Put(1, 1, des.Time(100)) // changed on server at 150
	c.Put(2, 1, des.Time(100)) // unchanged
	oracle := mapOracle{1: des.Time(150), 2: des.Time(50)}
	var s ClientState
	r := &Report{Kind: KindFull, At: des.Time(200),
		Sig: &SigBlock{AsOf: des.Time(200), Capacity: 8, FalsePositive: 0, Bits: 1024}}
	if !s.Process(r, c, oracle, rng.New(1)) {
		t.Fatal("sig report must validate")
	}
	if c.Contains(1) {
		t.Fatal("changed item survived signature check")
	}
	if !c.Contains(2) {
		t.Fatal("unchanged item dropped with zero false-positive rate")
	}
}

func TestProcessSigSurvivesLongDisconnection(t *testing.T) {
	// The whole point of SIG: no coverage window, so an arbitrarily old
	// client still validates selectively.
	c := cache.New(10, 100)
	c.Put(1, 1, des.Time(5))
	oracle := mapOracle{1: des.Time(2)} // never changed since caching
	var s ClientState
	s.LastConsistent = des.Time(5)
	r := &Report{Kind: KindFull, At: des.Time(1_000_000),
		Sig: &SigBlock{AsOf: des.Time(1_000_000), Capacity: 4, FalsePositive: 0, Bits: 512}}
	if !s.Process(r, c, oracle, rng.New(1)) {
		t.Fatal("old client must validate via signatures")
	}
	if !c.Contains(1) {
		t.Fatal("clean entry dropped after long disconnection")
	}
}

func TestProcessSigCapacityDrop(t *testing.T) {
	c := cache.New(10, 100)
	oracle := mapOracle{}
	for i := 0; i < 6; i++ {
		c.Put(i, 1, des.Time(10))
		oracle[i] = des.Time(100) // all changed
	}
	var s ClientState
	r := &Report{Kind: KindFull, At: des.Time(200),
		Sig: &SigBlock{AsOf: des.Time(200), Capacity: 3, FalsePositive: 0, Bits: 512}}
	if !s.Process(r, c, oracle, rng.New(1)) {
		t.Fatal("sig must validate even via drop")
	}
	if c.Len() != 0 {
		t.Fatal("capacity overflow must drop everything")
	}
	if s.Stats.SigDrops.Value() != 1 {
		t.Fatal("sig drop not counted")
	}
}

func TestProcessSigFalsePositives(t *testing.T) {
	const n = 2000
	c := cache.New(n, n)
	oracle := mapOracle{}
	for i := 0; i < n; i++ {
		c.Put(i, 1, des.Time(10))
		oracle[i] = des.Time(1)
	}
	var s ClientState
	r := &Report{Kind: KindFull, At: des.Time(100),
		Sig: &SigBlock{AsOf: des.Time(100), Capacity: 8, FalsePositive: 0.1, Bits: 512}}
	s.Process(r, c, oracle, rng.New(7))
	dropped := n - c.Len()
	if dropped < n/20 || dropped > n/5 {
		t.Fatalf("false positives %d of %d, want ~10%%", dropped, n)
	}
	if s.Stats.FalseInval.Value() != uint64(dropped) {
		t.Fatal("false-invalidation count mismatch")
	}
}

func TestProcessEmptyCacheAlwaysCheap(t *testing.T) {
	// Fresh client (zero state): first full report validates via drop path
	// without error even though LastConsistent is the epoch.
	var s ClientState
	c := cache.New(4, 10)
	r := &Report{Kind: KindFull, At: des.Time(1000), WindowStart: des.Time(900)}
	if !s.Process(r, c, nil, nil) {
		t.Fatal("fresh client must sync on first full report")
	}
}
