package ir

import (
	"bytes"
	"testing"

	"repro/internal/db"
)

// FuzzUnmarshal drives the wire decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to the same bytes
// (canonical form) and pass structural validation of its sizes.
func FuzzUnmarshal(f *testing.F) {
	seed := []*Report{
		{Kind: KindFull, Seq: 1, At: 1000, PrevAt: 500, WindowStart: 100},
		{Kind: KindMini, Seq: 2, At: 2000, PrevAt: 1500, WindowStart: 1500,
			Items: []db.Update{{ID: 3, At: 1600}}},
		{Kind: KindFull, Seq: 3, At: 3000,
			Sig: &SigBlock{AsOf: 3000, Capacity: 8, FalsePositive: 0.01, Bits: 512}},
	}
	for _, r := range seed {
		f.Add(r.Marshal())
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := r.Marshal()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
		if r.SizeBits() < HeaderBits {
			t.Fatalf("impossible size %d", r.SizeBits())
		}
	})
}
