package ir

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/rng"
)

// FuzzUnmarshal drives the wire decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to the same bytes
// (canonical form) and pass structural validation of its sizes.
func FuzzUnmarshal(f *testing.F) {
	seed := []*Report{
		{Kind: KindFull, Seq: 1, At: 1000, PrevAt: 500, WindowStart: 100},
		{Kind: KindMini, Seq: 2, At: 2000, PrevAt: 1500, WindowStart: 1500,
			Items: []db.Update{{ID: 3, At: 1600}}},
		{Kind: KindFull, Seq: 3, At: 3000,
			Sig: &SigBlock{AsOf: 3000, Capacity: 8, FalsePositive: 0.01, Bits: 512}},
	}
	for _, r := range seed {
		f.Add(r.Marshal())
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := r.Marshal()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
		if r.SizeBits() < HeaderBits {
			t.Fatalf("impossible size %d", r.SizeBits())
		}
	})
}

// FuzzReportDecode drives arbitrary bytes through the whole client-side
// pipeline: decode, structural validation, then ClientState.Process against a
// populated cache. Whatever the wire delivers — including truncated or
// adversarial reports a fault-injected downlink can produce — processing must
// never panic, and the consistency point must only move forward, landing
// exactly on r.At whenever the report validates.
func FuzzReportDecode(f *testing.F) {
	seed := []*Report{
		{Kind: KindFull, Seq: 4, At: 2000, PrevAt: 1000, WindowStart: 800,
			Items: []db.Update{{ID: 1, At: 900}, {ID: 5, At: 1999}}},
		{Kind: KindMini, Seq: 5, At: 1500, PrevAt: 1400, WindowStart: 1400},
		{Kind: KindPiggyback, Seq: 6, At: 1200, PrevAt: 1100, WindowStart: 1100,
			Items: []db.Update{{ID: 9, At: 1150}}},
		{Kind: KindFull, Seq: 7, At: 5000,
			Sig: &SigBlock{AsOf: 5000, Capacity: 4, FalsePositive: 0.05, Bits: 256}},
	}
	for _, r := range seed {
		f.Add(r.Marshal(), uint64(7))
	}
	f.Add([]byte{0xFF, 0x00}, uint64(1))

	f.Fuzz(func(t *testing.T, data []byte, stateSeed uint64) {
		r, err := Unmarshal(data)
		if err != nil {
			return
		}
		if r.Validate() != nil {
			return // structurally invalid reports never reach Process in-tree
		}
		const universe = 64
		// The simulator only ever decodes reports about items that exist;
		// clamp ids into the universe so the cache contract holds.
		for i := range r.Items {
			if r.Items[i].ID < 0 || r.Items[i].ID >= universe {
				r.Items[i].ID = int(uint(r.Items[i].ID) % universe)
			}
		}
		src := rng.New(stateSeed)
		c := cache.New(16, universe)
		oracle := mapOracle{}
		for i := 0; i < 16; i++ {
			id := src.Intn(universe)
			at := des.Time(src.Uint64n(4000))
			c.Put(id, 1, at)
			oracle[id] = at
		}
		var s ClientState
		s.LastConsistent = des.Time(src.Uint64n(4000))
		before := s.LastConsistent
		ok := s.Process(r, c, oracle, src)
		if s.LastConsistent < before {
			t.Fatalf("consistency point moved backwards: %v -> %v", before, s.LastConsistent)
		}
		if ok && s.LastConsistent != r.At {
			t.Fatalf("validated report left LastConsistent at %v, want %v", s.LastConsistent, r.At)
		}
		if !ok && s.LastConsistent != before {
			t.Fatalf("unusable report advanced consistency: %v -> %v", before, s.LastConsistent)
		}
	})
}
