// Package ir implements the paper's subject matter: cache invalidation
// report algorithms for wireless data broadcast.
//
// Baselines (canonical, as published):
//
//   - TS  — Broadcasting Timestamps (Barbara & Imielinski 1994): periodic
//     reports listing items updated in a fixed window w = K·L.
//   - AT  — Amnesic Terminals (same paper): reports list only updates since
//     the previous report; one missed report forces a full cache drop.
//   - SIG — signature scheme: fixed-size compressed signatures that survive
//     arbitrary disconnection at the cost of false-positive invalidations.
//   - UIR — Updated Invalidation Reports (Cao 2000): small replicated
//     sub-reports between full reports cut the wait-for-report latency.
//
// Reconstructed contributions (see DESIGN.md for the mismatch note):
//
//   - TAIR — traffic-aware reports: the report interval adapts to downlink
//     load and small invalidation digests piggyback on ongoing downlink
//     traffic.
//   - LAIR — link-adaptation-aware reports: report rate (MCS) is chosen
//     from the live client SNR distribution with periodic robust anchors.
//   - HYBRID — both of the above.
//
// The split of responsibilities keeps every scheme's difference server-side:
// reports carry an explicit coverage window (WindowStart), and a single
// generic client rule (ClientState.Process) handles every scheme except the
// signature comparison.
package ir

import (
	"encoding/binary"
	"fmt"

	"repro/internal/db"
	"repro/internal/des"
)

// Kind classifies a report.
type Kind uint8

// Report kinds. Full reports allow a client with a broken coverage chain to
// recover by dropping its cache; minis and piggybacks are usable only by
// clients already inside the coverage window.
const (
	KindFull Kind = iota
	KindMini
	KindPiggyback
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFull:
		return "full"
	case KindMini:
		return "mini"
	case KindPiggyback:
		return "piggyback"
	default:
		return "unknown"
	}
}

// Wire-format sizing in bits. Ids and timestamps are 32-bit on the air (a
// µs-resolution timestamp is sent modulo the coverage horizon, which a
// 32-bit offset from the report time covers comfortably).
const (
	HeaderBits   = 14 * 8 // kind + seq + three timestamps + count
	PerItemBits  = 8 * 8  // 32-bit id + 32-bit update-time offset
	SigBlockBits = 16 * 8 // as-of + capacity + fp + size descriptor
)

// SigBlock describes the signature payload of a SIG report. The simulation
// models the signature comparison behaviourally (perfect change detection up
// to Capacity differing items, false positives at rate FalsePositive)
// instead of bit-level hashing; DESIGN.md documents the substitution.
type SigBlock struct {
	AsOf          des.Time // server state time the signatures describe
	Capacity      int      // max differing items identifiable before drop-all
	FalsePositive float64  // per-unchanged-item invalidation probability
	Bits          int      // wire size of the signature body
}

// Report is one invalidation broadcast.
type Report struct {
	Kind Kind
	Seq  uint64

	At     des.Time // generation (server state) time
	PrevAt des.Time // At of the previous report in this server's sequence

	// WindowStart is the coverage guarantee: every item updated in
	// (WindowStart, At] appears in Items (with its latest update time). A
	// client whose cache is consistent as of some t ≥ WindowStart becomes
	// consistent as of At by applying Items.
	WindowStart des.Time

	Items []db.Update

	// Sig is set only by the signature scheme; Items is then empty.
	Sig *SigBlock
}

// SizeBits reports the on-air payload size of the report.
func (r *Report) SizeBits() int {
	bits := HeaderBits + len(r.Items)*PerItemBits
	if r.Sig != nil {
		bits += SigBlockBits + r.Sig.Bits
	}
	return bits
}

// Validate reports the first structural problem with the report.
func (r *Report) Validate() error {
	switch {
	case r.Kind > KindPiggyback:
		return fmt.Errorf("ir: bad kind %d", r.Kind)
	case r.WindowStart > r.At:
		return fmt.Errorf("ir: window start %v after report time %v", r.WindowStart, r.At)
	case r.PrevAt > r.At:
		return fmt.Errorf("ir: prev %v after report time %v", r.PrevAt, r.At)
	case r.Sig != nil && len(r.Items) > 0:
		return fmt.Errorf("ir: signature report with explicit items")
	case r.Sig != nil && (r.Sig.Capacity <= 0 || r.Sig.Bits <= 0 ||
		r.Sig.FalsePositive < 0 || r.Sig.FalsePositive >= 1):
		return fmt.Errorf("ir: malformed sig block %+v", *r.Sig)
	}
	for _, u := range r.Items {
		if u.At > r.At || u.At <= r.WindowStart {
			return fmt.Errorf("ir: item %d update time %v outside window (%v, %v]",
				u.ID, u.At, r.WindowStart, r.At)
		}
	}
	return nil
}

// Marshal encodes the report into its wire form. The byte-level encoding
// backs the round-trip property tests and the trace tool; the simulator
// itself passes Report pointers and only accounts SizeBits of airtime.
func (r *Report) Marshal() []byte {
	buf := make([]byte, 0, 33+12*len(r.Items))
	buf = append(buf, byte(r.Kind))
	buf = binary.BigEndian.AppendUint64(buf, r.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.At))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.PrevAt))
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.WindowStart))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Items)))
	for _, u := range r.Items {
		buf = binary.BigEndian.AppendUint32(buf, uint32(u.ID))
		buf = binary.BigEndian.AppendUint64(buf, uint64(u.At))
	}
	if r.Sig != nil {
		buf = append(buf, 1)
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Sig.AsOf))
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Sig.Capacity))
		buf = binary.BigEndian.AppendUint64(buf, uint64(fp64bits(r.Sig.FalsePositive)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Sig.Bits))
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// Unmarshal decodes a report from its wire form.
func Unmarshal(data []byte) (*Report, error) {
	r := &Report{}
	if err := UnmarshalInto(r, data); err != nil {
		return nil, err
	}
	return r, nil
}

// UnmarshalInto decodes a report from its wire form into r, reusing r's
// Items backing array (when its capacity suffices) and its SigBlock. It is
// the server hot-path decoder: a caller that keeps one Report per connection
// or per arena slot decodes a steady stream without allocating. On error r's
// contents are unspecified but r remains safe to reuse. Every field of r is
// overwritten, so a recycled Report needs no clearing beforehand.
func UnmarshalInto(r *Report, data []byte) error {
	if len(data) < 38 {
		return fmt.Errorf("ir: truncated report (%d bytes)", len(data))
	}
	r.Kind = Kind(data[0])
	r.Seq = binary.BigEndian.Uint64(data[1:])
	r.At = des.Time(binary.BigEndian.Uint64(data[9:]))
	r.PrevAt = des.Time(binary.BigEndian.Uint64(data[17:]))
	r.WindowStart = des.Time(binary.BigEndian.Uint64(data[25:]))
	n := int(binary.BigEndian.Uint32(data[33:]))
	off := 37
	if len(data) < off+12*n+1 {
		return fmt.Errorf("ir: truncated items (%d of %d)", len(data)-off, 12*n)
	}
	if n > 0 {
		if cap(r.Items) >= n {
			r.Items = r.Items[:n]
		} else {
			r.Items = make([]db.Update, n)
		}
		for i := 0; i < n; i++ {
			r.Items[i].ID = int(binary.BigEndian.Uint32(data[off:]))
			r.Items[i].At = des.Time(binary.BigEndian.Uint64(data[off+4:]))
			off += 12
		}
	} else {
		// Canonical form: an empty report carries nil-equivalent Items; the
		// backing array (if any) is kept for the next decode.
		r.Items = r.Items[:0:cap(r.Items)]
		if cap(r.Items) == 0 {
			r.Items = nil
		}
	}
	switch data[off] {
	case 0:
		off++
		r.Sig = nil
	case 1:
		off++
		if len(data) < off+24 {
			return fmt.Errorf("ir: truncated sig block")
		}
		if r.Sig == nil {
			r.Sig = &SigBlock{}
		}
		*r.Sig = SigBlock{
			AsOf:          des.Time(binary.BigEndian.Uint64(data[off:])),
			Capacity:      int(binary.BigEndian.Uint32(data[off+8:])),
			FalsePositive: bitsToFP64(binary.BigEndian.Uint64(data[off+12:])),
			Bits:          int(binary.BigEndian.Uint32(data[off+20:])),
		}
		off += 24
	default:
		return fmt.Errorf("ir: bad sig marker %d", data[off])
	}
	if off != len(data) {
		return fmt.Errorf("ir: %d trailing bytes", len(data)-off)
	}
	return nil
}
