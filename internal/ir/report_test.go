package ir

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/rng"
)

func TestKindString(t *testing.T) {
	if KindFull.String() != "full" || KindMini.String() != "mini" ||
		KindPiggyback.String() != "piggyback" || Kind(9).String() != "unknown" {
		t.Fatal("Kind.String broken")
	}
}

func TestSizeBits(t *testing.T) {
	r := &Report{Kind: KindFull}
	if r.SizeBits() != HeaderBits {
		t.Fatalf("empty report %d bits", r.SizeBits())
	}
	r.Items = make([]db.Update, 10)
	if r.SizeBits() != HeaderBits+10*PerItemBits {
		t.Fatalf("10-item report %d bits", r.SizeBits())
	}
	r.Items = nil
	r.Sig = &SigBlock{Bits: 4096, Capacity: 8}
	if r.SizeBits() != HeaderBits+SigBlockBits+4096 {
		t.Fatalf("sig report %d bits", r.SizeBits())
	}
}

func TestReportValidate(t *testing.T) {
	good := &Report{
		Kind: KindFull, At: des.Time(100), PrevAt: des.Time(50),
		WindowStart: des.Time(10),
		Items:       []db.Update{{ID: 1, At: des.Time(60)}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Report{
		{Kind: Kind(9), At: 100},
		{Kind: KindFull, At: 100, WindowStart: 200},
		{Kind: KindFull, At: 100, PrevAt: 200},
		{Kind: KindFull, At: 100, Sig: &SigBlock{Capacity: 1, Bits: 1}, Items: []db.Update{{ID: 1, At: 50}}},
		{Kind: KindFull, At: 100, Sig: &SigBlock{Capacity: 0, Bits: 1}},
		{Kind: KindFull, At: 100, Sig: &SigBlock{Capacity: 1, Bits: 1, FalsePositive: 1}},
		{Kind: KindFull, At: 100, WindowStart: 10, Items: []db.Update{{ID: 1, At: 5}}},
		{Kind: KindFull, At: 100, WindowStart: 10, Items: []db.Update{{ID: 1, At: 150}}},
		{Kind: KindFull, At: 100, WindowStart: 10, Items: []db.Update{{ID: 1, At: 10}}},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("bad report %d accepted", i)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	cases := []*Report{
		{Kind: KindFull, Seq: 1, At: 1000, PrevAt: 500, WindowStart: 100},
		{Kind: KindMini, Seq: 42, At: 2000, PrevAt: 1500, WindowStart: 1500,
			Items: []db.Update{{ID: 3, At: 1600}, {ID: 99, At: 1999}}},
		{Kind: KindFull, Seq: 7, At: 3000, PrevAt: 2000,
			Sig: &SigBlock{AsOf: 3000, Capacity: 16, FalsePositive: 0.05, Bits: 8192}},
		{Kind: KindPiggyback, Seq: 9, At: 4000, PrevAt: 3500, WindowStart: 3000,
			Items: []db.Update{{ID: 0, At: 3501}}},
	}
	for i, r := range cases {
		got, err := Unmarshal(r.Marshal())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("case %d: round trip\n got %+v\nwant %+v", i, got, r)
		}
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(seed uint64, kindRaw uint8, nItems uint8, withSig bool) bool {
		r := rng.New(seed)
		at := des.Time(r.Uint64n(1 << 40))
		rep := &Report{
			Kind:        Kind(kindRaw % 3),
			Seq:         r.Uint64(),
			At:          at,
			PrevAt:      des.Time(r.Uint64n(uint64(at) + 1)),
			WindowStart: des.Time(r.Uint64n(uint64(at) + 1)),
		}
		if withSig {
			rep.Sig = &SigBlock{
				AsOf:          at,
				Capacity:      1 + r.Intn(100),
				FalsePositive: r.Float64() * 0.5,
				Bits:          1 + r.Intn(1<<16),
			}
		} else {
			for i := 0; i < int(nItems); i++ {
				rep.Items = append(rep.Items, db.Update{
					ID: r.Intn(1 << 20),
					At: des.Time(r.Uint64n(uint64(at) + 1)),
				})
			}
		}
		got, err := Unmarshal(rep.Marshal())
		return err == nil && reflect.DeepEqual(got, rep)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	r := &Report{Kind: KindFull, Seq: 1, At: 1000, WindowStart: 100,
		Items: []db.Update{{ID: 1, At: 200}}}
	wire := r.Marshal()
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Unmarshal(wire[:10]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Unmarshal(wire[:len(wire)-5]); err == nil {
		t.Error("truncated items accepted")
	}
	trailing := append(append([]byte(nil), wire...), 0xFF)
	if _, err := Unmarshal(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
	badMarker := append([]byte(nil), wire...)
	badMarker[len(badMarker)-1] = 7 // sig marker is the final byte here
	if _, err := Unmarshal(badMarker); err == nil {
		t.Error("bad sig marker accepted")
	}
}

func TestWindowTracker(t *testing.T) {
	w := newWindowTracker(3)
	if w.startK(3) != 0 || w.last() != 0 {
		t.Fatal("empty tracker must report zero")
	}
	w.record(10)
	w.record(20)
	if w.startK(3) != 0 {
		t.Fatal("underfilled lookback must report zero")
	}
	if w.startK(2) != 10 {
		t.Fatalf("startK(2) = %v", w.startK(2))
	}
	if w.startK(1) != 20 || w.last() != 20 {
		t.Fatalf("startK(1) = %v", w.startK(1))
	}
	w.record(30)
	if w.startK(3) != 10 {
		t.Fatalf("startK(3) = %v", w.startK(3))
	}
	w.record(40) // 10 falls out
	if w.startK(3) != 20 || w.startK(1) != 40 {
		t.Fatalf("after wrap: startK(3)=%v startK(1)=%v", w.startK(3), w.startK(1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("lookback beyond capacity must panic")
		}
	}()
	w.startK(4)
}

func TestNewWindowTrackerClamps(t *testing.T) {
	w := newWindowTracker(0)
	w.record(5)
	if w.startK(1) != 5 {
		t.Fatal("clamped tracker broken")
	}
}
