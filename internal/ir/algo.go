package ir

import (
	"fmt"
	"sort"

	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/radio"
)

// ServerEnv is the view of the base station that server-side invalidation
// algorithms program against. The core package implements it.
type ServerEnv interface {
	// Now reports the current simulation time.
	Now() des.Time
	// UpdatedSince returns every item updated in (since, now] with its
	// latest update time, appended to buf.
	UpdatedSince(since des.Time, buf []db.Update) []db.Update
	// Broadcast enqueues a report on the downlink at the given MCS index.
	Broadcast(r *Report, mcs int)
	// NewTicker creates (but does not start) a periodic callback.
	NewTicker(period des.Duration, name string, fn func(des.Time)) *des.Ticker
	// AwakeSNRs reports the instantaneous SNR of every awake client; the
	// returned slice is valid until the next ServerEnv call.
	AwakeSNRs() []float64
	// AMC reports the link adaptation policy in force.
	AMC() *radio.AMC
	// DownlinkLoad reports a smoothed recent estimate of downlink
	// utilization in [0, 1], including queued backlog pressure.
	DownlinkLoad() float64
}

// ServerAlgo is one invalidation-report algorithm, server side. It is the
// minimal contract every scheme satisfies: arming a report schedule against
// a ServerEnv and recycling consumed reports. Optional behaviours are
// expressed as separate capability interfaces (Piggybacker below) that a
// host discovers by type assertion — see internal/serve/capabilities for the
// transport-level capability composition built on the same idea.
type ServerAlgo interface {
	// Name reports the scheme's short name (ts, at, sig, bs, uir, tair,
	// lair, hybrid).
	Name() string
	// Start arms the algorithm's report schedule.
	Start(env ServerEnv)
	// Recycle returns a fully consumed report (Broadcast or Piggyback
	// output) to the algorithm for reuse. Callers must drop every
	// reference to the report and its Items afterwards; recycling nil is
	// a no-op. Consumers that retain reports simply never call it.
	Recycle(r *Report)
}

// Piggybacker is the optional server-side capability of attaching small
// invalidation digests to departing unicast data frames. Only the
// traffic-aware schemes (tair, hybrid) provide it; hosts must discover it
// with AsPiggybacker rather than a bare type assertion, because an algorithm
// may structurally carry the method while having the mechanism disabled.
type Piggybacker interface {
	// Piggyback is consulted before every unicast downlink data frame
	// departs; a non-nil report is attached to the frame.
	Piggyback(now des.Time) *Report
}

// piggybackEnabler lets an algorithm that structurally has a Piggyback
// method report whether the mechanism is actually armed (the Adaptive type
// backs tair, lair and hybrid, but only the traffic-aware two piggyback).
type piggybackEnabler interface {
	PiggybackEnabled() bool
}

// AsPiggybacker reports the algorithm's piggyback capability, or nil when
// the scheme never attaches digests to data frames.
func AsPiggybacker(a ServerAlgo) Piggybacker {
	p, ok := a.(Piggybacker)
	if !ok {
		return nil
	}
	if e, ok := a.(piggybackEnabler); ok && !e.PiggybackEnabled() {
		return nil
	}
	return p
}

// reportArena is the per-algorithm free list behind ServerAlgo.Recycle:
// Report structs and their Items backing arrays cycle server → downlink
// queue → client fan-out → arena, so a steady-state run stops allocating
// per report. Everything happens on one simulation goroutine; the arena is
// never shared across simulations.
type reportArena struct {
	freeReports []*Report
	freeItems   [][]db.Update
}

// getReport returns a cleared report.
func (ra *reportArena) getReport() *Report {
	if n := len(ra.freeReports); n > 0 {
		r := ra.freeReports[n-1]
		ra.freeReports = ra.freeReports[:n-1]
		*r = Report{}
		return r
	}
	return &Report{}
}

// takeItems returns a zero-length items buffer, reusing recycled capacity.
func (ra *reportArena) takeItems() []db.Update {
	if n := len(ra.freeItems); n > 0 {
		b := ra.freeItems[n-1]
		ra.freeItems = ra.freeItems[:n-1]
		return b
	}
	return nil
}

// saveItems stores an items buffer's backing array for reuse.
func (ra *reportArena) saveItems(b []db.Update) {
	if cap(b) > 0 {
		ra.freeItems = append(ra.freeItems, b[:0])
	}
}

// sealItems canonicalizes a finished items slice: empty reports carry nil
// Items on the wire (what Unmarshal produces), so an empty buffer goes back
// to the spare list and nil is returned.
func (ra *reportArena) sealItems(b []db.Update) []db.Update {
	if len(b) == 0 {
		ra.saveItems(b)
		return nil
	}
	return b
}

// Recycle implements ServerAlgo.Recycle for every embedding algorithm.
func (ra *reportArena) Recycle(r *Report) {
	if r == nil {
		return
	}
	ra.saveItems(r.Items)
	r.Items = nil
	r.Sig = nil
	ra.freeReports = append(ra.freeReports, r)
}

// Params carries every scheme tunable with literature-conventional defaults.
// Unused fields are ignored by schemes that do not need them.
type Params struct {
	Interval      des.Duration // L: base report period
	WindowReports int          // K: coverage window in report periods (TS family)

	// UIR.
	MiniPerInterval int // m−1 minis are sent between consecutive full reports

	// SIG.
	SigBits          int
	SigCapacity      int
	SigFalsePositive float64

	// BS sizes its bit-sequence hierarchy from the database size.
	NumItems int

	// LAIR.
	Coverage float64 // fraction of awake clients each fast report must reach

	// TAIR.
	IntervalMin   des.Duration
	IntervalMax   des.Duration
	LoadLow       float64 // below this downlink load the interval pins to min
	LoadHigh      float64 // above this it pins to max
	PiggyMinGap   des.Duration
	PiggyMaxItems int
}

// DefaultParams returns the defaults used by the experiment matrix.
func DefaultParams() Params {
	return Params{
		Interval:         20 * des.Second,
		WindowReports:    2,
		MiniPerInterval:  4,
		SigBits:          8192,
		SigCapacity:      16,
		SigFalsePositive: 0.02,
		Coverage:         0.75,
		IntervalMin:      5 * des.Second,
		IntervalMax:      40 * des.Second,
		LoadLow:          0.2,
		LoadHigh:         0.8,
		PiggyMinGap:      500 * des.Millisecond,
		PiggyMaxItems:    32,
	}
}

// Validate reports the first parameter problem.
func (p Params) Validate() error {
	switch {
	case p.Interval <= 0:
		return fmt.Errorf("ir: Interval %v", p.Interval)
	case p.WindowReports < 1:
		return fmt.Errorf("ir: WindowReports %d", p.WindowReports)
	case p.MiniPerInterval < 1:
		return fmt.Errorf("ir: MiniPerInterval %d", p.MiniPerInterval)
	case p.SigBits <= 0 || p.SigCapacity <= 0:
		return fmt.Errorf("ir: sig sizing %d/%d", p.SigBits, p.SigCapacity)
	case p.SigFalsePositive < 0 || p.SigFalsePositive >= 1:
		return fmt.Errorf("ir: SigFalsePositive %v", p.SigFalsePositive)
	case p.Coverage <= 0 || p.Coverage > 1:
		return fmt.Errorf("ir: Coverage %v", p.Coverage)
	case p.IntervalMin <= 0 || p.IntervalMax < p.IntervalMin:
		return fmt.Errorf("ir: interval range [%v, %v]", p.IntervalMin, p.IntervalMax)
	case p.LoadLow < 0 || p.LoadHigh <= p.LoadLow || p.LoadHigh > 1:
		return fmt.Errorf("ir: load band [%v, %v]", p.LoadLow, p.LoadHigh)
	case p.PiggyMinGap < 0 || p.PiggyMaxItems < 1:
		return fmt.Errorf("ir: piggyback params")
	}
	return nil
}

// Names lists the supported scheme names in canonical presentation order.
var Names = []string{"ts", "at", "sig", "bs", "uir", "tair", "lair", "hybrid"}

// New builds the named algorithm.
func New(name string, p Params) (ServerAlgo, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch name {
	case "ts":
		return &TS{p: p}, nil
	case "at":
		return &AT{p: p}, nil
	case "sig":
		return &SIG{p: p}, nil
	case "bs":
		n := p.NumItems
		if n <= 0 {
			n = 1000
		}
		return &BS{p: p, numItems: n}, nil
	case "uir":
		return &UIR{p: p}, nil
	case "tair":
		return newAdaptive(p, true, false), nil
	case "lair":
		return newAdaptive(p, false, true), nil
	case "hybrid":
		return newAdaptive(p, true, true), nil
	}
	return nil, fmt.Errorf("ir: unknown algorithm %q (have %v)", name, Names)
}

// robustMCS is the index classic schemes broadcast at: the most reliable
// (slowest) entry of the table — "no link adaptation for broadcast".
const robustMCS = 0

// sortUpdates orders report items by id for a canonical wire form.
func sortUpdates(items []db.Update) {
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
}
