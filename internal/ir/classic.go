package ir

import (
	"repro/internal/des"
)

// TS is Broadcasting Timestamps (Barbara & Imielinski 1994): every Interval
// the server broadcasts, at the robust rate, the ids and update times of all
// items changed in the last WindowReports intervals.
type TS struct {
	reportArena
	p   Params
	env ServerEnv
	seq uint64
	win *windowTracker
}

// Name implements ServerAlgo.
func (a *TS) Name() string { return "ts" }

// Start implements ServerAlgo.
func (a *TS) Start(env ServerEnv) {
	a.env = env
	a.win = newWindowTracker(a.p.WindowReports)
	env.NewTicker(a.p.Interval, "ir.ts", a.tick).Start()
}

func (a *TS) tick(now des.Time) {
	winStart := a.win.startK(a.p.WindowReports)
	prev := a.win.last()
	items := a.env.UpdatedSince(winStart, a.takeItems())
	sortUpdates(items)
	a.seq++
	a.win.record(now)
	r := a.getReport()
	r.Kind = KindFull
	r.Seq = a.seq
	r.At = now
	r.PrevAt = prev
	r.WindowStart = winStart
	r.Items = a.sealItems(items)
	a.env.Broadcast(r, robustMCS)
}

// AT is Amnesic Terminals (Barbara & Imielinski 1994): each report lists
// only the updates since the previous report, so a single missed report
// forces the client to drop its whole cache.
type AT struct {
	reportArena
	p   Params
	env ServerEnv
	seq uint64
	prv des.Time
}

// Name implements ServerAlgo.
func (a *AT) Name() string { return "at" }

// Start implements ServerAlgo.
func (a *AT) Start(env ServerEnv) {
	a.env = env
	env.NewTicker(a.p.Interval, "ir.at", a.tick).Start()
}

func (a *AT) tick(now des.Time) {
	items := a.env.UpdatedSince(a.prv, a.takeItems())
	sortUpdates(items)
	a.seq++
	prev := a.prv
	a.prv = now
	r := a.getReport()
	r.Kind = KindFull
	r.Seq = a.seq
	r.At = now
	r.PrevAt = prev
	r.WindowStart = prev // amnesic: coverage reaches back exactly one report
	r.Items = a.sealItems(items)
	a.env.Broadcast(r, robustMCS)
}

// SIG is the signature scheme: every Interval a fixed-size block of combined
// item signatures is broadcast. Clients can re-validate after arbitrarily
// long disconnection (the report describes the full database state), paying
// a large fixed report size and occasional false-positive invalidations.
type SIG struct {
	reportArena
	p   Params
	env ServerEnv
	seq uint64
	prv des.Time
}

// Name implements ServerAlgo.
func (a *SIG) Name() string { return "sig" }

// Start implements ServerAlgo.
func (a *SIG) Start(env ServerEnv) {
	a.env = env
	env.NewTicker(a.p.Interval, "ir.sig", a.tick).Start()
}

func (a *SIG) tick(now des.Time) {
	a.seq++
	prev := a.prv
	a.prv = now
	r := a.getReport()
	r.Kind = KindFull
	r.Seq = a.seq
	r.At = now
	r.PrevAt = prev
	r.Sig = &SigBlock{
		AsOf:          now,
		Capacity:      a.p.SigCapacity,
		FalsePositive: a.p.SigFalsePositive,
		Bits:          a.p.SigBits,
	}
	a.env.Broadcast(r, robustMCS)
}

// UIR is Updated Invalidation Reports (Cao 2000): full TS-style reports
// every Interval, with MiniPerInterval−1 small replicated sub-reports in
// between. A client consistent as of the last full report can validate at
// the very next mini instead of waiting out the full interval, cutting the
// average wait from L/2 to L/(2m).
type UIR struct {
	reportArena
	p        Params
	env      ServerEnv
	seq      uint64
	win      *windowTracker
	lastFull des.Time
	prv      des.Time
	nth      int
}

// Name implements ServerAlgo.
func (a *UIR) Name() string { return "uir" }

// Start implements ServerAlgo.
func (a *UIR) Start(env ServerEnv) {
	a.env = env
	a.win = newWindowTracker(a.p.WindowReports)
	sub := des.Duration(int64(a.p.Interval) / int64(a.p.MiniPerInterval))
	if sub <= 0 {
		sub = des.Microsecond
	}
	env.NewTicker(sub, "ir.uir", a.tick).Start()
}

func (a *UIR) tick(now des.Time) {
	a.nth++
	a.seq++
	prev := a.prv
	a.prv = now
	if a.nth%a.p.MiniPerInterval == 0 {
		// Full report: TS window over full-report times.
		winStart := a.win.startK(a.p.WindowReports)
		items := a.env.UpdatedSince(winStart, a.takeItems())
		sortUpdates(items)
		a.win.record(now)
		a.lastFull = now
		r := a.getReport()
		r.Kind = KindFull
		r.Seq = a.seq
		r.At = now
		r.PrevAt = prev
		r.WindowStart = winStart
		r.Items = a.sealItems(items)
		a.env.Broadcast(r, robustMCS)
		return
	}
	// Mini: everything since the last full report. Usable by any client
	// that processed that full report (or a later mini).
	items := a.env.UpdatedSince(a.lastFull, a.takeItems())
	sortUpdates(items)
	r := a.getReport()
	r.Kind = KindMini
	r.Seq = a.seq
	r.At = now
	r.PrevAt = prev
	r.WindowStart = a.lastFull
	r.Items = a.sealItems(items)
	a.env.Broadcast(r, robustMCS)
}

// BS is the Bit-Sequences scheme (Jing, Elmagarmid, Helal & Alonso 1997):
// each report encodes the database's update recency as a hierarchy of bit
// sequences of total size ≈ 2N bits, letting a client disconnected for an
// arbitrary time invalidate exactly — provided no more than half the
// database changed during its absence, beyond which the structure cannot
// localize the changes and the cache must be dropped.
//
// The simulation models the bit-sequence comparison behaviourally through
// the same oracle as SIG (exact change detection, zero false positives)
// with the half-database capacity rule, and sizes the report at 2 bits per
// database item plus the timestamp ladder. DESIGN.md documents the
// substitution.
type BS struct {
	reportArena
	p        Params
	numItems int
	env      ServerEnv
	seq      uint64
	prv      des.Time
}

// Name implements ServerAlgo.
func (a *BS) Name() string { return "bs" }

// Start implements ServerAlgo.
func (a *BS) Start(env ServerEnv) {
	a.env = env
	env.NewTicker(a.p.Interval, "ir.bs", a.tick).Start()
}

func (a *BS) tick(now des.Time) {
	a.seq++
	prev := a.prv
	a.prv = now
	bits := 2*a.numItems + 32*bitsLen(a.numItems)
	r := a.getReport()
	r.Kind = KindFull
	r.Seq = a.seq
	r.At = now
	r.PrevAt = prev
	r.Sig = &SigBlock{
		AsOf:          now,
		Capacity:      a.numItems / 2, // the half-database rule
		FalsePositive: 0,              // bit sequences are exact
		Bits:          bits,
	}
	a.env.Broadcast(r, robustMCS)
}

// bitsLen reports the number of levels in the bit-sequence hierarchy.
func bitsLen(n int) int {
	levels := 0
	for n > 1 {
		n /= 2
		levels++
	}
	return levels
}
