package ir

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/db"
	"repro/internal/des"
)

// TestCoverageWindowEdges pins the coverage-window rule at its exact
// boundaries — the cases a sleeping or disconnected client produces when its
// absence lines up with a report edge to the tick. The rule under test:
// a report covers (WindowStart, At], a client consistent as of
// t >= WindowStart applies it, a full report re-synchronizes anyone else by
// dropping, and everything else is unusable.
func TestCoverageWindowEdges(t *testing.T) {
	cases := []struct {
		name string
		kind Kind
		last des.Time // client's LastConsistent before the report
		at   des.Time // report generation time
		win  des.Time // report WindowStart

		wantOK   bool
		wantDrop bool     // full-report drop-all path taken
		wantLast des.Time // LastConsistent afterwards
	}{
		{
			// A doze that ends exactly at the window boundary: the client's
			// consistency point equals WindowStart, and (WindowStart, At]
			// covers precisely the updates it slept through.
			name: "doze-equals-window-exactly",
			kind: KindMini, last: 100, at: 200, win: 100,
			wantOK: true, wantLast: 200,
		},
		{
			// One tick longer and the chain is broken: a mini cannot prove
			// anything about the uncovered instant.
			name: "doze-one-tick-past-window",
			kind: KindMini, last: 99, at: 200, win: 100,
			wantOK: false, wantLast: 99,
		},
		{
			// The same one-tick gap against a full report re-synchronizes via
			// the safe drop — consistency advances even though coverage failed.
			name: "full-one-tick-past-window",
			kind: KindFull, last: 99, at: 200, win: 100,
			wantOK: true, wantDrop: true, wantLast: 200,
		},
		{
			// A report generated at the very tick the client woke (or
			// reconnected): At equals LastConsistent. Not stale (stale is
			// strictly At < LastConsistent), and trivially inside the window.
			name: "report-at-same-tick-as-wake",
			kind: KindMini, last: 200, at: 200, win: 150,
			wantOK: true, wantLast: 200,
		},
		{
			// One tick earlier than the consistency point is stale: nothing
			// the report lists can matter, even for a full report.
			name: "report-one-tick-before-consistency",
			kind: KindFull, last: 201, at: 200, win: 150,
			wantOK: false, wantLast: 201,
		},
		{
			// Zero-length window, client already there: WindowStart == At ==
			// LastConsistent. Covers no updates but re-asserts consistency.
			name: "zero-length-window-at-consistency",
			kind: KindMini, last: 200, at: 200, win: 200,
			wantOK: true, wantLast: 200,
		},
		{
			// Zero-length window ahead of the client: covers nothing, proves
			// nothing — unusable for a mini.
			name: "zero-length-window-ahead-mini",
			kind: KindPiggyback, last: 150, at: 200, win: 200,
			wantOK: false, wantLast: 150,
		},
		{
			// The same degenerate window on a full report still recovers the
			// client through the drop path.
			name: "zero-length-window-ahead-full",
			kind: KindFull, last: 150, at: 200, win: 200,
			wantOK: true, wantDrop: true, wantLast: 200,
		},
		{
			// The epoch edge: a fresh client (zero state) meets a window that
			// reaches back to the epoch, so it validates without a drop.
			name: "fresh-client-window-from-epoch",
			kind: KindMini, last: 0, at: 200, win: 0,
			wantOK: true, wantLast: 200,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := cache.New(10, 100)
			c.Put(1, 1, des.Time(50))
			var s ClientState
			s.LastConsistent = tc.last
			r := &Report{Kind: tc.kind, At: tc.at, WindowStart: tc.win}
			if got := s.Process(r, c, nil, nil); got != tc.wantOK {
				t.Fatalf("Process = %v, want %v", got, tc.wantOK)
			}
			if s.LastConsistent != tc.wantLast {
				t.Fatalf("LastConsistent = %v, want %v", s.LastConsistent, tc.wantLast)
			}
			if gotDrop := s.Stats.Drops.Value() == 1; gotDrop != tc.wantDrop {
				t.Fatalf("drop-all = %v, want %v", gotDrop, tc.wantDrop)
			}
			if tc.wantDrop != (c.Len() == 0) {
				t.Fatalf("cache len %d inconsistent with drop=%v", c.Len(), tc.wantDrop)
			}
			if !tc.wantOK && c.Len() != 1 {
				t.Fatal("unusable report mutated the cache")
			}
		})
	}
}

// TestCoverageWindowEdgeItemTimes pins the item-level boundary inside an
// applied report: an update at exactly the cached-at tick must NOT
// invalidate (the cached value already reflects it — db.Update.At is the
// version's write time, compared strictly), while one tick later must.
func TestCoverageWindowEdgeItemTimes(t *testing.T) {
	c := cache.New(10, 100)
	c.Put(1, 1, des.Time(100))
	c.Put(2, 1, des.Time(100))
	var s ClientState
	s.LastConsistent = des.Time(100)
	r := &Report{
		Kind: KindMini, At: des.Time(200), WindowStart: des.Time(90),
		Items: []db.Update{
			{ID: 1, At: des.Time(100)}, // == CachedAt: value already current
			{ID: 2, At: des.Time(101)}, // one tick newer: must go
		},
	}
	if !s.Process(r, c, nil, nil) {
		t.Fatal("in-window report must validate")
	}
	if !c.Contains(1) {
		t.Fatal("entry invalidated by an update it already reflects")
	}
	if c.Contains(2) {
		t.Fatal("strictly newer update did not invalidate")
	}
}
