package ir

import (
	"math"

	"repro/internal/des"
)

func fp64bits(f float64) uint64   { return math.Float64bits(f) }
func bitsToFP64(b uint64) float64 { return math.Float64frombits(b) }

// windowTracker remembers the generation times of recent reports so a
// coverage window can be expressed as "everything since the k-th previous
// report" — exact even when the report interval adapts at runtime.
type windowTracker struct {
	times []des.Time
	next  int
	count int
}

// newWindowTracker retains up to capacity report times.
func newWindowTracker(capacity int) *windowTracker {
	if capacity < 1 {
		capacity = 1
	}
	return &windowTracker{times: make([]des.Time, capacity)}
}

// record notes that a report was generated at t.
func (w *windowTracker) record(t des.Time) {
	w.times[w.next] = t
	w.next = (w.next + 1) % len(w.times)
	if w.count < len(w.times) {
		w.count++
	}
}

// startK reports the k-th previous report time, or zero (cover full
// history) while fewer than k reports have been recorded. k must not exceed
// the tracker capacity.
func (w *windowTracker) startK(k int) des.Time {
	if k > len(w.times) {
		panic("ir: windowTracker lookback beyond capacity")
	}
	if w.count < k {
		return 0
	}
	idx := (w.next - k + len(w.times)) % len(w.times)
	return w.times[idx]
}

// last reports the most recent recorded time, or zero if none.
func (w *windowTracker) last() des.Time {
	if w.count == 0 {
		return 0
	}
	return w.startK(1)
}
