package obs

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// LoadMonitor collects live telemetry for a wall-clock load run: fleet
// activity, protocol exchanges, and the fan-out health counters that tell a
// human watching a long soak whether the harness itself is keeping up. The
// client goroutines update it with lock-free atomics; the HTTP handler
// assembles a consistent-enough view. The zero value is inert but safe, like
// SweepMonitor.
type LoadMonitor struct {
	startNS atomic.Int64 // wall clock at Begin, UnixNano

	clients atomic.Int64 // fleet size
	active  atomic.Int64 // clients still running their step schedule

	queries  atomic.Int64 // answers received (successful query exchanges)
	retries  atomic.Int64 // query frames retried after an IO error
	catchups atomic.Int64 // catch-up exchanges, scheduled and recovery
	injects  atomic.Int64 // updates injected through the control plane
	signals  atomic.Int64 // environment-signal pushes
	reports  atomic.Int64 // datagrams delivered to clients
	drops    atomic.Int64 // datagrams dropped by a full per-client channel
	stale    atomic.Int64 // stale cache entries caught by the online sweep
}

// Begin (re)initializes the monitor for a fleet of n clients.
func (m *LoadMonitor) Begin(n int) {
	m.startNS.Store(time.Now().UnixNano())
	m.clients.Store(int64(n))
	m.active.Store(int64(n))
	m.queries.Store(0)
	m.retries.Store(0)
	m.catchups.Store(0)
	m.injects.Store(0)
	m.signals.Store(0)
	m.reports.Store(0)
	m.drops.Store(0)
	m.stale.Store(0)
}

// ClientDone marks one client finished with its step schedule.
func (m *LoadMonitor) ClientDone() { m.active.Add(-1) }

// AddQuery counts one completed query exchange.
func (m *LoadMonitor) AddQuery() { m.queries.Add(1) }

// AddRetries counts query frames retried after an IO error.
func (m *LoadMonitor) AddRetries(n int) { m.retries.Add(int64(n)) }

// AddCatchup counts one catch-up exchange.
func (m *LoadMonitor) AddCatchup() { m.catchups.Add(1) }

// AddInject counts one injected update.
func (m *LoadMonitor) AddInject() { m.injects.Add(1) }

// AddSignals counts one environment-signal push.
func (m *LoadMonitor) AddSignals() { m.signals.Add(1) }

// AddReport counts one datagram delivered to a client.
func (m *LoadMonitor) AddReport() { m.reports.Add(1) }

// AddDrop counts one datagram dropped by a full per-client channel.
func (m *LoadMonitor) AddDrop() { m.drops.Add(1) }

// AddStale counts stale entries caught by the online sweep.
func (m *LoadMonitor) AddStale(n int) { m.stale.Add(int64(n)) }

// LoadSnapshot is a point-in-time JSON-friendly view of a load run.
type LoadSnapshot struct {
	ElapsedSec    float64 `json:"elapsed_sec"`
	Clients       int64   `json:"clients"`
	ActiveClients int64   `json:"active_clients"`
	Queries       int64   `json:"queries"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	Retries       int64   `json:"retries"`
	Catchups      int64   `json:"catchups"`
	Injects       int64   `json:"injects"`
	Signals       int64   `json:"signals"`
	Reports       int64   `json:"reports_delivered"`
	Drops         int64   `json:"reports_dropped"`
	Stale         int64   `json:"stale"`
}

// Snapshot assembles the current view; now is a parameter so tests stay
// deterministic.
func (m *LoadMonitor) Snapshot(now time.Time) LoadSnapshot {
	var elapsed float64
	if startNS := m.startNS.Load(); startNS != 0 {
		elapsed = now.Sub(time.Unix(0, startNS)).Seconds()
		if elapsed <= 0 {
			elapsed = 1e-9
		}
	}
	s := LoadSnapshot{
		ElapsedSec:    elapsed,
		Clients:       m.clients.Load(),
		ActiveClients: m.active.Load(),
		Queries:       m.queries.Load(),
		Retries:       m.retries.Load(),
		Catchups:      m.catchups.Load(),
		Injects:       m.injects.Load(),
		Signals:       m.signals.Load(),
		Reports:       m.reports.Load(),
		Drops:         m.drops.Load(),
		Stale:         m.stale.Load(),
	}
	if elapsed > 0 {
		s.QueriesPerSec = float64(s.Queries) / elapsed
	}
	return s
}

// ServeHTTP serves the snapshot as indented JSON, for mounting under a debug
// mux next to net/http/pprof.
func (m *LoadMonitor) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(m.Snapshot(time.Now()))
}
