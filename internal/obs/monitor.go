package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SweepMonitor collects live telemetry for a multi-cell sweep: work-unit and
// cell completion, simulation events processed, and per-algorithm activity.
// The worker pool updates it with lock-free atomic counters; Snapshot (and
// the HTTP handler wrapping it) assembles a consistent-enough view for a
// human watching a long run. The zero value is inert but safe: Snapshot on
// a monitor whose Begin was never called reports zero elapsed time, zero
// rates, and an unknown (-1) ETA instead of garbage.
type SweepMonitor struct {
	startNS   atomic.Int64 // wall clock at Begin, UnixNano
	workers   atomic.Int64
	busy      atomic.Int64 // workers currently executing a unit
	unitsDone atomic.Int64
	units     atomic.Int64
	cellsDone atomic.Int64
	cells     atomic.Int64
	events    atomic.Uint64 // simulation events processed, all algorithms
	epochs    atomic.Uint64 // synchronization epochs of parallel replications

	mu      sync.RWMutex
	byAlgo  map[string]*algoCounters
	rollups map[string]map[float64]*rollupWindow // algo → window start → aggregate
}

type algoCounters struct {
	units  atomic.Int64
	events atomic.Uint64
}

// Begin (re)initializes the monitor for a sweep of totalUnits work units
// across totalCells cells, executed by workers goroutines. algos seeds the
// per-algorithm breakdown; unknown algorithms reported later are added
// on demand.
func (m *SweepMonitor) Begin(workers, totalUnits, totalCells int, algos []string) {
	m.startNS.Store(time.Now().UnixNano())
	m.workers.Store(int64(workers))
	m.busy.Store(0)
	m.unitsDone.Store(0)
	m.units.Store(int64(totalUnits))
	m.cellsDone.Store(0)
	m.cells.Store(int64(totalCells))
	m.events.Store(0)
	m.epochs.Store(0)
	m.mu.Lock()
	m.byAlgo = make(map[string]*algoCounters, len(algos))
	for _, a := range algos {
		m.byAlgo[a] = &algoCounters{}
	}
	m.rollups = nil
	m.mu.Unlock()
}

func (m *SweepMonitor) algo(name string) *algoCounters {
	m.mu.RLock()
	c := m.byAlgo[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.byAlgo[name]; c == nil {
		if m.byAlgo == nil {
			m.byAlgo = make(map[string]*algoCounters)
		}
		c = &algoCounters{}
		m.byAlgo[name] = c
	}
	return c
}

// UnitStart marks one worker busy on a unit.
func (m *SweepMonitor) UnitStart() { m.busy.Add(1) }

// UnitDone marks one replication unit of the named algorithm finished.
func (m *SweepMonitor) UnitDone(algoName string) {
	m.busy.Add(-1)
	m.unitsDone.Add(1)
	m.algo(algoName).units.Add(1)
}

// CellDone marks one sweep cell (all replications of one point × algorithm)
// finished.
func (m *SweepMonitor) CellDone() { m.cellsDone.Add(1) }

// AddEvents accumulates simulation events processed on behalf of the named
// algorithm. Called from des-scheduler pulses, so it must stay cheap.
func (m *SweepMonitor) AddEvents(algoName string, n uint64) {
	m.events.Add(n)
	m.algo(algoName).events.Add(n)
}

// AddEpochs accumulates synchronization epochs completed by parallel
// (epoch-synchronized) replications; serial replications contribute zero.
// Together with Events this exposes the epoch granularity — events per
// epoch — the key health number for the parallel mode (too few events per
// epoch means barrier overhead is eating the speedup).
func (m *SweepMonitor) AddEpochs(n uint64) { m.epochs.Add(n) }

// AlgoSnapshot is the per-algorithm slice of a Snapshot.
type AlgoSnapshot struct {
	Algo      string `json:"algo"`
	UnitsDone int64  `json:"units_done"`
	Events    uint64 `json:"events"`
}

// Snapshot is a point-in-time JSON-friendly view of the sweep.
type Snapshot struct {
	ElapsedSec  float64 `json:"elapsed_sec"`
	Workers     int64   `json:"workers"`
	BusyWorkers int64   `json:"busy_workers"`
	// Utilization is busy/workers averaged at this instant, 0..1.
	Utilization  float64 `json:"utilization"`
	UnitsDone    int64   `json:"units_done"`
	UnitsTotal   int64   `json:"units_total"`
	UnitsPerSec  float64 `json:"units_per_sec"`
	CellsDone    int64   `json:"cells_done"`
	CellsTotal   int64   `json:"cells_total"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Epochs and EventsPerEpoch describe parallel replications only; both
	// stay zero/absent for all-serial sweeps.
	Epochs         uint64  `json:"epochs,omitempty"`
	EventsPerEpoch float64 `json:"events_per_epoch,omitempty"`
	// ETASec extrapolates the remaining units at the observed rate; -1
	// until the first unit completes.
	ETASec float64        `json:"eta_sec"`
	Algos  []AlgoSnapshot `json:"algos"`
	// Rollups holds the retained per-algorithm tumbling windows of simulated
	// time (absent until the first window closes).
	Rollups []RollupSnapshot `json:"rollups,omitempty"`
}

// Snapshot assembles the current view. now is usually time.Now(); it is a
// parameter so tests stay deterministic.
func (m *SweepMonitor) Snapshot(now time.Time) Snapshot {
	startNS := m.startNS.Load()
	var elapsed float64
	if startNS != 0 { // Begin was called; 0 means the zero-value monitor
		elapsed = now.Sub(time.Unix(0, startNS)).Seconds()
		if elapsed <= 0 {
			elapsed = 1e-9
		}
	}
	s := Snapshot{
		ElapsedSec:  elapsed,
		Workers:     m.workers.Load(),
		BusyWorkers: m.busy.Load(),
		UnitsDone:   m.unitsDone.Load(),
		UnitsTotal:  m.units.Load(),
		CellsDone:   m.cellsDone.Load(),
		CellsTotal:  m.cells.Load(),
		Events:      m.events.Load(),
		Epochs:      m.epochs.Load(),
		ETASec:      -1,
	}
	if s.Epochs > 0 {
		s.EventsPerEpoch = float64(s.Events) / float64(s.Epochs)
	}
	if s.Workers > 0 {
		s.Utilization = float64(s.BusyWorkers) / float64(s.Workers)
	}
	if elapsed > 0 {
		s.UnitsPerSec = float64(s.UnitsDone) / elapsed
		s.EventsPerSec = float64(s.Events) / elapsed
		if s.UnitsDone > 0 && s.UnitsTotal > s.UnitsDone {
			s.ETASec = float64(s.UnitsTotal-s.UnitsDone) / s.UnitsPerSec
		} else if s.UnitsDone >= s.UnitsTotal {
			s.ETASec = 0
		}
	}
	m.mu.RLock()
	for name, c := range m.byAlgo {
		s.Algos = append(s.Algos, AlgoSnapshot{
			Algo:      name,
			UnitsDone: c.units.Load(),
			Events:    c.events.Load(),
		})
	}
	s.Rollups = m.rollupSnapshots()
	m.mu.RUnlock()
	sort.Slice(s.Algos, func(i, j int) bool { return s.Algos[i].Algo < s.Algos[j].Algo })
	return s
}

// ServeHTTP serves the snapshot as indented JSON, for mounting under a debug
// mux next to net/http/pprof.
func (m *SweepMonitor) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(m.Snapshot(time.Now()))
}
