package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event type tags used as the "ev" field of JSONL trace lines.
const (
	EvReportBroadcast = "report"
	EvQuery           = "query"
	EvCache           = "cache"
	EvFrameTx         = "frame_tx"
	EvSleepWake       = "sleep_wake"
	EvDBUpdate        = "db_update"
	EvReportProcess   = "report_process"
	EvHandoff         = "handoff"
	EvOutage          = "outage"
	EvReportFault     = "report_fault"
	EvQueryRetry      = "query_retry"
	EvDisconnect      = "disconnect"
	EvRecovery        = "recovery"
)

// JSONL is a Tracer that appends one JSON object per event to a writer. It
// buffers internally; call Close (or Flush) before reading the output. Safe
// for concurrent use.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // underlying closer, if the writer has one
	enc *json.Encoder
	n   uint64
	err error
}

// NewJSONL wraps w in a JSONL trace sink. If w is an io.Closer, Close
// closes it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 1<<16)
	s := &JSONL{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Events reports how many events have been written.
func (s *JSONL) Events() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err reports the first write error, if any.
func (s *JSONL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush writes buffered events through to the underlying writer.
func (s *JSONL) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Close flushes, fsyncs (when the underlying writer is a file) and closes
// the underlying writer (when closable). The sync matters for traces of
// runs that are about to die — fail-fast cancellation, a crashing sweep —
// where the kernel page cache would otherwise be the only copy of the tail.
func (s *JSONL) Close() error {
	err := s.Flush()
	if f, ok := s.c.(interface{ Sync() error }); ok {
		if serr := f.Sync(); serr != nil && err == nil {
			err = serr
		}
	}
	if s.c != nil {
		if cerr := s.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

func (s *JSONL) emit(v any) {
	s.mu.Lock()
	if err := s.enc.Encode(v); err != nil && s.err == nil {
		s.err = err
	}
	s.n++
	s.mu.Unlock()
}

// The per-event wrappers prepend the "ev" type tag; the event's own tags
// (starting with "t") carry the rest of the line.

// ReportBroadcast implements Tracer.
func (s *JSONL) ReportBroadcast(e ReportBroadcastEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		ReportBroadcastEvent
	}{EvReportBroadcast, e})
}

// Query implements Tracer.
func (s *JSONL) Query(e QueryEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		QueryEvent
	}{EvQuery, e})
}

// Cache implements Tracer.
func (s *JSONL) Cache(e CacheEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		CacheEvent
	}{EvCache, e})
}

// FrameTx implements Tracer.
func (s *JSONL) FrameTx(e FrameTxEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		FrameTxEvent
	}{EvFrameTx, e})
}

// SleepWake implements Tracer.
func (s *JSONL) SleepWake(e SleepWakeEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		SleepWakeEvent
	}{EvSleepWake, e})
}

// DBUpdate implements Tracer.
func (s *JSONL) DBUpdate(e DBUpdateEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		DBUpdateEvent
	}{EvDBUpdate, e})
}

// ReportProcess implements Tracer.
func (s *JSONL) ReportProcess(e ReportProcessEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		ReportProcessEvent
	}{EvReportProcess, e})
}

// Handoff implements Tracer.
func (s *JSONL) Handoff(e HandoffEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		HandoffEvent
	}{EvHandoff, e})
}

// Outage implements Tracer.
func (s *JSONL) Outage(e OutageEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		OutageEvent
	}{EvOutage, e})
}

// ReportFault implements Tracer.
func (s *JSONL) ReportFault(e ReportFaultEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		ReportFaultEvent
	}{EvReportFault, e})
}

// QueryRetry implements Tracer.
func (s *JSONL) QueryRetry(e QueryRetryEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		QueryRetryEvent
	}{EvQueryRetry, e})
}

// Disconnect implements Tracer.
func (s *JSONL) Disconnect(e DisconnectEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		DisconnectEvent
	}{EvDisconnect, e})
}

// Recovery implements Tracer.
func (s *JSONL) Recovery(e RecoveryEvent) {
	s.emit(struct {
		Ev string `json:"ev"`
		RecoveryEvent
	}{EvRecovery, e})
}

// Decode parses one JSONL trace line back into its typed event. The first
// return value is one of the *Event structs (by value): ReportBroadcastEvent,
// QueryEvent, CacheEvent, FrameTxEvent, SleepWakeEvent, DBUpdateEvent or
// ReportProcessEvent.
func Decode(line []byte) (any, error) {
	var tag struct {
		Ev string `json:"ev"`
	}
	if err := json.Unmarshal(line, &tag); err != nil {
		return nil, fmt.Errorf("obs: bad trace line: %w", err)
	}
	unmarshal := func(v any) (any, error) {
		if err := json.Unmarshal(line, v); err != nil {
			return nil, fmt.Errorf("obs: bad %s event: %w", tag.Ev, err)
		}
		return v, nil
	}
	switch tag.Ev {
	case EvReportBroadcast:
		v, err := unmarshal(&ReportBroadcastEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*ReportBroadcastEvent), nil
	case EvQuery:
		v, err := unmarshal(&QueryEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*QueryEvent), nil
	case EvCache:
		v, err := unmarshal(&CacheEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*CacheEvent), nil
	case EvFrameTx:
		v, err := unmarshal(&FrameTxEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*FrameTxEvent), nil
	case EvSleepWake:
		v, err := unmarshal(&SleepWakeEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*SleepWakeEvent), nil
	case EvDBUpdate:
		v, err := unmarshal(&DBUpdateEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*DBUpdateEvent), nil
	case EvReportProcess:
		v, err := unmarshal(&ReportProcessEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*ReportProcessEvent), nil
	case EvHandoff:
		v, err := unmarshal(&HandoffEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*HandoffEvent), nil
	case EvOutage:
		v, err := unmarshal(&OutageEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*OutageEvent), nil
	case EvReportFault:
		v, err := unmarshal(&ReportFaultEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*ReportFaultEvent), nil
	case EvQueryRetry:
		v, err := unmarshal(&QueryRetryEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*QueryRetryEvent), nil
	case EvDisconnect:
		v, err := unmarshal(&DisconnectEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*DisconnectEvent), nil
	case EvRecovery:
		v, err := unmarshal(&RecoveryEvent{})
		if err != nil {
			return nil, err
		}
		return *v.(*RecoveryEvent), nil
	}
	return nil, fmt.Errorf("obs: unknown event type %q", tag.Ev)
}

// ReadJSONL decodes an entire JSONL trace stream, tolerating a torn final
// line (a crashed writer). Blank lines are skipped.
func ReadJSONL(r io.Reader) ([]any, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var out []any
	for sc.Scan() {
		line := sc.Bytes()
		trimmed := false
		for _, b := range line {
			if b != ' ' && b != '\t' {
				trimmed = true
				break
			}
		}
		if len(line) == 0 || !trimmed {
			continue
		}
		ev, err := Decode(line)
		if err != nil {
			// A torn final line is a crash artifact, not corruption.
			if !sc.Scan() {
				break
			}
			return nil, fmt.Errorf("obs: line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Ring is a Tracer that keeps the last N events in memory, for live
// inspection of a running simulation without unbounded growth. Safe for
// concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []any
	next  int
	total uint64
	byEv  [13]uint64 // per-type counts, indexed by evOrder position
}

var evOrder = [...]string{EvReportBroadcast, EvQuery, EvCache, EvFrameTx,
	EvSleepWake, EvDBUpdate, EvReportProcess, EvHandoff,
	EvOutage, EvReportFault, EvQueryRetry, EvDisconnect, EvRecovery}

// NewRing builds a ring sink holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic("obs: ring capacity must be positive")
	}
	return &Ring{buf: make([]any, 0, capacity)}
}

func (r *Ring) add(i int, e any) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.byEv[i]++
	r.mu.Unlock()
}

// Total reports how many events have been observed (including overwritten
// ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Counts reports the per-event-type totals keyed by the JSONL "ev" tags.
func (r *Ring) Counts() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(evOrder))
	for i, name := range evOrder {
		out[name] = r.byEv[i]
	}
	return out
}

// Snapshot returns the buffered events, oldest first.
func (r *Ring) Snapshot() []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]any, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// ReportBroadcast implements Tracer.
func (r *Ring) ReportBroadcast(e ReportBroadcastEvent) { r.add(0, e) }

// Query implements Tracer.
func (r *Ring) Query(e QueryEvent) { r.add(1, e) }

// Cache implements Tracer.
func (r *Ring) Cache(e CacheEvent) { r.add(2, e) }

// FrameTx implements Tracer.
func (r *Ring) FrameTx(e FrameTxEvent) { r.add(3, e) }

// SleepWake implements Tracer.
func (r *Ring) SleepWake(e SleepWakeEvent) { r.add(4, e) }

// DBUpdate implements Tracer.
func (r *Ring) DBUpdate(e DBUpdateEvent) { r.add(5, e) }

// ReportProcess implements Tracer.
func (r *Ring) ReportProcess(e ReportProcessEvent) { r.add(6, e) }

// Handoff implements Tracer.
func (r *Ring) Handoff(e HandoffEvent) { r.add(7, e) }

// Outage implements Tracer.
func (r *Ring) Outage(e OutageEvent) { r.add(8, e) }

// ReportFault implements Tracer.
func (r *Ring) ReportFault(e ReportFaultEvent) { r.add(9, e) }

// QueryRetry implements Tracer.
func (r *Ring) QueryRetry(e QueryRetryEvent) { r.add(10, e) }

// Disconnect implements Tracer.
func (r *Ring) Disconnect(e DisconnectEvent) { r.add(11, e) }

// Recovery implements Tracer.
func (r *Ring) Recovery(e RecoveryEvent) { r.add(12, e) }
