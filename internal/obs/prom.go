package obs

import (
	"fmt"
	"net/http"
	"sort"
	"time"
)

// MetricsHandler returns an http.Handler serving the monitor's state in
// Prometheus text exposition format via the shared obs.PromText writer.
// Sweep-level counters come from the atomic fast path; per-algorithm rollup
// gauges reflect the most recent retained window of simulated time.
func (m *SweepMonitor) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var b PromText
		s := m.Snapshot(time.Now())

		gauge := b.Gauge
		counter := b.Counter
		counter("wdc_sweep_units_done", "Replication work units completed.", float64(s.UnitsDone))
		gauge("wdc_sweep_units_total", "Replication work units in the sweep.", float64(s.UnitsTotal))
		counter("wdc_sweep_cells_done", "Sweep cells (point x algorithm) completed.", float64(s.CellsDone))
		gauge("wdc_sweep_cells_total", "Sweep cells in the sweep.", float64(s.CellsTotal))
		counter("wdc_sweep_events_total", "Simulation events executed across all algorithms.", float64(s.Events))
		gauge("wdc_sweep_busy_workers", "Workers currently executing a unit.", float64(s.BusyWorkers))
		gauge("wdc_sweep_workers", "Worker pool size.", float64(s.Workers))
		gauge("wdc_sweep_elapsed_seconds", "Wall-clock seconds since the sweep began.", s.ElapsedSec)

		b.Head("wdc_algo_units_done", "Replication units completed per algorithm.", "counter")
		for _, a := range s.Algos {
			b.Sample("wdc_algo_units_done", fmt.Sprintf("algo=%q", a.Algo), float64(a.UnitsDone))
		}
		b.Head("wdc_algo_events_total", "Simulation events executed per algorithm.", "counter")
		for _, a := range s.Algos {
			b.Sample("wdc_algo_events_total", fmt.Sprintf("algo=%q", a.Algo), float64(a.Events))
		}

		// Latest retained rollup window per algorithm: counters over the
		// window plus the delay quantiles from the merged sketch.
		latest := map[string]RollupSnapshot{}
		for _, r := range s.Rollups { // sorted by (algo, start): last wins
			latest[r.Algo] = r
		}
		algos := make([]string, 0, len(latest))
		for a := range latest {
			algos = append(algos, a)
		}
		sort.Strings(algos)
		rollupGauge := func(name, help string, get func(RollupSnapshot) float64) {
			b.Head(name, help, "gauge")
			for _, a := range algos {
				b.Sample(name, fmt.Sprintf("algo=%q", a), get(latest[a]))
			}
		}
		rollupGauge("wdc_rollup_window_start_seconds", "Simulated start of the latest rollup window.",
			func(r RollupSnapshot) float64 { return r.StartSec })
		rollupGauge("wdc_rollup_queries", "Queries issued in the latest rollup window.",
			func(r RollupSnapshot) float64 { return float64(r.Queries) })
		rollupGauge("wdc_rollup_answers", "Queries answered in the latest rollup window.",
			func(r RollupSnapshot) float64 { return float64(r.Answers) })
		rollupGauge("wdc_rollup_hits", "Cache hits in the latest rollup window.",
			func(r RollupSnapshot) float64 { return float64(r.Hits) })
		rollupGauge("wdc_rollup_stale_checks", "Consistency checks in the latest rollup window.",
			func(r RollupSnapshot) float64 { return float64(r.StaleChecks) })
		rollupGauge("wdc_rollup_stale_violations", "Stale answers detected in the latest rollup window.",
			func(r RollupSnapshot) float64 { return float64(r.StaleViolations) })
		rollupGauge("wdc_rollup_reports", "Invalidation reports decoded in the latest rollup window.",
			func(r RollupSnapshot) float64 { return float64(r.Reports) })
		rollupGauge("wdc_rollup_events_per_sim_second", "DES events per simulated second in the latest rollup window.",
			func(r RollupSnapshot) float64 { return r.EventsPerSimSec })

		b.Head("wdc_rollup_delay_seconds", "Query-delay quantiles of the latest rollup window (-1 when no answers).", "gauge")
		for _, a := range algos {
			r := latest[a]
			for _, qv := range []struct {
				q string
				v float64
			}{{"0.5", r.DelayP50}, {"0.9", r.DelayP90}, {"0.99", r.DelayP99}, {"0.999", r.DelayP999}} {
				b.Sample("wdc_rollup_delay_seconds", fmt.Sprintf("algo=%q,quantile=%q", a, qv.q), qv.v)
			}
		}
		b.ServeHTTP(w, req)
	})
}
