// Package obs is the simulator's observability layer: typed event tracing,
// trace sinks, and live sweep telemetry.
//
// The design splits into three pieces:
//
//   - Tracer: a typed event interface the simulation substrates (des, core,
//     ir, cache, mac, db) emit into. Every emission site guards with a plain
//     nil check, so a disabled tracer costs a single predictable branch and
//     zero allocations — the overhead guard in the top-level benchmarks
//     (BenchmarkTracerOverhead) keeps it that way.
//   - Sinks: JSONL (one JSON object per event, replayable via Decode) and
//     Ring (bounded in-memory buffer for live inspection). Both are safe for
//     concurrent use, because parallel replications may share one sink.
//   - SweepMonitor: atomic run-telemetry counters for a multi-cell sweep,
//     served as a JSON snapshot over HTTP next to net/http/pprof.
//
// Event timestamps are simulation time (des.Time, integer microseconds) and
// appear on the wire as the field "t"; all other fields are event-specific
// and documented in the README's Observability section.
package obs

import "repro/internal/des"

// CacheOp names for the CacheEvent.Op field.
const (
	CacheInvalidate = "invalidate" // targeted invalidation by a report
	CacheEvict      = "evict"      // capacity eviction
	CacheFlush      = "flush"      // whole-cache drop (coverage loss, sig overflow)
)

// Carrier names for the ReportBroadcastEvent.Carrier field: how the report
// reached the air.
const (
	CarrierIR         = "ir"         // standalone broadcast report frame
	CarrierResponse   = "response"   // piggybacked on a query response
	CarrierBackground = "background" // piggybacked on background traffic
	CarrierCatchup    = "catchup"    // unicast catch-up report after a disconnection
)

// ReportProcess outcomes.
const (
	ReportApplied  = "applied"  // report validated the cache
	ReportUnusable = "unusable" // mini/piggyback outside the coverage window
	ReportDropAll  = "drop"     // full report forced a cache flush
)

// ReportBroadcastEvent records one invalidation report leaving the server,
// whether as a standalone broadcast frame (Carrier "ir") or piggybacked on a
// unicast data frame (Carrier "response" or "background").
type ReportBroadcastEvent struct {
	At       des.Time `json:"t"`
	Cell     int      `json:"cell,omitempty"` // originating cell (0 in single-cell runs)
	Seq      uint64   `json:"seq"`
	Kind     string   `json:"kind"` // full | mini | piggyback
	Carrier  string   `json:"carrier"`
	MCS      int      `json:"mcs"`
	SizeBits int      `json:"size_bits"`
	// WindowStart is the report's coverage guarantee; Items lists the
	// invalidated ids (empty for signature reports).
	WindowStart des.Time `json:"window_start"`
	Sig         bool     `json:"sig,omitempty"`
	Items       []int    `json:"items,omitempty"`
}

// QueryEvent records one query resolution: a cache hit served locally or a
// miss answered by a downlink response.
type QueryEvent struct {
	At       des.Time `json:"t"`
	Client   int      `json:"client"`
	Cell     int      `json:"cell,omitempty"` // serving cell at answer time
	Item     int      `json:"item"`
	Hit      bool     `json:"hit"`
	DelaySec float64  `json:"delay_sec"` // issue → answer, seconds
}

// CacheEvent records one cache mutation. For Op CacheFlush, Item is -1 and
// Count carries the number of entries dropped.
type CacheEvent struct {
	At     des.Time `json:"t"`
	Client int      `json:"client"`
	Op     string   `json:"op"`
	Item   int      `json:"item"`
	Count  int      `json:"count,omitempty"`
}

// FrameTxEvent records one completed downlink transmission attempt
// (retransmissions emit one event each, with Retries counting prior
// attempts). MCS is the payload scheme link adaptation picked.
type FrameTxEvent struct {
	At      des.Time     `json:"t"`
	Cell    int          `json:"cell,omitempty"` // transmitting cell
	Kind    string       `json:"kind"`           // ir | response | background
	Dest    int          `json:"dest"`           // client id, -1 for broadcast
	MCS     int          `json:"mcs"`
	Bits    int          `json:"bits"`
	Airtime des.Duration `json:"airtime_us"`
	OK      bool         `json:"ok"`
	Retries int          `json:"retries"`
}

// SleepWakeEvent records a client power-state transition.
type SleepWakeEvent struct {
	At     des.Time `json:"t"`
	Client int      `json:"client"`
	Awake  bool     `json:"awake"`
}

// DBUpdateEvent records one server database update.
type DBUpdateEvent struct {
	At      des.Time `json:"t"`
	Item    int      `json:"item"`
	Version uint64   `json:"version"`
}

// ReportProcessEvent records a client's outcome for one decoded report:
// whether it validated the cache, was unusable (coverage chain broken), or
// forced a full drop.
type ReportProcessEvent struct {
	At      des.Time `json:"t"`
	Client  int      `json:"client"`
	Seq     uint64   `json:"seq"`
	Kind    string   `json:"kind"`
	Outcome string   `json:"outcome"`
}

// HandoffEvent records a client's re-association from one cell to another.
// Flushed reports whether the handoff policy dropped the client's cache.
type HandoffEvent struct {
	At      des.Time `json:"t"`
	Client  int      `json:"client"`
	From    int      `json:"from"`
	To      int      `json:"to"`
	Flushed bool     `json:"flushed,omitempty"`
}

// ReportFault modes for the ReportFaultEvent.Mode field.
const (
	ReportFaultSuppressed = "suppressed" // outage swallowed the broadcast at the server
	ReportFaultLost       = "lost"       // frame destroyed in transit, nobody heard it
	ReportFaultTruncated  = "truncated"  // frame corrupted: airtime paid, CRC failed
)

// Recovery "via" names for the RecoveryEvent.Via field: what re-established
// cache consistency after a disconnection.
const (
	RecoveryViaFlush   = "flush"   // reconnect dropped the cache immediately
	RecoveryViaReport  = "report"  // a regular report's window covered the gap
	RecoveryViaCatchup = "catchup" // a unicast catch-up report closed the gap
)

// OutageEvent records a base-station outage edge: Down true when the cell
// goes dark, false when it comes back.
type OutageEvent struct {
	At   des.Time `json:"t"`
	Cell int      `json:"cell"`
	Down bool     `json:"down"`
}

// ReportFaultEvent records an injected fault on one standalone invalidation
// report: suppressed at a dark base station, lost in transit, or truncated.
type ReportFaultEvent struct {
	At   des.Time `json:"t"`
	Cell int      `json:"cell"`
	Seq  uint64   `json:"seq"`
	Mode string   `json:"mode"`
}

// QueryRetryEvent records one client-side request timeout firing: Attempt is
// the number of consecutive timeouts so far, and GaveUp reports that the
// retry budget is exhausted and the query returns to waiting for a report.
type QueryRetryEvent struct {
	At      des.Time `json:"t"`
	Client  int      `json:"client"`
	Item    int      `json:"item"`
	Attempt int      `json:"attempt"`
	GaveUp  bool     `json:"gave_up,omitempty"`
}

// DisconnectEvent records an extended client disconnection edge: Down true
// when the radio drops, false on reconnect.
type DisconnectEvent struct {
	At     des.Time `json:"t"`
	Client int      `json:"client"`
	Down   bool     `json:"down"`
}

// RecoveryEvent records the completion of post-disconnection recovery: the
// client's cache is consistent again. DelaySec measures reconnect → recovery.
type RecoveryEvent struct {
	At       des.Time `json:"t"`
	Client   int      `json:"client"`
	Policy   string   `json:"policy"`
	Via      string   `json:"via"`
	DelaySec float64  `json:"delay_sec"`
}

// Tracer observes typed simulation events. Implementations must be safe for
// concurrent use: parallel replications of one configuration share a single
// tracer. All emission sites treat a nil Tracer as "tracing disabled".
type Tracer interface {
	ReportBroadcast(e ReportBroadcastEvent)
	Query(e QueryEvent)
	Cache(e CacheEvent)
	FrameTx(e FrameTxEvent)
	SleepWake(e SleepWakeEvent)
	DBUpdate(e DBUpdateEvent)
	ReportProcess(e ReportProcessEvent)
	Handoff(e HandoffEvent)
	Outage(e OutageEvent)
	ReportFault(e ReportFaultEvent)
	QueryRetry(e QueryRetryEvent)
	Disconnect(e DisconnectEvent)
	Recovery(e RecoveryEvent)
}

// Base is a no-op Tracer meant for embedding, so consumers interested in a
// single event type (like cmd/wdctrace) override one method.
type Base struct{}

// ReportBroadcast implements Tracer.
func (Base) ReportBroadcast(ReportBroadcastEvent) {}

// Query implements Tracer.
func (Base) Query(QueryEvent) {}

// Cache implements Tracer.
func (Base) Cache(CacheEvent) {}

// FrameTx implements Tracer.
func (Base) FrameTx(FrameTxEvent) {}

// SleepWake implements Tracer.
func (Base) SleepWake(SleepWakeEvent) {}

// DBUpdate implements Tracer.
func (Base) DBUpdate(DBUpdateEvent) {}

// ReportProcess implements Tracer.
func (Base) ReportProcess(ReportProcessEvent) {}

// Handoff implements Tracer.
func (Base) Handoff(HandoffEvent) {}

// Outage implements Tracer.
func (Base) Outage(OutageEvent) {}

// ReportFault implements Tracer.
func (Base) ReportFault(ReportFaultEvent) {}

// QueryRetry implements Tracer.
func (Base) QueryRetry(QueryRetryEvent) {}

// Disconnect implements Tracer.
func (Base) Disconnect(DisconnectEvent) {}

// Recovery implements Tracer.
func (Base) Recovery(RecoveryEvent) {}

// tee fans every event out to several tracers in order.
type tee struct{ ts []Tracer }

// Tee returns a Tracer that forwards every event to each of the given
// tracers in order. Nil entries are dropped; with zero or one non-nil
// tracers the input is returned directly.
func Tee(tracers ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &tee{ts: kept}
}

func (t *tee) ReportBroadcast(e ReportBroadcastEvent) {
	for _, s := range t.ts {
		s.ReportBroadcast(e)
	}
}

func (t *tee) Query(e QueryEvent) {
	for _, s := range t.ts {
		s.Query(e)
	}
}

func (t *tee) Cache(e CacheEvent) {
	for _, s := range t.ts {
		s.Cache(e)
	}
}

func (t *tee) FrameTx(e FrameTxEvent) {
	for _, s := range t.ts {
		s.FrameTx(e)
	}
}

func (t *tee) SleepWake(e SleepWakeEvent) {
	for _, s := range t.ts {
		s.SleepWake(e)
	}
}

func (t *tee) DBUpdate(e DBUpdateEvent) {
	for _, s := range t.ts {
		s.DBUpdate(e)
	}
}

func (t *tee) ReportProcess(e ReportProcessEvent) {
	for _, s := range t.ts {
		s.ReportProcess(e)
	}
}

func (t *tee) Handoff(e HandoffEvent) {
	for _, s := range t.ts {
		s.Handoff(e)
	}
}

func (t *tee) Outage(e OutageEvent) {
	for _, s := range t.ts {
		s.Outage(e)
	}
}

func (t *tee) ReportFault(e ReportFaultEvent) {
	for _, s := range t.ts {
		s.ReportFault(e)
	}
}

func (t *tee) QueryRetry(e QueryRetryEvent) {
	for _, s := range t.ts {
		s.QueryRetry(e)
	}
}

func (t *tee) Disconnect(e DisconnectEvent) {
	for _, s := range t.ts {
		s.Disconnect(e)
	}
}

func (t *tee) Recovery(e RecoveryEvent) {
	for _, s := range t.ts {
		s.Recovery(e)
	}
}
