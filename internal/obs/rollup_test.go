package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func testFlush(algo string, start, end float64, cell int, delays ...float64) RollupFlush {
	c := RollupCell{Cell: cell, Queries: uint64(len(delays)), Answers: uint64(len(delays))}
	if len(delays) > 0 {
		c.Delay = metrics.NewDelaySketch()
		for _, d := range delays {
			c.Delay.Observe(d)
			if d < 1 {
				c.Hits++
			}
		}
	}
	return RollupFlush{Algo: algo, Start: start, End: end, Events: 100, Cells: []RollupCell{c}}
}

// TestSweepMonitorZeroValueSnapshot pins the nil-guard: Snapshot on a
// monitor whose Begin was never called must report zeros and an unknown
// ETA, not an elapsed time computed from the Unix epoch.
func TestSweepMonitorZeroValueSnapshot(t *testing.T) {
	var m SweepMonitor
	s := m.Snapshot(time.Now())
	if s.ElapsedSec != 0 {
		t.Fatalf("ElapsedSec = %v on a never-begun monitor, want 0", s.ElapsedSec)
	}
	if s.UnitsPerSec != 0 || s.EventsPerSec != 0 {
		t.Fatalf("rates = %v/%v on a never-begun monitor, want 0/0", s.UnitsPerSec, s.EventsPerSec)
	}
	if s.ETASec != -1 {
		t.Fatalf("ETASec = %v on a never-begun monitor, want -1", s.ETASec)
	}
	// The HTTP path must work too, and declare its content type.
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/sweep", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var out Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("snapshot body is not JSON: %v", err)
	}
}

// TestMonitorRollupAggregation checks that flushes sharing an (algo, window
// start) merge — counters add, sketches merge — while distinct windows and
// algorithms stay separate, and that eviction keeps only the newest windows.
func TestMonitorRollupAggregation(t *testing.T) {
	var m SweepMonitor
	m.Begin(1, 1, 1, []string{"ts"})

	// Two replications contribute to the same window from different cells.
	m.AddRollup(testFlush("ts", 0, 60, 0, 0.5, 2.0))
	m.AddRollup(testFlush("ts", 0, 60, 1, 8.0))
	m.AddRollup(testFlush("ts", 60, 120, 0, 1.0))
	m.AddRollup(testFlush("at", 0, 60, 0, 4.0))

	rs := m.Rollups()
	if len(rs) != 3 {
		t.Fatalf("got %d aggregated windows, want 3: %+v", len(rs), rs)
	}
	// Sorted by (algo, start): at@0, ts@0, ts@60.
	if rs[0].Algo != "at" || rs[1].Algo != "ts" || rs[1].StartSec != 0 || rs[2].StartSec != 60 {
		t.Fatalf("unexpected order: %+v", rs)
	}
	w := rs[1]
	if w.Queries != 3 || w.Answers != 3 || w.Hits != 1 || w.Cells != 2 || w.Events != 200 {
		t.Fatalf("ts@0 merged wrong: %+v", w)
	}
	if w.DelayP90 < 2 || w.DelayP90 > 9 {
		t.Fatalf("ts@0 p90 = %v, want within merged stream [2, 8]", w.DelayP90)
	}
	if w.EventsPerSimSec != 200.0/60 {
		t.Fatalf("events/sim-s = %v", w.EventsPerSimSec)
	}

	// A window with no answers reports -1 quantiles (JSON-safe NaN).
	m.AddRollup(RollupFlush{Algo: "at", Start: 120, End: 180, Cells: []RollupCell{{Cell: 0, Reports: 7}}})
	for _, r := range m.Rollups() {
		if r.Algo == "at" && r.StartSec == 120 {
			if r.Reports != 7 || r.DelayP99 != -1 {
				t.Fatalf("empty-delay window rendered wrong: %+v", r)
			}
		}
	}

	// Eviction: push more windows than the retention bound.
	for i := 0; i < rollupKeep+4; i++ {
		m.AddRollup(testFlush("ts", float64(120+60*i), float64(180+60*i), 0, 1.0))
	}
	var tsWindows []RollupSnapshot
	for _, r := range m.Rollups() {
		if r.Algo == "ts" {
			tsWindows = append(tsWindows, r)
		}
	}
	if len(tsWindows) != rollupKeep {
		t.Fatalf("retained %d ts windows, want %d", len(tsWindows), rollupKeep)
	}
	for i := 1; i < len(tsWindows); i++ {
		if tsWindows[i].StartSec <= tsWindows[i-1].StartSec {
			t.Fatal("retained windows not ascending")
		}
	}

	// The JSON snapshot carries the same rollups.
	snap := m.Snapshot(time.Now())
	if len(snap.Rollups) != len(m.Rollups()) {
		t.Fatalf("snapshot has %d rollups, direct read has %d", len(snap.Rollups), len(m.Rollups()))
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot with rollups does not marshal: %v", err)
	}

	// Begin resets retained rollups for the next sweep.
	m.Begin(1, 1, 1, nil)
	if got := m.Rollups(); len(got) != 0 {
		t.Fatalf("Begin kept %d stale rollup windows", len(got))
	}
}

// TestMetricsHandler checks the Prometheus text exposition: content type,
// sweep counters, and per-algorithm rollup gauges from the latest window.
func TestMetricsHandler(t *testing.T) {
	var m SweepMonitor
	m.Begin(2, 10, 5, []string{"ts"})
	m.AddEvents("ts", 12345)
	m.AddRollup(testFlush("ts", 0, 60, 0, 0.5, 2.0))
	m.AddRollup(testFlush("ts", 60, 120, 0, 4.0))

	rec := httptest.NewRecorder()
	m.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"wdc_sweep_events_total 12345",
		`wdc_algo_events_total{algo="ts"} 12345`,
		`wdc_rollup_window_start_seconds{algo="ts"} 60`, // latest window wins
		`wdc_rollup_queries{algo="ts"} 1`,
		`wdc_rollup_delay_seconds{algo="ts",quantile="0.99"} `,
		"# TYPE wdc_rollup_delay_seconds gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
}
