package obs

import (
	"sort"

	"repro/internal/metrics"
)

// RollupCell is one cell's share of a closed rollup window: query-path
// counters plus a delay sketch over the answers the window saw. Counts cover
// the whole run (warmup included) — rollups are live telemetry, like traces,
// not post-warmup statistics.
type RollupCell struct {
	Cell            int
	Queries         uint64
	Answers         uint64
	Hits            uint64
	StaleChecks     uint64
	StaleViolations uint64
	Reports         uint64
	Delay           *metrics.Sketch // nil when the window answered nothing
}

// RollupFlush is one closed tumbling window of simulated time. Windows are
// aligned to multiples of the configured width; empty windows are skipped
// rather than emitted, so consecutive flushes need not be adjacent.
type RollupFlush struct {
	Algo       string
	Start, End float64 // simulated seconds
	Events     uint64  // DES events executed since the previous flush
	Cells      []RollupCell
}

// RollupSink receives closed windows. The flush value — including its cell
// slice and sketches — is only valid for the duration of the call; a sink
// that wants to keep anything must merge or copy it. Sinks run on the
// simulation goroutine and must not touch simulation state.
type RollupSink func(RollupFlush)

// rollupWindow is the monitor-side aggregation of every flush sharing an
// (algorithm, window-start) pair — across cells and across concurrent
// replications of the same configuration.
type rollupWindow struct {
	start, end      float64
	events          uint64
	queries         uint64
	answers         uint64
	hits            uint64
	staleChecks     uint64
	staleViolations uint64
	reports         uint64
	cells           uint64 // cell-window contributions folded in
	delay           *metrics.Sketch
}

// rollupKeep bounds how many distinct window starts the monitor retains per
// algorithm; older windows are evicted as new ones arrive.
const rollupKeep = 8

// AddRollup folds one closed window into the monitor's per-algorithm rollup
// ring. Safe for concurrent use by many replication goroutines.
func (m *SweepMonitor) AddRollup(f RollupFlush) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rollups == nil {
		m.rollups = make(map[string]map[float64]*rollupWindow)
	}
	byStart := m.rollups[f.Algo]
	if byStart == nil {
		byStart = make(map[float64]*rollupWindow, rollupKeep+1)
		m.rollups[f.Algo] = byStart
	}
	w := byStart[f.Start]
	if w == nil {
		w = &rollupWindow{start: f.Start, end: f.End}
		byStart[f.Start] = w
		for len(byStart) > rollupKeep {
			oldest := f.Start
			for s := range byStart {
				if s < oldest {
					oldest = s
				}
			}
			delete(byStart, oldest)
		}
	}
	w.events += f.Events
	for _, c := range f.Cells {
		w.cells++
		w.queries += c.Queries
		w.answers += c.Answers
		w.hits += c.Hits
		w.staleChecks += c.StaleChecks
		w.staleViolations += c.StaleViolations
		w.reports += c.Reports
		if c.Delay != nil && c.Delay.Count() > 0 {
			if w.delay == nil {
				w.delay = metrics.NewDelaySketch()
			}
			w.delay.Merge(c.Delay)
		}
	}
}

// RollupSnapshot is the JSON-friendly view of one aggregated window.
// Quantiles are -1 when the window answered nothing (NaN is not
// representable in JSON).
type RollupSnapshot struct {
	Algo            string  `json:"algo"`
	StartSec        float64 `json:"start_sec"`
	EndSec          float64 `json:"end_sec"`
	Cells           uint64  `json:"cells"`
	Events          uint64  `json:"events"`
	EventsPerSimSec float64 `json:"events_per_sim_sec"`
	Queries         uint64  `json:"queries"`
	Answers         uint64  `json:"answers"`
	Hits            uint64  `json:"hits"`
	StaleChecks     uint64  `json:"stale_checks"`
	StaleViolations uint64  `json:"stale_violations"`
	Reports         uint64  `json:"reports"`
	DelayP50        float64 `json:"delay_p50"`
	DelayP90        float64 `json:"delay_p90"`
	DelayP99        float64 `json:"delay_p99"`
	DelayP999       float64 `json:"delay_p999"`
}

// rollupSnapshots renders the retained windows sorted by (algo, start).
// Caller holds at least a read lock.
func (m *SweepMonitor) rollupSnapshots() []RollupSnapshot {
	var out []RollupSnapshot
	for algo, byStart := range m.rollups {
		for _, w := range byStart {
			r := RollupSnapshot{
				Algo:            algo,
				StartSec:        w.start,
				EndSec:          w.end,
				Cells:           w.cells,
				Events:          w.events,
				Queries:         w.queries,
				Answers:         w.answers,
				Hits:            w.hits,
				StaleChecks:     w.staleChecks,
				StaleViolations: w.staleViolations,
				Reports:         w.reports,
				DelayP50:        -1,
				DelayP90:        -1,
				DelayP99:        -1,
				DelayP999:       -1,
			}
			if w.end > w.start {
				r.EventsPerSimSec = float64(w.events) / (w.end - w.start)
			}
			if w.delay != nil {
				r.DelayP50 = w.delay.Quantile(0.50)
				r.DelayP90 = w.delay.Quantile(0.90)
				r.DelayP99 = w.delay.Quantile(0.99)
				r.DelayP999 = w.delay.Quantile(0.999)
			}
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Algo != out[j].Algo {
			return out[i].Algo < out[j].Algo
		}
		return out[i].StartSec < out[j].StartSec
	})
	return out
}

// RollupSink returns a sink that folds every flush into the monitor. The
// sink merges during the call and retains nothing of the flush value, per
// the RollupSink contract.
func (m *SweepMonitor) RollupSink() RollupSink {
	return func(f RollupFlush) { m.AddRollup(f) }
}

// Rollups returns the currently retained aggregated windows, for callers
// outside the HTTP snapshot path (the Prometheus handler, tests).
func (m *SweepMonitor) Rollups() []RollupSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.rollupSnapshots()
}
