package obs

import (
	"fmt"
	"net/http"
	"strings"
)

// PromContentType is the Prometheus text exposition content type served by
// every metrics endpoint in this repo.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromText accumulates metrics in Prometheus text exposition format
// (version 0.0.4), hand-rolled so the repo stays dependency-free. It backs
// both the sweep monitor's endpoint and wdcserved's.
type PromText struct {
	b strings.Builder
}

// Head writes the HELP/TYPE preamble for one metric family.
func (p *PromText) Head(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample writes one sample line. labels is the brace interior (e.g.
// `algo="ts"`), empty for an unlabeled sample.
func (p *PromText) Sample(name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(&p.b, "%s %g\n", name, v)
		return
	}
	fmt.Fprintf(&p.b, "%s{%s} %g\n", name, labels, v)
}

// Counter writes a single-sample counter family.
func (p *PromText) Counter(name, help string, v float64) {
	p.Head(name, help, "counter")
	p.Sample(name, "", v)
}

// Gauge writes a single-sample gauge family.
func (p *PromText) Gauge(name, help string, v float64) {
	p.Head(name, help, "gauge")
	p.Sample(name, "", v)
}

// ServeHTTP writes the accumulated exposition, making a filled PromText
// directly usable as a response body.
func (p *PromText) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	_, _ = w.Write([]byte(p.b.String()))
}
