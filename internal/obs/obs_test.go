package obs

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/des"
)

// emitOne sends one event of every type, with distinguishable payloads.
func emitOne(tr Tracer) []any {
	events := []any{
		ReportBroadcastEvent{At: 1000, Seq: 7, Kind: "full", Carrier: "ir",
			MCS: 3, SizeBits: 512, WindowStart: 500, Items: []int{4, 9}},
		QueryEvent{At: 2000, Client: 5, Item: 42, Hit: true, DelaySec: 0.25},
		CacheEvent{At: 3000, Client: 5, Op: CacheInvalidate, Item: 42},
		CacheEvent{At: 3500, Client: 6, Op: CacheFlush, Item: -1, Count: 17},
		FrameTxEvent{At: 4000, Kind: "response", Dest: 5, MCS: 2, Bits: 8192,
			Airtime: 1200, OK: false, Retries: 1},
		SleepWakeEvent{At: 5000, Client: 9, Awake: true},
		DBUpdateEvent{At: 6000, Item: 42, Version: 3},
		ReportProcessEvent{At: 7000, Client: 5, Seq: 7, Kind: "full", Outcome: ReportApplied},
	}
	for _, e := range events {
		switch v := e.(type) {
		case ReportBroadcastEvent:
			tr.ReportBroadcast(v)
		case QueryEvent:
			tr.Query(v)
		case CacheEvent:
			tr.Cache(v)
		case FrameTxEvent:
			tr.FrameTx(v)
		case SleepWakeEvent:
			tr.SleepWake(v)
		case DBUpdateEvent:
			tr.DBUpdate(v)
		case ReportProcessEvent:
			tr.ReportProcess(v)
		}
	}
	return events
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	want := emitOne(sink)
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := sink.Events(); got != uint64(len(want)) {
		t.Fatalf("Events() = %d, want %d", got, len(want))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestJSONLTimesAreMicroseconds(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	sink.DBUpdate(DBUpdateEvent{At: des.Time(des.FromSeconds(1.5)), Item: 1, Version: 1})
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	line := strings.TrimSpace(buf.String())
	if !strings.Contains(line, `"t":1500000`) {
		t.Fatalf("timestamp not integer microseconds: %s", line)
	}
	if !strings.HasPrefix(line, `{"ev":"db_update"`) {
		t.Fatalf("line does not lead with ev tag: %s", line)
	}
}

func TestReadJSONLToleratesTornFinalLine(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	sink.DBUpdate(DBUpdateEvent{At: 1, Item: 1, Version: 1})
	sink.DBUpdate(DBUpdateEvent{At: 2, Item: 2, Version: 1})
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	whole := buf.String()
	torn := whole[:len(whole)-9] // chop mid-way through the final object
	got, err := ReadJSONL(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("ReadJSONL(torn): %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d events from torn stream, want 1", len(got))
	}
}

func TestReadJSONLRejectsMidStreamCorruption(t *testing.T) {
	in := `{"ev":"db_update","t":1,"item":1,"version":1}
not json at all
{"ev":"db_update","t":2,"item":2,"version":1}
`
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("ReadJSONL accepted mid-stream corruption")
	}
}

func TestDecodeUnknownEvent(t *testing.T) {
	if _, err := Decode([]byte(`{"ev":"martian"}`)); err == nil {
		t.Fatal("Decode accepted unknown event type")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.DBUpdate(DBUpdateEvent{At: des.Time(i), Item: i, Version: 1})
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	for i, ev := range snap {
		want := 6 + i // oldest surviving first
		if got := ev.(DBUpdateEvent).Item; got != want {
			t.Fatalf("snap[%d].Item = %d, want %d", i, got, want)
		}
	}
	counts := r.Counts()
	if counts[EvDBUpdate] != 10 || counts[EvQuery] != 0 {
		t.Fatalf("Counts() = %v", counts)
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(8)
	r.Query(QueryEvent{At: 1, Client: 1, Item: 1, Hit: true})
	r.Query(QueryEvent{At: 2, Client: 2, Item: 2, Hit: false})
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(snap))
	}
	if snap[0].(QueryEvent).At != 1 || snap[1].(QueryEvent).At != 2 {
		t.Fatalf("order wrong: %#v", snap)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Query(QueryEvent{At: des.Time(i), Client: w, Item: i})
			}
		}(w)
	}
	wg.Wait()
	if got := r.Total(); got != 8000 {
		t.Fatalf("Total() = %d, want 8000", got)
	}
	if got := len(r.Snapshot()); got != 64 {
		t.Fatalf("Snapshot len = %d, want 64", got)
	}
}

func TestTee(t *testing.T) {
	a, b := NewRing(16), NewRing(16)
	if got := Tee(); got != nil {
		t.Fatalf("Tee() = %v, want nil", got)
	}
	if got := Tee(nil, nil); got != nil {
		t.Fatalf("Tee(nil, nil) = %v, want nil", got)
	}
	if got := Tee(nil, a); got != Tracer(a) {
		t.Fatalf("Tee(nil, a) did not collapse to a")
	}
	both := Tee(a, nil, b)
	emitOne(both)
	if a.Total() != b.Total() || a.Total() == 0 {
		t.Fatalf("tee fan-out uneven: a=%d b=%d", a.Total(), b.Total())
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("tee delivered different events to each sink")
	}
}

func TestBaseImplementsTracer(t *testing.T) {
	var tr Tracer = Base{}
	emitOne(tr) // must not panic
}

func TestSweepMonitorSnapshot(t *testing.T) {
	var m SweepMonitor
	m.Begin(4, 100, 10, []string{"ts", "at"})
	start := time.Unix(0, m.startNS.Load())

	m.UnitStart()
	m.UnitStart()
	m.AddEvents("ts", 5000)
	m.AddEvents("at", 3000)
	m.UnitDone("ts")
	m.CellDone()

	s := m.Snapshot(start.Add(2 * time.Second))
	if s.Workers != 4 || s.BusyWorkers != 1 {
		t.Fatalf("workers/busy = %d/%d, want 4/1", s.Workers, s.BusyWorkers)
	}
	if s.Utilization != 0.25 {
		t.Fatalf("Utilization = %v, want 0.25", s.Utilization)
	}
	if s.UnitsDone != 1 || s.UnitsTotal != 100 || s.CellsDone != 1 || s.CellsTotal != 10 {
		t.Fatalf("progress = %d/%d units, %d/%d cells", s.UnitsDone, s.UnitsTotal, s.CellsDone, s.CellsTotal)
	}
	if s.Events != 8000 {
		t.Fatalf("Events = %d, want 8000", s.Events)
	}
	if s.EventsPerSec != 4000 {
		t.Fatalf("EventsPerSec = %v, want 4000", s.EventsPerSec)
	}
	if s.UnitsPerSec != 0.5 {
		t.Fatalf("UnitsPerSec = %v, want 0.5", s.UnitsPerSec)
	}
	// 99 units remain at 0.5 units/sec.
	if s.ETASec != 198 {
		t.Fatalf("ETASec = %v, want 198", s.ETASec)
	}
	if len(s.Algos) != 2 || s.Algos[0].Algo != "at" || s.Algos[1].Algo != "ts" {
		t.Fatalf("Algos = %#v", s.Algos)
	}
	if s.Algos[1].UnitsDone != 1 || s.Algos[1].Events != 5000 {
		t.Fatalf("ts algo counters = %#v", s.Algos[1])
	}
}

func TestSweepMonitorETAEdges(t *testing.T) {
	var m SweepMonitor
	m.Begin(1, 2, 2, nil)
	start := time.Unix(0, m.startNS.Load())
	if eta := m.Snapshot(start.Add(time.Second)).ETASec; eta != -1 {
		t.Fatalf("ETA before first unit = %v, want -1", eta)
	}
	m.UnitStart()
	m.UnitDone("ts") // algorithm not pre-seeded: added on demand
	m.UnitStart()
	m.UnitDone("ts")
	if eta := m.Snapshot(start.Add(time.Second)).ETASec; eta != 0 {
		t.Fatalf("ETA when complete = %v, want 0", eta)
	}
	if got := m.Snapshot(start).Algos[0].UnitsDone; got != 2 {
		t.Fatalf("on-demand algo units = %d, want 2", got)
	}
}

func TestSweepMonitorConcurrent(t *testing.T) {
	var m SweepMonitor
	m.Begin(8, 8000, 8, []string{"ts"})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			algo := fmt.Sprintf("algo%d", w%3)
			for i := 0; i < 1000; i++ {
				m.UnitStart()
				m.AddEvents(algo, 10)
				m.UnitDone(algo)
			}
		}(w)
	}
	wg.Wait()
	s := m.Snapshot(time.Now())
	if s.UnitsDone != 8000 || s.BusyWorkers != 0 || s.Events != 80000 {
		t.Fatalf("snapshot after concurrent load: %+v", s)
	}
}

// BenchmarkNilGuard measures the disabled-tracer fast path exactly as the
// emission sites compile it: one nil check on an interface variable. The
// top-level BenchmarkTracerOverhead guards the end-to-end number.
func BenchmarkNilGuard(b *testing.B) {
	var tr Tracer
	var n int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr != nil {
			tr.Query(QueryEvent{At: des.Time(i)})
		} else {
			n++
		}
	}
	_ = n
}

func BenchmarkRingEmit(b *testing.B) {
	r := NewRing(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Query(QueryEvent{At: des.Time(i), Client: 1, Item: i, Hit: true})
	}
}

func BenchmarkJSONLEmit(b *testing.B) {
	var sink Tracer = NewJSONL(discard{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink.Query(QueryEvent{At: des.Time(i), Client: 1, Item: i, Hit: true})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
