package energy

import (
	"math"
	"testing"
)

func TestModelValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultModel()
	bad.RxW = -1
	if bad.Validate() == nil {
		t.Fatal("negative power accepted")
	}
}

func TestMeterAccounting(t *testing.T) {
	m := NewMeter(Model{TxW: 2, RxW: 1, IdleW: 0.5, DozeW: 0.1})
	m.AddTx(3)
	m.AddRx(5)
	m.AddDoze(10)
	if m.TxSec() != 3 || m.RxSec() != 5 || m.DozeSec() != 10 {
		t.Fatal("state seconds wrong")
	}
	// elapsed 100: idle = 100−3−5−10 = 82.
	want := 2*3.0 + 1*5.0 + 0.1*10 + 0.5*82
	if got := m.Energy(100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("energy %v, want %v", got, want)
	}
}

func TestMeterIdleClamp(t *testing.T) {
	m := NewMeter(Model{TxW: 1, RxW: 1, IdleW: 100, DozeW: 0})
	m.AddTx(10)
	// elapsed shorter than attributed time: idle clamps to zero rather than
	// crediting negative idle energy.
	if got := m.Energy(5); got != 10 {
		t.Fatalf("clamped energy %v", got)
	}
}

func TestMeterZero(t *testing.T) {
	m := NewMeter(DefaultModel())
	if got := m.Energy(60); math.Abs(got-DefaultModel().IdleW*60) > 1e-12 {
		t.Fatalf("pure idle energy %v", got)
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(DefaultModel())
	m.AddTx(5)
	m.AddRx(5)
	m.AddDoze(5)
	m.Reset()
	if m.TxSec() != 0 || m.RxSec() != 0 || m.DozeSec() != 0 {
		t.Fatal("Reset incomplete")
	}
}
