// Package energy accounts client radio energy across the four classic power
// states (transmit, receive, idle-listening, doze), the standard cost model
// of the wireless data-caching literature.
package energy

import "fmt"

// Model holds the per-state power draw in watts.
type Model struct {
	TxW   float64
	RxW   float64
	IdleW float64
	DozeW float64
}

// DefaultModel returns WaveLAN-class figures (the numbers every paper of the
// period used): 1.4 W transmit, 1.0 W receive, 0.83 W idle, 0.05 W doze.
func DefaultModel() Model {
	return Model{TxW: 1.4, RxW: 1.0, IdleW: 0.83, DozeW: 0.05}
}

// Validate reports the first problem with the model.
func (m Model) Validate() error {
	if m.TxW < 0 || m.RxW < 0 || m.IdleW < 0 || m.DozeW < 0 {
		return fmt.Errorf("energy: negative power in %+v", m)
	}
	return nil
}

// Meter accumulates one client's radio-state time. Idle time is derived:
// whatever part of the elapsed run was not transmit, receive, or doze.
type Meter struct {
	model Model
	txSec float64
	rxSec float64
	dzSec float64
}

// NewMeter builds a meter over the given model.
func NewMeter(model Model) *Meter { return &Meter{model: model} }

// AddTx charges transmit airtime in seconds.
func (m *Meter) AddTx(sec float64) { m.txSec += sec }

// AddRx charges receive airtime in seconds.
func (m *Meter) AddRx(sec float64) { m.rxSec += sec }

// AddDoze charges doze time in seconds.
func (m *Meter) AddDoze(sec float64) { m.dzSec += sec }

// TxSec reports accumulated transmit seconds.
func (m *Meter) TxSec() float64 { return m.txSec }

// RxSec reports accumulated receive seconds.
func (m *Meter) RxSec() float64 { return m.rxSec }

// DozeSec reports accumulated doze seconds.
func (m *Meter) DozeSec() float64 { return m.dzSec }

// Energy reports total joules over an elapsed run of the given length in
// seconds; time not attributed to tx/rx/doze is billed as idle listening.
func (m *Meter) Energy(elapsedSec float64) float64 {
	idle := elapsedSec - m.txSec - m.rxSec - m.dzSec
	if idle < 0 {
		idle = 0
	}
	return m.model.TxW*m.txSec + m.model.RxW*m.rxSec +
		m.model.DozeW*m.dzSec + m.model.IdleW*idle
}

// Reset zeroes the accumulated state (used at the warmup boundary).
func (m *Meter) Reset() { m.txSec, m.rxSec, m.dzSec = 0, 0, 0 }
