package radio

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/mobility"
	"repro/internal/rng"
)

// Params configures the downlink channel population.
type Params struct {
	// Geometry mode (UseGeometry true): clients are dropped uniformly in an
	// annulus [MinDistanceM, CellRadiusM] and their mean SNR follows from
	// the log-distance path-loss law plus lognormal shadowing.
	UseGeometry  bool
	TxPowerDBm   float64
	NoiseDBm     float64
	RefLossDB    float64 // path loss at 1 m
	PathLossExp  float64
	CellRadiusM  float64
	MinDistanceM float64

	// SNR mode (UseGeometry false): every client's mean SNR is MeanSNRdB
	// plus a per-client lognormal shadowing offset. This is the mode the
	// F6/F7 sweeps use, because it makes "mean SNR" a single knob.
	MeanSNRdB float64

	// Mobility, when non-nil, moves clients per the random-waypoint model
	// so their path loss (and hence mean SNR) drifts over time. Requires
	// UseGeometry. Shadowing stays fixed per client (no spatially
	// correlated shadowing), which is the usual simplification.
	Mobility *mobility.Config

	ShadowSigmaDB float64

	// Fast fading.
	DopplerHz    float64
	FadingSlot   des.Duration
	FadingStates int
}

// DefaultParams returns the channel configuration used by the default
// experiment matrix: SNR mode at 18 dB mean, 6 dB shadowing, pedestrian
// Doppler.
func DefaultParams() Params {
	return Params{
		UseGeometry:   false,
		TxPowerDBm:    40,
		NoiseDBm:      -113,
		RefLossDB:     38,
		PathLossExp:   3.5,
		CellRadiusM:   500,
		MinDistanceM:  20,
		MeanSNRdB:     18,
		ShadowSigmaDB: 6,
		DopplerHz:     6, // ~3 km/h at 2 GHz
		FadingSlot:    2 * des.Millisecond,
		FadingStates:  8,
	}
}

// pEntry is one (mcs, state) slot of the decode-probability cache: two ways,
// MRU first, tagged by frame bits (always positive, so 0 means empty).
type pEntry struct {
	bits0, bits1 int32
	p0, p1       float64
}

// Locator supplies externally owned client positions as distances to this
// channel's base station, for deployments (multi-cell grids) where placement
// and motion live outside the radio layer. Queries are non-decreasing in t
// per client, like every other time-indexed channel access.
type Locator interface {
	DistanceM(i int, t des.Time) float64
}

// Channel is the population of downlink links from the base station to each
// client. All methods must be called from the simulation goroutine.
//
// Per-link state is struct-of-arrays keyed by client id: a link's steady
// state is one int32, one int64, a 32-byte inline rng source and three
// float64s spread across flat slices, with no per-link heap objects. In
// drifting mode (mobility or an external locator) every fading chain is
// built around a 0 dB mean, so all links share one FSMC; in static mode each
// link keeps its own chain (means differ per link) plus a flattened
// decode-probability memo. The layout is what lets a multi-cell city-scale
// replication hold cells×clients links in a few hundred megabytes.
type Channel struct {
	params Params
	amc    *AMC
	n      int

	// Per-link state, all length n.
	state    []int32
	lastSlot []int64
	srcs     []rng.Source
	meanDB   []float64 // static mean SNR (initial position under mobility)
	shadowDB []float64
	distM    []float64

	// Fading chains: fsmc is the single shared chain in drifting mode (all
	// links use the 0 dB offset form); fsmcs is the per-link chain table in
	// static mode. Exactly one of the two is non-nil after init.
	fsmc  *FSMC
	fsmcs []*FSMC

	// pCache memoizes FrameSuccessProb per (link, mcs, state) slot with a
	// 2-way cache tagged by frame size, flattened to one slice with stride
	// pStride per link. Without mobility a link's instantaneous SNR takes
	// only K discrete values (one per fading state), so the exp/pow chain
	// behind each decode probability is worth computing once. Nil in
	// drifting mode, where the SNR drifts continuously.
	pCache  []pEntry
	pStride int

	snrBuf []float64
	mob    *mobility.Model
	loc    Locator
}

// New builds a channel with n client links. The source seeds one independent
// fading stream per client; the same (seed, n, params) triple always yields
// the same channel realization.
func New(p Params, amc *AMC, n int, src *rng.Source) (*Channel, error) {
	return NewWithLocator(p, amc, n, src, nil)
}

// NewWithLocator is New with client distances supplied by an external
// locator instead of the channel's own placement or mobility model. A
// non-nil locator requires geometry mode and excludes Params.Mobility; like
// mobility, it makes each link's mean SNR drift, so the decode-probability
// memoization is disabled. A nil locator is exactly New.
func NewWithLocator(p Params, amc *AMC, n int, src *rng.Source, loc Locator) (*Channel, error) {
	c := &Channel{}
	if err := c.init(p, amc, n, src, loc); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset re-initializes the channel in place for a new replication, reusing
// the per-link tables (link array, SNR buffer, decode-probability caches)
// when the population shape is unchanged. The channel realization drawn from
// src is identical to what New would produce: Reset makes exactly the same
// draws in the same order.
func (c *Channel) Reset(p Params, amc *AMC, n int, src *rng.Source) error {
	return c.init(p, amc, n, src, nil)
}

// ResetWithLocator is Reset for a channel driven by an external locator; it
// makes the same draws NewWithLocator would.
func (c *Channel) ResetWithLocator(p Params, amc *AMC, n int, src *rng.Source, loc Locator) error {
	return c.init(p, amc, n, src, loc)
}

// init builds the channel state in place, reusing any backing slices of the
// right shape that c already holds.
func (c *Channel) init(p Params, amc *AMC, n int, src *rng.Source, loc Locator) error {
	if n <= 0 {
		return fmt.Errorf("radio: need at least one client, got %d", n)
	}
	if amc == nil {
		amc = DefaultAMC()
	}
	if err := amc.Validate(); err != nil {
		return err
	}
	if p.FadingSlot <= 0 || p.FadingStates < 2 || p.DopplerHz <= 0 {
		return fmt.Errorf("radio: invalid fading params (slot=%v states=%d fd=%v)",
			p.FadingSlot, p.FadingStates, p.DopplerHz)
	}
	if p.Mobility != nil && !p.UseGeometry {
		return fmt.Errorf("radio: mobility requires geometry mode")
	}
	if loc != nil && p.Mobility != nil {
		return fmt.Errorf("radio: locator and mobility are mutually exclusive")
	}
	if loc != nil && !p.UseGeometry {
		return fmt.Errorf("radio: locator requires geometry mode")
	}
	c.params = p
	c.amc = amc
	c.mob = nil
	c.loc = loc
	if c.n != n {
		c.n = n
		c.state = make([]int32, n)
		c.lastSlot = make([]int64, n)
		c.srcs = make([]rng.Source, n)
		c.meanDB = make([]float64, n)
		c.shadowDB = make([]float64, n)
		c.distM = make([]float64, n)
		c.snrBuf = make([]float64, n)
	} else {
		for i := 0; i < n; i++ {
			c.lastSlot[i] = 0
			c.distM[i] = 0
		}
	}
	if p.Mobility != nil {
		mob, err := mobility.New(*p.Mobility, n, src.SubStream(1<<32))
		if err != nil {
			return err
		}
		c.mob = mob
	}

	// Under mobility (or an external locator) the fading chain is built
	// around 0 dB and the drifting path-loss mean is added per query: the
	// Rayleigh FSMC is scale-invariant in its mean, so the offset form is
	// exact — and one chain serves every link.
	c.fsmc, c.fsmcs = nil, nil
	if c.drifting() {
		fsmc, err := NewFSMC(0, p.DopplerHz, p.FadingSlot.Seconds(), p.FadingStates)
		if err != nil {
			return err
		}
		c.fsmc = fsmc
	} else {
		c.fsmcs = make([]*FSMC, n)
	}

	c.pStride = 0
	if !c.drifting() {
		c.pStride = len(amc.Table) * p.FadingStates
	}
	if total := n * c.pStride; total > 0 {
		if len(c.pCache) == total {
			for j := range c.pCache {
				c.pCache[j] = pEntry{}
			}
		} else {
			c.pCache = make([]pEntry, total)
		}
	} else {
		c.pCache = nil
	}

	placement := src.SubStream(0)
	for i := 0; i < n; i++ {
		c.srcs[i] = src.SubStreamValue(uint64(i) + 1)
		c.shadowDB[i] = placement.Normal(0, p.ShadowSigmaDB)
		if p.UseGeometry {
			switch {
			case c.mob != nil:
				c.distM[i] = c.mob.DistanceM(i, 0)
			case c.loc != nil:
				c.distM[i] = c.loc.DistanceM(i, 0)
			default:
				// Uniform over the annulus area.
				r2min := p.MinDistanceM * p.MinDistanceM
				r2max := p.CellRadiusM * p.CellRadiusM
				c.distM[i] = math.Sqrt(placement.Uniform(r2min, r2max))
			}
			c.meanDB[i] = c.geoMeanDB(c.distM[i], c.shadowDB[i])
		} else {
			c.meanDB[i] = p.MeanSNRdB + c.shadowDB[i]
		}
		fsmc := c.fsmc
		if fsmc == nil {
			f, err := NewFSMC(c.meanDB[i], p.DopplerHz, p.FadingSlot.Seconds(), p.FadingStates)
			if err != nil {
				return err
			}
			c.fsmcs[i] = f
			fsmc = f
		}
		c.state[i] = int32(fsmc.StationarySample(&c.srcs[i]))
	}
	return nil
}

// fsmcOf reports link i's fading chain: the shared 0 dB chain in drifting
// mode, the per-link chain otherwise.
func (c *Channel) fsmcOf(i int) *FSMC {
	if c.fsmc != nil {
		return c.fsmc
	}
	return c.fsmcs[i]
}

// drifting reports whether link means move over time (mobility model or
// external locator), which disables the per-state decode memoization.
func (c *Channel) drifting() bool { return c.mob != nil || c.loc != nil }

// N reports the number of client links.
func (c *Channel) N() int { return c.n }

// AMC reports the link adaptation policy in force.
func (c *Channel) AMC() *AMC { return c.amc }

// geoMeanDB computes the mean SNR at a distance with a fixed shadowing
// offset.
func (c *Channel) geoMeanDB(distM, shadowDB float64) float64 {
	p := c.params
	pl := p.RefLossDB + 10*p.PathLossExp*math.Log10(distM)
	return p.TxPowerDBm - pl - shadowDB - p.NoiseDBm
}

// MeanSNRdB reports client i's long-term average SNR (under mobility, the
// mean at its initial position).
func (c *Channel) MeanSNRdB(i int) float64 { return c.meanDB[i] }

// MeanSNRdBAt reports client i's instantaneous mean SNR (path loss plus
// shadowing, fading excluded) at time t.
func (c *Channel) MeanSNRdBAt(i int, t des.Time) float64 {
	switch {
	case c.mob != nil:
		return c.geoMeanDB(c.mob.DistanceM(i, t), c.shadowDB[i])
	case c.loc != nil:
		return c.geoMeanDB(c.loc.DistanceM(i, t), c.shadowDB[i])
	}
	return c.meanDB[i]
}

// DistanceM reports client i's distance from the base station (geometry mode
// only; zero otherwise). Under mobility this is the initial distance; use
// DistanceMAt for the live value.
func (c *Channel) DistanceM(i int) float64 { return c.distM[i] }

// DistanceMAt reports client i's distance at time t.
func (c *Channel) DistanceMAt(i int, t des.Time) float64 {
	switch {
	case c.mob != nil:
		return c.mob.DistanceM(i, t)
	case c.loc != nil:
		return c.loc.DistanceM(i, t)
	}
	return c.distM[i]
}

// advance brings link i's fading state up to the slot containing `now` and
// reports it.
func (c *Channel) advance(i int, now des.Time) int {
	slot := int64(now) / int64(c.params.FadingSlot)
	if slot > c.lastSlot[i] {
		c.state[i] = int32(c.fsmcOf(i).Advance(int(c.state[i]), slot-c.lastSlot[i], &c.srcs[i]))
		c.lastSlot[i] = slot
	}
	return int(c.state[i])
}

// SNRdB reports client i's instantaneous SNR at time now.
func (c *Channel) SNRdB(i int, now des.Time) float64 {
	st := c.advance(i, now)
	snr := c.fsmcOf(i).RepSNRdB(st)
	if c.drifting() {
		snr += c.MeanSNRdBAt(i, now)
	}
	return snr
}

// Snapshot fills and returns a reused buffer with every client's
// instantaneous SNR at time now. The buffer is valid until the next call.
func (c *Channel) Snapshot(now des.Time) []float64 {
	for i := 0; i < c.n; i++ {
		c.snrBuf[i] = c.SNRdB(i, now)
	}
	return c.snrBuf
}

// SelectMCS runs link adaptation for a unicast frame to client i at time
// now: the fastest scheme supported by the instantaneous SNR, falling back
// to the most robust scheme when the link is in a deep fade.
func (c *Channel) SelectMCS(i int, now des.Time) (idx int, snrDB float64) {
	snrDB = c.SNRdB(i, now)
	idx, _ = c.amc.Select(snrDB)
	return idx, snrDB
}

// Decode draws whether client i successfully decodes a frame of `bits`
// information bits sent at MCS index mcs, given its channel state at `now`.
func (c *Channel) Decode(i int, now des.Time, mcs int, bits int) bool {
	st := c.advance(i, now)
	if c.pCache != nil {
		e := &c.pCache[i*c.pStride+mcs*c.params.FadingStates+st]
		var p float64
		switch int32(bits) {
		case e.bits0:
			p = e.p0
		case e.bits1:
			p = e.p1
		default:
			p = c.amc.Table[mcs].FrameSuccessProb(c.fsmcs[i].RepSNRdB(st), bits)
			e.bits1, e.p1 = e.bits0, e.p0
			e.bits0, e.p0 = int32(bits), p
		}
		return c.srcs[i].Bool(p)
	}
	snr := c.fsmc.RepSNRdB(st) + c.MeanSNRdBAt(i, now)
	p := c.amc.Table[mcs].FrameSuccessProb(snr, bits)
	return c.srcs[i].Bool(p)
}
