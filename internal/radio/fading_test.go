package radio

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestFSMCConstruction(t *testing.T) {
	f, err := NewFSMC(15, 6, 0.002, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.States() != 8 {
		t.Fatalf("states %d", f.States())
	}
	if f.Strained() {
		t.Fatal("pedestrian doppler at 10ms slots should not strain the chain")
	}
	// Representative SNRs must be strictly increasing.
	for k := 1; k < f.States(); k++ {
		if f.RepSNRdB(k) <= f.RepSNRdB(k-1) {
			t.Fatalf("rep SNR not increasing at state %d", k)
		}
	}
	// Averaging representative linear SNRs over the uniform stationary
	// distribution must recover the mean SNR.
	if got := f.StationaryDB(); math.Abs(got-15) > 0.2 {
		t.Fatalf("stationary mean %v dB, want 15", got)
	}
	if f.MeanSNRdB() != 15 || f.SlotSec() != 0.002 {
		t.Fatal("accessors broken")
	}
}

func TestFSMCRejectsBadParams(t *testing.T) {
	if _, err := NewFSMC(10, 6, 0.01, 1); err == nil {
		t.Error("1 state accepted")
	}
	if _, err := NewFSMC(10, 0, 0.01, 4); err == nil {
		t.Error("zero doppler accepted")
	}
	if _, err := NewFSMC(10, 6, 0, 4); err == nil {
		t.Error("zero slot accepted")
	}
}

func TestFSMCStrainedFlag(t *testing.T) {
	// Enormous Doppler with long slots violates fd·T ≪ 1; construction must
	// still succeed but flag the regime violation.
	f, err := NewFSMC(10, 500, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Strained() {
		t.Fatal("expected strained chain")
	}
	// Probabilities must still be valid after clamping.
	r := rng.New(1)
	state := f.StationarySample(r)
	for i := 0; i < 10000; i++ {
		state = f.Step(state, r)
		if state < 0 || state >= f.States() {
			t.Fatalf("state %d escaped", state)
		}
	}
}

func TestFSMCStationaryOccupancy(t *testing.T) {
	// The empirical state occupancy of a long trajectory must converge to
	// the analytic (uniform) stationary distribution — the key invariant
	// linking the chain back to Rayleigh statistics.
	f, err := NewFSMC(18, 6, 0.005, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	counts := make([]int, f.States())
	state := f.StationarySample(r)
	const steps = 2_000_000
	for i := 0; i < steps; i++ {
		state = f.Step(state, r)
		counts[state]++
	}
	want := float64(steps) / float64(f.States())
	for k, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.08 {
			t.Errorf("state %d occupancy %d, want ~%.0f", k, c, want)
		}
	}
}

func TestFSMCAdjacentOnly(t *testing.T) {
	f, err := NewFSMC(12, 6, 0.01, 6)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	state := 3
	for i := 0; i < 100000; i++ {
		next := f.Step(state, r)
		if d := next - state; d < -1 || d > 1 {
			t.Fatalf("non-adjacent jump %d -> %d", state, next)
		}
		state = next
	}
}

func TestFSMCAdvance(t *testing.T) {
	f, err := NewFSMC(12, 6, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	// Zero or negative advancement is identity.
	if got := f.Advance(4, 0, r); got != 4 {
		t.Fatalf("Advance(…,0) = %d", got)
	}
	if got := f.Advance(4, -3, r); got != 4 {
		t.Fatalf("Advance(…,-3) = %d", got)
	}
	// Short advancement stays within ±slots of the start.
	for i := 0; i < 1000; i++ {
		got := f.Advance(4, 3, r)
		if got < 1 || got > 7 {
			t.Fatalf("3-slot advance moved 4 -> %d", got)
		}
	}
	// A gap beyond the mixing horizon resamples the stationary distribution;
	// starting pinned at state 0, the long-gap distribution must be ~uniform.
	counts := make([]int, f.States())
	const n = 100000
	for i := 0; i < n; i++ {
		counts[f.Advance(0, 1<<40, r)]++
	}
	want := float64(n) / float64(f.States())
	for k, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.1 {
			t.Errorf("long-gap state %d count %d, want ~%.0f", k, c, want)
		}
	}
}

func TestFSMCTimeCorrelation(t *testing.T) {
	// One slot apart the chain must be strongly correlated; far apart it
	// must decorrelate. Measured via P(same state).
	f, err := NewFSMC(15, 6, 0.002, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	sameNear, sameFar := 0, 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		s0 := f.StationarySample(r)
		if f.Advance(s0, 1, r) == s0 {
			sameNear++
		}
		if f.Advance(s0, f.mixSlots+1, r) == s0 {
			sameFar++
		}
	}
	pNear := float64(sameNear) / trials
	pFar := float64(sameFar) / trials
	if pNear < 0.8 {
		t.Errorf("near correlation too weak: %v", pNear)
	}
	if math.Abs(pFar-1.0/8) > 0.03 {
		t.Errorf("far correlation should be ~1/K: %v", pFar)
	}
}
