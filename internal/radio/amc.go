// Package radio models the wireless downlink: log-distance path loss with
// lognormal shadowing, a finite-state Markov (FSMC) Rayleigh fading process
// per client, and an adaptive modulation-and-coding (AMC) table — the "link
// adaptation" of the paper's title.
//
// The model is the standard early-2000s abstraction: per-client average SNR
// set by distance + shadowing; fast fading quantized into K equal-probability
// SNR states whose transition rates follow the Rayleigh level-crossing-rate
// formula; and a rate table indexed by instantaneous SNR. It reproduces the
// two properties the invalidation algorithms care about — the downlink rate
// differs across clients and drifts over time, and broadcast frames are lost
// by clients currently in a fade.
package radio

import (
	"fmt"
	"math"
)

// MCS describes one modulation-and-coding scheme in the link adaptation
// table.
type MCS struct {
	Name          string
	BitsPerSymbol float64 // modulation order: log2(M)
	CodeRate      float64 // FEC rate in (0, 1]
	ThresholdDB   float64 // minimum SNR at which the scheme is selected
	CodingGainDB  float64 // effective SNR improvement from the FEC
}

// Efficiency reports information bits per symbol.
func (m MCS) Efficiency() float64 { return m.BitsPerSymbol * m.CodeRate }

// BitRate reports the information bit rate at the given symbol rate
// (symbols/second).
func (m MCS) BitRate(symbolRate float64) float64 {
	return symbolRate * m.Efficiency()
}

// BER approximates the coded bit error rate at the given SNR using the
// classic M-QAM union-bound fit BER(γ) ≈ 0.2·exp(−1.5·γ/(M−1)) with the
// coding gain applied as an SNR shift. BPSK/QPSK use the same fit with
// M = 4 (exact enough for a system-level simulation).
func (m MCS) BER(snrDB float64) float64 {
	gamma := FromDB(snrDB + m.CodingGainDB)
	mOrder := math.Pow(2, m.BitsPerSymbol)
	if mOrder < 4 {
		mOrder = 4
	}
	ber := 0.2 * math.Exp(-1.5*gamma/(mOrder-1))
	if ber > 0.5 {
		ber = 0.5
	}
	return ber
}

// FrameSuccessProb reports the probability that a frame of the given number
// of information bits decodes, assuming independent bit errors.
func (m MCS) FrameSuccessProb(snrDB float64, bits int) float64 {
	if bits <= 0 {
		return 1
	}
	ber := m.BER(snrDB)
	// (1-ber)^bits via exp/log1p for numerical stability at tiny BER.
	return math.Exp(float64(bits) * math.Log1p(-ber))
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// ToDB converts a linear power ratio to decibels.
func ToDB(lin float64) float64 { return 10 * math.Log10(lin) }

// AMC is a link adaptation policy over an ordered MCS table.
type AMC struct {
	Table      []MCS
	MarginDB   float64 // backoff applied to instantaneous SNR before lookup
	SymbolRate float64 // symbols/second of the underlying PHY
}

// DefaultAMC returns the 6-level table used throughout the evaluation. The
// thresholds are computed so that each scheme delivers ≤5% PER for 512-byte
// frames at its own switch point (threshold + margin); BPSK's extra coding
// gain reflects its halved spectral efficiency. The rate spread between the
// lowest and the highest scheme is 9×, which is the dynamic range the
// link-aware invalidation scheme exploits.
func DefaultAMC() *AMC {
	return &AMC{
		Table: []MCS{
			{Name: "BPSK-1/2", BitsPerSymbol: 1, CodeRate: 0.5, ThresholdDB: 2, CodingGainDB: 10},
			{Name: "QPSK-1/2", BitsPerSymbol: 2, CodeRate: 0.5, ThresholdDB: 5, CodingGainDB: 7},
			{Name: "QPSK-3/4", BitsPerSymbol: 2, CodeRate: 0.75, ThresholdDB: 7, CodingGainDB: 5},
			{Name: "16QAM-1/2", BitsPerSymbol: 4, CodeRate: 0.5, ThresholdDB: 12, CodingGainDB: 7},
			{Name: "16QAM-3/4", BitsPerSymbol: 4, CodeRate: 0.75, ThresholdDB: 14, CodingGainDB: 5},
			{Name: "64QAM-3/4", BitsPerSymbol: 6, CodeRate: 0.75, ThresholdDB: 21, CodingGainDB: 5},
		},
		MarginDB:   1,
		SymbolRate: 250_000, // 250 ksym/s → 125 kb/s … 1.125 Mb/s
	}
}

// Validate checks that the table is non-empty and sorted by threshold and
// efficiency.
func (a *AMC) Validate() error {
	if len(a.Table) == 0 {
		return fmt.Errorf("radio: empty AMC table")
	}
	if a.SymbolRate <= 0 {
		return fmt.Errorf("radio: non-positive symbol rate %v", a.SymbolRate)
	}
	for i, m := range a.Table {
		if m.CodeRate <= 0 || m.CodeRate > 1 || m.BitsPerSymbol <= 0 {
			return fmt.Errorf("radio: MCS %q malformed", m.Name)
		}
		if i > 0 {
			prev := a.Table[i-1]
			if m.ThresholdDB <= prev.ThresholdDB {
				return fmt.Errorf("radio: MCS thresholds not increasing at %q", m.Name)
			}
			if m.Efficiency() <= prev.Efficiency() {
				return fmt.Errorf("radio: MCS efficiency not increasing at %q", m.Name)
			}
		}
	}
	return nil
}

// Select returns the index of the fastest MCS whose threshold is satisfied
// by snrDB − MarginDB. ok is false when even the most robust scheme's
// threshold is not met; callers may still transmit at index 0 but should
// expect elevated loss.
func (a *AMC) Select(snrDB float64) (idx int, ok bool) {
	eff := snrDB - a.MarginDB
	idx = -1
	for i, m := range a.Table {
		if eff >= m.ThresholdDB {
			idx = i
		} else {
			break
		}
	}
	if idx < 0 {
		return 0, false
	}
	return idx, true
}

// BroadcastSelect returns the fastest MCS index at which at least the given
// fraction of the supplied client SNRs satisfy the selection threshold.
// With an empty snr slice or an unachievable coverage it returns 0 (the most
// robust scheme). This is the rate-selection primitive the link-aware
// invalidation scheme uses for its reports.
func (a *AMC) BroadcastSelect(snrsDB []float64, coverage float64) int {
	if len(snrsDB) == 0 {
		return 0
	}
	if coverage > 1 {
		coverage = 1
	}
	need := int(math.Ceil(coverage * float64(len(snrsDB))))
	if need <= 0 {
		need = 1
	}
	best := 0
	for i := range a.Table {
		covered := 0
		thr := a.Table[i].ThresholdDB + a.MarginDB
		for _, s := range snrsDB {
			if s >= thr {
				covered++
			}
		}
		if covered >= need {
			best = i
		} else {
			break
		}
	}
	return best
}

// Airtime reports the time in seconds to transmit `bits` information bits at
// MCS index idx.
func (a *AMC) Airtime(idx, bits int) float64 {
	if idx < 0 || idx >= len(a.Table) {
		panic(fmt.Sprintf("radio: MCS index %d out of range", idx))
	}
	return float64(bits) / a.Table[idx].BitRate(a.SymbolRate)
}

// MinRate reports the information bit rate of the most robust scheme.
func (a *AMC) MinRate() float64 { return a.Table[0].BitRate(a.SymbolRate) }

// MaxRate reports the information bit rate of the fastest scheme.
func (a *AMC) MaxRate() float64 {
	return a.Table[len(a.Table)-1].BitRate(a.SymbolRate)
}
