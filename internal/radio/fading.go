package radio

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// FSMC is a finite-state Markov chain abstraction of Rayleigh fading around
// a fixed mean SNR. The SNR axis is partitioned into K equal-stationary-
// probability states; per-slot transition probabilities to the adjacent
// states follow the level-crossing-rate formula for Rayleigh fading at
// Doppler frequency fd:
//
//	N(Γ) = sqrt(2π·Γ/γ̄) · fd · exp(−Γ/γ̄)
//	p(k→k+1) ≈ N(Γ_{k+1})·T_slot / π_k,   p(k→k−1) ≈ N(Γ_k)·T_slot / π_k
//
// (Wang & Moayeri 1995). The approximation requires fd·T_slot ≪ 1; the
// constructor enforces p_up + p_down ≤ 1 by clamping and reports the clamp
// through Strained so configurations that violate the regime are visible.
type FSMC struct {
	meanSNR   float64   // γ̄, linear
	slotSec   float64   // T_slot
	doppler   float64   // fd, Hz
	repDB     []float64 // representative SNR per state, dB
	pUp       []float64
	pDown     []float64
	pSum      []float64 // pUp + pDown, precomputed for the step hot loop
	mixSlots  int64     // gap beyond which the chain is resampled stationary
	strained  bool
	numStates int
}

// NewFSMC builds a K-state chain for the given mean SNR (dB), Doppler (Hz),
// and slot duration (seconds). K must be ≥ 2.
func NewFSMC(meanSNRdB float64, dopplerHz float64, slotSec float64, states int) (*FSMC, error) {
	if states < 2 {
		return nil, fmt.Errorf("radio: FSMC needs at least 2 states, got %d", states)
	}
	if dopplerHz <= 0 || slotSec <= 0 {
		return nil, fmt.Errorf("radio: FSMC needs positive doppler and slot (fd=%v, T=%v)", dopplerHz, slotSec)
	}
	mean := FromDB(meanSNRdB)
	f := &FSMC{
		meanSNR:   mean,
		slotSec:   slotSec,
		doppler:   dopplerHz,
		numStates: states,
		repDB:     make([]float64, states),
		pUp:       make([]float64, states),
		pDown:     make([]float64, states),
		pSum:      make([]float64, states),
	}

	// Equal-probability thresholds of the exponential SNR distribution:
	// Γ_k = −γ̄·ln(1 − k/K), k = 0…K (Γ_0 = 0, Γ_K = ∞).
	thr := make([]float64, states+1)
	for k := 0; k <= states; k++ {
		frac := float64(k) / float64(states)
		if k == states {
			thr[k] = math.Inf(1)
		} else {
			thr[k] = -mean * math.Log(1-frac)
		}
	}

	// Representative SNR per state: conditional mean of the exponential over
	// [Γ_k, Γ_{k+1}), scaled by 1/π_k = K.
	// ∫_a^b γ·(1/γ̄)e^{−γ/γ̄} dγ = (a+γ̄)e^{−a/γ̄} − (b+γ̄)e^{−b/γ̄}.
	partial := func(x float64) float64 {
		if math.IsInf(x, 1) {
			return 0
		}
		return (x + mean) * math.Exp(-x/mean)
	}
	for k := 0; k < states; k++ {
		rep := float64(states) * (partial(thr[k]) - partial(thr[k+1]))
		if rep <= 0 {
			rep = thr[k] // degenerate numeric corner; fall back to lower edge
		}
		f.repDB[k] = ToDB(rep)
	}

	// Transition probabilities from level-crossing rates.
	pi := 1.0 / float64(states)
	lcr := func(g float64) float64 {
		if g <= 0 || math.IsInf(g, 1) {
			return 0
		}
		return math.Sqrt(2*math.Pi*g/mean) * dopplerHz * math.Exp(-g/mean)
	}
	for k := 0; k < states; k++ {
		var up, down float64
		if k < states-1 {
			up = lcr(thr[k+1]) * slotSec / pi
		}
		if k > 0 {
			down = lcr(thr[k]) * slotSec / pi
		}
		if up+down > 1 {
			// Out of the slow-fading regime: renormalize and flag.
			scale := 1 / (up + down)
			up *= scale
			down *= scale
			f.strained = true
		}
		f.pUp[k] = up
		f.pDown[k] = down
		f.pSum[k] = up + down
	}

	// Beyond ~K level-crossing times the chain has mixed; resampling the
	// stationary distribution is then both correct and O(1).
	mixSec := float64(states) / dopplerHz
	f.mixSlots = int64(math.Ceil(mixSec / slotSec))
	if f.mixSlots < 1 {
		f.mixSlots = 1
	}
	return f, nil
}

// States reports K.
func (f *FSMC) States() int { return f.numStates }

// Strained reports whether any transition probability had to be clamped,
// i.e. the (doppler, slot) pair is outside the FSMC validity regime.
func (f *FSMC) Strained() bool { return f.strained }

// RepSNRdB reports the representative SNR of a state in dB.
func (f *FSMC) RepSNRdB(state int) float64 { return f.repDB[state] }

// MeanSNRdB reports γ̄ in dB.
func (f *FSMC) MeanSNRdB() float64 { return ToDB(f.meanSNR) }

// SlotSec reports the chain's slot duration in seconds.
func (f *FSMC) SlotSec() float64 { return f.slotSec }

// StationarySample draws a state from the stationary distribution (uniform
// by construction).
func (f *FSMC) StationarySample(r *rng.Source) int {
	return r.Intn(f.numStates)
}

// Step advances the chain one slot from the given state.
func (f *FSMC) Step(state int, r *rng.Source) int {
	u := r.Float64()
	switch {
	case u < f.pUp[state]:
		return state + 1
	case u < f.pSum[state]:
		return state - 1
	default:
		return state
	}
}

// Advance moves the chain `slots` slots forward. Gaps longer than the mixing
// horizon are resolved by a single stationary draw, keeping lazy advancement
// O(min(slots, mixSlots)). The walk consumes exactly one uniform per slot —
// the same sequence as repeated Step calls — drawn through a register-
// resident batch so the generator state is loaded and stored once per
// Advance instead of once per slot.
func (f *FSMC) Advance(state int, slots int64, r *rng.Source) int {
	if slots <= 0 {
		return state
	}
	if slots >= f.mixSlots {
		return f.StationarySample(r)
	}
	pUp, pSum := f.pUp, f.pSum
	b := r.Batch()
	for ; slots > 0; slots-- {
		u := b.Float64()
		if u < pUp[state] {
			state++
		} else if u < pSum[state] {
			state--
		}
	}
	b.End(r)
	return state
}

// StationaryDB reports the mean SNR in dB averaged over representative state
// values (a sanity quantity used in tests: it must sit close to γ̄).
func (f *FSMC) StationaryDB() float64 {
	sum := 0.0
	for _, db := range f.repDB {
		sum += FromDB(db)
	}
	return ToDB(sum / float64(f.numStates))
}
