package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-20, -3, 0, 3, 10, 30} {
		if got := ToDB(FromDB(db)); math.Abs(got-db) > 1e-9 {
			t.Errorf("round trip %v -> %v", db, got)
		}
	}
	if FromDB(0) != 1 || FromDB(10) != 10 {
		t.Fatal("dB anchors wrong")
	}
}

func TestDefaultAMCValid(t *testing.T) {
	a := DefaultAMC()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.MinRate() >= a.MaxRate() {
		t.Fatalf("rate spread inverted: %v vs %v", a.MinRate(), a.MaxRate())
	}
	if spread := a.MaxRate() / a.MinRate(); spread < 4 {
		t.Fatalf("link adaptation dynamic range too small: %vx", spread)
	}
}

func TestAMCValidateRejectsMalformed(t *testing.T) {
	cases := []*AMC{
		{SymbolRate: 1e5},
		{Table: []MCS{{Name: "x", BitsPerSymbol: 1, CodeRate: 0.5}}, SymbolRate: 0},
		{Table: []MCS{{Name: "x", BitsPerSymbol: 1, CodeRate: 0}}, SymbolRate: 1e5},
		{Table: []MCS{
			{Name: "a", BitsPerSymbol: 1, CodeRate: 0.5, ThresholdDB: 5},
			{Name: "b", BitsPerSymbol: 2, CodeRate: 0.5, ThresholdDB: 5},
		}, SymbolRate: 1e5},
		{Table: []MCS{
			{Name: "a", BitsPerSymbol: 2, CodeRate: 0.5, ThresholdDB: 5},
			{Name: "b", BitsPerSymbol: 1, CodeRate: 0.5, ThresholdDB: 9},
		}, SymbolRate: 1e5},
	}
	for i, a := range cases {
		if a.Validate() == nil {
			t.Errorf("case %d: Validate accepted malformed table", i)
		}
	}
}

func TestBERMonotoneInSNR(t *testing.T) {
	for _, m := range DefaultAMC().Table {
		prev := 1.0
		for snr := -10.0; snr <= 40; snr += 0.5 {
			ber := m.BER(snr)
			if ber < 0 || ber > 0.5 {
				t.Fatalf("%s: BER %v out of range at %v dB", m.Name, ber, snr)
			}
			if ber > prev+1e-15 {
				t.Fatalf("%s: BER not non-increasing at %v dB", m.Name, snr)
			}
			prev = ber
		}
	}
}

func TestBERAtThresholdIsSmall(t *testing.T) {
	// At its own selection threshold every MCS must deliver a usable frame
	// success probability for 512-byte frames; that is the design rule that
	// spaced the thresholds.
	a := DefaultAMC()
	for _, m := range a.Table {
		p := m.FrameSuccessProb(m.ThresholdDB+a.MarginDB, 512*8)
		if p < 0.9 {
			t.Errorf("%s: frame success %v at own threshold", m.Name, p)
		}
	}
}

func TestFrameSuccessProb(t *testing.T) {
	m := DefaultAMC().Table[0]
	if m.FrameSuccessProb(50, 0) != 1 {
		t.Fatal("zero-bit frame must always succeed")
	}
	p1 := m.FrameSuccessProb(2, 1000)
	p2 := m.FrameSuccessProb(2, 10000)
	if !(p2 < p1) {
		t.Fatalf("longer frames must be more fragile: %v vs %v", p1, p2)
	}
	if p := m.FrameSuccessProb(-20, 12000); p > 0.05 {
		t.Fatalf("deep fade should kill frames, p=%v", p)
	}
}

func TestSelectMonotone(t *testing.T) {
	a := DefaultAMC()
	prev := -1
	for snr := -5.0; snr <= 40; snr += 0.25 {
		idx, _ := a.Select(snr)
		if idx < prev {
			t.Fatalf("selection not monotone in SNR at %v dB: %d < %d", snr, idx, prev)
		}
		prev = idx
	}
	if idx, ok := a.Select(-10); ok || idx != 0 {
		t.Fatalf("deep fade must report !ok with robust fallback, got %d/%v", idx, ok)
	}
	if idx, ok := a.Select(100); !ok || idx != len(a.Table)-1 {
		t.Fatalf("high SNR must select fastest, got %d/%v", idx, ok)
	}
}

func TestSelectRespectsMargin(t *testing.T) {
	a := DefaultAMC()
	thr := a.Table[1].ThresholdDB
	if idx, _ := a.Select(thr + a.MarginDB - 0.01); idx != 0 {
		t.Fatalf("margin not applied, got %d", idx)
	}
	if idx, _ := a.Select(thr + a.MarginDB + 0.01); idx != 1 {
		t.Fatalf("selection at margin boundary got %d", idx)
	}
}

func TestBroadcastSelect(t *testing.T) {
	a := DefaultAMC()
	// Three clients: strong, medium, weak.
	snrs := []float64{30, 15, 5}
	// Full coverage → limited by the weakest (5 dB ≥ 3+1=4 → BPSK only).
	if got := a.BroadcastSelect(snrs, 1.0); got != 0 {
		t.Fatalf("full coverage pick %d", got)
	}
	// 2/3 coverage → limited by the medium client.
	want, _ := a.Select(15)
	if got := a.BroadcastSelect(snrs, 0.66); got != want {
		t.Fatalf("2/3 coverage pick %d, want %d", got, want)
	}
	// Empty and degenerate inputs.
	if got := a.BroadcastSelect(nil, 0.9); got != 0 {
		t.Fatalf("empty pick %d", got)
	}
	if got := a.BroadcastSelect([]float64{-10}, 0.9); got != 0 {
		t.Fatalf("unreachable coverage pick %d", got)
	}
	if got := a.BroadcastSelect([]float64{100, 100}, 2.0); got != len(a.Table)-1 {
		t.Fatalf("clamped coverage pick %d", got)
	}
}

func TestBroadcastSelectProperty(t *testing.T) {
	a := DefaultAMC()
	f := func(raw []uint8, covRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		snrs := make([]float64, len(raw))
		for i, v := range raw {
			snrs[i] = float64(v%45) - 5
		}
		cov := float64(covRaw%101) / 100
		idx := a.BroadcastSelect(snrs, cov)
		if idx < 0 || idx >= len(a.Table) {
			return false
		}
		// Requiring more coverage can never pick a faster scheme.
		idxFull := a.BroadcastSelect(snrs, 1.0)
		return idxFull <= idx || cov > 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAirtime(t *testing.T) {
	a := DefaultAMC()
	bits := 8192
	slow := a.Airtime(0, bits)
	fast := a.Airtime(len(a.Table)-1, bits)
	if !(fast < slow) {
		t.Fatalf("fast MCS not faster: %v vs %v", fast, slow)
	}
	want := float64(bits) / a.Table[0].BitRate(a.SymbolRate)
	if math.Abs(slow-want) > 1e-12 {
		t.Fatalf("airtime %v, want %v", slow, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range MCS must panic")
		}
	}()
	a.Airtime(99, 1)
}
