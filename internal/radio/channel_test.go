package radio

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/mobility"
	"repro/internal/rng"
)

func testChannel(t *testing.T, p Params, n int, seed uint64) *Channel {
	t.Helper()
	c, err := New(p, DefaultAMC(), n, rng.Stream(seed, "chan"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChannelRejectsBadConfig(t *testing.T) {
	src := rng.New(1)
	if _, err := New(DefaultParams(), nil, 0, src); err == nil {
		t.Error("zero clients accepted")
	}
	p := DefaultParams()
	p.FadingStates = 1
	if _, err := New(p, nil, 4, src); err == nil {
		t.Error("bad fading states accepted")
	}
	p = DefaultParams()
	p.DopplerHz = 0
	if _, err := New(p, nil, 4, src); err == nil {
		t.Error("zero doppler accepted")
	}
	bad := &AMC{SymbolRate: 1}
	if _, err := New(DefaultParams(), bad, 4, src); err == nil {
		t.Error("invalid AMC accepted")
	}
}

func TestChannelDeterminism(t *testing.T) {
	mk := func() []float64 {
		c := testChannel(t, DefaultParams(), 16, 77)
		var out []float64
		for i := 0; i < c.N(); i++ {
			for _, at := range []des.Time{0, des.Time(des.Second), des.Time(5 * des.Second)} {
				out = append(out, c.SNRdB(i, at))
			}
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestChannelMeanSNRMode(t *testing.T) {
	p := DefaultParams()
	p.MeanSNRdB = 20
	p.ShadowSigmaDB = 0 // disable shadowing: every client's mean is exact
	c := testChannel(t, p, 50, 3)
	for i := 0; i < c.N(); i++ {
		if got := c.MeanSNRdB(i); got != 20 {
			t.Fatalf("client %d mean %v", i, got)
		}
		if c.DistanceM(i) != 0 {
			t.Fatal("distance must be zero in SNR mode")
		}
	}
}

func TestChannelGeometryMode(t *testing.T) {
	p := DefaultParams()
	p.UseGeometry = true
	p.ShadowSigmaDB = 0
	c := testChannel(t, p, 200, 4)
	for i := 0; i < c.N(); i++ {
		d := c.DistanceM(i)
		if d < p.MinDistanceM || d > p.CellRadiusM {
			t.Fatalf("client %d at distance %v outside annulus", i, d)
		}
		// Mean SNR must follow the path-loss law exactly with shadowing off.
		pl := p.RefLossDB + 10*p.PathLossExp*math.Log10(d)
		want := p.TxPowerDBm - pl - p.NoiseDBm
		if got := c.MeanSNRdB(i); math.Abs(got-want) > 1e-9 {
			t.Fatalf("client %d mean %v, want %v", i, got, want)
		}
	}
	// Closer clients must have higher mean SNR.
	iNear, iFar := 0, 0
	for i := 1; i < c.N(); i++ {
		if c.DistanceM(i) < c.DistanceM(iNear) {
			iNear = i
		}
		if c.DistanceM(i) > c.DistanceM(iFar) {
			iFar = i
		}
	}
	if !(c.MeanSNRdB(iNear) > c.MeanSNRdB(iFar)) {
		t.Fatal("path loss not monotone in distance")
	}
}

func TestChannelLongRunAverage(t *testing.T) {
	p := DefaultParams()
	p.MeanSNRdB = 15
	p.ShadowSigmaDB = 0
	c := testChannel(t, p, 1, 5)
	// Sample instantaneous SNR over a long horizon; the linear average must
	// approach the configured mean.
	sum := 0.0
	const samples = 20000
	for i := 0; i < samples; i++ {
		at := des.Time(i) * des.Time(20*des.Millisecond)
		sum += FromDB(c.SNRdB(0, at))
	}
	got := ToDB(sum / samples)
	if math.Abs(got-15) > 1.0 {
		t.Fatalf("long-run average SNR %v dB, want ~15", got)
	}
}

func TestChannelSnapshot(t *testing.T) {
	c := testChannel(t, DefaultParams(), 10, 6)
	snap := c.Snapshot(des.Time(des.Second))
	if len(snap) != 10 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	for i, s := range snap {
		if got := c.SNRdB(i, des.Time(des.Second)); got != s {
			t.Fatalf("snapshot[%d]=%v but SNRdB=%v", i, s, got)
		}
	}
}

func TestChannelSelectMCSTracksSNR(t *testing.T) {
	p := DefaultParams()
	p.MeanSNRdB = 30
	p.ShadowSigmaDB = 0
	cHigh := testChannel(t, p, 1, 7)
	p.MeanSNRdB = 0
	cLow := testChannel(t, p, 1, 7)
	high, low := 0, 0
	for i := 0; i < 500; i++ {
		at := des.Time(i) * des.Time(des.Second)
		hi, _ := cHigh.SelectMCS(0, at)
		lo, _ := cLow.SelectMCS(0, at)
		high += hi
		low += lo
	}
	if !(high > low) {
		t.Fatalf("high-SNR client not using faster MCS: %d vs %d", high, low)
	}
}

func TestChannelDecodeProbability(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	p.MeanSNRdB = 25
	c := testChannel(t, p, 1, 8)
	okRobust, okFast := 0, 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		at := des.Time(i) * des.Time(100*des.Millisecond)
		if c.Decode(0, at, 0, 4096) {
			okRobust++
		}
		if c.Decode(0, at, len(c.AMC().Table)-1, 4096) {
			okFast++
		}
	}
	if float64(okRobust)/trials < 0.95 {
		t.Errorf("robust MCS decode rate %v at 25 dB", float64(okRobust)/trials)
	}
	// The fastest scheme needs ~23 dB; at mean 25 dB with Rayleigh fading a
	// noticeable fraction of slots are faded below it.
	if !(okFast < okRobust) {
		t.Errorf("fast MCS should lose more frames: robust=%d fast=%d", okRobust, okFast)
	}
}

func TestChannelLazyAdvanceConsistency(t *testing.T) {
	// Querying the same time twice must not advance the fading process.
	c := testChannel(t, DefaultParams(), 1, 9)
	at := des.Time(3 * des.Second)
	a := c.SNRdB(0, at)
	b := c.SNRdB(0, at)
	if a != b {
		t.Fatalf("repeated query changed state: %v vs %v", a, b)
	}
	// Queries within the same fading slot see the same state.
	c2 := c.SNRdB(0, at.Add(des.Microsecond))
	if a != c2 {
		t.Fatalf("same-slot query changed state: %v vs %v", a, c2)
	}
}

func BenchmarkChannelSNR(b *testing.B) {
	c, err := New(DefaultParams(), DefaultAMC(), 100, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.SNRdB(i%100, des.Time(i)*des.Time(des.Millisecond))
	}
}

func TestChannelMobility(t *testing.T) {
	p := DefaultParams()
	p.UseGeometry = true
	p.ShadowSigmaDB = 0
	p.Mobility = &mobility.Config{
		CellRadiusM:  p.CellRadiusM,
		MinDistanceM: p.MinDistanceM,
		SpeedMinMps:  10,
		SpeedMaxMps:  20,
		PauseMeanSec: 0,
	}
	c := testChannel(t, p, 10, 11)
	// Mean SNR must drift over time as the clients move.
	drifted := 0
	for i := 0; i < c.N(); i++ {
		m0 := c.MeanSNRdBAt(i, 0)
		m1 := c.MeanSNRdBAt(i, des.Time(5*des.Minute))
		if math.Abs(m1-m0) > 1 {
			drifted++
		}
		// Distance stays within the cell.
		for s := 0; s < 100; s++ {
			d := c.DistanceMAt(i, des.Time(s)*des.Time(3*des.Second))
			if d < p.MinDistanceM || d > p.CellRadiusM {
				t.Fatalf("client %d at distance %v", i, d)
			}
		}
	}
	if drifted < 7 {
		t.Fatalf("only %d of 10 clients drifted", drifted)
	}
	// Instantaneous SNR must track the drifting mean: linear long-run
	// average over a window should sit near the window's mean SNR.
	i := 0
	sum := 0.0
	const samples = 5000
	for s := 0; s < samples; s++ {
		at := des.Time(6*des.Minute) + des.Time(s)*des.Time(4*des.Millisecond)
		sum += FromDB(c.SNRdB(i, at))
	}
	got := ToDB(sum / samples)
	want := c.MeanSNRdBAt(i, des.Time(6*des.Minute)+des.Time(10*des.Second))
	if math.Abs(got-want) > 3 {
		t.Fatalf("windowed SNR average %v dB, mean %v dB", got, want)
	}
}

func TestChannelMobilityRequiresGeometry(t *testing.T) {
	p := DefaultParams()
	p.Mobility = &mobility.Config{CellRadiusM: 100, SpeedMinMps: 1, SpeedMaxMps: 2}
	if _, err := New(p, DefaultAMC(), 4, rng.New(1)); err == nil {
		t.Fatal("mobility without geometry accepted")
	}
}
