// Package analytic provides the closed-form models the simulation is
// validated against. Each function is the textbook result for an idealized
// version of one subsystem; the cross-check tests (here and in
// internal/core) assert that the simulator converges to these values in the
// regimes where the idealizations hold. A reproduction whose simulator
// cannot recover the known analytic limits cannot be trusted on the
// regimes where no analytic result exists.
package analytic

import "math"

// TSWait is the expected report-wait component of query delay under a
// periodic report of interval L seconds: queries arrive uniformly within
// the interval, so the mean wait is L/2.
func TSWait(intervalSec float64) float64 { return intervalSec / 2 }

// UIRWait is the expected report-wait under Cao's UIR with m sub-intervals:
// a query waits only to the next mini, L/(2m).
func UIRWait(intervalSec float64, m int) float64 {
	return intervalSec / (2 * float64(m))
}

// SlottedAlohaThroughput is the per-slot success probability of slotted
// ALOHA at offered load G (transmission attempts per slot): S = G·e^{−G},
// maximized at G = 1 with S = 1/e.
func SlottedAlohaThroughput(g float64) float64 { return g * math.Exp(-g) }

// MM1Wait is the mean waiting time (excluding service) of an M/M/1 queue
// with arrival rate lambda and service rate mu, in the same time unit. It
// returns +Inf at or beyond saturation.
func MM1Wait(lambda, mu float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	rho := lambda / mu
	return rho / (mu - lambda)
}

// ZipfCDF returns P(rank < k) for a Zipf(theta) law over n items,
// 0-indexed ranks (matching rng.Zipf).
func ZipfCDF(n int, theta float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	num, den := 0.0, 0.0
	for i := 1; i <= n; i++ {
		w := 1 / math.Pow(float64(i), theta)
		den += w
		if i <= k {
			num += w
		}
	}
	return num / den
}

// CheLRUHitRatio is Che's approximation for the hit ratio of an LRU cache
// of capacity c serving independent-reference Zipf(theta) traffic over n
// items. The characteristic time tc solves sum_i (1 − e^{−q_i·tc}) = c;
// the hit ratio is then sum_i q_i (1 − e^{−q_i·tc}).
//
// This is the steady-state, per-client bound: it ignores invalidations and
// cold-start, so the simulator must approach it from below as the update
// rate goes to zero and the horizon grows.
func CheLRUHitRatio(n, capacity int, theta float64) float64 {
	if capacity >= n {
		return 1
	}
	q := make([]float64, n)
	den := 0.0
	for i := range q {
		q[i] = 1 / math.Pow(float64(i+1), theta)
		den += q[i]
	}
	for i := range q {
		q[i] /= den
	}
	occupied := func(tc float64) float64 {
		s := 0.0
		for _, qi := range q {
			s += 1 - math.Exp(-qi*tc)
		}
		return s
	}
	// Bisect for the characteristic time.
	lo, hi := 0.0, float64(n)/q[n-1] // at hi every item is essentially resident
	for occupied(hi) < float64(capacity) {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if occupied(mid) < float64(capacity) {
			lo = mid
		} else {
			hi = mid
		}
	}
	tc := (lo + hi) / 2
	hit := 0.0
	for _, qi := range q {
		hit += qi * (1 - math.Exp(-qi*tc))
	}
	return hit
}

// RayleighOutage is the probability that the instantaneous SNR of a
// Rayleigh channel with mean meanSNR (linear) falls below threshold
// (linear): P(γ < t) = 1 − e^{−t/γ̄}.
func RayleighOutage(thresholdLin, meanLin float64) float64 {
	if meanLin <= 0 {
		return 1
	}
	return 1 - math.Exp(-thresholdLin/meanLin)
}

// ExpectedReportItems is the expected number of distinct items in a report
// covering a window of w seconds, under aggregate update rate u split
// hot/cold: hotItems receive fraction hotFrac uniformly, the remaining
// coldItems the rest. Distinctness saturates per item as
// 1 − e^{−rate_i · w}.
func ExpectedReportItems(u, w, hotFrac float64, hotItems, coldItems int) float64 {
	items := 0.0
	if hotItems > 0 {
		r := u * hotFrac / float64(hotItems)
		items += float64(hotItems) * (1 - math.Exp(-r*w))
	}
	if coldItems > 0 {
		r := u * (1 - hotFrac) / float64(coldItems)
		items += float64(coldItems) * (1 - math.Exp(-r*w))
	}
	return items
}

// DozeEnergyFloor is the minimum energy per query for a client that spends
// sleepRatio of its time dozing and the rest idle-listening, issuing
// queryRate queries per awake second: the radio-state cost that no
// invalidation scheme can remove.
func DozeEnergyFloor(idleW, dozeW, queryRate, sleepRatio float64) float64 {
	if queryRate <= 0 {
		return math.Inf(1)
	}
	// Per awake-second the client burns idleW; its doze tax per awake
	// second is dozeW·sleepRatio/(1−sleepRatio).
	perAwakeSec := idleW + dozeW*sleepRatio/(1-sleepRatio)
	return perAwakeSec / queryRate
}
