package analytic

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestTSAndUIRWait(t *testing.T) {
	if TSWait(20) != 10 {
		t.Fatal("TS wait")
	}
	if UIRWait(20, 4) != 2.5 {
		t.Fatal("UIR wait")
	}
}

func TestSlottedAloha(t *testing.T) {
	peak := SlottedAlohaThroughput(1)
	if math.Abs(peak-1/math.E) > 1e-12 {
		t.Fatalf("peak %v", peak)
	}
	if SlottedAlohaThroughput(0.5) >= peak || SlottedAlohaThroughput(2) >= peak {
		t.Fatal("G=1 must maximize throughput")
	}
}

func TestMM1(t *testing.T) {
	// rho = 0.5: W = 0.5/(mu - lambda) = 0.5/1 = 0.5.
	if got := MM1Wait(1, 2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("W %v", got)
	}
	if !math.IsInf(MM1Wait(2, 2), 1) || !math.IsInf(MM1Wait(3, 2), 1) {
		t.Fatal("saturated queue must be infinite")
	}
	// Wait explodes as rho → 1.
	if !(MM1Wait(1.9, 2) > MM1Wait(1, 2)) {
		t.Fatal("wait not increasing in load")
	}
}

func TestZipfCDF(t *testing.T) {
	if ZipfCDF(10, 0.8, 0) != 0 {
		t.Fatal("empty prefix")
	}
	if math.Abs(ZipfCDF(10, 0.8, 10)-1) > 1e-12 || math.Abs(ZipfCDF(10, 0.8, 99)-1) > 1e-12 {
		t.Fatal("full prefix must be 1")
	}
	// Must match the sampler's analytic probabilities.
	z := rng.NewZipf(50, 0.8)
	want := 0.0
	for k := 0; k < 20; k++ {
		want += z.Prob(k)
	}
	if got := ZipfCDF(50, 0.8, 20); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CDF %v, sampler %v", got, want)
	}
	// theta = 0 degenerates to uniform.
	if got := ZipfCDF(10, 0, 3); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("uniform CDF %v", got)
	}
}

func TestCheLRUAgainstSimulation(t *testing.T) {
	// Drive a real LRU (via a simple map+order model using the rng sampler)
	// and compare with Che's approximation.
	const n, capacity = 500, 100
	const theta = 0.8
	want := CheLRUHitRatio(n, capacity, theta)
	if want <= 0 || want >= 1 {
		t.Fatalf("approximation out of range: %v", want)
	}

	z := rng.NewZipf(n, theta)
	r := rng.New(42)
	type node struct{ prev, next int }
	// Tiny intrusive LRU over item ids.
	next := make(map[int]int)
	prev := make(map[int]int)
	head, tail := -1, -1
	resident := make(map[int]bool)
	removeFromList := func(id int) {
		p, hasP := prev[id], id != head
		nx, hasN := next[id], id != tail
		if hasP {
			next[p] = nx
		} else {
			head = nx
		}
		if hasN {
			prev[nx] = p
		} else {
			tail = p
		}
		delete(prev, id)
		delete(next, id)
	}
	pushFront := func(id int) {
		if head >= 0 {
			prev[head] = id
			next[id] = head
		} else {
			tail = id
		}
		delete(prev, id)
		head = id
		if next[id] == id {
			delete(next, id)
		}
	}
	_ = node{}
	hits, total := 0, 0
	const warm, measure = 200000, 400000
	for i := 0; i < warm+measure; i++ {
		id := z.Sample(r)
		if resident[id] {
			if i >= warm {
				hits++
			}
			removeFromList(id)
			pushFront(id)
		} else {
			if len(resident) == capacity {
				evict := tail
				removeFromList(evict)
				delete(resident, evict)
			}
			resident[id] = true
			pushFront(id)
		}
		if i >= warm {
			total++
		}
	}
	got := float64(hits) / float64(total)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("empirical LRU hit %v vs Che approximation %v", got, want)
	}
}

func TestCheLRUEdgeCases(t *testing.T) {
	if CheLRUHitRatio(100, 100, 0.8) != 1 {
		t.Fatal("full-capacity cache must hit always")
	}
	// More capacity → more hits; more skew → more hits.
	if !(CheLRUHitRatio(1000, 200, 0.8) > CheLRUHitRatio(1000, 100, 0.8)) {
		t.Fatal("capacity monotonicity")
	}
	if !(CheLRUHitRatio(1000, 100, 1.0) > CheLRUHitRatio(1000, 100, 0.5)) {
		t.Fatal("skew monotonicity")
	}
}

func TestRayleighOutage(t *testing.T) {
	if RayleighOutage(1, 0) != 1 {
		t.Fatal("zero mean must always be in outage")
	}
	// At threshold = mean, outage = 1 − 1/e.
	if got := RayleighOutage(5, 5); math.Abs(got-(1-1/math.E)) > 1e-12 {
		t.Fatalf("outage %v", got)
	}
	if !(RayleighOutage(1, 10) < RayleighOutage(5, 10)) {
		t.Fatal("outage not monotone in threshold")
	}
}

func TestExpectedReportItems(t *testing.T) {
	// Tiny window: ≈ u·w (every update is a distinct item).
	small := ExpectedReportItems(1, 0.01, 0.8, 50, 950)
	if math.Abs(small-0.01) > 0.001 {
		t.Fatalf("small window %v", small)
	}
	// Huge window: saturates at the item count receiving updates.
	big := ExpectedReportItems(10, 1e9, 0.8, 50, 950)
	if math.Abs(big-1000) > 1 {
		t.Fatalf("huge window %v", big)
	}
	// Monotone in window.
	if !(ExpectedReportItems(1, 10, 0.8, 50, 950) < ExpectedReportItems(1, 100, 0.8, 50, 950)) {
		t.Fatal("not monotone in window")
	}
	// Zero cold items handled.
	if v := ExpectedReportItems(1, 10, 1, 50, 0); v <= 0 || v > 50 {
		t.Fatalf("hot-only %v", v)
	}
}

func TestDozeEnergyFloor(t *testing.T) {
	// No sleep: just idle power over the query interval.
	if got := DozeEnergyFloor(0.8, 0.05, 0.1, 0); math.Abs(got-8) > 1e-12 {
		t.Fatalf("floor %v", got)
	}
	// Sleeping adds the doze tax.
	if !(DozeEnergyFloor(0.8, 0.05, 0.1, 0.5) > 8) {
		t.Fatal("doze tax missing")
	}
	if !math.IsInf(DozeEnergyFloor(0.8, 0.05, 0, 0), 1) {
		t.Fatal("zero query rate must be infinite")
	}
}
