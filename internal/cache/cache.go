// Package cache implements the client-side data cache whose consistency the
// invalidation algorithms maintain. LRU is the default replacement policy;
// FIFO and Random are available for the replacement ablation.
package cache

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Policy selects the replacement discipline.
type Policy int

// Replacement policies.
const (
	LRU    Policy = iota // evict least recently used; Get promotes
	FIFO                 // evict oldest inserted; Get does not promote
	Random               // evict a uniformly random resident entry
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return "unknown"
	}
}

// ParsePolicy converts a policy name as used in CLI flags.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "lru":
		return LRU, nil
	case "fifo":
		return FIFO, nil
	case "random":
		return Random, nil
	}
	return 0, fmt.Errorf("cache: unknown policy %q", s)
}

// Entry is one cached item, returned by value from lookups.
type Entry struct {
	ID       int
	Version  uint64   // server version of the cached value (ground truth aid)
	CachedAt des.Time // server-side generation time of the cached value
}

// Stats aggregates cache-level events.
type Stats struct {
	Hits          metrics.Counter // Get found a resident entry
	Misses        metrics.Counter // Get found nothing
	Insertions    metrics.Counter
	Evictions     metrics.Counter // capacity evictions only
	Invalidations metrics.Counter // targeted invalidations
	Flushes       metrics.Counter // InvalidateAll calls
}

// nilSlot terminates the intrusive recency list.
const nilSlot = int32(-1)

// Cache is a fixed-capacity cache keyed by item id. Every structure is sized
// by capacity, not universe: entries live in struct-of-arrays slot storage
// linked into a recency list by index (LRU/FIFO order; Random ignores the
// order for eviction but keeps it for Range), and an open-addressing hash
// maps item id → slot. All operations are O(1) with zero per-operation
// allocation, there are no interior pointers — a Cache value can live inside
// a larger SoA table and be recycled with Reset — and the steady-state
// footprint is ~50 bytes per capacity slot regardless of how large the item
// universe is. The deterministic multiplicative hash and the strictly
// sequential slot allocation keep behaviour byte-identical across platforms
// and across Reset recycling.
type Cache struct {
	capacity int
	universe int
	policy   Policy
	src      *rng.Source // Random policy only

	// Slot storage, all length capacity. A slot is in use iff ids[s] >= 0.
	ids      []int32
	versions []uint64
	cachedAt []des.Time
	prev     []int32 // recency list; head = most recent
	next     []int32
	ridx     []int32 // slot → position in resident

	resident []int32 // in-use slots, insertion-ordered (Random eviction index)
	free     []int32 // free slots, popped from the end
	htab     []int32 // open addressing, linear probing; slot+1, 0 = empty
	hshift   uint32  // 32 - log2(len(htab))

	head, tail int32
	size       int
	stats      Stats

	// Tracing (nil tr = disabled). The cache has no clock of its own, so the
	// owner supplies one alongside its client id.
	tr      obs.Tracer
	trOwner int
	trClock func() des.Time
}

// New builds an LRU cache holding up to capacity of universe items.
func New(capacity, universe int) *Cache {
	return NewWithPolicy(capacity, universe, LRU, nil)
}

// NewWithPolicy builds a cache with an explicit replacement policy. src is
// required for Random and ignored otherwise.
func NewWithPolicy(capacity, universe int, policy Policy, src *rng.Source) *Cache {
	c := &Cache{}
	c.Init(capacity, universe, policy, src)
	return c
}

// Init builds the cache in place, so a Cache embedded by value in a larger
// table can be constructed without a separate allocation. It has the same
// contract as NewWithPolicy.
func (c *Cache) Init(capacity, universe int, policy Policy, src *rng.Source) {
	if capacity <= 0 || universe <= 0 || capacity > universe {
		panic(fmt.Sprintf("cache: invalid capacity %d of universe %d", capacity, universe))
	}
	if policy == Random && src == nil {
		panic("cache: Random policy needs a rng source")
	}
	hsize := 8
	for hsize < 2*capacity {
		hsize *= 2
	}
	*c = Cache{
		capacity: capacity,
		universe: universe,
		policy:   policy,
		src:      src,
		ids:      make([]int32, capacity),
		versions: make([]uint64, capacity),
		cachedAt: make([]des.Time, capacity),
		prev:     make([]int32, capacity),
		next:     make([]int32, capacity),
		ridx:     make([]int32, capacity),
		resident: make([]int32, 0, capacity),
		free:     make([]int32, 0, capacity),
		htab:     make([]int32, hsize),
		hshift:   32 - uint32(log2(hsize)),
	}
	c.clear()
}

// clear empties every table, leaving capacity/universe/policy/src/stats.
func (c *Cache) clear() {
	for i := range c.ids {
		c.ids[i] = -1
	}
	for i := range c.htab {
		c.htab[i] = 0
	}
	c.free = c.free[:0]
	for s := c.capacity - 1; s >= 0; s-- {
		c.free = append(c.free, int32(s)) // pops allocate slots 0, 1, 2, …
	}
	c.resident = c.resident[:0]
	c.head, c.tail = nilSlot, nilSlot
	c.size = 0
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// Reset returns the cache to its freshly constructed state — no resident
// entries, zeroed statistics, no tracer — while keeping every table, so a
// pooled cache can serve a new replication without reallocating. src
// replaces the Random-eviction stream (ignored by the other policies);
// capacity, universe and policy are unchanged.
func (c *Cache) Reset(src *rng.Source) {
	if c.policy == Random && src == nil {
		panic("cache: Random policy needs a rng source")
	}
	c.clear()
	c.src = src
	c.stats = Stats{}
	c.tr, c.trOwner, c.trClock = nil, 0, nil
}

// Universe reports the id space size the cache was built for.
func (c *Cache) Universe() int { return c.universe }

// SetTracer attaches an event tracer. owner is the client id stamped on
// every CacheEvent; clock supplies the simulation time. A nil tr disables
// tracing; clock must be non-nil when tr is.
func (c *Cache) SetTracer(tr obs.Tracer, owner int, clock func() des.Time) {
	if tr != nil && clock == nil {
		panic("cache: tracer without clock")
	}
	c.tr, c.trOwner, c.trClock = tr, owner, clock
}

// Policy reports the replacement policy in force.
func (c *Cache) Policy() Policy { return c.policy }

// Capacity reports the maximum number of resident entries.
func (c *Cache) Capacity() int { return c.capacity }

// Len reports the number of resident entries.
func (c *Cache) Len() int { return c.size }

// Stats exposes the accumulated counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// idxHome is the deterministic multiplicative hash (Fibonacci hashing on 32
// bits): pure integer arithmetic, identical on every platform.
func (c *Cache) idxHome(id int32) int {
	return int((uint32(id) * 2654435769) >> c.hshift)
}

// lookup probes for id, returning its slot or nilSlot.
func (c *Cache) lookup(id int32) int32 {
	mask := len(c.htab) - 1
	for i := c.idxHome(id); ; i = (i + 1) & mask {
		s := c.htab[i]
		if s == 0 {
			return nilSlot
		}
		if c.ids[s-1] == id {
			return s - 1
		}
	}
}

// idxInsert records id → slot. id must not already be present.
func (c *Cache) idxInsert(id int32, slot int32) {
	mask := len(c.htab) - 1
	i := c.idxHome(id)
	for c.htab[i] != 0 {
		i = (i + 1) & mask
	}
	c.htab[i] = slot + 1
}

// idxDelete removes id with backward-shift deletion, so probe chains stay
// intact without tombstones.
func (c *Cache) idxDelete(id int32) {
	mask := len(c.htab) - 1
	i := c.idxHome(id)
	for {
		s := c.htab[i]
		if s == 0 {
			return // not present
		}
		if c.ids[s-1] == id {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		s := c.htab[j]
		if s == 0 {
			break
		}
		// The entry at j may fill the hole at i iff its home position does
		// not lie in the cyclic interval (i, j] — otherwise moving it would
		// break its own probe chain.
		h := c.idxHome(c.ids[s-1])
		if (j-h)&mask >= (j-i)&mask {
			c.htab[i] = s
			i = j
		}
	}
	c.htab[i] = 0
}

func (c *Cache) entryAt(s int32) Entry {
	return Entry{ID: int(c.ids[s]), Version: c.versions[s], CachedAt: c.cachedAt[s]}
}

// Contains reports residency without touching recency or counters.
func (c *Cache) Contains(id int) bool { return c.lookup(int32(id)) != nilSlot }

// Peek returns the entry without touching recency or hit/miss counters.
func (c *Cache) Peek(id int) (Entry, bool) {
	s := c.lookup(int32(id))
	if s == nilSlot {
		return Entry{}, false
	}
	return c.entryAt(s), true
}

// Get returns the entry for id and promotes it to most-recently-used,
// recording a hit or miss.
func (c *Cache) Get(id int) (Entry, bool) {
	s := c.lookup(int32(id))
	if s == nilSlot {
		c.stats.Misses.Inc()
		return Entry{}, false
	}
	c.stats.Hits.Inc()
	if c.policy == LRU {
		c.moveToFront(s)
	}
	return c.entryAt(s), true
}

// Put inserts or refreshes the value for id, promoting it and evicting the
// LRU entry if the cache is full.
func (c *Cache) Put(id int, version uint64, cachedAt des.Time) {
	s := c.lookup(int32(id))
	if s != nilSlot {
		c.versions[s] = version
		c.cachedAt[s] = cachedAt
		if c.policy == LRU {
			c.moveToFront(s)
		}
		return
	}
	if c.size == c.capacity {
		victim := c.tail
		if c.policy == Random {
			victim = c.resident[c.src.Intn(len(c.resident))]
		}
		c.evict(victim)
	}
	s = c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.ids[s] = int32(id)
	c.versions[s] = version
	c.cachedAt[s] = cachedAt
	c.idxInsert(int32(id), s)
	c.ridx[s] = int32(len(c.resident))
	c.resident = append(c.resident, s)
	c.size++
	c.stats.Insertions.Inc()
	c.pushFront(s)
}

// release frees slot s: unlinks it, removes it from every index (the
// resident list uses swap-remove, preserving the same position evolution —
// and therefore the same Random-eviction draws — as ever).
func (c *Cache) release(s int32) {
	c.unlink(s)
	c.idxDelete(c.ids[s])
	i := c.ridx[s]
	last := int32(len(c.resident) - 1)
	moved := c.resident[last]
	c.resident[i] = moved
	c.ridx[moved] = i
	c.resident = c.resident[:last]
	c.ids[s] = -1
	c.free = append(c.free, s)
	c.size--
}

// Invalidate removes id if resident, reporting whether it was.
func (c *Cache) Invalidate(id int) bool {
	s := c.lookup(int32(id))
	if s == nilSlot {
		return false
	}
	c.release(s)
	c.stats.Invalidations.Inc()
	if c.tr != nil {
		c.tr.Cache(obs.CacheEvent{At: c.trClock(), Client: c.trOwner, Op: obs.CacheInvalidate, Item: id})
	}
	return true
}

// InvalidateAll drops every entry (the "drop cache" action of schemes whose
// coverage window was exceeded).
func (c *Cache) InvalidateAll() {
	dropped := c.size
	c.clear()
	c.stats.Flushes.Inc()
	if c.tr != nil {
		c.tr.Cache(obs.CacheEvent{At: c.trClock(), Client: c.trOwner, Op: obs.CacheFlush, Item: -1, Count: dropped})
	}
}

// Range calls fn for every resident entry in MRU→LRU order; fn returning
// false stops the walk. fn must not mutate the cache.
func (c *Cache) Range(fn func(e Entry) bool) {
	for s := c.head; s != nilSlot; s = c.next[s] {
		if !fn(c.entryAt(s)) {
			return
		}
	}
}

// ResidentIDs appends all resident ids in MRU→LRU order to buf.
func (c *Cache) ResidentIDs(buf []int) []int {
	for s := c.head; s != nilSlot; s = c.next[s] {
		buf = append(buf, int(c.ids[s]))
	}
	return buf
}

// HitRatio reports hits / (hits + misses), or NaN before any Get.
func (c *Cache) HitRatio() float64 {
	h, m := c.stats.Hits.Value(), c.stats.Misses.Value()
	if h+m == 0 {
		return math.NaN()
	}
	return float64(h) / float64(h+m)
}

func (c *Cache) evict(s int32) {
	id := int(c.ids[s])
	c.release(s)
	c.stats.Evictions.Inc()
	if c.tr != nil {
		c.tr.Cache(obs.CacheEvent{At: c.trClock(), Client: c.trOwner, Op: obs.CacheEvict, Item: id})
	}
}

func (c *Cache) pushFront(s int32) {
	c.prev[s] = nilSlot
	c.next[s] = c.head
	if c.head != nilSlot {
		c.prev[c.head] = s
	}
	c.head = s
	if c.tail == nilSlot {
		c.tail = s
	}
}

func (c *Cache) unlink(s int32) {
	if c.prev[s] != nilSlot {
		c.next[c.prev[s]] = c.next[s]
	} else {
		c.head = c.next[s]
	}
	if c.next[s] != nilSlot {
		c.prev[c.next[s]] = c.prev[s]
	} else {
		c.tail = c.prev[s]
	}
	c.prev[s], c.next[s] = nilSlot, nilSlot
}

func (c *Cache) moveToFront(s int32) {
	if c.head == s {
		return
	}
	c.unlink(s)
	c.pushFront(s)
}

// checkInvariants verifies list/index/slot agreement; used by tests.
func (c *Cache) checkInvariants() error {
	seen := 0
	prev := nilSlot
	for s := c.head; s != nilSlot; s = c.next[s] {
		if c.ids[s] < 0 {
			return fmt.Errorf("cache: free slot %d on list", s)
		}
		if c.prev[s] != prev {
			return fmt.Errorf("cache: back-link broken at slot %d", s)
		}
		if c.lookup(c.ids[s]) != s {
			return fmt.Errorf("cache: index lost id %d (slot %d)", c.ids[s], s)
		}
		if i := c.ridx[s]; i < 0 || int(i) >= len(c.resident) || c.resident[i] != s {
			return fmt.Errorf("cache: resident index broken for slot %d", s)
		}
		prev = s
		seen++
		if seen > c.size {
			return fmt.Errorf("cache: list longer than size %d", c.size)
		}
	}
	if seen != c.size {
		return fmt.Errorf("cache: list %d entries, size %d", seen, c.size)
	}
	if c.tail != prev {
		return fmt.Errorf("cache: tail mismatch")
	}
	if c.size > c.capacity {
		return fmt.Errorf("cache: size %d over capacity %d", c.size, c.capacity)
	}
	if len(c.resident) != c.size {
		return fmt.Errorf("cache: %d indexed, size %d", len(c.resident), c.size)
	}
	if len(c.free)+c.size != c.capacity {
		return fmt.Errorf("cache: %d free + %d used != capacity %d", len(c.free), c.size, c.capacity)
	}
	inIndex := 0
	for _, s := range c.htab {
		if s == 0 {
			continue
		}
		inIndex++
		if c.ids[s-1] < 0 {
			return fmt.Errorf("cache: index points at free slot %d", s-1)
		}
	}
	if inIndex != c.size {
		return fmt.Errorf("cache: %d index entries, size %d", inIndex, c.size)
	}
	return nil
}
