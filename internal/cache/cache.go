// Package cache implements the client-side data cache whose consistency the
// invalidation algorithms maintain. LRU is the default replacement policy;
// FIFO and Random are available for the replacement ablation.
package cache

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Policy selects the replacement discipline.
type Policy int

// Replacement policies.
const (
	LRU    Policy = iota // evict least recently used; Get promotes
	FIFO                 // evict oldest inserted; Get does not promote
	Random               // evict a uniformly random resident entry
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return "unknown"
	}
}

// ParsePolicy converts a policy name as used in CLI flags.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "lru":
		return LRU, nil
	case "fifo":
		return FIFO, nil
	case "random":
		return Random, nil
	}
	return 0, fmt.Errorf("cache: unknown policy %q", s)
}

// Entry is one cached item.
type Entry struct {
	ID       int
	Version  uint64   // server version of the cached value (ground truth aid)
	CachedAt des.Time // server-side generation time of the cached value

	prev, next *Entry // intrusive LRU list; head = most recent
	resident   bool
}

// Stats aggregates cache-level events.
type Stats struct {
	Hits          metrics.Counter // Get found a resident entry
	Misses        metrics.Counter // Get found nothing
	Insertions    metrics.Counter
	Evictions     metrics.Counter // capacity evictions only
	Invalidations metrics.Counter // targeted invalidations
	Flushes       metrics.Counter // InvalidateAll calls
}

// Cache is a fixed-capacity cache keyed by item id. Ids must be < the
// universe size given at construction; the id-indexed entry table makes
// every operation O(1) with zero per-operation allocation. The intrusive
// list orders entries by recency (LRU) or insertion (FIFO); Random ignores
// the order for eviction but keeps it for Range.
type Cache struct {
	capacity int
	policy   Policy
	src      *rng.Source // Random policy only
	entries  []Entry     // indexed by item id; resident flag marks membership
	head     *Entry      // most recently used / most recently inserted
	tail     *Entry      // eviction end for LRU and FIFO
	resident []int       // ids of resident entries (Random eviction index)
	slot     []int       // entry id → index in resident, -1 if absent
	size     int
	stats    Stats

	// Tracing (nil tr = disabled). The cache has no clock of its own, so the
	// owner supplies one alongside its client id.
	tr      obs.Tracer
	trOwner int
	trClock func() des.Time
}

// New builds an LRU cache holding up to capacity of universe items.
func New(capacity, universe int) *Cache {
	return NewWithPolicy(capacity, universe, LRU, nil)
}

// NewWithPolicy builds a cache with an explicit replacement policy. src is
// required for Random and ignored otherwise.
func NewWithPolicy(capacity, universe int, policy Policy, src *rng.Source) *Cache {
	if capacity <= 0 || universe <= 0 || capacity > universe {
		panic(fmt.Sprintf("cache: invalid capacity %d of universe %d", capacity, universe))
	}
	if policy == Random && src == nil {
		panic("cache: Random policy needs a rng source")
	}
	c := &Cache{
		capacity: capacity,
		policy:   policy,
		src:      src,
		entries:  make([]Entry, universe),
		resident: make([]int, 0, capacity),
		slot:     make([]int, universe),
	}
	for i := range c.entries {
		c.entries[i].ID = i
		c.slot[i] = -1
	}
	return c
}

// Reset returns the cache to its freshly constructed state — no resident
// entries, zeroed statistics, no tracer — while keeping the O(universe)
// entry and index tables, so a pooled cache can serve a new replication
// without reallocating. src replaces the Random-eviction stream (ignored by
// the other policies); capacity, universe and policy are unchanged.
func (c *Cache) Reset(src *rng.Source) {
	if c.policy == Random && src == nil {
		panic("cache: Random policy needs a rng source")
	}
	for e := c.head; e != nil; {
		next := e.next
		e.Version = 0
		e.CachedAt = 0
		e.prev, e.next = nil, nil
		e.resident = false
		c.slot[e.ID] = -1
		e = next
	}
	c.resident = c.resident[:0]
	c.head, c.tail = nil, nil
	c.size = 0
	c.src = src
	c.stats = Stats{}
	c.tr, c.trOwner, c.trClock = nil, 0, nil
}

// Universe reports the id space size the cache was built for.
func (c *Cache) Universe() int { return len(c.entries) }

// SetTracer attaches an event tracer. owner is the client id stamped on
// every CacheEvent; clock supplies the simulation time. A nil tr disables
// tracing; clock must be non-nil when tr is.
func (c *Cache) SetTracer(tr obs.Tracer, owner int, clock func() des.Time) {
	if tr != nil && clock == nil {
		panic("cache: tracer without clock")
	}
	c.tr, c.trOwner, c.trClock = tr, owner, clock
}

// Policy reports the replacement policy in force.
func (c *Cache) Policy() Policy { return c.policy }

// Capacity reports the maximum number of resident entries.
func (c *Cache) Capacity() int { return c.capacity }

// Len reports the number of resident entries.
func (c *Cache) Len() int { return c.size }

// Stats exposes the accumulated counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// Contains reports residency without touching recency or counters.
func (c *Cache) Contains(id int) bool { return c.entries[id].resident }

// Peek returns the entry without touching recency or hit/miss counters.
func (c *Cache) Peek(id int) (Entry, bool) {
	e := &c.entries[id]
	if !e.resident {
		return Entry{}, false
	}
	return *e, true
}

// Get returns the entry for id and promotes it to most-recently-used,
// recording a hit or miss.
func (c *Cache) Get(id int) (Entry, bool) {
	e := &c.entries[id]
	if !e.resident {
		c.stats.Misses.Inc()
		return Entry{}, false
	}
	c.stats.Hits.Inc()
	if c.policy == LRU {
		c.moveToFront(e)
	}
	return *e, true
}

// Put inserts or refreshes the value for id, promoting it and evicting the
// LRU entry if the cache is full.
func (c *Cache) Put(id int, version uint64, cachedAt des.Time) {
	e := &c.entries[id]
	if e.resident {
		e.Version = version
		e.CachedAt = cachedAt
		if c.policy == LRU {
			c.moveToFront(e)
		}
		return
	}
	if c.size == c.capacity {
		victim := c.tail
		if c.policy == Random {
			victim = &c.entries[c.resident[c.src.Intn(len(c.resident))]]
		}
		c.evict(victim)
	}
	e.Version = version
	e.CachedAt = cachedAt
	e.resident = true
	c.size++
	c.trackResident(e.ID)
	c.stats.Insertions.Inc()
	c.pushFront(e)
}

// trackResident registers id in the random-eviction index.
func (c *Cache) trackResident(id int) {
	c.slot[id] = len(c.resident)
	c.resident = append(c.resident, id)
}

// untrackResident removes id from the random-eviction index (swap-remove).
func (c *Cache) untrackResident(id int) {
	i := c.slot[id]
	last := len(c.resident) - 1
	moved := c.resident[last]
	c.resident[i] = moved
	c.slot[moved] = i
	c.resident = c.resident[:last]
	c.slot[id] = -1
}

// Invalidate removes id if resident, reporting whether it was.
func (c *Cache) Invalidate(id int) bool {
	e := &c.entries[id]
	if !e.resident {
		return false
	}
	c.unlink(e)
	e.resident = false
	c.size--
	c.untrackResident(e.ID)
	c.stats.Invalidations.Inc()
	if c.tr != nil {
		c.tr.Cache(obs.CacheEvent{At: c.trClock(), Client: c.trOwner, Op: obs.CacheInvalidate, Item: id})
	}
	return true
}

// InvalidateAll drops every entry (the "drop cache" action of schemes whose
// coverage window was exceeded).
func (c *Cache) InvalidateAll() {
	dropped := c.size
	for e := c.head; e != nil; {
		next := e.next
		e.resident = false
		e.prev, e.next = nil, nil
		c.slot[e.ID] = -1
		e = next
	}
	c.resident = c.resident[:0]
	c.head, c.tail = nil, nil
	c.size = 0
	c.stats.Flushes.Inc()
	if c.tr != nil {
		c.tr.Cache(obs.CacheEvent{At: c.trClock(), Client: c.trOwner, Op: obs.CacheFlush, Item: -1, Count: dropped})
	}
}

// Range calls fn for every resident entry in MRU→LRU order; fn returning
// false stops the walk. fn must not mutate the cache.
func (c *Cache) Range(fn func(e Entry) bool) {
	for e := c.head; e != nil; e = e.next {
		if !fn(*e) {
			return
		}
	}
}

// ResidentIDs appends all resident ids in MRU→LRU order to buf.
func (c *Cache) ResidentIDs(buf []int) []int {
	for e := c.head; e != nil; e = e.next {
		buf = append(buf, e.ID)
	}
	return buf
}

// HitRatio reports hits / (hits + misses), or NaN before any Get.
func (c *Cache) HitRatio() float64 {
	h, m := c.stats.Hits.Value(), c.stats.Misses.Value()
	if h+m == 0 {
		return math.NaN()
	}
	return float64(h) / float64(h+m)
}

func (c *Cache) evict(e *Entry) {
	c.unlink(e)
	e.resident = false
	c.size--
	c.untrackResident(e.ID)
	c.stats.Evictions.Inc()
	if c.tr != nil {
		c.tr.Cache(obs.CacheEvent{At: c.trClock(), Client: c.trOwner, Op: obs.CacheEvict, Item: e.ID})
	}
}

func (c *Cache) pushFront(e *Entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *Entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// checkInvariants verifies list/table agreement; used by tests.
func (c *Cache) checkInvariants() error {
	seen := 0
	var prev *Entry
	for e := c.head; e != nil; e = e.next {
		if !e.resident {
			return fmt.Errorf("cache: non-resident %d on list", e.ID)
		}
		if e.prev != prev {
			return fmt.Errorf("cache: back-link broken at %d", e.ID)
		}
		prev = e
		seen++
		if seen > c.size {
			return fmt.Errorf("cache: list longer than size %d", c.size)
		}
	}
	if seen != c.size {
		return fmt.Errorf("cache: list %d entries, size %d", seen, c.size)
	}
	if c.tail != prev {
		return fmt.Errorf("cache: tail mismatch")
	}
	if c.size > c.capacity {
		return fmt.Errorf("cache: size %d over capacity %d", c.size, c.capacity)
	}
	resident := 0
	for i := range c.entries {
		if c.entries[i].resident {
			resident++
			if c.slot[i] < 0 || c.slot[i] >= len(c.resident) || c.resident[c.slot[i]] != i {
				return fmt.Errorf("cache: resident index broken for %d", i)
			}
		} else if c.slot[i] != -1 {
			return fmt.Errorf("cache: ghost %d in resident index", i)
		}
	}
	if resident != c.size || len(c.resident) != c.size {
		return fmt.Errorf("cache: %d resident flags, %d indexed, size %d",
			resident, len(c.resident), c.size)
	}
	return nil
}
