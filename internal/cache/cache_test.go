package cache

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/rng"
)

func TestNewPanics(t *testing.T) {
	for _, c := range [][2]int{{0, 10}, {5, 0}, {11, 10}} {
		c := c
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) accepted", c[0], c[1])
				}
			}()
			New(c[0], c[1])
		}()
	}
}

func TestPutGetBasic(t *testing.T) {
	c := New(4, 100)
	if _, ok := c.Get(3); ok {
		t.Fatal("empty cache returned an entry")
	}
	c.Put(3, 7, des.Time(100))
	e, ok := c.Get(3)
	if !ok || e.ID != 3 || e.Version != 7 || e.CachedAt != des.Time(100) {
		t.Fatalf("entry %+v ok=%v", e, ok)
	}
	if c.Len() != 1 || c.Capacity() != 4 {
		t.Fatalf("len/cap %d/%d", c.Len(), c.Capacity())
	}
	// Refresh overwrites in place.
	c.Put(3, 8, des.Time(200))
	if e, _ := c.Get(3); e.Version != 8 {
		t.Fatalf("refresh lost: %+v", e)
	}
	if c.Len() != 1 {
		t.Fatal("refresh grew the cache")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(3, 10)
	c.Put(0, 1, 0)
	c.Put(1, 1, 0)
	c.Put(2, 1, 0)
	c.Get(0)       // recency now: 0, 2, 1
	c.Put(3, 1, 0) // evicts 1
	if c.Contains(1) {
		t.Fatal("LRU entry 1 not evicted")
	}
	for _, id := range []int{0, 2, 3} {
		if !c.Contains(id) {
			t.Fatalf("entry %d missing", id)
		}
	}
	if c.Stats().Evictions.Value() != 1 {
		t.Fatalf("evictions %d", c.Stats().Evictions.Value())
	}
	ids := c.ResidentIDs(nil)
	want := []int{3, 0, 2} // MRU first
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order %v, want %v", ids, want)
		}
	}
}

func TestPeekDoesNotPromoteOrCount(t *testing.T) {
	c := New(2, 10)
	c.Put(0, 1, 0)
	c.Put(1, 1, 0)
	if _, ok := c.Peek(0); !ok {
		t.Fatal("Peek missed resident entry")
	}
	if _, ok := c.Peek(5); ok {
		t.Fatal("Peek found ghost")
	}
	h, m := c.Stats().Hits.Value(), c.Stats().Misses.Value()
	if h != 0 || m != 0 {
		t.Fatal("Peek touched counters")
	}
	c.Put(2, 1, 0) // must evict 0 (Peek must not have promoted it)
	if c.Contains(0) || !c.Contains(1) {
		t.Fatal("Peek promoted the entry")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4, 10)
	c.Put(5, 1, 0)
	if !c.Invalidate(5) {
		t.Fatal("Invalidate missed resident entry")
	}
	if c.Invalidate(5) {
		t.Fatal("double invalidate reported true")
	}
	if c.Contains(5) || c.Len() != 0 {
		t.Fatal("entry survived invalidation")
	}
	// No resurrection: Get must miss.
	if _, ok := c.Get(5); ok {
		t.Fatal("invalidated entry resurrected")
	}
	if c.Stats().Invalidations.Value() != 1 {
		t.Fatal("invalidation count wrong")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(8, 20)
	for i := 0; i < 8; i++ {
		c.Put(i, 1, 0)
	}
	c.InvalidateAll()
	if c.Len() != 0 {
		t.Fatalf("len %d after flush", c.Len())
	}
	for i := 0; i < 8; i++ {
		if c.Contains(i) {
			t.Fatalf("entry %d survived flush", i)
		}
	}
	if c.Stats().Flushes.Value() != 1 {
		t.Fatal("flush count wrong")
	}
	// Cache remains usable after a flush.
	c.Put(3, 2, 5)
	if _, ok := c.Get(3); !ok {
		t.Fatal("cache broken after flush")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	c := New(4, 10)
	for i := 0; i < 4; i++ {
		c.Put(i, uint64(i), 0)
	}
	var got []int
	c.Range(func(e Entry) bool {
		got = append(got, e.ID)
		return true
	})
	want := []int{3, 2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range order %v", got)
		}
	}
	// Early stop.
	n := 0
	c.Range(func(Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestHitRatio(t *testing.T) {
	c := New(2, 10)
	if !math.IsNaN(c.HitRatio()) {
		t.Fatal("hit ratio before any Get must be NaN")
	}
	c.Put(0, 1, 0)
	c.Get(0)
	c.Get(1)
	if got := c.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio %v", got)
	}
}

// TestRandomOpsInvariants drives random operation sequences against a naive
// model and checks both behavioural equivalence and structural invariants.
func TestRandomOpsInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const capacity, universe = 8, 32
		c := New(capacity, universe)
		model := make(map[int]uint64) // id → version
		var order []int               // MRU-first, mirrors the LRU list

		touch := func(id int) {
			for i, v := range order {
				if v == id {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append([]int{id}, order...)
		}
		remove := func(id int) {
			for i, v := range order {
				if v == id {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			delete(model, id)
		}

		for op := 0; op < 500; op++ {
			id := r.Intn(universe)
			switch r.Intn(4) {
			case 0: // Put
				ver := r.Uint64()
				if _, ok := model[id]; !ok && len(model) == capacity {
					remove(order[len(order)-1]) // model eviction
				}
				model[id] = ver
				c.Put(id, ver, des.Time(op))
				touch(id)
			case 1: // Get
				e, ok := c.Get(id)
				wantVer, wantOk := model[id]
				if ok != wantOk || (ok && e.Version != wantVer) {
					return false
				}
				if ok {
					touch(id)
				}
			case 2: // Invalidate
				got := c.Invalidate(id)
				_, want := model[id]
				if got != want {
					return false
				}
				remove(id)
			case 3: // occasionally flush
				if r.Intn(20) == 0 {
					c.InvalidateAll()
					model = make(map[int]uint64)
					order = nil
				}
			}
			if c.checkInvariants() != nil {
				return false
			}
			if c.Len() != len(model) {
				return false
			}
		}
		// Final order agreement.
		got := c.ResidentIDs(nil)
		if len(got) != len(order) {
			return false
		}
		for i := range got {
			if got[i] != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCacheGetPut(b *testing.B) {
	c := New(100, 1000)
	r := rng.New(1)
	z := rng.NewZipf(1000, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := z.Sample(r)
		if _, ok := c.Get(id); !ok {
			c.Put(id, uint64(i), des.Time(i))
		}
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" ||
		Random.String() != "random" || Policy(9).String() != "unknown" {
		t.Fatal("Policy.String broken")
	}
	for _, c := range []struct {
		in   string
		want Policy
	}{{"lru", LRU}, {"fifo", FIFO}, {"random", Random}} {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParsePolicy("clock"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestFIFONoPromotion(t *testing.T) {
	c := NewWithPolicy(3, 10, FIFO, nil)
	c.Put(0, 1, 0)
	c.Put(1, 1, 0)
	c.Put(2, 1, 0)
	c.Get(0)       // must NOT promote under FIFO
	c.Put(3, 1, 0) // evicts 0 (oldest inserted) despite the recent Get
	if c.Contains(0) {
		t.Fatal("FIFO promoted on Get")
	}
	if !c.Contains(1) || !c.Contains(2) || !c.Contains(3) {
		t.Fatal("FIFO evicted the wrong entry")
	}
	// Re-Put of a resident entry must not reorder either.
	c.Put(1, 2, 0)
	c.Put(4, 1, 0) // evicts 1: insertion order 1,2,3
	if c.Contains(1) {
		t.Fatal("FIFO promoted on refresh Put")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomEviction(t *testing.T) {
	src := rng.New(1)
	c := NewWithPolicy(4, 300, Random, src)
	if c.Policy() != Random {
		t.Fatal("policy accessor")
	}
	for i := 0; i < 4; i++ {
		c.Put(i, 1, 0)
	}
	// Insert many more; victims must be spread (not always the same slot).
	evictedSomethingRecent := false
	for i := 4; i < 200; i++ {
		recent := c.ResidentIDs(nil)[0]
		c.Put(i, 1, 0)
		if !c.Contains(recent) {
			evictedSomethingRecent = true
		}
		if c.Len() != 4 {
			t.Fatalf("len %d", c.Len())
		}
		if err := c.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if !evictedSomethingRecent {
		t.Fatal("random eviction never hit a recent entry in 196 trials")
	}
}

func TestRandomNeedsSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Random without source accepted")
		}
	}()
	NewWithPolicy(2, 4, Random, nil)
}

func TestPolicyHitOrdering(t *testing.T) {
	// Under Zipf traffic LRU must beat FIFO and Random on hit ratio.
	hit := func(p Policy) float64 {
		var c *Cache
		if p == Random {
			c = NewWithPolicy(50, 500, p, rng.New(2))
		} else {
			c = NewWithPolicy(50, 500, p, nil)
		}
		r := rng.New(3)
		z := rng.NewZipf(500, 0.9)
		for i := 0; i < 200000; i++ {
			id := z.Sample(r)
			if _, ok := c.Get(id); !ok {
				c.Put(id, 1, des.Time(i))
			}
		}
		return c.HitRatio()
	}
	lru, fifo, random := hit(LRU), hit(FIFO), hit(Random)
	if !(lru > fifo) || !(lru > random) {
		t.Fatalf("LRU %.3f must beat FIFO %.3f and Random %.3f", lru, fifo, random)
	}
}
