package cache

import (
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
)

// driveOps applies a deterministic mixed workload and returns the resulting
// observable state as (stats, resident ids in MRU order).
func driveOps(c *Cache, seed uint64) (Stats, []int) {
	src := rng.New(seed)
	for i := 0; i < 500; i++ {
		id := src.Intn(c.Universe())
		switch src.Intn(4) {
		case 0:
			c.Put(id, uint64(i), des.Time(i))
		case 1:
			c.Get(id)
		case 2:
			c.Invalidate(id)
		case 3:
			if i%97 == 0 {
				c.InvalidateAll()
			} else {
				c.Peek(id)
			}
		}
	}
	return *c.Stats(), c.ResidentIDs(nil)
}

// TestResetMatchesFresh drives a cache hard, Resets it, and checks that the
// recycled cache reproduces a fresh cache's behaviour exactly — same stats,
// same residency order — for every policy.
func TestResetMatchesFresh(t *testing.T) {
	for _, policy := range []Policy{LRU, FIFO, Random} {
		t.Run(policy.String(), func(t *testing.T) {
			recycled := NewWithPolicy(8, 64, policy, rng.New(1))
			driveOps(recycled, 99) // arbitrary history to clear
			recycled.Reset(rng.New(2))
			if err := recycled.checkInvariants(); err != nil {
				t.Fatalf("after Reset: %v", err)
			}
			if recycled.Len() != 0 {
				t.Fatalf("Reset left %d resident", recycled.Len())
			}
			if s := recycled.Stats(); *s != (Stats{}) {
				t.Fatalf("Reset kept stats %+v", *s)
			}

			fresh := NewWithPolicy(8, 64, policy, rng.New(2))
			gotStats, gotIDs := driveOps(recycled, 7)
			wantStats, wantIDs := driveOps(fresh, 7)
			if gotStats != wantStats {
				t.Errorf("stats diverged: recycled %+v, fresh %+v", gotStats, wantStats)
			}
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("residency diverged: %v vs %v", gotIDs, wantIDs)
			}
			for i := range gotIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("residency order diverged: %v vs %v", gotIDs, wantIDs)
				}
			}
			if err := recycled.checkInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestResetClearsEntryValues verifies stale versions cannot leak through a
// Reset: an id cached before the Reset reads as absent after it.
func TestResetClearsEntryValues(t *testing.T) {
	c := New(4, 16)
	c.Put(3, 77, des.Time(5))
	c.Reset(nil)
	if _, ok := c.Peek(3); ok {
		t.Fatal("entry survived Reset")
	}
	if c.Contains(3) {
		t.Fatal("residency flag survived Reset")
	}
}
