// Package workload provides the client-side stochastic processes: Zipf item
// selection with exponential think times, and the awake/doze (disconnection)
// alternation that stresses the invalidation schemes' coverage windows.
package workload

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/rng"
)

// Config parameterizes one client population's behaviour.
type Config struct {
	QueryRate float64 // queries per second per client while awake
	Zipf      float64 // access skew over the item space
	NumItems  int

	// SleepRatio is the long-run fraction of time a client is dozing
	// (disconnected). AwakeMeanSec sets the mean awake period; the mean doze
	// period follows from the ratio. Both periods are exponential.
	SleepRatio   float64
	AwakeMeanSec float64
}

// DefaultConfig mirrors the literature's canonical client: one query per
// 10 s while awake, Zipf 0.8, no disconnection.
func DefaultConfig(numItems int) Config {
	return Config{
		QueryRate:    0.1,
		Zipf:         0.8,
		NumItems:     numItems,
		SleepRatio:   0,
		AwakeMeanSec: 100,
	}
}

// Validate reports the first configuration problem.
func (c Config) Validate() error {
	switch {
	case c.QueryRate < 0:
		return fmt.Errorf("workload: QueryRate %v", c.QueryRate)
	case c.Zipf < 0:
		return fmt.Errorf("workload: Zipf %v", c.Zipf)
	case c.NumItems <= 0:
		return fmt.Errorf("workload: NumItems %d", c.NumItems)
	case c.SleepRatio < 0 || c.SleepRatio >= 1:
		return fmt.Errorf("workload: SleepRatio %v", c.SleepRatio)
	case c.SleepRatio > 0 && c.AwakeMeanSec <= 0:
		return fmt.Errorf("workload: AwakeMeanSec %v with sleeping enabled", c.AwakeMeanSec)
	}
	return nil
}

// SleepMeanSec reports the mean doze period implied by the ratio.
func (c Config) SleepMeanSec() float64 {
	if c.SleepRatio == 0 {
		return 0
	}
	return c.AwakeMeanSec * c.SleepRatio / (1 - c.SleepRatio)
}

// Sampler draws one client's behaviour from its private stream. The Zipf
// table is shared across clients (same popularity law); the stream is not.
type Sampler struct {
	cfg  Config
	zipf *rng.Zipf
	src  *rng.Source
}

// NewSampler builds a sampler. zipf must be built over cfg.NumItems; sharing
// one table across all clients avoids N copies of the CDF.
func NewSampler(cfg Config, zipf *rng.Zipf, src *rng.Source) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if zipf.N() != cfg.NumItems {
		return nil, fmt.Errorf("workload: zipf table over %d items, config %d", zipf.N(), cfg.NumItems)
	}
	return &Sampler{cfg: cfg, zipf: zipf, src: src}, nil
}

// NextQueryGap draws the think time to the next query. A zero QueryRate
// returns des.Duration of ~forever (no queries).
func (s *Sampler) NextQueryGap() des.Duration {
	if s.cfg.QueryRate == 0 {
		return des.Duration(1<<62 - 1)
	}
	return des.FromSeconds(s.src.Exp(s.cfg.QueryRate))
}

// NextItem draws the item the next query asks for.
func (s *Sampler) NextItem() int { return s.zipf.Sample(s.src) }

// Sleeps reports whether this client ever dozes.
func (s *Sampler) Sleeps() bool { return s.cfg.SleepRatio > 0 }

// NextAwake draws the next awake period length.
func (s *Sampler) NextAwake() des.Duration {
	return des.FromSeconds(s.src.Exp(1 / s.cfg.AwakeMeanSec))
}

// NextSleep draws the next doze period length.
func (s *Sampler) NextSleep() des.Duration {
	return des.FromSeconds(s.src.Exp(1 / s.cfg.SleepMeanSec()))
}
