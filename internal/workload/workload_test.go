package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(100).Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*Config){
		func(c *Config) { c.QueryRate = -1 },
		func(c *Config) { c.Zipf = -0.1 },
		func(c *Config) { c.NumItems = 0 },
		func(c *Config) { c.SleepRatio = 1 },
		func(c *Config) { c.SleepRatio = -0.1 },
		func(c *Config) { c.SleepRatio = 0.5; c.AwakeMeanSec = 0 },
	}
	for i, f := range mut {
		c := DefaultConfig(100)
		f(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSleepMean(t *testing.T) {
	c := DefaultConfig(10)
	if c.SleepMeanSec() != 0 {
		t.Fatal("no-sleep config must report zero sleep mean")
	}
	c.SleepRatio = 0.5
	c.AwakeMeanSec = 100
	if got := c.SleepMeanSec(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("50%% ratio sleep mean %v", got)
	}
	c.SleepRatio = 0.75
	if got := c.SleepMeanSec(); math.Abs(got-300) > 1e-9 {
		t.Fatalf("75%% ratio sleep mean %v", got)
	}
}

func TestNewSamplerRejects(t *testing.T) {
	z := rng.NewZipf(100, 0.8)
	bad := DefaultConfig(100)
	bad.QueryRate = -1
	if _, err := NewSampler(bad, z, rng.New(1)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewSampler(DefaultConfig(50), z, rng.New(1)); err == nil {
		t.Error("mismatched zipf table accepted")
	}
}

func TestQueryGapMean(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.QueryRate = 0.1 // mean gap 10 s
	s, err := NewSampler(cfg, rng.NewZipf(100, cfg.Zipf), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += s.NextQueryGap().Seconds()
	}
	if got := sum / n; math.Abs(got-10) > 0.2 {
		t.Fatalf("mean gap %v, want ~10", got)
	}
}

func TestZeroQueryRate(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.QueryRate = 0
	s, err := NewSampler(cfg, rng.NewZipf(100, cfg.Zipf), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.NextQueryGap().Seconds() < 1e9 {
		t.Fatal("zero rate must push queries past any horizon")
	}
}

func TestItemsFollowZipf(t *testing.T) {
	cfg := DefaultConfig(20)
	z := rng.NewZipf(20, cfg.Zipf)
	s, err := NewSampler(cfg, z, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 20)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.NextItem()]++
	}
	for k := 0; k < 20; k++ {
		got := float64(counts[k]) / n
		if math.Abs(got-z.Prob(k)) > 0.01 {
			t.Errorf("P(%d) = %v, want %v", k, got, z.Prob(k))
		}
	}
}

func TestSleepDutyCycle(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.SleepRatio = 0.25
	cfg.AwakeMeanSec = 60
	s, err := NewSampler(cfg, rng.NewZipf(10, cfg.Zipf), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Sleeps() {
		t.Fatal("Sleeps() false with ratio 0.25")
	}
	awake, asleep := 0.0, 0.0
	for i := 0; i < 20000; i++ {
		awake += s.NextAwake().Seconds()
		asleep += s.NextSleep().Seconds()
	}
	got := asleep / (awake + asleep)
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("duty cycle %v, want 0.25", got)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []int {
		cfg := DefaultConfig(50)
		s, _ := NewSampler(cfg, rng.NewZipf(50, cfg.Zipf), rng.New(6))
		var out []int
		for i := 0; i < 100; i++ {
			out = append(out, s.NextItem(), int(s.NextQueryGap()))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}
