package metrics

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

// sketchRNG is a tiny deterministic generator so tests never depend on the
// global math/rand ordering.
type sketchRNG uint64

func (r *sketchRNG) next() uint64 {
	*r ^= *r << 13
	*r ^= *r >> 7
	*r ^= *r << 17
	return uint64(*r)
}

func (r *sketchRNG) float() float64 { return float64(r.next()%1e9) / 1e9 }

// sketchSamples draws n latency-like values spanning several decades.
func sketchSamples(seed uint64, n int) []float64 {
	r := sketchRNG(seed)
	out := make([]float64, n)
	for i := range out {
		// Log-uniform over [50µs, 500s) with occasional zeros.
		if r.next()%97 == 0 {
			out[i] = 0
			continue
		}
		out[i] = 50e-6 * math.Pow(1e7, r.float())
	}
	return out
}

// TestSketchMergeOrderByteIdentical is the determinism contract: the same
// observations, split into shards any way and merged in any order or
// association, serialize to byte-identical sketches — the sketch-level
// equivalent of the harness's worker-count invariance.
func TestSketchMergeOrderByteIdentical(t *testing.T) {
	samples := sketchSamples(7, 5000)

	direct := NewDelaySketch()
	for _, x := range samples {
		direct.Observe(x)
	}
	want, _ := direct.MarshalBinary()

	// Shard round-robin into 4, merge in reversed order.
	shards := make([]*Sketch, 4)
	for i := range shards {
		shards[i] = NewDelaySketch()
	}
	for i, x := range samples {
		shards[i%4].Observe(x)
	}
	reversed := NewDelaySketch()
	for i := len(shards) - 1; i >= 0; i-- {
		reversed.Merge(shards[i])
	}
	if got, _ := reversed.MarshalBinary(); !bytes.Equal(got, want) {
		t.Fatal("reversed shard merge is not byte-identical to direct observation")
	}

	// Different association: ((0+1)+(2+3)) vs (((0+1)+2)+3).
	left := shards[0].Clone()
	left.Merge(shards[1])
	right := shards[2].Clone()
	right.Merge(shards[3])
	left.Merge(right)
	if got, _ := left.MarshalBinary(); !bytes.Equal(got, want) {
		t.Fatal("re-associated merge is not byte-identical to direct observation")
	}

	// Interleaved observation order (odd indices first) changes nothing.
	interleaved := NewDelaySketch()
	for i := 1; i < len(samples); i += 2 {
		interleaved.Observe(samples[i])
	}
	for i := 0; i < len(samples); i += 2 {
		interleaved.Observe(samples[i])
	}
	if got, _ := interleaved.MarshalBinary(); !bytes.Equal(got, want) {
		t.Fatal("interleaved observation order is not byte-identical")
	}
}

// TestSketchQuantileAccuracy bounds the sketch's quantile estimates against
// the exact order statistics of the stream: the estimate must stay within
// one bucket's relative width (the layout's growth factor, plus quantization
// slack) of the true value.
func TestSketchQuantileAccuracy(t *testing.T) {
	samples := sketchSamples(42, 20000)
	s := NewDelaySketch()
	for _, x := range samples {
		s.Observe(x)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank == 0 {
			rank = 1
		}
		exact := sorted[rank-1]
		got := s.Quantile(q)
		if exact == 0 {
			if got != 0 {
				t.Errorf("q=%g: got %g, want 0", q, got)
			}
			continue
		}
		// The estimate and the exact value share a bucket (or adjacent
		// ranks fall into neighbours), so the centroid can be off by at
		// most one bucket width in relative terms.
		if ratio := got / exact; ratio < 1/(1.05*1.05) || ratio > 1.05*1.05 {
			t.Errorf("q=%g: got %g, exact %g (ratio %.4f outside bucket tolerance)",
				q, got, exact, ratio)
		}
	}
}

// TestSketchEmptyAndEdge pins the empty-sketch contract (NaN, like the
// histogram) and the q clamping rules.
func TestSketchEmptyAndEdge(t *testing.T) {
	s := NewDelaySketch()
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) ||
		!math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatal("empty sketch must report NaN for quantile/mean/min/max")
	}
	s.Observe(0) // quantizes under
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero stream: q50 %g, want 0", got)
	}
	s.Observe(1.0)
	if got := s.Quantile(1); got < 0.9 || got > 1.1 {
		t.Fatalf("q=1 should land on the max observation, got %g", got)
	}
	if got := s.Quantile(-3); got != 0 {
		t.Fatalf("q<0 clamps to the minimum rank, got %g", got)
	}
	if got, want := s.Quantile(7), s.Quantile(1); got != want {
		t.Fatalf("q>1 clamps to 1: got %g want %g", got, want)
	}
}

// TestSketchSerializationRoundTrip checks Marshal/Unmarshal reproduce the
// sketch exactly, including after a round-trip re-serialization.
func TestSketchSerializationRoundTrip(t *testing.T) {
	s := NewDelaySketch()
	for _, x := range sketchSamples(3, 1000) {
		s.Observe(x)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != s.Count() || got.Quantile(0.99) != s.Quantile(0.99) ||
		got.Mean() != s.Mean() {
		t.Fatal("round-trip changed the sketch's statistics")
	}
	again, _ := got.MarshalBinary()
	if !bytes.Equal(again, data) {
		t.Fatal("re-serialization is not byte-identical")
	}
	// Merging a round-tripped sketch must behave like merging the original.
	a, b := NewDelaySketch(), NewDelaySketch()
	a.Merge(s)
	b.Merge(got)
	ab, _ := a.MarshalBinary()
	bb, _ := b.MarshalBinary()
	if !bytes.Equal(ab, bb) {
		t.Fatal("merge of decoded sketch diverged from merge of original")
	}
	if dec, err := DecodeSketch(nil); dec != nil || err != nil {
		t.Fatal("DecodeSketch(nil) must be (nil, nil)")
	}
	if _, err := DecodeSketch([]byte("garbage")); err == nil {
		t.Fatal("garbage must not decode")
	}
	// Truncated body must not decode.
	if _, err := DecodeSketch(data[:len(data)-5]); err == nil {
		t.Fatal("truncated sketch must not decode")
	}
}

// TestSketchLayoutMismatchPanics mirrors the histogram contract: merging
// different layouts is a programming error.
func TestSketchLayoutMismatchPanics(t *testing.T) {
	for name, o := range map[string]*Sketch{
		"unit":     NewSketch(1e-6, 100e-6, 1.05, 400),
		"lo":       NewSketch(1e-9, 200e-6, 1.05, 400),
		"gamma":    NewSketch(1e-9, 100e-6, 1.10, 400),
		"nbuckets": NewSketch(1e-9, 100e-6, 1.05, 200),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("merge with different %s did not panic", name)
				}
			}()
			o.Observe(0.5)
			NewDelaySketch().Merge(o)
		}()
	}
}

// TestSketchResetAndClone checks Reset clears in place and Clone detaches.
func TestSketchResetAndClone(t *testing.T) {
	s := NewDelaySketch()
	s.Observe(0.25)
	c := s.Clone()
	s.Reset()
	if s.Count() != 0 || !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("reset did not clear the sketch")
	}
	if c.Count() != 1 {
		t.Fatal("clone was affected by reset")
	}
	empty, _ := NewDelaySketch().MarshalBinary()
	after, _ := s.MarshalBinary()
	if !bytes.Equal(empty, after) {
		t.Fatal("reset sketch does not serialize like a fresh one")
	}
}

// TestDelayRecorderSketchAgrees checks the fused recorder feeds the sketch
// the same stream as the histogram.
func TestDelayRecorderSketchAgrees(t *testing.T) {
	d := NewDelayRecorder(16)
	for _, x := range sketchSamples(11, 2000) {
		d.Observe(x)
	}
	if d.Sketch().Count() != d.Count() {
		t.Fatalf("sketch count %d != recorder count %d", d.Sketch().Count(), d.Count())
	}
	// Both views bound the same stream: the sketch centroid must sit at or
	// below the histogram's upper-edge estimate, within a bucket of slack.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		hs, ss := d.Quantile(q), d.Sketch().Quantile(q)
		if ss > hs*1.16 {
			t.Errorf("q=%g: sketch %g above histogram upper bound %g", q, ss, hs)
		}
	}
}
