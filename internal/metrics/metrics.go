// Package metrics implements the statistics collected by the simulator:
// streaming moments (Welford), fixed-bin quantile histograms, counters, and
// time-weighted averages, plus cross-replication confidence intervals.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Series accumulates a stream of observations with numerically stable
// single-pass mean and variance (Welford's algorithm). The zero value is
// ready to use.
type Series struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Observe adds one observation.
func (s *Series) Observe(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another series into s (parallel Welford combination), allowing
// per-shard accumulation to be reduced without storing raw samples.
func (s *Series) Merge(o *Series) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.mean += delta * float64(o.n) / float64(n)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.n = n
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Count reports the number of observations.
func (s *Series) Count() uint64 { return s.n }

// Sum reports the running total.
func (s *Series) Sum() float64 { return s.sum }

// Mean reports the sample mean, or NaN when empty.
func (s *Series) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Var reports the unbiased sample variance, or NaN with fewer than two
// observations.
func (s *Series) Var() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// Std reports the sample standard deviation.
func (s *Series) Std() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest observation, or NaN when empty.
func (s *Series) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max reports the largest observation, or NaN when empty.
func (s *Series) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// CI95 reports the half-width of the 95% confidence interval on the mean,
// using the normal approximation (adequate for the ≥10 replications used by
// the harness), or NaN with fewer than two observations.
func (s *Series) CI95() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// String formats the series compactly.
func (s *Series) String() string {
	if s.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4g std=%.3g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Histogram is a fixed-layout log-bucketed histogram for latency-like
// non-negative quantities. Buckets grow geometrically from a minimum
// resolution, which bounds relative quantile error by the growth factor.
type Histogram struct {
	lo     float64 // upper edge of bucket 0
	growth float64
	counts []uint64
	under  uint64 // x <= 0 observations (landed in bucket "under")
	total  uint64
	series Series
}

// NewHistogram creates a histogram whose first bucket covers (0, lo] and
// whose bucket edges grow by the given factor, with nbuckets buckets; values
// beyond the last edge are clamped into the final bucket.
func NewHistogram(lo, growth float64, nbuckets int) *Histogram {
	if lo <= 0 || growth <= 1 || nbuckets < 1 {
		panic("metrics: invalid histogram layout")
	}
	return &Histogram{lo: lo, growth: growth, counts: make([]uint64, nbuckets)}
}

// NewLatencyHistogram returns the standard layout used for query delays:
// 100 µs resolution up to about 20 minutes across 120 buckets.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(100e-6, 1.15, 120)
}

// Observe adds one observation.
func (h *Histogram) Observe(x float64) {
	h.total++
	h.series.Observe(x)
	if x <= 0 {
		h.under++
		return
	}
	// bucket = ceil(log_growth(x/lo)), clamped.
	b := 0
	if x > h.lo {
		b = int(math.Ceil(math.Log(x/h.lo) / math.Log(h.growth)))
	}
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	h.counts[b]++
}

// Merge folds another histogram with an identical layout into h.
func (h *Histogram) Merge(o *Histogram) {
	if h.lo != o.lo || h.growth != o.growth || len(h.counts) != len(o.counts) {
		panic("metrics: merging histograms with different layouts")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.under += o.under
	h.total += o.total
	h.series.Merge(&o.series)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the exact sample mean (tracked separately from the buckets).
func (h *Histogram) Mean() float64 { return h.series.Mean() }

// Quantile reports an upper bound on the q-quantile (the upper edge of the
// bucket containing it). q outside [0,1] is clamped.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	seen := h.under
	if rank <= seen {
		return 0
	}
	edge := h.lo
	for _, c := range h.counts {
		seen += c
		if seen >= rank {
			return edge
		}
		edge *= h.growth
	}
	return edge
}

// Counter is a monotone event tally.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value reports the tally.
func (c *Counter) Value() uint64 { return c.n }

// Merge adds another counter into c.
func (c *Counter) Merge(o *Counter) { c.n += o.n }

// Rate reports the tally divided by an elapsed time in seconds.
func (c *Counter) Rate(seconds float64) float64 {
	if seconds <= 0 {
		return math.NaN()
	}
	return float64(c.n) / seconds
}

// TimeWeighted tracks the time-weighted average of a piecewise-constant
// quantity, e.g. queue length or power state.
type TimeWeighted struct {
	last     float64
	lastAt   float64
	area     float64
	began    float64
	started  bool
	maxValue float64
}

// Set records that the quantity changed to v at time now (in seconds).
func (w *TimeWeighted) Set(now, v float64) {
	if !w.started {
		w.started = true
		w.began = now
		w.lastAt = now
		w.last = v
		w.maxValue = v
		return
	}
	if now < w.lastAt {
		panic("metrics: TimeWeighted time went backwards")
	}
	w.area += w.last * (now - w.lastAt)
	w.last = v
	w.lastAt = now
	if v > w.maxValue {
		w.maxValue = v
	}
}

// Add records a delta to the current value at time now.
func (w *TimeWeighted) Add(now, delta float64) { w.Set(now, w.last+delta) }

// Value reports the current value.
func (w *TimeWeighted) Value() float64 { return w.last }

// Max reports the largest value seen.
func (w *TimeWeighted) Max() float64 { return w.maxValue }

// Average reports the time-weighted average over [start, now].
func (w *TimeWeighted) Average(now float64) float64 {
	if !w.started || now <= w.began {
		return math.NaN()
	}
	area := w.area + w.last*(now-w.lastAt)
	return area / (now - w.began)
}

// Summary is a cross-replication aggregate of one scalar metric: each
// replication contributes one value, and the summary reports their mean and
// 95% confidence half-width.
type Summary struct {
	values []float64
}

// Add contributes one replication's value. NaNs are dropped (a replication
// that saw no events of some kind contributes nothing rather than poisoning
// the aggregate).
func (s *Summary) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.values = append(s.values, v)
}

// N reports the number of contributing replications.
func (s *Summary) N() int { return len(s.values) }

// Mean reports the across-replication mean.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// CI95 reports the 95% confidence half-width across replications.
func (s *Summary) CI95() float64 {
	n := len(s.values)
	if n < 2 {
		return math.NaN()
	}
	mean := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return 1.96 * math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
}

// Merge appends another summary's values after s's own, preserving each
// side's internal order so per-shard accumulation reduced in a fixed shard
// order is deterministic.
func (s *Summary) Merge(o *Summary) {
	s.values = append(s.values, o.values...)
}

// Median reports the across-replication median.
func (s *Summary) Median() float64 {
	n := len(s.values)
	if n == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// DelayRecorder fuses the three views a run keeps of its delay stream —
// exact moments (Series), quantile histogram, and batch-means confidence
// interval — behind a single Observe. The histogram already maintains the
// exact moments internally, so the fused recorder runs one Welford pass
// where three separate accumulators ran two, and the per-query hot path
// makes one call instead of three.
type DelayRecorder struct {
	hist   *Histogram
	batch  *BatchMeans
	sketch *Sketch
}

// NewDelayRecorder builds a recorder with the standard latency histogram
// layout, the standard mergeable delay sketch, and the given batch-means
// batch size.
func NewDelayRecorder(batchSize int) *DelayRecorder {
	return &DelayRecorder{
		hist:   NewLatencyHistogram(),
		batch:  NewBatchMeans(batchSize),
		sketch: NewDelaySketch(),
	}
}

// Observe adds one observation to every view.
func (d *DelayRecorder) Observe(x float64) {
	d.hist.Observe(x)
	d.batch.Observe(x)
	d.sketch.Observe(x)
}

// Merge folds another recorder into d, view by view. Deterministic for a
// fixed merge order; used to reduce per-cell delay streams after a parallel
// run.
func (d *DelayRecorder) Merge(o *DelayRecorder) {
	d.hist.Merge(o.hist)
	d.batch.Merge(o.batch)
	d.sketch.Merge(o.sketch)
}

// Series returns the exact-moment view (count, mean, variance, min, max).
func (d *DelayRecorder) Series() Series { return d.hist.series }

// Histogram exposes the quantile view.
func (d *DelayRecorder) Histogram() *Histogram { return d.hist }

// Sketch exposes the mergeable quantile sketch: the view whose merged
// cross-replication aggregate is replication-order-independent and
// serializable into run artifacts.
func (d *DelayRecorder) Sketch() *Sketch { return d.sketch }

// Count reports the number of observations.
func (d *DelayRecorder) Count() uint64 { return d.hist.total }

// Mean reports the exact sample mean, or NaN when empty.
func (d *DelayRecorder) Mean() float64 { return d.hist.Mean() }

// Max reports the largest observation, or NaN when empty.
func (d *DelayRecorder) Max() float64 {
	s := d.hist.series
	return s.Max()
}

// Quantile reports an upper bound on the q-quantile from the histogram.
func (d *DelayRecorder) Quantile(q float64) float64 { return d.hist.Quantile(q) }

// CI95 reports the batch-means 95% half-width — the single-run interval that
// respects the stream's serial correlation. NaN when CIAvailable is false.
func (d *DelayRecorder) CI95() float64 { return d.batch.CI95() }

// CIAvailable reports whether CI95 is statistically meaningful (at least two
// complete batches observed).
func (d *DelayRecorder) CIAvailable() bool { return d.batch.CIAvailable() }

// BatchMeans estimates a confidence interval for the mean of a correlated
// observation stream (like per-query delays within one run, which share
// report cycles and queue states) by aggregating consecutive observations
// into batches and treating batch means as approximately independent — the
// standard single-run output-analysis method for steady-state simulation.
type BatchMeans struct {
	batchSize int
	count     int
	sum       float64
	batches   Series
}

// NewBatchMeans groups every batchSize consecutive observations.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize < 1 {
		panic("metrics: batch size must be positive")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Observe adds one observation.
func (b *BatchMeans) Observe(x float64) {
	b.sum += x
	b.count++
	if b.count == b.batchSize {
		b.batches.Observe(b.sum / float64(b.batchSize))
		b.sum, b.count = 0, 0
	}
}

// Merge folds another accumulator with the same batch size into b: complete
// batches combine exactly, and the two partial batches coalesce (flushing as
// one mixed batch if they jointly reach the batch size). The result depends
// on merge order, so reducers must fold shards in a fixed order.
func (b *BatchMeans) Merge(o *BatchMeans) {
	if b.batchSize != o.batchSize {
		panic("metrics: merging batch means with different batch sizes")
	}
	b.batches.Merge(&o.batches)
	b.sum += o.sum
	b.count += o.count
	if b.count >= b.batchSize {
		b.batches.Observe(b.sum / float64(b.count))
		b.sum, b.count = 0, 0
	}
}

// Batches reports how many complete batches have been formed.
func (b *BatchMeans) Batches() uint64 { return b.batches.Count() }

// Mean reports the best available estimate of the stream mean: the mean over
// complete batches, or — before the first batch completes — the point
// estimate over the partial batch, so short runs degrade to a point estimate
// instead of NaN. Only a stream with no observations at all reports NaN.
func (b *BatchMeans) Mean() float64 {
	if b.batches.Count() == 0 {
		if b.count == 0 {
			return math.NaN()
		}
		return b.sum / float64(b.count)
	}
	return b.batches.Mean()
}

// CIAvailable reports whether CI95 is statistically meaningful: at least two
// complete batches exist. Callers rendering tables should consult it and
// print the interval as unavailable rather than zero-width.
func (b *BatchMeans) CIAvailable() bool { return b.batches.Count() >= 2 }

// CI95 reports the 95% half-width over batch means. With fewer than two
// complete batches the interval is undefined: it reports NaN (never a
// misleading zero width) and CIAvailable reports false — callers should fall
// back to the Mean point estimate, widen batches, or run longer.
func (b *BatchMeans) CI95() float64 {
	if !b.CIAvailable() {
		return math.NaN()
	}
	return b.batches.CI95()
}
