package metrics

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Sketch is a mergeable streaming quantile sketch for non-negative,
// latency-like quantities: a t-digest-style centroid digest whose centroids
// are anchored to a fixed geometric bucket layout instead of floating. Each
// bucket holds an observation count and the integer-quantized sum of its
// observations, so the per-bucket centroid (sum/count) interpolates
// quantiles well below the bucket-edge resolution while relative rank error
// stays bounded by the layout's growth factor.
//
// Anchoring the centroids — the "deterministic compression" — is what makes
// the sketch safe for the harness's determinism contract: Merge is a plain
// bucket-wise addition of unsigned integers, which is commutative and
// associative bit-for-bit, so merging any interleaving of the same
// observations in any order (replication order, worker count, window
// splits) yields a byte-identical serialized sketch. A classic t-digest
// with floating centroids cannot make that promise: its compression depends
// on insertion order and its weighted means accumulate float rounding that
// differs by association.
//
// Observations are quantized to integer multiples of Unit before summing
// (e.g. nanoseconds for delays); the uint64 bucket sums are exact until
// they overflow at 2⁶⁴ units — about 584 summed years at nanosecond
// resolution, far beyond any run this simulator produces.
type Sketch struct {
	unit   float64 // quantization step: observations are rounded to multiples
	lo     float64 // upper edge of bucket 0
	gamma  float64 // geometric bucket growth factor
	counts []uint64
	sums   []uint64 // quantized sums, aligned with counts
	under  uint64   // observations quantizing to zero (x ≤ unit/2)
	total  uint64
	minQ   uint64 // quantized extrema over positive observations
	maxQ   uint64
}

// NewSketch builds a sketch with the given quantization unit, first-bucket
// upper edge lo, geometric growth factor, and bucket count. Values beyond
// the last edge are clamped into the final bucket (their centroid still
// tracks the true mean there).
func NewSketch(unit, lo, gamma float64, nbuckets int) *Sketch {
	if unit <= 0 || lo <= 0 || gamma <= 1 || nbuckets < 1 {
		panic("metrics: invalid sketch layout")
	}
	return &Sketch{
		unit: unit, lo: lo, gamma: gamma,
		counts: make([]uint64, nbuckets),
		sums:   make([]uint64, nbuckets),
	}
}

// NewDelaySketch returns the standard layout for query delays: nanosecond
// quantization, 100 µs first bucket, 5% geometric growth across 400 buckets
// (reach ≈ 3×10⁴ s, far past any simulated horizon), bounding relative
// quantile error at the bucket edges to 5% before centroid interpolation.
func NewDelaySketch() *Sketch { return NewSketch(1e-9, 100e-6, 1.05, 400) }

// NewEnergySketch returns the standard layout for per-client energy:
// microjoule quantization, 1 mJ first bucket, 8% growth across 320 buckets
// (reach ≈ 5×10⁷ J).
func NewEnergySketch() *Sketch { return NewSketch(1e-6, 1e-3, 1.08, 320) }

// Reset zeroes the sketch in place, keeping its layout and buffers.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
		s.sums[i] = 0
	}
	s.under, s.total, s.minQ, s.maxQ = 0, 0, 0, 0
}

// Observe adds one observation.
func (s *Sketch) Observe(x float64) {
	s.total++
	q := uint64(0)
	if x > 0 {
		q = uint64(math.Round(x / s.unit))
	}
	if q == 0 {
		s.under++
		return
	}
	if s.total-s.under == 1 {
		s.minQ, s.maxQ = q, q
	} else {
		if q < s.minQ {
			s.minQ = q
		}
		if q > s.maxQ {
			s.maxQ = q
		}
	}
	b := s.bucket(float64(q) * s.unit)
	s.counts[b]++
	s.sums[b] += q
}

// bucket maps a positive value to its bucket index, clamped to the layout.
func (s *Sketch) bucket(x float64) int {
	if x <= s.lo {
		return 0
	}
	b := int(math.Ceil(math.Log(x/s.lo) / math.Log(s.gamma)))
	if b >= len(s.counts) {
		b = len(s.counts) - 1
	}
	return b
}

// SameLayout reports whether two sketches can be merged.
func (s *Sketch) SameLayout(o *Sketch) bool {
	return s.unit == o.unit && s.lo == o.lo && s.gamma == o.gamma &&
		len(s.counts) == len(o.counts)
}

// Merge folds another sketch with an identical layout into s. The operation
// is bucket-wise unsigned addition: commutative and associative exactly, so
// any merge order over the same contributions produces a bit-identical
// result — the property the replication-order and worker-count invariance
// tests pin.
func (s *Sketch) Merge(o *Sketch) {
	if !s.SameLayout(o) {
		panic("metrics: merging sketches with different layouts")
	}
	if o.total == 0 {
		return
	}
	for i, c := range o.counts {
		s.counts[i] += c
		s.sums[i] += o.sums[i]
	}
	if o.total > o.under {
		if s.total == s.under { // s had no positive observations yet
			s.minQ, s.maxQ = o.minQ, o.maxQ
		} else {
			if o.minQ < s.minQ {
				s.minQ = o.minQ
			}
			if o.maxQ > s.maxQ {
				s.maxQ = o.maxQ
			}
		}
	}
	s.under += o.under
	s.total += o.total
}

// Clone returns an independent copy.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.counts = append([]uint64(nil), s.counts...)
	c.sums = append([]uint64(nil), s.sums...)
	return &c
}

// Count reports the number of observations.
func (s *Sketch) Count() uint64 { return s.total }

// Min reports the smallest positive observation (quantized), 0 when every
// observation quantized to zero, or NaN when empty.
func (s *Sketch) Min() float64 {
	if s.total == 0 {
		return math.NaN()
	}
	if s.under > 0 {
		return 0
	}
	return float64(s.minQ) * s.unit
}

// Max reports the largest observation (quantized), or NaN when empty.
func (s *Sketch) Max() float64 {
	if s.total == 0 {
		return math.NaN()
	}
	if s.total == s.under {
		return 0
	}
	return float64(s.maxQ) * s.unit
}

// Mean reports the quantized sample mean, or NaN when empty.
func (s *Sketch) Mean() float64 {
	if s.total == 0 {
		return math.NaN()
	}
	var sum uint64
	for _, v := range s.sums {
		sum += v
	}
	return float64(sum) * s.unit / float64(s.total)
}

// Quantile estimates the q-quantile: the centroid of the bucket holding the
// target rank, clamped into the bucket so the estimate never leaves the
// rank's resolution band. q outside [0,1] is clamped; an empty sketch
// reports NaN.
func (s *Sketch) Quantile(q float64) float64 {
	if s.total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.total)))
	if rank == 0 {
		rank = 1
	}
	seen := s.under
	if rank <= seen {
		return 0
	}
	for b, c := range s.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			return float64(s.sums[b]) * s.unit / float64(c)
		}
	}
	return s.Max() // unreachable unless counters were mutated externally
}

// sketchMagic versions the serialized layout; bump on any format change.
const sketchMagic = "WDCSK1\n"

// AppendBinary serializes the sketch deterministically: a fixed header
// followed by the non-empty buckets in ascending index order. Two sketches
// holding the same multiset of quantized observations — however they were
// interleaved or merged — serialize to the same bytes.
func (s *Sketch) AppendBinary(b []byte) []byte {
	b = append(b, sketchMagic...)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(s.unit))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(s.lo))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(s.gamma))
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.counts)))
	b = binary.BigEndian.AppendUint64(b, s.total)
	b = binary.BigEndian.AppendUint64(b, s.under)
	b = binary.BigEndian.AppendUint64(b, s.minQ)
	b = binary.BigEndian.AppendUint64(b, s.maxQ)
	nnz := uint32(0)
	for _, c := range s.counts {
		if c != 0 {
			nnz++
		}
	}
	b = binary.BigEndian.AppendUint32(b, nnz)
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		b = binary.BigEndian.AppendUint32(b, uint32(i))
		b = binary.BigEndian.AppendUint64(b, c)
		b = binary.BigEndian.AppendUint64(b, s.sums[i])
	}
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(nil), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's layout and contents.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	const header = len(sketchMagic) + 3*8 + 4 + 4*8 + 4
	if len(data) < header || string(data[:len(sketchMagic)]) != sketchMagic {
		return fmt.Errorf("metrics: not a sketch (magic mismatch or short header)")
	}
	p := data[len(sketchMagic):]
	u64 := func() uint64 { v := binary.BigEndian.Uint64(p); p = p[8:]; return v }
	u32 := func() uint32 { v := binary.BigEndian.Uint32(p); p = p[4:]; return v }
	unit := math.Float64frombits(u64())
	lo := math.Float64frombits(u64())
	gamma := math.Float64frombits(u64())
	nb := int(u32())
	if unit <= 0 || lo <= 0 || gamma <= 1 || nb < 1 || nb > 1<<20 {
		return fmt.Errorf("metrics: sketch header describes an invalid layout")
	}
	total, under, minQ, maxQ := u64(), u64(), u64(), u64()
	nnz := int(u32())
	if len(p) != nnz*(4+8+8) {
		return fmt.Errorf("metrics: sketch body %d bytes, want %d for %d buckets",
			len(p), nnz*(4+8+8), nnz)
	}
	out := Sketch{
		unit: unit, lo: lo, gamma: gamma,
		counts: make([]uint64, nb), sums: make([]uint64, nb),
		total: total, under: under, minQ: minQ, maxQ: maxQ,
	}
	prev := -1
	for i := 0; i < nnz; i++ {
		idx := int(u32())
		if idx <= prev || idx >= nb {
			return fmt.Errorf("metrics: sketch bucket index %d out of order or range", idx)
		}
		prev = idx
		out.counts[idx] = u64()
		out.sums[idx] = u64()
	}
	*s = out
	return nil
}

// DecodeSketch parses a serialized sketch, or returns nil on empty input.
func DecodeSketch(data []byte) (*Sketch, error) {
	if len(data) == 0 {
		return nil, nil
	}
	s := &Sketch{}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}
