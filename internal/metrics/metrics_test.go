package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatal("empty series must report NaN")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.Count() != 8 {
		t.Fatalf("count %d", s.Count())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean %v", got)
	}
	// Population std of this classic dataset is 2; sample variance = 32/7.
	if got := s.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("var %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 || s.Sum() != 40 {
		t.Fatalf("min/max/sum %v/%v/%v", s.Min(), s.Max(), s.Sum())
	}
	if s.String() == "" || new(Series).String() != "n=0" {
		t.Fatal("String broken")
	}
}

func TestSeriesMergeEqualsSequential(t *testing.T) {
	f := func(seed uint64, split uint8) bool {
		r := rng.New(seed)
		n := 50 + int(split%50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(10, 3)
		}
		var whole, a, b Series
		for i, x := range xs {
			whole.Observe(x)
			if i < n/2 {
				a.Observe(x)
			} else {
				b.Observe(x)
			}
		}
		a.Merge(&b)
		return a.Count() == whole.Count() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.Var()-whole.Var()) < 1e-9 &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesMergeEmpty(t *testing.T) {
	var a, b Series
	a.Observe(1)
	a.Merge(&b) // merging empty is a no-op
	if a.Count() != 1 {
		t.Fatal("merge with empty changed count")
	}
	b.Merge(&a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty failed")
	}
}

func TestSeriesCI95ShrinksWithN(t *testing.T) {
	r := rng.New(1)
	var small, large Series
	for i := 0; i < 10; i++ {
		small.Observe(r.Normal(0, 1))
	}
	for i := 0; i < 1000; i++ {
		large.Observe(r.Normal(0, 1))
	}
	if !(large.CI95() < small.CI95()) {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0.001, 1.5, 40)
	r := rng.New(2)
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(r.Exp(1)) // mean 1, median ln2
	}
	if h.Count() != n {
		t.Fatalf("count %d", h.Count())
	}
	med := h.Quantile(0.5)
	// Upper-edge estimate: must bracket the true median within one growth
	// factor.
	if med < math.Ln2 || med > math.Ln2*1.5 {
		t.Fatalf("median estimate %v, true %v", med, math.Ln2)
	}
	if math.Abs(h.Mean()-1) > 0.02 {
		t.Fatalf("mean %v", h.Mean())
	}
	if q := h.Quantile(0.99); q <= med {
		t.Fatalf("p99 %v not above median %v", q, med)
	}
	if !(h.Quantile(-1) <= h.Quantile(2)) {
		t.Fatal("clamped quantiles inconsistent")
	}
}

func TestHistogramZeroAndClamp(t *testing.T) {
	h := NewHistogram(1, 2, 4) // edges 1,2,4,8
	h.Observe(0)               // under
	h.Observe(-5)              // under
	h.Observe(1e9)             // clamps to last bucket
	if h.Quantile(0.3) != 0 {
		t.Fatalf("under-bucket quantile %v", h.Quantile(0.3))
	}
	if got := h.Quantile(1.0); got != 8 {
		t.Fatalf("clamped max quantile %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		a.Observe(r.Exp(10))
		b.Observe(r.Exp(10))
	}
	count := a.Count() + b.Count()
	a.Merge(b)
	if a.Count() != count {
		t.Fatalf("merged count %d", a.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("layout mismatch must panic")
		}
	}()
	a.Merge(NewHistogram(1, 2, 3))
}

func TestEmptyHistogram(t *testing.T) {
	h := NewLatencyHistogram()
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value %d", c.Value())
	}
	var d Counter
	d.Add(10)
	c.Merge(&d)
	if c.Value() != 15 {
		t.Fatalf("merged %d", c.Value())
	}
	if got := c.Rate(3); math.Abs(got-5) > 1e-12 {
		t.Fatalf("rate %v", got)
	}
	if !math.IsNaN(c.Rate(0)) {
		t.Fatal("rate over zero time must be NaN")
	}
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	if !math.IsNaN(w.Average(10)) {
		t.Fatal("unstarted average must be NaN")
	}
	w.Set(0, 2)  // 2 over [0,4)
	w.Set(4, 6)  // 6 over [4,6)
	w.Add(6, -6) // 0 over [6,10)
	got := w.Average(10)
	want := (2*4 + 6*2 + 0*4) / 10.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("average %v, want %v", got, want)
	}
	if w.Max() != 6 || w.Value() != 0 {
		t.Fatalf("max/value %v/%v", w.Max(), w.Value())
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	var w TimeWeighted
	w.Set(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time must panic")
		}
	}()
	w.Set(4, 2)
}

func TestSummary(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Median()) {
		t.Fatal("empty summary must be NaN")
	}
	s.Add(math.NaN()) // dropped
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Fatalf("n %d", s.N())
	}
	if s.Mean() != 2.5 || s.Median() != 2.5 {
		t.Fatalf("mean/median %v/%v", s.Mean(), s.Median())
	}
	s.Add(5)
	if s.Median() != 3 {
		t.Fatalf("odd median %v", s.Median())
	}
	if s.CI95() <= 0 {
		t.Fatalf("CI %v", s.CI95())
	}
}

func TestHistogramBucketMonotone(t *testing.T) {
	// Property: quantile is monotone in q.
	h := NewLatencyHistogram()
	r := rng.New(4)
	for i := 0; i < 5000; i++ {
		h.Observe(r.Pareto(1.2, 0.001))
	}
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestBatchMeans(t *testing.T) {
	b := NewBatchMeans(100)
	if !math.IsNaN(b.Mean()) || !math.IsNaN(b.CI95()) {
		t.Fatal("empty batch means must be NaN")
	}
	r := rng.New(12)
	// AR(1)-style correlated stream: naive per-sample CI would be too
	// narrow; batch means must still cover the true mean.
	x := 0.0
	var naive Series
	for i := 0; i < 100000; i++ {
		x = 0.95*x + r.Normal(0, 1)
		v := 5 + x
		b.Observe(v)
		naive.Observe(v)
	}
	if b.Batches() != 1000 {
		t.Fatalf("batches %d", b.Batches())
	}
	if math.Abs(b.Mean()-naive.Mean()) > 1e-9 {
		// Means agree up to the incomplete final batch (none here).
		t.Fatalf("batch mean %v vs naive %v", b.Mean(), naive.Mean())
	}
	// Correlation inflates the true uncertainty ~sqrt((1+ρ)/(1−ρ)) ≈ 6.2×;
	// the batch CI must be far wider than the naive iid CI.
	if !(b.CI95() > 3*naive.CI95()) {
		t.Fatalf("batch CI %v not wider than naive %v under correlation",
			b.CI95(), naive.CI95())
	}
	// And it must cover the true mean (5).
	if math.Abs(b.Mean()-5) > 3*b.CI95() {
		t.Fatalf("batch CI fails to cover true mean: %v ± %v", b.Mean(), b.CI95())
	}
}

func TestBatchMeansPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero batch size accepted")
		}
	}()
	NewBatchMeans(0)
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty: every quantile is NaN, including the clamped extremes.
	empty := NewLatencyHistogram()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if !math.IsNaN(empty.Quantile(q)) {
			t.Fatalf("empty Quantile(%v) = %v", q, empty.Quantile(q))
		}
	}

	// All observations ≤ 0 land in the under bucket: every quantile is 0.
	under := NewHistogram(1, 2, 4)
	under.Observe(0)
	under.Observe(-3)
	under.Observe(0)
	for _, q := range []float64{-0.5, 0, 0.25, 1, 7} {
		if got := under.Quantile(q); got != 0 {
			t.Fatalf("all-under Quantile(%v) = %v", q, got)
		}
	}

	// A value beyond the last edge is clamped into the top bucket, whose
	// edge bounds every quantile that reaches it; out-of-range q clamps.
	top := NewHistogram(1, 2, 4) // edges 1, 2, 4, 8
	top.Observe(1e12)
	for _, q := range []float64{0, 0.5, 1, 42} {
		if got := top.Quantile(q); got != 8 {
			t.Fatalf("clamped-top Quantile(%v) = %v", q, got)
		}
	}

	// Mixed under and clamped observations: rank walks past the under
	// bucket into the real buckets.
	mix := NewHistogram(1, 2, 4)
	mix.Observe(-1) // under
	mix.Observe(1.5)
	mix.Observe(100) // clamped
	if got := mix.Quantile(0.33); got != 0 {
		t.Fatalf("mixed low quantile %v", got)
	}
	if got := mix.Quantile(0.6); got != 2 {
		t.Fatalf("mixed mid quantile %v", got)
	}
	if got := mix.Quantile(1); got != 8 {
		t.Fatalf("mixed top quantile %v", got)
	}
}
