package metrics

import (
	"math"
	"testing"
)

// TestHistogramMergeMismatchedLayoutPanics pins the contract that a layout
// mismatch is a programming error, not a silent mis-merge: every way two
// layouts can differ must panic.
func TestHistogramMergeMismatchedLayoutPanics(t *testing.T) {
	base := func() *Histogram { return NewHistogram(1e-3, 1.5, 10) }
	others := map[string]*Histogram{
		"lo":       NewHistogram(2e-3, 1.5, 10),
		"growth":   NewHistogram(1e-3, 2.0, 10),
		"nbuckets": NewHistogram(1e-3, 1.5, 11),
	}
	for name, o := range others {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("merge with different %s did not panic", name)
				}
			}()
			h := base()
			o.Observe(0.5)
			h.Merge(o)
		}()
	}
	// Identical layouts from separate constructions must still merge.
	h, o := base(), base()
	h.Observe(0.1)
	o.Observe(0.2)
	h.Merge(o)
	if h.Count() != 2 {
		t.Fatalf("count %d after valid merge", h.Count())
	}
}

// TestHistogramQuantileEmpty pins the empty-histogram contract: with no
// observations there is no q-quantile, so every q must report NaN — never a
// value fabricated from a zero total.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	for _, q := range []float64{-1, 0, 0.5, 0.95, 1, 2} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("empty histogram Quantile(%g) = %g, want NaN", q, got)
		}
	}
	// One observation flips every quantile to that observation's bucket.
	h.Observe(0.25)
	if got := h.Quantile(0.5); math.IsNaN(got) || got <= 0 {
		t.Errorf("Quantile(0.5) after one observation = %g, want positive", got)
	}
	// The fused recorder inherits the same empty-stream contract.
	d := NewDelayRecorder(8)
	if !math.IsNaN(d.Quantile(0.95)) {
		t.Error("empty DelayRecorder Quantile must be NaN")
	}
}

// TestSeriesMergeMinMax checks the extrema survive merging in both
// directions, including when one side's range contains the other's.
func TestSeriesMergeMinMax(t *testing.T) {
	cases := []struct {
		a, b             []float64
		wantMin, wantMax float64
	}{
		{[]float64{5, 7}, []float64{1, 9}, 1, 9},   // b spans a
		{[]float64{1, 9}, []float64{5, 7}, 1, 9},   // a spans b
		{[]float64{-3, 0}, []float64{2, 4}, -3, 4}, // disjoint ranges
		{[]float64{2}, []float64{2}, 2, 2},         // degenerate
	}
	for i, c := range cases {
		var a, b Series
		for _, x := range c.a {
			a.Observe(x)
		}
		for _, x := range c.b {
			b.Observe(x)
		}
		a.Merge(&b)
		if a.Min() != c.wantMin || a.Max() != c.wantMax {
			t.Errorf("case %d: min/max %g/%g, want %g/%g",
				i, a.Min(), a.Max(), c.wantMin, c.wantMax)
		}
	}
	// Merging into an empty series adopts the other's extrema rather than
	// comparing against zero values.
	var empty, full Series
	full.Observe(-5)
	full.Observe(-2)
	empty.Merge(&full)
	if empty.Min() != -5 || empty.Max() != -2 {
		t.Fatalf("empty-merge extrema %g/%g", empty.Min(), empty.Max())
	}
}

// TestBatchMeansPartialBatchDegradesExplicitly pins the short-run contract:
// with fewer observations than one full batch the estimator degrades to an
// explicit point estimate with the CI flagged unavailable — never a NaN mean
// or a zero-width interval that would render as a spuriously tight bound.
func TestBatchMeansPartialBatchDegradesExplicitly(t *testing.T) {
	b := NewBatchMeans(64)

	// Empty stream: no estimate of any kind.
	if !math.IsNaN(b.Mean()) || !math.IsNaN(b.CI95()) || b.CIAvailable() {
		t.Fatalf("empty stream: mean %g ci %g available %v",
			b.Mean(), b.CI95(), b.CIAvailable())
	}

	// Fewer observations than one batch: point estimate, CI unavailable.
	for _, x := range []float64{2, 4, 6} {
		b.Observe(x)
	}
	if got := b.Mean(); got != 4 {
		t.Fatalf("partial-batch mean %g, want point estimate 4", got)
	}
	if b.CIAvailable() {
		t.Fatal("CI reported available with zero complete batches")
	}
	if ci := b.CI95(); !math.IsNaN(ci) {
		t.Fatalf("partial-batch CI95 %g, want NaN (unavailable), not zero-width", ci)
	}

	// Exactly one complete batch: mean switches to the batch view, CI still
	// undefined (a single batch has no variance estimate).
	one := NewBatchMeans(4)
	for _, x := range []float64{1, 2, 3, 4} {
		one.Observe(x)
	}
	if got := one.Mean(); got != 2.5 {
		t.Fatalf("one-batch mean %g, want 2.5", got)
	}
	if one.CIAvailable() || !math.IsNaN(one.CI95()) {
		t.Fatalf("one batch: available %v ci %g", one.CIAvailable(), one.CI95())
	}

	// Two complete batches: the interval becomes real and finite.
	two := NewBatchMeans(2)
	for _, x := range []float64{1, 3, 5, 7} {
		two.Observe(x)
	}
	if !two.CIAvailable() {
		t.Fatal("CI unavailable with two complete batches")
	}
	if ci := two.CI95(); math.IsNaN(ci) || ci <= 0 {
		t.Fatalf("two-batch CI95 %g, want positive finite", ci)
	}
	if got := two.Mean(); got != 4 {
		t.Fatalf("two-batch mean %g, want 4", got)
	}

	// The batch view must ignore the partial tail once batches exist: a
	// wild unfinished observation cannot skew the steady-state estimate.
	two.Observe(1e9)
	if got := two.Mean(); got != 4 {
		t.Fatalf("partial tail leaked into batch mean: %g", got)
	}
}

// TestTimeWeightedZeroDurationSpans checks that instantaneous transitions
// (several Set calls at the same timestamp) contribute no weight: only the
// value in force across nonzero time shapes the average.
func TestTimeWeightedZeroDurationSpans(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 1)
	// A burst of instantaneous changes at t=10: none should carry weight,
	// and the last one wins going forward.
	w.Set(10, 100)
	w.Set(10, 7)
	w.Set(10, 3)
	if got := w.Average(20); math.Abs(got-2) > 1e-12 {
		// 1 for 10 s, then 3 for 10 s → (10 + 30) / 20 = 2.
		t.Fatalf("average %g, want 2", got)
	}
	if w.Max() != 100 {
		t.Fatalf("max %g should still see the instantaneous spike", w.Max())
	}

	// Average over a zero-length observation window is undefined, not ±Inf.
	var z TimeWeighted
	z.Set(5, 42)
	if !math.IsNaN(z.Average(5)) {
		t.Fatalf("zero-span average = %g, want NaN", z.Average(5))
	}
	// And once time passes, the constant value is exact.
	if got := z.Average(6); got != 42 {
		t.Fatalf("constant average %g", got)
	}
}
