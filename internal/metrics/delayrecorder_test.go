package metrics

import (
	"math"
	"testing"
)

// TestDelayRecorderMatchesSeparateAccumulators feeds the fused recorder and
// the three accumulators it replaced the same stream and requires every
// exposed statistic to match bit for bit — the recorder is a fusion, not an
// approximation.
func TestDelayRecorderMatchesSeparateAccumulators(t *testing.T) {
	rec := NewDelayRecorder(16)
	var series Series
	hist := NewLatencyHistogram()
	batch := NewBatchMeans(16)

	x := 0.4321
	for i := 0; i < 1000; i++ {
		// A deterministic, irregular positive stream spanning several bucket
		// decades, with a sprinkle of zeros for the under-bucket path.
		x = math.Mod(x*997.1+0.123, 37.0)
		v := x * x / 100
		if i%113 == 0 {
			v = 0
		}
		rec.Observe(v)
		series.Observe(v)
		hist.Observe(v)
		batch.Observe(v)
	}

	eq := func(name string, got, want float64) {
		t.Helper()
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("%s: recorder %v, separate %v", name, got, want)
		}
	}
	if rec.Count() != series.Count() {
		t.Errorf("count: %d vs %d", rec.Count(), series.Count())
	}
	eq("mean", rec.Mean(), series.Mean())
	eq("max", rec.Max(), series.Max())
	eq("ci95", rec.CI95(), batch.CI95())
	for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 1} {
		eq("quantile", rec.Quantile(q), hist.Quantile(q))
	}

	s := rec.Series()
	eq("series mean", s.Mean(), series.Mean())
	eq("series var", s.Var(), series.Var())
	eq("series min", s.Min(), series.Min())
	eq("series max", s.Max(), series.Max())
	eq("series sum", s.Sum(), series.Sum())
}

// TestDelayRecorderEmpty checks the empty-state conventions carry over.
func TestDelayRecorderEmpty(t *testing.T) {
	rec := NewDelayRecorder(8)
	if rec.Count() != 0 {
		t.Fatalf("count %d", rec.Count())
	}
	for name, v := range map[string]float64{
		"mean": rec.Mean(), "max": rec.Max(),
		"ci95": rec.CI95(), "p95": rec.Quantile(0.95),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty recorder = %v, want NaN", name, v)
		}
	}
}
