package topology

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
)

func TestGridLayout(t *testing.T) {
	cases := []struct {
		n, cols, rows int
	}{
		{1, 1, 1}, {2, 2, 1}, {3, 2, 2}, {4, 2, 2}, {5, 3, 2},
		{9, 3, 3}, {10, 4, 3}, {16, 4, 4},
	}
	for _, c := range cases {
		g := NewGrid(c.n, 500)
		if g.cols != c.cols || g.rows != c.rows {
			t.Errorf("NewGrid(%d): %dx%d, want %dx%d", c.n, g.cols, g.rows, c.cols, c.rows)
		}
		if g.NumCells() != c.n {
			t.Errorf("NewGrid(%d).NumCells() = %d", c.n, g.NumCells())
		}
		// Every cell center must map back to its own cell.
		for k := 0; k < c.n; k++ {
			x, y := g.Center(k)
			if got := g.Nearest(x, y); got != k {
				t.Errorf("NewGrid(%d): Nearest(Center(%d)) = %d", c.n, k, got)
			}
		}
	}
}

func TestGridNearestTieBreak(t *testing.T) {
	// Power-of-two spacing keeps every center coordinate exact, so the area
	// midpoint is equidistant from all four centers down to the last bit; the
	// lowest id must win so association is deterministic.
	g := Grid{n: 4, cols: 2, rows: 2, spacing: 512}
	if got := g.Nearest(g.WidthM()/2, g.HeightM()/2); got != 0 {
		t.Fatalf("midpoint associated with cell %d, want 0", got)
	}
}

// nearestBrute is the reference implementation the candidate-set Nearest
// must match exactly: full scan, strict < so the lowest id wins ties.
func nearestBrute(g Grid, x, y float64) int {
	best, bestD2 := 0, math.Inf(1)
	for k := 0; k < g.n; k++ {
		d2 := g.dist2(x, y, k)
		if d2 < bestD2 {
			best, bestD2 = k, d2
		}
	}
	return best
}

// TestGridNearestBoundaryPoints pins the deterministic tie-break on points
// that are exactly equidistant from several centers. Power-of-two spacing
// keeps every coordinate exact in binary floating point, so the squared
// distances compare equal down to the last bit and the lowest id must win
// regardless of architecture or scan order.
func TestGridNearestBoundaryPoints(t *testing.T) {
	g := Grid{n: 9, cols: 3, rows: 3, spacing: 512}
	s := g.spacing
	cases := []struct {
		name string
		x, y float64
		want int
	}{
		{"center of cell 4", 1.5 * s, 1.5 * s, 4},
		{"edge midpoint between 0 and 1", s, 0.5 * s, 0},
		{"edge midpoint between 1 and 2", 2 * s, 0.5 * s, 1},
		{"edge midpoint between 0 and 3", 0.5 * s, s, 0},
		{"corner point of 0,1,3,4", s, s, 0},
		{"corner point of 4,5,7,8", 2 * s, 2 * s, 4},
		{"corner point of 1,2,4,5", 2 * s, s, 1},
		{"area origin", 0, 0, 0},
		{"far corner", 3 * s, 3 * s, 8},
		{"outside left edge", -10, 1.5 * s, 3},
		{"outside bottom edge", 1.5 * s, -10, 1},
		{"outside far corner", 4 * s, 4 * s, 8},
	}
	for _, c := range cases {
		if got := g.Nearest(c.x, c.y); got != c.want {
			t.Errorf("%s: Nearest(%v, %v) = %d, want %d", c.name, c.x, c.y, got, c.want)
		}
	}

	// Ragged grid: 10 cells in a 4×3 rectangle leaves columns 2 and 3 of the
	// top row empty; points there must associate with an existing station.
	rg := NewGrid(10, 500)
	sx := rg.spacing
	ragged := []struct {
		name string
		x, y float64
		want int
	}{
		{"ghost square above 6", 2.5 * sx, 2.5 * sx, 6},
		{"ghost square above 7", 3.5 * sx, 2.5 * sx, 7},
	}
	for _, c := range ragged {
		if got := rg.Nearest(c.x, c.y); got != c.want {
			t.Errorf("%s: Nearest(%v, %v) = %d, want %d", c.name, c.x, c.y, got, c.want)
		}
	}
}

// TestGridNearestMatchesBruteForce sweeps random and adversarial points over
// many grid shapes (including ragged last rows) and checks the O(1)
// candidate-set Nearest agrees with the full scan everywhere.
func TestGridNearestMatchesBruteForce(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 9, 10, 12, 16, 23, 64} {
		g := NewGrid(n, 500)
		w, h := g.WidthM(), g.HeightM()
		check := func(x, y float64) {
			t.Helper()
			if got, want := g.Nearest(x, y), nearestBrute(g, x, y); got != want {
				t.Fatalf("n=%d: Nearest(%v, %v) = %d, brute force %d", n, x, y, got, want)
			}
		}
		for i := 0; i < 500; i++ {
			check(r.Uniform(-0.1*w, 1.1*w), r.Uniform(-0.1*h, 1.1*h))
		}
		// Exact square boundaries and centers, where ties concentrate.
		for k := 0; k < n; k++ {
			cx, cy := g.Center(k)
			check(cx, cy)
			check(cx+g.spacing/2, cy)
			check(cx, cy+g.spacing/2)
			check(cx+g.spacing/2, cy+g.spacing/2)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config (disabled) must validate: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	ok := DefaultConfig()
	ok.NumCells = 4
	if err := ok.Validate(); err != nil {
		t.Fatalf("4-cell default: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.CellRadiusM = 0 },
		func(c *Config) { c.MinDistanceM = -1 },
		func(c *Config) { c.MinDistanceM = c.CellRadiusM },
		func(c *Config) { c.SpeedMinMps = 0 },
		func(c *Config) { c.SpeedMaxMps = c.SpeedMinMps / 2 },
		func(c *Config) { c.PauseMeanSec = -1 },
		func(c *Config) { c.CheckPeriod = 0 },
		func(c *Config) { c.Policy = HandoffPolicy(99) },
	}
	for i, mutate := range bad {
		c := ok
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want HandoffPolicy
	}{{"drop", Drop}, {"revalidate", Revalidate}} {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", c.in, got, err)
		}
		if got.String() != c.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), c.in)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

func newTestModel(t *testing.T, n int, seed uint64) *Model {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumCells = 4
	cfg.SpeedMinMps = 10
	cfg.SpeedMaxMps = 20
	cfg.PauseMeanSec = 2
	m, err := NewModel(cfg, n, rng.Stream(seed, "topology"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelHandoffOccurs(t *testing.T) {
	m := newTestModel(t, 10, 1)
	changed := false
	for i := 0; i < 10 && !changed; i++ {
		first := m.NearestCell(i, 0)
		for s := 1; s <= 600; s++ {
			if m.NearestCell(i, des.Time(0).Add(des.Duration(s)*des.Second)) != first {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("no client ever changed nearest cell over 10 minutes of vehicular motion")
	}
}

func TestModelDeterministicAndMonotoneQueries(t *testing.T) {
	a := newTestModel(t, 6, 42)
	b := newTestModel(t, 6, 42)
	for i := 0; i < 6; i++ {
		for s := 0; s <= 120; s += 7 {
			at := des.Time(0).Add(des.Duration(s) * des.Second)
			ax, ay := a.Position(i, at)
			bx, by := b.Position(i, at)
			if ax != bx || ay != by {
				t.Fatalf("client %d at %v: (%v,%v) != (%v,%v)", i, at, ax, ay, bx, by)
			}
			if ax < 0 || ay < 0 || ax > a.WidthM() || ay > a.HeightM() {
				t.Fatalf("client %d left the area: (%v,%v)", i, ax, ay)
			}
		}
	}
}

func TestDistanceFloor(t *testing.T) {
	m := newTestModel(t, 4, 3)
	for i := 0; i < 4; i++ {
		for s := 0; s <= 60; s += 3 {
			at := des.Time(0).Add(des.Duration(s) * des.Second)
			for k := 0; k < m.NumCells(); k++ {
				d := m.DistanceToCellM(i, k, at)
				if d < m.cfg.MinDistanceM {
					t.Fatalf("distance %v below floor %v", d, m.cfg.MinDistanceM)
				}
				if math.IsNaN(d) || math.IsInf(d, 0) {
					t.Fatalf("bad distance %v", d)
				}
			}
		}
	}
}
