// Package topology lays out a multi-cell deployment: a square grid of base
// stations, nearest-cell association, and mobility-driven handoff. It owns
// where clients are and which cell serves them; the core composes it with one
// radio channel, MAC pair and invalidation server per cell.
package topology

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/mobility"
	"repro/internal/rng"
)

// HandoffPolicy selects what happens to a client's cache when it is handed
// to a new cell.
type HandoffPolicy int

const (
	// Drop flushes the cache at handoff: the new cell's reports carry no
	// guarantee about what the old cell validated, so the client starts
	// clean. Simple and always safe, at the price of refetching everything.
	Drop HandoffPolicy = iota

	// Revalidate keeps the cache and lets the new cell's coverage-window
	// rule decide: all cells report about the same shared database timeline,
	// so a report whose window reaches back past the client's last
	// consistent time validates the carried-over entries exactly as if the
	// client had dozed through the gap — and a broken chain forces the same
	// full drop it always does.
	Revalidate
)

// String names the policy as used in CLI flags.
func (p HandoffPolicy) String() string {
	switch p {
	case Drop:
		return "drop"
	case Revalidate:
		return "revalidate"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name as used in CLI flags.
func ParsePolicy(s string) (HandoffPolicy, error) {
	switch s {
	case "drop":
		return Drop, nil
	case "revalidate":
		return Revalidate, nil
	}
	return 0, fmt.Errorf("topology: unknown handoff policy %q", s)
}

// Config parameterizes the grid and the motion over it. The zero value (and
// any NumCells ≤ 1) disables the topology: the simulation runs the legacy
// single-cell wiring untouched.
type Config struct {
	// NumCells is the number of base stations; values ≤ 1 mean single-cell.
	NumCells int

	// CellRadiusM sets the grid pitch: cells are squares inscribed so every
	// point is within CellRadiusM of its own base station.
	CellRadiusM float64

	// MinDistanceM clamps path-loss distances (a client cannot stand inside
	// a mast).
	MinDistanceM float64

	// Random-waypoint motion over the whole grid area.
	SpeedMinMps  float64
	SpeedMaxMps  float64
	PauseMeanSec float64

	// CheckPeriod is how often association is re-evaluated (the measurement
	// gap of a real handset). Handoffs fire on this cadence.
	CheckPeriod des.Duration

	// Policy selects the cache treatment at handoff.
	Policy HandoffPolicy
}

// DefaultConfig returns a disabled (single-cell) topology whose grid and
// motion parameters are ready to use once NumCells is raised: 500 m cells,
// pedestrian speeds, 1 s association checks, cache drop at handoff.
func DefaultConfig() Config {
	return Config{
		NumCells:     1,
		CellRadiusM:  500,
		MinDistanceM: 20,
		SpeedMinMps:  0.5,
		SpeedMaxMps:  2.0,
		PauseMeanSec: 30,
		CheckPeriod:  des.Second,
		Policy:       Drop,
	}
}

// Cells reports the effective cell count (at least 1).
func (c Config) Cells() int {
	if c.NumCells < 1 {
		return 1
	}
	return c.NumCells
}

// Enabled reports whether the multi-cell topology is active.
func (c Config) Enabled() bool { return c.NumCells > 1 }

// Validate reports the first configuration problem. A disabled topology is
// always valid; its other fields are ignored.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch {
	case c.CellRadiusM <= 0:
		return fmt.Errorf("topology: CellRadiusM %v", c.CellRadiusM)
	case c.MinDistanceM < 0 || c.MinDistanceM >= c.CellRadiusM:
		return fmt.Errorf("topology: MinDistanceM %v of %v", c.MinDistanceM, c.CellRadiusM)
	case c.SpeedMinMps <= 0 || c.SpeedMaxMps < c.SpeedMinMps:
		return fmt.Errorf("topology: speed range [%v, %v]", c.SpeedMinMps, c.SpeedMaxMps)
	case c.PauseMeanSec < 0:
		return fmt.Errorf("topology: PauseMeanSec %v", c.PauseMeanSec)
	case c.CheckPeriod <= 0:
		return fmt.Errorf("topology: CheckPeriod %v", c.CheckPeriod)
	case c.Policy != Drop && c.Policy != Revalidate:
		return fmt.Errorf("topology: policy %d", int(c.Policy))
	}
	return nil
}

// Grid is the base-station layout: NumCells square cells of side
// CellRadiusM·√2 (so the far corner of a cell is exactly CellRadiusM from
// its center), packed row-major into a near-square rectangle.
type Grid struct {
	n       int
	cols    int
	rows    int
	spacing float64
}

// NewGrid lays out n cells with the given radius.
func NewGrid(n int, cellRadiusM float64) Grid {
	if n < 1 {
		n = 1
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	return Grid{n: n, cols: cols, rows: rows, spacing: cellRadiusM * math.Sqrt2}
}

// NumCells reports the cell count.
func (g Grid) NumCells() int { return g.n }

// WidthM and HeightM bound the service area. When n is not a perfect
// cols×rows product the rectangle includes squares with no base station;
// clients there associate to the nearest existing one (at reduced SNR).
func (g Grid) WidthM() float64 { return float64(g.cols) * g.spacing }

// HeightM reports the area height.
func (g Grid) HeightM() float64 { return float64(g.rows) * g.spacing }

// Center reports cell k's base-station coordinates.
func (g Grid) Center(k int) (x, y float64) {
	col, row := k%g.cols, k/g.cols
	return (float64(col) + 0.5) * g.spacing, (float64(row) + 0.5) * g.spacing
}

// Nearest reports the cell whose base station is closest to (x, y), breaking
// ties toward the lowest id so association is deterministic.
//
// Only the 3×3 square neighborhood of the containing grid square (clamped to
// cells that exist; the last row may be ragged) can hold the nearest center:
// any cell two or more rows/columns away is at least half a pitch farther in
// true distance than the clamped candidate in its direction, a gap float
// rounding cannot bridge. That makes association O(1) instead of O(cells),
// which is what keeps the per-tick handoff scan linear in clients only.
func (g Grid) Nearest(x, y float64) int {
	if g.n == 1 {
		return 0
	}
	col := int(x / g.spacing)
	if col < 0 {
		col = 0
	} else if col >= g.cols {
		col = g.cols - 1
	}
	row := int(y / g.spacing)
	if row < 0 {
		row = 0
	} else if row >= g.rows {
		row = g.rows - 1
	}
	best, bestD2 := -1, 0.0
	for r := row - 1; r <= row+1; r++ {
		if r < 0 || r >= g.rows {
			continue
		}
		// Rightmost column that holds a base station in row r (the last row
		// may be ragged when n is not a full cols×rows product).
		maxCol := g.cols - 1
		if last := g.n - 1 - r*g.cols; last < maxCol {
			maxCol = last
		}
		for dc := -1; dc <= 1; dc++ {
			cc := col + dc
			if cc < 0 {
				cc = 0
			} else if cc > maxCol {
				cc = maxCol
			}
			k := r*g.cols + cc
			d2 := g.dist2(x, y, k)
			if best < 0 || d2 < bestD2 || (d2 == bestD2 && k < best) {
				best, bestD2 = k, d2
			}
		}
	}
	return best
}

// dist2 is the squared distance from (x, y) to cell k's center, with every
// intermediate explicitly rounded to float64. The conversions forbid the
// compiler from fusing multiply-add into an FMA, so the value — and therefore
// the lowest-id tie-break on exactly equidistant boundary points — is
// identical on every architecture.
func (g Grid) dist2(x, y float64, k int) float64 {
	cx, cy := g.Center(k)
	dx := x - cx
	dy := y - cy
	return float64(dx*dx) + float64(dy*dy)
}

// Model combines the grid with client motion: it answers where client i is,
// which cell serves that position, and how far i is from any base station.
type Model struct {
	Grid
	cfg Config
	mob *mobility.AreaModel
}

// NewModel builds the grid and n client trajectories over its area. The
// source seeds one independent walk per client; the same (cfg, n, src) always
// yields the same trajectories.
func NewModel(cfg Config, n int, src *rng.Source) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := NewGrid(cfg.Cells(), cfg.CellRadiusM)
	mob, err := mobility.NewArea(mobility.AreaConfig{
		WidthM:       g.WidthM(),
		HeightM:      g.HeightM(),
		SpeedMinMps:  cfg.SpeedMinMps,
		SpeedMaxMps:  cfg.SpeedMaxMps,
		PauseMeanSec: cfg.PauseMeanSec,
	}, n, src)
	if err != nil {
		return nil, err
	}
	return &Model{Grid: g, cfg: cfg, mob: mob}, nil
}

// Position reports client i's coordinates at time t. Queries must be
// non-decreasing in t per client (the simulator's clock is monotone).
func (m *Model) Position(i int, t des.Time) (x, y float64) {
	return m.mob.Position(i, t)
}

// NearestCell reports the cell serving client i's position at time t.
func (m *Model) NearestCell(i int, t des.Time) int {
	x, y := m.mob.Position(i, t)
	return m.Nearest(x, y)
}

// DistanceToCellM reports client i's distance from cell k's base station at
// time t, clamped below at MinDistanceM.
func (m *Model) DistanceToCellM(i, k int, t des.Time) float64 {
	x, y := m.mob.Position(i, t)
	cx, cy := m.Center(k)
	d := math.Hypot(x-cx, y-cy)
	if d < m.cfg.MinDistanceM {
		d = m.cfg.MinDistanceM
	}
	return d
}
