// Package topology lays out a multi-cell deployment: a square grid of base
// stations, nearest-cell association, and mobility-driven handoff. It owns
// where clients are and which cell serves them; the core composes it with one
// radio channel, MAC pair and invalidation server per cell.
package topology

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/mobility"
	"repro/internal/rng"
)

// HandoffPolicy selects what happens to a client's cache when it is handed
// to a new cell.
type HandoffPolicy int

const (
	// Drop flushes the cache at handoff: the new cell's reports carry no
	// guarantee about what the old cell validated, so the client starts
	// clean. Simple and always safe, at the price of refetching everything.
	Drop HandoffPolicy = iota

	// Revalidate keeps the cache and lets the new cell's coverage-window
	// rule decide: all cells report about the same shared database timeline,
	// so a report whose window reaches back past the client's last
	// consistent time validates the carried-over entries exactly as if the
	// client had dozed through the gap — and a broken chain forces the same
	// full drop it always does.
	Revalidate
)

// String names the policy as used in CLI flags.
func (p HandoffPolicy) String() string {
	switch p {
	case Drop:
		return "drop"
	case Revalidate:
		return "revalidate"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name as used in CLI flags.
func ParsePolicy(s string) (HandoffPolicy, error) {
	switch s {
	case "drop":
		return Drop, nil
	case "revalidate":
		return Revalidate, nil
	}
	return 0, fmt.Errorf("topology: unknown handoff policy %q", s)
}

// Config parameterizes the grid and the motion over it. The zero value (and
// any NumCells ≤ 1) disables the topology: the simulation runs the legacy
// single-cell wiring untouched.
type Config struct {
	// NumCells is the number of base stations; values ≤ 1 mean single-cell.
	NumCells int

	// CellRadiusM sets the grid pitch: cells are squares inscribed so every
	// point is within CellRadiusM of its own base station.
	CellRadiusM float64

	// MinDistanceM clamps path-loss distances (a client cannot stand inside
	// a mast).
	MinDistanceM float64

	// Random-waypoint motion over the whole grid area.
	SpeedMinMps  float64
	SpeedMaxMps  float64
	PauseMeanSec float64

	// CheckPeriod is how often association is re-evaluated (the measurement
	// gap of a real handset). Handoffs fire on this cadence.
	CheckPeriod des.Duration

	// Policy selects the cache treatment at handoff.
	Policy HandoffPolicy
}

// DefaultConfig returns a disabled (single-cell) topology whose grid and
// motion parameters are ready to use once NumCells is raised: 500 m cells,
// pedestrian speeds, 1 s association checks, cache drop at handoff.
func DefaultConfig() Config {
	return Config{
		NumCells:     1,
		CellRadiusM:  500,
		MinDistanceM: 20,
		SpeedMinMps:  0.5,
		SpeedMaxMps:  2.0,
		PauseMeanSec: 30,
		CheckPeriod:  des.Second,
		Policy:       Drop,
	}
}

// Cells reports the effective cell count (at least 1).
func (c Config) Cells() int {
	if c.NumCells < 1 {
		return 1
	}
	return c.NumCells
}

// Enabled reports whether the multi-cell topology is active.
func (c Config) Enabled() bool { return c.NumCells > 1 }

// Validate reports the first configuration problem. A disabled topology is
// always valid; its other fields are ignored.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch {
	case c.CellRadiusM <= 0:
		return fmt.Errorf("topology: CellRadiusM %v", c.CellRadiusM)
	case c.MinDistanceM < 0 || c.MinDistanceM >= c.CellRadiusM:
		return fmt.Errorf("topology: MinDistanceM %v of %v", c.MinDistanceM, c.CellRadiusM)
	case c.SpeedMinMps <= 0 || c.SpeedMaxMps < c.SpeedMinMps:
		return fmt.Errorf("topology: speed range [%v, %v]", c.SpeedMinMps, c.SpeedMaxMps)
	case c.PauseMeanSec < 0:
		return fmt.Errorf("topology: PauseMeanSec %v", c.PauseMeanSec)
	case c.CheckPeriod <= 0:
		return fmt.Errorf("topology: CheckPeriod %v", c.CheckPeriod)
	case c.Policy != Drop && c.Policy != Revalidate:
		return fmt.Errorf("topology: policy %d", int(c.Policy))
	}
	return nil
}

// Grid is the base-station layout: NumCells square cells of side
// CellRadiusM·√2 (so the far corner of a cell is exactly CellRadiusM from
// its center), packed row-major into a near-square rectangle.
type Grid struct {
	n       int
	cols    int
	rows    int
	spacing float64
}

// NewGrid lays out n cells with the given radius.
func NewGrid(n int, cellRadiusM float64) Grid {
	if n < 1 {
		n = 1
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	return Grid{n: n, cols: cols, rows: rows, spacing: cellRadiusM * math.Sqrt2}
}

// NumCells reports the cell count.
func (g Grid) NumCells() int { return g.n }

// WidthM and HeightM bound the service area. When n is not a perfect
// cols×rows product the rectangle includes squares with no base station;
// clients there associate to the nearest existing one (at reduced SNR).
func (g Grid) WidthM() float64 { return float64(g.cols) * g.spacing }

// HeightM reports the area height.
func (g Grid) HeightM() float64 { return float64(g.rows) * g.spacing }

// Center reports cell k's base-station coordinates.
func (g Grid) Center(k int) (x, y float64) {
	col, row := k%g.cols, k/g.cols
	return (float64(col) + 0.5) * g.spacing, (float64(row) + 0.5) * g.spacing
}

// Nearest reports the cell whose base station is closest to (x, y), breaking
// ties toward the lowest id so association is deterministic.
func (g Grid) Nearest(x, y float64) int {
	best, bestD2 := 0, math.Inf(1)
	for k := 0; k < g.n; k++ {
		cx, cy := g.Center(k)
		d2 := (x-cx)*(x-cx) + (y-cy)*(y-cy)
		if d2 < bestD2 {
			best, bestD2 = k, d2
		}
	}
	return best
}

// Model combines the grid with client motion: it answers where client i is,
// which cell serves that position, and how far i is from any base station.
type Model struct {
	Grid
	cfg Config
	mob *mobility.AreaModel
}

// NewModel builds the grid and n client trajectories over its area. The
// source seeds one independent walk per client; the same (cfg, n, src) always
// yields the same trajectories.
func NewModel(cfg Config, n int, src *rng.Source) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := NewGrid(cfg.Cells(), cfg.CellRadiusM)
	mob, err := mobility.NewArea(mobility.AreaConfig{
		WidthM:       g.WidthM(),
		HeightM:      g.HeightM(),
		SpeedMinMps:  cfg.SpeedMinMps,
		SpeedMaxMps:  cfg.SpeedMaxMps,
		PauseMeanSec: cfg.PauseMeanSec,
	}, n, src)
	if err != nil {
		return nil, err
	}
	return &Model{Grid: g, cfg: cfg, mob: mob}, nil
}

// Position reports client i's coordinates at time t. Queries must be
// non-decreasing in t per client (the simulator's clock is monotone).
func (m *Model) Position(i int, t des.Time) (x, y float64) {
	return m.mob.Position(i, t)
}

// NearestCell reports the cell serving client i's position at time t.
func (m *Model) NearestCell(i int, t des.Time) int {
	x, y := m.mob.Position(i, t)
	return m.Nearest(x, y)
}

// DistanceToCellM reports client i's distance from cell k's base station at
// time t, clamped below at MinDistanceM.
func (m *Model) DistanceToCellM(i, k int, t des.Time) float64 {
	x, y := m.mob.Position(i, t)
	cx, cy := m.Center(k)
	d := math.Hypot(x-cx, y-cy)
	if d < m.cfg.MinDistanceM {
		d = m.cfg.MinDistanceM
	}
	return d
}
