package traffic

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
)

type capture struct {
	dests []int
	bits  []int
}

func (c *capture) sink(dest, bits int) {
	c.dests = append(c.dests, dest)
	c.bits = append(c.bits, bits)
}

func (c *capture) totalBits() float64 {
	t := 0.0
	for _, b := range c.bits {
		t += float64(b)
	}
	return t
}

func runModel(t *testing.T, m Model, rate float64, horizon des.Duration, seed uint64) (*capture, *Generator) {
	t.Helper()
	sch := des.NewScheduler()
	var got capture
	cfg := DefaultConfig(10)
	cfg.Model = m
	cfg.RateBps = rate
	g, err := New(sch, cfg, rng.New(seed), got.sink)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	sch.Run(des.Time(0).Add(horizon))
	return &got, g
}

func TestModelString(t *testing.T) {
	if Poisson.String() != "poisson" || CBR.String() != "cbr" ||
		ParetoOnOff.String() != "pareto-onoff" || Model(9).String() != "unknown" {
		t.Fatal("Model.String broken")
	}
}

func TestParseModel(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Model
	}{{"poisson", Poisson}, {"cbr", CBR}, {"pareto", ParetoOnOff}, {"pareto-onoff", ParetoOnOff}} {
		got, err := ParseModel(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseModel(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Error("bogus model accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	sch := des.NewScheduler()
	src := rng.New(1)
	sink := func(int, int) {}
	bad := []Config{
		{Model: Poisson, RateBps: -1, FrameBits: 100, NumClients: 1},
		{Model: Poisson, RateBps: 1, FrameBits: 0, NumClients: 1},
		{Model: Poisson, RateBps: 1, FrameBits: 100, NumClients: 0},
		{Model: ParetoOnOff, RateBps: 1, FrameBits: 100, NumClients: 1, OnMeanSec: 0, OffMeanSec: 1, Shape: 1.5},
		{Model: ParetoOnOff, RateBps: 1, FrameBits: 100, NumClients: 1, OnMeanSec: 1, OffMeanSec: 1, Shape: 1},
	}
	for i, cfg := range bad {
		if _, err := New(sch, cfg, src, sink); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(sch, DefaultConfig(4), src, nil); err == nil {
		t.Error("nil sink accepted")
	}
}

func TestPoissonRate(t *testing.T) {
	const rate = 100_000 // 100 kb/s over 200 s
	got, g := runModel(t, Poisson, rate, 200*des.Second, 1)
	offered := got.totalBits() / 200
	if math.Abs(offered-rate)/rate > 0.1 {
		t.Fatalf("offered %v b/s, want ~%v", offered, rate)
	}
	if g.GeneratedBits() != uint64(got.totalBits()) {
		t.Fatal("GeneratedBits mismatch")
	}
	if g.GeneratedFrames() != uint64(len(got.bits)) {
		t.Fatal("GeneratedFrames mismatch")
	}
}

func TestCBRIsDeterministicAndExact(t *testing.T) {
	const rate = 81_920 // exactly 10 frames/s at 8192-bit frames
	got, _ := runModel(t, CBR, rate, 10*des.Second, 2)
	if len(got.bits) != 100 {
		t.Fatalf("frames %d, want 100", len(got.bits))
	}
	for _, b := range got.bits {
		if b != 8192 {
			t.Fatalf("CBR frame size %d", b)
		}
	}
}

func TestParetoOnOffRateAndBurstiness(t *testing.T) {
	const rate = 100_000
	got, _ := runModel(t, ParetoOnOff, rate, 2000*des.Second, 3)
	offered := got.totalBits() / 2000
	if math.Abs(offered-rate)/rate > 0.35 {
		t.Fatalf("offered %v b/s, want ~%v (heavy tail tolerance)", offered, rate)
	}
	if len(got.bits) == 0 {
		t.Fatal("no traffic")
	}
}

func TestZeroRateProducesNothing(t *testing.T) {
	got, _ := runModel(t, Poisson, 0, 100*des.Second, 4)
	if len(got.bits) != 0 {
		t.Fatalf("zero-rate generator emitted %d frames", len(got.bits))
	}
}

func TestStop(t *testing.T) {
	sch := des.NewScheduler()
	var got capture
	cfg := DefaultConfig(5)
	cfg.RateBps = 1e6
	g, err := New(sch, cfg, rng.New(5), got.sink)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	sch.After(des.Second, "stop", g.Stop)
	sch.Run(des.Time(0).Add(10 * des.Second))
	n := len(got.bits)
	if n == 0 {
		t.Fatal("no frames before Stop")
	}
	// Nothing arrives after the stop (plus one grace arrival at most).
	sch.Run(des.Time(0).Add(20 * des.Second))
	if len(got.bits) > n {
		t.Fatalf("frames after Stop: %d -> %d", n, len(got.bits))
	}
}

func TestDestsCoverClients(t *testing.T) {
	got, _ := runModel(t, Poisson, 1e6, 60*des.Second, 6)
	seen := make(map[int]bool)
	for _, d := range got.dests {
		if d < 0 || d >= 10 {
			t.Fatalf("dest %d out of range", d)
		}
		seen[d] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d of 10 clients addressed", len(seen))
	}
}

func TestMinFrameSizeClamp(t *testing.T) {
	got, _ := runModel(t, Poisson, 1e6, 60*des.Second, 7)
	for _, b := range got.bits {
		if b < 128 {
			t.Fatalf("frame below clamp: %d", b)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := runModel(t, ParetoOnOff, 50_000, 300*des.Second, 42)
	b, _ := runModel(t, ParetoOnOff, 50_000, 300*des.Second, 42)
	if len(a.bits) != len(b.bits) {
		t.Fatalf("frame counts differ: %d vs %d", len(a.bits), len(b.bits))
	}
	for i := range a.bits {
		if a.bits[i] != b.bits[i] || a.dests[i] != b.dests[i] {
			t.Fatal("same seed diverged")
		}
	}
}
