// Package traffic generates the background downlink load that competes with
// invalidation reports and query responses for airtime. Three models cover
// the regimes that matter to a traffic-aware invalidation scheme: memoryless
// (Poisson), perfectly smooth (CBR), and bursty/heavy-tailed (Pareto ON/OFF,
// the classic self-similar traffic construction).
package traffic

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/rng"
)

// Model selects the arrival process.
type Model int

// Supported models.
const (
	Poisson Model = iota
	CBR
	ParetoOnOff
)

// String names the model.
func (m Model) String() string {
	switch m {
	case Poisson:
		return "poisson"
	case CBR:
		return "cbr"
	case ParetoOnOff:
		return "pareto-onoff"
	default:
		return "unknown"
	}
}

// ParseModel converts a model name as used in CLI flags.
func ParseModel(s string) (Model, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "cbr":
		return CBR, nil
	case "pareto-onoff", "pareto":
		return ParetoOnOff, nil
	}
	return 0, fmt.Errorf("traffic: unknown model %q", s)
}

// Config parameterizes a background flow aggregate.
type Config struct {
	Model      Model
	RateBps    float64 // long-term average offered load, bits/second
	FrameBits  int     // mean frame payload size
	NumClients int     // frames address a uniformly random client

	// Pareto ON/OFF parameters: mean burst and gap lengths in seconds and
	// the Pareto shape (1 < shape ≤ 2 gives the heavy tail).
	OnMeanSec  float64
	OffMeanSec float64
	Shape      float64
}

// DefaultConfig returns Poisson background traffic with 1 KB mean frames.
// RateBps is left zero: callers set it from the desired downlink load.
func DefaultConfig(numClients int) Config {
	return Config{
		Model:      Poisson,
		FrameBits:  8192,
		NumClients: numClients,
		OnMeanSec:  1.0,
		OffMeanSec: 3.0,
		Shape:      1.5,
	}
}

// Sink receives each generated frame.
type Sink func(dest int, bits int)

// Generator drives one background flow aggregate.
type Generator struct {
	cfg  Config
	sch  *des.Scheduler
	src  *rng.Source
	sink Sink

	running  bool
	inBurst  bool
	peakBps  float64
	genBits  uint64
	genCount uint64

	// Persistent event callbacks with their pending state, so the steady
	// state reschedules the same three closures instead of allocating one
	// per arrival.
	arrivalFn     func() // Poisson/CBR arrival; emits nextBits
	burstStartFn  func() // Pareto OFF→ON transition
	burstTickFn   func() // one in-burst CBR arrival
	nextBits      int
	burstDeadline des.Time
}

// New validates the config and builds a generator. A RateBps of zero is
// allowed and produces no traffic.
func New(sch *des.Scheduler, cfg Config, src *rng.Source, sink Sink) (*Generator, error) {
	if sink == nil {
		return nil, fmt.Errorf("traffic: nil sink")
	}
	if cfg.RateBps < 0 {
		return nil, fmt.Errorf("traffic: negative rate %v", cfg.RateBps)
	}
	if cfg.FrameBits <= 0 {
		return nil, fmt.Errorf("traffic: non-positive frame size %d", cfg.FrameBits)
	}
	if cfg.NumClients <= 0 {
		return nil, fmt.Errorf("traffic: need clients to address, got %d", cfg.NumClients)
	}
	if cfg.Model == ParetoOnOff {
		if cfg.OnMeanSec <= 0 || cfg.OffMeanSec <= 0 {
			return nil, fmt.Errorf("traffic: ON/OFF means must be positive")
		}
		if cfg.Shape <= 1 {
			return nil, fmt.Errorf("traffic: Pareto shape must exceed 1 for a finite mean, got %v", cfg.Shape)
		}
	}
	g := &Generator{cfg: cfg, sch: sch, src: src, sink: sink}
	g.arrivalFn = func() {
		if !g.running {
			return
		}
		g.emit(g.nextBits)
		g.scheduleNext()
	}
	g.burstStartFn = func() {
		if !g.running {
			return
		}
		xmOn := g.cfg.OnMeanSec * (g.cfg.Shape - 1) / g.cfg.Shape
		burst := g.src.Pareto(g.cfg.Shape, xmOn)
		g.inBurst = true
		g.burstDeadline = g.sch.Now().Add(des.FromSeconds(burst))
		g.burstArrival()
	}
	g.burstTickFn = func() {
		if !g.running {
			return
		}
		g.emit(g.cfg.FrameBits)
		g.burstArrival()
	}
	if cfg.Model == ParetoOnOff {
		// Peak rate during bursts such that the duty-cycled average hits
		// RateBps.
		duty := cfg.OnMeanSec / (cfg.OnMeanSec + cfg.OffMeanSec)
		g.peakBps = cfg.RateBps / duty
	}
	return g, nil
}

// GeneratedBits reports the total offered bits so far.
func (g *Generator) GeneratedBits() uint64 { return g.genBits }

// GeneratedFrames reports the total offered frames so far.
func (g *Generator) GeneratedFrames() uint64 { return g.genCount }

// Start begins generation. Starting a running or zero-rate generator is a
// no-op.
func (g *Generator) Start() {
	if g.running || g.cfg.RateBps == 0 {
		return
	}
	g.running = true
	switch g.cfg.Model {
	case Poisson, CBR:
		g.scheduleNext()
	case ParetoOnOff:
		g.scheduleOff()
	}
}

// Stop halts generation after any already-scheduled arrival.
func (g *Generator) Stop() { g.running = false }

func (g *Generator) emit(bits int) {
	if bits < 128 {
		bits = 128
	}
	g.genBits += uint64(bits)
	g.genCount++
	g.sink(g.src.Intn(g.cfg.NumClients), bits)
}

// scheduleNext drives the Poisson and CBR models.
func (g *Generator) scheduleNext() {
	if !g.running {
		return
	}
	frameRate := g.cfg.RateBps / float64(g.cfg.FrameBits)
	var gap float64
	var bits int
	switch g.cfg.Model {
	case Poisson:
		gap = g.src.Exp(frameRate)
		bits = int(g.src.Exp(1.0/float64(g.cfg.FrameBits)) + 0.5)
	case CBR:
		gap = 1 / frameRate
		bits = g.cfg.FrameBits
	}
	g.nextBits = bits
	g.sch.After(des.FromSeconds(gap), "traffic.arrival", g.arrivalFn)
}

// scheduleOff waits out an OFF gap then enters a burst.
func (g *Generator) scheduleOff() {
	if !g.running {
		return
	}
	xm := g.cfg.OffMeanSec * (g.cfg.Shape - 1) / g.cfg.Shape
	gap := g.src.Pareto(g.cfg.Shape, xm)
	g.sch.After(des.FromSeconds(gap), "traffic.burst", g.burstStartFn)
}

// burstArrival emits CBR frames at the peak rate until the burst deadline.
func (g *Generator) burstArrival() {
	if !g.running {
		return
	}
	gap := float64(g.cfg.FrameBits) / g.peakBps
	next := g.sch.Now().Add(des.FromSeconds(gap))
	if next.After(g.burstDeadline) {
		g.inBurst = false
		g.scheduleOff()
		return
	}
	g.sch.At(next, "traffic.arrival", g.burstTickFn)
}
