// Package fault is the deterministic fault-injection layer: scheduled
// base-station outages, per-report downlink loss and truncation, uplink query
// timeouts with bounded exponential backoff, and extended client
// disconnections with explicit recovery policies.
//
// The package owns only the *decisions* — when a cell is dark, what happens to
// a report in flight, how long a retry waits, when a client drops off — and is
// wired into the simulation by internal/core. Every decision draws from a
// named RNG stream dedicated to the fault layer ("fault.report", per-client
// substreams of "fault.client"), so enabling faults never perturbs the draws
// of the workload, channel, or database streams, and disabling them restores
// the fault-free run bit for bit.
package fault

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/rng"
)

// RecoveryPolicy selects what a client does with its cache when it
// reconnects after an extended disconnection.
type RecoveryPolicy int

const (
	// RecoverWindow keeps the cache and lets the standard coverage-window
	// rule decide on the next report: if the disconnection outlived the
	// report window the report cannot vouch for the cache and the client
	// drops everything (the TS/AT behaviour the paper starts from).
	RecoverWindow RecoveryPolicy = iota
	// RecoverFlush drops the whole cache immediately on reconnect and
	// refetches on demand: maximally safe, maximally expensive.
	RecoverFlush
	// RecoverCatchup asks the server for the update history since the
	// client's last consistent point (Cao's UIR-style catch-up); if the
	// history has aged out of the database's retention the server answers
	// with a flush-forcing empty report.
	RecoverCatchup
)

func (p RecoveryPolicy) String() string {
	switch p {
	case RecoverWindow:
		return "window"
	case RecoverFlush:
		return "flush"
	case RecoverCatchup:
		return "catchup"
	default:
		return fmt.Sprintf("RecoveryPolicy(%d)", int(p))
	}
}

// ParseRecovery maps a flag/config string to a RecoveryPolicy.
func ParseRecovery(s string) (RecoveryPolicy, error) {
	switch s {
	case "window":
		return RecoverWindow, nil
	case "flush":
		return RecoverFlush, nil
	case "catchup":
		return RecoverCatchup, nil
	default:
		return 0, fmt.Errorf("fault: unknown recovery policy %q (want window, flush or catchup)", s)
	}
}

// Fate is the injector's verdict on a standalone report broadcast.
type Fate int

const (
	// Deliver leaves the report untouched.
	Deliver Fate = iota
	// Lost destroys the frame in transit: nobody hears it, nobody pays
	// receive energy for it.
	Lost
	// Truncated corrupts the frame: every awake receiver pays the airtime
	// but the CRC fails, so the report counts as lost at each client.
	Truncated
)

// Config declares the fault schedule. The zero value (as produced by an
// all-defaults DefaultConfig with no overrides) disables every fault class;
// core relies on that to keep fault-free runs byte-identical to builds
// without the layer.
type Config struct {
	// OutageStart is when the first base-station outage begins.
	OutageStart des.Duration
	// OutagePeriod repeats outages every period (measured start to start).
	// Zero means a single outage. When set it must exceed OutageLen.
	OutagePeriod des.Duration
	// OutageLen is how long each outage lasts. Zero disables outages.
	// During an outage the affected cell's server broadcasts nothing and
	// answers no uplink request; frames already queued still drain.
	OutageLen des.Duration
	// OutageCell restricts outages to one cell id; -1 (the default) means
	// every cell fails on the same schedule.
	OutageCell int

	// ReportLossProb destroys each standalone invalidation report in
	// transit with this probability (piggybacked reports ride ARQ-protected
	// data frames and are exempt).
	ReportLossProb float64
	// ReportTruncProb corrupts each standalone report with this
	// probability: receivers pay the airtime but decode nothing.
	ReportTruncProb float64

	// QueryTimeout arms a client-side retransmission timer on every uplink
	// request. Zero disables the retry layer. Outages require it: a dead
	// base station swallows requests, and without a timer the at-least-once
	// uplink MAC alone never re-issues them.
	QueryTimeout des.Duration
	// RetryBackoff overrides the backoff base; zero means QueryTimeout.
	// The n-th wait is base<<min(n,6), jittered multiplicatively in
	// [1, 1.5) to decorrelate retry storms.
	RetryBackoff des.Duration
	// RetryMax bounds consecutive timeouts per request; past it the client
	// gives up and waits for the next validating report to re-drive the
	// query.
	RetryMax int

	// DisconnectRate is the rate (events per second of connected time) at
	// which a client suffers an extended disconnection — radio fully off,
	// beyond doze. Zero disables disconnections.
	DisconnectRate float64
	// DisconnectMeanSec is the mean disconnection length in seconds
	// (exponentially distributed).
	DisconnectMeanSec float64
	// Recovery selects the reconnect policy.
	Recovery RecoveryPolicy
}

// DefaultConfig returns a fully disabled fault layer with sensible values
// for the knobs that only matter once a fault class is switched on.
func DefaultConfig() Config {
	return Config{
		OutageCell: -1,
		RetryMax:   6,
	}
}

// OutagesEnabled reports whether base-station outages are scheduled.
func (c *Config) OutagesEnabled() bool { return c.OutageLen > 0 }

// ReportFaultsEnabled reports whether standalone reports can be lost or
// truncated in transit.
func (c *Config) ReportFaultsEnabled() bool { return c.ReportLossProb > 0 || c.ReportTruncProb > 0 }

// RetryEnabled reports whether the client-side query timeout layer is armed.
func (c *Config) RetryEnabled() bool { return c.QueryTimeout > 0 }

// DisconnectsEnabled reports whether extended client disconnections occur.
func (c *Config) DisconnectsEnabled() bool { return c.DisconnectRate > 0 }

// Enabled reports whether any part of the fault layer changes behaviour.
func (c *Config) Enabled() bool {
	return c.OutagesEnabled() || c.ReportFaultsEnabled() || c.RetryEnabled() || c.DisconnectsEnabled()
}

// Validate checks the schedule for consistency.
func (c *Config) Validate() error {
	switch {
	case c.OutageStart < 0:
		return fmt.Errorf("fault: OutageStart %v", c.OutageStart)
	case c.OutagePeriod < 0:
		return fmt.Errorf("fault: OutagePeriod %v", c.OutagePeriod)
	case c.OutageLen < 0:
		return fmt.Errorf("fault: OutageLen %v", c.OutageLen)
	case c.OutagePeriod > 0 && c.OutagePeriod <= c.OutageLen:
		return fmt.Errorf("fault: OutagePeriod %v must exceed OutageLen %v", c.OutagePeriod, c.OutageLen)
	case c.OutageCell < -1:
		return fmt.Errorf("fault: OutageCell %d", c.OutageCell)
	case c.ReportLossProb < 0 || c.ReportLossProb > 1:
		return fmt.Errorf("fault: ReportLossProb %v", c.ReportLossProb)
	case c.ReportTruncProb < 0 || c.ReportTruncProb > 1:
		return fmt.Errorf("fault: ReportTruncProb %v", c.ReportTruncProb)
	case c.ReportLossProb+c.ReportTruncProb > 1:
		return fmt.Errorf("fault: ReportLossProb+ReportTruncProb %v > 1",
			c.ReportLossProb+c.ReportTruncProb)
	case c.QueryTimeout < 0:
		return fmt.Errorf("fault: QueryTimeout %v", c.QueryTimeout)
	case c.RetryBackoff < 0:
		return fmt.Errorf("fault: RetryBackoff %v", c.RetryBackoff)
	case c.RetryMax < 0:
		return fmt.Errorf("fault: RetryMax %d", c.RetryMax)
	case c.DisconnectRate < 0:
		return fmt.Errorf("fault: DisconnectRate %v", c.DisconnectRate)
	case c.DisconnectsEnabled() && c.DisconnectMeanSec <= 0:
		return fmt.Errorf("fault: DisconnectMeanSec %v with disconnections enabled", c.DisconnectMeanSec)
	case c.DisconnectMeanSec < 0:
		return fmt.Errorf("fault: DisconnectMeanSec %v", c.DisconnectMeanSec)
	case c.Recovery < RecoverWindow || c.Recovery > RecoverCatchup:
		return fmt.Errorf("fault: Recovery %d", int(c.Recovery))
	case c.OutagesEnabled() && !c.RetryEnabled():
		// An outage silently swallows uplink requests; without the timeout
		// layer those queries would hang for the rest of the run.
		return fmt.Errorf("fault: outages require QueryTimeout > 0 so swallowed requests are retried")
	}
	return nil
}

// CellAffected reports whether outages apply to the given cell.
func (c *Config) CellAffected(cell int) bool {
	return c.OutageCell < 0 || c.OutageCell == cell
}

// InOutage reports whether the given cell's base station is dark at t. It is
// pure arithmetic over the schedule — no state, no draws — so the server can
// ask on every broadcast and request without perturbing determinism. Outage
// windows are half-open: [start, start+len).
func (c *Config) InOutage(cell int, t des.Time) bool {
	if c.OutageLen <= 0 || !c.CellAffected(cell) {
		return false
	}
	start := des.Time(0).Add(c.OutageStart)
	if t < start {
		return false
	}
	off := t.Sub(start)
	if c.OutagePeriod > 0 {
		off %= c.OutagePeriod
	}
	return off < c.OutageLen
}

// BackoffCapDoublings bounds the exponential backoff; past six doublings the
// wait is long enough that further growth only delays recovery.
const BackoffCapDoublings = 6

// Backoff is the retry schedule as pure arithmetic: the wait before the next
// retransmission after tries consecutive timeouts is base<<min(tries,6),
// stretched multiplicatively into [1, 1.5) by the jitter draw u. Extreme
// inputs degrade instead of misbehaving: negative tries count as zero, u is
// clamped into [0, 1), a non-positive base means no wait, and a shift or
// jitter addition that would overflow saturates at the maximum duration so
// the schedule stays monotone in base.
func Backoff(base des.Duration, tries int, u float64) des.Duration {
	const maxDur = des.Duration(1<<63 - 1)
	if base <= 0 {
		return 0
	}
	if tries < 0 {
		tries = 0
	}
	if tries > BackoffCapDoublings {
		tries = BackoffCapDoublings
	}
	switch {
	case u < 0:
		u = 0
	case u >= 1:
		u = math.Nextafter(1, 0)
	}
	d := base << uint(tries)
	if d>>uint(tries) != base {
		return maxDur
	}
	j := des.Duration(float64(d) * 0.5 * u)
	if d > maxDur-j {
		return maxDur
	}
	return d + j
}

// retryBase is the first-wait duration of the backoff schedule.
func (c *Config) retryBase() des.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return c.QueryTimeout
}

// Injector makes the per-event fault decisions. Each report stream is
// per-cell so multi-cell runs stay independent of fan-out interleaving, and
// client-side draws come from per-client substreams the caller passes in.
type Injector struct {
	cfg    Config
	report []*rng.Source // per-cell report-fate streams; nil when report faults are off
}

// NewInjector builds an injector. reportStreams must have one source per
// cell when report faults are enabled and may be nil otherwise.
func NewInjector(cfg Config, reportStreams []*rng.Source) *Injector {
	return &Injector{cfg: cfg, report: reportStreams}
}

// Config returns the schedule the injector was built from.
func (in *Injector) Config() *Config { return &in.cfg }

// InOutage forwards to the schedule arithmetic.
func (in *Injector) InOutage(cell int, t des.Time) bool { return in.cfg.InOutage(cell, t) }

// ReportFate decides what happens to a standalone report broadcast in the
// given cell: one uniform draw split between loss, truncation and delivery.
func (in *Injector) ReportFate(cell int) Fate {
	if in.report == nil {
		return Deliver
	}
	u := in.report[cell].Float64()
	switch {
	case u < in.cfg.ReportLossProb:
		return Lost
	case u < in.cfg.ReportLossProb+in.cfg.ReportTruncProb:
		return Truncated
	default:
		return Deliver
	}
}

// RetryDelay returns the wait before the next retransmission after `tries`
// consecutive timeouts: Backoff over the configured base, with the jitter
// draw taken from the caller's stream.
func (in *Injector) RetryDelay(tries int, src *rng.Source) des.Duration {
	return Backoff(in.cfg.retryBase(), tries, src.Float64())
}

// DisconnectGap draws the connected time until a client's next extended
// disconnection.
func (in *Injector) DisconnectGap(src *rng.Source) des.Duration {
	return des.FromSeconds(src.Exp(in.cfg.DisconnectRate))
}

// DisconnectLen draws how long a disconnection lasts.
func (in *Injector) DisconnectLen(src *rng.Source) des.Duration {
	return des.FromSeconds(src.Exp(1 / in.cfg.DisconnectMeanSec))
}
