package fault

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
)

func TestRecoveryPolicyRoundTrip(t *testing.T) {
	for _, p := range []RecoveryPolicy{RecoverWindow, RecoverFlush, RecoverCatchup} {
		got, err := ParseRecovery(p.String())
		if err != nil {
			t.Fatalf("ParseRecovery(%q): %v", p, err)
		}
		if got != p {
			t.Fatalf("ParseRecovery(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParseRecovery("bogus"); err == nil {
		t.Fatal("ParseRecovery accepted bogus policy")
	}
}

func TestDefaultConfigDisabled(t *testing.T) {
	c := DefaultConfig()
	if c.Enabled() {
		t.Fatalf("default config enabled: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.InOutage(0, 0) || c.InOutage(0, des.Time(des.Hour)) {
		t.Fatal("disabled config reports an outage")
	}
	in := NewInjector(c, nil)
	if f := in.ReportFate(0); f != Deliver {
		t.Fatalf("disabled injector fate %v, want Deliver", f)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative outage start", func(c *Config) { c.OutageStart = -des.Second }},
		{"negative outage len", func(c *Config) { c.OutageLen = -des.Second }},
		{"period not exceeding len", func(c *Config) {
			c.OutageLen = 10 * des.Second
			c.OutagePeriod = 10 * des.Second
			c.QueryTimeout = des.Second
		}},
		{"outage cell below -1", func(c *Config) { c.OutageCell = -2 }},
		{"loss prob above 1", func(c *Config) { c.ReportLossProb = 1.5 }},
		{"loss+trunc above 1", func(c *Config) {
			c.ReportLossProb = 0.7
			c.ReportTruncProb = 0.7
		}},
		{"negative timeout", func(c *Config) { c.QueryTimeout = -des.Second }},
		{"negative retry max", func(c *Config) { c.RetryMax = -1 }},
		{"disconnects without mean", func(c *Config) { c.DisconnectRate = 0.1 }},
		{"recovery out of range", func(c *Config) { c.Recovery = RecoverCatchup + 1 }},
		{"outage without retry layer", func(c *Config) { c.OutageLen = 5 * des.Second }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", c)
			}
		})
	}
}

// TestInOutageBoundaries pins the half-open window semantics at every edge:
// the instant an outage starts the cell is dark, the instant it ends the
// cell is back, and the periodic schedule repeats exactly.
func TestInOutageBoundaries(t *testing.T) {
	c := DefaultConfig()
	c.OutageStart = 30 * des.Second
	c.OutageLen = 10 * des.Second
	c.OutagePeriod = 60 * des.Second
	c.QueryTimeout = des.Second
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	at := func(d des.Duration) des.Time { return des.Time(0).Add(d) }
	cases := []struct {
		at   des.Duration
		want bool
	}{
		{0, false},
		{30*des.Second - des.Microsecond, false},
		{30 * des.Second, true}, // closed at the start edge
		{40*des.Second - des.Microsecond, true},
		{40 * des.Second, false}, // open at the end edge
		{89 * des.Second, false},
		{90 * des.Second, true}, // second cycle
		{100 * des.Second, false},
		{30*des.Second + 10*60*des.Second, true}, // tenth cycle
	}
	for _, tc := range cases {
		if got := c.InOutage(3, at(tc.at)); got != tc.want {
			t.Errorf("InOutage(t=%v) = %v, want %v", tc.at, got, tc.want)
		}
	}

	// One-shot schedule: never repeats.
	c.OutagePeriod = 0
	if !c.InOutage(0, at(35*des.Second)) {
		t.Error("one-shot outage not dark inside its window")
	}
	if c.InOutage(0, at(95*des.Second)) {
		t.Error("one-shot outage repeated")
	}

	// Cell filter.
	c.OutageCell = 2
	if c.InOutage(1, at(35*des.Second)) {
		t.Error("outage leaked to an unaffected cell")
	}
	if !c.InOutage(2, at(35*des.Second)) {
		t.Error("outage missed its target cell")
	}
}

// TestReportFateDeterministic checks the fate sequence is a pure function of
// the stream, that per-cell streams are independent, and that the empirical
// split tracks the configured probabilities.
func TestReportFateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReportLossProb = 0.3
	cfg.ReportTruncProb = 0.2
	streams := func() []*rng.Source {
		return []*rng.Source{rng.Stream(7, "fault.report.c0"), rng.Stream(7, "fault.report.c1")}
	}
	a := NewInjector(cfg, streams())
	b := NewInjector(cfg, streams())
	counts := map[Fate]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		fa, fb := a.ReportFate(0), b.ReportFate(0)
		if fa != fb {
			t.Fatalf("draw %d: fates diverged (%v vs %v)", i, fa, fb)
		}
		counts[fa]++
	}
	if lost := float64(counts[Lost]) / n; math.Abs(lost-0.3) > 0.02 {
		t.Errorf("loss fraction %v, want ~0.3", lost)
	}
	if trunc := float64(counts[Truncated]) / n; math.Abs(trunc-0.2) > 0.02 {
		t.Errorf("truncation fraction %v, want ~0.2", trunc)
	}
	// Cell 1's stream was never drawn from while cell 0 consumed 10k draws.
	if f0, f1 := a.ReportFate(1), b.ReportFate(1); f0 != f1 {
		t.Fatalf("cell-1 streams diverged (%v vs %v)", f0, f1)
	}
}

// TestRetryDelayBackoff checks growth, the doubling cap, and jitter bounds.
func TestRetryDelayBackoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryTimeout = 2 * des.Second
	in := NewInjector(cfg, nil)
	src := rng.Stream(1, "test.retry")
	for tries := 0; tries < 12; tries++ {
		capped := tries
		if capped > BackoffCapDoublings {
			capped = BackoffCapDoublings
		}
		base := cfg.QueryTimeout << uint(capped)
		d := in.RetryDelay(tries, src)
		if d < base || d >= base+base/2+des.Microsecond {
			t.Fatalf("tries=%d: delay %v outside [%v, 1.5x)", tries, d, base)
		}
	}
	// RetryBackoff overrides the base.
	cfg.RetryBackoff = des.Second
	in = NewInjector(cfg, nil)
	if d := in.RetryDelay(0, src); d >= 2*des.Second {
		t.Fatalf("backoff override ignored: first delay %v", d)
	}
}

func TestDisconnectDraws(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisconnectRate = 1.0 / 60
	cfg.DisconnectMeanSec = 30
	in := NewInjector(cfg, nil)
	src := rng.Stream(3, "test.disc")
	var gap, length float64
	const n = 20000
	for i := 0; i < n; i++ {
		g, l := in.DisconnectGap(src), in.DisconnectLen(src)
		if g < 0 || l < 0 {
			t.Fatalf("negative draw: gap=%v len=%v", g, l)
		}
		gap += g.Seconds()
		length += l.Seconds()
	}
	if m := gap / n; math.Abs(m-60) > 2 {
		t.Errorf("mean gap %v s, want ~60", m)
	}
	if m := length / n; math.Abs(m-30) > 1 {
		t.Errorf("mean length %v s, want ~30", m)
	}
}

// TestBackoffExtremes pins the pure backoff arithmetic at the edges of its
// domain: the doubling cap, negative tries, non-positive bases, jitter draws
// outside [0, 1), and shifts or additions that would overflow int64.
func TestBackoffExtremes(t *testing.T) {
	const maxDur = des.Duration(1<<63 - 1)
	cases := []struct {
		name  string
		base  des.Duration
		tries int
		u     float64
		want  des.Duration
	}{
		{"zero jitter is exact", des.Second, 3, 0, des.Second << 3},
		{"negative tries count as zero", des.Second, -5, 0, des.Second},
		{"at the cap", des.Second, BackoffCapDoublings, 0, des.Second << BackoffCapDoublings},
		{"past the cap stays capped", des.Second, BackoffCapDoublings + 1, 0, des.Second << BackoffCapDoublings},
		{"far past the cap", des.Second, 1 << 20, 0, des.Second << BackoffCapDoublings},
		{"zero base means no wait", 0, 4, 0.5, 0},
		{"negative base means no wait", -des.Second, 4, 0.5, 0},
		{"negative jitter clamps to zero", des.Second, 2, -3.7, des.Second << 2},
		{"shift overflow saturates", maxDur / 2, 6, 0, maxDur},
		{"jitter overflow saturates", maxDur - 1, 0, 0.999, maxDur},
	}
	for _, tc := range cases {
		if got := Backoff(tc.base, tc.tries, tc.u); got != tc.want {
			t.Errorf("%s: Backoff(%d, %d, %v) = %d, want %d",
				tc.name, tc.base, tc.tries, tc.u, got, tc.want)
		}
	}

	// u >= 1 clamps just under 1: the wait stays strictly below 1.5x the
	// doubled base.
	d := Backoff(des.Second, 2, 1.0)
	lo, hi := des.Second<<2, des.Second<<2+(des.Second<<2)/2
	if d < lo || d >= hi {
		t.Errorf("u=1: delay %v outside [%v, %v)", d, lo, hi)
	}
	if d2 := Backoff(des.Second, 2, math.Inf(1)); d2 != d {
		t.Errorf("u=+Inf clamps differently than u=1: %v vs %v", d2, d)
	}

	// Monotone non-decreasing in tries at fixed base and jitter.
	prev := des.Duration(-1)
	for tries := 0; tries <= BackoffCapDoublings+3; tries++ {
		d := Backoff(des.Millisecond, tries, 0.25)
		if d < prev {
			t.Fatalf("tries=%d: delay %v shrank below %v", tries, d, prev)
		}
		prev = d
	}
}
