package rng

import (
	"math"
	"sort"
)

// Zipf samples from a Zipf(theta) distribution over {0, 1, …, n-1}:
// P(k) ∝ 1/(k+1)^theta. theta = 0 degenerates to uniform; theta around
// 0.8–1.0 is the conventional "web-like" skew used throughout the wireless
// data-caching literature.
//
// Sampling uses a precomputed CDF with binary search: O(n) memory once,
// O(log n) per draw, exact for any theta ≥ 0 (unlike rejection samplers that
// require theta > 1).
type Zipf struct {
	cdf   []float64
	theta float64
}

// NewZipf builds a sampler over n items with skew theta. It panics if n <= 0
// or theta < 0.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if theta < 0 {
		panic("rng: Zipf with negative theta")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), theta)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding leaving the tail short of 1
	return &Zipf{cdf: cdf, theta: theta}
}

// N reports the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Theta reports the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Sample draws one value in [0, n).
func (z *Zipf) Sample(r *Source) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob reports P(k).
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// Discrete samples from an arbitrary finite distribution given by
// non-negative weights.
type Discrete struct {
	cdf []float64
}

// NewDiscrete builds a sampler from weights. It panics if weights is empty,
// contains a negative entry, or sums to zero.
func NewDiscrete(weights []float64) *Discrete {
	if len(weights) == 0 {
		panic("rng: Discrete with no weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: Discrete with negative or NaN weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum == 0 {
		panic("rng: Discrete weights sum to zero")
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[len(cdf)-1] = 1
	return &Discrete{cdf: cdf}
}

// Sample draws one index.
func (d *Discrete) Sample(r *Source) int {
	return sort.SearchFloat64s(d.cdf, r.Float64())
}
