// Package rng provides a deterministic, stream-splittable random number
// generator and the distributions used by the simulator.
//
// Reproducibility requirement: a simulation run is fully determined by one
// 64-bit master seed. Every stochastic component (each client's query
// process, each fading process, the update process, …) draws from its own
// named stream derived from the master seed, so adding or removing one
// component never perturbs the draws seen by another. This is the standard
// variance-reduction discipline for simulation studies (common random
// numbers across algorithm variants).
//
// The core generator is xoshiro256**, seeded through splitmix64; both are
// public-domain algorithms by Blackman and Vigna. math/rand is not used
// because its global ordering and Go-version-dependent algorithms would
// break cross-version determinism.
package rng

import (
	"math"
	"math/bits"
)

// splitmix64 advances a 64-bit state and returns the next output. It is used
// both for seeding xoshiro and for hashing stream names into seed space.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashString folds a string into 64 bits with an FNV-1a pass followed by a
// splitmix64 finalizer. Used to derive per-name stream seeds.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return splitmix64(&h)
}

// Source is a xoshiro256** generator. The zero value is invalid; construct
// with New or Stream. Source is not safe for concurrent use: each goroutine
// (each replication) must own its sources.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from a single 64-bit seed.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed reinitializes the source from seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any seed
	// cannot produce four zero outputs, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// FillFloat64 fills buf with uniform [0, 1) values — the same sequence len(buf)
// Float64 calls would produce — keeping the generator state in registers for
// the whole batch.
func (r *Source) FillFloat64(buf []float64) {
	b := r.Batch()
	for i := range buf {
		buf[i] = b.Float64()
	}
	b.End(r)
}

// Batch is a by-value snapshot of the generator for tight loops: draws on a
// stack-resident Batch compile to pure register arithmetic (the methods
// inline and the state never escapes), where every Source.Float64 call pays
// a load/store of the four state words. The same sequence is produced. The
// Source must not be used between Batch and End, and End must be called
// exactly once to write the advanced state back.
type Batch struct {
	s0, s1, s2, s3 uint64
}

// Batch begins a register-resident draw sequence.
func (r *Source) Batch() Batch {
	return Batch{r.s[0], r.s[1], r.s[2], r.s[3]}
}

// End writes the advanced state back to the source.
func (b *Batch) End(r *Source) {
	r.s[0], r.s[1], r.s[2], r.s[3] = b.s0, b.s1, b.s2, b.s3
}

// Uint64 returns the next 64 random bits of the batch.
func (b *Batch) Uint64() uint64 {
	result := bits.RotateLeft64(b.s1*5, 7) * 9
	t := b.s1 << 17
	b.s2 ^= b.s0
	b.s3 ^= b.s1
	b.s1 ^= b.s2
	b.s0 ^= b.s3
	b.s2 ^= t
	b.s3 = bits.RotateLeft64(b.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) from the batch.
func (b *Batch) Float64() float64 {
	return float64(b.Uint64()>>11) * (1.0 / (1 << 53))
}

// Stream derives an independent generator from a master seed and a stream
// name. The same (seed, name) pair always yields the same stream, and
// distinct names yield (statistically) independent streams.
func Stream(seed uint64, name string) *Source {
	return New(seed ^ hashString(name))
}

// SubStream derives an independent generator from this source's seed space
// and an integer index, without consuming any draws from r. It is used to
// give per-client processes their own streams: SubStream(i) for client i.
func (r *Source) SubStream(index uint64) *Source {
	src := r.SubStreamValue(index)
	return &src
}

// SubStreamValue is SubStream returned by value — the exact same generator,
// without the allocation — for callers that store sources inline in
// struct-of-arrays tables (one Source per client/link across a 10⁵-client
// population is worth keeping off the allocator).
func (r *Source) SubStreamValue(index uint64) Source {
	mix := r.s[0] ^ bits.RotateLeft64(r.s[2], 13)
	state := mix + 0x632be59bd9b4e019*(index+1)
	var src Source
	src.Reseed(splitmix64(&state))
	return src
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform float64 in (0, 1): never exactly zero, so it
// is safe to pass to math.Log.
func (r *Source) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Uniform returns a uniform value in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, via the Marsaglia polar method.
func (r *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// Lognormal returns exp(Normal(mu, sigma)).
func (r *Source) Lognormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed value with the given shape alpha and
// scale xm (minimum value). It panics if alpha <= 0 or xm <= 0.
func (r *Source) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic("rng: Pareto needs positive shape and scale")
	}
	return xm / math.Pow(r.Float64Open(), 1/alpha)
}
