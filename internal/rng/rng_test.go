package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestReseed(t *testing.T) {
	a := New(7)
	first := a.Uint64()
	a.Uint64()
	a.Reseed(7)
	if got := a.Uint64(); got != first {
		t.Fatalf("Reseed did not restart the stream: %d vs %d", got, first)
	}
}

func TestStreamIndependenceByName(t *testing.T) {
	a := Stream(99, "query")
	b := Stream(99, "update")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different names collided %d times", same)
	}
	// Same name must reproduce.
	c := Stream(99, "query")
	d := Stream(99, "query")
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("same-name streams diverged")
		}
	}
}

func TestSubStream(t *testing.T) {
	base := Stream(5, "clients")
	a := base.SubStream(0)
	b := base.SubStream(1)
	a2 := Stream(5, "clients").SubStream(0)
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatal("SubStream not reproducible")
		}
	}
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("substreams collided %d times", same)
	}
}

func TestSubStreamDoesNotConsume(t *testing.T) {
	a := New(11)
	b := New(11)
	a.SubStream(3)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SubStream consumed draws from parent")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(2)
	const n, draws = 10, 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d, want ~%.0f", k, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(3)
	const rate = 2.5
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp mean %v, want %v", mean, 1/rate)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(4)
	const mu, sigma, n = 3.0, 2.0, 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(mu, sigma)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-mu) > 0.05 {
		t.Errorf("Normal mean %v", mean)
	}
	if math.Abs(variance-sigma*sigma) > 0.15 {
		t.Errorf("Normal variance %v", variance)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(5)
	const alpha, xm = 1.5, 2.0
	for i := 0; i < 100000; i++ {
		v := r.Pareto(alpha, xm)
		if v < xm {
			t.Fatalf("Pareto draw %v below scale %v", v, xm)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(6)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %v", float64(hits)/n)
	}
}

func TestUniform(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.8, 1.0, 1.5} {
		z := NewZipf(100, theta)
		sum := 0.0
		for k := 0; k < z.N(); k++ {
			sum += z.Prob(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta=%v: probabilities sum to %v", theta, sum)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	z := NewZipf(50, 0.9)
	for k := 1; k < z.N(); k++ {
		if z.Prob(k) > z.Prob(k-1)+1e-12 {
			t.Fatalf("Zipf probabilities not non-increasing at %d", k)
		}
	}
	if z.Prob(-1) != 0 || z.Prob(50) != 0 {
		t.Fatal("out-of-support Prob must be 0")
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(10, 0)
	for k := 0; k < 10; k++ {
		if math.Abs(z.Prob(k)-0.1) > 1e-9 {
			t.Fatalf("theta=0 not uniform: P(%d)=%v", k, z.Prob(k))
		}
	}
}

func TestZipfEmpiricalMatchesAnalytic(t *testing.T) {
	r := New(8)
	z := NewZipf(20, 0.8)
	const n = 200000
	counts := make([]int, 20)
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for k := range counts {
		got := float64(counts[k]) / n
		want := z.Prob(k)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(%d): empirical %v, analytic %v", k, got, want)
		}
	}
}

func TestDiscrete(t *testing.T) {
	d := NewDiscrete([]float64{1, 0, 3})
	r := New(9)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	if math.Abs(float64(counts[0])/n-0.25) > 0.01 {
		t.Errorf("bucket 0 frequency %v", float64(counts[0])/n)
	}
}

func TestDiscretePanics(t *testing.T) {
	for _, w := range [][]float64{nil, {0, 0}, {-1, 2}} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDiscrete(%v) must panic", w)
				}
			}()
			NewDiscrete(w)
		}()
	}
}

// Property: Uint64n(n) < n for random n.
func TestUint64nBound(t *testing.T) {
	r := New(10)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Zipf sample always in range for random support/skew.
func TestZipfSampleInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16, thetaRaw uint8) bool {
		n := int(nRaw%500) + 1
		theta := float64(thetaRaw%30) / 10
		z := NewZipf(n, theta)
		src := New(seed)
		for i := 0; i < 50; i++ {
			k := z.Sample(src)
			if k < 0 || k >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkZipfSample(b *testing.B) {
	r := New(1)
	z := NewZipf(1000, 0.8)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += z.Sample(r)
	}
	_ = sink
}

func TestLognormal(t *testing.T) {
	r := New(13)
	// E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
	const mu, sigma, n = 0.5, 0.4, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Lognormal(mu, sigma)
		if v <= 0 {
			t.Fatalf("lognormal draw %v", v)
		}
		sum += v
	}
	want := math.Exp(mu + sigma*sigma/2)
	if got := sum / n; math.Abs(got-want)/want > 0.02 {
		t.Fatalf("lognormal mean %v, want %v", got, want)
	}
}

func TestDistributionPanics(t *testing.T) {
	r := New(14)
	cases := []func(){
		func() { r.Exp(0) },
		func() { r.Exp(-1) },
		func() { r.Pareto(0, 1) },
		func() { r.Pareto(1.5, 0) },
		func() { NewZipf(0, 0.8) },
		func() { NewZipf(10, -1) },
	}
	for i, f := range cases {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestZipfTheta(t *testing.T) {
	if got := NewZipf(10, 0.7).Theta(); got != 0.7 {
		t.Fatalf("theta %v", got)
	}
}
