package db

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
)

func newDB(t *testing.T, cfg Config, seed uint64) (*DB, *des.Scheduler) {
	t.Helper()
	sch := des.NewScheduler()
	d, err := New(sch, cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return d, sch
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*Config){
		func(c *Config) { c.NumItems = 0 },
		func(c *Config) { c.ItemBits = 0 },
		func(c *Config) { c.UpdateRate = -1 },
		func(c *Config) { c.HotItems = -1 },
		func(c *Config) { c.HotItems = c.NumItems + 1 },
		func(c *Config) { c.HotFraction = 1.5 },
		func(c *Config) { c.HotItems = 0 },
		func(c *Config) { c.HotItems = c.NumItems; c.HotFraction = 0.5 },
		func(c *Config) { c.Retention = 0 },
	}
	for i, f := range mut {
		c := DefaultConfig()
		f(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestApplyUpdateVersions(t *testing.T) {
	d, sch := newDB(t, DefaultConfig(), 1)
	sch.After(des.Second, "u", func() { d.ApplyUpdate(7) })
	sch.After(2*des.Second, "u", func() { d.ApplyUpdate(7) })
	sch.RunAll()
	it := d.Item(7)
	if it.Version != 2 {
		t.Fatalf("version %d", it.Version)
	}
	if it.UpdatedAt != des.Time(0).Add(2*des.Second) {
		t.Fatalf("updatedAt %v", it.UpdatedAt)
	}
	if d.Item(8).Version != 0 {
		t.Fatal("unrelated item mutated")
	}
	if d.Updates() != 2 {
		t.Fatalf("updates %d", d.Updates())
	}
}

func TestUpdateRateAndHotSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UpdateRate = 20
	d, sch := newDB(t, cfg, 2)
	d.Start()
	d.Start() // idempotent
	sch.Run(des.Time(0).Add(500 * des.Second))
	got := float64(d.Updates()) / 500
	if math.Abs(got-20)/20 > 0.1 {
		t.Fatalf("update rate %v, want ~20", got)
	}
	// ~80% of updates must land on the 50 hot items.
	hot := uint64(0)
	for i := 0; i < cfg.NumItems; i++ {
		if i < cfg.HotItems {
			hot += d.Item(i).Version
		}
	}
	frac := float64(hot) / float64(d.Updates())
	if math.Abs(frac-0.8) > 0.03 {
		t.Fatalf("hot fraction %v, want ~0.8", frac)
	}
}

func TestStop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UpdateRate = 100
	d, sch := newDB(t, cfg, 3)
	d.Start()
	sch.After(des.Second, "stop", d.Stop)
	sch.Run(des.Time(0).Add(10 * des.Second))
	n := d.Updates()
	sch.Run(des.Time(0).Add(20 * des.Second))
	if d.Updates() != n {
		t.Fatal("updates after Stop")
	}
}

func TestUpdateHook(t *testing.T) {
	d, sch := newDB(t, DefaultConfig(), 4)
	var ids []int
	d.SetUpdateHook(func(id int, now des.Time) { ids = append(ids, id) })
	sch.After(des.Second, "u", func() { d.ApplyUpdate(3); d.ApplyUpdate(9) })
	sch.RunAll()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 9 {
		t.Fatalf("hook saw %v", ids)
	}
}

func TestUpdatedSinceDedupesToLatest(t *testing.T) {
	d, sch := newDB(t, DefaultConfig(), 5)
	sch.After(1*des.Second, "u", func() { d.ApplyUpdate(5) })
	sch.After(2*des.Second, "u", func() { d.ApplyUpdate(6) })
	sch.After(3*des.Second, "u", func() { d.ApplyUpdate(5) })
	sch.Run(des.Time(0).Add(4 * des.Second))
	got := d.UpdatedSince(des.Time(0), nil)
	if len(got) != 2 {
		t.Fatalf("entries %v", got)
	}
	// Newest-first scan: item 5 first with its LATEST time.
	if got[0].ID != 5 || got[0].At != des.Time(0).Add(3*des.Second) {
		t.Fatalf("got[0] = %+v", got[0])
	}
	if got[1].ID != 6 {
		t.Fatalf("got[1] = %+v", got[1])
	}
	// A later window excludes older updates.
	got = d.UpdatedSince(des.Time(0).Add(2*des.Second), nil)
	if len(got) != 1 || got[0].ID != 5 {
		t.Fatalf("windowed %v", got)
	}
	// Boundary is exclusive at `since`.
	got = d.UpdatedSince(des.Time(0).Add(3*des.Second), nil)
	if len(got) != 0 {
		t.Fatalf("exclusive boundary violated: %v", got)
	}
	if d.CountUpdatedSince(des.Time(0)) != 2 {
		t.Fatal("CountUpdatedSince wrong")
	}
}

func TestUpdatedSinceAppendsToBuf(t *testing.T) {
	d, sch := newDB(t, DefaultConfig(), 6)
	sch.After(des.Second, "u", func() { d.ApplyUpdate(1) })
	sch.RunAll()
	buf := make([]Update, 0, 8)
	out := d.UpdatedSince(des.Time(0), buf)
	if len(out) != 1 || cap(out) != 8 {
		t.Fatalf("buffer reuse broken: len=%d cap=%d", len(out), cap(out))
	}
}

func TestRetentionPruningAndPanic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UpdateRate = 50
	cfg.Retention = 10 * des.Second
	d, sch := newDB(t, cfg, 7)
	d.Start()
	sch.Run(des.Time(0).Add(120 * des.Second))
	// History must be bounded near rate × retention, not rate × horizon.
	live := len(d.history) - d.head
	if live > 50*10*2 {
		t.Fatalf("history not pruned: %d live entries", live)
	}
	// Recent window works.
	_ = d.UpdatedSince(sch.Now().Add(-5*des.Second), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("beyond-retention query must panic")
		}
	}()
	_ = d.UpdatedSince(des.Time(0), nil)
}

func TestUpdatedSinceWithinRetentionAtStart(t *testing.T) {
	// Early in the run, asking since t=0 is fine even though 0 is "before"
	// now-retention in unsigned arithmetic terms.
	cfg := DefaultConfig()
	cfg.Retention = des.Minute
	d, sch := newDB(t, cfg, 8)
	sch.After(des.Second, "u", func() { d.ApplyUpdate(0) })
	sch.Run(des.Time(0).Add(2 * des.Second))
	if got := d.UpdatedSince(des.Time(0), nil); len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		cfg := DefaultConfig()
		cfg.UpdateRate = 30
		d, sch := newDB(t, cfg, 99)
		d.Start()
		sch.Run(des.Time(0).Add(100 * des.Second))
		out := make([]uint64, cfg.NumItems)
		for i := range out {
			out[i] = d.Item(i).Version
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at item %d", i)
		}
	}
}

func BenchmarkUpdatedSince(b *testing.B) {
	sch := des.NewScheduler()
	cfg := DefaultConfig()
	cfg.UpdateRate = 100
	cfg.Retention = des.Minute
	d, err := New(sch, cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	d.Start()
	sch.Run(des.Time(0).Add(5 * des.Minute))
	buf := make([]Update, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = d.UpdatedSince(sch.Now().Add(-20*des.Second), buf[:0])
	}
}
