// Package db implements the server-side database: a set of data items with a
// stochastic hot/cold update process and the bounded update history that the
// invalidation-report generators query.
package db

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Item is one server data item. Version counts updates; UpdatedAt is the
// simulation time of the latest update.
type Item struct {
	ID        int
	Version   uint64
	UpdatedAt des.Time
	Bits      int // payload size when sent in a response
}

// Update is one entry of the update history: item id and update time.
type Update struct {
	ID int
	At des.Time
}

// Config parameterizes the database and its update process.
type Config struct {
	NumItems int
	ItemBits int // payload bits per item

	// The update process is the classic hot/cold split: HotFraction of the
	// aggregate UpdateRate lands uniformly on the first HotItems items, the
	// rest uniformly on the cold remainder. Inter-update times are
	// exponential.
	UpdateRate  float64 // aggregate updates per second
	HotItems    int
	HotFraction float64

	// Retention bounds how far back UpdatedSince can be asked; the owner
	// sets it to the largest invalidation window any algorithm will use.
	Retention des.Duration
}

// DefaultConfig mirrors the canonical setup of the invalidation-report
// literature: 1000 items of 1 KB, updates concentrated on a 50-item hot set,
// one update per five seconds in aggregate.
func DefaultConfig() Config {
	return Config{
		NumItems:    1000,
		ItemBits:    8192,
		UpdateRate:  0.2,
		HotItems:    50,
		HotFraction: 0.8,
		Retention:   10 * des.Minute,
	}
}

// Validate reports the first configuration problem.
func (c Config) Validate() error {
	switch {
	case c.NumItems <= 0:
		return fmt.Errorf("db: NumItems %d", c.NumItems)
	case c.ItemBits <= 0:
		return fmt.Errorf("db: ItemBits %d", c.ItemBits)
	case c.UpdateRate < 0:
		return fmt.Errorf("db: negative UpdateRate %v", c.UpdateRate)
	case c.HotItems < 0 || c.HotItems > c.NumItems:
		return fmt.Errorf("db: HotItems %d of %d", c.HotItems, c.NumItems)
	case c.HotFraction < 0 || c.HotFraction > 1:
		return fmt.Errorf("db: HotFraction %v", c.HotFraction)
	case c.HotItems == 0 && c.HotFraction > 0 && c.UpdateRate > 0:
		return fmt.Errorf("db: hot updates with no hot items")
	case c.HotItems == c.NumItems && c.HotFraction < 1 && c.UpdateRate > 0:
		return fmt.Errorf("db: cold updates with no cold items")
	case c.Retention <= 0:
		return fmt.Errorf("db: Retention %v", c.Retention)
	}
	return nil
}

// DB is the server database. All methods must run on the simulation
// goroutine.
type DB struct {
	cfg   Config
	sch   *des.Scheduler
	src   *rng.Source
	items []Item

	history []Update // ring-ish: append-only with front pruning
	head    int

	// per-call dedup scratch for UpdatedSince
	gen     uint32
	lastGen []uint32

	updates  uint64
	onUpdate func(id int, now des.Time)
	updateFn func() // persistent arrival callback; rescheduled, never rebuilt
	running  bool
	tr       obs.Tracer
}

// New validates the config and builds the database.
func New(sch *des.Scheduler, cfg Config, src *rng.Source) (*DB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &DB{
		cfg:     cfg,
		sch:     sch,
		src:     src,
		items:   make([]Item, cfg.NumItems),
		lastGen: make([]uint32, cfg.NumItems),
	}
	for i := range d.items {
		d.items[i] = Item{ID: i, Bits: cfg.ItemBits}
	}
	d.updateFn = func() {
		if !d.running {
			return
		}
		d.applyRandomUpdate()
		d.scheduleNext()
	}
	return d, nil
}

// Reset re-initializes the database in place for a new replication,
// reusing the O(NumItems) item and dedup tables when the size is unchanged.
// The scheduler and source are replaced (each replication owns fresh ones);
// hooks and tracer are cleared.
func (d *DB) Reset(sch *des.Scheduler, cfg Config, src *rng.Source) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.NumItems != d.cfg.NumItems {
		d.items = make([]Item, cfg.NumItems)
		d.lastGen = make([]uint32, cfg.NumItems)
	} else {
		for i := range d.lastGen {
			d.lastGen[i] = 0
		}
	}
	for i := range d.items {
		d.items[i] = Item{ID: i, Bits: cfg.ItemBits}
	}
	d.cfg = cfg
	d.sch = sch
	d.src = src
	d.history = d.history[:0]
	d.head = 0
	d.gen = 0
	d.updates = 0
	d.onUpdate = nil
	d.running = false
	d.tr = nil
	return nil
}

// Config reports the active configuration.
func (d *DB) Config() Config { return d.cfg }

// NumItems reports the database size.
func (d *DB) NumItems() int { return d.cfg.NumItems }

// Item returns a read-only view of item id.
func (d *DB) Item(id int) Item { return d.items[id] }

// Updates reports the total number of updates applied.
func (d *DB) Updates() uint64 { return d.updates }

// SetUpdateHook installs fn to observe every update.
func (d *DB) SetUpdateHook(fn func(id int, now des.Time)) { d.onUpdate = fn }

// SetTracer attaches an event tracer; nil disables tracing.
func (d *DB) SetTracer(tr obs.Tracer) { d.tr = tr }

// Start launches the update process. Idempotent; a zero UpdateRate produces
// no updates.
func (d *DB) Start() {
	if d.running || d.cfg.UpdateRate == 0 {
		return
	}
	d.running = true
	d.scheduleNext()
}

// Stop halts the update process.
func (d *DB) Stop() { d.running = false }

func (d *DB) scheduleNext() {
	gap := des.FromSeconds(d.src.Exp(d.cfg.UpdateRate))
	d.sch.After(gap, "db.update", d.updateFn)
}

func (d *DB) applyRandomUpdate() {
	var id int
	if d.src.Bool(d.cfg.HotFraction) {
		id = d.src.Intn(d.cfg.HotItems)
	} else {
		id = d.cfg.HotItems + d.src.Intn(d.cfg.NumItems-d.cfg.HotItems)
	}
	d.ApplyUpdate(id)
}

// ApplyUpdate records an update to item id at the current time. Exposed so
// tests and examples can drive deterministic update sequences.
func (d *DB) ApplyUpdate(id int) {
	now := d.sch.Now()
	it := &d.items[id]
	it.Version++
	it.UpdatedAt = now
	d.updates++
	d.history = append(d.history, Update{ID: id, At: now})
	d.prune(now)
	if d.tr != nil {
		d.tr.DBUpdate(obs.DBUpdateEvent{At: now, Item: id, Version: it.Version})
	}
	if d.onUpdate != nil {
		d.onUpdate(id, now)
	}
}

// prune drops history entries older than the retention horizon.
func (d *DB) prune(now des.Time) {
	cut := now.Add(-des.Duration(d.cfg.Retention))
	for d.head < len(d.history) && d.history[d.head].At < cut {
		d.head++
	}
	if d.head > 4096 && d.head*2 >= len(d.history) {
		n := copy(d.history, d.history[d.head:])
		d.history = d.history[:n]
		d.head = 0
	}
}

// UpdatedSince returns, for each item updated in (since, now], one Update
// carrying the item's LATEST update time in that range, appended to buf.
// Asking beyond the retention horizon panics: the caller configured the
// retention and a silent truncation would produce stale caches.
func (d *DB) UpdatedSince(since des.Time, buf []Update) []Update {
	now := d.sch.Now()
	if horizon := now.Add(-des.Duration(d.cfg.Retention)); since < horizon && now > des.Time(d.cfg.Retention) {
		panic(fmt.Sprintf("db: UpdatedSince(%v) beyond retention horizon %v", since, horizon))
	}
	d.gen++
	// Scan newest-first so the first sighting of an id carries its latest
	// update time.
	for i := len(d.history) - 1; i >= d.head; i-- {
		u := d.history[i]
		if u.At <= since {
			break
		}
		if d.lastGen[u.ID] == d.gen {
			continue
		}
		d.lastGen[u.ID] = d.gen
		buf = append(buf, u)
	}
	return buf
}

// CountUpdatedSince reports how many distinct items changed in (since, now].
func (d *DB) CountUpdatedSince(since des.Time) int {
	return len(d.UpdatedSince(since, nil))
}

// View is a read-only query handle on the database for one execution lane.
// It owns a private dedup scratch and a private clock, so concurrent lanes
// can call UpdatedSince on the same DB without sharing mutable state: the
// update process runs on the global scheduler, which only advances at epoch
// barriers while every lane is parked, so the history a lane reads is frozen
// for the duration of its epoch (the "epoch-visible update log").
type View struct {
	d   *DB
	now func() des.Time

	gen     uint32
	lastGen []uint32
}

// NewView builds a lane view whose retention checks use the given clock; a
// nil clock falls back to the database's own scheduler.
func (d *DB) NewView(now func() des.Time) *View {
	if now == nil {
		now = d.sch.Now
	}
	return &View{d: d, now: now, lastGen: make([]uint32, d.cfg.NumItems)}
}

// UpdatedSince is DB.UpdatedSince evaluated against the view's clock, using
// the view's private scratch.
func (v *View) UpdatedSince(since des.Time, buf []Update) []Update {
	d := v.d
	now := v.now()
	if horizon := now.Add(-des.Duration(d.cfg.Retention)); since < horizon && now > des.Time(d.cfg.Retention) {
		panic(fmt.Sprintf("db: UpdatedSince(%v) beyond retention horizon %v", since, horizon))
	}
	v.gen++
	for i := len(d.history) - 1; i >= d.head; i-- {
		u := d.history[i]
		if u.At <= since {
			break
		}
		if v.lastGen[u.ID] == v.gen {
			continue
		}
		v.lastGen[u.ID] = v.gen
		buf = append(buf, u)
	}
	return buf
}
