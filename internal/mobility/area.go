package mobility

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/rng"
)

// AreaConfig parameterizes a random-waypoint walk over a rectangular field
// [0, WidthM] × [0, HeightM] — the service area of a multi-cell grid, where
// the annulus around a single mast no longer describes where clients may go.
type AreaConfig struct {
	WidthM       float64
	HeightM      float64
	SpeedMinMps  float64
	SpeedMaxMps  float64
	PauseMeanSec float64 // exponential pause between legs; 0 disables pauses
}

// Validate reports the first configuration problem.
func (c AreaConfig) Validate() error {
	switch {
	case c.WidthM <= 0 || c.HeightM <= 0:
		return fmt.Errorf("mobility: area %v x %v m", c.WidthM, c.HeightM)
	case c.SpeedMinMps <= 0 || c.SpeedMaxMps < c.SpeedMinMps:
		return fmt.Errorf("mobility: speed range [%v, %v]", c.SpeedMinMps, c.SpeedMaxMps)
	case c.PauseMeanSec < 0:
		return fmt.Errorf("mobility: PauseMeanSec %v", c.PauseMeanSec)
	}
	return nil
}

// AreaModel holds every client's trajectory over a rectangular field. Like
// Model, positions must be queried with non-decreasing time per client.
type AreaModel struct {
	cfg     AreaConfig
	walkers []walker
}

// NewArea builds trajectories for n clients, starting uniformly over the
// rectangle.
func NewArea(cfg AreaConfig, n int, src *rng.Source) (*AreaModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("mobility: need clients, got %d", n)
	}
	m := &AreaModel{cfg: cfg, walkers: make([]walker, n)}
	for i := range m.walkers {
		w := &m.walkers[i]
		w.src = src.SubStream(uint64(i))
		w.x0, w.y0 = m.samplePoint(w.src)
		w.x1, w.y1 = w.x0, w.y0
		// Start paused at the initial point; the first leg begins at once.
	}
	return m, nil
}

// samplePoint draws a uniform point in the rectangle.
func (m *AreaModel) samplePoint(src *rng.Source) (x, y float64) {
	return src.Uniform(0, m.cfg.WidthM), src.Uniform(0, m.cfg.HeightM)
}

// Position reports client i's coordinates at time t.
func (m *AreaModel) Position(i int, t des.Time) (x, y float64) {
	w := &m.walkers[i]
	advanceWalker(w, t, m.samplePoint, m.cfg.SpeedMinMps, m.cfg.SpeedMaxMps, m.cfg.PauseMeanSec)
	return w.positionAt(t)
}

// N reports the number of clients.
func (m *AreaModel) N() int { return len(m.walkers) }
