// Package mobility implements the random-waypoint model: each client walks
// between uniformly chosen points in the cell disc at a uniformly chosen
// speed, pausing between legs. Plugged into the geometry channel it makes
// each client's mean SNR drift as it moves — the slow-timescale companion
// to fast fading, and the reason link adaptation cannot be configured once
// per client.
package mobility

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/rng"
)

// Config parameterizes the walk.
type Config struct {
	CellRadiusM  float64
	MinDistanceM float64 // clients never enter this radius around the mast
	SpeedMinMps  float64
	SpeedMaxMps  float64
	PauseMeanSec float64 // exponential pause between legs; 0 disables pauses
}

// DefaultConfig returns pedestrian mobility in a 500 m cell.
func DefaultConfig() Config {
	return Config{
		CellRadiusM:  500,
		MinDistanceM: 20,
		SpeedMinMps:  0.5,
		SpeedMaxMps:  2.0,
		PauseMeanSec: 30,
	}
}

// Validate reports the first configuration problem.
func (c Config) Validate() error {
	switch {
	case c.CellRadiusM <= 0:
		return fmt.Errorf("mobility: CellRadiusM %v", c.CellRadiusM)
	case c.MinDistanceM < 0 || c.MinDistanceM >= c.CellRadiusM:
		return fmt.Errorf("mobility: MinDistanceM %v of %v", c.MinDistanceM, c.CellRadiusM)
	case c.SpeedMinMps <= 0 || c.SpeedMaxMps < c.SpeedMinMps:
		return fmt.Errorf("mobility: speed range [%v, %v]", c.SpeedMinMps, c.SpeedMaxMps)
	case c.PauseMeanSec < 0:
		return fmt.Errorf("mobility: PauseMeanSec %v", c.PauseMeanSec)
	}
	return nil
}

// walker is one client's lazily generated trajectory.
type walker struct {
	src *rng.Source

	// current leg: from (x0,y0) at t0 to (x1,y1) arriving at t1, then
	// pausing until tNext.
	x0, y0 float64
	x1, y1 float64
	t0, t1 des.Time
	tNext  des.Time
}

// Model holds every client's trajectory. Positions must be queried with
// non-decreasing time per client (the simulator's clock is monotone).
type Model struct {
	cfg     Config
	walkers []walker
}

// New builds trajectories for n clients. Starting positions are uniform
// over the annulus (area-weighted).
func New(cfg Config, n int, src *rng.Source) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("mobility: need clients, got %d", n)
	}
	m := &Model{cfg: cfg, walkers: make([]walker, n)}
	for i := range m.walkers {
		w := &m.walkers[i]
		w.src = src.SubStream(uint64(i))
		w.x0, w.y0 = m.samplePoint(w.src)
		w.x1, w.y1 = w.x0, w.y0
		// Start paused at the initial point; the first leg begins at once.
	}
	return m, nil
}

// samplePoint draws a uniform point in the annulus.
func (m *Model) samplePoint(src *rng.Source) (x, y float64) {
	r2min := m.cfg.MinDistanceM * m.cfg.MinDistanceM
	r2max := m.cfg.CellRadiusM * m.cfg.CellRadiusM
	r := math.Sqrt(src.Uniform(r2min, r2max))
	theta := src.Uniform(0, 2*math.Pi)
	return r * math.Cos(theta), r * math.Sin(theta)
}

// advanceWalker generates legs until w's schedule covers t, drawing each
// waypoint from sample and speed/pause from the given ranges. Shared by the
// annulus Model and the rectangular AreaModel so both make identical draws
// per leg (waypoint, speed, pause) in identical order.
func advanceWalker(w *walker, t des.Time, sample func(*rng.Source) (float64, float64),
	speedMin, speedMax, pauseMean float64) {
	for t >= w.tNext {
		// Finish the current leg; begin the next from its endpoint.
		w.x0, w.y0 = w.x1, w.y1
		w.t0 = w.tNext
		w.x1, w.y1 = sample(w.src)
		speed := w.src.Uniform(speedMin, speedMax)
		dist := math.Hypot(w.x1-w.x0, w.y1-w.y0)
		travel := des.FromSeconds(dist / speed)
		if travel <= 0 {
			travel = des.Microsecond
		}
		w.t1 = w.t0.Add(travel)
		pause := des.Duration(0)
		if pauseMean > 0 {
			pause = des.FromSeconds(w.src.Exp(1 / pauseMean))
		}
		w.tNext = w.t1.Add(pause)
	}
}

// positionAt interpolates the walker at t; its schedule must already cover t.
func (w *walker) positionAt(t des.Time) (x, y float64) {
	if t >= w.t1 {
		return w.x1, w.y1 // pausing at the endpoint
	}
	if t <= w.t0 {
		return w.x0, w.y0
	}
	frac := float64(t.Sub(w.t0)) / float64(w.t1.Sub(w.t0))
	return w.x0 + (w.x1-w.x0)*frac, w.y0 + (w.y1-w.y0)*frac
}

// advance generates legs until the walker's schedule covers t.
func (m *Model) advance(w *walker, t des.Time) {
	advanceWalker(w, t, m.samplePoint, m.cfg.SpeedMinMps, m.cfg.SpeedMaxMps, m.cfg.PauseMeanSec)
}

// Position reports client i's coordinates at time t (meters from the base
// station at the origin). Queries must be non-decreasing in t per client.
func (m *Model) Position(i int, t des.Time) (x, y float64) {
	w := &m.walkers[i]
	m.advance(w, t)
	return w.positionAt(t)
}

// DistanceM reports client i's distance from the base station at time t.
func (m *Model) DistanceM(i int, t des.Time) float64 {
	x, y := m.Position(i, t)
	d := math.Hypot(x, y)
	if d < m.cfg.MinDistanceM {
		// Interpolated legs may cut the inner circle; clamp, as a real
		// client cannot stand inside the mast.
		d = m.cfg.MinDistanceM
	}
	return d
}

// N reports the number of clients.
func (m *Model) N() int { return len(m.walkers) }
