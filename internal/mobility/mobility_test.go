package mobility

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*Config){
		func(c *Config) { c.CellRadiusM = 0 },
		func(c *Config) { c.MinDistanceM = -1 },
		func(c *Config) { c.MinDistanceM = c.CellRadiusM },
		func(c *Config) { c.SpeedMinMps = 0 },
		func(c *Config) { c.SpeedMaxMps = c.SpeedMinMps / 2 },
		func(c *Config) { c.PauseMeanSec = -1 },
	}
	for i, f := range mut {
		c := DefaultConfig()
		f(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(DefaultConfig(), 0, rng.New(1)); err == nil {
		t.Error("zero clients accepted")
	}
	bad := DefaultConfig()
	bad.SpeedMinMps = 0
	if _, err := New(bad, 4, rng.New(1)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPositionsStayInCell(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(cfg, 20, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 20 {
		t.Fatalf("N %d", m.N())
	}
	for i := 0; i < m.N(); i++ {
		for s := 0; s < 2000; s++ {
			at := des.Time(s) * des.Time(des.Second)
			d := m.DistanceM(i, at)
			if d < cfg.MinDistanceM-1e-9 || d > cfg.CellRadiusM+1e-9 {
				t.Fatalf("client %d at distance %v (t=%v)", i, d, at)
			}
		}
	}
}

func TestMovementActuallyHappens(t *testing.T) {
	m, err := New(DefaultConfig(), 10, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < m.N(); i++ {
		x0, y0 := m.Position(i, 0)
		x1, y1 := m.Position(i, des.Time(10*des.Minute))
		if math.Hypot(x1-x0, y1-y0) > 10 {
			moved++
		}
	}
	if moved < 8 {
		t.Fatalf("only %d of 10 clients moved after 10 min", moved)
	}
}

func TestSpeedBound(t *testing.T) {
	// Displacement between close samples can never exceed the maximum
	// speed (pauses only slow things down).
	cfg := DefaultConfig()
	cfg.PauseMeanSec = 0
	m, err := New(cfg, 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const step = des.Second
	for i := 0; i < m.N(); i++ {
		px, py := m.Position(i, 0)
		for s := 1; s < 3000; s++ {
			at := des.Time(s) * des.Time(step)
			x, y := m.Position(i, at)
			if d := math.Hypot(x-px, y-py); d > cfg.SpeedMaxMps*step.Seconds()+1e-6 {
				t.Fatalf("client %d moved %vm in 1s (max %v)", i, d, cfg.SpeedMaxMps)
			}
			px, py = x, y
		}
	}
}

func TestContinuity(t *testing.T) {
	// Fine-grained sampling must be smooth: no teleports at leg boundaries.
	m, err := New(DefaultConfig(), 3, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N(); i++ {
		px, py := m.Position(i, 0)
		for s := 1; s < 20000; s++ {
			at := des.Time(s) * des.Time(100*des.Millisecond)
			x, y := m.Position(i, at)
			if d := math.Hypot(x-px, y-py); d > 0.5 { // 2 m/s × 0.1 s + slack
				t.Fatalf("client %d jumped %vm in 100ms at %v", i, d, at)
			}
			px, py = x, y
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []float64 {
		m, err := New(DefaultConfig(), 8, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < m.N(); i++ {
			for s := 0; s < 100; s++ {
				out = append(out, m.DistanceM(i, des.Time(s)*des.Time(des.Second)))
			}
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPausesSlowProgress(t *testing.T) {
	// With long pauses the average displacement rate drops well below the
	// average speed.
	fast := DefaultConfig()
	fast.PauseMeanSec = 0
	slow := DefaultConfig()
	slow.PauseMeanSec = 300

	progress := func(cfg Config, seed uint64) float64 {
		m, err := New(cfg, 10, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		const step = 10 * des.Second
		for i := 0; i < m.N(); i++ {
			px, py := m.Position(i, 0)
			for s := 1; s <= 300; s++ {
				x, y := m.Position(i, des.Time(s)*des.Time(step))
				total += math.Hypot(x-px, y-py)
				px, py = x, y
			}
		}
		return total
	}
	if !(progress(slow, 5) < progress(fast, 5)*0.7) {
		t.Fatal("pauses did not reduce displacement")
	}
}
