package mobility

import (
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
)

func areaConfig() AreaConfig {
	return AreaConfig{
		WidthM: 1200, HeightM: 800,
		SpeedMinMps: 1, SpeedMaxMps: 5, PauseMeanSec: 5,
	}
}

func TestAreaConfigValidate(t *testing.T) {
	if err := areaConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*AreaConfig){
		func(c *AreaConfig) { c.WidthM = 0 },
		func(c *AreaConfig) { c.HeightM = -1 },
		func(c *AreaConfig) { c.SpeedMinMps = 0 },
		func(c *AreaConfig) { c.SpeedMaxMps = c.SpeedMinMps / 2 },
		func(c *AreaConfig) { c.PauseMeanSec = -1 },
	}
	for i, f := range mut {
		c := areaConfig()
		f(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewArea(areaConfig(), 0, rng.New(1)); err == nil {
		t.Error("zero walkers accepted")
	}
}

func TestAreaPositionsStayInBounds(t *testing.T) {
	cfg := areaConfig()
	m, err := NewArea(cfg, 12, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 12 {
		t.Fatalf("N %d", m.N())
	}
	moved := false
	for i := 0; i < m.N(); i++ {
		x0, y0 := m.Position(i, 0)
		for s := 0; s < 1200; s++ {
			at := des.Time(s) * des.Time(des.Second)
			x, y := m.Position(i, at)
			if x < -1e-9 || y < -1e-9 || x > cfg.WidthM+1e-9 || y > cfg.HeightM+1e-9 {
				t.Fatalf("walker %d outside area: (%v, %v) at %v", i, x, y, at)
			}
			if x != x0 || y != y0 {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("no walker ever moved")
	}
}

func TestAreaDeterminism(t *testing.T) {
	a, err := NewArea(areaConfig(), 8, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewArea(areaConfig(), 8, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for s := 0; s <= 600; s += 13 {
			at := des.Time(s) * des.Time(des.Second)
			ax, ay := a.Position(i, at)
			bx, by := b.Position(i, at)
			if ax != bx || ay != by {
				t.Fatalf("walker %d at %v: (%v,%v) != (%v,%v)", i, at, ax, ay, bx, by)
			}
		}
	}
}
