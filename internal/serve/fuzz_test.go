package serve

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/ir"
)

// FuzzFrameRead drives the TCP frame reader with arbitrary stream bytes: the
// codec must never panic, never allocate from a hostile length prefix beyond
// MaxFramePayload, and classify every outcome — clean EOF exactly at a frame
// boundary, ErrUnexpectedEOF mid-frame, a hard error on zero-length or
// oversized claims. Whatever decodes must round-trip through WriteFrame back
// to the same bytes.
func FuzzFrameRead(f *testing.F) {
	// Well-formed single frames.
	frame := func(op byte, payload []byte) []byte {
		var b bytes.Buffer
		if err := WriteFrame(&b, op, payload); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	f.Add(frame(OpQuery, EncodeQuery(7)))
	f.Add(frame(OpCatchup, EncodeCatchup(123456)))
	f.Add(frame(OpAnswer, make([]byte, 25)))
	f.Add(frame(OpError, []byte("boom")))
	f.Add(append(frame(OpQuery, EncodeQuery(1)), frame(OpCatchup, EncodeCatchup(2))...))
	// Unknown op byte: the reader passes it through; dispatch rejects it.
	f.Add(frame(0x7E, []byte{1, 2, 3}))
	// Truncated length prefix and truncated payload.
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x05, 0x01, 0xAA})
	// Zero-length claim (no op byte) and an oversized MaxFramePayload claim.
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add(binary.BigEndian.AppendUint32(nil, uint32(MaxFramePayload+2)))
	f.Add(binary.BigEndian.AppendUint32(nil, 0xFFFFFFFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		off := 0 // bytes consumed by fully-read frames
		for {
			op, payload, err := fr.Read()
			if err != nil {
				// Clean EOF is only legal exactly at a frame boundary; a
				// stream cut anywhere else must surface as ErrUnexpectedEOF
				// or a hard framing error.
				if err == io.EOF && off != len(data) {
					t.Fatalf("clean EOF with %d bytes consumed of %d", off, len(data))
				}
				return
			}
			if len(payload)+1 > MaxFramePayload+1 {
				t.Fatalf("frame of %d payload bytes exceeds MaxFramePayload", len(payload))
			}
			// Round-trip: re-encoding the decoded frame must reproduce the
			// wire bytes just consumed.
			var rt bytes.Buffer
			if err := WriteFrame(&rt, op, payload); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			end := off + rt.Len()
			if end > len(data) || !bytes.Equal(rt.Bytes(), data[off:end]) {
				t.Fatalf("frame at offset %d does not round-trip", off)
			}
			off = end
		}
	})
}

// FuzzDecodeDatagram drives the UDP datagram decoder: arbitrary bytes must
// either decode into a report or fail loudly — never panic, and never
// "succeed" on a truncated body (the codec's own tests pin that for real
// reports; here the input is arbitrary).
func FuzzDecodeDatagram(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x03})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		var r ir.Report
		_, _ = DecodeDatagram(data, &r)
	})
}
