// Package capabilities defines the per-operation capability interfaces of
// an invalidation-report backend.
//
// The paper's server protocol decomposes into four independent operations:
// broadcasting scheduled invalidation reports, attaching digests to ongoing
// downlink traffic, answering uplink item queries, and serving catch-up
// history to reconnecting clients. Update ingestion — applying externally
// originated database writes — is a fifth, host-side operation. Instead of
// one fat server interface, each operation is its own small interface and a
// backend implements exactly the subset its algorithm and store support:
// a generic composer (the DES core's per-cell server, or wdcserved's
// transport planes) discovers the set by type assertion and serves whatever
// it finds. The style follows capability-interface REST servers: small
// per-operation interfaces, a generic server composing whatever the backend
// implements, so TS/AT/SIG/BS/UIR/TAIR/LAIR/HYBRID become pluggable server
// backends rather than simulation-only code.
//
// The simulation core (internal/core) and the network server
// (internal/serve, cmd/wdcserved) consume the same interfaces, so both hosts
// share one engine — which is what makes the DES usable as a conformance
// oracle against the real server.
package capabilities

import (
	"repro/internal/des"
	"repro/internal/ir"
)

// Answer is the authoritative reply to one item query: the item's current
// version and payload size, stamped with the server read time AsOf — the
// value's consistency timestamp, which the client caches alongside the
// entry.
type Answer struct {
	Item    int      `json:"item"`
	Version uint64   `json:"version"`
	Bits    int      `json:"bits"`
	AsOf    des.Time `json:"as_of_us"`
}

// ReportSource is the capability of producing the scheduled invalidation-
// report broadcast stream. Every algorithm backend implements it; it is the
// one mandatory capability.
type ReportSource interface {
	// AlgoName reports the backing scheme's short name.
	AlgoName() string
	// StartReports arms the backend's report schedule against env: reports
	// are pushed through env.Broadcast on the algorithm's own cadence.
	StartReports(env ir.ServerEnv)
	// RecycleReport returns a fully consumed report to the backend's
	// arena. Callers must drop every reference to the report and its Items
	// afterwards; recycling nil is a no-op.
	RecycleReport(r *ir.Report)
}

// PiggybackSource is the capability of attaching small invalidation digests
// to departing unicast data frames. Only traffic-aware backends provide it.
type PiggybackSource interface {
	// PiggybackDigest returns a digest to attach to a data frame leaving
	// now, or nil when the backend declines (rate limit, oversized digest,
	// mechanism disabled).
	PiggybackDigest(now des.Time) *ir.Report
}

// QueryAnswerer is the capability of answering uplink item queries from the
// authoritative store.
type QueryAnswerer interface {
	// AnswerQuery reports the item's current version as of now. It errors
	// only on an out-of-range item id.
	AnswerQuery(item int, now des.Time) (Answer, error)
}

// UpdateIngester is the capability of applying externally originated
// database updates. Backends over read-only stores (the DES core's
// lane-private views, where the update process owns the database) do not
// provide it.
type UpdateIngester interface {
	// IngestUpdate applies one update to the item and reports the
	// post-update state.
	IngestUpdate(item int) (Answer, error)
}

// CatchupProvider is the capability of serving UIR-style catch-up history:
// a unicast full report covering (since, now], or — when the gap outlived
// the store's retention — an empty now-anchored full report that forces the
// client's safe drop-everything path.
type CatchupProvider interface {
	CatchupSince(since, now des.Time) *ir.Report
}

// Set records which capabilities a backend implements.
type Set struct {
	Report    bool `json:"report"`
	Piggyback bool `json:"piggyback"`
	Query     bool `json:"query"`
	Ingest    bool `json:"ingest"`
	Catchup   bool `json:"catchup"`
}

// Detect reports the capability set of a backend by type assertion.
func Detect(backend any) Set {
	var s Set
	_, s.Report = backend.(ReportSource)
	_, s.Piggyback = backend.(PiggybackSource)
	_, s.Query = backend.(QueryAnswerer)
	_, s.Ingest = backend.(UpdateIngester)
	_, s.Catchup = backend.(CatchupProvider)
	return s
}

// Names lists the implemented capabilities in canonical order.
func (s Set) Names() []string {
	var names []string
	for _, c := range []struct {
		on   bool
		name string
	}{
		{s.Report, "report"},
		{s.Piggyback, "piggyback"},
		{s.Query, "query"},
		{s.Ingest, "ingest"},
		{s.Catchup, "catchup"},
	} {
		if c.on {
			names = append(names, c.name)
		}
	}
	return names
}
