// Package serve hosts the invalidation-report engine outside the discrete-
// event simulation: the capability backends shared by the DES core and the
// wdcserved network service, the wire framing of the query and broadcast
// planes, and the served runtime that binds an engine to real sockets.
package serve

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/ir"
	"repro/internal/serve/capabilities"
)

// Store is the database view an Engine serves from. The DES core adapts its
// lane-private db.View; wdcserved adapts the db.DB it owns.
type Store interface {
	NumItems() int
	Item(id int) db.Item
	// UpdatedSince returns every item updated in (since, now] with its
	// latest update time, appended to buf.
	UpdatedSince(since des.Time, buf []db.Update) []db.Update
	// Retention bounds how far back UpdatedSince may be asked.
	Retention() des.Duration
}

// Mutator extends Store with update ingestion. A store that implements it
// makes the backend an UpdateIngester.
type Mutator interface {
	Store
	// Apply records one update to the item now and reports its new state.
	Apply(item int) db.Item
}

// Engine binds one invalidation algorithm to one database store: the
// server-side engine behind every capability backend. It implements the
// universal capabilities (ReportSource, QueryAnswerer, CatchupProvider);
// NewBackend wraps it with the optional facets the algorithm and store
// actually support.
type Engine struct {
	algo  ir.ServerAlgo
	store Store
}

// Backend is the minimal interface of a composed capability backend; hosts
// discover the rest with capabilities.Detect or direct type assertions.
type Backend interface {
	capabilities.ReportSource
}

// NewBackend composes the capability backend for one algorithm over one
// store: the universal facets always, the piggyback facet only when the
// algorithm piggybacks, the ingest facet only when the store is mutable. The
// honest narrowing matters — a generic composer serves exactly what the
// returned value type-asserts to.
func NewBackend(algo ir.ServerAlgo, store Store) Backend {
	e := &Engine{algo: algo, store: store}
	pig := ir.AsPiggybacker(algo)
	mut, mutable := store.(Mutator)
	switch {
	case pig != nil && mutable:
		return piggyIngestBackend{ingestBackend{e, mut}, pig}
	case pig != nil:
		return piggyBackend{e, pig}
	case mutable:
		return ingestBackend{e, mut}
	default:
		return e
	}
}

// AlgoName implements capabilities.ReportSource.
func (e *Engine) AlgoName() string { return e.algo.Name() }

// StartReports implements capabilities.ReportSource.
func (e *Engine) StartReports(env ir.ServerEnv) { e.algo.Start(env) }

// RecycleReport implements capabilities.ReportSource.
func (e *Engine) RecycleReport(r *ir.Report) { e.algo.Recycle(r) }

// AnswerQuery implements capabilities.QueryAnswerer.
func (e *Engine) AnswerQuery(item int, now des.Time) (capabilities.Answer, error) {
	if item < 0 || item >= e.store.NumItems() {
		return capabilities.Answer{}, fmt.Errorf("serve: item %d out of range [0, %d)", item, e.store.NumItems())
	}
	it := e.store.Item(item)
	return capabilities.Answer{Item: it.ID, Version: it.Version, Bits: it.Bits, AsOf: now}, nil
}

// CatchupSince implements capabilities.CatchupProvider: a unicast full
// report covering (since, now]. The report is freshly allocated — never from
// the algorithm's arena — because its lifetime ends at one client, not at a
// broadcast fan-out, so it must not be recycled through the backend's pool.
func (e *Engine) CatchupSince(since, now des.Time) *ir.Report {
	r := &ir.Report{Kind: ir.KindFull, At: now, PrevAt: now, WindowStart: now}
	if now.Sub(since) <= e.store.Retention() {
		r.WindowStart = since
		r.Items = e.store.UpdatedSince(since, nil)
	}
	// else: the gap outlived the store's update history; the empty
	// now-anchored full report forces the client's safe drop-everything path.
	return r
}

// ingestBackend adds the UpdateIngester facet over a mutable store.
type ingestBackend struct {
	*Engine
	mut Mutator
}

// IngestUpdate implements capabilities.UpdateIngester.
func (b ingestBackend) IngestUpdate(item int) (capabilities.Answer, error) {
	if item < 0 || item >= b.mut.NumItems() {
		return capabilities.Answer{}, fmt.Errorf("serve: item %d out of range [0, %d)", item, b.mut.NumItems())
	}
	it := b.mut.Apply(item)
	return capabilities.Answer{Item: it.ID, Version: it.Version, Bits: it.Bits, AsOf: it.UpdatedAt}, nil
}

// piggyBackend adds the PiggybackSource facet.
type piggyBackend struct {
	*Engine
	pig ir.Piggybacker
}

// PiggybackDigest implements capabilities.PiggybackSource.
func (b piggyBackend) PiggybackDigest(now des.Time) *ir.Report { return b.pig.Piggyback(now) }

// piggyIngestBackend composes both optional facets.
type piggyIngestBackend struct {
	ingestBackend
	pig ir.Piggybacker
}

// PiggybackDigest implements capabilities.PiggybackSource.
func (b piggyIngestBackend) PiggybackDigest(now des.Time) *ir.Report { return b.pig.Piggyback(now) }
