package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/des"
	"repro/internal/ir"
	"repro/internal/serve/capabilities"
)

// Options configures a Server.
type Options struct {
	Runtime RuntimeConfig

	// WallClock maps real time onto the virtual clock (1 µs per µs) and
	// advances it continuously. When false the clock is virtual: it moves
	// only through AdvanceTo — the mode the conformance oracle drives.
	WallClock bool

	// UDPTarget receives every broadcast datagram (EncodeDatagram form);
	// empty disables the broadcast plane.
	UDPTarget string

	// TCPAddr is the uplink query plane's listen address; empty disables it.
	// Use ":0" or "127.0.0.1:0" for an ephemeral port.
	TCPAddr string

	// IOTimeout bounds each blocking read or write on a query connection.
	// Zero means DefaultIOTimeout.
	IOTimeout time.Duration
}

// DefaultIOTimeout is the per-operation deadline on query connections.
const DefaultIOTimeout = 30 * time.Second

// Server hosts a Runtime behind real sockets. All runtime access funnels
// through one actor goroutine, so the engine stays exactly as
// single-threaded as the simulation core; the TCP and HTTP planes are
// concurrent only up to the actor's mailbox.
type Server struct {
	rt   *Runtime
	opts Options

	ops      chan func()
	stopped  chan struct{} // closed when the actor exits
	stopOnce sync.Once

	// queueMax is the deepest the actor mailbox has backed up, measured at
	// each dequeue (the op being taken plus everything still waiting). The
	// load harness reads it to see whether latency lives in the sockets or
	// in the serialization point.
	queueMax atomic.Int64

	udp   net.Conn
	tcpLn net.Listener

	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool

	wg        sync.WaitGroup // accept loop + connection handlers
	actorDone sync.WaitGroup
	wallStart time.Time
}

// NewServer builds and starts a server: the runtime's report schedule is
// armed, the planes are bound, and in wall-clock mode the clock begins
// advancing immediately.
func NewServer(opts Options) (*Server, error) {
	s := &Server{
		opts:    opts,
		ops:     make(chan func(), 64),
		stopped: make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	if opts.IOTimeout <= 0 {
		s.opts.IOTimeout = DefaultIOTimeout
	}
	if opts.UDPTarget != "" {
		conn, err := net.Dial("udp", opts.UDPTarget)
		if err != nil {
			return nil, fmt.Errorf("serve: udp target: %w", err)
		}
		s.udp = conn
	}
	rt, err := NewRuntime(opts.Runtime, s.sinkDatagram)
	if err != nil {
		s.closeSockets()
		return nil, err
	}
	s.rt = rt
	if opts.TCPAddr != "" {
		ln, err := net.Listen("tcp", opts.TCPAddr)
		if err != nil {
			s.closeSockets()
			return nil, fmt.Errorf("serve: tcp listen: %w", err)
		}
		s.tcpLn = ln
		s.wg.Add(1)
		go s.acceptLoop()
	}
	s.actorDone.Add(1)
	go s.actorLoop()
	if err := s.Do(func(rt *Runtime) { rt.Start() }); err != nil {
		return nil, err
	}
	return s, nil
}

// sinkDatagram runs on the actor goroutine (runtime callbacks only happen
// inside ops).
func (s *Server) sinkDatagram(_ int, datagram []byte) {
	if s.udp != nil {
		_, _ = s.udp.Write(datagram)
	}
}

// TCPAddr reports the query plane's bound address, or nil.
func (s *Server) TCPAddr() net.Addr {
	if s.tcpLn == nil {
		return nil
	}
	return s.tcpLn.Addr()
}

// actorLoop serializes runtime access; in wall-clock mode it also drives the
// virtual clock from real time.
func (s *Server) actorLoop() {
	defer s.actorDone.Done()
	var tick *time.Ticker
	var tickC <-chan time.Time
	if s.opts.WallClock {
		s.wallStart = time.Now()
		tick = time.NewTicker(5 * time.Millisecond)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case fn := <-s.ops:
			if depth := int64(len(s.ops)) + 1; depth > s.queueMax.Load() {
				s.queueMax.Store(depth)
			}
			if s.opts.WallClock {
				// Stamp each op at the exact wall microsecond, bumping at
				// least one past the previous stamp: two ops must never share
				// a virtual time, or an answer and an update landing in the
				// same tick window become unorderable — a report's
				// cached-before-update check and the load harness's truth
				// store both break on the tie.
				t := des.Time(time.Since(s.wallStart) / time.Microsecond)
				if now := s.rt.Now(); t <= now {
					t = now + 1
				}
				_, _ = s.rt.AdvanceTo(t)
			}
			fn()
		case <-tickC:
			// Keep the clock (and scheduled report broadcasts) moving through
			// op-free stretches. The per-op advance may have pushed the clock
			// a hair past the wall; AdvanceTo rejects the backwards ask and
			// the next tick catches up.
			_, _ = s.rt.AdvanceTo(des.Time(time.Since(s.wallStart) / time.Microsecond))
		case <-s.stopped:
			return
		}
	}
}

// ErrStopped reports an operation against a shut-down server.
var ErrStopped = errors.New("serve: server stopped")

// Do runs fn on the actor goroutine and waits for it.
func (s *Server) Do(fn func(rt *Runtime)) error {
	done := make(chan struct{})
	select {
	case s.ops <- func() { fn(s.rt); close(done) }:
	case <-s.stopped:
		return ErrStopped
	}
	select {
	case <-done:
		return nil
	case <-s.stopped:
		return ErrStopped
	}
}

// AdvanceTo advances the virtual clock (virtual-clock mode only), reporting
// how many broadcasts the advance produced.
func (s *Server) AdvanceTo(t des.Time) (broadcasts uint64, err error) {
	if s.opts.WallClock {
		return 0, fmt.Errorf("serve: AdvanceTo on a wall-clock server")
	}
	var aerr error
	if err := s.Do(func(rt *Runtime) { broadcasts, aerr = rt.AdvanceTo(t) }); err != nil {
		return 0, err
	}
	return broadcasts, aerr
}

// RuntimeConfig reports the runtime's active configuration.
func (s *Server) RuntimeConfig() (cfg RuntimeConfig, err error) {
	err = s.Do(func(rt *Runtime) { cfg = rt.Config() })
	return cfg, err
}

// Status snapshots the runtime, folding in the mailbox gauges only the
// Server can see: the instantaneous queue depth and its high-water mark.
func (s *Server) Status() (st Status, err error) {
	err = s.Do(func(rt *Runtime) {
		st = rt.Status()
		st.QueueDepth = len(s.ops)
		st.QueueMax = int(s.queueMax.Load())
	})
	return st, err
}

// QueueHighWater reports the deepest the actor mailbox has been since start —
// the load harness's cheap read when it only wants the pressure gauge.
func (s *Server) QueueHighWater() int { return int(s.queueMax.Load()) }

// Caps reports the backend's capability set.
func (s *Server) Caps() (cs capabilities.Set, err error) {
	err = s.Do(func(rt *Runtime) { cs = rt.Caps() })
	return cs, err
}

// SetAlgo swaps the serving algorithm live.
func (s *Server) SetAlgo(name string, p ir.Params) error {
	var serr error
	if err := s.Do(func(rt *Runtime) { serr = rt.SetAlgo(name, p) }); err != nil {
		return err
	}
	return serr
}

// Inject applies one externally originated database update.
func (s *Server) Inject(item int) (ans capabilities.Answer, err error) {
	var ierr error
	if err := s.Do(func(rt *Runtime) { ans, ierr = rt.Inject(item) }); err != nil {
		return ans, err
	}
	return ans, ierr
}

// SetSignals pushes the environment signals for the adaptive schemes.
func (s *Server) SetSignals(snrs []float64, load float64) error {
	var serr error
	if err := s.Do(func(rt *Runtime) { serr = rt.SetSignals(snrs, load) }); err != nil {
		return err
	}
	return serr
}

// Query answers one item query (the TCP plane's op, exposed for tests and
// the HTTP plane).
func (s *Server) Query(item int) (ans capabilities.Answer, digest []byte, err error) {
	var qerr error
	if err := s.Do(func(rt *Runtime) { ans, digest, qerr = rt.Query(item) }); err != nil {
		return ans, nil, err
	}
	return ans, digest, qerr
}

// Catchup serves the update history since the given consistency point, in
// wire form.
func (s *Server) Catchup(since des.Time) (report []byte, err error) {
	err = s.Do(func(rt *Runtime) { report = rt.Catchup(since).Marshal() })
	return report, err
}

// Shutdown gracefully stops the server: the listener closes, in-flight
// queries drain (handlers finish the frame they are processing; idle
// connections close), a final catch-up report covering everything since the
// last broadcast goes out on the UDP plane, and the actor exits. Idempotent.
func (s *Server) Shutdown() {
	s.stopOnce.Do(func() {
		if s.tcpLn != nil {
			_ = s.tcpLn.Close()
		}
		// Wake handlers blocked in a read; the draining flag stops them from
		// taking another frame.
		s.connMu.Lock()
		s.draining = true
		for c := range s.conns {
			_ = c.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		s.wg.Wait()
		_ = s.Do(func(rt *Runtime) { rt.FinalReport() })
		close(s.stopped)
		s.actorDone.Wait()
		s.closeSockets()
	})
}

func (s *Server) closeSockets() {
	if s.udp != nil {
		_ = s.udp.Close()
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.draining {
			s.connMu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// handleConn serves one query connection: a loop of length-prefixed request
// frames, each answered before the next is read. Deadlines bound every
// blocking step so a stalled peer cannot pin the handler; a framing or
// protocol error ends the connection (after a best-effort OpError), matching
// the bounded-trust stance of the fault layer.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		_ = conn.Close()
	}()
	fr := NewFrameReader(conn)
	for {
		s.connMu.Lock()
		draining := s.draining
		s.connMu.Unlock()
		if draining {
			return
		}
		_ = conn.SetReadDeadline(time.Now().Add(s.opts.IOTimeout))
		op, payload, err := fr.Read()
		if err != nil {
			return
		}
		if err := s.serveFrame(conn, op, payload); err != nil {
			return
		}
	}
}

// serveFrame dispatches one request frame and writes its response.
func (s *Server) serveFrame(conn net.Conn, op byte, payload []byte) error {
	_ = conn.SetWriteDeadline(time.Now().Add(s.opts.IOTimeout))
	switch op {
	case OpQuery:
		item, err := DecodeQuery(payload)
		if err != nil {
			return writeError(conn, err)
		}
		ans, digest, err := s.Query(item)
		if err != nil {
			return writeError(conn, err)
		}
		if err := WriteFrame(conn, OpAnswer, EncodeAnswerFrame(ans, digest != nil)); err != nil {
			return err
		}
		if digest != nil {
			return WriteFrame(conn, OpReport, digest)
		}
		return nil
	case OpCatchup:
		since, err := DecodeCatchup(payload)
		if err != nil {
			return writeError(conn, err)
		}
		report, err := s.Catchup(since)
		if err != nil {
			return writeError(conn, err)
		}
		return WriteFrame(conn, OpReport, report)
	default:
		_ = writeError(conn, fmt.Errorf("serve: unknown op 0x%02x", op))
		return fmt.Errorf("serve: unknown op")
	}
}

// writeError sends an OpError frame; the connection stays usable only for
// per-request errors (the callers decide by returning the error or nil).
func writeError(conn net.Conn, err error) error {
	_ = WriteFrame(conn, OpError, []byte(err.Error()))
	return nil
}
