package serve

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"reflect"
	"testing"
	"testing/iotest"
	"time"

	"repro/internal/db"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/serve/capabilities"
)

func testReport() *ir.Report {
	return &ir.Report{
		Kind: ir.KindFull, Seq: 9, At: 20_000_000, PrevAt: 10_000_000, WindowStart: 5_000_000,
		Items: []db.Update{{ID: 3, At: 6_000_000}, {ID: 41, At: 19_999_999}},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{EncodeQuery(17), EncodeCatchup(123456), nil,
		EncodeAnswer(capabilities.Answer{Item: 17, Version: 4, Bits: 8192, AsOf: 99})}
	ops := []byte{OpQuery, OpCatchup, OpError, OpAnswer}
	for i, p := range payloads {
		if err := WriteFrame(&buf, ops[i], p); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, want := range payloads {
		op, payload, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if op != ops[i] {
			t.Fatalf("frame %d op 0x%02x, want 0x%02x", i, op, ops[i])
		}
		if len(want) == 0 && len(payload) == 0 {
			continue
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("frame %d payload %x, want %x", i, payload, want)
		}
	}
	if _, _, err := fr.Read(); err != io.EOF {
		t.Fatalf("clean end must be io.EOF, got %v", err)
	}
}

// TestFrameReaderOneByteStream feeds the reader the worst possible stream
// segmentation: one byte per Read call. Length-prefix framing must be
// indifferent to how the kernel slices the stream.
func TestFrameReaderOneByteStream(t *testing.T) {
	var buf bytes.Buffer
	ans := capabilities.Answer{Item: 7, Version: 12, Bits: 4096, AsOf: 42}
	if err := WriteFrame(&buf, OpAnswer, EncodeAnswer(ans)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, OpReport, testReport().Marshal()); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(iotest.OneByteReader(&buf))
	op, payload, err := fr.Read()
	if err != nil || op != OpAnswer {
		t.Fatalf("read: op=0x%02x err=%v", op, err)
	}
	got, err := DecodeAnswer(payload)
	if err != nil || got != ans {
		t.Fatalf("answer %+v (err %v), want %+v", got, err, ans)
	}
	op, payload, err = fr.Read()
	if err != nil || op != OpReport {
		t.Fatalf("read: op=0x%02x err=%v", op, err)
	}
	r, err := ir.Unmarshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, testReport()) {
		t.Fatalf("report %+v", r)
	}
}

// TestFrameReaderSplitWrites drives a real TCP loopback pair with the frame
// bytes dribbled out in adversarial chunks (split across the length prefix,
// across the op byte, across the payload) with small delays between them.
func TestFrameReaderSplitWrites(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wire bytes.Buffer
	want := testReport().Marshal()
	if err := WriteFrame(&wire, OpReport, want); err != nil {
		t.Fatal(err)
	}
	raw := wire.Bytes()
	// Chunk boundaries chosen to split every structural field.
	cuts := []int{1, 3, 4, 5, 6, 20, len(raw)}

	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		prev := 0
		for _, cut := range cuts {
			if cut > len(raw) {
				cut = len(raw)
			}
			if _, err := conn.Write(raw[prev:cut]); err != nil {
				return
			}
			prev = cut
			time.Sleep(2 * time.Millisecond)
		}
	}()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	op, payload, err := NewFrameReader(conn).Read()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpReport || !bytes.Equal(payload, want) {
		t.Fatalf("op=0x%02x payload %x, want report frame", op, payload)
	}
}

func TestFrameReaderRejectsOversizedLength(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(MaxFramePayload+2))
	hdr[4] = OpQuery
	_, _, err := NewFrameReader(bytes.NewReader(hdr[:])).Read()
	if err == nil {
		t.Fatal("oversized length accepted")
	}
	// The declared length must be rejected BEFORE any allocation of that
	// size; nothing to assert directly, but a zero-length frame is equally
	// invalid.
	var zero [4]byte
	_, _, err = NewFrameReader(bytes.NewReader(zero[:])).Read()
	if err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestFrameReaderMidFrameCut(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, OpReport, testReport().Marshal()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{1, 3, 4, 5, 10, len(raw) - 1} {
		_, _, err := NewFrameReader(bytes.NewReader(raw[:cut])).Read()
		if err == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
		if err == io.EOF && cut >= 4 {
			t.Fatalf("cut at %d inside a frame must not read as clean EOF", cut)
		}
	}
}

// TestDatagramTruncationFates mirrors the fault layer's report fates on the
// UDP plane: a delivered datagram round-trips exactly, a truncated one (any
// prefix cut) must fail to decode rather than yield a short report, and a
// lost one simply never reaches the decoder. This is the process-boundary
// analogue of core's deliverFaultedReport handling of fault.Truncated.
func TestDatagramTruncationFates(t *testing.T) {
	r := testReport()
	dg := EncodeDatagram(3, r)

	for _, fate := range []fault.Fate{fault.Deliver, fault.Truncated, fault.Lost} {
		switch fate {
		case fault.Deliver:
			var got ir.Report
			mcs, err := DecodeDatagram(dg, &got)
			if err != nil {
				t.Fatal(err)
			}
			if mcs != 3 || !reflect.DeepEqual(&got, r) {
				t.Fatalf("mcs=%d report %+v", mcs, &got)
			}
		case fault.Truncated:
			for cut := 0; cut < len(dg); cut++ {
				var got ir.Report
				if _, err := DecodeDatagram(dg[:cut], &got); err == nil {
					t.Fatalf("truncation at %d decoded", cut)
				}
			}
			// Trailing garbage is corruption too, not extra items.
			var got ir.Report
			if _, err := DecodeDatagram(append(append([]byte{}, dg...), 0xAA), &got); err == nil {
				t.Fatal("trailing garbage decoded")
			}
		case fault.Lost:
			// Nothing reaches the decoder; the coverage-window rule at the
			// receiver is what absorbs the gap (conformance exercises it).
		}
	}
}

// TestUDPDatagramTruncationOverSocket sends a truncated datagram through a
// real UDP socket pair and asserts the receiver rejects it.
func TestUDPDatagramTruncationOverSocket(t *testing.T) {
	rx, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := net.Dial("udp", rx.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	full := EncodeDatagram(0, testReport())
	if _, err := tx.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Write(full); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 65536)
	_ = rx.SetReadDeadline(time.Now().Add(5 * time.Second))

	n, _, err := rx.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	var got ir.Report
	if _, err := DecodeDatagram(buf[:n], &got); err == nil {
		t.Fatal("truncated datagram decoded")
	}

	n, _, err = rx.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDatagram(buf[:n], &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, testReport()) {
		t.Fatalf("report %+v", &got)
	}
}

func TestUnmarshalIntoReusesBuffers(t *testing.T) {
	big := testReport()
	data := big.Marshal()
	var r ir.Report
	if err := ir.UnmarshalInto(&r, data); err != nil {
		t.Fatal(err)
	}
	firstItems := &r.Items[0]
	// A second decode into the same Report must reuse the items backing
	// array and the SigBlock-free path must stay allocation-free.
	if err := ir.UnmarshalInto(&r, data); err != nil {
		t.Fatal(err)
	}
	if &r.Items[0] != firstItems {
		t.Fatal("items backing array not reused")
	}
	if !reflect.DeepEqual(&r, big) {
		t.Fatalf("decode mismatch: %+v", &r)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := ir.UnmarshalInto(&r, data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("UnmarshalInto allocates %v/op on reuse", allocs)
	}
}
