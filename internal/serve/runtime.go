package serve

import (
	"fmt"
	"math"

	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/ir"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/serve/capabilities"
)

// RuntimeConfig parameterizes a served engine runtime.
type RuntimeConfig struct {
	Algo string    // scheme name (ir.Names)
	IR   ir.Params // algorithm tunables
	DB   db.Config // database sizing and update process
	Seed uint64    // master seed for the db update stream
}

// DefaultRuntimeConfig mirrors the simulation's base configuration, with the
// stochastic update process disabled: a served database normally changes
// through ingested updates, not a self-driving process. Set DB.UpdateRate to
// re-enable it.
func DefaultRuntimeConfig() RuntimeConfig {
	dbc := db.DefaultConfig()
	dbc.UpdateRate = 0
	p := ir.DefaultParams()
	p.NumItems = dbc.NumItems
	return RuntimeConfig{Algo: "ts", IR: p, DB: dbc, Seed: 1}
}

// Status is a snapshot of a runtime's state. The actor-queue fields are
// filled by the hosting Server (a bare Runtime has no mailbox): the
// load-test hook that lets a harness watch how deep the single-actor
// serialization point backs up under socket load.
type Status struct {
	Algo           string   `json:"algo"`
	NowUS          int64    `json:"now_us"`
	Broadcasts     uint64   `json:"broadcasts"`
	QueriesServed  uint64   `json:"queries_served"`
	UpdatesApplied uint64   `json:"updates_applied"`
	LastReportAtUS int64    `json:"last_report_at_us"`
	Capabilities   []string `json:"capabilities"`
	PendingEvents  int      `json:"pending_events"`
	ExecutedEvents uint64   `json:"executed_events"`
	QueueDepth     int      `json:"actor_queue_depth"`
	QueueMax       int      `json:"actor_queue_max"`
}

// Runtime is the invalidation-report engine bound to a virtual clock and an
// owned database: everything wdcserved does except sockets. It implements
// ir.ServerEnv for its algorithm; report broadcasts leave through the sink
// as encoded datagrams. All methods must be called from one goroutine (the
// Server actor, or a test driving it directly) — the runtime is exactly as
// single-threaded as the simulation core it mirrors.
type Runtime struct {
	sch     *des.Scheduler
	db      *db.DB
	amc     *radio.AMC
	backend Backend
	answers capabilities.QueryAnswerer
	catchup capabilities.CatchupProvider
	ingest  capabilities.UpdateIngester
	piggy   capabilities.PiggybackSource

	sink func(mcs int, datagram []byte)

	// Environment signals, pushed by the host (control plane or test).
	snrs []float64
	load float64

	cfg        RuntimeConfig
	tickers    []*des.Ticker // tickers owned by the current algorithm
	inTicker   bool
	broadcasts uint64
	queries    uint64
	ingested   uint64
	lastRepAt  des.Time
}

// runtimeStore adapts the owned database to the Store/Mutator pair: the
// runtime owns its DB, so the backend gains the ingest capability.
type runtimeStore struct{ rt *Runtime }

func (s runtimeStore) NumItems() int       { return s.rt.db.NumItems() }
func (s runtimeStore) Item(id int) db.Item { return s.rt.db.Item(id) }
func (s runtimeStore) UpdatedSince(since des.Time, buf []db.Update) []db.Update {
	return s.rt.db.UpdatedSince(since, buf)
}
func (s runtimeStore) Retention() des.Duration { return s.rt.db.Config().Retention }
func (s runtimeStore) Apply(item int) db.Item {
	s.rt.db.ApplyUpdate(item)
	return s.rt.db.Item(item)
}

// NewRuntime builds a stopped runtime; Start arms the report schedule. The
// sink receives every broadcast datagram and must not retain it past the
// call.
func NewRuntime(cfg RuntimeConfig, sink func(mcs int, datagram []byte)) (*Runtime, error) {
	if sink == nil {
		sink = func(int, []byte) {}
	}
	rt := &Runtime{sch: des.NewScheduler(), amc: radio.DefaultAMC(), sink: sink, cfg: cfg}
	d, err := db.New(rt.sch, cfg.DB, rng.Stream(cfg.Seed, "db"))
	if err != nil {
		return nil, err
	}
	rt.db = d
	if err := rt.installAlgo(cfg.Algo, cfg.IR); err != nil {
		return nil, err
	}
	return rt, nil
}

// installAlgo composes the backend for the named scheme and caches its
// capability facets.
func (rt *Runtime) installAlgo(name string, p ir.Params) error {
	if p.NumItems == 0 {
		p.NumItems = rt.db.NumItems()
	}
	algo, err := ir.New(name, p)
	if err != nil {
		return err
	}
	backend := NewBackend(algo, runtimeStore{rt})
	rt.backend = backend
	rt.answers = backend.(capabilities.QueryAnswerer)
	rt.catchup = backend.(capabilities.CatchupProvider)
	rt.ingest, _ = backend.(capabilities.UpdateIngester)
	rt.piggy, _ = backend.(capabilities.PiggybackSource)
	rt.cfg.Algo, rt.cfg.IR = name, p
	return nil
}

// Start arms the database update process and the report schedule.
func (rt *Runtime) Start() {
	rt.db.Start()
	rt.backend.StartReports(rt)
}

// SetAlgo swaps the serving algorithm live: the outgoing scheme's tickers
// are stopped, the new backend starts its schedule from the current clock.
// Clients keyed to the old stream recover exactly as they do from a report
// gap — the coverage-window rule or a catch-up exchange.
func (rt *Runtime) SetAlgo(name string, p ir.Params) error {
	if rt.inTicker {
		return fmt.Errorf("serve: algo swap from inside a report tick")
	}
	for _, t := range rt.tickers {
		t.Stop()
	}
	rt.tickers = rt.tickers[:0]
	if err := rt.installAlgo(name, p); err != nil {
		return err
	}
	rt.backend.StartReports(rt)
	return nil
}

// AdvanceTo runs every event scheduled at or before t and leaves the clock
// at t. It reports how many report broadcasts the advance produced, so a
// lock-step driver knows exactly how many datagrams to collect. The virtual
// clock only moves forward; asking for an earlier time is a caller error,
// not a silent no-op.
func (rt *Runtime) AdvanceTo(t des.Time) (broadcasts uint64, err error) {
	if now := rt.sch.Now(); t < now {
		return 0, fmt.Errorf("serve: AdvanceTo %v before now %v", t, now)
	}
	before := rt.broadcasts
	rt.sch.Run(t)
	return rt.broadcasts - before, nil
}

// Now reports the virtual clock (also part of ir.ServerEnv).
func (rt *Runtime) Now() des.Time { return rt.sch.Now() }

// Query answers one item query at the current clock. When the backend
// piggybacks, the marshaled digest it would attach to the response frame is
// returned alongside — the served analogue of the core's digest-on-response
// path — or nil when the backend declines or lacks the capability.
func (rt *Runtime) Query(item int) (capabilities.Answer, []byte, error) {
	ans, err := rt.answers.AnswerQuery(item, rt.sch.Now())
	if err != nil {
		return ans, nil, err
	}
	rt.queries++
	var digest []byte
	if rt.piggy != nil {
		if pg := rt.piggy.PiggybackDigest(rt.sch.Now()); pg != nil {
			digest = pg.Marshal()
			rt.backend.RecycleReport(pg)
		}
	}
	return ans, digest, nil
}

// Catchup serves the update history since the given consistency point. The
// caller owns the returned report (it is never arena-backed).
func (rt *Runtime) Catchup(since des.Time) *ir.Report {
	return rt.catchup.CatchupSince(since, rt.sch.Now())
}

// Inject applies one externally originated update, if the backend ingests.
func (rt *Runtime) Inject(item int) (capabilities.Answer, error) {
	if rt.ingest == nil {
		return capabilities.Answer{}, fmt.Errorf("serve: backend has no ingest capability")
	}
	ans, err := rt.ingest.IngestUpdate(item)
	if err == nil {
		rt.ingested++
	}
	return ans, err
}

// SetSignals pushes the environment signals the adaptive schemes consume:
// the awake-population SNRs and the downlink load estimate. The slice is
// copied. Load is a capacity fraction and must land in [0, 1]; SNRs must be
// finite — a NaN here would silently poison the link-adaptation averages.
func (rt *Runtime) SetSignals(snrs []float64, load float64) error {
	if math.IsNaN(load) || load < 0 || load > 1 {
		return fmt.Errorf("serve: load %v outside [0, 1]", load)
	}
	for i, s := range snrs {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("serve: snr[%d] = %v is not finite", i, s)
		}
	}
	rt.snrs = append(rt.snrs[:0], snrs...)
	rt.load = load
	return nil
}

// FinalReport emits one last catch-up report through the sink, covering
// everything since the previous broadcast: the graceful-shutdown farewell
// that lets connected clients stay consistent across a server restart. It
// broadcasts at the robust MCS so every listener can decode it.
func (rt *Runtime) FinalReport() {
	r := rt.catchup.CatchupSince(rt.lastRepAt, rt.sch.Now())
	rt.emit(r, 0)
}

// Caps reports the backend's capability set.
func (rt *Runtime) Caps() capabilities.Set { return capabilities.Detect(rt.backend) }

// DBItem reports the current state of one item — the ground truth the
// conformance oracle checks client caches against.
func (rt *Runtime) DBItem(id int) db.Item { return rt.db.Item(id) }

// Config reports the active configuration.
func (rt *Runtime) Config() RuntimeConfig { return rt.cfg }

// Status snapshots the runtime.
func (rt *Runtime) Status() Status {
	return Status{
		Algo:           rt.backend.AlgoName(),
		NowUS:          int64(rt.sch.Now()),
		Broadcasts:     rt.broadcasts,
		QueriesServed:  rt.queries,
		UpdatesApplied: rt.ingested,
		LastReportAtUS: int64(rt.lastRepAt),
		Capabilities:   rt.Caps().Names(),
		PendingEvents:  rt.sch.Pending(),
		ExecutedEvents: rt.sch.Executed(),
	}
}

// emit encodes and sinks one report, then recycles it.
func (rt *Runtime) emit(r *ir.Report, mcs int) {
	rt.broadcasts++
	rt.lastRepAt = r.At
	rt.sink(mcs, EncodeDatagram(mcs, r))
	rt.backend.RecycleReport(r)
}

// --- ir.ServerEnv (the algorithm side of the runtime) ---

// UpdatedSince implements ir.ServerEnv.
func (rt *Runtime) UpdatedSince(since des.Time, buf []db.Update) []db.Update {
	return rt.db.UpdatedSince(since, buf)
}

// Broadcast implements ir.ServerEnv: the report leaves as a datagram.
func (rt *Runtime) Broadcast(r *ir.Report, mcs int) { rt.emit(r, mcs) }

// NewTicker implements ir.ServerEnv, tracking ownership so SetAlgo can stop
// the outgoing scheme's schedule.
func (rt *Runtime) NewTicker(period des.Duration, name string, fn func(des.Time)) *des.Ticker {
	t := des.NewTicker(rt.sch, period, name, func(now des.Time) {
		rt.inTicker = true
		fn(now)
		rt.inTicker = false
	})
	rt.tickers = append(rt.tickers, t)
	return t
}

// AwakeSNRs implements ir.ServerEnv from the pushed signal state.
func (rt *Runtime) AwakeSNRs() []float64 { return rt.snrs }

// AMC implements ir.ServerEnv.
func (rt *Runtime) AMC() *radio.AMC { return rt.amc }

// DownlinkLoad implements ir.ServerEnv from the pushed signal state.
func (rt *Runtime) DownlinkLoad() float64 { return rt.load }
