package serve

import (
	"net"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/des"
	"repro/internal/ir"
)

// TestShutdownFinalReportKeepsClientsConsistent drives the graceful-shutdown
// contract end to end: a client caches answers, the database moves underneath
// it via injected updates it has not yet heard about, and the server shuts
// down. The farewell catch-up datagram must arrive on the broadcast plane and
// must leave the client with zero stale entries across the restart boundary.
func TestShutdownFinalReportKeepsClientsConsistent(t *testing.T) {
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()

	rc := DefaultRuntimeConfig()
	rc.Algo = "ts"
	rc.Seed = 42
	rc.DB.NumItems = 32
	rc.DB.HotItems = 8
	rc.DB.UpdateRate = 0 // ingest-only: the test controls every update
	rc.IR.NumItems = rc.DB.NumItems
	rc.IR.Interval = 500 * des.Millisecond

	srv, err := NewServer(Options{Runtime: rc, UDPTarget: udp.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}

	var state ir.ClientState
	c := cache.New(8, rc.DB.NumItems)
	readReports := func(n uint64) {
		buf := make([]byte, 1<<16)
		for i := uint64(0); i < n; i++ {
			_ = udp.SetReadDeadline(time.Now().Add(5 * time.Second))
			m, _, err := udp.ReadFromUDP(buf)
			if err != nil {
				t.Fatalf("datagram %d/%d: %v", i+1, n, err)
			}
			var r ir.Report
			if _, err := DecodeDatagram(buf[:m], &r); err != nil {
				t.Fatal(err)
			}
			state.Process(&r, c, nil, nil)
		}
	}

	// Sync the client to the report stream, then cache a few answers at an
	// instant strictly between report times.
	n, err := srv.AdvanceTo(des.Time(0).Add(des.FromSeconds(1.0)))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no reports in the first virtual second")
	}
	readReports(n)
	if _, err := srv.AdvanceTo(des.Time(0).Add(des.FromSeconds(1.05))); err != nil {
		t.Fatal(err)
	}
	cached := []int{3, 7, 11}
	for _, item := range cached {
		ans, _, err := srv.Query(item)
		if err != nil {
			t.Fatal(err)
		}
		c.Put(ans.Item, ans.Version, ans.AsOf)
	}

	// Move the database underneath the client: two of its entries go stale
	// with no regular report left to announce it.
	if _, err := srv.AdvanceTo(des.Time(0).Add(des.FromSeconds(1.1))); err != nil {
		t.Fatal(err)
	}
	for _, item := range cached[:2] {
		if _, err := srv.Inject(item); err != nil {
			t.Fatal(err)
		}
	}

	// Graceful shutdown: the farewell catch-up datagram must cover the gap.
	srv.Shutdown()
	readReports(1)

	// The actor is stopped; direct runtime reads are safe now.
	asOf := state.LastConsistent
	stale := 0
	c.Range(func(e cache.Entry) bool {
		it := srv.rt.DBItem(e.ID)
		if it.UpdatedAt <= asOf && e.Version != it.Version {
			stale++
		}
		return true
	})
	if stale != 0 {
		t.Fatalf("%d stale entries survived the shutdown report", stale)
	}
	for _, item := range cached[:2] {
		if c.Contains(item) {
			t.Fatalf("item %d was updated after caching and must be invalidated", item)
		}
	}
	if !c.Contains(cached[2]) {
		t.Fatalf("item %d was never updated and must survive", cached[2])
	}

	// Shutdown is idempotent and post-shutdown ops fail cleanly.
	srv.Shutdown()
	if _, _, err := srv.Query(0); err != ErrStopped {
		t.Fatalf("post-shutdown query: %v, want ErrStopped", err)
	}
}

// TestShutdownDrainsInFlightQueries holds a TCP connection open mid-exchange
// while Shutdown runs: the handler must finish the frame it is serving, the
// final report must still go out, and the listener must refuse new work.
func TestShutdownDrainsInFlightQueries(t *testing.T) {
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()

	rc := DefaultRuntimeConfig()
	rc.DB.NumItems = 16
	rc.DB.HotItems = 4
	rc.IR.NumItems = rc.DB.NumItems
	srv, err := NewServer(Options{
		Runtime:   rc,
		UDPTarget: udp.LocalAddr().String(),
		TCPAddr:   "127.0.0.1:0",
		IOTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, OpQuery, EncodeQuery(5)); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	op, payload, err := fr.Read()
	if err != nil || op != OpAnswer {
		t.Fatalf("op=0x%02x err=%v", op, err)
	}
	if _, _, err := DecodeAnswerFrame(payload); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { srv.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on an idle connection")
	}

	// The drained connection is closed; the farewell datagram arrived.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := fr.Read(); err == nil {
		t.Fatal("connection survived shutdown")
	}
	buf := make([]byte, 1<<16)
	_ = udp.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, _, err := udp.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	var r ir.Report
	if _, err := DecodeDatagram(buf[:m], &r); err != nil {
		t.Fatal(err)
	}
	if r.Kind != ir.KindFull {
		t.Fatalf("farewell report kind %v, want full", r.Kind)
	}
}
