// Package harness is the reusable client side of the served protocol: a
// cache-holding endpoint running exactly the protocol the DES core's clients
// run — ir.ClientState over a cache.Cache, the put guard that keeps an
// in-flight answer from re-entering a cache a report has already moved past,
// and the staleness sweep that checks every cached entry against ground
// truth. Both served-mode drivers are built from it: the virtual-time
// conformance oracle (internal/serve/conformance) and the wall-clock load
// harness (internal/loadgen).
package harness

import (
	"repro/internal/cache"
	"repro/internal/des"
	"repro/internal/ir"
	"repro/internal/rng"
	"repro/internal/serve/capabilities"
)

// Truth extends the signature oracle with version ground truth, which the
// staleness sweep needs: an entry is provably stale only relative to a known
// (version, update time) pair. The conformance oracle reads it from the
// lock-step model's database; the load harness maintains it from the answers
// of the updates it injects.
type Truth interface {
	ir.Oracle
	// VersionedAt reports an item's latest known version and update time.
	// An implementation that is momentarily unsure (an update in flight
	// whose post-state has not come back yet) must answer conservatively:
	// updatedAt = des.Never suppresses both the staleness sweep and the
	// signature clean-path for that item until the truth settles.
	VersionedAt(id int) (version uint64, updatedAt des.Time)
}

// Client is one protocol endpoint: invalidation state, cache, and the
// private RNG stream signature processing draws from. The zero value is not
// usable; construct with New. Clients are not safe for concurrent use — the
// owner serializes report processing against queries, exactly as the DES
// core's event loop does.
type Client struct {
	State ir.ClientState
	Cache *cache.Cache
	Src   *rng.Source

	rep ir.Report // reusable decode buffer for ProcessWire
}

// New builds a client with the given cache capacity over the item universe.
// src drives only signature false-positive draws and may be shared with
// nothing else if the owner needs draw-count isolation.
func New(capacity, universe int, src *rng.Source) *Client {
	return &Client{Cache: cache.New(capacity, universe), Src: src}
}

// Process applies one decoded report, returning whether it advanced the
// client's consistency point.
func (c *Client) Process(r *ir.Report, oracle ir.Oracle) bool {
	return c.State.Process(r, c.Cache, oracle, c.Src)
}

// ProcessWire decodes one report in ir wire form into the client's reusable
// buffer and processes it. The data slice is only read.
func (c *Client) ProcessWire(data []byte, oracle ir.Oracle) (bool, error) {
	if err := ir.UnmarshalInto(&c.rep, data); err != nil {
		return false, err
	}
	return c.Process(&c.rep, oracle), nil
}

// CacheAnswer applies the core's put guard and, when it passes, caches the
// answer: a value is skipped only when the oracle shows its item updated in
// (ans.AsOf, LastConsistent] — a report listed the item while the response
// was in flight and will never re-list it, so caching now would plant an
// entry no future report invalidates. It reports whether the entry was
// cached.
func (c *Client) CacheAnswer(ans capabilities.Answer, oracle ir.Oracle) bool {
	if u := oracle.UpdatedAt(ans.Item); u > ans.AsOf && u <= c.State.LastConsistent {
		return false
	}
	c.Cache.Put(ans.Item, ans.Version, ans.AsOf)
	return true
}

// StaleEntries counts cached entries violating the invalidation contract:
// entries whose item is known (truth settled, update time strictly before
// the client's consistency point) to have a newer version than the one
// cached. Both comparisons are one-sided on purpose. The version side: an
// entry newer than the truth means the truth is lagging the server, not that
// the protocol failed. The time side: an update stamped exactly at the
// consistency point is unorderable from outside — under a microsecond-
// granular clock (coarser still in wall-clock mode, where the virtual clock
// advances in ticks) the update op may have executed after the report
// covering (_, LastConsistent] was generated yet carry the same stamp, so
// only a strictly older update convicts; a genuinely stale entry is caught
// at the next sweep once a report moves the consistency point past the
// stamp. Together these let a harness whose ground truth trails the wire
// (the wall-clock load harness) assert zero — the paper's correctness
// invariant — without false violations.
func (c *Client) StaleEntries(truth Truth) int {
	stale := 0
	asOf := c.State.LastConsistent
	c.Cache.Range(func(e cache.Entry) bool {
		ver, at := truth.VersionedAt(e.ID)
		if at < asOf && e.Version < ver {
			stale++
		}
		return true
	})
	return stale
}
