package harness

import (
	"testing"

	"repro/internal/db"
	"repro/internal/des"
	"repro/internal/ir"
	"repro/internal/rng"
	"repro/internal/serve/capabilities"
)

// tableTruth is a settable ground-truth store for the universe.
type tableTruth struct {
	ver []uint64
	at  []des.Time
}

func newTableTruth(n int) *tableTruth {
	return &tableTruth{ver: make([]uint64, n), at: make([]des.Time, n)}
}

func (t *tableTruth) UpdatedAt(id int) des.Time             { return t.at[id] }
func (t *tableTruth) VersionedAt(id int) (uint64, des.Time) { return t.ver[id], t.at[id] }

func (t *tableTruth) set(id int, ver uint64, at des.Time) {
	t.ver[id], t.at[id] = ver, at
}

func newClient() *Client { return New(8, 16, rng.Stream(1, "harness-test")) }

func TestCacheAnswerPutGuard(t *testing.T) {
	truth := newTableTruth(16)
	c := newClient()
	c.State.LastConsistent = des.Time(10 * des.Second)

	// Item updated inside (AsOf, LastConsistent]: the answer is already
	// outdated and a processed report has listed it — caching is refused.
	truth.set(3, 2, des.Time(8*des.Second))
	if c.CacheAnswer(capabilities.Answer{Item: 3, Version: 1, AsOf: des.Time(5 * des.Second)}, truth) {
		t.Fatal("put guard must refuse an answer outdated inside (AsOf, LastConsistent]")
	}
	if c.Cache.Contains(3) {
		t.Fatal("refused answer must not be cached")
	}

	// Item updated before AsOf: the answer already reflects it, cache it.
	truth.set(4, 2, des.Time(3*des.Second))
	if !c.CacheAnswer(capabilities.Answer{Item: 4, Version: 2, AsOf: des.Time(5 * des.Second)}, truth) {
		t.Fatal("answer newer than the update must be cached")
	}

	// Item updated after LastConsistent: no report has covered the update
	// yet, so the guard cannot (and must not) refuse.
	truth.set(5, 3, des.Time(12*des.Second))
	if !c.CacheAnswer(capabilities.Answer{Item: 5, Version: 2, AsOf: des.Time(5 * des.Second)}, truth) {
		t.Fatal("update past LastConsistent must not trip the guard")
	}
}

func TestStaleEntriesRules(t *testing.T) {
	truth := newTableTruth(16)
	c := newClient()
	c.State.LastConsistent = des.Time(10 * des.Second)
	c.Cache.Put(1, 1, des.Time(des.Second))

	// Truth settled, newer version, update covered by the consistency
	// point: a genuine violation.
	truth.set(1, 2, des.Time(5*des.Second))
	if got := c.StaleEntries(truth); got != 1 {
		t.Fatalf("settled newer truth: StaleEntries = %d, want 1", got)
	}

	// Update past the consistency point: not yet the protocol's problem.
	truth.set(1, 2, des.Time(12*des.Second))
	if got := c.StaleEntries(truth); got != 0 {
		t.Fatalf("uncovered update flagged: StaleEntries = %d, want 0", got)
	}

	// Update stamped exactly at the consistency point: unorderable from
	// outside (the op may have executed after the covering report within
	// the same clock grain), so the sweep must not convict on the tie.
	truth.set(1, 2, des.Time(10*des.Second))
	if got := c.StaleEntries(truth); got != 0 {
		t.Fatalf("tie at the consistency point flagged: StaleEntries = %d, want 0", got)
	}

	// Truth in flux (des.Never): suppressed until it settles.
	truth.set(1, 99, des.Never)
	if got := c.StaleEntries(truth); got != 0 {
		t.Fatalf("in-flux truth flagged: StaleEntries = %d, want 0", got)
	}

	// Truth lagging the wire (entry version ahead): never a violation.
	truth.set(1, 0, 0)
	if got := c.StaleEntries(truth); got != 0 {
		t.Fatalf("lagging truth flagged: StaleEntries = %d, want 0", got)
	}
}

func TestProcessWireInvalidatesAndAdvances(t *testing.T) {
	truth := newTableTruth(16)
	c := newClient()
	c.Cache.Put(2, 1, des.Time(des.Second))
	c.Cache.Put(7, 1, des.Time(des.Second))

	r := &ir.Report{
		Kind:        ir.KindFull,
		At:          des.Time(4 * des.Second),
		PrevAt:      des.Time(2 * des.Second),
		WindowStart: 0,
		Items:       []db.Update{{ID: 2, At: des.Time(3 * des.Second)}},
	}
	applied, err := c.ProcessWire(r.Marshal(), truth)
	if err != nil || !applied {
		t.Fatalf("ProcessWire: applied=%v err=%v", applied, err)
	}
	if c.Cache.Contains(2) {
		t.Fatal("listed item must be invalidated")
	}
	if !c.Cache.Contains(7) {
		t.Fatal("unlisted item must survive")
	}
	if c.State.LastConsistent != r.At {
		t.Fatalf("LastConsistent %v, want %v", c.State.LastConsistent, r.At)
	}

	if _, err := c.ProcessWire([]byte{1, 2, 3}, truth); err == nil {
		t.Fatal("truncated wire form must error")
	}
}
