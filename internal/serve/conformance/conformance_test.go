package conformance

import (
	"os"
	"testing"
	"time"

	"repro/internal/ir"
)

func steps(t *testing.T) int {
	if testing.Short() {
		return 40
	}
	return 150
}

// TestConformanceAllAlgorithms runs the lock-step oracle over every scheme:
// the served engine must produce byte-identical report streams, answers,
// digests and catch-ups to the in-process model, and the harness clients
// riding the broadcast plane must never hold a stale entry. Setting
// WDCSERVED_BIN to a built wdcserved binary runs the same protocol against
// a real subprocess over real sockets.
func TestConformanceAllAlgorithms(t *testing.T) {
	bin := os.Getenv("WDCSERVED_BIN")
	for _, algo := range ir.Names {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{
				Algo:    algo,
				Seed:    0xC0FFEE,
				Steps:   steps(t),
				Clients: 4,
				Bin:     bin,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stale != 0 {
				t.Fatalf("stale-answer violations: %d (result %+v)", res.Stale, res)
			}
			// Guard against a vacuous pass: the schedule must actually have
			// exercised the planes.
			if res.Broadcasts == 0 {
				t.Fatalf("no broadcasts compared: %+v", res)
			}
			if res.Queries == 0 || res.Injects == 0 || res.Catchups == 0 {
				t.Fatalf("schedule did not cover all ops: %+v", res)
			}
			t.Logf("%s: %+v", algo, res)
		})
	}
}

// TestConformanceChaos degrades the client side — lost and truncated
// datagrams, stalled query frames cut by the server's IO deadline and
// retried with bounded backoff — and asserts the protocol still never
// leaves a stale entry in any cache. The server-side byte comparison stays
// exact throughout: chaos happens to the traffic, not to the engine.
func TestConformanceChaos(t *testing.T) {
	for _, algo := range []string{"ts", "uir", "sig", "hybrid"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{
				Algo:      algo,
				Seed:      7,
				Steps:     steps(t) / 2,
				Clients:   3,
				IOTimeout: 150 * time.Millisecond,
				Chaos: &Chaos{
					ReportLossProb:  0.15,
					ReportTruncProb: 0.10,
					TimeoutProb:     0.08,
					RetryBase:       time.Millisecond,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stale != 0 {
				t.Fatalf("stale-answer violations under chaos: %d (result %+v)", res.Stale, res)
			}
			if res.Lost == 0 && res.Truncated == 0 {
				t.Fatalf("chaos drew no faults — probabilities or schedule broken: %+v", res)
			}
			t.Logf("%s: %+v", algo, res)
		})
	}
}
