package conformance

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/serve/capabilities"
	"repro/internal/serve/harness"
)

// Config parameterizes one conformance run.
type Config struct {
	Algo    string // scheme under test (ir.Names)
	Seed    uint64 // drives the db streams, the schedule, and chaos
	Steps   int    // lock-step iterations
	Clients int    // harness clients consuming the broadcast plane

	// Bin, when non-empty, spawns that wdcserved binary as the target;
	// empty runs an in-process serve.Server behind the same sockets.
	Bin string

	// IOTimeout is the server's per-operation connection deadline. Chaos
	// runs shrink it so stalled-frame cuts happen in test time.
	IOTimeout time.Duration

	// Chaos, when non-nil, degrades the client side of the exchange. The
	// server comparison stays exact — chaos tests that the *protocol* keeps
	// clients consistent under loss, not that the server tolerates it.
	Chaos *Chaos
}

// Chaos mirrors the fault layer's report fates and query timeouts onto the
// served planes.
type Chaos struct {
	ReportLossProb  float64       // per client per datagram: never delivered
	ReportTruncProb float64       // per client per datagram: cut mid-flight
	TimeoutProb     float64       // per query: stall the frame, let the server cut, retry
	RetryBase       time.Duration // bounded-exponential retry backoff base
}

// Result summarizes a run. Stale is the count of stale-answer violations —
// the paper's correctness invariant — and must be zero for every algorithm.
type Result struct {
	Broadcasts uint64 // datagrams compared byte-for-byte
	Queries    int
	Injects    int
	Catchups   int
	Retries    int // queries retried after a stalled-frame cut
	Lost       int // datagrams withheld from a client by chaos
	Truncated  int // datagrams cut mid-flight by chaos
	Stale      int // cache entries caught violating the invalidation contract
}

// RuntimeConfigFor sizes a runtime so a few hundred lock-step iterations
// exercise every report kind: a small hot-skewed database updating fast
// relative to the report period, and adaptive intervals tight enough to
// move.
func RuntimeConfigFor(algo string, seed uint64) serve.RuntimeConfig {
	rc := serve.DefaultRuntimeConfig()
	rc.Algo = algo
	rc.Seed = seed
	rc.DB.NumItems = 64
	rc.DB.ItemBits = 4096
	rc.DB.UpdateRate = 30
	rc.DB.HotItems = 8
	rc.IR.NumItems = rc.DB.NumItems
	rc.IR.Interval = 500 * des.Millisecond
	rc.IR.IntervalMin = 200 * des.Millisecond
	rc.IR.IntervalMax = 2 * des.Second
	rc.IR.PiggyMinGap = 50 * des.Millisecond
	return rc
}

// modelOracle reads item ground truth from the model runtime — the stand-in
// for bit-level signature hashing, same as the core's dbOracle. It also
// implements harness.Truth: in lock-step mode the model database IS the
// settled truth, so the staleness sweep is exact.
type modelOracle struct{ rt *serve.Runtime }

func (o modelOracle) UpdatedAt(id int) des.Time { return o.rt.DBItem(id).UpdatedAt }

func (o modelOracle) VersionedAt(id int) (uint64, des.Time) {
	it := o.rt.DBItem(id)
	return it.Version, it.UpdatedAt
}

// Run executes the lock-step conformance protocol: model and target advance
// to the same virtual instants, receive the same queries, updates and
// signals in the same order, and every observable — datagram bytes, answer
// fields, digest bytes, catch-up bytes — must match exactly. Harness clients
// consume the target's datagrams (through chaos, if configured) and are
// swept for stale entries after every step.
func Run(cfg Config) (Result, error) {
	var res Result
	if cfg.Steps <= 0 || cfg.Clients <= 0 {
		return res, fmt.Errorf("conformance: Steps %d, Clients %d", cfg.Steps, cfg.Clients)
	}
	rc := RuntimeConfigFor(cfg.Algo, cfg.Seed)

	var sink [][]byte
	model, err := serve.NewRuntime(rc, func(_ int, dg []byte) {
		sink = append(sink, append([]byte(nil), dg...))
	})
	if err != nil {
		return res, err
	}
	model.Start()

	var tgt *Target
	if cfg.Bin != "" {
		tgt, err = NewSubprocessTarget(cfg.Bin, rc, cfg.IOTimeout)
	} else {
		tgt, err = NewInProcessTarget(rc, cfg.IOTimeout)
	}
	if err != nil {
		return res, err
	}
	defer tgt.Close()

	oracle := modelOracle{model}
	clients := make([]*harness.Client, cfg.Clients)
	for i := range clients {
		clients[i] = harness.New(16, rc.DB.NumItems,
			rng.Stream(cfg.Seed, fmt.Sprintf("conf-client-%d", i)))
	}
	sched := rng.Stream(cfg.Seed, "conf-schedule")
	chaos := rng.Stream(cfg.Seed, "conf-chaos")

	now := des.Time(0)
	for step := 0; step < cfg.Steps; step++ {
		now = now.Add(des.FromSeconds(sched.Uniform(0.01, 0.12)))

		// Advance both engines to the same instant and compare streams.
		before := len(sink)
		model.AdvanceTo(now)
		produced := len(sink) - before
		served, err := tgt.Advance(now)
		if err != nil {
			return res, err
		}
		if int(served) != produced {
			return res, fmt.Errorf("conformance: step %d [%s]: served %d broadcasts, model produced %d",
				step, cfg.Algo, served, produced)
		}
		grams, err := tgt.ReadDatagrams(produced)
		if err != nil {
			return res, err
		}
		for i, dg := range grams {
			if want := sink[before+i]; !bytes.Equal(dg, want) {
				return res, fmt.Errorf("conformance: step %d [%s]: datagram %d/%d differs\nserved %x\nmodel  %x",
					step, cfg.Algo, i+1, produced, dg, want)
			}
		}
		res.Broadcasts += served

		// Fan the broadcast to every harness client, through chaos fates.
		for _, dg := range grams {
			for _, c := range clients {
				switch fate := sampleFate(cfg.Chaos, chaos); fate {
				case fault.Lost:
					res.Lost++
				case fault.Truncated:
					res.Truncated++
					cut := dg[:1+chaos.Intn(len(dg)-1)]
					var junk ir.Report
					if _, err := serve.DecodeDatagram(cut, &junk); err == nil {
						return res, fmt.Errorf("conformance: truncated datagram (%d of %d bytes) decoded",
							len(cut), len(dg))
					}
				default:
					if _, err := c.ProcessWire(dg[1:], oracle); err != nil {
						return res, fmt.Errorf("conformance: step %d: undecodable datagram: %w", step, err)
					}
				}
			}
		}

		// One client/control action per step, mirrored to both engines.
		if err := applyStep(cfg, &res, sched, chaos, tgt, model, clients, oracle, rc.DB.NumItems); err != nil {
			return res, fmt.Errorf("conformance: step %d [%s]: %w", step, cfg.Algo, err)
		}

		// The stale sweep: every cached entry whose item has not changed
		// after the client's consistency point must hold the current
		// version. This is the core's checkConsistency rule applied to the
		// whole cache, shared with the load harness via harness.StaleEntries.
		for _, c := range clients {
			res.Stale += c.StaleEntries(oracle)
		}
	}
	return res, nil
}

// sampleFate draws one delivery fate for a datagram-client pair.
func sampleFate(ch *Chaos, src *rng.Source) fault.Fate {
	if ch == nil {
		return fault.Deliver
	}
	switch u := src.Float64(); {
	case u < ch.ReportLossProb:
		return fault.Lost
	case u < ch.ReportLossProb+ch.ReportTruncProb:
		return fault.Truncated
	default:
		return fault.Deliver
	}
}

// applyStep performs one mirrored action: an item query over TCP, an update
// injection, a signals push, or a catch-up exchange.
func applyStep(cfg Config, res *Result, sched, chaos *rng.Source, tgt *Target,
	model *serve.Runtime, clients []*harness.Client, oracle harness.Truth, numItems int) error {
	switch pick := sched.Float64(); {
	case pick < 0.55: // query
		c := clients[sched.Intn(len(clients))]
		item := sched.Intn(numItems)
		ans, digest, err := queryWithChaos(cfg.Chaos, res, chaos, tgt, item)
		if err != nil {
			return err
		}
		mans, mdigest, merr := model.Query(item)
		if merr != nil {
			return merr
		}
		if ans != mans {
			return fmt.Errorf("answer mismatch: served %+v, model %+v", ans, mans)
		}
		if !bytes.Equal(digest, mdigest) {
			return fmt.Errorf("piggyback digest mismatch: served %x, model %x", digest, mdigest)
		}
		// The digest rides the response; process it before caching so the
		// put guard sees the advanced consistency point, as in the core.
		if digest != nil {
			if _, err := c.ProcessWire(digest, oracle); err != nil {
				return err
			}
		}
		c.CacheAnswer(ans, oracle)
		res.Queries++
	case pick < 0.75: // update injection
		item := sched.Intn(numItems)
		ans, err := tgt.Inject(item)
		if err != nil {
			return err
		}
		mans, merr := model.Inject(item)
		if merr != nil {
			return merr
		}
		if ans != mans {
			return fmt.Errorf("inject answer mismatch: served %+v, model %+v", ans, mans)
		}
		res.Injects++
	case pick < 0.90: // environment signals
		snrs := make([]float64, 2+sched.Intn(6))
		for i := range snrs {
			snrs[i] = sched.Uniform(0, 30)
		}
		load := sched.Float64()
		if err := tgt.SetSignals(snrs, load); err != nil {
			return err
		}
		model.SetSignals(snrs, load)
	default: // catch-up exchange
		c := clients[sched.Intn(len(clients))]
		raw, err := tgt.Catchup(c.State.LastConsistent)
		if err != nil {
			return err
		}
		want := model.Catchup(c.State.LastConsistent)
		if !bytes.Equal(raw, want.Marshal()) {
			return fmt.Errorf("catchup report mismatch: served %x, model %x", raw, want.Marshal())
		}
		if _, err := c.ProcessWire(raw, oracle); err != nil {
			return err
		}
		res.Catchups++
	}
	return nil
}

// queryWithChaos optionally stalls the query frame first, waits for the
// server's IO deadline to cut the connection, and retries on a fresh one
// with the fault layer's bounded-exponential backoff.
func queryWithChaos(ch *Chaos, res *Result, src *rng.Source, tgt *Target, item int) (capabilities.Answer, []byte, error) {
	if ch != nil && src.Bool(ch.TimeoutProb) {
		if err := tgt.StallFrame(); err != nil {
			return capabilities.Answer{}, nil, err
		}
		if err := tgt.Reconnect(); err != nil {
			return capabilities.Answer{}, nil, err
		}
		res.Retries++
		if base := ch.RetryBase; base > 0 {
			time.Sleep(base << uint(min(res.Retries, 6)))
		}
	}
	return tgt.Query(item)
}
