// Package conformance drives a live wdcserved instance in virtual-time
// lock-step against an in-process serve.Runtime and asserts the two are the
// same engine: byte-identical report datagrams per clock advance,
// byte-identical query answers, piggyback digests and catch-up reports, and
// — through a fleet of harness clients mirroring the core's cache protocol —
// zero stale answers. The DES-style model is the oracle; the network server
// is the system under test.
package conformance

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"syscall"
	"time"

	"repro/internal/des"
	"repro/internal/serve"
	"repro/internal/serve/capabilities"
	"repro/internal/serve/rest"
)

// Target is the network-facing client of one server under test: a UDP
// listener for the broadcast plane, a TCP connection for the query plane and
// an HTTP client for the control plane. The same client drives both an
// in-process serve.Server and a spawned wdcserved subprocess, so conformance
// means the same thing in both modes.
type Target struct {
	udp     *net.UDPConn
	tcp     net.Conn
	fr      *serve.FrameReader
	tcpAddr string
	base    string
	hc      *http.Client
	buf     []byte
	closers []func()
}

// readDeadline bounds every read against the target; a conforming server
// responds in microseconds, so hitting this means the server lost a frame or
// a datagram it owed us.
const readDeadline = 10 * time.Second

// NewInProcessTarget starts a loopback serve.Server in virtual-clock mode
// with its control plane behind httptest, and connects all three planes.
func NewInProcessTarget(rc serve.RuntimeConfig, ioTimeout time.Duration) (*Target, error) {
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	srv, err := serve.NewServer(serve.Options{
		Runtime:   rc,
		UDPTarget: udp.LocalAddr().String(),
		TCPAddr:   "127.0.0.1:0",
		IOTimeout: ioTimeout,
	})
	if err != nil {
		udp.Close()
		return nil, err
	}
	hs := httptest.NewServer(rest.Handler(srv))
	t := &Target{
		udp:     udp,
		tcpAddr: srv.TCPAddr().String(),
		base:    hs.URL,
		hc:      hs.Client(),
		buf:     make([]byte, 1<<16),
	}
	t.closers = []func(){hs.Close, srv.Shutdown, func() { udp.Close() }}
	if err := t.Reconnect(); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// NewSubprocessTarget spawns a wdcserved binary in virtual-clock mode on
// ephemeral ports, parses the address line it prints on stdout, and connects
// the planes. Close sends SIGTERM and waits, exercising the daemon's
// graceful-drain path.
func NewSubprocessTarget(bin string, rc serve.RuntimeConfig, ioTimeout time.Duration) (*Target, error) {
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	conf, err := json.Marshal(rc)
	if err != nil {
		udp.Close()
		return nil, err
	}
	if ioTimeout <= 0 {
		ioTimeout = serve.DefaultIOTimeout
	}
	cmd := exec.Command(bin,
		"-clock", "virtual",
		"-udp-target", udp.LocalAddr().String(),
		"-tcp", "127.0.0.1:0",
		"-http", "127.0.0.1:0",
		"-io-timeout", ioTimeout.String(),
		"-conf-json", string(conf),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		udp.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		udp.Close()
		return nil, fmt.Errorf("conformance: start %s: %w", bin, err)
	}

	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	var line string
	select {
	case l, ok := <-lineCh:
		if !ok {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			udp.Close()
			return nil, fmt.Errorf("conformance: %s exited before printing its address line", bin)
		}
		line = l
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		udp.Close()
		return nil, fmt.Errorf("conformance: %s did not print its address line", bin)
	}
	var addrs struct {
		TCP  string `json:"tcp"`
		HTTP string `json:"http"`
	}
	if err := json.Unmarshal([]byte(line), &addrs); err != nil || addrs.TCP == "" || addrs.HTTP == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		udp.Close()
		return nil, fmt.Errorf("conformance: bad address line %q: %v", line, err)
	}

	t := &Target{
		udp:     udp,
		tcpAddr: addrs.TCP,
		base:    "http://" + addrs.HTTP,
		hc:      &http.Client{Timeout: readDeadline},
		buf:     make([]byte, 1<<16),
	}
	t.closers = []func(){
		func() {
			_ = cmd.Process.Signal(syscall.SIGTERM)
			done := make(chan struct{})
			go func() { _ = cmd.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(readDeadline):
				_ = cmd.Process.Kill()
				<-done
			}
		},
		func() { udp.Close() },
	}
	if err := t.Reconnect(); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// Close tears the target down (for a subprocess: SIGTERM and wait).
func (t *Target) Close() {
	if t.tcp != nil {
		_ = t.tcp.Close()
	}
	for _, fn := range t.closers {
		fn()
	}
}

// Reconnect (re)dials the query plane, abandoning any previous connection —
// what a real client does after the server cuts a stalled exchange.
func (t *Target) Reconnect() error {
	if t.tcp != nil {
		_ = t.tcp.Close()
	}
	conn, err := net.Dial("tcp", t.tcpAddr)
	if err != nil {
		return err
	}
	t.tcp = conn
	t.fr = serve.NewFrameReader(conn)
	return nil
}

// post sends one control-plane request and decodes the JSON reply into out.
func (t *Target) post(path string, body, out any) error {
	js, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := t.hc.Post(t.base+path, "application/json", bytes.NewReader(js))
	if err != nil {
		return fmt.Errorf("conformance: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("conformance: POST %s: %s: %s", path, resp.Status, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Advance moves the target's virtual clock to t and reports how many
// broadcast datagrams the advance produced.
func (t *Target) Advance(to des.Time) (uint64, error) {
	var out struct {
		Broadcasts uint64 `json:"broadcasts"`
	}
	err := t.post("/v1/advance", struct {
		ToUS int64 `json:"to_us"`
	}{int64(to)}, &out)
	return out.Broadcasts, err
}

// Inject applies one database update through the control plane.
func (t *Target) Inject(item int) (capabilities.Answer, error) {
	var ans capabilities.Answer
	err := t.post("/v1/update", struct {
		Item int `json:"item"`
	}{item}, &ans)
	return ans, err
}

// SetSignals pushes the adaptive schemes' environment signals.
func (t *Target) SetSignals(snrs []float64, load float64) error {
	return t.post("/v1/signals", struct {
		SNRs []float64 `json:"snrs"`
		Load float64   `json:"load"`
	}{snrs, load}, nil)
}

// SetAlgo swaps the serving algorithm live.
func (t *Target) SetAlgo(algo string) error {
	return t.post("/v1/algo", struct {
		Algo string `json:"algo"`
	}{algo}, nil)
}

// Query runs one item query over the TCP plane, returning the answer and the
// piggybacked digest frame when one follows (nil otherwise).
func (t *Target) Query(item int) (capabilities.Answer, []byte, error) {
	var ans capabilities.Answer
	if err := serve.WriteFrame(t.tcp, serve.OpQuery, serve.EncodeQuery(item)); err != nil {
		return ans, nil, err
	}
	op, payload, err := t.readFrame()
	if err != nil {
		return ans, nil, err
	}
	if op != serve.OpAnswer {
		return ans, nil, fmt.Errorf("conformance: query answered with op 0x%02x", op)
	}
	ans, digestFollows, err := serve.DecodeAnswerFrame(payload)
	if err != nil || !digestFollows {
		return ans, nil, err
	}
	op, payload, err = t.readFrame()
	if err != nil {
		return ans, nil, err
	}
	if op != serve.OpReport {
		return ans, nil, fmt.Errorf("conformance: digest flag set but op 0x%02x followed", op)
	}
	return ans, append([]byte(nil), payload...), nil
}

// Catchup requests the update history since the given consistency point and
// returns the unicast report in wire form.
func (t *Target) Catchup(since des.Time) ([]byte, error) {
	if err := serve.WriteFrame(t.tcp, serve.OpCatchup, serve.EncodeCatchup(since)); err != nil {
		return nil, err
	}
	op, payload, err := t.readFrame()
	if err != nil {
		return nil, err
	}
	if op != serve.OpReport {
		return nil, fmt.Errorf("conformance: catchup answered with op 0x%02x", op)
	}
	return append([]byte(nil), payload...), nil
}

// readFrame reads one response frame, turning OpError into a Go error.
func (t *Target) readFrame() (byte, []byte, error) {
	_ = t.tcp.SetReadDeadline(time.Now().Add(readDeadline))
	op, payload, err := t.fr.Read()
	if err != nil {
		return 0, nil, err
	}
	if op == serve.OpError {
		return 0, nil, fmt.Errorf("conformance: server error: %s", payload)
	}
	return op, payload, nil
}

// ReadDatagrams collects exactly n broadcast datagrams from the UDP plane.
// The lock-step protocol makes n exact: Advance already reported how many
// the server owes.
func (t *Target) ReadDatagrams(n int) ([][]byte, error) {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		_ = t.udp.SetReadDeadline(time.Now().Add(readDeadline))
		m, _, err := t.udp.ReadFromUDP(t.buf)
		if err != nil {
			return out, fmt.Errorf("conformance: datagram %d/%d: %w", i+1, n, err)
		}
		out = append(out, append([]byte(nil), t.buf[:m]...))
	}
	return out, nil
}

// StallFrame writes half a length prefix and then goes silent, waiting for
// the server to cut the connection at its IO deadline — the wire analogue of
// a query that times out in flight. An answer arriving instead is a protocol
// violation.
func (t *Target) StallFrame() error {
	if _, err := t.tcp.Write([]byte{0x00, 0x00}); err != nil {
		return err
	}
	_ = t.tcp.SetReadDeadline(time.Now().Add(readDeadline))
	if _, _, err := t.fr.Read(); err == nil {
		return fmt.Errorf("conformance: server answered a stalled frame")
	}
	return nil
}
