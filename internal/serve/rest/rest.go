// Package rest is wdcserved's HTTP control and observability plane: JSON
// endpoints for status, capability discovery, live algorithm swap, update
// injection, environment signals and virtual-clock advancement, plus
// Prometheus metrics and pprof. The data planes stay binary (UDP broadcast,
// TCP query frames); HTTP carries only control traffic, so plain
// encoding/json is fine here.
package rest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"repro/internal/des"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Handler builds the control-plane mux over a running server.
func Handler(s *serve.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status()
		reply(w, st, err)
	})
	mux.HandleFunc("/v1/capabilities", func(w http.ResponseWriter, r *http.Request) {
		cs, err := s.Caps()
		reply(w, struct {
			Set   any      `json:"set"`
			Names []string `json:"names"`
		}{cs, cs.Names()}, err)
	})
	mux.HandleFunc("/v1/algo", func(w http.ResponseWriter, r *http.Request) {
		if !post(w, r) {
			return
		}
		var req struct {
			Algo string `json:"algo"`
		}
		if !decode(w, r, &req) {
			return
		}
		cfg, err := s.RuntimeConfig()
		if err == nil {
			err = s.SetAlgo(req.Algo, cfg.IR)
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		st, err := s.Status()
		reply(w, st, err)
	})
	mux.HandleFunc("/v1/update", func(w http.ResponseWriter, r *http.Request) {
		if !post(w, r) {
			return
		}
		var req struct {
			Item int `json:"item"`
		}
		if !decode(w, r, &req) {
			return
		}
		ans, err := s.Inject(req.Item)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		reply(w, ans, nil)
	})
	mux.HandleFunc("/v1/signals", func(w http.ResponseWriter, r *http.Request) {
		if !post(w, r) {
			return
		}
		var req struct {
			SNRs []float64 `json:"snrs"`
			Load float64   `json:"load"`
		}
		if !decode(w, r, &req) {
			return
		}
		if err := s.SetSignals(req.SNRs, req.Load); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		reply(w, struct {
			OK bool `json:"ok"`
		}{true}, nil)
	})
	mux.HandleFunc("/v1/advance", func(w http.ResponseWriter, r *http.Request) {
		if !post(w, r) {
			return
		}
		var req struct {
			ToUS int64 `json:"to_us"`
		}
		if !decode(w, r, &req) {
			return
		}
		n, err := s.AdvanceTo(des.Time(req.ToUS))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		reply(w, struct {
			Broadcasts uint64 `json:"broadcasts"`
			NowUS      int64  `json:"now_us"`
		}{n, req.ToUS}, nil)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status()
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		var b obs.PromText
		b.Head("wdcserved_info", "Serving algorithm (value is always 1).", "gauge")
		b.Sample("wdcserved_info", fmt.Sprintf("algo=%q", st.Algo), 1)
		b.Gauge("wdcserved_clock_seconds", "Virtual clock position.", des.Time(st.NowUS).Seconds())
		b.Counter("wdcserved_broadcasts_total", "Invalidation reports broadcast on the UDP plane.", float64(st.Broadcasts))
		b.Counter("wdcserved_queries_total", "Item queries answered.", float64(st.QueriesServed))
		b.Counter("wdcserved_updates_total", "Database updates ingested via the control plane.", float64(st.UpdatesApplied))
		b.Counter("wdcserved_events_total", "Engine scheduler events executed.", float64(st.ExecutedEvents))
		b.Gauge("wdcserved_events_pending", "Engine scheduler events pending.", float64(st.PendingEvents))
		b.Gauge("wdcserved_actor_queue_depth", "Ops waiting in the actor mailbox.", float64(st.QueueDepth))
		b.Gauge("wdcserved_actor_queue_max", "High-water mark of the actor mailbox.", float64(st.QueueMax))
		b.ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Params re-exported for control clients building algo-swap payloads.
type Params = ir.Params

func post(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	return true
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any, err error) {
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}
