package rest_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/serve/rest"
)

func newTestPlane(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	rc := serve.DefaultRuntimeConfig()
	rc.Algo = "hybrid"
	rc.DB.NumItems = 32
	rc.DB.HotItems = 8
	rc.IR.NumItems = rc.DB.NumItems
	srv, err := serve.NewServer(serve.Options{Runtime: rc})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(rest.Handler(srv))
	t.Cleanup(func() { hs.Close(); srv.Shutdown() })
	return srv, hs
}

func postJSON(t *testing.T, url string, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s: %v in %s", url, err, data)
		}
	}
	return resp
}

func TestControlPlaneRoundTrip(t *testing.T) {
	_, hs := newTestPlane(t)

	var st serve.Status
	resp, err := http.Get(hs.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Algo != "hybrid" {
		t.Fatalf("algo %q", st.Algo)
	}

	// The hybrid scheme piggybacks and the owned db ingests: all five
	// capabilities must be discoverable.
	var caps struct {
		Names []string `json:"names"`
	}
	resp, err = http.Get(hs.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&caps); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(caps.Names) != 5 {
		t.Fatalf("capabilities %v, want all five", caps.Names)
	}

	// Live algorithm swap narrows the capability set: ts has no piggyback.
	if resp := postJSON(t, hs.URL+"/v1/algo", `{"algo":"ts"}`, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("algo swap: %s", resp.Status)
	}
	if st.Algo != "ts" {
		t.Fatalf("algo after swap %q", st.Algo)
	}
	for _, name := range st.Capabilities {
		if name == "piggyback" {
			t.Fatal("ts must not present the piggyback capability")
		}
	}

	// Update injection bumps the item version; signals and advance succeed.
	var ans struct {
		Item    int    `json:"item"`
		Version uint64 `json:"version"`
	}
	postJSON(t, hs.URL+"/v1/update", `{"item":3}`, &ans)
	if ans.Item != 3 || ans.Version == 0 {
		t.Fatalf("inject answer %+v", ans)
	}
	if resp := postJSON(t, hs.URL+"/v1/signals", `{"snrs":[10,20],"load":0.5}`, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("signals: %s", resp.Status)
	}
	var adv struct {
		Broadcasts uint64 `json:"broadcasts"`
		NowUS      int64  `json:"now_us"`
	}
	postJSON(t, hs.URL+"/v1/advance", `{"to_us":30000000}`, &adv)
	if adv.NowUS != 30000000 || adv.Broadcasts == 0 {
		t.Fatalf("advance %+v: 30 virtual seconds must broadcast", adv)
	}

	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"wdcserved_broadcasts_total", "wdcserved_queries_total", `wdcserved_info{algo="ts"}`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestControlPlaneRejectsBadRequests(t *testing.T) {
	_, hs := newTestPlane(t)
	// Control mutations are POST-only.
	resp, err := http.Get(hs.URL + "/v1/algo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/algo: %s", resp.Status)
	}
	// Unknown fields and unknown algorithms are 400s, not silent.
	if resp := postJSON(t, hs.URL+"/v1/algo", `{"algo":"ts","bogus":1}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %s", resp.Status)
	}
	if resp := postJSON(t, hs.URL+"/v1/algo", `{"algo":"nope"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown algo: %s", resp.Status)
	}
	if resp := postJSON(t, hs.URL+"/v1/update", `{"item":99999}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range item: %s", resp.Status)
	}
}

// TestControlPlaneErrorPaths drives every mutating endpoint through its
// rejection paths — wrong method, malformed JSON, unknown algorithm, wrong
// field types, oversized bodies past the 1 MiB cap — and asserts both the
// intended status code and that the runtime absorbed no state change.
func TestControlPlaneErrorPaths(t *testing.T) {
	_, hs := newTestPlane(t)

	// controlState is the part of Status a rejected request must not move.
	type controlState struct {
		algo    string
		nowUS   int64
		updates uint64
		bcasts  uint64
	}
	snapshot := func() controlState {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st serve.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return controlState{st.Algo, st.NowUS, st.UpdatesApplied, st.Broadcasts}
	}

	oversized := `{"algo":"` + strings.Repeat("x", 1<<20) + `"}`
	endpoints := []string{"/v1/algo", "/v1/update", "/v1/signals", "/v1/advance"}
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"algo GET", http.MethodGet, "/v1/algo", "", http.StatusMethodNotAllowed},
		{"update GET", http.MethodGet, "/v1/update", "", http.StatusMethodNotAllowed},
		{"signals DELETE", http.MethodDelete, "/v1/signals", "", http.StatusMethodNotAllowed},
		{"advance PUT", http.MethodPut, "/v1/advance", `{"to_us":1}`, http.StatusMethodNotAllowed},
		{"algo truncated JSON", http.MethodPost, "/v1/algo", `{"algo":"ts"`, http.StatusBadRequest},
		{"algo non-JSON body", http.MethodPost, "/v1/algo", `ts`, http.StatusBadRequest},
		{"algo wrong type", http.MethodPost, "/v1/algo", `{"algo":7}`, http.StatusBadRequest},
		{"algo unknown name", http.MethodPost, "/v1/algo", `{"algo":"lru"}`, http.StatusBadRequest},
		{"algo empty name", http.MethodPost, "/v1/algo", `{"algo":""}`, http.StatusBadRequest},
		{"update wrong type", http.MethodPost, "/v1/update", `{"item":"three"}`, http.StatusBadRequest},
		{"update negative item", http.MethodPost, "/v1/update", `{"item":-1}`, http.StatusBadRequest},
		{"update unknown field", http.MethodPost, "/v1/update", `{"item":1,"extra":true}`, http.StatusBadRequest},
		{"signals malformed array", http.MethodPost, "/v1/signals", `{"snrs":[10,}`, http.StatusBadRequest},
		{"signals negative load", http.MethodPost, "/v1/signals", `{"snrs":[10],"load":-2}`, http.StatusBadRequest},
		{"signals overfull load", http.MethodPost, "/v1/signals", `{"snrs":[10],"load":1.5}`, http.StatusBadRequest},
		{"advance truncated", http.MethodPost, "/v1/advance", `{"to_us":`, http.StatusBadRequest},
		{"advance backwards", http.MethodPost, "/v1/advance", `{"to_us":-5}`, http.StatusBadRequest},
	}
	for _, path := range endpoints {
		cases = append(cases, struct {
			name   string
			method string
			path   string
			body   string
			want   int
		}{path + " oversized body", http.MethodPost, path, oversized, http.StatusBadRequest})
	}

	before := snapshot()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, hs.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: got %s, want %d (body %s)", tc.method, tc.path, resp.Status, tc.want, body)
			}
			// Every rejection is a JSON error object, not a bare string.
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("%s %s: rejection body %q is not an error object", tc.method, tc.path, body)
			}
		})
	}
	if after := snapshot(); after != before {
		t.Fatalf("rejected requests moved control state:\n  before %+v\n  after  %+v", before, after)
	}
}
