package serve

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/des"
	"repro/internal/ir"
	"repro/internal/serve/capabilities"
)

// The uplink query plane is length-prefixed frames over TCP:
//
//	u32be length | u8 op | payload        (length = 1 + len(payload))
//
// Client → server ops carry an item query or a catch-up request; server →
// client ops carry the answer, a unicast report, or an error string. The
// framing is deliberately dumb — io.ReadFull semantics make it immune to
// arbitrary stream segmentation (1-byte reads, split writes), which the
// adversarial wire tests drive explicitly.
const (
	OpQuery   byte = 0x01 // u32 item
	OpCatchup byte = 0x02 // u64 since (µs)

	OpAnswer byte = 0x81 // u32 item | u64 version | u32 bits | u64 asOf
	OpReport byte = 0x82 // marshaled ir.Report
	OpError  byte = 0xFF // utf-8 message
)

// MaxFramePayload bounds a frame's declared payload size. A report for a
// full database of 10^6 items is ~12 MB; anything beyond that is a corrupt
// or hostile length prefix and the connection is cut rather than the server
// allocating attacker-chosen amounts.
const MaxFramePayload = 16 << 20

// WriteFrame writes one frame. The payload may be nil.
func WriteFrame(w io.Writer, op byte, payload []byte) error {
	hdr := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(hdr, uint32(1+len(payload)))
	hdr[4] = op
	_, err := w.Write(append(hdr, payload...))
	return err
}

// FrameReader decodes frames from a stream, reusing one payload buffer; the
// returned payload is valid until the next Read.
type FrameReader struct {
	r   io.Reader
	buf []byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Read returns the next frame. io.EOF is returned only on a clean frame
// boundary; a stream cut mid-frame is io.ErrUnexpectedEOF.
func (fr *FrameReader) Read() (op byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("serve: zero-length frame")
	}
	if n > MaxFramePayload+1 {
		return 0, nil, fmt.Errorf("serve: frame length %d exceeds limit %d", n, MaxFramePayload+1)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return fr.buf[0], fr.buf[1:], nil
}

// EncodeQuery builds an OpQuery payload.
func EncodeQuery(item int) []byte {
	return binary.BigEndian.AppendUint32(nil, uint32(item))
}

// DecodeQuery parses an OpQuery payload.
func DecodeQuery(payload []byte) (item int, err error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("serve: query payload %d bytes, want 4", len(payload))
	}
	return int(binary.BigEndian.Uint32(payload)), nil
}

// EncodeCatchup builds an OpCatchup payload.
func EncodeCatchup(since des.Time) []byte {
	return binary.BigEndian.AppendUint64(nil, uint64(since))
}

// DecodeCatchup parses an OpCatchup payload.
func DecodeCatchup(payload []byte) (since des.Time, err error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("serve: catchup payload %d bytes, want 8", len(payload))
	}
	return des.Time(binary.BigEndian.Uint64(payload)), nil
}

// EncodeAnswer builds an OpAnswer payload.
func EncodeAnswer(a capabilities.Answer) []byte {
	buf := make([]byte, 0, 24)
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.Item))
	buf = binary.BigEndian.AppendUint64(buf, a.Version)
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.Bits))
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.AsOf))
	return buf
}

// DecodeAnswer parses an OpAnswer payload.
func DecodeAnswer(payload []byte) (capabilities.Answer, error) {
	if len(payload) != 24 {
		return capabilities.Answer{}, fmt.Errorf("serve: answer payload %d bytes, want 24", len(payload))
	}
	return capabilities.Answer{
		Item:    int(binary.BigEndian.Uint32(payload)),
		Version: binary.BigEndian.Uint64(payload[4:]),
		Bits:    int(binary.BigEndian.Uint32(payload[12:])),
		AsOf:    des.Time(binary.BigEndian.Uint64(payload[16:])),
	}, nil
}

// EncodeAnswerFrame builds the full OpAnswer frame payload: the answer plus
// a trailing flag telling the peer whether a piggybacked digest frame
// (OpReport) follows on the stream — the served analogue of a digest riding
// a response frame's robust control portion.
func EncodeAnswerFrame(a capabilities.Answer, digestFollows bool) []byte {
	buf := EncodeAnswer(a)
	if digestFollows {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// DecodeAnswerFrame parses an OpAnswer frame payload.
func DecodeAnswerFrame(payload []byte) (a capabilities.Answer, digestFollows bool, err error) {
	if len(payload) != 25 {
		return a, false, fmt.Errorf("serve: answer frame %d bytes, want 25", len(payload))
	}
	switch payload[24] {
	case 0:
	case 1:
		digestFollows = true
	default:
		return a, false, fmt.Errorf("serve: bad digest flag %d", payload[24])
	}
	a, err = DecodeAnswer(payload[:24])
	return a, digestFollows, err
}

// EncodeDatagram builds one broadcast datagram: u8 mcs | marshaled report.
// The report body is the exact ir wire form, so the conformance oracle can
// compare served streams byte-for-byte against in-process ones.
func EncodeDatagram(mcs int, r *ir.Report) []byte {
	body := r.Marshal()
	buf := make([]byte, 0, 1+len(body))
	buf = append(buf, byte(mcs))
	return append(buf, body...)
}

// DecodeDatagram parses a broadcast datagram into r (see ir.UnmarshalInto
// for the reuse contract). A truncated datagram — the UDP analogue of a
// frame that lost its tail in flight — fails loudly instead of yielding a
// short report.
func DecodeDatagram(data []byte, r *ir.Report) (mcs int, err error) {
	if len(data) < 1 {
		return 0, fmt.Errorf("serve: empty datagram")
	}
	if err := ir.UnmarshalInto(r, data[1:]); err != nil {
		return 0, err
	}
	return int(data[0]), nil
}
