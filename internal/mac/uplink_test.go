package mac

import (
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
)

type ulDelivered struct {
	srcs  []int
	metas []any
	times []des.Time
}

func (d *ulDelivered) fn(src int, meta any, now des.Time) {
	d.srcs = append(d.srcs, src)
	d.metas = append(d.metas, meta)
	d.times = append(d.times, now)
}

func TestUplinkSingleRequest(t *testing.T) {
	sch := des.NewScheduler()
	var got ulDelivered
	cfg := DefaultUplinkConfig()
	cfg.LossProb = 0
	cfg.InitialWindow = 1
	ul := NewUplink(sch, cfg, rng.New(1), got.fn)
	ul.Send(7, "req")
	sch.RunAll()
	if len(got.srcs) != 1 || got.srcs[0] != 7 || got.metas[0] != "req" {
		t.Fatalf("delivery wrong: %+v", got)
	}
	// Sent at t=0: transmits in slot 1 ([4ms, 8ms)), resolves at 8ms.
	if got.times[0] != des.Time(2*cfg.SlotDur) {
		t.Fatalf("delivered at %v", got.times[0])
	}
	s := ul.Stats()
	if s.Sent.Value() != 1 || s.Delivered.Value() != 1 || s.Collisions.Value() != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestUplinkCollisionEventuallyDelivers(t *testing.T) {
	sch := des.NewScheduler()
	var got ulDelivered
	cfg := DefaultUplinkConfig()
	cfg.LossProb = 0
	cfg.InitialWindow = 1
	ul := NewUplink(sch, cfg, rng.New(2), got.fn)
	// Two simultaneous sends land in the same slot and collide.
	ul.Send(1, nil)
	ul.Send(2, nil)
	sch.RunAll()
	if len(got.srcs) != 2 {
		t.Fatalf("delivered %d of 2", len(got.srcs))
	}
	s := ul.Stats()
	if s.Collisions.Value() < 1 {
		t.Fatal("no collision recorded")
	}
	if s.Attempts.Value() < 4 {
		t.Fatalf("attempts %d, expected retries", s.Attempts.Value())
	}
	if s.Delay.Min() <= 0 {
		t.Fatalf("delay %v", s.Delay.Min())
	}
}

func TestUplinkChannelLossRetries(t *testing.T) {
	sch := des.NewScheduler()
	var got ulDelivered
	cfg := DefaultUplinkConfig()
	cfg.LossProb = 0.9 // brutal channel: force several loss-retries
	ul := NewUplink(sch, cfg, rng.New(3), got.fn)
	ul.Send(0, nil)
	sch.RunAll()
	if len(got.srcs) != 1 {
		t.Fatal("request lost forever")
	}
	if ul.Stats().Losses.Value() == 0 {
		t.Fatal("no losses recorded at 90% loss prob")
	}
}

func TestUplinkManyContenders(t *testing.T) {
	sch := des.NewScheduler()
	var got ulDelivered
	cfg := DefaultUplinkConfig()
	cfg.LossProb = 0
	ul := NewUplink(sch, cfg, rng.New(4), got.fn)
	const n = 50
	for i := 0; i < n; i++ {
		ul.Send(i, i)
	}
	sch.RunAll()
	if len(got.srcs) != n {
		t.Fatalf("delivered %d of %d", len(got.srcs), n)
	}
	// Every request delivered exactly once.
	seen := make(map[int]bool)
	for _, src := range got.srcs {
		if seen[src] {
			t.Fatalf("duplicate delivery for %d", src)
		}
		seen[src] = true
	}
}

func TestUplinkDeterminism(t *testing.T) {
	run := func() []des.Time {
		sch := des.NewScheduler()
		var got ulDelivered
		ul := NewUplink(sch, DefaultUplinkConfig(), rng.New(5), got.fn)
		for i := 0; i < 10; i++ {
			i := i
			sch.At(des.Time(i)*des.Time(des.Millisecond), "send", func() { ul.Send(i, nil) })
		}
		sch.RunAll()
		return got.times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different delivery counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestUplinkConfigPanics(t *testing.T) {
	sch := des.NewScheduler()
	bad := []UplinkConfig{
		{SlotDur: 0, InitialWindow: 1, MaxBackoffExp: 1},
		{SlotDur: des.Millisecond, InitialWindow: 0, MaxBackoffExp: 1},
		{SlotDur: des.Millisecond, InitialWindow: 1, MaxBackoffExp: -1},
		{SlotDur: des.Millisecond, InitialWindow: 1, MaxBackoffExp: 1, LossProb: 1},
	}
	for i, cfg := range bad {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d accepted", i)
				}
			}()
			NewUplink(sch, cfg, rng.New(1), func(int, any, des.Time) {})
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("nil deliver accepted")
		}
	}()
	NewUplink(sch, DefaultUplinkConfig(), rng.New(1), nil)
}
