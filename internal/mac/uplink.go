package mac

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// UplinkConfig sets the contention parameters of the shared request channel.
type UplinkConfig struct {
	SlotDur       des.Duration // one request fits exactly one slot
	InitialWindow int          // first attempt lands uniformly in this many slots
	MaxBackoffExp int          // backoff window caps at InitialWindow·2^MaxBackoffExp slots
	LossProb      float64      // per-attempt channel loss even without collision
}

// DefaultUplinkConfig models a low-rate random-access channel: 4 ms slots
// (a ~60-byte request at the robust uplink rate), an 8-slot initial window,
// binary exponential backoff capped at 8·2^7 = 1024 slots, 2% channel loss.
// The initial randomization matters: invalidation reports synchronize every
// client's cache-miss requests, and an unrandomized first slot collapses the
// channel at moderate populations.
func DefaultUplinkConfig() UplinkConfig {
	return UplinkConfig{SlotDur: 4 * des.Millisecond, InitialWindow: 8, MaxBackoffExp: 7, LossProb: 0.02}
}

// UplinkDeliver is invoked when a request survives contention and decoding.
type UplinkDeliver func(src int, meta any, now des.Time)

// UplinkStats aggregates contention measurements.
type UplinkStats struct {
	Sent       metrics.Counter // Send calls
	Attempts   metrics.Counter // slot transmissions, including retries
	Collisions metrics.Counter // slots with more than one transmission
	Losses     metrics.Counter // solo transmissions lost to channel noise
	Delivered  metrics.Counter
	Delay      metrics.Series // Send → delivery, seconds
}

type attempt struct {
	src   int
	meta  any
	sent  des.Time
	tries int
	next  *attempt // intrusive link: slot queue when pending, free list when idle
}

// slotQueue is the FIFO of attempts contending in one slot, linked through
// attempt.next so enqueueing never allocates.
type slotQueue struct {
	head, tail *attempt
	n          int
}

// Uplink is a slotted-ALOHA random access channel with binary exponential
// backoff. Requests are retried until they get through: the invalidation
// protocols above it rely on at-least-once delivery, and the latency cost of
// a congested uplink is precisely one of the measured effects.
type Uplink struct {
	cfg     UplinkConfig
	sch     *des.Scheduler
	deliver UplinkDeliver
	src     *rng.Source

	// ring holds the armed slot queues, indexed slot & ringMask. Backoff
	// bounds how far ahead an attempt can land (1 + InitialWindow·2^MaxBackoffExp
	// slots), and resolution clears slots as time passes, so at any instant
	// the armed slots span less than the ring size and never alias — giving
	// O(1) hash-free access on the contention hot path.
	ring     []slotQueue
	ringMask int64

	// resolveFn is the one pre-bound slot-resolution callback: resolution
	// events fire exactly at slot end, so the slot index is recovered from
	// the clock instead of captured in a per-arming closure.
	resolveFn func()

	free *attempt // recycled attempts, linked through next

	stats     UplinkStats
	onAttempt func(src int)
}

// NewUplink builds the uplink. deliver must be non-nil.
func NewUplink(sch *des.Scheduler, cfg UplinkConfig, src *rng.Source, deliver UplinkDeliver) *Uplink {
	if deliver == nil {
		panic("mac: nil uplink deliver callback")
	}
	if cfg.SlotDur <= 0 || cfg.InitialWindow < 1 || cfg.MaxBackoffExp < 0 ||
		cfg.LossProb < 0 || cfg.LossProb >= 1 {
		panic(fmt.Sprintf("mac: invalid uplink config %+v", cfg))
	}
	u := &Uplink{
		cfg:     cfg,
		sch:     sch,
		deliver: deliver,
		src:     src,
	}
	// Furthest reachable slot from an arming at slot s: s+1+window-1 with
	// window capped at InitialWindow·2^MaxBackoffExp; size the ring to the
	// next power of two above that span so live slots never collide.
	span := int64(cfg.InitialWindow)<<uint(cfg.MaxBackoffExp) + 2
	size := int64(1)
	for size < span {
		size <<= 1
	}
	u.ring = make([]slotQueue, size)
	u.ringMask = size - 1
	u.resolveFn = func() { u.resolve(int64(u.sch.Now())/int64(u.cfg.SlotDur) - 1) }
	return u
}

// Stats exposes the accumulated measurements.
func (u *Uplink) Stats() *UplinkStats { return &u.stats }

// SetAttemptHook installs fn to observe every slot transmission (including
// retries) by source client; energy accounting uses it.
func (u *Uplink) SetAttemptHook(fn func(src int)) { u.onAttempt = fn }

// Send submits a request from client src. The first transmission lands
// uniformly within the initial window starting at the next slot; collisions
// are retried with binary exponential backoff until delivered.
func (u *Uplink) Send(src int, meta any) {
	u.stats.Sent.Inc()
	a := u.acquire()
	a.src, a.meta, a.sent = src, meta, u.sch.Now()
	jitter := int64(u.src.Uint64n(uint64(u.cfg.InitialWindow)))
	u.scheduleIn(a, u.nextSlot()+jitter)
}

// acquire pops a recycled attempt or allocates a fresh one.
func (u *Uplink) acquire() *attempt {
	if a := u.free; a != nil {
		u.free = a.next
		*a = attempt{}
		return a
	}
	return &attempt{}
}

// releaseAttempt returns a delivered attempt to the free list, dropping its
// meta reference.
func (u *Uplink) releaseAttempt(a *attempt) {
	*a = attempt{next: u.free}
	u.free = a
}

// nextSlot reports the first slot index whose start is strictly after now.
func (u *Uplink) nextSlot() int64 {
	return int64(u.sch.Now())/int64(u.cfg.SlotDur) + 1
}

func (u *Uplink) scheduleIn(a *attempt, slot int64) {
	q := &u.ring[slot&u.ringMask]
	a.next = nil
	if q.head == nil {
		q.head = a
	} else {
		q.tail.next = a
	}
	q.tail = a
	q.n++
	if q.n == 1 {
		end := des.Time((slot + 1) * int64(u.cfg.SlotDur))
		u.sch.At(end, "mac.ulslot", u.resolveFn)
	}
}

func (u *Uplink) resolve(slot int64) {
	q := u.ring[slot&u.ringMask]
	u.ring[slot&u.ringMask] = slotQueue{}
	now := u.sch.Now()
	u.stats.Attempts.Add(uint64(q.n))
	if u.onAttempt != nil {
		for a := q.head; a != nil; a = a.next {
			u.onAttempt(a.src)
		}
	}
	switch {
	case q.n == 0:
		return
	case q.n == 1 && !u.src.Bool(u.cfg.LossProb):
		a := q.head
		u.stats.Delivered.Inc()
		u.stats.Delay.Observe(now.Sub(a.sent).Seconds())
		u.deliver(a.src, a.meta, now)
		u.releaseAttempt(a)
		return
	case q.n == 1:
		u.stats.Losses.Inc()
	default:
		u.stats.Collisions.Inc()
	}
	for a := q.head; a != nil; {
		next := a.next // scheduleIn relinks a into another slot's queue
		a.tries++
		exp := a.tries
		if exp > u.cfg.MaxBackoffExp {
			exp = u.cfg.MaxBackoffExp
		}
		window := int64(u.cfg.InitialWindow) << uint(exp)
		u.scheduleIn(a, slot+1+int64(u.src.Uint64n(uint64(window))))
		a = next
	}
}
