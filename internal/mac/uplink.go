package mac

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// UplinkConfig sets the contention parameters of the shared request channel.
type UplinkConfig struct {
	SlotDur       des.Duration // one request fits exactly one slot
	InitialWindow int          // first attempt lands uniformly in this many slots
	MaxBackoffExp int          // backoff window caps at InitialWindow·2^MaxBackoffExp slots
	LossProb      float64      // per-attempt channel loss even without collision
}

// DefaultUplinkConfig models a low-rate random-access channel: 4 ms slots
// (a ~60-byte request at the robust uplink rate), an 8-slot initial window,
// binary exponential backoff capped at 8·2^7 = 1024 slots, 2% channel loss.
// The initial randomization matters: invalidation reports synchronize every
// client's cache-miss requests, and an unrandomized first slot collapses the
// channel at moderate populations.
func DefaultUplinkConfig() UplinkConfig {
	return UplinkConfig{SlotDur: 4 * des.Millisecond, InitialWindow: 8, MaxBackoffExp: 7, LossProb: 0.02}
}

// UplinkDeliver is invoked when a request survives contention and decoding.
type UplinkDeliver func(src int, meta any, now des.Time)

// UplinkStats aggregates contention measurements.
type UplinkStats struct {
	Sent       metrics.Counter // Send calls
	Attempts   metrics.Counter // slot transmissions, including retries
	Collisions metrics.Counter // slots with more than one transmission
	Losses     metrics.Counter // solo transmissions lost to channel noise
	Delivered  metrics.Counter
	Delay      metrics.Series // Send → delivery, seconds
}

type attempt struct {
	src   int
	meta  any
	sent  des.Time
	tries int
}

// Uplink is a slotted-ALOHA random access channel with binary exponential
// backoff. Requests are retried until they get through: the invalidation
// protocols above it rely on at-least-once delivery, and the latency cost of
// a congested uplink is precisely one of the measured effects.
type Uplink struct {
	cfg     UplinkConfig
	sch     *des.Scheduler
	deliver UplinkDeliver
	src     *rng.Source

	slots     map[int64][]*attempt
	stats     UplinkStats
	onAttempt func(src int)
}

// NewUplink builds the uplink. deliver must be non-nil.
func NewUplink(sch *des.Scheduler, cfg UplinkConfig, src *rng.Source, deliver UplinkDeliver) *Uplink {
	if deliver == nil {
		panic("mac: nil uplink deliver callback")
	}
	if cfg.SlotDur <= 0 || cfg.InitialWindow < 1 || cfg.MaxBackoffExp < 0 ||
		cfg.LossProb < 0 || cfg.LossProb >= 1 {
		panic(fmt.Sprintf("mac: invalid uplink config %+v", cfg))
	}
	return &Uplink{
		cfg:     cfg,
		sch:     sch,
		deliver: deliver,
		src:     src,
		slots:   make(map[int64][]*attempt),
	}
}

// Stats exposes the accumulated measurements.
func (u *Uplink) Stats() *UplinkStats { return &u.stats }

// SetAttemptHook installs fn to observe every slot transmission (including
// retries) by source client; energy accounting uses it.
func (u *Uplink) SetAttemptHook(fn func(src int)) { u.onAttempt = fn }

// Send submits a request from client src. The first transmission lands
// uniformly within the initial window starting at the next slot; collisions
// are retried with binary exponential backoff until delivered.
func (u *Uplink) Send(src int, meta any) {
	u.stats.Sent.Inc()
	a := &attempt{src: src, meta: meta, sent: u.sch.Now()}
	jitter := int64(u.src.Uint64n(uint64(u.cfg.InitialWindow)))
	u.scheduleIn(a, u.nextSlot()+jitter)
}

// nextSlot reports the first slot index whose start is strictly after now.
func (u *Uplink) nextSlot() int64 {
	return int64(u.sch.Now())/int64(u.cfg.SlotDur) + 1
}

func (u *Uplink) scheduleIn(a *attempt, slot int64) {
	first := len(u.slots[slot]) == 0
	u.slots[slot] = append(u.slots[slot], a)
	if first {
		end := des.Time((slot + 1) * int64(u.cfg.SlotDur))
		u.sch.At(end, "mac.ulslot", func() { u.resolve(slot) })
	}
}

func (u *Uplink) resolve(slot int64) {
	attempts := u.slots[slot]
	delete(u.slots, slot)
	now := u.sch.Now()
	u.stats.Attempts.Add(uint64(len(attempts)))
	if u.onAttempt != nil {
		for _, a := range attempts {
			u.onAttempt(a.src)
		}
	}
	switch {
	case len(attempts) == 0:
		return
	case len(attempts) == 1 && !u.src.Bool(u.cfg.LossProb):
		a := attempts[0]
		u.stats.Delivered.Inc()
		u.stats.Delay.Observe(now.Sub(a.sent).Seconds())
		u.deliver(a.src, a.meta, now)
		return
	case len(attempts) == 1:
		u.stats.Losses.Inc()
	default:
		u.stats.Collisions.Inc()
	}
	for _, a := range attempts {
		a.tries++
		exp := a.tries
		if exp > u.cfg.MaxBackoffExp {
			exp = u.cfg.MaxBackoffExp
		}
		window := int64(u.cfg.InitialWindow) << uint(exp)
		u.scheduleIn(a, slot+1+int64(u.src.Uint64n(uint64(window))))
	}
}
