// Package mac models the shared downlink of the base station and the
// contention-based uplink used by clients to send cache-miss requests.
//
// The downlink is a single serial broadcast medium: one frame is on the air
// at a time, its airtime determined by the modulation-and-coding scheme that
// link adaptation picked for it. Invalidation reports, query responses, and
// background traffic all compete for this medium — that contention is the
// "downlink traffic" of the paper's title and is what the traffic-aware
// invalidation algorithm exploits.
package mac

import (
	"repro/internal/des"
)

// FrameKind classifies downlink frames; it doubles as the strict priority
// class (lower value = higher priority).
type FrameKind int

// Priority order: invalidation reports preempt queued responses, which
// preempt background traffic. An in-flight frame is never aborted.
const (
	KindIR FrameKind = iota // invalidation report (broadcast)
	KindResponse
	KindBackground
	numKinds
)

// String names the frame kind.
func (k FrameKind) String() string {
	switch k {
	case KindIR:
		return "ir"
	case KindResponse:
		return "response"
	case KindBackground:
		return "background"
	default:
		return "unknown"
	}
}

// Broadcast is the Dest value for frames addressed to every client.
const Broadcast = -1

// AutoMCS asks the downlink to run link adaptation for the frame's
// destination when its transmission starts.
const AutoMCS = -1

// Frame is one downlink transmission unit.
type Frame struct {
	Kind FrameKind
	Dest int // client index, or Broadcast
	Bits int // payload bits, excluding the PHY/MAC header
	MCS  int // explicit MCS index, or AutoMCS

	// RobustBits is control information prepended to the payload and
	// transmitted at the most robust MCS regardless of the payload's —
	// the same construction as an 802.11 PLCP header. The traffic-aware
	// schemes put their piggybacked invalidation digests here so that
	// clients other than the frame's destination can decode them.
	RobustBits int

	// Meta carries the protocol payload (an ir.Report, a response
	// descriptor, …); the MAC never inspects it.
	Meta any

	Enqueued des.Time // set by Enqueue
	retries  int
}

// Retries reports how many ARQ retransmissions the frame has undergone.
func (f *Frame) Retries() int { return f.retries }

// fifo is a slice-backed FIFO with an advancing head and amortized
// compaction, avoiding per-element allocation on the scheduler's hot path.
type fifo struct {
	buf  []*Frame
	head int
}

func (q *fifo) len() int { return len(q.buf) - q.head }

func (q *fifo) push(f *Frame) { q.buf = append(q.buf, f) }

func (q *fifo) pop() *Frame {
	f := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return f
}

func (q *fifo) peek() *Frame { return q.buf[q.head] }
