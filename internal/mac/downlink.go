package mac

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/radio"
)

// DownlinkConfig sets the fixed parameters of the downlink medium.
type DownlinkConfig struct {
	HeaderBits int // PHY+MAC header prepended to every frame, sent robust
	RetryLimit int // ARQ attempts for unicast frames beyond the first

	// StrictPriority gives query responses absolute priority over background
	// traffic. The default (false) is a shared FIFO data plane — responses
	// and background traffic queue together, which is the regime where
	// "downlink traffic" genuinely delays data delivery and the
	// traffic-aware invalidation schemes have something to react to.
	// Invalidation reports are a control channel and always go first.
	StrictPriority bool

	// BgQueueLimitBits bounds the queued background backlog (drop-tail), so
	// an overloaded background source cannot grow the queue without bound.
	// Zero means a default of 4,000,000 bits (~several seconds of air).
	BgQueueLimitBits int
}

// DefaultDownlinkConfig matches a 2000s cellular downlink: 16-byte header,
// three retransmissions, shared data plane.
func DefaultDownlinkConfig() DownlinkConfig {
	return DownlinkConfig{HeaderBits: 128, RetryLimit: 3, BgQueueLimitBits: 4_000_000}
}

// DeliverFunc is invoked when a frame leaves the medium. For unicast frames
// ok reports whether the destination decoded it (after ARQ); for broadcast
// frames ok is always true and each receiver must roll its own decode via
// the channel. mcs is the scheme the final transmission's payload used.
type DeliverFunc func(f *Frame, ok bool, mcs int, now des.Time)

// DownlinkStats aggregates medium-level measurements.
type DownlinkStats struct {
	Busy       [numKinds]float64 // seconds of airtime per class
	Frames     [numKinds]uint64
	Bits       [numKinds]uint64 // payload bits delivered (attempts count once)
	Retries    metrics.Counter
	Drops      metrics.Counter // unicast frames abandoned after RetryLimit
	BgRejected metrics.Counter // background frames refused at admission
	QueueDelay metrics.Series  // enqueue → transmission start, seconds
	QueueLen   metrics.TimeWeighted
}

// Utilization reports the fraction of [0, now] the medium was busy.
func (s *DownlinkStats) Utilization(now des.Time) float64 {
	total := s.Busy[KindIR] + s.Busy[KindResponse] + s.Busy[KindBackground]
	if now <= 0 {
		return 0
	}
	return total / now.Seconds()
}

// Downlink serializes frames onto the shared medium. Invalidation reports
// form a strict-priority control queue; data frames (responses and
// background) share a FIFO unless StrictPriority splits them.
type Downlink struct {
	cfg     DownlinkConfig
	sch     *des.Scheduler
	channel *radio.Channel
	deliver DeliverFunc

	queues     [numKinds]fifo // KindBackground queue unused in shared mode
	queuedBits [numKinds]int  // payload bits waiting, by frame class
	bgQueued   int            // queued background bits (admission control)
	sending    bool
	inFlight   *Frame

	// In-flight transmission state, read by txDoneFn. A single serial
	// medium has at most one frame on the air, so the completion callback
	// is one pre-bound closure reading these fields instead of a fresh
	// closure per transmission.
	inFlightMCS int
	inFlightAir des.Duration
	txDoneFn    func()

	free []*Frame // recycled frames; see AcquireFrame

	stats DownlinkStats
	tr    obs.Tracer
	cell  int // owning cell id, stamped on trace events
}

// NewDownlink builds the downlink. deliver must be non-nil.
func NewDownlink(sch *des.Scheduler, ch *radio.Channel, cfg DownlinkConfig, deliver DeliverFunc) *Downlink {
	if deliver == nil {
		panic("mac: nil deliver callback")
	}
	if cfg.HeaderBits < 0 || cfg.RetryLimit < 0 || cfg.BgQueueLimitBits < 0 {
		panic(fmt.Sprintf("mac: invalid downlink config %+v", cfg))
	}
	if cfg.BgQueueLimitBits == 0 {
		cfg.BgQueueLimitBits = 4_000_000
	}
	d := &Downlink{cfg: cfg, sch: sch, channel: ch, deliver: deliver}
	d.txDoneFn = func() {
		f := d.inFlight
		d.stats.Busy[f.Kind] += d.inFlightAir.Seconds()
		d.txDone(f, d.inFlightMCS)
	}
	return d
}

// AcquireFrame returns a zeroed frame, recycled from the completed-frame
// free list when one is available. Frames obtained here are reclaimed by the
// downlink once delivered (or rejected at admission), so callers must not
// retain them past Enqueue.
func (d *Downlink) AcquireFrame() *Frame {
	if n := len(d.free); n > 0 {
		f := d.free[n-1]
		d.free = d.free[:n-1]
		*f = Frame{}
		return f
	}
	return &Frame{}
}

// release returns a finished frame to the free list. The contents are
// cleared on the next AcquireFrame, not here, so diagnostics (and tests)
// may still inspect a frame right after its delivery callback.
func (d *Downlink) release(f *Frame) {
	d.free = append(d.free, f)
}

// Stats exposes the accumulated measurements.
func (d *Downlink) Stats() *DownlinkStats { return &d.stats }

// SetTracer attaches an event tracer; nil disables tracing. Every completed
// transmission attempt emits one FrameTxEvent (retries included).
func (d *Downlink) SetTracer(tr obs.Tracer) { d.tr = tr }

// SetCell records which cell this downlink belongs to, so multi-cell trace
// events are attributable. Purely observational; defaults to 0.
func (d *Downlink) SetCell(id int) { d.cell = id }

// QueuedFrames reports the number of frames waiting (not in flight).
func (d *Downlink) QueuedFrames() int {
	n := 0
	for k := range d.queues {
		n += d.queues[k].len()
	}
	return n
}

// QueuedBits reports the payload bits waiting that belong to the given
// class, wherever they are queued. O(1): per-class counters are maintained
// at every enqueue, dequeue and retry-requeue.
func (d *Downlink) QueuedBits(kind FrameKind) int {
	return d.queuedBits[kind]
}

// queuedBitsScan recomputes QueuedBits by walking every queue — the
// brute-force reference the counter tests compare against.
func (d *Downlink) queuedBitsScan(kind FrameKind) int {
	bits := 0
	for k := range d.queues {
		q := &d.queues[k]
		for i := q.head; i < len(q.buf); i++ {
			if q.buf[i].Kind == kind {
				bits += q.buf[i].Bits
			}
		}
	}
	return bits
}

// Busy reports whether a frame is currently on the air.
func (d *Downlink) Busy() bool { return d.sending }

// queueFor maps a frame to its queue index under the configured discipline.
func (d *Downlink) queueFor(f *Frame) *fifo {
	if f.Kind == KindIR {
		return &d.queues[KindIR]
	}
	if d.cfg.StrictPriority {
		return &d.queues[f.Kind]
	}
	return &d.queues[KindResponse] // shared data plane
}

// Enqueue admits a frame to the medium. It reports false when a background
// frame is refused by admission control; the frame must then be discarded by
// the caller. Accepted frames must not be reused until delivered.
func (d *Downlink) Enqueue(f *Frame) bool {
	if f.Kind < 0 || f.Kind >= numKinds {
		panic(fmt.Sprintf("mac: bad frame kind %d", f.Kind))
	}
	if f.Bits <= 0 || f.RobustBits < 0 {
		panic(fmt.Sprintf("mac: frame with %d/%d bits", f.Bits, f.RobustBits))
	}
	if f.Dest == Broadcast && f.MCS == AutoMCS {
		panic("mac: broadcast frames need an explicit MCS")
	}
	if f.Kind == KindBackground {
		if d.bgQueued+f.Bits > d.cfg.BgQueueLimitBits {
			d.stats.BgRejected.Inc()
			d.release(f)
			return false
		}
		d.bgQueued += f.Bits
	}
	f.Enqueued = d.sch.Now()
	d.queueFor(f).push(f)
	d.queuedBits[f.Kind] += f.Bits
	d.stats.QueueLen.Add(d.sch.Now().Seconds(), 1)
	d.pump()
	return true
}

// pump starts the next pending frame if the medium is idle: control first,
// then data in discipline order.
func (d *Downlink) pump() {
	if d.sending {
		return
	}
	var f *Frame
	for k := range d.queues {
		if d.queues[k].len() > 0 {
			f = d.queues[k].pop()
			break
		}
	}
	if f == nil {
		return
	}
	if f.Kind == KindBackground && f.retries == 0 {
		d.bgQueued -= f.Bits
	}
	d.queuedBits[f.Kind] -= f.Bits
	d.stats.QueueLen.Add(d.sch.Now().Seconds(), -1)
	d.transmit(f)
}

// airtime reports the seconds one transmission of f takes: header and
// robust-control portion at the base rate, payload at the selected MCS.
func (d *Downlink) airtime(f *Frame, mcs int) des.Duration {
	amc := d.channel.AMC()
	sec := amc.Airtime(0, d.cfg.HeaderBits+f.RobustBits) + amc.Airtime(mcs, f.Bits)
	a := des.FromSeconds(sec)
	if a <= 0 {
		a = des.Microsecond
	}
	return a
}

func (d *Downlink) transmit(f *Frame) {
	now := d.sch.Now()
	if f.retries == 0 {
		d.stats.QueueDelay.Observe(now.Sub(f.Enqueued).Seconds())
	}
	mcs := f.MCS
	if mcs == AutoMCS {
		mcs, _ = d.channel.SelectMCS(f.Dest, now)
	}
	air := d.airtime(f, mcs)
	d.sending = true
	d.inFlight = f
	d.inFlightMCS = mcs
	d.inFlightAir = air
	// Busy time is credited at completion (txDone) so that utilization over
	// any observation window never exceeds the window.
	d.sch.After(air, "mac.txdone", d.txDoneFn)
}

func (d *Downlink) txDone(f *Frame, mcs int) {
	now := d.sch.Now()
	d.sending = false
	d.inFlight = nil

	ok := true
	if f.Dest != Broadcast {
		ok = d.channel.Decode(f.Dest, now, mcs, f.Bits)
	}
	if d.tr != nil {
		d.tr.FrameTx(obs.FrameTxEvent{At: now, Cell: d.cell, Kind: f.Kind.String(), Dest: f.Dest,
			MCS: mcs, Bits: f.Bits, Airtime: d.airtime(f, mcs), OK: ok, Retries: f.retries})
	}
	if f.Dest != Broadcast && !ok && f.retries < d.cfg.RetryLimit {
		f.retries++
		d.stats.Retries.Inc()
		// Retries rejoin the tail of their queue so a stuck link cannot
		// starve the medium.
		d.queueFor(f).push(f)
		d.queuedBits[f.Kind] += f.Bits
		d.stats.QueueLen.Add(now.Seconds(), 1)
		d.pump()
		return
	}
	d.stats.Frames[f.Kind]++
	d.stats.Bits[f.Kind] += uint64(f.Bits)
	if !ok {
		d.stats.Drops.Inc()
	}
	// Deliver before pumping so protocol reactions (e.g. enqueueing a
	// follow-up IR) can still win this scheduling round by priority.
	d.deliver(f, ok, mcs, now)
	d.release(f) // deliver consumed the frame; callers never retain it
	d.pump()
}
