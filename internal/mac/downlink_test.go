package mac

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/radio"
	"repro/internal/rng"
)

// delivered captures delivery callbacks for assertions.
type delivered struct {
	frames []*Frame
	oks    []bool
	mcss   []int
	times  []des.Time
}

func (d *delivered) fn(f *Frame, ok bool, mcs int, now des.Time) {
	d.frames = append(d.frames, f)
	d.oks = append(d.oks, ok)
	d.mcss = append(d.mcss, mcs)
	d.times = append(d.times, now)
}

// strongChannel returns a channel where every client decodes everything.
func strongChannel(t testing.TB, n int) *radio.Channel {
	t.Helper()
	p := radio.DefaultParams()
	p.MeanSNRdB = 60
	p.ShadowSigmaDB = 0
	ch, err := radio.New(p, radio.DefaultAMC(), n, rng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// weakChannel returns a channel where unicast decoding frequently fails.
func weakChannel(t testing.TB, n int) *radio.Channel {
	t.Helper()
	p := radio.DefaultParams()
	p.MeanSNRdB = -10
	p.ShadowSigmaDB = 0
	ch, err := radio.New(p, radio.DefaultAMC(), n, rng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestDownlinkSingleFrame(t *testing.T) {
	sch := des.NewScheduler()
	ch := strongChannel(t, 2)
	var got delivered
	dl := NewDownlink(sch, ch, DefaultDownlinkConfig(), got.fn)

	f := &Frame{Kind: KindResponse, Dest: 0, Bits: 8192, MCS: AutoMCS}
	dl.Enqueue(f)
	if !dl.Busy() {
		t.Fatal("medium idle after enqueue")
	}
	sch.RunAll()
	if len(got.frames) != 1 || got.frames[0] != f || !got.oks[0] {
		t.Fatalf("delivery wrong: %+v", got)
	}
	// At 60 dB the fastest MCS carries the payload; the 128-bit header goes
	// at the base rate.
	amc := ch.AMC()
	wantAir := 128/amc.MinRate() + 8192/amc.MaxRate()
	if gotAir := got.times[0].Seconds(); math.Abs(gotAir-wantAir) > 2e-6 {
		t.Fatalf("airtime %v, want %v", gotAir, wantAir)
	}
	if got.mcss[0] != len(amc.Table)-1 {
		t.Fatalf("MCS %d, want fastest", got.mcss[0])
	}
	if dl.Stats().Frames[KindResponse] != 1 {
		t.Fatal("stats frame count wrong")
	}
}

func TestDownlinkSharedDataPlaneOrder(t *testing.T) {
	sch := des.NewScheduler()
	ch := strongChannel(t, 2)
	var got delivered
	dl := NewDownlink(sch, ch, DefaultDownlinkConfig(), got.fn)

	// Fill the medium, then enqueue data frames in arrival order and an IR
	// last: the IR jumps ahead (control queue), but responses do NOT jump
	// ahead of earlier background frames — data shares one FIFO.
	dl.Enqueue(&Frame{Kind: KindBackground, Dest: 0, Bits: 4096, MCS: AutoMCS, Meta: "bg1"})
	dl.Enqueue(&Frame{Kind: KindBackground, Dest: 1, Bits: 4096, MCS: AutoMCS, Meta: "bg2"})
	dl.Enqueue(&Frame{Kind: KindResponse, Dest: 0, Bits: 4096, MCS: AutoMCS, Meta: "resp"})
	dl.Enqueue(&Frame{Kind: KindIR, Dest: Broadcast, Bits: 4096, MCS: 0, Meta: "ir"})
	sch.RunAll()

	var order []string
	for _, f := range got.frames {
		order = append(order, f.Meta.(string))
	}
	want := []string{"bg1", "ir", "bg2", "resp"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestDownlinkStrictPriorityOrder(t *testing.T) {
	sch := des.NewScheduler()
	ch := strongChannel(t, 2)
	var got delivered
	cfg := DefaultDownlinkConfig()
	cfg.StrictPriority = true
	dl := NewDownlink(sch, ch, cfg, got.fn)

	dl.Enqueue(&Frame{Kind: KindBackground, Dest: 0, Bits: 4096, MCS: AutoMCS, Meta: "bg1"})
	dl.Enqueue(&Frame{Kind: KindBackground, Dest: 1, Bits: 4096, MCS: AutoMCS, Meta: "bg2"})
	dl.Enqueue(&Frame{Kind: KindResponse, Dest: 0, Bits: 4096, MCS: AutoMCS, Meta: "resp"})
	dl.Enqueue(&Frame{Kind: KindIR, Dest: Broadcast, Bits: 4096, MCS: 0, Meta: "ir"})
	sch.RunAll()

	var order []string
	for _, f := range got.frames {
		order = append(order, f.Meta.(string))
	}
	want := []string{"bg1", "ir", "resp", "bg2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestDownlinkBackgroundAdmission(t *testing.T) {
	sch := des.NewScheduler()
	ch := strongChannel(t, 2)
	var got delivered
	cfg := DefaultDownlinkConfig()
	cfg.BgQueueLimitBits = 10_000
	dl := NewDownlink(sch, ch, cfg, got.fn)
	// First frame goes on air immediately (not queued); then the queue
	// accepts up to the bound and rejects beyond it.
	if !dl.Enqueue(&Frame{Kind: KindBackground, Dest: 0, Bits: 6000, MCS: 0}) {
		t.Fatal("in-flight frame rejected")
	}
	if !dl.Enqueue(&Frame{Kind: KindBackground, Dest: 0, Bits: 6000, MCS: 0}) {
		t.Fatal("first queued frame rejected")
	}
	if dl.Enqueue(&Frame{Kind: KindBackground, Dest: 0, Bits: 6000, MCS: 0}) {
		t.Fatal("overflow frame accepted")
	}
	if dl.Stats().BgRejected.Value() != 1 {
		t.Fatalf("rejected count %d", dl.Stats().BgRejected.Value())
	}
	// Responses are never subject to background admission.
	if !dl.Enqueue(&Frame{Kind: KindResponse, Dest: 0, Bits: 60_000, MCS: 0}) {
		t.Fatal("response rejected")
	}
	sch.RunAll()
	if len(got.frames) != 3 {
		t.Fatalf("delivered %d", len(got.frames))
	}
}

func TestDownlinkFIFOWithinClass(t *testing.T) {
	sch := des.NewScheduler()
	ch := strongChannel(t, 4)
	var got delivered
	dl := NewDownlink(sch, ch, DefaultDownlinkConfig(), got.fn)
	for i := 0; i < 4; i++ {
		dl.Enqueue(&Frame{Kind: KindResponse, Dest: i, Bits: 1024, MCS: AutoMCS, Meta: i})
	}
	sch.RunAll()
	for i, f := range got.frames {
		if f.Meta.(int) != i {
			t.Fatalf("FIFO violated: %v", got.frames)
		}
	}
}

func TestDownlinkARQRetriesThenDrops(t *testing.T) {
	sch := des.NewScheduler()
	ch := weakChannel(t, 1)
	var got delivered
	cfg := DefaultDownlinkConfig()
	cfg.RetryLimit = 3
	dl := NewDownlink(sch, ch, cfg, got.fn)
	dl.Enqueue(&Frame{Kind: KindResponse, Dest: 0, Bits: 65536, MCS: 0})
	sch.RunAll()
	if len(got.frames) != 1 {
		t.Fatalf("deliveries %d", len(got.frames))
	}
	if got.oks[0] {
		t.Fatal("64KB frame at -10 dB should not decode")
	}
	if got.frames[0].Retries() != 3 {
		t.Fatalf("retries %d, want 3", got.frames[0].Retries())
	}
	if dl.Stats().Drops.Value() != 1 || dl.Stats().Retries.Value() != 3 {
		t.Fatalf("stats %+v", dl.Stats())
	}
}

func TestDownlinkBroadcastNeverRetries(t *testing.T) {
	sch := des.NewScheduler()
	ch := weakChannel(t, 4)
	var got delivered
	dl := NewDownlink(sch, ch, DefaultDownlinkConfig(), got.fn)
	dl.Enqueue(&Frame{Kind: KindIR, Dest: Broadcast, Bits: 4096, MCS: 0})
	sch.RunAll()
	if len(got.frames) != 1 || !got.oks[0] {
		t.Fatal("broadcast must deliver exactly once with ok=true")
	}
	if got.frames[0].Retries() != 0 {
		t.Fatal("broadcast must not use ARQ")
	}
}

func TestDownlinkUtilizationAndQueueStats(t *testing.T) {
	sch := des.NewScheduler()
	ch := strongChannel(t, 2)
	var got delivered
	dl := NewDownlink(sch, ch, DefaultDownlinkConfig(), got.fn)
	dl.Enqueue(&Frame{Kind: KindResponse, Dest: 0, Bits: 100_000, MCS: 0})
	dl.Enqueue(&Frame{Kind: KindResponse, Dest: 1, Bits: 100_000, MCS: 0})
	if dl.QueuedFrames() != 1 {
		t.Fatalf("queued %d (one should be in flight)", dl.QueuedFrames())
	}
	if dl.QueuedBits(KindResponse) != 100_000 {
		t.Fatalf("queued bits %d", dl.QueuedBits(KindResponse))
	}
	end := sch.RunAll()
	util := dl.Stats().Utilization(end)
	if math.Abs(util-1.0) > 1e-6 {
		t.Fatalf("back-to-back frames should saturate: util=%v", util)
	}
	if dl.Stats().QueueDelay.Count() != 2 {
		t.Fatalf("queue delay observations %d", dl.Stats().QueueDelay.Count())
	}
	// First frame saw zero queueing, second waited one airtime.
	if dl.Stats().QueueDelay.Min() != 0 || dl.Stats().QueueDelay.Max() <= 0 {
		t.Fatalf("queue delay range [%v, %v]", dl.Stats().QueueDelay.Min(), dl.Stats().QueueDelay.Max())
	}
}

func TestDownlinkEnqueuePanics(t *testing.T) {
	sch := des.NewScheduler()
	ch := strongChannel(t, 1)
	dl := NewDownlink(sch, ch, DefaultDownlinkConfig(), func(*Frame, bool, int, des.Time) {})
	cases := []*Frame{
		{Kind: FrameKind(9), Dest: 0, Bits: 10, MCS: 0},
		{Kind: KindResponse, Dest: 0, Bits: 0, MCS: 0},
		{Kind: KindIR, Dest: Broadcast, Bits: 10, MCS: AutoMCS},
	}
	for i, f := range cases {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: Enqueue accepted invalid frame", i)
				}
			}()
			dl.Enqueue(f)
		}()
	}
}

func TestFrameKindString(t *testing.T) {
	if KindIR.String() != "ir" || KindResponse.String() != "response" ||
		KindBackground.String() != "background" || FrameKind(7).String() != "unknown" {
		t.Fatal("FrameKind.String broken")
	}
}

func TestFIFOCompaction(t *testing.T) {
	var q fifo
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			q.push(&Frame{Bits: i + 1})
		}
		for i := 0; i < 100; i++ {
			f := q.pop()
			if f.Bits != i+1 {
				t.Fatalf("round %d: popped %d, want %d", round, f.Bits, i+1)
			}
		}
		if q.len() != 0 {
			t.Fatalf("round %d: len %d", round, q.len())
		}
	}
	if len(q.buf) > 200 {
		t.Fatalf("fifo never compacted: cap grew to %d", len(q.buf))
	}
}
