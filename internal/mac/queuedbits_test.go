package mac

import (
	"testing"

	"repro/internal/des"
)

// TestQueuedBitsCountersMatchScan cross-checks the O(1) per-class byte
// counters against a brute-force queue walk at every step of a run that
// exercises all the mutation paths: enqueue, dequeue, ARQ retry-requeue
// (weak channel), retry-exhaustion drops, and background admission.
func TestQueuedBitsCountersMatchScan(t *testing.T) {
	sch := des.NewScheduler()
	ch := weakChannel(t, 3)
	cfg := DefaultDownlinkConfig()
	cfg.RetryLimit = 2
	cfg.BgQueueLimitBits = 300_000
	var dl *Downlink
	check := func() {
		t.Helper()
		for k := FrameKind(0); k < numKinds; k++ {
			if got, want := dl.QueuedBits(k), dl.queuedBitsScan(k); got != want {
				t.Fatalf("QueuedBits(%v) = %d, scan says %d", k, got, want)
			}
		}
	}
	dl = NewDownlink(sch, ch, cfg, func(f *Frame, ok bool, mcs int, now des.Time) {
		check()
	})

	enqueue := func(kind FrameKind, dest, bits int) {
		f := dl.AcquireFrame()
		f.Kind, f.Dest, f.Bits, f.MCS = kind, dest, bits, 0
		dl.Enqueue(f)
		check()
	}
	// Initial burst: a broadcast report, unicast responses that will retry
	// and eventually drop at -10 dB, and background filler.
	enqueue(KindIR, Broadcast, 4096)
	for dest := 0; dest < 3; dest++ {
		enqueue(KindResponse, dest, 65536)
	}
	enqueue(KindBackground, 1, 120_000)
	enqueue(KindBackground, 2, 120_000)
	enqueue(KindBackground, 0, 120_000) // over the admission limit: rejected
	// A second wave lands mid-run, while retries are interleaving.
	sch.After(30*des.Millisecond, "wave2", func() {
		enqueue(KindResponse, 1, 32768)
		enqueue(KindIR, Broadcast, 2048)
	})

	for sch.Step() {
		check()
	}
	for k := FrameKind(0); k < numKinds; k++ {
		if dl.QueuedBits(k) != 0 {
			t.Fatalf("drained medium still reports %d bits for %v", dl.QueuedBits(k), k)
		}
	}
	if dl.Stats().Retries.Value() == 0 || dl.Stats().Drops.Value() == 0 {
		t.Fatalf("test did not exercise ARQ: retries=%d drops=%d",
			dl.Stats().Retries.Value(), dl.Stats().Drops.Value())
	}
	if dl.Stats().BgRejected.Value() == 0 {
		t.Fatal("test did not exercise background rejection")
	}
}
