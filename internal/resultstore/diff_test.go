package resultstore

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// miniRuns hand-builds the two checked-in artifacts. They model a same-config
// before/after pair where run B's "ts" point drifted: the mean delay moved
// beyond the combined CIs and the delay tail stretched by ~30%, while the
// "at" point stayed put. Run B also carries an extra point to exercise the
// coverage section. Everything is fixed constants so the golden report is
// stable across machines and toolchains.
func miniRuns() (*Run, *Run) {
	sketch := func(scale float64) []byte {
		s := metrics.NewDelaySketch()
		for i := 0; i < 200; i++ {
			// Deterministic spread over ~[1 ms, 200 ms), then a heavy tail.
			s.Observe(scale * 0.001 * float64(1+i))
		}
		for i := 0; i < 5; i++ {
			s.Observe(scale * float64(2+i))
		}
		return s.AppendBinary(nil)
	}
	met := func(mean, ci float64) Metric {
		return Metric{Mean: core.JSONFloat(mean), CI95: core.JSONFloat(ci), N: 3}
	}
	point := func(algo string, delay, ci, scale float64) Point {
		return Point{
			Exp: "F1", X: 0.5, Label: "u0.5", Algo: algo, Reps: 3,
			Metrics: map[string]Metric{
				"delay": met(delay, ci),
				"p99":   met(delay*4, ci*4),
			},
			Sketch: sketch(scale),
		}
	}
	base := &Run{
		Schema:      Schema,
		CreatedUnix: 1700000000,
		ConfigHash:  "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
		GoVersion:   "go1.22.0",
		GitCommit:   "0123456789abcdef",
		Seed:        1,
		Reps:        3,
		Experiments: []string{"F1"},
	}
	a := *base
	a.Points = []Point{point("at", 0.080, 0.004, 1.0), point("ts", 0.050, 0.002, 1.0)}
	b := *base
	b.CreatedUnix = 1700003600
	b.GitCommit = "fedcba98765432"
	b.Points = []Point{
		point("at", 0.081, 0.004, 1.0), // within noise, same tail
		point("ts", 0.061, 0.002, 1.3), // drifted: mean and tail both move
		{Exp: "F1", X: 1, Label: "u1.0", Algo: "ts", Reps: 3,
			Metrics: map[string]Metric{"delay": met(0.055, 0.002)}}, // only in B
	}
	return &a, &b
}

// TestDiffGolden pins the full -diff pipeline against checked-in artifacts:
// the rendered markdown must match testdata/diff_golden.md byte for byte.
// Regenerate all three files with UPDATE_GOLDEN=1 go test ./internal/resultstore/
// after an intentional format change, and review the diff.
func TestDiffGolden(t *testing.T) {
	dirA, dirB := filepath.Join("testdata", "runA"), filepath.Join("testdata", "runB")
	golden := filepath.Join("testdata", "diff_golden.md")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		a, b := miniRuns()
		if _, err := Save(dirA, a); err != nil {
			t.Fatal(err)
		}
		if _, err := Save(dirB, b); err != nil {
			t.Fatal(err)
		}
		d := Compare(a, b)
		if err := os.WriteFile(golden, []byte(d.Markdown()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("regenerated", dirA, dirB, golden)
	}

	runA, err := Load(dirA)
	if err != nil {
		t.Fatal(err)
	}
	runB, err := Load(dirB)
	if err != nil {
		t.Fatal(err)
	}
	// The checked-in artifacts must be bit-equal to what miniRuns builds, so
	// the testdata cannot silently drift from the generator.
	wantA, wantB := miniRuns()
	for _, pair := range []struct {
		name      string
		got, want *Run
	}{{"runA", runA, wantA}, {"runB", runB, wantB}} {
		gotJSON, _ := Save(t.TempDir(), pair.got)
		wantJSON, _ := Save(t.TempDir(), pair.want)
		g, _ := os.ReadFile(gotJSON)
		w, _ := os.ReadFile(wantJSON)
		if string(g) != string(w) {
			t.Fatalf("%s: checked-in artifact diverged from the generator; rerun with UPDATE_GOLDEN=1", pair.name)
		}
	}

	d := Compare(runA, runB)
	if !d.SameConfig {
		t.Fatal("mini runs share a config hash but SameConfig is false")
	}
	// The drifted ts point must be flagged; the at point must not.
	var tsHit, atHit bool
	for _, r := range d.Rows {
		if r.Significant {
			if r.Algo == "ts" {
				tsHit = true
			}
			if r.Algo == "at" {
				atHit = true
			}
		}
	}
	if !tsHit {
		t.Error("drifted ts metrics not flagged as significant")
	}
	if atHit {
		t.Error("within-noise at metrics flagged as significant")
	}
	if len(d.OnlyB) != 1 || d.OnlyB[0] != "F1/u1.0/ts" {
		t.Errorf("coverage OnlyB = %v, want the B-only point", d.OnlyB)
	}
	// The ts tail stretched by 30%: every quantile shift clears the 5% floor.
	for _, q := range d.Quants {
		if q.Algo == "ts" && (math.IsNaN(q.Shift) || q.Shift < 0.2) {
			t.Errorf("ts %s shift %v, want ~+30%%", q.Q, q.Shift)
		}
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Markdown(); got != string(want) {
		t.Errorf("diff markdown diverged from golden; rerun with UPDATE_GOLDEN=1 and review\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
