package resultstore

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// DiffRow compares one metric of one point across two runs. The delta is
// significant when it exceeds the combined 95% confidence half-widths
// (|Δ| > sqrt(ciA² + ciB²)): under the usual independence assumption the
// intervals then fail to overlap, so the runs genuinely disagree.
type DiffRow struct {
	Exp, Label, Algo, Metric string
	MeanA, MeanB             float64 // NaN when that side measured nothing
	Delta                    float64 // MeanB - MeanA
	RelDelta                 float64 // Delta / |MeanA|; NaN when MeanA is 0 or NaN
	Threshold                float64 // sqrt(ciA² + ciB²)
	Significant              bool
}

// QuantRow compares the population delay quantiles of one point, computed
// from the two runs' merged sketches (exact to sketch resolution, no
// across-replication variance involved).
type QuantRow struct {
	Exp, Label, Algo string
	Q                string  // "p50", "p90", "p99", "p999"
	A, B             float64 // seconds; NaN when a side has no sketch
	Shift            float64 // B/A - 1; NaN when A is 0 or either side is NaN
}

// Diff is the comparison of two run artifacts.
type Diff struct {
	A, B       *Run
	SameConfig bool // config hashes match: deltas are run-to-run noise or code drift
	Rows       []DiffRow
	Quants     []QuantRow
	OnlyA      []string // point keys present only in run A
	OnlyB      []string // point keys present only in run B
}

// Significant counts rows whose delta clears the confidence threshold.
func (d *Diff) Significant() int {
	n := 0
	for _, r := range d.Rows {
		if r.Significant {
			n++
		}
	}
	return n
}

// Compare diffs two loaded runs point-by-point and metric-by-metric.
func Compare(a, b *Run) *Diff {
	d := &Diff{A: a, B: b, SameConfig: a.ConfigHash == b.ConfigHash && a.ConfigHash != ""}
	byKeyA := make(map[string]*Point, len(a.Points))
	for i := range a.Points {
		byKeyA[a.Points[i].Key()] = &a.Points[i]
	}
	seen := make(map[string]bool, len(b.Points))
	for i := range b.Points {
		pb := &b.Points[i]
		key := pb.Key()
		seen[key] = true
		pa := byKeyA[key]
		if pa == nil {
			d.OnlyB = append(d.OnlyB, key)
			continue
		}
		names := make([]string, 0, len(pa.Metrics))
		for name := range pa.Metrics {
			if _, ok := pb.Metrics[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			ma, mb := pa.Metrics[name], pb.Metrics[name]
			row := DiffRow{
				Exp: pa.Exp, Label: pa.Label, Algo: pa.Algo, Metric: name,
				MeanA: float64(ma.Mean), MeanB: float64(mb.Mean),
				Delta:    float64(mb.Mean) - float64(ma.Mean),
				RelDelta: math.NaN(),
			}
			row.Threshold = math.Sqrt(float64(ma.CI95)*float64(ma.CI95) + float64(mb.CI95)*float64(mb.CI95))
			if row.MeanA != 0 && !math.IsNaN(row.MeanA) && !math.IsNaN(row.MeanB) {
				row.RelDelta = row.Delta / math.Abs(row.MeanA)
			}
			// A delta is only judged when both sides measured something and
			// both carry a finite threshold; a NaN mean or CI means "nothing
			// to compare", not "changed".
			if !math.IsNaN(row.MeanA) && !math.IsNaN(row.MeanB) && !math.IsNaN(row.Threshold) {
				row.Significant = math.Abs(row.Delta) > row.Threshold
			}
			d.Rows = append(d.Rows, row)
		}
		d.Quants = append(d.Quants, quantRows(pa, pb)...)
	}
	for i := range a.Points {
		if key := a.Points[i].Key(); !seen[key] {
			d.OnlyA = append(d.OnlyA, key)
		}
	}
	sort.Strings(d.OnlyA)
	sort.Strings(d.OnlyB)
	return d
}

// quantRows builds the quantile shift rows of one matched point from the
// sketches when both sides carry one (preferred: population-exact), falling
// back to the stored quantile snapshots.
func quantRows(pa, pb *Point) []QuantRow {
	qa, qb := pointQuantiles(pa), pointQuantiles(pb)
	if qa == nil && qb == nil {
		return nil
	}
	get := func(m map[string]float64, q string) float64 {
		if m == nil {
			return math.NaN()
		}
		return m[q]
	}
	var out []QuantRow
	for _, q := range []string{"p50", "p90", "p99", "p999"} {
		row := QuantRow{
			Exp: pa.Exp, Label: pa.Label, Algo: pa.Algo, Q: q,
			A: get(qa, q), B: get(qb, q), Shift: math.NaN(),
		}
		if row.A != 0 && !math.IsNaN(row.A) && !math.IsNaN(row.B) {
			row.Shift = row.B/row.A - 1
		}
		out = append(out, row)
	}
	return out
}

// pointQuantiles extracts a point's population delay quantiles, preferring
// the serialized sketch over the stored snapshot. Nil when neither exists.
func pointQuantiles(p *Point) map[string]float64 {
	if s, err := metrics.DecodeSketch(p.Sketch); err == nil && s != nil {
		return map[string]float64{
			"p50": s.Quantile(0.50), "p90": s.Quantile(0.90),
			"p99": s.Quantile(0.99), "p999": s.Quantile(0.999),
		}
	}
	if q := p.DelayQuantiles; q != nil {
		return map[string]float64{
			"p50": float64(q.P50), "p90": float64(q.P90),
			"p99": float64(q.P99), "p999": float64(q.P999),
		}
	}
	return nil
}

// Markdown renders the diff as a report: a header comparing the two runs'
// provenance, the significant deltas (or an all-clear), and the quantile
// shift table for points whose tails moved.
func (d *Diff) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Run diff\n\n")
	fmt.Fprintf(&b, "| | run A | run B |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| config hash | %s | %s |\n", short(d.A.ConfigHash), short(d.B.ConfigHash))
	fmt.Fprintf(&b, "| seed / reps | %d / %d | %d / %d |\n", d.A.Seed, d.A.Reps, d.B.Seed, d.B.Reps)
	fmt.Fprintf(&b, "| go / commit | %s %s | %s %s |\n",
		d.A.GoVersion, short(d.A.GitCommit), d.B.GoVersion, short(d.B.GitCommit))
	fmt.Fprintf(&b, "| experiments | %s | %s |\n\n",
		strings.Join(d.A.Experiments, " "), strings.Join(d.B.Experiments, " "))
	if d.SameConfig {
		b.WriteString("Config hashes match: any significant delta below is run-to-run noise or code drift.\n\n")
	} else {
		b.WriteString("Config hashes differ: this is a before-vs-after comparison.\n\n")
	}

	if n := d.Significant(); n == 0 {
		fmt.Fprintf(&b, "## Deltas\n\nNo significant deltas across %d compared metrics.\n\n", len(d.Rows))
	} else {
		fmt.Fprintf(&b, "## Deltas\n\n%d of %d compared metrics differ beyond combined 95%% CIs.\n\n", n, len(d.Rows))
		b.WriteString("| exp | point | algo | metric | A | B | Δ | rel | threshold |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
		for _, r := range d.Rows {
			if !r.Significant {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %.4g | %.4g | %+.4g | %s | %.4g |\n",
				r.Exp, r.Label, r.Algo, r.Metric, r.MeanA, r.MeanB, r.Delta, pct(r.RelDelta), r.Threshold)
		}
		b.WriteString("\n")
	}

	// Quantile shifts: only rows whose tail moved by more than the sketch's
	// own resolution (5% per bucket) are worth showing.
	const shiftFloor = 0.05
	var moved []QuantRow
	for _, q := range d.Quants {
		if !math.IsNaN(q.Shift) && math.Abs(q.Shift) > shiftFloor {
			moved = append(moved, q)
		}
	}
	if len(d.Quants) > 0 {
		b.WriteString("## Delay quantile shifts\n\n")
		if len(moved) == 0 {
			fmt.Fprintf(&b, "All population delay quantiles within sketch resolution (±%.0f%%) across %d points.\n\n",
				shiftFloor*100, len(d.Quants)/4)
		} else {
			b.WriteString("| exp | point | algo | q | A (s) | B (s) | shift |\n")
			b.WriteString("|---|---|---|---|---|---|---|\n")
			for _, q := range moved {
				fmt.Fprintf(&b, "| %s | %s | %s | %s | %.4g | %.4g | %s |\n",
					q.Exp, q.Label, q.Algo, q.Q, q.A, q.B, pct(q.Shift))
			}
			b.WriteString("\n")
		}
	}

	if len(d.OnlyA) > 0 || len(d.OnlyB) > 0 {
		b.WriteString("## Coverage\n\n")
		if len(d.OnlyA) > 0 {
			fmt.Fprintf(&b, "Only in run A: %s\n\n", strings.Join(d.OnlyA, ", "))
		}
		if len(d.OnlyB) > 0 {
			fmt.Fprintf(&b, "Only in run B: %s\n\n", strings.Join(d.OnlyB, ", "))
		}
	}
	return b.String()
}

func short(s string) string {
	if len(s) > 12 {
		return s[:12]
	}
	if s == "" {
		return "-"
	}
	return s
}

func pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", v*100)
}
