package resultstore

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiment"
	"repro/internal/metrics"
)

// miniSweep runs a tiny two-algorithm sweep and returns its results with
// the base config used.
func miniSweep(t *testing.T) ([]*experiment.Result, core.Config) {
	t.Helper()
	base := experiment.DefaultBase()
	base.NumClients = 15
	base.Horizon = 240 * des.Second
	base.Warmup = 60 * des.Second
	exp := &experiment.Experiment{
		ID: "X1", Title: "store round-trip", XLabel: "x",
		Algorithms: []string{"ts", "hybrid"},
		Points: []experiment.Point{
			{X: 1, Label: "one", Mutate: func(*core.Config) {}},
		},
		Metrics: []experiment.Metric{experiment.MetricDelay, experiment.MetricP99},
	}
	results, err := experiment.RunAll(context.Background(), []*experiment.Experiment{exp},
		experiment.Options{Base: base, Reps: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return results, base
}

// TestStoreRoundTripAndSelfDiff is the acceptance contract: an artifact
// written from a sweep survives a strict-JSON round-trip bit-for-bit, and
// diffing a run against itself reports zero significant deltas and zero
// quantile shifts.
func TestStoreRoundTripAndSelfDiff(t *testing.T) {
	results, base := miniSweep(t)
	run, err := New(results, base, 2, 1700000000, "deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if run.Schema != Schema || run.ConfigHash == "" || run.GoVersion == "" {
		t.Fatalf("artifact metadata incomplete: %+v", run)
	}
	if len(run.Points) != 2 {
		t.Fatalf("got %d points, want 2 (one per algorithm)", len(run.Points))
	}
	for _, p := range run.Points {
		for _, name := range []string{"delay", "p99", "p50", "p999"} {
			if _, ok := p.Metrics[name]; !ok {
				t.Fatalf("point %s missing metric %q", p.Key(), name)
			}
		}
		if len(p.Sketch) == 0 || p.DelayQuantiles == nil {
			t.Fatalf("point %s missing population sketch", p.Key())
		}
		if s, err := metrics.DecodeSketch(p.Sketch); err != nil || s.Count() == 0 {
			t.Fatalf("point %s sketch does not decode: %v", p.Key(), err)
		}
	}

	dir := t.TempDir()
	path, err := Save(dir, run)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Loading via the directory works too.
	loaded2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded2.ConfigHash != loaded.ConfigHash || len(loaded2.Points) != len(loaded.Points) {
		t.Fatal("directory load differs from file load")
	}

	d := Compare(run, loaded)
	if !d.SameConfig {
		t.Fatal("round-tripped run lost config identity")
	}
	if n := d.Significant(); n != 0 {
		t.Fatalf("self-diff reports %d significant deltas", n)
	}
	for _, q := range d.Quants {
		if !math.IsNaN(q.Shift) && q.Shift != 0 {
			t.Fatalf("self-diff quantile shift %+v", q)
		}
	}
	if len(d.OnlyA)+len(d.OnlyB) != 0 {
		t.Fatalf("self-diff coverage mismatch: %v / %v", d.OnlyA, d.OnlyB)
	}
	if !strings.Contains(d.Markdown(), "No significant deltas") {
		t.Fatal("self-diff report does not state the all-clear")
	}
}

// TestStoreDeterministicAcrossWorkers pins that the artifact body (points,
// metrics, sketches) is byte-identical however the sweep was scheduled —
// the store inherits the harness's worker-count invariance.
func TestStoreDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 3} {
		base := experiment.DefaultBase()
		base.NumClients = 15
		base.Horizon = 240 * des.Second
		base.Warmup = 60 * des.Second
		exp := &experiment.Experiment{
			ID: "X1", Title: "det", XLabel: "x",
			Algorithms: []string{"ts", "hybrid"},
			Points:     []experiment.Point{{X: 1, Label: "one", Mutate: func(*core.Config) {}}},
			Metrics:    []experiment.Metric{experiment.MetricDelay},
		}
		results, err := experiment.RunAll(context.Background(), []*experiment.Experiment{exp},
			experiment.Options{Base: base, Reps: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		run, err := New(results, base, 3, 1700000000, "deadbeef")
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		path, err := Save(dir, run)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: artifact bytes differ", workers)
		}
	}
}

// TestLoadStrict pins the failure modes: unknown fields, wrong schema, and
// missing files must all error loudly.
func TestLoadStrict(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := Load(write("unknown.json", `{"schema":"wdc-run-v1","typo_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Load(write("schema.json", `{"schema":"wdc-run-v999"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
