// Package resultstore persists sweep outcomes as versioned, strict-JSON run
// artifacts — one file per sweep invocation carrying the config hash, build
// metadata, and every (experiment, point, algorithm) cell's metric summaries
// plus its merged delay sketch — and diffs two artifacts into algo-vs-algo
// or before-vs-after delta tables with confidence intervals and quantile
// shifts. It is the storage substrate `wdcsweep -store` writes and
// `wdcreport -diff` reads.
package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/experiment"
)

// Schema identifies the artifact format; bump on any breaking change so old
// readers fail loudly instead of misinterpreting fields.
const Schema = "wdc-run-v1"

// FileName is the artifact name inside a store directory.
const FileName = "run.json"

// Metric is one summarized measurement of a point: across-replication mean
// and 95% confidence half-width over N replications. NaN encodes as null.
type Metric struct {
	Mean core.JSONFloat `json:"mean"`
	CI95 core.JSONFloat `json:"ci95"`
	N    int            `json:"n"`
}

// Quantiles are the population delay quantiles of a point, taken from the
// merged (all-replication) sketch. NaN — no answers — encodes as null.
type Quantiles struct {
	P50  core.JSONFloat `json:"p50"`
	P90  core.JSONFloat `json:"p90"`
	P99  core.JSONFloat `json:"p99"`
	P999 core.JSONFloat `json:"p999"`
}

// Point is one (experiment, x-point, algorithm) cell of a run.
type Point struct {
	Exp     string            `json:"exp"`
	X       float64           `json:"x"`
	Label   string            `json:"label"`
	Algo    string            `json:"algo"`
	Reps    int               `json:"reps"`
	Metrics map[string]Metric `json:"metrics"`
	// DelayQuantiles and Sketch describe the merged population delay
	// distribution; both absent when the cell was restored from a pre-sketch
	// checkpoint.
	DelayQuantiles *Quantiles `json:"delay_quantiles,omitempty"`
	Sketch         []byte     `json:"sketch,omitempty"` // metrics.Sketch binary, base64 in JSON
}

// Key identifies a point across runs.
func (p *Point) Key() string { return p.Exp + "/" + p.Label + "/" + p.Algo }

// Run is one complete artifact.
type Run struct {
	Schema      string   `json:"schema"`
	CreatedUnix int64    `json:"created_unix"`
	ConfigHash  string   `json:"config_hash"` // sha256 of the base config JSON
	GoVersion   string   `json:"go_version"`
	GitCommit   string   `json:"git_commit,omitempty"`
	Seed        uint64   `json:"seed"`
	Reps        int      `json:"reps"`
	Experiments []string `json:"experiments"`
	Points      []Point  `json:"points"`
}

// ConfigHash fingerprints a base configuration by hashing its canonical
// JSON form (process-local hooks are excluded by construction).
func ConfigHash(cfg core.Config) (string, error) {
	data, err := cfg.ToJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// New assembles an artifact from completed sweep results. createdUnix is the
// caller's wall clock; gitCommit may be empty when the build is not from a
// checkout.
func New(results []*experiment.Result, base core.Config, reps int, createdUnix int64, gitCommit string) (*Run, error) {
	hash, err := ConfigHash(base)
	if err != nil {
		return nil, err
	}
	run := &Run{
		Schema:      Schema,
		CreatedUnix: createdUnix,
		ConfigHash:  hash,
		GoVersion:   runtime.Version(),
		GitCommit:   gitCommit,
		Seed:        base.Seed,
		Reps:        reps,
	}
	for _, res := range results {
		run.Experiments = append(run.Experiments, res.Exp.ID)
		for i := range res.Cells {
			c := &res.Cells[i]
			if c.Agg == nil {
				continue // errored cell; the sweep already reported it
			}
			p := Point{
				Exp:     res.Exp.ID,
				X:       c.Point.X,
				Label:   c.Point.Label,
				Algo:    c.Algo,
				Reps:    c.Agg.Reps,
				Metrics: make(map[string]Metric, len(res.Exp.Metrics)+4),
			}
			for _, m := range res.Exp.Metrics {
				mean, ci := m.Get(c.Agg)
				p.Metrics[m.Name] = Metric{Mean: core.JSONFloat(mean), CI95: core.JSONFloat(ci), N: c.Agg.Reps}
			}
			// Tail quantiles ride along on every point regardless of the
			// experiment's chosen columns, so diffs can always compare tails.
			for name, s := range map[string]*struct{ mean, ci float64 }{
				"p50":  {c.Agg.P50Delay.Mean(), c.Agg.P50Delay.CI95()},
				"p90":  {c.Agg.P90Delay.Mean(), c.Agg.P90Delay.CI95()},
				"p99":  {c.Agg.P99Delay.Mean(), c.Agg.P99Delay.CI95()},
				"p999": {c.Agg.P999Delay.Mean(), c.Agg.P999Delay.CI95()},
			} {
				if _, dup := p.Metrics[name]; !dup {
					p.Metrics[name] = Metric{Mean: core.JSONFloat(s.mean), CI95: core.JSONFloat(s.ci), N: c.Agg.Reps}
				}
			}
			if sk := c.Agg.DelaySketch; sk != nil {
				p.Sketch = sk.AppendBinary(nil)
				p.DelayQuantiles = &Quantiles{
					P50:  core.JSONFloat(sk.Quantile(0.50)),
					P90:  core.JSONFloat(sk.Quantile(0.90)),
					P99:  core.JSONFloat(sk.Quantile(0.99)),
					P999: core.JSONFloat(sk.Quantile(0.999)),
				}
			}
			run.Points = append(run.Points, p)
		}
	}
	sort.Slice(run.Points, func(i, j int) bool { return run.Points[i].Key() < run.Points[j].Key() })
	return run, nil
}

// Save writes the artifact as indented JSON into dir (created if missing)
// and returns the file path.
func Save(dir string, run *Run) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(run); err != nil {
		return "", fmt.Errorf("resultstore: encoding run: %w", err)
	}
	path := filepath.Join(dir, FileName)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads an artifact from a run.json file or a directory containing one.
// Decoding is strict: unknown fields and schema mismatches are errors, so a
// typoed or future-format artifact cannot be half-read silently.
func Load(path string) (*Run, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, FileName)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var run Run
	if err := dec.Decode(&run); err != nil {
		return nil, fmt.Errorf("resultstore: %s: %w", path, err)
	}
	if run.Schema != Schema {
		return nil, fmt.Errorf("resultstore: %s: schema %q, want %q", path, run.Schema, Schema)
	}
	return &run, nil
}
