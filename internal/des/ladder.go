package des

// This file implements the scheduler's pending-event structure: a
// calendar/ladder queue tuned for the kernel's near-monotone event-time
// distribution, with the hand-rolled binary heap kept for the two ends of
// the time scale. The simulator schedules almost everything within a short
// look-ahead of the clock (slot ends, frame completions, query gaps), so an
// O(1) bucket insert plus a small per-slot heap replaces an O(log n) sift
// over the full pending set for the overwhelming majority of events; the
// rare long timers (retention-scale tickers, disconnection cycles) overflow
// into a far-future heap and migrate into the ring as the clock approaches.
//
// Three tiers, by time distance from the cursor:
//
//	bot     a min-heap over the current slot's events — the only tier that
//	        pays comparison sifts, sized by one slot's population, not the
//	        whole queue
//	buckets a 256-slot ring of unsorted arrays, one per width-aligned time
//	        slot — O(1) insert and cancel
//	far     a min-heap for events at or beyond the ring horizon
//
// The structure preserves the scheduler's exact total order: events pop in
// ascending (time, seq), with ties broken by scheduling order.

// Event location tags (Event.loc).
const (
	locNone   int8 = iota // not queued
	locBucket             // in ring bucket Event.slot, position Event.index
	locBottom             // in the current-slot heap at heap index Event.index
	locFar                // in the far-future heap at heap index Event.index
)

const (
	ladderBuckets   = 256  // ring size; power of two
	ladderMaxDrain  = 4096 // slot occupancy that forces a width halving
	ladderMinShift  = 0    // 1 µs buckets at the finest
	ladderMaxShift  = 40   // ~13 days per bucket at the coarsest
	ladderInitShift = 10   // initial bucket width: 1.024 ms

	// ladderWidenAfter far-tier pushes between rebases double the bucket
	// width: sustained far traffic means the ring horizon is narrower than
	// the workload's scheduling look-ahead, and every far transit pays two
	// full heap sifts the ring exists to avoid.
	ladderWidenAfter = 4096
)

// ladder is the three-tier pending-event structure. The zero value is ready
// to use (the ring is anchored lazily on the first push).
type ladder struct {
	initialized bool
	shift       uint  // log2 of bucket width in µs
	curSlot     int64 // slot index of the current bucket; bucket = slot & (ladderBuckets-1)
	buckets     [ladderBuckets][]*Event
	nNear       int // events in ring buckets (excluding bot)

	// bot holds the current slot's events. bottomOpen marks that the slot has
	// been migrated here, so pushes with at < botLimit (the slot's exclusive
	// end time) must join the heap instead — the bucket that drained it is
	// behind the ring cursor and would otherwise replay out of order.
	bot        eventHeap
	bottomOpen bool
	botLimit   Time

	far eventHeap // events at or beyond the ring horizon

	count int

	// width-adaptation bookkeeping: pops and elapsed time since the last
	// rebase decide the next bucket width on rebase; farSince counts far
	// pushes and drives widening when the near side never empties.
	popped     int64
	rebaseAt   Time
	haveRebase bool
	farSince   int
}

func (l *ladder) len() int { return l.count }

func (l *ladder) slotOf(t Time) int64 { return int64(t) >> l.shift }

// push inserts e into the tier matching its time.
func (l *ladder) push(e *Event) {
	if !l.initialized {
		l.initialized = true
		l.shift = ladderInitShift
		l.curSlot = l.slotOf(e.at)
	}
	l.count++
	if l.bottomOpen && e.at < l.botLimit {
		e.loc = locBottom
		l.bot.push(e)
		return
	}
	d := l.slotOf(e.at) - l.curSlot
	if d < 0 {
		// The ring start tracks the earliest *materialized* slot, which can
		// run ahead of the clock (peek advances to the next pending event;
		// rebase jumps to the far tier's minimum). A push from outside a
		// running event — test setup, scheduling between horizon runs — may
		// target a time before that region; pull the ring back to it.
		// Cannot happen while the bottom heap is open: its slot range ends
		// at botLimit ≤ every ring slot's start, and earlier pushes took the
		// bottom branch above.
		l.respread(l.shift, l.slotOf(e.at))
		d = 0
	}
	if d < ladderBuckets {
		l.pushBucket(e)
		return
	}
	e.loc = locFar
	l.far.push(e)
	if l.farSince++; l.farSince >= ladderWidenAfter && l.shift < ladderMaxShift {
		l.widen()
	}
}

// widen doubles the bucket width and pulls far events now inside the ring
// horizon back into buckets. The new, coarser start slot is the old one
// rounded down, which never passes a ring event (they all sit at or after
// the old slot's start).
func (l *ladder) widen() {
	l.farSince = 0
	l.respread(l.shift+1, l.curSlot>>1)
	horizon := l.curSlot + ladderBuckets
	for l.far.len() > 0 && l.slotOf(l.far.ev[0].at) < horizon {
		l.pushBucket(l.far.pop())
	}
}

func (l *ladder) pushBucket(e *Event) {
	b := int(l.slotOf(e.at) & (ladderBuckets - 1))
	e.loc = locBucket
	e.slot = int32(b)
	e.index = len(l.buckets[b])
	l.buckets[b] = append(l.buckets[b], e)
	l.nNear++
}

// remove extracts a queued event from whichever tier holds it.
func (l *ladder) remove(e *Event) {
	switch e.loc {
	case locBucket:
		b := l.buckets[e.slot]
		last := len(b) - 1
		if e.index != last {
			b[e.index] = b[last]
			b[e.index].index = e.index
		}
		b[last] = nil
		l.buckets[e.slot] = b[:last]
		l.nNear--
	case locBottom:
		l.bot.remove(e.index)
	case locFar:
		l.far.remove(e.index)
	default:
		return
	}
	e.loc = locNone
	e.index = -1
	l.count--
}

// peek returns the earliest pending event without removing it, advancing the
// ring and refilling from the far tier as needed. Returns nil when empty.
//
// Invariant: the far tier's minimum never precedes the current slot's start,
// so bounding the bucket scan by the far-min slot — and merging far events
// into the ring before draining that slot — keeps the tiers in order.
func (l *ladder) peek() *Event {
	for {
		if l.bot.len() > 0 {
			return l.bot.ev[0]
		}
		l.bottomOpen = false
		if l.nNear > 0 {
			// Advance to the next non-empty bucket, but never past the far
			// tier's minimum slot: a far event may have entered the ring's
			// range as the cursor moved and must drain in time order.
			if l.far.len() > 0 {
				fs := l.slotOf(l.far.ev[0].at)
				for l.curSlot < fs && len(l.buckets[l.curSlot&(ladderBuckets-1)]) == 0 {
					l.curSlot++
				}
				if l.curSlot == fs {
					horizon := l.curSlot + ladderBuckets
					for l.far.len() > 0 && l.slotOf(l.far.ev[0].at) < horizon {
						l.pushBucket(l.far.pop())
					}
				}
			} else {
				// Every ring event lives in [curSlot, curSlot+ladderBuckets),
				// so at most one lap finds the next occupied bucket.
				for len(l.buckets[l.curSlot&(ladderBuckets-1)]) == 0 {
					l.curSlot++
				}
			}
			l.drainCurrent()
			continue
		}
		if l.far.len() == 0 {
			return nil
		}
		l.rebase()
	}
}

// popHead removes and returns the event peek would return. Callers must have
// established non-emptiness via peek.
func (l *ladder) popHead() *Event {
	e := l.bot.pop()
	e.loc = locNone
	l.count--
	l.popped++
	return e
}

// drainCurrent moves the current bucket into the bottom heap.
func (l *ladder) drainCurrent() {
	b := l.curSlot & (ladderBuckets - 1)
	bucket := l.buckets[b]
	l.buckets[b] = bucket[:0]
	l.nNear -= len(bucket)
	for _, e := range bucket {
		e.loc = locBottom
		l.bot.push(e)
	}
	clear(bucket)
	l.bottomOpen = true
	l.botLimit = Time((l.curSlot + 1) << l.shift)
	if l.bot.len() > ladderMaxDrain && l.shift > ladderMinShift {
		// A slot this crowded means the buckets are too coarse: halve the
		// width and re-spread the remaining ring so future slots stay small.
		// The bottom heap keeps the old slot's full range (botLimit is
		// unchanged); the ring restarts just past it in the new, finer units.
		shift := l.shift - 1
		l.respread(shift, int64(l.botLimit)>>shift)
	}
}

// rebase re-anchors the ring at the far tier's minimum, adapting the bucket
// width to the observed event density, and migrates every far event that now
// falls inside the ring horizon.
func (l *ladder) rebase() {
	minAt := l.far.ev[0].at
	if l.haveRebase && l.popped > 0 {
		elapsed := int64(minAt - l.rebaseAt)
		if elapsed > 0 {
			// Aim for a handful of events per bucket: width ≈ 4× mean gap.
			target := 4 * elapsed / l.popped
			shift := uint(ladderMinShift)
			for shift < ladderMaxShift && int64(1)<<(shift+1) <= target {
				shift++
			}
			l.shift = shift
		}
	}
	l.haveRebase = true
	l.rebaseAt = minAt
	l.popped = 0
	l.farSince = 0
	l.curSlot = l.slotOf(minAt)
	horizon := l.curSlot + ladderBuckets
	for l.far.len() > 0 && l.slotOf(l.far.ev[0].at) < horizon {
		l.pushBucket(l.far.pop())
	}
}

// respread rebuilds the ring with a new bucket width and/or start slot
// (given in the new width's units), leaving the bottom heap intact. Ring
// events whose slot falls outside the rebuilt horizon overflow into the far
// tier. Callers guarantee no ring event precedes the new start.
func (l *ladder) respread(shift uint, slot int64) {
	var pending []*Event
	for b := range l.buckets {
		for _, e := range l.buckets[b] {
			pending = append(pending, e)
		}
		clear(l.buckets[b])
		l.buckets[b] = l.buckets[b][:0]
	}
	l.nNear = 0
	l.shift = shift
	l.curSlot = slot
	horizon := l.curSlot + ladderBuckets
	for _, e := range pending {
		if l.slotOf(e.at) < horizon {
			l.pushBucket(e)
		} else {
			e.loc = locFar
			l.far.push(e)
		}
	}
}

// reset empties the structure, appending every queued event to drop (for the
// scheduler's free list) and keeping the allocated buffers for reuse.
func (l *ladder) reset(drop []*Event) []*Event {
	for b := range l.buckets {
		for _, e := range l.buckets[b] {
			e.loc = locNone
			e.index = -1
			drop = append(drop, e)
		}
		clear(l.buckets[b])
		l.buckets[b] = l.buckets[b][:0]
	}
	for _, h := range []*eventHeap{&l.bot, &l.far} {
		for _, e := range h.ev {
			e.loc = locNone
			e.index = -1
			drop = append(drop, e)
		}
		clear(h.ev)
		h.ev = h.ev[:0]
	}
	l.bottomOpen = false
	l.botLimit = 0
	l.nNear = 0
	l.count = 0
	l.initialized = false
	l.shift = 0
	l.curSlot = 0
	l.popped = 0
	l.rebaseAt = 0
	l.haveRebase = false
	l.farSince = 0
	return drop
}
