package des

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(3 * Second)
	if t1 != Time(3_000_000) {
		t.Fatalf("Add: got %d", t1)
	}
	if d := t1.Sub(t0); d != 3*Second {
		t.Fatalf("Sub: got %v", d)
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatal("Before/After inconsistent")
	}
	if Never.Add(Hour) != Never {
		t.Fatal("Never must saturate")
	}
	if got := Time(1<<63 - 10).Add(Duration(100)); got != Never {
		t.Fatalf("overflow must saturate to Never, got %d", got)
	}
}

func TestFromSeconds(t *testing.T) {
	cases := []struct {
		s    float64
		want Duration
	}{
		{1.0, Second},
		{0.001, Millisecond},
		{0.5, 500 * Millisecond},
		{-1.5, -1500 * Millisecond},
		{1e-6, Microsecond},
	}
	for _, c := range cases {
		if got := FromSeconds(c.s); got != c.want {
			t.Errorf("FromSeconds(%v) = %v, want %v", c.s, got, c.want)
		}
	}
	if got := FromMillis(2.5); got != 2500*Microsecond {
		t.Errorf("FromMillis(2.5) = %v", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{5 * Second, "5s"},
		{1500 * Millisecond, "1.500s"},
		{2 * Millisecond, "2.000ms"},
		{7, "7µs"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(5*Second.asTime(), "c", func() { order = append(order, 3) })
	s.At(1*Second.asTime(), "a", func() { order = append(order, 1) })
	s.At(3*Second.asTime(), "b", func() { order = append(order, 2) })
	s.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if s.Now() != 5*Second.asTime() {
		t.Fatalf("clock at %v", s.Now())
	}
}

// asTime converts a Duration offset from zero into an absolute Time; test
// helper only.
func (d Duration) asTime() Time { return Time(0).Add(d) }

func TestSchedulerFIFOAtEqualTimes(t *testing.T) {
	s := NewScheduler()
	var order []int
	at := Time(42)
	for i := 0; i < 100; i++ {
		i := i
		s.At(at, "e", func() { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, order[:i+1])
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.After(Second, "x", func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double cancel is a no-op
	s.Cancel(nil)
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() {
		t.Fatal("cancelled event still pending")
	}
}

func TestSchedulerCancelFromCallback(t *testing.T) {
	s := NewScheduler()
	var fired []string
	var later *Event
	s.After(Second, "first", func() {
		fired = append(fired, "first")
		s.Cancel(later)
	})
	later = s.After(2*Second, "later", func() { fired = append(fired, "later") })
	s.RunAll()
	if len(fired) != 1 || fired[0] != "first" {
		t.Fatalf("got %v", fired)
	}
}

func TestSchedulerReschedule(t *testing.T) {
	s := NewScheduler()
	var at Time
	e := s.After(Second, "x", func() { at = s.Now() })
	e = s.Reschedule(e, Time(0).Add(5*Second))
	s.RunAll()
	if at != Time(0).Add(5*Second) {
		t.Fatalf("fired at %v", at)
	}
	if e.Pending() {
		t.Fatal("still pending after firing")
	}
}

func TestSchedulerRunHorizon(t *testing.T) {
	s := NewScheduler()
	ran := 0
	s.After(Second, "in", func() { ran++ })
	s.After(10*Second, "out", func() { ran++ })
	end := s.Run(Time(0).Add(5 * Second))
	if ran != 1 {
		t.Fatalf("ran %d events", ran)
	}
	if end != Time(0).Add(5*Second) {
		t.Fatalf("clock must land on horizon, got %v", end)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d", s.Pending())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	ran := 0
	s.After(Second, "a", func() { ran++; s.Stop() })
	s.After(2*Second, "b", func() { ran++ })
	s.RunAll()
	if ran != 1 {
		t.Fatalf("Stop did not halt the loop, ran=%d", ran)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.After(Second, "a", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		s.At(Time(0), "past", func() {})
	})
	s.RunAll()
}

func TestSchedulerNegativeDelayPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("negative delay must panic")
		}
	}()
	s.After(-Second, "neg", func() {})
}

func TestSchedulerRecursiveScheduling(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			s.After(Millisecond, "tick", tick)
		}
	}
	s.After(Millisecond, "tick", tick)
	s.RunAll()
	if n != 1000 {
		t.Fatalf("n=%d", n)
	}
	if s.Now() != Time(0).Add(1000*Millisecond) {
		t.Fatalf("clock %v", s.Now())
	}
}

func TestAdvanceHook(t *testing.T) {
	s := NewScheduler()
	var hooks []Time
	s.SetAdvanceHook(func(now Time) { hooks = append(hooks, now) })
	at := Time(0).Add(Second)
	s.At(at, "a", func() {})
	s.At(at, "b", func() {}) // same time: hook must fire once
	s.Run(Time(0).Add(2 * Second))
	if len(hooks) != 2 {
		t.Fatalf("hook fired %d times: %v", len(hooks), hooks)
	}
	if hooks[0] != at || hooks[1] != Time(0).Add(2*Second) {
		t.Fatalf("hook times %v", hooks)
	}
}

// TestHeapProperty drives the scheduler with random insertions and
// cancellations and checks the dequeue order is globally sorted.
func TestHeapProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		var times []Time
		var handles []*Event
		n := 200 + r.Intn(300)
		for i := 0; i < n; i++ {
			at := Time(r.Int63n(1_000_000))
			e := s.At(at, "p", func() { times = append(times, s.Now()) })
			handles = append(handles, e)
		}
		// Cancel a random quarter.
		for i := range handles {
			if r.Intn(4) == 0 {
				s.Cancel(handles[i])
			}
		}
		s.RunAll()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStepAndCounters(t *testing.T) {
	s := NewScheduler()
	s.After(Second, "a", func() {})
	s.After(2*Second, "b", func() {})
	if s.Pending() != 2 {
		t.Fatalf("pending %d", s.Pending())
	}
	if !s.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if s.Executed() != 1 {
		t.Fatalf("executed %d", s.Executed())
	}
	if !s.Step() || s.Step() {
		t.Fatal("Step count wrong")
	}
}

func TestTickerBasic(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := NewTicker(s, Second, "tick", func(now Time) { ticks = append(ticks, now) })
	tk.Start()
	tk.Start() // idempotent
	s.Run(Time(0).Add(5*Second + 500*Millisecond))
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks: %v", len(ticks), ticks)
	}
	for i, at := range ticks {
		want := Time(0).Add(Duration(i+1) * Second)
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tk *Ticker
	tk = NewTicker(s, Second, "tick", func(Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	tk.Start()
	s.Run(Time(0).Add(10 * Second))
	if n != 3 {
		t.Fatalf("ticks after Stop: n=%d", n)
	}
}

func TestTickerSetPeriod(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := NewTicker(s, 4*Second, "tick", func(now Time) { ticks = append(ticks, now) })
	tk.Start()
	// Shrink the period before the first tick: it should move earlier.
	s.After(Second, "shrink", func() { tk.SetPeriod(2 * Second) })
	s.Run(Time(0).Add(7 * Second))
	// First tick was due at 4s, re-armed to 0+2=2s; then 4s, 6s.
	want := []Time{Time(0).Add(2 * Second), Time(0).Add(4 * Second), Time(0).Add(6 * Second)}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
	if tk.Period() != 2*Second {
		t.Fatalf("period %v", tk.Period())
	}
}

func TestTickerGrowPeriodNotBeforeNow(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := NewTicker(s, Second, "tick", func(now Time) { ticks = append(ticks, now) })
	tk.Start()
	// At t=2.5s the next tick is due at 3s (armed at 2s). Growing period to
	// 10s moves it to 2s+10s=12s.
	s.At(Time(0).Add(2500*Millisecond), "grow", func() { tk.SetPeriod(10 * Second) })
	s.Run(Time(0).Add(13 * Second))
	want := []Time{
		Time(0).Add(1 * Second), Time(0).Add(2 * Second), Time(0).Add(12 * Second),
	}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d = %v, want %v", i, ticks[i], want[i])
		}
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	var next func()
	i := 0
	next = func() {
		i++
		if i < b.N {
			s.After(Duration(1+i%97), "bench", next)
		}
	}
	b.ReportAllocs()
	s.After(1, "bench", next)
	s.RunAll()
}

func TestEventName(t *testing.T) {
	s := NewScheduler()
	e := s.After(Second, "labelled", func() {})
	if e.Name() != "labelled" {
		t.Fatalf("name %q", e.Name())
	}
	if e.Time() != Time(0).Add(Second) {
		t.Fatalf("time %v", e.Time())
	}
}

func TestDurationStd(t *testing.T) {
	if (1500 * Millisecond).Std().Seconds() != 1.5 {
		t.Fatal("Std conversion wrong")
	}
}

func TestTimeString(t *testing.T) {
	if Never.String() != "never" {
		t.Fatalf("Never prints %q", Never.String())
	}
	if Time(0).Add(1500*Millisecond).String() != "t=1.500000s" {
		t.Fatalf("Time prints %q", Time(0).Add(1500*Millisecond).String())
	}
}

func TestRescheduleNil(t *testing.T) {
	s := NewScheduler()
	if s.Reschedule(nil, Time(5)) != nil {
		t.Fatal("reschedule nil must be nil")
	}
}

func TestNewTickerPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("zero period accepted")
		}
	}()
	NewTicker(s, 0, "bad", func(Time) {})
}

func TestTickerSetPeriodPanicsAndNoops(t *testing.T) {
	s := NewScheduler()
	tk := NewTicker(s, Second, "t", func(Time) {})
	tk.SetPeriod(Second)     // same period: no-op
	tk.SetPeriod(2 * Second) // inactive: stored only
	if tk.Period() != 2*Second {
		t.Fatal("period not stored while inactive")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive period accepted")
		}
	}()
	tk.SetPeriod(0)
}

func TestTickerStopOrdering(t *testing.T) {
	// A Stop scheduled at the same timestamp as a pending tick runs AFTER
	// it (FIFO: the tick was armed first), so exactly one tick fires; a
	// Stop scheduled before the tick suppresses it entirely.
	s := NewScheduler()
	n := 0
	tk := NewTicker(s, Second, "t", func(Time) { n++ })
	tk.Start()
	s.At(Time(0).Add(Second), "stop", func() { tk.Stop() })
	s.Run(Time(0).Add(3 * Second))
	if n != 1 {
		t.Fatalf("same-timestamp stop: %d ticks", n)
	}

	s2 := NewScheduler()
	m := 0
	tk2 := NewTicker(s2, Second, "t", func(Time) { m++ })
	tk2.Start()
	s2.At(Time(0).Add(500*Millisecond), "stop", func() { tk2.Stop() })
	s2.Run(Time(0).Add(3 * Second))
	if m != 0 {
		t.Fatalf("early stop: %d ticks", m)
	}
}

func TestSchedulerInterrupt(t *testing.T) {
	s := NewScheduler()
	var tick func()
	tick = func() { s.After(Second, "tick", tick) }
	s.After(0, "tick", tick)

	stop := errTest("interrupted")
	s.SetInterrupt(10, func() error {
		if s.Executed() >= 50 {
			return stop
		}
		return nil
	})
	s.Run(Never)
	if s.Err() != stop {
		t.Fatalf("Err = %v", s.Err())
	}
	if got := s.Executed(); got != 50 {
		t.Fatalf("executed %d events, want exactly 50 (check every 10)", got)
	}

	// Clearing the interrupt lets a later Run proceed normally and reset
	// the recorded error.
	s.SetInterrupt(0, nil)
	until := s.Now().Add(5 * Second)
	s.Run(until)
	if s.Err() != nil {
		t.Fatalf("Err after clean run = %v", s.Err())
	}
	if s.Now() != until {
		t.Fatalf("clock %v, want %v", s.Now(), until)
	}
}

// errTest is a trivial comparable error for interrupt identity checks.
type errTest string

func (e errTest) Error() string { return string(e) }
