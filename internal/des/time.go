// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is deliberately single-threaded: a discrete-event simulation
// advances a logical clock through a totally ordered event list, and any
// intra-run parallelism would either break determinism or require a
// conservative/optimistic PDES protocol that this workload does not need.
// Parallelism in this repository lives one level up, across independent
// replications (see internal/experiment).
//
// Time is represented as an integer number of microseconds to keep event
// ordering exact; floating-point clocks accumulate rounding drift that makes
// replications irreproducible across platforms.
package des

import (
	"fmt"
	"time"
)

// Time is an absolute simulation time in microseconds since the start of the
// run. The zero Time is the beginning of the simulation.
type Time int64

// Duration is a span of simulation time in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Never is a sentinel Time larger than any reachable simulation time. It is
// used to express "no deadline".
const Never Time = 1<<63 - 1

// FromSeconds converts a floating-point number of seconds to a Duration,
// rounding to the nearest microsecond.
func FromSeconds(s float64) Duration {
	if s < 0 {
		return Duration(s*1e6 - 0.5)
	}
	return Duration(s*1e6 + 0.5)
}

// FromMillis converts a floating-point number of milliseconds to a Duration.
func FromMillis(ms float64) Duration { return FromSeconds(ms / 1e3) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e6 }

// Millis reports the duration as a floating-point number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e3 }

// Std converts a simulation Duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Microsecond }

// String formats the duration with adaptive units.
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d%Second == 0:
		return fmt.Sprintf("%ds", int64(d/Second))
	case d >= Second || d <= -Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond || d <= -Millisecond:
		return fmt.Sprintf("%.3fms", d.Millis())
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}

// Add returns the time d after t. It saturates at Never instead of wrapping.
func (t Time) Add(d Duration) Time {
	if t == Never {
		return Never
	}
	s := Time(int64(t) + int64(d))
	if d > 0 && s < t {
		return Never
	}
	return s
}

// Sub returns the duration from u to t (t - u).
func (t Time) Sub(u Time) Duration { return Duration(int64(t) - int64(u)) }

// Seconds reports the absolute time as floating-point seconds from the run
// start.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats the absolute time in seconds.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("t=%.6fs", t.Seconds())
}
