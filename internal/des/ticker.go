package des

// Ticker repeatedly invokes a callback at a fixed period. The period can be
// changed between ticks; components such as the traffic-aware invalidation
// server use that to adapt their report interval at runtime.
type Ticker struct {
	s      *Scheduler
	period Duration
	name   string
	fn     func(Time)
	tick   func() // built once; re-armed every period without a fresh closure
	ev     *Event
	active bool
}

// NewTicker creates a ticker that will call fn(now) every period, with the
// first tick one period from now. Call Start to arm it.
func NewTicker(s *Scheduler, period Duration, name string, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	t := &Ticker{s: s, period: period, name: name, fn: fn}
	t.tick = func() {
		if !t.active {
			return
		}
		now := t.s.Now()
		t.arm() // arm first so fn may call SetPeriod/Stop
		t.fn(now)
	}
	return t
}

// Start arms the ticker. Starting an active ticker is a no-op.
func (t *Ticker) Start() {
	if t.active {
		return
	}
	t.active = true
	t.arm()
}

// Stop cancels the pending tick. The ticker can be restarted.
func (t *Ticker) Stop() {
	t.active = false
	t.s.Cancel(t.ev)
	t.ev = nil
}

// Period reports the current tick period.
func (t *Ticker) Period() Duration { return t.period }

// SetPeriod changes the tick period. If the ticker is active, the pending
// tick is re-armed to fire period after the previous tick (or now, whichever
// is later), so shrinking the period takes effect immediately.
func (t *Ticker) SetPeriod(period Duration) {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	if period == t.period {
		return
	}
	prev := t.period
	t.period = period
	if !t.active || t.ev == nil {
		return
	}
	// The pending tick was scheduled prev after the last tick; shift it.
	last := t.ev.Time().Add(Duration(-int64(prev)))
	next := last.Add(period)
	if next < t.s.Now() {
		next = t.s.Now()
	}
	t.ev = t.s.Reschedule(t.ev, next)
}

func (t *Ticker) arm() {
	t.ev = t.s.After(t.period, t.name, t.tick)
}
