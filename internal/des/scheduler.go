package des

import "fmt"

// Event is a handle to a scheduled callback. It can be cancelled or
// rescheduled until it fires.
type Event struct {
	at     Time
	seq    uint64 // FIFO tie-break among events with equal time
	index  int    // position within the holding tier, -1 when not queued
	fn     func()
	name   string
	slot   int32 // ring bucket holding the event when loc == locBucket
	loc    int8  // which ladder tier holds the event (locNone when unqueued)
	cancel bool
}

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Name reports the optional debug label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Pending reports whether the event is still queued to fire.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 && !e.cancel }

// eventHeap is a binary min-heap ordered by (time, seq). It is hand-rolled
// rather than using container/heap to avoid the interface indirection on the
// simulator's hottest path.
type eventHeap struct {
	ev []*Event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.ev[i], h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.ev[i], h.ev[j] = h.ev[j], h.ev[i]
	h.ev[i].index = i
	h.ev[j].index = j
}

func (h *eventHeap) push(e *Event) {
	e.index = len(h.ev)
	h.ev = append(h.ev, e)
	h.up(e.index)
}

func (h *eventHeap) pop() *Event {
	n := len(h.ev) - 1
	h.swap(0, n)
	e := h.ev[n]
	h.ev[n] = nil
	h.ev = h.ev[:n]
	if n > 0 {
		h.down(0)
	}
	e.index = -1
	return e
}

// remove extracts the event at heap position i.
func (h *eventHeap) remove(i int) {
	n := len(h.ev) - 1
	if i != n {
		h.swap(i, n)
	}
	e := h.ev[n]
	h.ev[n] = nil
	h.ev = h.ev[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	e.index = -1
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.ev)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && h.less(r, l) {
			least = r
		}
		if !h.less(least, i) {
			return
		}
		h.swap(i, least)
		i = least
	}
}

// Scheduler owns the simulation clock and event queue.
//
// The zero value is not usable; construct with NewScheduler. All methods must
// be called from a single goroutine (normally from within event callbacks).
type Scheduler struct {
	now       Time
	seq       uint64
	q         ladder
	executed  uint64
	running   bool
	stopped   bool
	free      []*Event // recycled Event structs to reduce allocation churn
	onAdvance func(Time)

	// Coarse cancellation: Run evaluates intFn every intEvery executed
	// events and stops when it returns a non-nil error (kept in intErr).
	// intLeft counts down to the next evaluation so the hot loop tests a
	// decrement against zero instead of a modulo.
	intEvery uint64
	intLeft  uint64
	intFn    func() error
	intErr   error

	// Telemetry pulse: Run calls pulseFn(executed) every pulseEvery events,
	// giving live monitors a cheap events-processed feed. pulseLeft counts
	// down like intLeft.
	pulseEvery uint64
	pulseLeft  uint64
	pulseFn    func(executed uint64)
}

// NewScheduler returns a scheduler with its clock at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current simulation time.
func (s *Scheduler) Now() Time { return s.now }

// Executed reports how many events have fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending reports how many events are queued.
func (s *Scheduler) Pending() int { return s.q.len() }

// NextAt reports the time of the earliest pending event. ok is false when
// the queue is empty.
func (s *Scheduler) NextAt() (t Time, ok bool) {
	e := s.q.peek()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// SetAdvanceHook installs fn to be called whenever the clock moves to a new
// time, before any event at that time runs. It is used by components that
// lazily bring state (e.g. fading processes) up to date.
func (s *Scheduler) SetAdvanceHook(fn func(Time)) { s.onAdvance = fn }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a simulation bug, and silently clamping would hide it.
//
// Event structs are recycled: a handle must not be used after its event has
// fired or been cancelled — it may alias a different, later event. Nil out
// stored handles at those points (all in-tree callers do).
func (s *Scheduler) At(t Time, name string, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling %q at %v before now %v", name, t, s.now))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
		*e = Event{}
	} else {
		e = &Event{}
	}
	e.at = t
	e.seq = s.seq
	e.fn = fn
	e.name = name
	s.seq++
	s.q.push(e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v for %q", d, name))
	}
	return s.At(s.now.Add(d), name, fn)
}

// Cancel removes a pending event. Cancelling a nil or already-cancelled
// handle is a no-op, so callers can cancel unconditionally — but a handle
// whose event already FIRED may have been recycled for a different event
// and must not be cancelled; drop handles when their event fires.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	s.q.remove(e)
	e.cancel = true
	s.free = append(s.free, e)
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback. If the event already fired it is re-queued afresh.
func (s *Scheduler) Reschedule(e *Event, t Time) *Event {
	if e == nil {
		return nil
	}
	fn, name := e.fn, e.name
	s.Cancel(e)
	return s.At(t, name, fn)
}

// MoveTo transfers a pending event from this scheduler to dst, preserving
// its time, name, and callback. The returned handle replaces e (which is
// recycled on the source side). Moving a nil or non-pending handle is a
// no-op returning nil. The event's time must not be in dst's past — callers
// migrate events between epoch-synchronized schedulers whose clocks agree.
func (s *Scheduler) MoveTo(e *Event, dst *Scheduler) *Event {
	if e == nil || e.index < 0 {
		return nil
	}
	at, name, fn := e.at, e.name, e.fn
	s.Cancel(e)
	return dst.At(at, name, fn)
}

// AdvanceTo moves the clock forward to t without executing any events,
// firing the advance hook as Run would. Events pending at exactly t remain
// queued (a subsequent Run(t) executes them); events strictly before t would
// be skipped silently, so that is a panic. Epoch-synchronized lanes use this
// to align clocks at a barrier after Run(t-1).
func (s *Scheduler) AdvanceTo(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("des: AdvanceTo %v before now %v", t, s.now))
	}
	if e := s.q.peek(); e != nil && e.at < t {
		panic(fmt.Sprintf("des: AdvanceTo %v would skip %q pending at %v", t, e.name, e.at))
	}
	if t == s.now {
		return
	}
	s.now = t
	if s.onAdvance != nil {
		s.onAdvance(s.now)
	}
}

// Reset returns the scheduler to its initial state — clock at zero, no
// pending events, no hooks, zeroed counters — while keeping allocated
// buffers (event free list, queue storage) for reuse. It exists so arenas
// can recycle schedulers across replications.
func (s *Scheduler) Reset() {
	s.free = s.q.reset(s.free)
	s.now = 0
	s.seq = 0
	s.executed = 0
	s.running = false
	s.stopped = false
	s.onAdvance = nil
	s.intEvery, s.intLeft, s.intFn, s.intErr = 0, 0, nil, nil
	s.pulseEvery, s.pulseLeft, s.pulseFn = 0, 0, nil
}

// Stop makes Run return after the currently executing event (if any)
// finishes. Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// SetInterrupt installs a check that Run evaluates every `every` executed
// events: a non-nil return stops the run (like Stop) and is reported by
// Err. This gives long simulations a coarse cancellation point — e.g. a
// context poll — without paying a per-event cost. every of 0 or a nil fn
// removes the check.
func (s *Scheduler) SetInterrupt(every uint64, fn func() error) {
	if every == 0 || fn == nil {
		s.intEvery, s.intFn = 0, nil
		return
	}
	s.intEvery, s.intFn = every, fn
	// First check lands on the next multiple of `every` of the global
	// executed count, exactly as the old `executed % every == 0` test did.
	s.intLeft = every - s.executed%every
}

// Err reports the error that interrupted the most recent Run, or nil when
// it ended normally (horizon reached, queue drained, or Stop).
func (s *Scheduler) Err() error { return s.intErr }

// SetPulse installs a telemetry callback that Run invokes with the running
// Executed count every `every` events. Unlike SetInterrupt it cannot stop
// the run; it exists so a live monitor can track events/sec without a
// per-event hook. every of 0 or a nil fn removes the pulse. Callers wanting
// exact totals should read Executed after Run returns — the pulse only
// fires on multiples of `every`.
func (s *Scheduler) SetPulse(every uint64, fn func(executed uint64)) {
	if every == 0 || fn == nil {
		s.pulseEvery, s.pulseFn = 0, nil
		return
	}
	s.pulseEvery, s.pulseFn = every, fn
	s.pulseLeft = every - s.executed%every
}

// Run executes events in timestamp order until the queue is empty, the clock
// would pass `until`, or Stop is called. It returns the final clock value.
// The clock is left at min(until, time of last executed event); if the run
// ends because the horizon was reached, the clock is set to the horizon so
// time-weighted statistics cover the whole run.
func (s *Scheduler) Run(until Time) Time {
	if s.running {
		panic("des: Run called re-entrantly")
	}
	s.running = true
	s.stopped = false
	s.intErr = nil
	defer func() { s.running = false }()

	for !s.stopped {
		next := s.q.peek()
		if next == nil || next.at > until {
			break
		}
		e := s.q.popHead()
		if e.at != s.now {
			s.now = e.at
			if s.onAdvance != nil {
				s.onAdvance(s.now)
			}
		}
		fn := e.fn
		e.fn = nil
		s.free = append(s.free, e)
		s.executed++
		fn()
		if s.intEvery > 0 {
			if s.intLeft--; s.intLeft == 0 {
				s.intLeft = s.intEvery
				if err := s.intFn(); err != nil {
					s.intErr = err
					s.stopped = true
				}
			}
		}
		if s.pulseEvery > 0 {
			if s.pulseLeft--; s.pulseLeft == 0 {
				s.pulseLeft = s.pulseEvery
				s.pulseFn(s.executed)
			}
		}
	}
	if !s.stopped && s.now < until && until != Never {
		s.now = until
		if s.onAdvance != nil {
			s.onAdvance(s.now)
		}
	}
	return s.now
}

// RunAll executes events until the queue drains or Stop is called.
func (s *Scheduler) RunAll() Time { return s.Run(Never) }

// Step executes exactly one event if one is pending and returns true,
// otherwise returns false. Useful in tests.
func (s *Scheduler) Step() bool {
	if s.q.peek() == nil {
		return false
	}
	e := s.q.popHead()
	if e.at != s.now {
		s.now = e.at
		if s.onAdvance != nil {
			s.onAdvance(s.now)
		}
	}
	fn := e.fn
	e.fn = nil
	s.free = append(s.free, e)
	s.executed++
	// Step never fires the interrupt/pulse hooks, but it always counted
	// toward their executed-count phase; keep the countdowns aligned.
	if s.intEvery > 0 {
		if s.intLeft--; s.intLeft == 0 {
			s.intLeft = s.intEvery
		}
	}
	if s.pulseEvery > 0 {
		if s.pulseLeft--; s.pulseLeft == 0 {
			s.pulseLeft = s.pulseEvery
		}
	}
	fn()
	return true
}
