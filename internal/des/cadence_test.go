package des

import (
	"testing"
)

// schedule queues n no-op events at times 1..n.
func scheduleN(sch *Scheduler, n int) {
	for i := 1; i <= n; i++ {
		sch.At(Time(i), "e", func() {})
	}
}

// TestInterruptCadence pins the countdown-counter implementation to the
// historical `executed % every == 0` semantics: the check fires exactly on
// multiples of `every` of the global executed count.
func TestInterruptCadence(t *testing.T) {
	sch := NewScheduler()
	scheduleN(sch, 23)
	var fires []uint64
	sch.SetInterrupt(5, func() error {
		fires = append(fires, sch.Executed())
		return nil
	})
	sch.RunAll()
	want := []uint64{5, 10, 15, 20}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
}

// TestInterruptInstalledMidRun installs the check when executed is not a
// multiple of `every`; the first evaluation must still land on the next
// multiple of the global count, not `every` events after installation.
func TestInterruptInstalledMidRun(t *testing.T) {
	sch := NewScheduler()
	scheduleN(sch, 20)
	for i := 0; i < 3; i++ { // executed = 3 before the check exists
		sch.Step()
	}
	var fires []uint64
	sch.SetInterrupt(4, func() error {
		fires = append(fires, sch.Executed())
		return nil
	})
	sch.RunAll()
	want := []uint64{4, 8, 12, 16, 20}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
}

// TestStepKeepsHookPhase: Step never evaluates the hooks, but the events it
// executes count toward their phase, so a later Run fires on the same global
// multiples as an uninterrupted Run would.
func TestStepKeepsHookPhase(t *testing.T) {
	sch := NewScheduler()
	scheduleN(sch, 18)
	var fires []uint64
	sch.SetInterrupt(6, func() error {
		fires = append(fires, sch.Executed())
		return nil
	})
	for i := 0; i < 7; i++ { // crosses executed=6 silently
		sch.Step()
	}
	if len(fires) != 0 {
		t.Fatalf("Step fired the interrupt at %v", fires)
	}
	sch.RunAll()
	want := []uint64{12, 18}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
}

// TestPulseCadence checks the telemetry pulse fires with the exact executed
// counts on multiples of `every`, including after a mid-run install.
func TestPulseCadence(t *testing.T) {
	sch := NewScheduler()
	scheduleN(sch, 17)
	for i := 0; i < 2; i++ {
		sch.Step()
	}
	var fires []uint64
	sch.SetPulse(3, func(executed uint64) {
		fires = append(fires, executed)
		if executed != sch.Executed() {
			t.Fatalf("pulse executed %d, scheduler says %d", executed, sch.Executed())
		}
	})
	sch.RunAll()
	want := []uint64{3, 6, 9, 12, 15}
	if len(fires) != len(want) {
		t.Fatalf("pulsed at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("pulsed at %v, want %v", fires, want)
		}
	}
}
