package des

import (
	"math/rand"
	"testing"
)

// refQueue is a reference pending-event store backed by the plain binary
// heap, used to pin the ladder-backed scheduler's pop order. It mirrors the
// scheduler's (time, seq) contract with none of the ladder's tiering.
type refQueue struct {
	heap eventHeap
	seq  uint64
}

func (q *refQueue) push(at Time) *Event {
	e := &Event{at: at, seq: q.seq}
	q.seq++
	q.heap.push(e)
	return e
}

func (q *refQueue) pop() *Event {
	if q.heap.len() == 0 {
		return nil
	}
	return q.heap.pop()
}

// TestLadderMatchesHeapRandom drives a ladder-backed scheduler and the
// reference heap through identical randomized schedule/cancel/reschedule
// workloads and requires byte-identical pop order.
func TestLadderMatchesHeapRandom(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		s := NewScheduler()
		ref := &refQueue{}

		type pair struct {
			ev  *Event
			ref *Event
		}
		var live []pair
		var got, want []Time

		// Interleave pops with a mixed push/cancel/reschedule workload over
		// several time scales so the ladder crosses bucket drains, far-tier
		// rebases, and width adaptations.
		for op := 0; op < 5000; op++ {
			switch k := rng.Intn(10); {
			case k < 5: // push
				var d Duration
				switch rng.Intn(4) {
				case 0:
					d = Duration(rng.Intn(100)) // same-slot cluster
				case 1:
					d = Duration(rng.Intn(100_000)) // near
				case 2:
					d = Duration(rng.Intn(10_000_000)) // across the ring
				default:
					d = Duration(rng.Intn(1_000_000_000)) // far future
				}
				at := s.Now().Add(d)
				ev := s.At(at, "p", func() {})
				live = append(live, pair{ev: ev, ref: ref.push(at)})
			case k < 6: // cancel a random live event
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				p := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if p.ref.index < 0 {
					continue // already popped; the ladder handle may be recycled
				}
				s.Cancel(p.ev)
				ref.heap.remove(p.ref.index)
			case k < 7: // reschedule a random live event
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				p := &live[i]
				if p.ref.index < 0 {
					continue // already popped; the ladder handle may be recycled
				}
				at := s.Now().Add(Duration(rng.Intn(50_000_000)))
				p.ev = s.Reschedule(p.ev, at)
				ref.heap.remove(p.ref.index)
				p.ref = ref.push(at)
			default: // pop one event from both
				fired := false
				var at Time
				if e := s.q.peek(); e != nil {
					at = e.at
					fired = s.Step()
				}
				re := ref.pop()
				if fired != (re != nil) {
					t.Fatalf("trial %d op %d: ladder fired=%v, heap fired=%v", trial, op, fired, re != nil)
				}
				if re != nil {
					got = append(got, at)
					want = append(want, re.at)
				}
			}
		}
		// Drain both completely.
		for {
			e := s.q.peek()
			re := ref.pop()
			if (e == nil) != (re == nil) {
				t.Fatalf("trial %d drain: ladder empty=%v, heap empty=%v (pending %d)", trial, e == nil, re == nil, s.Pending())
			}
			if e == nil {
				break
			}
			got = append(got, e.at)
			want = append(want, re.at)
			s.Step()
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: popped %d events, heap popped %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pop %d at %v, heap says %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestLadderAdversarialSameTimeAndOutliers pins the fuzz-style adversarial
// shape from the issue: thousands of same-time events (forcing an oversized
// bucket drain and a width respread) interleaved with far-future outliers,
// popped in exact (time, seq) order.
func TestLadderAdversarialSameTimeAndOutliers(t *testing.T) {
	s := NewScheduler()
	at := Time(1_000_000)
	var order []int
	n := 0
	add := func(t Time) {
		i := n
		n++
		s.At(t, "a", func() { order = append(order, i) })
	}
	// A burst well past ladderMaxDrain at one instant…
	for i := 0; i < ladderMaxDrain+500; i++ {
		add(at)
	}
	// …interleaved with outliers across 12 decades of future time.
	far := at
	for i := 0; i < 40; i++ {
		far = far.Add(Duration(1) << uint(i%40))
		add(far)
	}
	// And a second same-time burst at a later instant, scheduled before the
	// first fires, so it sits in the ring while the first drains.
	at2 := at.Add(512)
	for i := 0; i < 1000; i++ {
		add(at2)
	}
	ref := make([]int, 0, n)
	s.RunAll()
	if len(order) != n {
		t.Fatalf("fired %d of %d events", len(order), n)
	}
	// Reconstruct the expected order with a plain stable criterion: events
	// were added with monotonically increasing seq, so sorting (time, add
	// index) gives the contract order.
	type rec struct {
		at  Time
		idx int
	}
	recs := make([]rec, 0, n)
	k := 0
	appendN := func(t Time, c int) {
		for i := 0; i < c; i++ {
			recs = append(recs, rec{at: t, idx: k})
			k++
		}
	}
	appendN(at, ladderMaxDrain+500)
	far = at
	for i := 0; i < 40; i++ {
		far = far.Add(Duration(1) << uint(i%40))
		appendN(far, 1)
	}
	appendN(at2, 1000)
	// Stable sort by time (insertion by time keeps idx order within a time).
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].at < recs[j-1].at; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	for _, r := range recs {
		ref = append(ref, r.idx)
	}
	for i := range ref {
		if order[i] != ref[i] {
			t.Fatalf("pop %d fired event %d, want %d", i, order[i], ref[i])
		}
	}
}

// TestLadderSameSlotPushDuringDrain pins the insert-into-open-bottom path:
// events scheduled from inside a callback into the currently draining slot
// must still fire in (time, seq) order.
func TestLadderSameSlotPushDuringDrain(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.At(100, "a", func() {
		order = append(order, "a")
		s.At(150, "c", func() { order = append(order, "c") })
		s.At(120, "b", func() { order = append(order, "b") })
		s.At(150, "d", func() { order = append(order, "d") })
	})
	s.At(200, "e", func() { order = append(order, "e") })
	s.RunAll()
	want := []string{"a", "b", "c", "d", "e"}
	if len(order) != len(want) {
		t.Fatalf("fired %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSchedulerNextAt(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported ok")
	}
	s.At(500, "b", func() {})
	e := s.At(100, "a", func() {})
	if at, ok := s.NextAt(); !ok || at != 100 {
		t.Fatalf("NextAt = %v, %v", at, ok)
	}
	s.Cancel(e)
	if at, ok := s.NextAt(); !ok || at != 500 {
		t.Fatalf("NextAt after cancel = %v, %v", at, ok)
	}
}

func TestSchedulerAdvanceTo(t *testing.T) {
	s := NewScheduler()
	var advanced []Time
	s.SetAdvanceHook(func(t Time) { advanced = append(advanced, t) })
	fired := false
	s.At(1000, "x", func() { fired = true })
	s.AdvanceTo(1000) // events at exactly t stay pending
	if fired {
		t.Fatal("AdvanceTo executed an event")
	}
	if s.Now() != 1000 {
		t.Fatalf("clock at %v", s.Now())
	}
	if len(advanced) != 1 || advanced[0] != 1000 {
		t.Fatalf("advance hook calls: %v", advanced)
	}
	s.AdvanceTo(1000) // no-op at the same time
	if len(advanced) != 1 {
		t.Fatalf("advance hook re-fired at same time: %v", advanced)
	}
	s.Run(1000)
	if !fired {
		t.Fatal("event at the advanced-to time did not fire")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo past a pending event did not panic")
		}
	}()
	s.At(2000, "y", func() {})
	s.AdvanceTo(3000)
}

func TestSchedulerMoveTo(t *testing.T) {
	a := NewScheduler()
	b := NewScheduler()
	fired := ""
	e := a.At(700, "x", func() { fired = "b" })
	moved := a.MoveTo(e, b)
	if moved == nil || !moved.Pending() {
		t.Fatal("moved event not pending on destination")
	}
	if e.Pending() {
		t.Fatal("source handle still pending after move")
	}
	if moved.Time() != 700 || moved.Name() != "x" {
		t.Fatalf("moved event lost identity: at %v name %q", moved.Time(), moved.Name())
	}
	a.RunAll()
	if fired != "" {
		t.Fatal("event fired on source scheduler")
	}
	b.RunAll()
	if fired != "b" {
		t.Fatal("event did not fire on destination scheduler")
	}
	if got := a.MoveTo(nil, b); got != nil {
		t.Fatal("MoveTo(nil) returned a handle")
	}
	if got := b.MoveTo(moved, a); got != nil {
		t.Fatal("MoveTo of a fired event returned a handle")
	}
}

func TestSchedulerReset(t *testing.T) {
	s := NewScheduler()
	ran := 0
	s.At(100, "a", func() { ran++ })
	s.At(5_000_000_000, "far", func() { ran++ })
	s.Run(200)
	if ran != 1 {
		t.Fatalf("ran %d", ran)
	}
	s.SetInterrupt(10, func() error { return nil })
	s.SetPulse(10, func(uint64) {})
	s.Reset()
	if s.Now() != 0 || s.Executed() != 0 || s.Pending() != 0 {
		t.Fatalf("Reset left now=%v executed=%d pending=%d", s.Now(), s.Executed(), s.Pending())
	}
	// The scheduler must behave exactly like a fresh one: same seq numbering,
	// same pop order.
	var order []int
	s.At(300, "b", func() { order = append(order, 2) })
	s.At(300, "c", func() { order = append(order, 3) })
	s.At(100, "a", func() { order = append(order, 1) })
	s.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("post-Reset order %v", order)
	}
}

// FuzzLadderPopOrder cross-checks the ladder against the reference heap on
// fuzz-provided operation tapes.
func FuzzLadderPopOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 250, 3, 9, 0, 0, 255, 7})
	f.Add([]byte{5, 5, 5, 5, 200, 200, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, tape []byte) {
		s := NewScheduler()
		ref := &refQueue{}
		var live []*Event
		var refLive []*Event
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i], tape[i+1]
			switch op % 3 {
			case 0: // push; arg picks a delay scale
				d := Duration(arg) << (uint(arg) % 24)
				at := s.Now().Add(d)
				live = append(live, s.At(at, "f", func() {}))
				refLive = append(refLive, ref.push(at))
			case 1: // cancel
				if len(live) == 0 {
					continue
				}
				j := int(arg) % len(live)
				if refLive[j].index >= 0 {
					s.Cancel(live[j])
					ref.heap.remove(refLive[j].index)
				}
				live = append(live[:j], live[j+1:]...)
				refLive = append(refLive[:j], refLive[j+1:]...)
			case 2: // pop
				var at Time
				e := s.q.peek()
				if e != nil {
					at = e.at
					s.Step()
				}
				re := ref.pop()
				if (e == nil) != (re == nil) {
					t.Fatalf("op %d: ladder empty=%v heap empty=%v", i, e == nil, re == nil)
				}
				if re != nil && at != re.at {
					t.Fatalf("op %d: popped %v, heap %v", i, at, re.at)
				}
			}
		}
		for {
			e := s.q.peek()
			re := ref.pop()
			if (e == nil) != (re == nil) {
				t.Fatalf("drain: ladder empty=%v heap empty=%v", e == nil, re == nil)
			}
			if e == nil {
				break
			}
			if e.at != re.at {
				t.Fatalf("drain: popped %v, heap %v", e.at, re.at)
			}
			s.Step()
		}
	})
}
