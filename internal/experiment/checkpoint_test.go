package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func ckptExperiment(algos ...string) *Experiment {
	return &Experiment{
		ID: "CK", Title: "checkpointed", XLabel: "u",
		Algorithms: algos,
		Points: points([]float64{0.1, 1}, gLabel,
			func(c *core.Config, x float64) { c.DB.UpdateRate = x }),
		Metrics: []Metric{MetricDelay, MetricHit},
	}
}

func TestCheckpointResumeSkipsCompletedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), CheckpointName)

	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ckptExperiment("ts").Run(Options{Base: tinyBase(), Reps: 2, Workers: 2, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	want := res.CSV() + "\n" + res.Table()

	// Resume: every cell is recorded, so nothing is scheduled and the
	// output is byte-identical.
	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 2 {
		t.Fatalf("recorded cells %d", ck2.Len())
	}
	var last Progress
	res2, err := ckptExperiment("ts").Run(Options{
		Base: tinyBase(), Reps: 2, Workers: 2, Checkpoint: ck2,
		Progress: func(p Progress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.TotalUnits != 0 || last.DoneCells != 2 || last.TotalCells != 2 {
		t.Fatalf("resume ran work: %+v", last)
	}
	if got := res2.CSV() + "\n" + res2.Table(); got != want {
		t.Fatalf("restored output differs:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

func TestCheckpointPartialResumeRunsOnlyMissingCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), CheckpointName)

	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckptExperiment("ts").Run(Options{Base: tinyBase(), Reps: 2, Workers: 2, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// The rerun adds an algorithm: only the tair cells are scheduled.
	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	var last Progress
	res, err := ckptExperiment("ts", "tair").Run(Options{
		Base: tinyBase(), Reps: 2, Workers: 2, Checkpoint: ck2,
		Progress: func(p Progress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.TotalUnits != 4 { // 2 points × 2 reps of the new algorithm
		t.Fatalf("scheduled units %d", last.TotalUnits)
	}
	for _, c := range res.Cells {
		if c.Agg == nil || c.Agg.Reps != 2 {
			t.Fatalf("cell %s/%s missing", c.Algo, c.Point.Label)
		}
	}
	if ck2.Len() != 4 {
		t.Fatalf("checkpoint now records %d cells", ck2.Len())
	}
}

func TestCheckpointGuardsRejectMismatchedRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), CheckpointName)

	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckptExperiment("ts").Run(Options{Base: tinyBase(), Reps: 2, Workers: 2, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// A different base seed must not restore anything.
	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	base := tinyBase()
	base.Seed = 99
	var last Progress
	if _, err := ckptExperiment("ts").Run(Options{
		Base: base, Reps: 2, Workers: 2, Checkpoint: ck2,
		Progress: func(p Progress) { last = p },
	}); err != nil {
		t.Fatal(err)
	}
	if last.TotalUnits != 4 {
		t.Fatalf("mismatched seed still restored cells: %+v", last)
	}
}

func TestCheckpointToleratesTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), CheckpointName)

	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckptExperiment("ts").Run(Options{Base: tinyBase(), Reps: 2, Workers: 2, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// Simulate a crash mid-append: a torn final line is skipped on load.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"exp":"CK","x":9,"label":"9","algo":"ts","ru`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 2 {
		t.Fatalf("recorded cells %d", ck2.Len())
	}

	// Corruption anywhere else is loud, not silent.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := "not json\n" + string(data)
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, true); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("corrupt interior line accepted: %v", err)
	}
}

// TestCheckpointTornLineEveryByteOffset simulates a crash mid-append at
// every possible byte offset within the final two lines (one cell record,
// one perf line) and checks that resume (a) never errors, (b) restores
// exactly the cells whose records survived intact, and (c) repairs the file
// so a subsequent append starts on a fresh line — the original bug let the
// next append concatenate onto the fragment, corrupting an interior line
// and making every later resume fail loudly.
func TestCheckpointTornLineEveryByteOffset(t *testing.T) {
	dir := t.TempDir()
	seedPath := filepath.Join(dir, CheckpointName)

	ck, err := OpenCheckpoint(seedPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckptExperiment("ts").Run(Options{Base: tinyBase(), Reps: 2, Workers: 2, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	data, err := os.ReadFile(seedPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("checkpoint has only %d lines", len(lines))
	}
	// Start of the penultimate line, so offsets sweep through the last cell
	// record and the trailing perf line.
	start := len(data) - (len(lines[len(lines)-1]) + len(lines[len(lines)-2]) + 2)

	// cellsIn counts intact cell records in a prefix: terminated lines plus
	// a complete-but-unterminated tail (truncation that ate only the '\n').
	cellsIn := func(b []byte) int {
		n := 0
		for _, line := range strings.Split(string(b), "\n") {
			if strings.TrimSpace(line) == "" || isPerfLine(line) {
				continue
			}
			rec := &CellRecord{}
			if json.Unmarshal([]byte(line), rec) == nil {
				n++
			}
		}
		return n
	}

	for cut := start; cut <= len(data); cut++ {
		path := filepath.Join(dir, "torn.jsonl")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := cellsIn(data[:cut])

		ck2, err := OpenCheckpoint(path, true)
		if err != nil {
			t.Fatalf("cut %d: resume failed: %v", cut, err)
		}
		if ck2.Len() != want {
			t.Fatalf("cut %d: restored %d cells, want %d", cut, ck2.Len(), want)
		}
		// Append after the torn open — under the old code this concatenated
		// onto the fragment and poisoned the file for the next resume.
		if err := ck2.recordPerf("CK", Point{X: 9, Label: "9"}, "ts", &CellPerf{WallSec: 1}); err != nil {
			t.Fatalf("cut %d: append after resume: %v", cut, err)
		}
		ck2.Close()

		ck3, err := OpenCheckpoint(path, true)
		if err != nil {
			t.Fatalf("cut %d: resume after append failed: %v", cut, err)
		}
		if ck3.Len() != want {
			t.Fatalf("cut %d: second resume restored %d cells, want %d", cut, ck3.Len(), want)
		}
		ck3.Close()
	}
}

func TestCheckpointOpenFreshTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), CheckpointName)
	if err := os.WriteFile(path, []byte("{\"exp\":\"CK\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Len() != 0 {
		t.Fatalf("fresh open kept %d records", ck.Len())
	}
	if data, _ := os.ReadFile(path); len(data) != 0 {
		t.Fatalf("fresh open did not truncate: %q", data)
	}
}
