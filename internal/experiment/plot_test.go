package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestChartBasic(t *testing.T) {
	series := []Series{
		{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
	}
	out := Chart("test chart", "x", "y", series, 40, 10)
	for _, want := range []string{"test chart", "o=up", "x=down", "x: x", "y: y"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Title + 10 plot rows + axis + xlabels + labels + legend.
	if len(lines) < 14 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
	// The increasing series' marker must appear in both the top and bottom
	// plot rows (corners of the diagonal).
	if !strings.Contains(lines[1], "x") { // top row: down series starts high... up series ends high
		t.Errorf("top row missing a marker:\n%s", out)
	}
}

func TestChartDegenerate(t *testing.T) {
	if out := Chart("empty", "x", "y", nil, 40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
	nan := []Series{{Name: "n", X: []float64{math.NaN()}, Y: []float64{1}}}
	if out := Chart("nan", "x", "y", nan, 40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("nan chart: %q", out)
	}
	// Single point (zero ranges) must not divide by zero.
	one := []Series{{Name: "p", X: []float64{5}, Y: []float64{7}}}
	out := Chart("one", "x", "y", one, 40, 10)
	if !strings.Contains(out, "o") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
	// Tiny dimensions are clamped.
	_ = Chart("tiny", "x", "y", one, 1, 1)
}

func TestResultChartAndCSVRoundTrip(t *testing.T) {
	exp := &Experiment{
		ID: "XP", Title: "plot test", XLabel: "load",
		Algorithms: []string{"ts", "uir"},
		Points: points([]float64{0, 0.5}, gLabel,
			func(c *core.Config, x float64) { c.TrafficLoad = x }),
		Metrics: []Metric{MetricDelay, MetricHit},
	}
	res, err := exp.Run(Options{Base: tinyBase(), Reps: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	chart := res.Chart(MetricDelay, 40, 10)
	for _, want := range []string{"XP", "delay", "o=ts", "x=uir"} {
		if !strings.Contains(chart, want) {
			t.Errorf("result chart missing %q:\n%s", want, chart)
		}
	}

	// CSV → ParseCSV round trip.
	csv := res.CSV()
	xlabel, series, err := ParseCSV(csv, "delay")
	if err != nil {
		t.Fatal(err)
	}
	if xlabel != "x" {
		t.Errorf("xlabel %q", xlabel)
	}
	if len(series) != 2 {
		t.Fatalf("series %d", len(series))
	}
	for _, s := range series {
		if len(s.X) != 2 || len(s.Y) != 2 {
			t.Fatalf("series %s has %d points", s.Name, len(s.X))
		}
		for _, y := range s.Y {
			if math.IsNaN(y) || y <= 0 {
				t.Fatalf("series %s y=%v", s.Name, y)
			}
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	if _, _, err := ParseCSV("", "delay"); err == nil {
		t.Error("empty CSV accepted")
	}
	header := "experiment,x,label,algorithm,delay_mean,delay_ci95\n"
	if _, _, err := ParseCSV(header+"F1,0,0,ts,1,0.1", "nope"); err == nil {
		t.Error("unknown metric accepted")
	}
	if _, _, err := ParseCSV(header+"F1,0,ts,1", "delay"); err == nil {
		t.Error("short row accepted")
	}
	if _, _, err := ParseCSV(header+"F1,zz,0,ts,1,0.1", "delay"); err == nil {
		t.Error("bad x accepted")
	}
	if _, _, err := ParseCSV(header+"F1,0,0,ts,zz,0.1", "delay"); err == nil {
		t.Error("bad y accepted")
	}
}

func TestReportSection(t *testing.T) {
	exp := &Experiment{
		ID: "XR", Title: "report test", XLabel: "load",
		Algorithms: []string{"ts", "uir"},
		Points: points([]float64{0, 0.5}, gLabel,
			func(c *core.Config, x float64) { c.TrafficLoad = x }),
		Metrics: []Metric{MetricDelay, MetricHit},
	}
	res, err := exp.Run(Options{Base: tinyBase(), Reps: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	section, err := ReportSection("XR", res.CSV(), 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## XR", "```", "**delay**", "**hit**", "| ts | uir |", "| 0.5 |"} {
		if !strings.Contains(section, want) {
			t.Errorf("section missing %q:\n%s", want, section)
		}
	}
	// Known registry id resolves to its title and x-label.
	sec2, err := ReportSection("F1", res.CSV(), 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sec2, "F1 — Mean query delay vs. update rate") {
		t.Errorf("registry title missing:\n%s", sec2[:100])
	}
	// Errors.
	if _, err := ReportSection("X", "", 40, 10); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReportSection("X", "bogus,header\n", 40, 10); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReportSection("XR", "experiment,x,label,algorithm,delay_mean,delay_ci95\nshort,row\n", 40, 10); err == nil {
		t.Error("malformed row accepted")
	}
}
