package experiment

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/obs"
)

// TestRunAllFlushesTraceOnCancellation pins the crash-safety contract of the
// JSONL trace sink under fail-fast cancellation: when the context threaded
// through RunAll is cancelled mid-sweep, every event the sink accepted must
// reach the underlying writer as a complete record — nothing may be stranded
// in the bufio tail of a run that is about to be thrown away.
func TestRunAllFlushesTraceOnCancellation(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)

	base := tinyBase()
	base.Tracer = sink

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cancel as soon as the first replication completes: remaining units are
	// skipped fail-fast with events already buffered in the sink.
	_, err := RunAll(ctx, []*Experiment{ckptExperiment("ts")}, Options{
		Base: base, Reps: 2, Workers: 1,
		Progress: func(p Progress) {
			if p.DoneUnits >= 1 {
				cancel()
			}
		},
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	if sink.Events() == 0 {
		t.Fatal("scenario too tame: no events traced before cancellation")
	}
	if got, want := bytes.Count(buf.Bytes(), []byte("\n")), int(sink.Events()); got != want {
		t.Fatalf("underlying writer holds %d complete records, sink accepted %d — buffered tail lost on cancellation", got, want)
	}
	if len(buf.Bytes()) > 0 && buf.Bytes()[len(buf.Bytes())-1] != '\n' {
		t.Fatal("trace does not end at a record boundary")
	}
}
