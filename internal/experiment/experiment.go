// Package experiment defines the reconstructed evaluation matrix (figures
// F1–F10, tables T1–T3, ablations and extensions A1–A6) and the harness that regenerates
// any of them: sweep definitions, a cell-parallel runner, and table/CSV
// renderers. EXPERIMENTS.md records the expected versus measured shapes.
package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/des"
)

// Metric extracts one column from an aggregated cell.
type Metric struct {
	Name string // short column label, also the CSV header
	Unit string
	Get  func(*core.Aggregate) (mean, ci float64)
}

// Standard metric extractors.
var (
	MetricDelay = Metric{"delay", "s", func(a *core.Aggregate) (float64, float64) {
		return a.MeanDelay.Mean(), a.MeanDelay.CI95()
	}}
	MetricP95 = Metric{"p95", "s", func(a *core.Aggregate) (float64, float64) {
		return a.P95Delay.Mean(), a.P95Delay.CI95()
	}}
	MetricHit = Metric{"hit", "ratio", func(a *core.Aggregate) (float64, float64) {
		return a.HitRatio.Mean(), a.HitRatio.CI95()
	}}
	MetricUplink = Metric{"uplink", "req/ans", func(a *core.Aggregate) (float64, float64) {
		return a.UplinkPerAns.Mean(), a.UplinkPerAns.CI95()
	}}
	MetricOverhead = Metric{"overhead", "b/s", func(a *core.Aggregate) (float64, float64) {
		return a.OverheadBps.Mean(), a.OverheadBps.CI95()
	}}
	MetricEnergy = Metric{"energy", "J/query", func(a *core.Aggregate) (float64, float64) {
		return a.EnergyPerQuery.Mean(), a.EnergyPerQuery.CI95()
	}}
	MetricUtil = Metric{"util", "frac", func(a *core.Aggregate) (float64, float64) {
		return a.DownlinkUtil.Mean(), a.DownlinkUtil.CI95()
	}}
	MetricLoss = Metric{"rpt-loss", "frac", func(a *core.Aggregate) (float64, float64) {
		return a.ReportLoss.Mean(), a.ReportLoss.CI95()
	}}
	MetricDrops = Metric{"drops", "/client/h", func(a *core.Aggregate) (float64, float64) {
		return a.CacheDropsRate.Mean(), a.CacheDropsRate.CI95()
	}}
)

// Point is one x-axis value of a sweep.
type Point struct {
	X      float64
	Label  string
	Mutate func(*core.Config)
}

// Experiment is one figure or table of the evaluation.
type Experiment struct {
	ID         string
	Title      string
	XLabel     string
	Algorithms []string
	Points     []Point
	Metrics    []Metric

	// Scale multiplies the default horizon; heavy sweeps use < 1.
	Scale float64
}

// Cell is the aggregated outcome of one (point, algorithm) pair.
type Cell struct {
	Point Point
	Algo  string
	Agg   *core.Aggregate
	Err   error
}

// Result is a completed experiment.
type Result struct {
	Exp   *Experiment
	Reps  int
	Cells []Cell
}

// Options configures a run of the harness.
type Options struct {
	Base     core.Config // base configuration each point mutates
	Reps     int
	Workers  int // concurrent cells; ≤0 means GOMAXPROCS
	Progress func(done, total int, cell string)
}

// DefaultBase returns the evaluation's base configuration.
func DefaultBase() core.Config { return core.DefaultConfig() }

// Run executes the experiment: every (point, algorithm) cell with Reps
// replications, cells in parallel.
func (e *Experiment) Run(opt Options) (*Result, error) {
	if opt.Reps <= 0 {
		opt.Reps = 5
	}
	algos := e.Algorithms
	if len(algos) == 0 {
		algos = append([]string(nil), allAlgos...)
	}
	type job struct {
		idx   int
		point Point
		algo  string
	}
	var jobs []job
	for _, p := range e.Points {
		for _, a := range algos {
			jobs = append(jobs, job{len(jobs), p, a})
		}
	}
	res := &Result{Exp: e, Reps: opt.Reps, Cells: make([]Cell, len(jobs))}

	workers := opt.Workers
	if workers <= 0 {
		workers = 8
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	work := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				cfg := opt.Base
				if e.Scale > 0 && e.Scale != 1 {
					cfg.Horizon = des.Duration(float64(cfg.Horizon) * e.Scale)
					if cfg.Warmup >= cfg.Horizon {
						cfg.Warmup = cfg.Horizon / 4
					}
				}
				j.point.Mutate(&cfg)
				cfg.Algorithm = j.algo
				agg, err := core.RunReplications(cfg, opt.Reps, 1)
				res.Cells[j.idx] = Cell{Point: j.point, Algo: j.algo, Agg: agg, Err: err}
				if opt.Progress != nil {
					mu.Lock()
					done++
					opt.Progress(done, len(jobs), fmt.Sprintf("%s %s x=%s", e.ID, j.algo, j.point.Label))
					mu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		work <- j
	}
	close(work)
	wg.Wait()

	for _, c := range res.Cells {
		if c.Err != nil {
			return nil, fmt.Errorf("experiment %s (%s, x=%s): %w", e.ID, c.Algo, c.Point.Label, c.Err)
		}
	}
	return res, nil
}

// algos lists the algorithms present in the result, in canonical order.
func (r *Result) algos() []string {
	seen := map[string]int{}
	var out []string
	for _, c := range r.Cells {
		if _, ok := seen[c.Algo]; !ok {
			seen[c.Algo] = len(out)
			out = append(out, c.Algo)
		}
	}
	return out
}

// cell finds the cell for (label, algo).
func (r *Result) cell(label, algo string) *Cell {
	for i := range r.Cells {
		if r.Cells[i].Point.Label == label && r.Cells[i].Algo == algo {
			return &r.Cells[i]
		}
	}
	return nil
}

// labels lists the point labels in sweep order.
func (r *Result) labels() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Point.Label] {
			seen[c.Point.Label] = true
			out = append(out, c.Point.Label)
		}
	}
	return out
}

// Table renders one aligned text block per metric: rows are sweep points,
// columns are algorithms, entries mean±ci.
func (r *Result) Table() string {
	var b strings.Builder
	algos := r.algos()
	fmt.Fprintf(&b, "== %s: %s (reps=%d) ==\n", r.Exp.ID, r.Exp.Title, r.Reps)
	for _, m := range r.Exp.Metrics {
		fmt.Fprintf(&b, "-- %s [%s] --\n", m.Name, m.Unit)
		fmt.Fprintf(&b, "%-12s", r.Exp.XLabel)
		for _, a := range algos {
			fmt.Fprintf(&b, " %16s", a)
		}
		b.WriteByte('\n')
		for _, label := range r.labels() {
			fmt.Fprintf(&b, "%-12s", label)
			for _, a := range algos {
				c := r.cell(label, a)
				mean, ci := m.Get(c.Agg)
				fmt.Fprintf(&b, " %9s±%-6s", fmtG(mean), fmtG(ci))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func fmtG(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// CSV renders the result as long-form CSV: one row per (x, algo) with one
// mean and ci column pair per metric.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,x,label,algorithm")
	for _, m := range r.Exp.Metrics {
		fmt.Fprintf(&b, ",%s_mean,%s_ci95", m.Name, m.Name)
	}
	b.WriteByte('\n')
	cells := append([]Cell(nil), r.Cells...)
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Point.X != cells[j].Point.X {
			return cells[i].Point.X < cells[j].Point.X
		}
		return cells[i].Algo < cells[j].Algo
	})
	for _, c := range cells {
		fmt.Fprintf(&b, "%s,%g,%s,%s", r.Exp.ID, c.Point.X, c.Point.Label, c.Algo)
		for _, m := range r.Exp.Metrics {
			mean, ci := m.Get(c.Agg)
			fmt.Fprintf(&b, ",%g,%g", mean, ci)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
