// Package experiment defines the reconstructed evaluation matrix (figures
// F1–F10, tables T1–T3, ablations and extensions A1–A6, multi-cell sweeps
// M1–M3) and the harness that regenerates
// any of them: sweep definitions, a cell-parallel runner, and table/CSV
// renderers. EXPERIMENTS.md records the expected versus measured shapes.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/obs"
)

// Metric extracts one column from an aggregated cell.
type Metric struct {
	Name string // short column label, also the CSV header
	Unit string
	Get  func(*core.Aggregate) (mean, ci float64)
}

// Standard metric extractors.
var (
	MetricDelay = Metric{"delay", "s", func(a *core.Aggregate) (float64, float64) {
		return a.MeanDelay.Mean(), a.MeanDelay.CI95()
	}}
	MetricP95 = Metric{"p95", "s", func(a *core.Aggregate) (float64, float64) {
		return a.P95Delay.Mean(), a.P95Delay.CI95()
	}}
	MetricP99 = Metric{"p99", "s", func(a *core.Aggregate) (float64, float64) {
		return a.P99Delay.Mean(), a.P99Delay.CI95()
	}}
	MetricP999 = Metric{"p999", "s", func(a *core.Aggregate) (float64, float64) {
		return a.P999Delay.Mean(), a.P999Delay.CI95()
	}}
	MetricHit = Metric{"hit", "ratio", func(a *core.Aggregate) (float64, float64) {
		return a.HitRatio.Mean(), a.HitRatio.CI95()
	}}
	MetricUplink = Metric{"uplink", "req/ans", func(a *core.Aggregate) (float64, float64) {
		return a.UplinkPerAns.Mean(), a.UplinkPerAns.CI95()
	}}
	MetricOverhead = Metric{"overhead", "b/s", func(a *core.Aggregate) (float64, float64) {
		return a.OverheadBps.Mean(), a.OverheadBps.CI95()
	}}
	MetricEnergy = Metric{"energy", "J/query", func(a *core.Aggregate) (float64, float64) {
		return a.EnergyPerQuery.Mean(), a.EnergyPerQuery.CI95()
	}}
	MetricUtil = Metric{"util", "frac", func(a *core.Aggregate) (float64, float64) {
		return a.DownlinkUtil.Mean(), a.DownlinkUtil.CI95()
	}}
	MetricLoss = Metric{"rpt-loss", "frac", func(a *core.Aggregate) (float64, float64) {
		return a.ReportLoss.Mean(), a.ReportLoss.CI95()
	}}
	MetricDrops = Metric{"drops", "/client/h", func(a *core.Aggregate) (float64, float64) {
		return a.CacheDropsRate.Mean(), a.CacheDropsRate.CI95()
	}}
	MetricHandoffs = Metric{"handoff", "/client/h", func(a *core.Aggregate) (float64, float64) {
		return a.HandoffRate.Mean(), a.HandoffRate.CI95()
	}}
	MetricRecovery = Metric{"recovery", "s", func(a *core.Aggregate) (float64, float64) {
		return a.RecoveryDelay.Mean(), a.RecoveryDelay.CI95()
	}}
	MetricRetries = Metric{"retries", "/query", func(a *core.Aggregate) (float64, float64) {
		return a.RetriesPerQuery.Mean(), a.RetriesPerQuery.CI95()
	}}
	MetricOutageLoss = Metric{"out-lost", "/client/h", func(a *core.Aggregate) (float64, float64) {
		return a.OutageLossRate.Mean(), a.OutageLossRate.CI95()
	}}
)

// Point is one x-axis value of a sweep.
type Point struct {
	X      float64
	Label  string
	Mutate func(*core.Config)
}

// Experiment is one figure or table of the evaluation.
type Experiment struct {
	ID         string
	Title      string
	XLabel     string
	Algorithms []string
	Points     []Point
	Metrics    []Metric

	// Scale multiplies the default horizon; heavy sweeps use < 1.
	Scale float64
}

// CellPerf summarizes the execution performance of one cell's replications —
// wall-clock telemetry about the sweep itself, kept separate from the
// simulation outputs so tables and CSVs stay deterministic.
type CellPerf struct {
	WallSec       float64 // summed across replications (CPU-seconds of sim work)
	Events        uint64  // DES events executed, summed
	EventsPerSec  float64 // Events / WallSec
	PeakHeapBytes uint64  // max heap any replication observed (shared-heap approximation)
}

// perfOf reduces the perf fields of a cell's completed replications.
func perfOf(runs []*core.RunStats) *CellPerf {
	p := &CellPerf{}
	for _, r := range runs {
		p.WallSec += r.WallSec
		p.Events += r.Events
		if r.HeapAllocBytes > p.PeakHeapBytes {
			p.PeakHeapBytes = r.HeapAllocBytes
		}
	}
	if p.WallSec > 0 {
		p.EventsPerSec = float64(p.Events) / p.WallSec
	}
	return p
}

// Cell is the aggregated outcome of one (point, algorithm) pair.
type Cell struct {
	Point Point
	Algo  string
	Agg   *core.Aggregate
	Err   error

	// Perf is the cell's execution-performance summary; nil for cells
	// restored from a checkpoint (they did not run in this process).
	Perf *CellPerf
}

// Result is a completed experiment.
type Result struct {
	Exp   *Experiment
	Reps  int
	Cells []Cell
}

// Progress is a snapshot of sweep completion, delivered to
// Options.Progress after every finished unit (one replication). Units
// restored from a checkpoint are excluded from the unit counts but show
// up as already-done cells.
type Progress struct {
	DoneUnits  int // replications finished so far
	TotalUnits int // replications the schedule will run
	DoneCells  int
	TotalCells int
	Cell       string        // most recently advanced cell, "EXP algo x=label"
	ETA        time.Duration // remaining wall-clock estimate; 0 until measurable
}

// Options configures a run of the harness.
type Options struct {
	Base     core.Config // base configuration each point mutates
	Reps     int
	Workers  int // global (cell × replication) pool size; ≤0 means GOMAXPROCS
	Progress func(Progress)

	// CellWorkers splits the worker budget between replications and the
	// epoch-parallel lanes inside each one: every unit runs with
	// core.Config.Parallel set and this many lane workers, and the outer
	// replication pool shrinks to Workers/CellWorkers (floor 1) so the total
	// concurrency stays at Workers. Useful when a sweep has fewer pending
	// replications than cores — the spare cores then help inside each run.
	// ≤ 1 keeps the classic one-goroutine-per-replication schedule.
	// Single-cell points silently run serial (the core gate), and parallel
	// results differ from serial ones, so do not mix CellWorkers settings
	// against one Checkpoint file (restore does not distinguish the modes).
	CellWorkers int

	// Checkpoint, when non-nil, is consulted before scheduling: cells it
	// already records are restored without rerunning, and every cell this
	// run completes is appended to it (plus one perf line per cell).
	Checkpoint *Checkpoint

	// Monitor, when non-nil, receives live telemetry from the worker pool:
	// unit start/finish, cell completions, and per-algorithm DES event
	// counts (via each replication's event pulse). wdcsweep serves it over
	// HTTP next to pprof when -debug-addr is set.
	Monitor *obs.SweepMonitor
}

// DefaultBase returns the evaluation's base configuration.
func DefaultBase() core.Config { return core.DefaultConfig() }

// cellConfig derives one cell's concrete configuration from the base.
func cellConfig(e *Experiment, base core.Config, p Point, algo string) core.Config {
	cfg := base
	if e.Scale > 0 && e.Scale != 1 {
		cfg.Horizon = des.Duration(float64(cfg.Horizon) * e.Scale)
		if cfg.Warmup >= cfg.Horizon {
			cfg.Warmup = cfg.Horizon / 4
		}
	}
	p.Mutate(&cfg)
	cfg.Algorithm = algo
	return cfg
}

// cellState tracks one (experiment, point, algorithm) cell through the
// flattened scheduler. pending, runs and err are guarded by the pool mutex.
type cellState struct {
	res     *Result
	idx     int // index into res.Cells
	exp     *Experiment
	point   Point
	algo    string
	cfg     core.Config // fully mutated; replication i runs at cfg.Seed+i
	runs    []*core.RunStats
	pending int
	err     error
}

func (c *cellState) String() string {
	return fmt.Sprintf("%s %s x=%s", c.exp.ID, c.algo, c.point.Label)
}

// Run executes the experiment: every (point, algorithm) cell with Reps
// replications, scheduled as one flat pool of per-replication units.
func (e *Experiment) Run(opt Options) (*Result, error) {
	return e.RunCtx(context.Background(), opt)
}

// RunCtx is Run with cancellation: a cancelled ctx stops the pool and
// returns the context's error.
func (e *Experiment) RunCtx(ctx context.Context, opt Options) (*Result, error) {
	rs, err := RunAll(ctx, []*Experiment{e}, opt)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// RunAll executes several experiments through one bounded worker pool of
// (experiment, point, algorithm, replication) units, so a sweep with few
// cells no longer serializes on them — every worker stays busy until the
// whole schedule drains. Replication i of a cell runs at seed cfg.Seed+i
// with fully independent state, and each finished cell is reduced in
// replication order, so results are byte-identical for every worker
// count. The first failing unit cancels the rest (fail-fast); completed
// cells are appended to opt.Checkpoint as they finish, and cells already
// recorded there are restored without running. On error the partially
// filled results are returned alongside it; missing cells have a nil Agg.
func RunAll(ctx context.Context, exps []*Experiment, opt Options) ([]*Result, error) {
	if opt.Reps <= 0 {
		opt.Reps = 5
	}
	// Traces must end at a complete record even when the sweep dies early —
	// fail-fast cancellation, a failed replication — so flush the trace
	// sink's buffered tail on every exit path, not just clean completion.
	if f, ok := opt.Base.Tracer.(interface{ Flush() error }); ok {
		defer f.Flush()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.CellWorkers > 1 {
		workers /= opt.CellWorkers
		if workers < 1 {
			workers = 1
		}
	}

	// Lay out every cell of every experiment in deterministic order,
	// restoring checkpointed cells instead of scheduling them.
	results := make([]*Result, len(exps))
	var cells []*cellState
	var algoList []string // unique algorithms scheduled, in first-seen order
	algoSeen := map[string]bool{}
	restored := 0
	for xi, e := range exps {
		algos := e.Algorithms
		if len(algos) == 0 {
			algos = append([]string(nil), allAlgos...)
		}
		res := &Result{Exp: e, Reps: opt.Reps, Cells: make([]Cell, 0, len(e.Points)*len(algos))}
		results[xi] = res
		for _, p := range e.Points {
			for _, a := range algos {
				idx := len(res.Cells)
				res.Cells = append(res.Cells, Cell{Point: p, Algo: a})
				cfg := cellConfig(e, opt.Base, p, a)
				if opt.Checkpoint != nil {
					if agg := opt.Checkpoint.restore(e.ID, p.Label, a, cfg, opt.Reps); agg != nil {
						res.Cells[idx].Agg = agg
						restored++
						continue
					}
				}
				cs := &cellState{
					res: res, idx: idx, exp: e, point: p, algo: a,
					cfg: cfg, runs: make([]*core.RunStats, opt.Reps),
					pending: opt.Reps,
				}
				if opt.CellWorkers > 1 {
					cs.cfg.Parallel = true
					cs.cfg.ParallelWorkers = opt.CellWorkers
				}
				if mon := opt.Monitor; mon != nil {
					// Feed the live event counters from each replication's
					// scheduler pulse. The hook is process-local and excluded
					// from every persisted or aggregated output, so attaching
					// it cannot change results.
					algo := a
					cs.cfg.OnEventPulse = func(delta uint64) { mon.AddEvents(algo, delta) }
					// Likewise feed windowed per-cell rollups into the
					// monitor's live /debug/sweep and /metrics views.
					// Collection is lazy (no scheduled events), so this hook
					// is result-invariant too (TestRollupsDoNotPerturb).
					// Skipped under CellWorkers: an attached rollup sink
					// assumes the serial observation order and would silently
					// force every replication back to serial execution.
					if opt.CellWorkers <= 1 {
						cs.cfg.Rollup = mon.RollupSink()
					}
				}
				cells = append(cells, cs)
				if !algoSeen[a] {
					algoSeen[a] = true
					algoList = append(algoList, a)
				}
			}
		}
	}

	totalUnits := len(cells) * opt.Reps
	totalCells := restored + len(cells)
	if workers > totalUnits {
		workers = totalUnits
	}
	if opt.Monitor != nil {
		opt.Monitor.Begin(workers, totalUnits, totalCells, algoList)
		for i := 0; i < restored; i++ {
			opt.Monitor.CellDone() // checkpointed cells count as already finished
		}
	}

	var mu sync.Mutex // guards cell state, counters, and checkpoint errors
	doneUnits, doneCells := 0, restored
	start := time.Now()
	report := func(cell string) {
		if opt.Progress == nil {
			return
		}
		var eta time.Duration
		if doneUnits > 0 && doneUnits < totalUnits {
			eta = time.Duration(float64(time.Since(start)) / float64(doneUnits) *
				float64(totalUnits-doneUnits))
		}
		opt.Progress(Progress{
			DoneUnits: doneUnits, TotalUnits: totalUnits,
			DoneCells: doneCells, TotalCells: totalCells,
			Cell: cell, ETA: eta,
		})
	}
	if restored > 0 {
		mu.Lock()
		report("(checkpoint)")
		mu.Unlock()
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var ckptErr error

	type unit struct {
		cell *cellState
		rep  int
	}
	finish := func(u unit, r *core.RunStats, err error) {
		mu.Lock()
		defer mu.Unlock()
		c := u.cell
		c.runs[u.rep] = r
		if err != nil && c.err == nil {
			c.err = fmt.Errorf("replication %d: %w", u.rep, err)
		}
		doneUnits++
		c.pending--
		if c.pending > 0 {
			report(c.String())
			return
		}
		// Last replication of the cell: reduce in replication order.
		if c.err == nil {
			agg := core.AggregateRuns(c.cfg, c.runs)
			c.res.Cells[c.idx].Agg = agg
			perf := perfOf(c.runs)
			c.res.Cells[c.idx].Perf = perf
			if opt.Checkpoint != nil {
				if err := opt.Checkpoint.record(c.exp.ID, c.point, c.algo, c.cfg, agg); err != nil && ckptErr == nil {
					ckptErr = err
				}
				if err := opt.Checkpoint.recordPerf(c.exp.ID, c.point, c.algo, perf); err != nil && ckptErr == nil {
					ckptErr = err
				}
			}
		} else {
			c.res.Cells[c.idx].Err = c.err
		}
		doneCells++
		if opt.Monitor != nil {
			opt.Monitor.CellDone()
		}
		report(c.String())
	}

	work := make(chan unit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := core.NewArena() // per-worker: consecutive units recycle state
			for u := range work {
				if opt.Monitor != nil {
					opt.Monitor.UnitStart()
				}
				var r *core.RunStats
				err := rctx.Err() // fail-fast: skip work after cancellation
				if err == nil {
					r, err = core.RunRepArena(rctx, u.cell.cfg, u.rep, arena)
				}
				if err != nil {
					cancel()
				}
				if opt.Monitor != nil && r != nil && r.Epochs > 0 {
					opt.Monitor.AddEpochs(r.Epochs)
				}
				finish(u, r, err)
				if opt.Monitor != nil {
					opt.Monitor.UnitDone(u.cell.algo)
				}
			}
		}()
	}
	for _, c := range cells {
		for i := 0; i < opt.Reps; i++ {
			work <- unit{c, i}
		}
	}
	close(work)
	wg.Wait()

	// Surface the first real failure in schedule order; cancellation
	// fallout only matters when nothing else explains the stop.
	cellErr := func(c *cellState) error {
		return fmt.Errorf("experiment %s (%s, x=%s): %w", c.exp.ID, c.algo, c.point.Label, c.err)
	}
	for _, c := range cells {
		if c.err != nil && !errors.Is(c.err, context.Canceled) &&
			!errors.Is(c.err, context.DeadlineExceeded) {
			return results, cellErr(c)
		}
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	for _, c := range cells {
		if c.err != nil {
			return results, cellErr(c)
		}
	}
	if ckptErr != nil {
		return results, fmt.Errorf("experiment: checkpoint: %w", ckptErr)
	}
	return results, nil
}

// algos lists the algorithms present in the result, in canonical order.
func (r *Result) algos() []string {
	seen := map[string]int{}
	var out []string
	for _, c := range r.Cells {
		if _, ok := seen[c.Algo]; !ok {
			seen[c.Algo] = len(out)
			out = append(out, c.Algo)
		}
	}
	return out
}

// cell finds the cell for (label, algo).
func (r *Result) cell(label, algo string) *Cell {
	for i := range r.Cells {
		if r.Cells[i].Point.Label == label && r.Cells[i].Algo == algo {
			return &r.Cells[i]
		}
	}
	return nil
}

// labels lists the point labels in sweep order.
func (r *Result) labels() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Point.Label] {
			seen[c.Point.Label] = true
			out = append(out, c.Point.Label)
		}
	}
	return out
}

// Table renders one aligned text block per metric: rows are sweep points,
// columns are algorithms, entries mean±ci.
func (r *Result) Table() string {
	var b strings.Builder
	algos := r.algos()
	fmt.Fprintf(&b, "== %s: %s (reps=%d) ==\n", r.Exp.ID, r.Exp.Title, r.Reps)
	for _, m := range r.Exp.Metrics {
		fmt.Fprintf(&b, "-- %s [%s] --\n", m.Name, m.Unit)
		fmt.Fprintf(&b, "%-12s", r.Exp.XLabel)
		for _, a := range algos {
			fmt.Fprintf(&b, " %16s", a)
		}
		b.WriteByte('\n')
		for _, label := range r.labels() {
			fmt.Fprintf(&b, "%-12s", label)
			for _, a := range algos {
				c := r.cell(label, a)
				if c == nil || c.Agg == nil { // cancelled or failed cell
					fmt.Fprintf(&b, " %9s±%-6s", "-", "-")
					continue
				}
				mean, ci := m.Get(c.Agg)
				fmt.Fprintf(&b, " %9s±%-6s", fmtG(mean), fmtG(ci))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// PerfTable renders the per-cell execution-performance summary (wall time,
// events, throughput, peak heap). It reflects this process's work only:
// checkpoint-restored cells print "-". Unlike Table/CSV the values are
// machine-dependent, so callers should keep it out of deterministic outputs.
func (r *Result) PerfTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s perf (reps=%d) ==\n", r.Exp.ID, r.Reps)
	fmt.Fprintf(&b, "%-12s %-8s %9s %12s %12s %9s\n",
		r.Exp.XLabel, "algo", "wall_s", "events", "ev/s", "heap_MB")
	for _, label := range r.labels() {
		for _, a := range r.algos() {
			c := r.cell(label, a)
			if c == nil || c.Perf == nil { // restored, cancelled, or failed
				fmt.Fprintf(&b, "%-12s %-8s %9s %12s %12s %9s\n", label, a, "-", "-", "-", "-")
				continue
			}
			p := c.Perf
			fmt.Fprintf(&b, "%-12s %-8s %9.2f %12d %12.0f %9.1f\n",
				label, a, p.WallSec, p.Events, p.EventsPerSec, float64(p.PeakHeapBytes)/(1<<20))
		}
	}
	return b.String()
}

func fmtG(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// CSV renders the result as long-form CSV: one row per (x, algo) with one
// mean and ci column pair per metric.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,x,label,algorithm")
	for _, m := range r.Exp.Metrics {
		fmt.Fprintf(&b, ",%s_mean,%s_ci95", m.Name, m.Name)
	}
	b.WriteByte('\n')
	cells := append([]Cell(nil), r.Cells...)
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Point.X != cells[j].Point.X {
			return cells[i].Point.X < cells[j].Point.X
		}
		return cells[i].Algo < cells[j].Algo
	})
	for _, c := range cells {
		fmt.Fprintf(&b, "%s,%g,%s,%s", r.Exp.ID, c.Point.X, c.Point.Label, c.Algo)
		for _, m := range r.Exp.Metrics {
			if c.Agg == nil { // cancelled or failed cell
				b.WriteString(",-,-")
				continue
			}
			mean, ci := m.Get(c.Agg)
			fmt.Fprintf(&b, ",%g,%g", mean, ci)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
