package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMonitorFedByRunAll wires a SweepMonitor through a small sweep and
// checks the counters land: all units and cells accounted, simulation
// events attributed per algorithm, no worker left marked busy.
func TestMonitorFedByRunAll(t *testing.T) {
	exp := ckptExperiment("ts", "sig")
	var mon obs.SweepMonitor
	res, err := exp.Run(Options{Base: tinyBase(), Reps: 2, Workers: 2, Monitor: &mon})
	if err != nil {
		t.Fatal(err)
	}
	s := mon.Snapshot(time.Now())
	if s.UnitsDone != 8 || s.UnitsTotal != 8 { // 2 points × 2 algos × 2 reps
		t.Fatalf("units %d/%d", s.UnitsDone, s.UnitsTotal)
	}
	if s.CellsDone != 4 || s.CellsTotal != 4 {
		t.Fatalf("cells %d/%d", s.CellsDone, s.CellsTotal)
	}
	if s.BusyWorkers != 0 {
		t.Fatalf("workers still busy: %d", s.BusyWorkers)
	}
	if s.Events == 0 || s.ETASec != 0 {
		t.Fatalf("events=%d eta=%v", s.Events, s.ETASec)
	}
	if len(s.Algos) != 2 {
		t.Fatalf("algo breakdown %+v", s.Algos)
	}
	var evSum uint64
	for _, a := range s.Algos {
		if a.UnitsDone != 4 || a.Events == 0 {
			t.Fatalf("algo %s: units=%d events=%d", a.Algo, a.UnitsDone, a.Events)
		}
		evSum += a.Events
	}
	if evSum != s.Events {
		t.Fatalf("per-algo events %d != total %d", evSum, s.Events)
	}

	// Perf summaries are populated for every cell that actually ran.
	for _, c := range res.Cells {
		if c.Perf == nil || c.Perf.Events == 0 || c.Perf.WallSec <= 0 {
			t.Fatalf("cell %s/%s missing perf: %+v", c.Algo, c.Point.Label, c.Perf)
		}
	}
	if pt := res.PerfTable(); !strings.Contains(pt, "ev/s") || strings.Contains(pt, " -\n") {
		t.Fatalf("perf table incomplete:\n%s", pt)
	}
}

// TestMonitorDoesNotPerturbResults runs the same sweep monitored and
// unmonitored: tables, CSVs, and the checkpointed cell records must be
// byte-identical — the telemetry path may not leak into results.
func TestMonitorDoesNotPerturbResults(t *testing.T) {
	run := func(dir string, mon *obs.SweepMonitor) (string, []string) {
		path := filepath.Join(dir, CheckpointName)
		ck, err := OpenCheckpoint(path, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ckptExperiment("ts").Run(Options{
			Base: tinyBase(), Reps: 2, Workers: 2, Checkpoint: ck, Monitor: mon,
		})
		if err != nil {
			t.Fatal(err)
		}
		ck.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Keep only cell-record lines; perf lines are wall-clock dependent.
		// Records are appended as cells finish, so with Workers > 1 the file
		// order depends on goroutine scheduling — sort so the comparison sees
		// only content, which must be byte-identical.
		var cellLines []string
		for _, line := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(line) == "" || strings.Contains(line, `"perf"`) {
				continue
			}
			cellLines = append(cellLines, line)
		}
		sort.Strings(cellLines)
		return res.Table() + res.CSV(), cellLines
	}

	var mon obs.SweepMonitor
	plainOut, plainCells := run(t.TempDir(), nil)
	monOut, monCells := run(t.TempDir(), &mon)
	if plainOut != monOut {
		t.Fatalf("monitoring changed rendered results:\n--- plain ---\n%s\n--- monitored ---\n%s", plainOut, monOut)
	}
	if strings.Join(plainCells, "\n") != strings.Join(monCells, "\n") {
		t.Fatalf("monitoring changed checkpoint cell records:\n--- plain ---\n%v\n--- monitored ---\n%v", plainCells, monCells)
	}
}

// TestCheckpointPerfLines checks every completed cell writes one perf line,
// that the line decodes, and that resume ignores perf lines entirely.
func TestCheckpointPerfLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), CheckpointName)
	ck, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckptExperiment("ts").Run(Options{Base: tinyBase(), Reps: 2, Workers: 2, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var perfs []PerfRecord
	cellLines := 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var probe struct {
			Perf json.RawMessage `json:"perf"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("bad checkpoint line %q: %v", line, err)
		}
		if probe.Perf == nil {
			cellLines++
			continue
		}
		var p PerfRecord
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("bad perf line %q: %v", line, err)
		}
		perfs = append(perfs, p)
	}
	if cellLines != 2 || len(perfs) != 2 {
		t.Fatalf("got %d cell lines, %d perf lines; want 2 and 2", cellLines, len(perfs))
	}
	for _, p := range perfs {
		if p.Exp != "CK" || p.Algo != "ts" || p.Events == 0 || p.WallSec <= 0 {
			t.Fatalf("implausible perf record %+v", p)
		}
	}

	// Resume restores from the cell records and skips perf lines.
	ck2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != 2 {
		t.Fatalf("resume loaded %d cells, want 2", ck2.Len())
	}
	var last Progress
	res, err := ckptExperiment("ts").Run(Options{
		Base: tinyBase(), Reps: 2, Workers: 2, Checkpoint: ck2,
		Progress: func(p Progress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.TotalUnits != 0 {
		t.Fatalf("resume scheduled work: %+v", last)
	}
	// Restored cells ran in another process: no perf, rendered as "-".
	for _, c := range res.Cells {
		if c.Perf != nil {
			t.Fatalf("restored cell has perf %+v", c.Perf)
		}
	}
	if pt := res.PerfTable(); !strings.Contains(pt, "-") {
		t.Fatalf("perf table should dash restored cells:\n%s", pt)
	}
}
