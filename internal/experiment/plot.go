package experiment

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers distinguish series in an ASCII chart.
var markers = []byte{'o', 'x', '+', '*', '#', '@', '%', '&', '$'}

// Chart renders series as an ASCII scatter/line chart of the given plot
// area size (excluding axes). Coinciding points show the later series'
// marker. NaN points are skipped.
func Chart(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if !any {
		return title + ": no data\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little headroom so extreme points do not sit on the frame.
	ymax += (ymax - ymin) * 0.05

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	for si, s := range series {
		mark := markers[si%len(markers)]
		// Connect consecutive points with interpolated marks so trends read
		// as lines.
		type pt struct{ x, y float64 }
		var pts []pt
		for i := range s.X {
			if !math.IsNaN(s.X[i]) && !math.IsNaN(s.Y[i]) {
				pts = append(pts, pt{s.X[i], s.Y[i]})
			}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
		for i := range pts {
			if i > 0 {
				c0, r0 := col(pts[i-1].x), row(pts[i-1].y)
				c1, r1 := col(pts[i].x), row(pts[i].y)
				steps := max(abs(c1-c0), abs(r1-r0))
				for k := 1; k < steps; k++ {
					cc := c0 + (c1-c0)*k/steps
					rr := r0 + (r1-r0)*k/steps
					if grid[rr][cc] == ' ' {
						grid[rr][cc] = '.'
					}
				}
			}
			grid[row(pts[i].y)][col(pts[i].x)] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yLab := [2]string{trimNum(ymax), trimNum(ymin)}
	labW := max(len(yLab[0]), len(yLab[1]))
	for r := 0; r < height; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%*s |", labW, yLab[0])
		case height - 1:
			fmt.Fprintf(&b, "%*s |", labW, yLab[1])
		default:
			fmt.Fprintf(&b, "%*s |", labW, "")
		}
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%*s +%s\n", labW, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%*s  %-*s%s\n", labW, "", width-len(trimNum(xmax)), trimNum(xmin), trimNum(xmax))
	fmt.Fprintf(&b, "%*s  x: %s   y: %s\n", labW, "", xlabel, ylabel)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%*s  %s\n", labW, "", strings.Join(legend, "  "))
	return b.String()
}

func trimNum(v float64) string {
	s := strconv.FormatFloat(v, 'g', 4, 64)
	return s
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Chart renders one metric of a completed experiment as an ASCII chart.
func (r *Result) Chart(m Metric, width, height int) string {
	var series []Series
	for _, algo := range r.algos() {
		s := Series{Name: algo}
		for _, label := range r.labels() {
			c := r.cell(label, algo)
			if c == nil || c.Agg == nil { // cancelled or failed cell
				continue
			}
			mean, _ := m.Get(c.Agg)
			s.X = append(s.X, c.Point.X)
			s.Y = append(s.Y, mean)
		}
		series = append(series, s)
	}
	title := fmt.Sprintf("%s: %s — %s [%s]", r.Exp.ID, r.Exp.Title, m.Name, m.Unit)
	return Chart(title, r.Exp.XLabel, m.Name+" ["+m.Unit+"]", series, width, height)
}

// ParseCSV reads back the long-form CSV written by Result.CSV and returns
// one Series per (algorithm, metric) for the requested metric column.
func ParseCSV(data string, metricName string) (xlabel string, series []Series, err error) {
	lines := strings.Split(strings.TrimSpace(data), "\n")
	if len(lines) < 2 {
		return "", nil, fmt.Errorf("experiment: CSV too short")
	}
	header := strings.Split(lines[0], ",")
	colIdx := -1
	for i, h := range header {
		if h == metricName+"_mean" {
			colIdx = i
		}
	}
	if colIdx < 0 {
		var have []string
		for _, h := range header {
			if cut, ok := strings.CutSuffix(h, "_mean"); ok {
				have = append(have, cut)
			}
		}
		return "", nil, fmt.Errorf("experiment: metric %q not in CSV (have %v)", metricName, have)
	}
	byAlgo := map[string]*Series{}
	var order []string
	for ln, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return "", nil, fmt.Errorf("experiment: CSV row %d has %d fields, want %d", ln+2, len(fields), len(header))
		}
		x, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return "", nil, fmt.Errorf("experiment: CSV row %d x: %w", ln+2, err)
		}
		y, err := strconv.ParseFloat(fields[colIdx], 64)
		if err != nil {
			return "", nil, fmt.Errorf("experiment: CSV row %d y: %w", ln+2, err)
		}
		algo := fields[3]
		s, ok := byAlgo[algo]
		if !ok {
			s = &Series{Name: algo}
			byAlgo[algo] = s
			order = append(order, algo)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	for _, a := range order {
		series = append(series, *byAlgo[a])
	}
	return header[1], series, nil
}
