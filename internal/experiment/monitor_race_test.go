package experiment

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMultiCellSweepMonitorRace drives a multi-cell sweep through the worker
// pool while hammering the attached obs.SweepMonitor from concurrent pollers
// — one calling Snapshot directly, one scraping ServeHTTP the way the
// wdcsweep debug endpoint does. Under `make check` this file runs with the
// race detector, locking in that the handle-indexed simulation state and the
// monitor's counters introduce no data races. It also pins the monitor
// contract RunAll documents: attaching one must not change results.
func TestMultiCellSweepMonitorRace(t *testing.T) {
	base := tinyBase()
	base.Topology.NumCells = 4

	exp := ckptExperiment("ts", "tair")

	// Reference run: no monitor attached.
	want, err := RunAll(context.Background(), []*Experiment{exp}, Options{
		Base: base, Reps: 2, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	mon := &obs.SweepMonitor{}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := mon.Snapshot(time.Now())
			if snap.UnitsDone > snap.UnitsTotal {
				t.Errorf("snapshot units done %d > total %d", snap.UnitsDone, snap.UnitsTotal)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			rec := httptest.NewRecorder()
			mon.ServeHTTP(rec, nil)
		}
	}()

	got, err := RunAll(context.Background(), []*Experiment{exp}, Options{
		Base: base, Reps: 2, Workers: 2, Monitor: mon,
	})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if want[0].CSV() != got[0].CSV() {
		t.Fatal("attaching a polled SweepMonitor changed sweep results")
	}
	snap := mon.Snapshot(time.Now())
	if snap.UnitsDone != snap.UnitsTotal || snap.UnitsDone == 0 {
		t.Fatalf("monitor saw %d/%d units after completion", snap.UnitsDone, snap.UnitsTotal)
	}
	if snap.Events == 0 {
		t.Fatal("monitor recorded no DES events from the replication pulses")
	}
}
