package experiment

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/mobility"
	"repro/internal/topology"
)

// allAlgos is the canonical presentation order.
var allAlgos = []string{"ts", "at", "sig", "bs", "uir", "tair", "lair", "hybrid"}

// points builds a sweep from x values with a formatter and mutator.
func points(xs []float64, label func(float64) string, mutate func(*core.Config, float64)) []Point {
	out := make([]Point, len(xs))
	for i, x := range xs {
		x := x
		out[i] = Point{X: x, Label: label(x), Mutate: func(c *core.Config) { mutate(c, x) }}
	}
	return out
}

func gLabel(x float64) string { return fmt.Sprintf("%g", x) }

// Registry returns every experiment of the evaluation, in presentation
// order. The definitions are data; Run does the work.
func Registry() []*Experiment {
	return []*Experiment{
		{
			ID: "F1", Title: "Mean query delay vs. update rate",
			XLabel: "updates/s",
			Points: points([]float64{0.02, 0.1, 0.5, 1, 2, 5}, gLabel,
				func(c *core.Config, x float64) { c.DB.UpdateRate = x }),
			Metrics: []Metric{MetricDelay, MetricP95, MetricP99},
		},
		{
			ID: "F2", Title: "Cache hit ratio vs. update rate",
			XLabel: "updates/s",
			Points: points([]float64{0.02, 0.1, 0.5, 1, 2, 5}, gLabel,
				func(c *core.Config, x float64) { c.DB.UpdateRate = x }),
			Metrics: []Metric{MetricHit, MetricUplink},
		},
		{
			ID: "F3", Title: "Mean query delay vs. per-client query rate",
			XLabel: "queries/s",
			Points: points([]float64{0.02, 0.05, 0.1, 0.2, 0.3}, gLabel,
				func(c *core.Config, x float64) { c.Workload.QueryRate = x }),
			Metrics: []Metric{MetricDelay, MetricHit},
		},
		{
			ID: "F4", Title: "Mean query delay vs. downlink background load",
			XLabel: "load",
			Points: points([]float64{0, 0.2, 0.4, 0.6, 0.8}, gLabel,
				func(c *core.Config, x float64) { c.TrafficLoad = x }),
			Metrics: []Metric{MetricDelay, MetricP95, MetricP99, MetricUtil},
		},
		{
			ID: "F5", Title: "Invalidation overhead vs. downlink background load",
			XLabel: "load",
			Points: points([]float64{0, 0.2, 0.4, 0.6, 0.8}, gLabel,
				func(c *core.Config, x float64) { c.TrafficLoad = x }),
			Metrics: []Metric{MetricOverhead, MetricEnergy},
		},
		{
			ID: "F6", Title: "Mean query delay vs. population mean SNR",
			XLabel: "snr dB",
			Points: points([]float64{6, 10, 14, 18, 24, 30}, gLabel,
				func(c *core.Config, x float64) { c.Channel.MeanSNRdB = x }),
			Metrics: []Metric{MetricDelay, MetricHit},
		},
		{
			ID: "F7", Title: "Report loss and forced cache drops vs. mean SNR",
			XLabel: "snr dB",
			Points: points([]float64{6, 10, 14, 18, 24, 30}, gLabel,
				func(c *core.Config, x float64) { c.Channel.MeanSNRdB = x }),
			Metrics: []Metric{MetricLoss, MetricDrops},
		},
		{
			ID: "F8", Title: "Mean query delay vs. disconnection (sleep) ratio",
			XLabel: "sleep",
			Points: points([]float64{0, 0.2, 0.4, 0.6, 0.8}, gLabel,
				func(c *core.Config, x float64) {
					c.Workload.SleepRatio = x
					c.Workload.AwakeMeanSec = 80
				}),
			Metrics: []Metric{MetricDelay, MetricHit, MetricDrops},
		},
		{
			ID: "F9", Title: "Scalability vs. number of clients",
			XLabel: "clients",
			Scale:  0.5,
			Points: points([]float64{25, 50, 100, 200, 400}, gLabel,
				func(c *core.Config, x float64) { c.NumClients = int(x) }),
			Metrics: []Metric{MetricDelay, MetricUplink, MetricUtil},
		},
		{
			ID: "F10", Title: "Access skew sweep (Zipf theta)",
			XLabel: "theta",
			Points: points([]float64{0, 0.4, 0.8, 1.0, 1.2}, gLabel,
				func(c *core.Config, x float64) { c.Workload.Zipf = x }),
			Metrics: []Metric{MetricHit, MetricDelay},
		},
		{
			ID: "T1", Title: "Default-configuration algorithm matrix",
			XLabel: "config",
			Points: []Point{{X: 0, Label: "default", Mutate: func(*core.Config) {}}},
			Metrics: []Metric{MetricDelay, MetricP95, MetricP99, MetricHit, MetricUplink,
				MetricOverhead, MetricEnergy, MetricDrops},
		},
		{
			ID: "T2", Title: "Fading speed (Doppler) matrix",
			XLabel: "doppler Hz",
			Points: points([]float64{1, 6, 30, 120}, gLabel,
				func(c *core.Config, x float64) { c.Channel.DopplerHz = x }),
			Metrics: []Metric{MetricDelay, MetricLoss, MetricDrops},
		},
		{
			ID: "T3", Title: "Report interval L trade-off",
			XLabel: "L sec",
			Points: points([]float64{5, 10, 20, 40, 80}, gLabel,
				func(c *core.Config, x float64) {
					c.IR.Interval = des.FromSeconds(x)
					// Keep the traffic-aware band centred on L.
					c.IR.IntervalMin = des.FromSeconds(x / 4)
					c.IR.IntervalMax = des.FromSeconds(x * 2)
				}),
			Metrics: []Metric{MetricDelay, MetricOverhead, MetricDrops},
		},
		{
			ID: "T4", Title: "Coverage window multiplier K trade-off",
			XLabel:     "K",
			Algorithms: []string{"ts", "uir", "lair", "hybrid"},
			Points: points([]float64{1, 2, 4, 8}, gLabel,
				func(c *core.Config, x float64) {
					c.IR.WindowReports = int(x)
					// Stress the window: clients sleep through reports.
					c.Workload.SleepRatio = 0.3
					c.Workload.AwakeMeanSec = 60
				}),
			Metrics: []Metric{MetricDrops, MetricHit, MetricOverhead, MetricDelay},
		},
		{
			ID: "A1", Title: "Ablation: LAIR coverage target",
			XLabel:     "coverage",
			Algorithms: []string{"lair", "hybrid"},
			Points: points([]float64{0.5, 0.65, 0.75, 0.9, 0.99}, gLabel,
				func(c *core.Config, x float64) { c.IR.Coverage = x }),
			Metrics: []Metric{MetricDelay, MetricP95, MetricLoss},
		},
		{
			ID: "A2", Title: "Ablation: downlink scheduling discipline under load",
			XLabel:     "discipline",
			Algorithms: []string{"ts", "uir", "tair", "hybrid"},
			Points: []Point{
				{X: 0, Label: "shared", Mutate: func(c *core.Config) {
					c.TrafficLoad = 0.6
					c.Downlink.StrictPriority = false
				}},
				{X: 1, Label: "strict", Mutate: func(c *core.Config) {
					c.TrafficLoad = 0.6
					c.Downlink.StrictPriority = true
				}},
			},
			Metrics: []Metric{MetricDelay, MetricP95, MetricUtil},
		},
		{
			ID: "A3", Title: "Extension: snooping overheard responses",
			XLabel:     "snoop",
			Algorithms: []string{"ts", "uir", "hybrid"},
			Points: []Point{
				{X: 0, Label: "off", Mutate: func(c *core.Config) { c.SnoopResponses = false }},
				{X: 1, Label: "on", Mutate: func(c *core.Config) { c.SnoopResponses = true }},
			},
			Metrics: []Metric{MetricHit, MetricDelay, MetricEnergy, MetricUplink},
		},
		{
			ID: "A4", Title: "Extension: client mobility (random waypoint) speed sweep",
			XLabel:     "speed m/s",
			Algorithms: []string{"ts", "sig", "lair", "hybrid"},
			Points: append([]Point{{X: 0, Label: "static", Mutate: func(c *core.Config) {
				c.Channel.UseGeometry = true
			}}}, points([]float64{2, 15, 30}, gLabel,
				func(c *core.Config, x float64) {
					c.Channel.UseGeometry = true
					c.Channel.Mobility = &mobility.Config{
						CellRadiusM:  c.Channel.CellRadiusM,
						MinDistanceM: c.Channel.MinDistanceM,
						SpeedMinMps:  x / 2,
						SpeedMaxMps:  x,
						PauseMeanSec: 10,
					}
				})...),
			Metrics: []Metric{MetricDelay, MetricHit, MetricLoss, MetricDrops},
		},
		{
			ID: "A5", Title: "Ablation: cache replacement policy",
			XLabel:     "policy",
			Algorithms: []string{"ts", "hybrid"},
			Points: func() []Point {
				// Replacement only matters when eviction is active: shrink
				// the cache and raise the query rate so caches stay full.
				evict := func(c *core.Config, p cache.Policy) {
					c.CacheCapacity = 40
					c.Workload.QueryRate = 0.25
					c.Workload.Zipf = 1.0
					c.CachePolicy = p
				}
				return []Point{
					{X: 0, Label: "lru", Mutate: func(c *core.Config) { evict(c, cache.LRU) }},
					{X: 1, Label: "fifo", Mutate: func(c *core.Config) { evict(c, cache.FIFO) }},
					{X: 2, Label: "random", Mutate: func(c *core.Config) { evict(c, cache.Random) }},
				}
			}(),
			Metrics: []Metric{MetricHit, MetricDelay, MetricUplink},
		},
		{
			ID: "A6", Title: "Extension: server response coalescing",
			XLabel:     "coalesce",
			Algorithms: []string{"ts", "uir", "hybrid"},
			Points: []Point{
				{X: 0, Label: "off", Mutate: func(c *core.Config) {
					c.CoalesceResponses = false
					c.Workload.Zipf = 1.1 // hot-item regime where sharing pays
					c.DB.UpdateRate = 1
				}},
				{X: 1, Label: "on", Mutate: func(c *core.Config) {
					c.CoalesceResponses = true
					c.Workload.Zipf = 1.1
					c.DB.UpdateRate = 1
				}},
			},
			Metrics: []Metric{MetricDelay, MetricUtil, MetricUplink, MetricHit},
		},
		{
			ID: "M1", Title: "Multi-cell scaling: delay and handoff churn vs. cell count",
			XLabel:     "cells",
			Algorithms: []string{"ts", "sig", "hybrid"},
			Scale:      0.5,
			Points: append([]Point{{X: 1, Label: "1", Mutate: func(c *core.Config) {
				// Single-cell baseline with the same geometry and motion the
				// multi-cell points get, so the x=1 column differs only in
				// sharding, not in channel realism.
				c.Channel.UseGeometry = true
				c.Channel.Mobility = &mobility.Config{
					CellRadiusM:  c.Channel.CellRadiusM,
					MinDistanceM: c.Channel.MinDistanceM,
					SpeedMinMps:  5,
					SpeedMaxMps:  15,
					PauseMeanSec: 10,
				}
			}}}, points([]float64{2, 4, 9}, gLabel,
				func(c *core.Config, x float64) { multiCell(c, int(x), 15) })...),
			Metrics: []Metric{MetricDelay, MetricHit, MetricHandoffs, MetricDrops},
		},
		{
			ID: "M2", Title: "Multi-cell: handoff churn vs. client speed (4 cells)",
			XLabel:     "speed m/s",
			Algorithms: []string{"ts", "sig", "hybrid"},
			Scale:      0.5,
			Points: points([]float64{2, 8, 15, 30}, gLabel,
				func(c *core.Config, x float64) { multiCell(c, 4, x) }),
			Metrics: []Metric{MetricDelay, MetricHit, MetricHandoffs, MetricDrops},
		},
		{
			ID: "M3", Title: "Multi-cell: handoff policy (drop vs. revalidate, 4 cells)",
			XLabel:     "policy",
			Algorithms: []string{"ts", "uir", "hybrid"},
			Scale:      0.5,
			Points: []Point{
				{X: 0, Label: "drop", Mutate: func(c *core.Config) {
					multiCell(c, 4, 15)
					c.Topology.Policy = topology.Drop
				}},
				{X: 1, Label: "revalidate", Mutate: func(c *core.Config) {
					multiCell(c, 4, 15)
					c.Topology.Policy = topology.Revalidate
				}},
			},
			Metrics: []Metric{MetricHit, MetricDelay, MetricUplink, MetricHandoffs},
		},
		{
			ID: "R1", Title: "Resilience: base-station outage length sweep",
			XLabel:     "outage s",
			Algorithms: []string{"ts", "uir", "hybrid"},
			Scale:      0.5,
			Points: points([]float64{0, 10, 30, 60}, gLabel,
				func(c *core.Config, x float64) {
					// The retry layer is armed at every point — including the
					// x=0 baseline — so the columns differ only in the outage
					// schedule, not in client behavior.
					c.Fault.QueryTimeout = des.FromSeconds(3)
					c.Fault.OutageStart = des.FromSeconds(30)
					c.Fault.OutagePeriod = des.FromSeconds(180)
					c.Fault.OutageLen = des.FromSeconds(x)
				}),
			Metrics: []Metric{MetricDelay, MetricP95, MetricP99, MetricOutageLoss, MetricRetries},
		},
		{
			ID: "R2", Title: "Resilience: invalidation-report loss sweep",
			XLabel:     "rpt fault",
			Algorithms: []string{"ts", "at", "sig", "hybrid"},
			Points: points([]float64{0, 0.05, 0.1, 0.2, 0.4}, gLabel,
				func(c *core.Config, x float64) {
					// Split the fault budget: most faulted reports vanish
					// outright, the rest arrive truncated (detected but
					// undecodable), exercising both client-side paths.
					c.Fault.ReportLossProb = 0.75 * x
					c.Fault.ReportTruncProb = 0.25 * x
				}),
			Metrics: []Metric{MetricDelay, MetricHit, MetricDrops, MetricLoss},
		},
		{
			ID: "R3", Title: "Resilience: disconnection recovery policy matrix",
			XLabel:     "recovery",
			Algorithms: []string{"ts", "uir", "hybrid"},
			Scale:      0.5,
			Points: func() []Point {
				disc := func(c *core.Config, p fault.RecoveryPolicy) {
					c.Fault.DisconnectRate = 1.0 / 90
					c.Fault.DisconnectMeanSec = 45
					c.Fault.QueryTimeout = des.FromSeconds(3)
					c.Fault.Recovery = p
				}
				return []Point{
					{X: 0, Label: "window", Mutate: func(c *core.Config) { disc(c, fault.RecoverWindow) }},
					{X: 1, Label: "flush", Mutate: func(c *core.Config) { disc(c, fault.RecoverFlush) }},
					{X: 2, Label: "catchup", Mutate: func(c *core.Config) { disc(c, fault.RecoverCatchup) }},
				}
			}(),
			Metrics: []Metric{MetricRecovery, MetricDelay, MetricHit, MetricDrops},
		},
	}
}

// multiCell shards the run across a grid of cells with vehicular motion at
// the given top speed. The grid inherits the single-cell channel geometry so
// per-cell path loss stays comparable to the legacy baseline.
func multiCell(c *core.Config, cells int, speedMps float64) {
	c.Topology = topology.Config{
		NumCells:     cells,
		CellRadiusM:  c.Channel.CellRadiusM,
		MinDistanceM: c.Channel.MinDistanceM,
		SpeedMinMps:  speedMps / 3,
		SpeedMaxMps:  speedMps,
		PauseMeanSec: 10,
		CheckPeriod:  des.Second,
		Policy:       topology.Drop,
	}
}

// ByID finds one experiment, or nil.
func ByID(id string) *Experiment {
	for _, e := range Registry() {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// IDs lists all experiment identifiers in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}
