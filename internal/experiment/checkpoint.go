package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/core"
)

// CheckpointName is the file RunAll appends to inside the -out directory.
const CheckpointName = "checkpoint.jsonl"

// CellRecord is one completed (experiment, point, algorithm) cell as
// stored in the checkpoint file: one JSON object per line. The guard
// fields (seed, reps, horizon) must match the requesting run for a record
// to be restored, so a checkpoint from a different -seed / -reps /
// -quick invocation is ignored rather than silently mixed in.
type CellRecord struct {
	Exp        string           `json:"exp"`
	X          float64          `json:"x"`
	Label      string           `json:"label"`
	Algo       string           `json:"algo"`
	Seed       uint64           `json:"seed"`
	Reps       int              `json:"reps"`
	HorizonSec float64          `json:"horizon_sec"`
	Runs       []core.RepValues `json:"runs"`
}

// PerfRecord mirrors CellPerf in the checkpoint file: one line per completed
// cell, alongside its CellRecord. The "perf" key doubles as the line
// discriminator so resume loading can tell perf telemetry from cell results.
// Perf lines are informational only — they carry no guard fields and are
// never restored, and they are appended whether or not tracing is enabled,
// so the CellRecord lines stay byte-identical either way.
type PerfRecord struct {
	Exp           string  `json:"perf"`
	X             float64 `json:"x"`
	Label         string  `json:"label"`
	Algo          string  `json:"algo"`
	WallSec       float64 `json:"wall_sec"`
	Events        uint64  `json:"events"`
	EventsPerSec  float64 `json:"events_per_sec"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
}

// Checkpoint is an append-only record of completed sweep cells. Each
// append is one short write to an O_APPEND descriptor followed by a sync,
// so concurrent cells never interleave and a crash can at worst truncate
// the final line — which OpenCheckpoint tolerates.
type Checkpoint struct {
	path string
	mu   sync.Mutex
	f    *os.File
	done map[string]*CellRecord
}

func ckptKey(exp, label, algo string) string {
	return exp + "\x00" + label + "\x00" + algo
}

// isPerfLine reports whether line is perf telemetry (see PerfRecord) rather
// than a restorable cell record.
func isPerfLine(line string) bool {
	var probe struct {
		Perf json.RawMessage `json:"perf"`
	}
	return json.Unmarshal([]byte(line), &probe) == nil && probe.Perf != nil
}

// OpenCheckpoint opens (creating if needed) the checkpoint at path. With
// resume true the cells it already records are loaded and later restored;
// with resume false the file is truncated, so the run starts fresh but
// still records completions for a future -resume.
//
// A process killed mid-append leaves a torn final line: bytes after the last
// newline. Resume tolerates it — the fragment's cell simply re-runs — and
// repairs the file before appending: an unparseable fragment is truncated
// away, and a complete record that merely lost its terminating newline is
// kept and re-terminated. Either way the next append starts on a fresh line
// instead of concatenating onto the fragment, which would corrupt an
// interior line and break every later resume.
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	c := &Checkpoint{path: path, done: map[string]*CellRecord{}}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	needNewline := false
	if !resume {
		flags |= os.O_TRUNC
	} else if data, err := os.ReadFile(path); err == nil {
		body, tail := string(data), ""
		if i := strings.LastIndexByte(body, '\n'); i >= 0 {
			body, tail = body[:i+1], body[i+1:]
		} else {
			body, tail = "", body
		}
		// Terminated lines are trusted: corruption there is loud, never
		// skipped — only the unterminated tail can come from a crash.
		for i, line := range strings.Split(body, "\n") {
			if strings.TrimSpace(line) == "" || isPerfLine(line) {
				continue
			}
			rec := &CellRecord{}
			if err := json.Unmarshal([]byte(line), rec); err != nil {
				return nil, fmt.Errorf("experiment: checkpoint %s line %d: %w", path, i+1, err)
			}
			c.done[ckptKey(rec.Exp, rec.Label, rec.Algo)] = rec
		}
		if tail != "" {
			rec := &CellRecord{}
			switch {
			case isPerfLine(tail):
				needNewline = true // complete perf line, only the '\n' was lost
			case json.Unmarshal([]byte(tail), rec) == nil:
				// Complete cell record, only the '\n' was lost: keep it.
				c.done[ckptKey(rec.Exp, rec.Label, rec.Algo)] = rec
				needNewline = true
			default:
				// Torn fragment from a crash mid-append: drop it so the
				// fragment's cell re-runs and the file ends on a clean line.
				if err := os.Truncate(path, int64(len(body))); err != nil {
					return nil, err
				}
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	if needNewline {
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	c.f = f
	return c, nil
}

// Path reports the backing file.
func (c *Checkpoint) Path() string { return c.path }

// Len reports how many cells the checkpoint records.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Close closes the backing file.
func (c *Checkpoint) Close() error { return c.f.Close() }

// restore rebuilds the recorded Aggregate for one cell, or returns nil
// when the checkpoint has no record matching the cell and its guards.
func (c *Checkpoint) restore(exp, label, algo string, cfg core.Config, reps int) *core.Aggregate {
	c.mu.Lock()
	rec := c.done[ckptKey(exp, label, algo)]
	c.mu.Unlock()
	if rec == nil || rec.Reps != reps || rec.Seed != cfg.Seed ||
		rec.HorizonSec != cfg.Horizon.Seconds() || len(rec.Runs) != reps {
		return nil
	}
	return core.AggregateValues(algo, rec.Runs)
}

// record appends one completed cell to the file and the in-memory index.
func (c *Checkpoint) record(exp string, p Point, algo string, cfg core.Config, agg *core.Aggregate) error {
	rec := &CellRecord{
		Exp: exp, X: p.X, Label: p.Label, Algo: algo,
		Seed: cfg.Seed, Reps: agg.Reps, HorizonSec: cfg.Horizon.Seconds(),
	}
	for _, r := range agg.Runs {
		rec.Runs = append(rec.Runs, r.Values(cfg.NumClients))
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(line); err != nil {
		return err
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.done[ckptKey(exp, p.Label, algo)] = rec
	return nil
}

// recordPerf appends one cell's execution-performance line (see PerfRecord).
func (c *Checkpoint) recordPerf(exp string, p Point, algo string, perf *CellPerf) error {
	rec := &PerfRecord{
		Exp: exp, X: p.X, Label: p.Label, Algo: algo,
		WallSec: perf.WallSec, Events: perf.Events,
		EventsPerSec: perf.EventsPerSec, PeakHeapBytes: perf.PeakHeapBytes,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(line); err != nil {
		return err
	}
	return c.f.Sync()
}
