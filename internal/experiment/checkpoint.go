package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/core"
)

// CheckpointName is the file RunAll appends to inside the -out directory.
const CheckpointName = "checkpoint.jsonl"

// CellRecord is one completed (experiment, point, algorithm) cell as
// stored in the checkpoint file: one JSON object per line. The guard
// fields (seed, reps, horizon) must match the requesting run for a record
// to be restored, so a checkpoint from a different -seed / -reps /
// -quick invocation is ignored rather than silently mixed in.
type CellRecord struct {
	Exp        string           `json:"exp"`
	X          float64          `json:"x"`
	Label      string           `json:"label"`
	Algo       string           `json:"algo"`
	Seed       uint64           `json:"seed"`
	Reps       int              `json:"reps"`
	HorizonSec float64          `json:"horizon_sec"`
	Runs       []core.RepValues `json:"runs"`
}

// PerfRecord mirrors CellPerf in the checkpoint file: one line per completed
// cell, alongside its CellRecord. The "perf" key doubles as the line
// discriminator so resume loading can tell perf telemetry from cell results.
// Perf lines are informational only — they carry no guard fields and are
// never restored, and they are appended whether or not tracing is enabled,
// so the CellRecord lines stay byte-identical either way.
type PerfRecord struct {
	Exp           string  `json:"perf"`
	X             float64 `json:"x"`
	Label         string  `json:"label"`
	Algo          string  `json:"algo"`
	WallSec       float64 `json:"wall_sec"`
	Events        uint64  `json:"events"`
	EventsPerSec  float64 `json:"events_per_sec"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
}

// Checkpoint is an append-only record of completed sweep cells. Each
// append is one short write to an O_APPEND descriptor followed by a sync,
// so concurrent cells never interleave and a crash can at worst truncate
// the final line — which OpenCheckpoint tolerates.
type Checkpoint struct {
	path string
	mu   sync.Mutex
	f    *os.File
	done map[string]*CellRecord
}

func ckptKey(exp, label, algo string) string {
	return exp + "\x00" + label + "\x00" + algo
}

// OpenCheckpoint opens (creating if needed) the checkpoint at path. With
// resume true the cells it already records are loaded and later restored;
// with resume false the file is truncated, so the run starts fresh but
// still records completions for a future -resume.
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	c := &Checkpoint{path: path, done: map[string]*CellRecord{}}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	} else if data, err := os.ReadFile(path); err == nil {
		lines := strings.Split(string(data), "\n")
		for i, line := range lines {
			if strings.TrimSpace(line) == "" {
				continue
			}
			var probe struct {
				Perf json.RawMessage `json:"perf"`
			}
			if err := json.Unmarshal([]byte(line), &probe); err == nil && probe.Perf != nil {
				continue // perf telemetry line, not a restorable cell
			}
			rec := &CellRecord{}
			if err := json.Unmarshal([]byte(line), rec); err != nil {
				if i == len(lines)-1 {
					break // torn final line from a crash mid-append
				}
				return nil, fmt.Errorf("experiment: checkpoint %s line %d: %w", path, i+1, err)
			}
			c.done[ckptKey(rec.Exp, rec.Label, rec.Algo)] = rec
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	c.f = f
	return c, nil
}

// Path reports the backing file.
func (c *Checkpoint) Path() string { return c.path }

// Len reports how many cells the checkpoint records.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Close closes the backing file.
func (c *Checkpoint) Close() error { return c.f.Close() }

// restore rebuilds the recorded Aggregate for one cell, or returns nil
// when the checkpoint has no record matching the cell and its guards.
func (c *Checkpoint) restore(exp, label, algo string, cfg core.Config, reps int) *core.Aggregate {
	c.mu.Lock()
	rec := c.done[ckptKey(exp, label, algo)]
	c.mu.Unlock()
	if rec == nil || rec.Reps != reps || rec.Seed != cfg.Seed ||
		rec.HorizonSec != cfg.Horizon.Seconds() || len(rec.Runs) != reps {
		return nil
	}
	return core.AggregateValues(algo, rec.Runs)
}

// record appends one completed cell to the file and the in-memory index.
func (c *Checkpoint) record(exp string, p Point, algo string, cfg core.Config, agg *core.Aggregate) error {
	rec := &CellRecord{
		Exp: exp, X: p.X, Label: p.Label, Algo: algo,
		Seed: cfg.Seed, Reps: agg.Reps, HorizonSec: cfg.Horizon.Seconds(),
	}
	for _, r := range agg.Runs {
		rec.Runs = append(rec.Runs, r.Values(cfg.NumClients))
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(line); err != nil {
		return err
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.done[ckptKey(exp, p.Label, algo)] = rec
	return nil
}

// recordPerf appends one cell's execution-performance line (see PerfRecord).
func (c *Checkpoint) recordPerf(exp string, p Point, algo string, perf *CellPerf) error {
	rec := &PerfRecord{
		Exp: exp, X: p.X, Label: p.Label, Algo: algo,
		WallSec: perf.WallSec, Events: perf.Events,
		EventsPerSec: perf.EventsPerSec, PeakHeapBytes: perf.PeakHeapBytes,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(line); err != nil {
		return err
	}
	return c.f.Sync()
}
